package policyflow_test

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"policyflow"
)

// TestFacadeQuickstart exercises the README quickstart path through the
// public API only.
func TestFacadeQuickstart(t *testing.T) {
	svc, err := policyflow.NewPolicyService(policyflow.DefaultPolicyConfig())
	if err != nil {
		t.Fatal(err)
	}
	advice, err := svc.AdviseTransfers([]policyflow.TransferSpec{{
		RequestID:  "r1",
		WorkflowID: "wf1",
		SourceURL:  "gsiftp://data.example.org/input/a.dat",
		DestURL:    "file://cluster.example.org/scratch/a.dat",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(advice.Transfers) != 1 || advice.Transfers[0].Streams != 4 {
		t.Fatalf("advice = %+v", advice)
	}
	if _, err := svc.ReportTransfers(policyflow.CompletionReport{
		TransferIDs: []string{advice.Transfers[0].ID},
	}); err != nil {
		t.Fatal(err)
	}
	if snap := svc.Snapshot(); snap.StagedResources != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestFacadeMontageAndDAX(t *testing.T) {
	cfg := policyflow.DefaultMontageConfig(0)
	cfg.GridSize = 3
	w, err := policyflow.GenerateMontage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteDAX(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := policyflow.ReadDAX(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs()) != len(w.Jobs()) {
		t.Fatalf("DAX round trip lost jobs: %d vs %d", len(got.Jobs()), len(w.Jobs()))
	}
	plan, err := got.Plan(policyflow.PlanConfig{
		WorkflowID:        "facade",
		ComputeSiteBase:   "file://cluster.example.org/scratch",
		PriorityAlgorithm: policyflow.PriorityDependent,
		Cleanup:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Count(policyflow.TaskStageIn) == 0 || plan.Count(policyflow.TaskCleanup) == 0 {
		t.Fatalf("plan = %d stage-in, %d cleanup", plan.Count(policyflow.TaskStageIn), plan.Count(policyflow.TaskCleanup))
	}
}

func TestFacadeScenario(t *testing.T) {
	m, err := policyflow.RunMontageScenario(policyflow.Scenario{
		ExtraMB:        10,
		UsePolicy:      true,
		Algorithm:      policyflow.AlgoGreedy,
		Threshold:      50,
		DefaultStreams: 4,
		GridSize:       3,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed || m.MakespanSeconds <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestFacadeRESTAndReplication(t *testing.T) {
	svc, err := policyflow.NewPolicyService(policyflow.DefaultPolicyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(policyflow.NewPolicyServer(svc, nil))
	defer ts.Close()
	c := policyflow.NewPolicyClient(ts.URL)
	cx := policyflow.NewPolicyClient(ts.URL, policyflow.WithXML())
	for _, client := range []*policyflow.PolicyClient{c, cx} {
		if err := client.Healthz(); err != nil {
			t.Fatal(err)
		}
	}
	rc, err := policyflow.NewReplicatedPolicyClient(c)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := rc.AdviseTransfers([]policyflow.TransferSpec{{
		RequestID: "r1", WorkflowID: "wf",
		SourceURL: "gsiftp://a.example.org/f",
		DestURL:   "file://b.example.org/f",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Transfers) != 1 {
		t.Fatalf("advice = %+v", adv)
	}
	var dump *policyflow.StateDump = svc.ExportState()
	if len(dump.Transfers) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
}

func TestFacadeSynthetic(t *testing.T) {
	for _, shape := range []policyflow.SynthShape{
		policyflow.ShapeChain, policyflow.ShapeFanOut, policyflow.ShapeFanIn,
		policyflow.ShapeDiamond, policyflow.ShapeRandom,
	} {
		w, err := policyflow.GenerateSynthetic(policyflow.SynthConfig{
			Shape: shape, Jobs: 6, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if len(w.Jobs()) != 6 {
			t.Fatalf("%s: jobs = %d", shape, len(w.Jobs()))
		}
	}
}

func TestFacadeTuneThreshold(t *testing.T) {
	h, err := policyflow.NewHillClimber(100, 25, 25, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := policyflow.TuneThreshold(10, 3, h, policyflow.ExperimentOptions{
		Trials: 1, GridSize: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Episodes) != 3 {
		t.Fatalf("episodes = %d", len(res.Episodes))
	}
}

func TestFacadeTuner(t *testing.T) {
	u, err := policyflow.NewUCB1(policyflow.DefaultTunerArms(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var l policyflow.ThresholdLearner = u
	a := l.Next()
	l.Record(a, 1.0)
	if l.Best() <= 0 {
		t.Fatal("no best arm")
	}
	h, err := policyflow.NewHillClimber(100, 20, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if h.Next() != 100 {
		t.Fatalf("climber start = %d", h.Next())
	}
}
