GO ?= go

.PHONY: ci build test race vet fmt fmt-check bench-smoke cover fuzz-smoke

# The full gate: what a PR must pass.
ci: fmt-check vet build race bench-smoke cover fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w cmd internal examples *.go

# fmt-check fails (listing the offenders) if any tracked Go file is not
# gofmt-clean.
fmt-check:
	@out="$$(gofmt -l cmd internal examples *.go)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-smoke compiles and runs every WAL benchmark exactly once, so the
# durability benchmarks cannot rot without failing CI.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkWAL' -benchtime=1x ./internal/durable/

# cover enforces a statement-coverage floor on the correctness-critical
# packages: the policy engine and the durable store.
COVER_FLOOR := 70
cover:
	@for pkg in ./internal/policy ./internal/durable; do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "no coverage reported for $$pkg"; exit 1; fi; \
		echo "$$pkg coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		if ! awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{exit !(p>=f)}'; then \
			echo "FAIL: $$pkg coverage $$pct% is below the $(COVER_FLOOR)% floor"; exit 1; \
		fi; \
	done

# fuzz-smoke runs each fuzz target for 10s of random inputs. Go runs one
# fuzz target per invocation, so each gets its own line.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzWALRecord$$' -fuzztime=10s ./internal/durable/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime=10s ./internal/policyhttp/
