GO ?= go

.PHONY: ci build test race vet fmt fmt-check bench-smoke

# The full gate: what a PR must pass.
ci: fmt-check vet build race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w cmd internal examples *.go

# fmt-check fails (listing the offenders) if any tracked Go file is not
# gofmt-clean.
fmt-check:
	@out="$$(gofmt -l cmd internal examples *.go)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-smoke compiles and runs every WAL benchmark exactly once, so the
# durability benchmarks cannot rot without failing CI.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkWAL' -benchtime=1x ./internal/durable/
