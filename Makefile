GO ?= go

.PHONY: ci build test race vet fmt fmt-check bench-smoke bench-json bench-json-check bundle-check cover fuzz-smoke test-liveness test-failover load-smoke

# The full gate: what a PR must pass.
ci: fmt-check vet build race test-liveness test-failover bundle-check bench-smoke load-smoke bench-json-check cover fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w cmd internal examples *.go

# fmt-check fails (listing the offenders) if any tracked Go file is not
# gofmt-clean.
fmt-check:
	@out="$$(gofmt -l cmd internal examples *.go)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# test-liveness runs the lease-reclamation and degraded-mode suites under
# the race detector: the policy-level lease lifecycle, the model-checked
# faultsim liveness properties, and the transfer tool's breaker/reconcile
# cycle.
test-liveness:
	$(GO) test -race -run 'Lease|Clock|Degraded|Breaker' ./internal/policy/ ./internal/faultsim/ ./internal/transfer/

# test-failover runs the epoch-fencing suites under the race detector: the
# faultsim failover model checker (seeded partition/promote/heal/resync
# episodes against the split-brain, lost-write and reconvergence
# invariants) and the HTTP-level fence, promote and re-route tests.
test-failover:
	$(GO) test -race -run 'Failover|Fence|Promote|Epoch|Standby|Replicated' ./internal/faultsim/ ./internal/policyhttp/

# bundle-check validates every example policy bundle offline (parse,
# schema, value ranges, checksum) with the same code the server runs, so
# a committed example can never drift from the bundle schema.
bundle-check:
	$(GO) run ./cmd/policyctl bundle validate examples/*.bundle.json

# bench-smoke compiles and runs every WAL benchmark exactly once, so the
# durability benchmarks cannot rot without failing CI. The lease benchmarks
# ride along: the expiry scan must stay O(active leases) and off the advise
# hot path.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkWAL' -benchtime=1x ./internal/durable/
	$(GO) test -run '^$$' -bench 'BenchmarkLeaseScan|BenchmarkAdviseLeaseOverhead' -benchtime=1x ./internal/policy/

# load-smoke drives the admitted stack at ~4x saturation through the
# closed-loop load harness: overload must shed fast 429s, keep p99
# bounded, and hold goodput instead of collapsing. The full saturation
# sweep behind POLICYFLOW_LOAD_CURVE=1 regenerates the EXPERIMENTS.md
# curve and is too slow for CI.
load-smoke:
	$(GO) test -race -run 'TestLoadSmokeShedNotCollapse' -count=1 ./internal/synth/

# bench-json refreshes the machine-readable perf trajectory at the repo
# root: one JSON series per core benchmark (advise hot path, advise vs
# resident-fact count, lease scan, WAL commit with and without fsync),
# stamped with the go version and git SHA. Commit the refreshed file when
# a PR intentionally moves a number.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_policyflow.json

# bench-json-check re-measures the trajectory and fails CI when any
# committed series has regressed more than BENCH_TOLERANCE (fractional;
# 0.30 = 30% slower ns/op).
BENCH_TOLERANCE := 0.30
bench-json-check:
	$(GO) run ./cmd/benchjson -check BENCH_policyflow.json -tolerance $(BENCH_TOLERANCE)

# cover enforces per-package statement-coverage floors on the
# correctness-critical packages: the policy engine, the durable store,
# the rule engine (held higher — the differential harness should keep
# the matcher thoroughly exercised), and the admission controller (every
# shed path is a promise of "no side effect" and must stay tested), and
# the HTTP layer now that it carries the epoch fence and failover protocol.
COVER_FLOORS := ./internal/policy:70 ./internal/durable:70 ./internal/rules:80 ./internal/admit:75 ./internal/policyhttp:70
cover:
	@for entry in $(COVER_FLOORS); do \
		pkg=$${entry%:*}; floor=$${entry##*:}; \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "no coverage reported for $$pkg"; exit 1; fi; \
		echo "$$pkg coverage: $$pct% (floor $$floor%)"; \
		if ! awk -v p="$$pct" -v f="$$floor" 'BEGIN{exit !(p>=f)}'; then \
			echo "FAIL: $$pkg coverage $$pct% is below the $$floor% floor"; exit 1; \
		fi; \
	done

# fuzz-smoke runs each fuzz target for 10s of random inputs. Go runs one
# fuzz target per invocation, so each gets its own line.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzWALRecord$$' -fuzztime=10s ./internal/durable/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime=10s ./internal/policyhttp/
	$(GO) test -run '^$$' -fuzz '^FuzzSessionOps$$' -fuzztime=10s ./internal/rules/
