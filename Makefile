GO ?= go

.PHONY: ci build test race vet fmt

# The full gate: what a PR must pass.
ci: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w cmd internal *.go
