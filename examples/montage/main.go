// Montage example: run the paper's headline experiment end to end — the
// augmented 1-degree Montage workflow (89 staging jobs, one extra 100 MB
// file each) on the simulated FutureGrid→ISI testbed, with and without the
// Policy Service, reproducing the Fig. 7 comparison at 8 default streams.
package main

import (
	"fmt"
	"log"

	"policyflow"
)

func run(name string, s policyflow.Scenario) policyflow.Metrics {
	m, err := policyflow.RunMontageScenario(s)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%-28s makespan %8.1f s   max WAN streams %3d   failures %2d\n",
		name, m.MakespanSeconds, m.MaxWANStreams, m.TransferFailures)
	return m
}

func main() {
	fmt.Println("augmented Montage, 100 MB additional file per staging job")
	fmt.Println()

	g50 := run("greedy, threshold 50", policyflow.Scenario{
		ExtraMB: 100, UsePolicy: true, Algorithm: policyflow.AlgoGreedy,
		Threshold: 50, DefaultStreams: 8, Seed: 1,
	})
	g200 := run("greedy, threshold 200", policyflow.Scenario{
		ExtraMB: 100, UsePolicy: true, Algorithm: policyflow.AlgoGreedy,
		Threshold: 200, DefaultStreams: 8, Seed: 1,
	})
	np := run("no policy (default Pegasus)", policyflow.Scenario{
		ExtraMB: 100, UsePolicy: false, DefaultStreams: 4, Seed: 1,
	})

	fmt.Println()
	fmt.Printf("threshold 50 vs no policy:   %+.1f%%\n",
		(np.MakespanSeconds/g50.MakespanSeconds-1)*100)
	fmt.Printf("threshold 200 vs threshold 50: %+.1f%%\n",
		(g200.MakespanSeconds/g50.MakespanSeconds-1)*100)
	fmt.Println("\n(the paper reports ~6.7% and ~28.8% for these comparisons)")
}
