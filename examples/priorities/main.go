// Priorities example: the structure-based data staging priorities of
// Section III(c). A small workflow DAG is planned with each of the four
// priority algorithms (BFS, DFS, direct-dependent, dependent) and the
// resulting staging order is shown — the order in which the Policy Service
// returns the transfers to the transfer tool.
package main

import (
	"fmt"
	"log"
	"sort"

	"policyflow"
)

// build constructs a workflow whose jobs have distinct structural roles:
//
//	prep (fan-out 3, feeds everything)
//	   ├── wide (2 children)
//	   │     ├── w1
//	   │     └── w2
//	   ├── deep (chain of 3: deep -> d1 -> d2)
//	   └── leaf (no children)
func build() *policyflow.Workflow {
	w := policyflow.NewWorkflow("prio-demo")
	addExt := func(name string) {
		if err := w.AddFile(&policyflow.WorkflowFile{
			Name: name, SizeBytes: 10 << 20,
			SourceURL: "gsiftp://archive.example.org/" + name,
		}); err != nil {
			log.Fatal(err)
		}
	}
	addInt := func(name string) {
		if err := w.AddFile(&policyflow.WorkflowFile{Name: name, SizeBytes: 1 << 20}); err != nil {
			log.Fatal(err)
		}
	}
	job := func(id string, in, out []string) {
		if err := w.AddJob(&policyflow.WorkflowJob{
			ID: id, RuntimeSeconds: 5, Inputs: in, Outputs: out,
		}); err != nil {
			log.Fatal(err)
		}
	}
	for _, f := range []string{"in_prep", "in_wide", "in_deep", "in_leaf", "in_w1", "in_w2", "in_d1", "in_d2"} {
		addExt(f)
	}
	for _, f := range []string{"p", "wd", "dp", "lf", "o_w1", "o_w2", "o_d1", "o_d2"} {
		addInt(f)
	}
	job("prep", []string{"in_prep"}, []string{"p"})
	job("wide", []string{"p", "in_wide"}, []string{"wd"})
	job("deep", []string{"p", "in_deep"}, []string{"dp"})
	job("leaf", []string{"p", "in_leaf"}, []string{"lf"})
	job("w1", []string{"wd", "in_w1"}, []string{"o_w1"})
	job("w2", []string{"wd", "in_w2"}, []string{"o_w2"})
	job("d1", []string{"dp", "in_d1"}, []string{"o_d1"})
	job("d2", []string{"o_d1", "in_d2"}, []string{"o_d2"})
	return w
}

func main() {
	algos := []policyflow.PriorityAlgorithm{
		policyflow.PriorityBFS,
		policyflow.PriorityDFS,
		policyflow.PriorityDirectDependent,
		policyflow.PriorityDependent,
	}
	for _, algo := range algos {
		w := build()
		plan, err := w.Plan(policyflow.PlanConfig{
			WorkflowID:        "demo",
			ComputeSiteBase:   "file://cluster.example.org/scratch",
			PriorityAlgorithm: algo,
		})
		if err != nil {
			log.Fatal(err)
		}
		type st struct {
			id   string
			prio int
		}
		var stageIns []st
		for _, t := range plan.Tasks {
			if t.Type == policyflow.TaskStageIn {
				stageIns = append(stageIns, st{t.ID, t.Priority})
			}
		}
		sort.Slice(stageIns, func(i, j int) bool {
			if stageIns[i].prio != stageIns[j].prio {
				return stageIns[i].prio > stageIns[j].prio
			}
			return stageIns[i].id < stageIns[j].id
		})
		fmt.Printf("%-17s staging order:", algo)
		for _, s := range stageIns {
			fmt.Printf(" %s(%d)", s.id[len("stage_in_"):], s.prio)
		}
		fmt.Println()
	}
	fmt.Println("\ndirect-dependent ranks prep highest (largest fan-out);")
	fmt.Println("dependent also favors prep (most total descendants), then the chains.")
}
