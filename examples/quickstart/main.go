// Quickstart: create an in-process Policy Service, submit a transfer list,
// and watch the policies of Tables I and II at work — default stream
// assignment, host-pair grouping, greedy allocation against the threshold,
// duplicate suppression, and safe cleanup with cross-workflow file
// sharing.
package main

import (
	"fmt"
	"log"

	"policyflow"
)

func main() {
	cfg := policyflow.DefaultPolicyConfig()
	cfg.DefaultThreshold = 10 // small threshold so the greedy trimming is visible
	cfg.DefaultStreams = 4
	svc, err := policyflow.NewPolicyService(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A workflow asks to stage three files; the third requests 8 streams.
	specs := []policyflow.TransferSpec{
		{RequestID: "r1", WorkflowID: "wf1",
			SourceURL: "gsiftp://data.example.org/input/a.dat",
			DestURL:   "file://cluster.example.org/scratch/a.dat"},
		{RequestID: "r2", WorkflowID: "wf1",
			SourceURL: "gsiftp://data.example.org/input/b.dat",
			DestURL:   "file://cluster.example.org/scratch/b.dat"},
		{RequestID: "r3", WorkflowID: "wf1", RequestedStreams: 8,
			SourceURL: "gsiftp://data.example.org/input/c.dat",
			DestURL:   "file://cluster.example.org/scratch/c.dat"},
	}
	advice, err := svc.AdviseTransfers(specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("advice for wf1 (threshold 10 streams between the host pair):")
	for _, tr := range advice.Transfers {
		fmt.Printf("  %s %-3s group=%s streams=%d  (%s -> %s)\n",
			tr.ID, tr.RequestID, tr.GroupID, tr.Streams, tr.SourceHost, tr.DestHost)
	}

	// Report the transfers complete; the staged files are now tracked.
	var ids []string
	for _, tr := range advice.Transfers {
		ids = append(ids, tr.ID)
	}
	if _, err := svc.ReportTransfers(policyflow.CompletionReport{TransferIDs: ids}); err != nil {
		log.Fatal(err)
	}

	// A second workflow asks for one of the same files: suppressed as a
	// duplicate, and wf2 is registered as a user of the staged file.
	advice2, err := svc.AdviseTransfers([]policyflow.TransferSpec{
		{RequestID: "r4", WorkflowID: "wf2",
			SourceURL: "gsiftp://data.example.org/input/a.dat",
			DestURL:   "file://cluster.example.org/scratch/a.dat"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwf2 requests a.dat again:")
	for _, rm := range advice2.Removed {
		fmt.Printf("  removed %s: %s\n", rm.RequestID, rm.Reason)
	}

	// wf1 tries to clean the shared file up: blocked, wf2 still uses it.
	cadv, err := svc.AdviseCleanups([]policyflow.CleanupSpec{
		{RequestID: "c1", WorkflowID: "wf1",
			FileURL: "file://cluster.example.org/scratch/a.dat"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwf1 asks to delete a.dat:")
	for _, rm := range cadv.Removed {
		fmt.Printf("  removed %s: %s (wf2 still uses the file)\n", rm.RequestID, rm.Reason)
	}

	// wf2 releases it: now the deletion is approved.
	cadv2, err := svc.AdviseCleanups([]policyflow.CleanupSpec{
		{RequestID: "c2", WorkflowID: "wf2",
			FileURL: "file://cluster.example.org/scratch/a.dat"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwf2 (the last user) asks to delete a.dat:")
	for _, c := range cadv2.Cleanups {
		fmt.Printf("  approved %s -> delete %s\n", c.ID, c.FileURL)
	}

	snap := svc.Snapshot()
	fmt.Printf("\nservice state: %d tracked files, %d in-flight transfers\n",
		snap.TrackedFiles, snap.InFlight)
}
