// Multi-workflow example: the Policy Service as an actual RESTful web
// service (as deployed in the paper), shared by two concurrent workflows
// that stage the same input data. The service removes duplicate staging
// requests across the workflows and blocks cleanup of files the other
// workflow still uses — the full HTTP round trip, JSON on the wire.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"policyflow"
)

func main() {
	// Start the policy service on a local port.
	svc, err := policyflow.NewPolicyService(policyflow.DefaultPolicyConfig())
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: policyflow.NewPolicyServer(svc, nil)}
	go server.Serve(ln)
	defer server.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("policy service listening on %s\n\n", base)

	client := policyflow.NewPolicyClient(base)

	stage := func(wf string, files ...string) {
		var specs []policyflow.TransferSpec
		for i, f := range files {
			specs = append(specs, policyflow.TransferSpec{
				RequestID:  fmt.Sprintf("%s-r%d", wf, i),
				WorkflowID: wf,
				SourceURL:  "gsiftp://archive.example.org/data/" + f,
				DestURL:    "file://cluster.example.org/shared/" + f,
			})
		}
		adv, err := client.AdviseTransfers(specs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s staging %v:\n", wf, files)
		var done []string
		for _, tr := range adv.Transfers {
			fmt.Printf("  execute %s (%s, %d streams)\n", tr.ID, tr.DestURL, tr.Streams)
			done = append(done, tr.ID)
		}
		for _, rm := range adv.Removed {
			fmt.Printf("  skipped %s: %s\n", rm.RequestID, rm.Reason)
		}
		if len(done) > 0 {
			if _, err := client.ReportTransfers(policyflow.CompletionReport{TransferIDs: done}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println()
	}

	// wf1 stages three files; wf2 then wants two of the same ones.
	stage("wf1", "calib.dat", "ref_catalog.tbl", "events.raw")
	stage("wf2", "calib.dat", "ref_catalog.tbl")

	// wf1 finishes and tries to clean up everything it staged.
	cleanup := func(wf string, files ...string) {
		var specs []policyflow.CleanupSpec
		for i, f := range files {
			specs = append(specs, policyflow.CleanupSpec{
				RequestID:  fmt.Sprintf("%s-c%d", wf, i),
				WorkflowID: wf,
				FileURL:    "file://cluster.example.org/shared/" + f,
			})
		}
		adv, err := client.AdviseCleanups(specs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s cleanup of %v:\n", wf, files)
		var done []string
		for _, c := range adv.Cleanups {
			fmt.Printf("  delete %s\n", c.FileURL)
			done = append(done, c.ID)
		}
		for _, rm := range adv.Removed {
			fmt.Printf("  blocked %s: %s\n", rm.RequestID, rm.Reason)
		}
		if len(done) > 0 {
			if _, err := client.ReportCleanups(policyflow.CleanupReport{CleanupIDs: done}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println()
	}
	cleanup("wf1", "calib.dat", "ref_catalog.tbl", "events.raw")
	cleanup("wf2", "calib.dat", "ref_catalog.tbl")

	st, err := client.State()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final state: %d tracked files (all shared files cleaned exactly once)\n",
		st.TrackedFiles)
}
