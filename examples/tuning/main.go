// Tuning example: the paper's proposed machine-learning extension
// (Section VII) in action. A UCB1 bandit picks the greedy stream
// threshold for each run of the augmented Montage workflow, observes the
// achieved WAN goodput, and converges to the testbed's overload knee —
// learning, instead of being told, that ~50 streams beats 100 and 200.
package main

import (
	"fmt"
	"log"

	"policyflow"
)

func main() {
	learner, err := policyflow.NewUCB1(policyflow.DefaultTunerArms(), 0.3)
	if err != nil {
		log.Fatal(err)
	}
	const episodes = 24
	fmt.Printf("learning the stream threshold over %d workflow runs (100 MB files)...\n\n", episodes)
	res, err := policyflow.TuneThreshold(100, episodes, learner, policyflow.ExperimentOptions{
		Trials: 1,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("episode  threshold  goodput (MB/s)  makespan (s)")
	for i, e := range res.Episodes {
		marker := ""
		if e.Threshold == res.Best {
			marker = "  *"
		}
		fmt.Printf("%7d  %9d  %14.3f  %12.1f%s\n",
			i+1, e.Threshold, e.RewardMBps, e.Makespan, marker)
	}
	fmt.Printf("\nrecommended threshold: %d streams (the paper hand-tuned 50)\n", res.Best)
	fmt.Printf("converged makespan:    %.1f s\n", res.ConvergedMakespan)
}
