package bundle

import (
	"errors"
	"strings"
	"testing"
)

func valid() *Bundle {
	return &Bundle{
		SchemaVersion:    SchemaVersion,
		Version:          "v1",
		Algorithm:        AlgoGreedy,
		DefaultStreams:   4,
		MinStreams:       1,
		DefaultThreshold: 50,
		ClusterFactor:    1,
		PairThresholds: []PairThreshold{
			{SourceHost: "b.example.org", DestHost: "a.example.org", Max: 8},
			{SourceHost: "a.example.org", DestHost: "b.example.org", Max: 4},
		},
	}
}

func TestParseRoundTrip(t *testing.T) {
	b := valid()
	got, err := Parse(b.Canonical())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Version != "v1" || got.Algorithm != AlgoGreedy || len(got.PairThresholds) != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Checksum() != b.Checksum() {
		t.Fatalf("checksum changed across round trip")
	}
}

func TestChecksumIgnoresPairOrder(t *testing.T) {
	a := valid()
	b := valid()
	b.PairThresholds[0], b.PairThresholds[1] = b.PairThresholds[1], b.PairThresholds[0]
	if a.Checksum() != b.Checksum() {
		t.Fatalf("checksum depends on pair threshold order")
	}
	c := valid()
	c.PairThresholds[0].Max = 9
	if a.Checksum() == c.Checksum() {
		t.Fatalf("checksum missed a policy difference")
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"malformed", `{"schemaVersion": 1,`, "parse"},
		{"unknown field", `{"schemaVersion":1,"version":"v1","algorithm":"greedy","defaultStreams":4,"minStreams":1,"defaultThreshold":50,"clusterFactor":1,"surprise":true}`, "parse"},
		{"unknown schema", `{"schemaVersion":99,"version":"v1","algorithm":"greedy","defaultStreams":4,"minStreams":1,"defaultThreshold":50,"clusterFactor":1}`, "schema version"},
		{"missing version", `{"schemaVersion":1,"algorithm":"greedy","defaultStreams":4,"minStreams":1,"defaultThreshold":50,"clusterFactor":1}`, "version is required"},
		{"bad algorithm", `{"schemaVersion":1,"version":"v1","algorithm":"psychic","defaultStreams":4,"minStreams":1,"defaultThreshold":50,"clusterFactor":1}`, "unknown algorithm"},
		{"zero threshold", `{"schemaVersion":1,"version":"v1","algorithm":"greedy","defaultStreams":4,"minStreams":1,"defaultThreshold":0,"clusterFactor":1}`, "defaultThreshold"},
		{"min above default", `{"schemaVersion":1,"version":"v1","algorithm":"greedy","defaultStreams":2,"minStreams":3,"defaultThreshold":50,"clusterFactor":1}`, "minStreams"},
		{"trailing data", `{"schemaVersion":1,"version":"v1","algorithm":"greedy","defaultStreams":4,"minStreams":1,"defaultThreshold":50,"clusterFactor":1}{"extra":1}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.data))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.name)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error does not wrap ErrInvalid: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateDuplicatePair(t *testing.T) {
	b := valid()
	b.PairThresholds = append(b.PairThresholds, b.PairThresholds[0])
	if err := b.Validate(); err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("duplicate pair accepted: %v", err)
	}
}

func TestValidatePriorityBounds(t *testing.T) {
	b := valid()
	b.Priority = &Priority{BoostFactor: 0.5, ReduceFactor: 0.5}
	if err := b.Validate(); err == nil {
		t.Fatal("boost < 1 accepted")
	}
	b.Priority = &Priority{BoostFactor: 2, ReduceFactor: 1.5}
	if err := b.Validate(); err == nil {
		t.Fatal("reduce > 1 accepted")
	}
	b.Priority = &Priority{BoostFactor: 1.5, ReduceFactor: 0.5}
	if err := b.Validate(); err != nil {
		t.Fatalf("valid priority rejected: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := valid()
	b.Priority = &Priority{BoostFactor: 1.5, ReduceFactor: 0.5}
	cp := b.Clone()
	cp.PairThresholds[0].Max = 99
	cp.Priority.BoostFactor = 9
	if b.PairThresholds[0].Max == 99 || b.Priority.BoostFactor == 9 {
		t.Fatal("Clone shares memory with original")
	}
}
