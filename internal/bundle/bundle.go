// Package bundle defines the policy-as-data encoding for the engine's
// tunable surface, following OPA's bundle architecture: policy ships as a
// versioned, checksummed document that is distributed out of band and
// activated atomically, and every decision is attributable to the bundle
// version that produced it.
//
// A bundle captures exactly the knobs the policy service otherwise
// compiles in: the allocation algorithm, default/minimum stream counts,
// the default and per-host-pair stream thresholds, the workflow clustering
// factor, and the priority weighting factors. The encoding is
// schema-versioned JSON; Parse rejects unknown schema versions and unknown
// fields so a bundle written for a future engine never half-applies.
//
// This package is deliberately free of any dependency on internal/policy:
// the policy layer imports it, embeds the compiled-in defaults as the v0
// bundle, and applies activated bundles to its working memory.
package bundle

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// SchemaVersion identifies the bundle document layout this engine
// understands. Documents declaring any other version are rejected.
const SchemaVersion = 1

// ErrInvalid is wrapped by every Parse and Validate failure, so callers
// can classify any bundle problem — malformed JSON, unknown schema
// version, out-of-range field — as a deterministic client error rather
// than a server fault.
var ErrInvalid = errors.New("invalid bundle")

// Allocation algorithm names a bundle may select. They mirror the policy
// service's Algorithm values; the service re-validates on activation.
const (
	AlgoGreedy      = "greedy"
	AlgoBalanced    = "balanced"
	AlgoPassthrough = "none"
)

// PairThreshold pins the maximum parallel streams between one host pair.
type PairThreshold struct {
	SourceHost string `json:"sourceHost" xml:"sourceHost"`
	DestHost   string `json:"destHost" xml:"destHost"`
	Max        int    `json:"max" xml:"max"`
}

// Priority holds the priority-weighting factors: transfers above the
// median priority have their grants scaled by BoostFactor, those below by
// ReduceFactor. Boost 1 and reduce 1 (or 0) disable weighting.
type Priority struct {
	BoostFactor  float64 `json:"boostFactor" xml:"boostFactor"`
	ReduceFactor float64 `json:"reduceFactor" xml:"reduceFactor"`
}

// Bundle is one versioned policy document.
type Bundle struct {
	// SchemaVersion must equal the package's SchemaVersion constant.
	SchemaVersion int `json:"schemaVersion" xml:"schemaVersion"`
	// Version names this bundle (e.g. "v0", "2026-08-tuning"). Decision
	// records and replicas identify the active policy by this string.
	Version string `json:"version" xml:"version"`
	// Description is free-form operator documentation.
	Description string `json:"description,omitempty" xml:"description,omitempty"`

	// Algorithm selects stream allocation: greedy, balanced, or none.
	Algorithm string `json:"algorithm" xml:"algorithm"`
	// DefaultStreams is granted to transfers that request no count.
	DefaultStreams int `json:"defaultStreams" xml:"defaultStreams"`
	// MinStreams floors every grant.
	MinStreams int `json:"minStreams" xml:"minStreams"`
	// DefaultThreshold caps concurrent streams per host pair unless a
	// PairThreshold overrides it.
	DefaultThreshold int `json:"defaultThreshold" xml:"defaultThreshold"`
	// ClusterFactor divides pair thresholds into per-cluster shares under
	// balanced allocation.
	ClusterFactor int `json:"clusterFactor" xml:"clusterFactor"`
	// PairThresholds override DefaultThreshold for specific host pairs.
	PairThresholds []PairThreshold `json:"pairThresholds,omitempty" xml:"pairThresholds>pairThreshold,omitempty"`
	// Priority, when present, tunes priority weighting; absent keeps the
	// engine's compiled-in weighting configuration.
	Priority *Priority `json:"priority,omitempty" xml:"priority,omitempty"`
}

// Parse decodes and validates a bundle document. Unknown fields and
// unknown schema versions are rejected; every error wraps ErrInvalid.
func Parse(data []byte) (*Bundle, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Bundle
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("%w: parse: %v", ErrInvalid, err)
	}
	// A second document after the first means trailing garbage.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after bundle document", ErrInvalid)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	b.normalize()
	return &b, nil
}

// Validate checks every field against the schema. Errors wrap ErrInvalid.
func (b *Bundle) Validate() error {
	if b.SchemaVersion != SchemaVersion {
		return fmt.Errorf("%w: unsupported schema version %d (want %d)",
			ErrInvalid, b.SchemaVersion, SchemaVersion)
	}
	if b.Version == "" {
		return fmt.Errorf("%w: version is required", ErrInvalid)
	}
	switch b.Algorithm {
	case AlgoGreedy, AlgoBalanced, AlgoPassthrough:
	default:
		return fmt.Errorf("%w: unknown algorithm %q", ErrInvalid, b.Algorithm)
	}
	if b.DefaultStreams < 1 {
		return fmt.Errorf("%w: defaultStreams must be >= 1, got %d", ErrInvalid, b.DefaultStreams)
	}
	if b.MinStreams < 1 {
		return fmt.Errorf("%w: minStreams must be >= 1, got %d", ErrInvalid, b.MinStreams)
	}
	if b.MinStreams > b.DefaultStreams {
		return fmt.Errorf("%w: minStreams %d exceeds defaultStreams %d",
			ErrInvalid, b.MinStreams, b.DefaultStreams)
	}
	if b.DefaultThreshold < 1 {
		return fmt.Errorf("%w: defaultThreshold must be >= 1, got %d", ErrInvalid, b.DefaultThreshold)
	}
	if b.ClusterFactor < 1 {
		return fmt.Errorf("%w: clusterFactor must be >= 1, got %d", ErrInvalid, b.ClusterFactor)
	}
	seen := make(map[[2]string]bool, len(b.PairThresholds))
	for _, pt := range b.PairThresholds {
		if pt.SourceHost == "" || pt.DestHost == "" {
			return fmt.Errorf("%w: pair threshold with empty host", ErrInvalid)
		}
		if pt.Max < 1 {
			return fmt.Errorf("%w: pair threshold %s->%s max must be >= 1, got %d",
				ErrInvalid, pt.SourceHost, pt.DestHost, pt.Max)
		}
		key := [2]string{pt.SourceHost, pt.DestHost}
		if seen[key] {
			return fmt.Errorf("%w: duplicate pair threshold %s->%s",
				ErrInvalid, pt.SourceHost, pt.DestHost)
		}
		seen[key] = true
	}
	if p := b.Priority; p != nil {
		if p.BoostFactor < 1 {
			return fmt.Errorf("%w: priority boostFactor must be >= 1, got %g", ErrInvalid, p.BoostFactor)
		}
		if p.ReduceFactor < 0 || p.ReduceFactor > 1 {
			return fmt.Errorf("%w: priority reduceFactor must be in [0,1], got %g", ErrInvalid, p.ReduceFactor)
		}
	}
	return nil
}

// normalize puts the bundle in canonical order so logically equal bundles
// checksum identically regardless of author field ordering.
func (b *Bundle) normalize() {
	sort.Slice(b.PairThresholds, func(i, j int) bool {
		a, c := b.PairThresholds[i], b.PairThresholds[j]
		if a.SourceHost != c.SourceHost {
			return a.SourceHost < c.SourceHost
		}
		return a.DestHost < c.DestHost
	})
}

// Canonical renders the bundle's canonical JSON form: normalized pair
// order, Go's deterministic struct-field ordering, no indentation. The
// checksum is computed over this form.
func (b *Bundle) Canonical() []byte {
	cp := *b
	cp.PairThresholds = append([]PairThreshold(nil), b.PairThresholds...)
	cp.normalize()
	data, err := json.Marshal(&cp)
	if err != nil {
		// Bundle has no cyclic or non-marshalable fields; unreachable.
		panic(fmt.Sprintf("bundle: canonical encode: %v", err))
	}
	return data
}

// Checksum returns the hex SHA-256 of the canonical encoding. Two bundles
// with equal checksums carry identical policy.
func (b *Bundle) Checksum() string {
	sum := sha256.Sum256(b.Canonical())
	return hex.EncodeToString(sum[:])
}

// Clone returns a deep copy, so callers can hold a bundle immutably while
// the original continues to be edited.
func (b *Bundle) Clone() *Bundle {
	cp := *b
	cp.PairThresholds = append([]PairThreshold(nil), b.PairThresholds...)
	if b.Priority != nil {
		p := *b.Priority
		cp.Priority = &p
	}
	return &cp
}
