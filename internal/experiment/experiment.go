// Package experiment reproduces the paper's evaluation (Section V): the
// augmented Montage workflow is executed on the simulated testbed under
// each policy configuration, and the harness regenerates Table IV and the
// data series of Figs. 5-9, plus the ablations listed in DESIGN.md.
package experiment

import (
	"fmt"
	"strings"

	"policyflow/internal/dag"
	"policyflow/internal/executor"
	"policyflow/internal/montage"
	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/stats"
	"policyflow/internal/transfer"
	"policyflow/internal/workflow"
)

// Scenario is one complete experimental configuration.
type Scenario struct {
	// Name labels the scenario in tables.
	Name string
	// ExtraMB is the size of the additional staged file per staging job
	// (the paper sweeps 0, 10, 100, 500, 1000).
	ExtraMB float64
	// UsePolicy toggles consultation of the policy service; false is the
	// paper's "default Pegasus, no policy" baseline.
	UsePolicy bool
	// Algorithm selects the allocation policy when UsePolicy is set.
	Algorithm policy.Algorithm
	// Threshold is the greedy/balanced max-streams threshold per host pair.
	Threshold int
	// DefaultStreams is the per-transfer stream request.
	DefaultStreams int
	// ClusterFactor > 1 enables transfer clustering at planning time.
	ClusterFactor int
	// PriorityAlgorithm, when set, orders staging by workflow structure.
	PriorityAlgorithm dag.PriorityAlgorithm
	// GridSize scales the Montage workflow; 0 selects the paper's
	// 1-degree configuration (9x9 grid, 89 staging jobs).
	GridSize int
	// RuntimeScale scales compute-job durations; 0 means 1.
	RuntimeScale float64
	// PolicyCallSeconds overrides the simulated policy-service call
	// latency; negative means 0, zero selects the default (0.15 s).
	PolicyCallSeconds float64
	// Seed drives all simulation randomness.
	Seed int64
}

// Metrics is the outcome of one run.
type Metrics struct {
	// Completed is false when the workflow failed permanently (a task
	// exhausted its retry budget) — possible in deep-overload regimes.
	Completed bool
	// MakespanSeconds is the workflow execution time, the paper's
	// y-axis (time until permanent failure for incomplete runs).
	MakespanSeconds float64
	// MaxWANStreams is the peak concurrent stream count on the WAN pair
	// (Table IV's quantity).
	MaxWANStreams int
	// WANMBMoved is the payload transferred over the WAN, including
	// retried work.
	WANMBMoved float64
	// TransferFailures counts failed transfer attempts.
	TransferFailures int64
	// Retries counts task re-executions.
	Retries int
	// TransfersExecuted and TransfersSuppressed count PTT operations.
	TransfersExecuted   int64
	TransfersSuppressed int64
	// PolicyCalls counts policy service round trips.
	PolicyCalls int64
	// Sessions counts transfer sessions opened.
	Sessions int64
	// CleanupsExecuted counts deletions performed.
	CleanupsExecuted int64
	// Exec carries the executor's full result (per-task records,
	// busy/queue time aggregation, timeline export).
	Exec *executor.Result
}

// wanHost identifies the WAN source in generated URLs.
const wanHost = "alamo.futuregrid.tacc.example.org"

// PipeConfigFor returns the bandwidth model for a host pair: the WAN model
// when the source is the FutureGrid VM, the LAN model otherwise.
func PipeConfigFor(pair policy.HostPair) simnet.PipeConfig {
	if strings.Contains(pair.Src, "futuregrid") || strings.Contains(pair.Dst, "futuregrid") {
		return simnet.WANConfig()
	}
	return simnet.LANConfig()
}

// RunMontage executes one scenario and returns its metrics.
func RunMontage(s Scenario) (Metrics, error) {
	mcfg := montage.DefaultConfig(s.ExtraMB)
	if s.GridSize > 0 {
		mcfg.GridSize = s.GridSize
	}
	if s.RuntimeScale > 0 {
		mcfg.RuntimeScale = s.RuntimeScale
	}
	w, err := montage.Generate(mcfg)
	if err != nil {
		return Metrics{}, err
	}
	plan, err := w.Plan(workflow.PlanConfig{
		WorkflowID:        fmt.Sprintf("run-%d", s.Seed),
		ComputeSiteBase:   "file://obelix.isi.example.org/scratch",
		OutputSiteBase:    "file://obelix.isi.example.org/results",
		ClusterFactor:     s.ClusterFactor,
		Cleanup:           true,
		PriorityAlgorithm: s.PriorityAlgorithm,
	})
	if err != nil {
		return Metrics{}, err
	}

	env := simnet.NewEnv(s.Seed)
	fab := transfer.NewSimFabric(env, PipeConfigFor)

	var advisor transfer.Advisor
	var svc *policy.Service
	if s.UsePolicy {
		pcfg := policy.DefaultConfig()
		pcfg.Algorithm = s.Algorithm
		if pcfg.Algorithm == "" {
			pcfg.Algorithm = policy.AlgoGreedy
		}
		pcfg.DefaultThreshold = s.Threshold
		if pcfg.DefaultThreshold <= 0 {
			pcfg.DefaultThreshold = 50
		}
		pcfg.DefaultStreams = s.DefaultStreams
		if s.ClusterFactor > 1 {
			pcfg.ClusterFactor = s.ClusterFactor
		}
		svc, err = policy.New(pcfg)
		if err != nil {
			return Metrics{}, err
		}
		advisor = svc
	}

	callLatency := s.PolicyCallSeconds
	switch {
	case callLatency == 0:
		callLatency = 0.15
	case callLatency < 0:
		callLatency = 0
	}
	ptt, err := transfer.New(transfer.Config{
		Advisor:              advisor,
		Fabric:               fab,
		DefaultStreams:       s.DefaultStreams,
		SessionSetupSeconds:  2.0,
		TransferSetupSeconds: 0.5,
		PolicyCallSeconds:    callLatency,
	})
	if err != nil {
		return Metrics{}, err
	}

	ecfg := executor.DefaultConfig()
	cores := env.NewResource("cores", ecfg.ComputeCores)
	slots := env.NewResource("slots", ecfg.StagingSlots)
	h, err := executor.Start(env, plan, ptt, cores, slots, ecfg)
	if err != nil {
		return Metrics{}, err
	}
	env.Run(0)
	res, err := h.Result()
	completed := err == nil
	if err != nil && len(res.FailedTasks) == 0 {
		// Structural failure rather than exhausted retries: a real error.
		return Metrics{}, err
	}

	return collectMetrics(completed, res, ptt, fab), nil
}

// collectMetrics assembles run metrics from the executor result, transfer
// tool counters and the WAN pipes.
func collectMetrics(completed bool, res *executor.Result, ptt *transfer.PTT, fab *transfer.SimFabric) Metrics {
	m := Metrics{
		Completed:       completed,
		MakespanSeconds: res.Makespan,
		Retries:         res.Retries,
		Exec:            res,
	}
	st := ptt.Stats()
	m.TransfersExecuted = st.TransfersExecuted
	m.TransfersSuppressed = st.TransfersSuppressed
	m.TransferFailures = st.TransfersFailed
	m.PolicyCalls = st.PolicyCalls
	m.Sessions = st.Sessions
	m.CleanupsExecuted = st.CleanupsExecuted
	for pair, pipe := range fab.Pipes() {
		if strings.Contains(pair.Src, "futuregrid") {
			mb, _, _ := pipe.Stats()
			m.WANMBMoved += mb
			if pipe.MaxStreamsSeen() > m.MaxWANStreams {
				m.MaxWANStreams = pipe.MaxStreamsSeen()
			}
		}
	}
	return m
}

// Series aggregates repeated runs of one scenario.
type Series struct {
	Scenario Scenario
	// Makespan summarizes completed trials only.
	Makespan stats.Summary
	// DNF counts trials whose workflow failed permanently (retry budget
	// exhausted under deep overload).
	DNF int
	// MaxWANStreams is the maximum across trials.
	MaxWANStreams int
	// MeanFailures and MeanRetries average the failure/retry counters.
	MeanFailures float64
	MeanRetries  float64
	// MeanSuppressed averages policy suppressions per run.
	MeanSuppressed float64
}

// RunTrials executes the scenario `trials` times with distinct seeds and
// aggregates the results. Seeds derive from Scenario.Seed.
func RunTrials(s Scenario, trials int) (Series, error) {
	if trials < 1 {
		trials = 1
	}
	var mk, fails, retries, supp []float64
	out := Series{Scenario: s}
	for i := 0; i < trials; i++ {
		run := s
		run.Seed = s.Seed + int64(i)*1000003
		m, err := RunMontage(run)
		if err != nil {
			return out, fmt.Errorf("experiment %s trial %d: %w", s.Name, i, err)
		}
		if !m.Completed {
			out.DNF++
			continue
		}
		mk = append(mk, m.MakespanSeconds)
		fails = append(fails, float64(m.TransferFailures))
		retries = append(retries, float64(m.Retries))
		supp = append(supp, float64(m.TransfersSuppressed))
		if m.MaxWANStreams > out.MaxWANStreams {
			out.MaxWANStreams = m.MaxWANStreams
		}
	}
	out.Makespan = stats.Summarize(mk)
	out.MeanFailures = stats.Mean(fails)
	out.MeanRetries = stats.Mean(retries)
	out.MeanSuppressed = stats.Mean(supp)
	return out, nil
}
