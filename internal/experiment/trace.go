package experiment

import (
	"fmt"
	"sort"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// TraceSummary is the per-run accounting reconstructed from a lifecycle
// event stream — the same quantities the harness otherwise reads out of
// the live PTT and policy-service state, so figures can be regenerated
// from a recorded JSONL trace long after the run's memory is gone.
type TraceSummary struct {
	// Submitted counts transfer requests the policy service received.
	Submitted int
	// Advised counts transfers returned for execution.
	Advised int
	// Suppressed counts transfers removed, split by reason.
	Suppressed         int
	SuppressedByReason map[string]int
	// Started counts transfers the PTT began executing.
	Started int
	// Completed and Failed count reported outcomes.
	Completed int
	Failed    int
	// Cleaned counts executed file deletions.
	Cleaned int
	// BytesCompleted sums the payload of completed transfers.
	BytesCompleted int64
	// BytesByPair splits BytesCompleted per host pair.
	BytesByPair map[policy.HostPair]int64
	// TransferSeconds sums the measured durations of completed transfers.
	TransferSeconds float64
	// Workflows lists the distinct workflow IDs seen, sorted.
	Workflows []string
}

// SummarizeTrace folds a lifecycle event stream into per-run accounting.
// Events may come from an obs.Collector (embedded runs) or from
// obs.ReadEvents over a JSONL file recorded with policyserver -trace-out.
func SummarizeTrace(events []obs.Event) TraceSummary {
	s := TraceSummary{
		SuppressedByReason: make(map[string]int),
		BytesByPair:        make(map[policy.HostPair]int64),
	}
	wfs := make(map[string]bool)
	for _, e := range events {
		if e.WorkflowID != "" {
			wfs[e.WorkflowID] = true
		}
		switch e.Type {
		case obs.EventSubmitted:
			s.Submitted++
		case obs.EventAdvised:
			s.Advised++
		case obs.EventSuppressed:
			s.Suppressed++
			s.SuppressedByReason[e.Reason]++
		case obs.EventStarted:
			s.Started++
		case obs.EventCompleted:
			s.Completed++
			s.BytesCompleted += e.SizeBytes
			s.BytesByPair[policy.HostPair{Src: e.SourceHost, Dst: e.DestHost}] += e.SizeBytes
			s.TransferSeconds += e.Seconds
		case obs.EventFailed:
			s.Failed++
		case obs.EventCleaned:
			s.Cleaned++
		}
	}
	for wf := range wfs {
		s.Workflows = append(s.Workflows, wf)
	}
	sort.Strings(s.Workflows)
	return s
}

// CheckTraceConsistency verifies the lifecycle invariants of an event
// stream: every transfer's events appear in order (submitted before
// advised/suppressed, advised before started, started before
// completed/failed) and no transfer is both advised and suppressed. It
// returns the first violation found, or nil — the decoder-side guarantee
// that a recorded trace is a faithful provenance record.
func CheckTraceConsistency(events []obs.Event) error {
	const (
		seenSubmitted = 1 << iota
		seenAdvised
		seenSuppressed
		seenStarted
		seenDone
	)
	state := make(map[string]int)
	for i, e := range events {
		if e.TransferID == "" {
			continue
		}
		st := state[e.TransferID]
		fail := func(msg string) error {
			return fmt.Errorf("experiment: trace event %d (%s %s): %s", i, e.Type, e.TransferID, msg)
		}
		switch e.Type {
		case obs.EventSubmitted:
			if st != 0 {
				return fail("submitted twice")
			}
			st |= seenSubmitted
		case obs.EventAdvised:
			if st&seenSubmitted == 0 {
				return fail("advised before submitted")
			}
			if st&seenSuppressed != 0 {
				return fail("advised after suppressed")
			}
			st |= seenAdvised
		case obs.EventSuppressed:
			if st&seenSubmitted == 0 {
				return fail("suppressed before submitted")
			}
			if st&seenAdvised != 0 {
				return fail("suppressed after advised")
			}
			st |= seenSuppressed
		case obs.EventStarted:
			if st&seenAdvised == 0 {
				return fail("started before advised")
			}
			st |= seenStarted
		case obs.EventCompleted, obs.EventFailed:
			if st&seenAdvised == 0 {
				return fail("finished before advised")
			}
			st |= seenDone
		}
		state[e.TransferID] = st
	}
	return nil
}
