package experiment

import (
	"strings"
	"testing"

	"policyflow/internal/synth"
)

// TestPrioritiesHelpOnAsymmetricShapes: on scrambled-submission diamond
// and chain workflows with scarce staging slots, the dependent priority
// algorithm must clearly beat unprioritized FIFO staging — the positive
// counterpart to the Montage null result.
func TestPrioritiesHelpOnAsymmetricShapes(t *testing.T) {
	res, err := SyntheticPriorityAblation(
		[]synth.Shape{synth.Diamond, synth.Chain}, Options{Trials: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		none := r.Makespans["none"].Mean
		dep := r.Makespans["dependent"].Mean
		if dep >= none {
			t.Errorf("%s: dependent (%.0f) did not beat none (%.0f)", r.Shape, dep, none)
		}
		// At least 10% improvement on these shapes.
		if (none-dep)/none < 0.10 {
			t.Errorf("%s: improvement only %.1f%%", r.Shape, (none-dep)/none*100)
		}
	}
	var sb strings.Builder
	WriteShapePriorities(&sb, res)
	if !strings.Contains(sb.String(), "diamond") {
		t.Fatal("table missing shape rows")
	}
}

func TestRunWorkflowValidation(t *testing.T) {
	if _, err := RunWorkflow(WorkflowRun{}); err == nil {
		t.Fatal("nil workflow accepted")
	}
}

func TestRunWorkflowSynthetic(t *testing.T) {
	w, err := synth.Generate(synth.Config{Shape: synth.FanOut, Jobs: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunWorkflow(WorkflowRun{
		Workflow:       w,
		UsePolicy:      true,
		Threshold:      50,
		DefaultStreams: 4,
		Cleanup:        true,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed || m.MakespanSeconds <= 0 || m.WANMBMoved <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.CleanupsExecuted == 0 {
		t.Fatal("no cleanups")
	}
}
