package experiment

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"policyflow/internal/executor"
	"policyflow/internal/montage"
	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/stats"
	"policyflow/internal/transfer"
	"policyflow/internal/workflow"
)

// timingAdvisor wraps a policy service and measures the real (wall-clock)
// cost of each advice call — the rule engine's actual evaluation time,
// which is what bounds a centralized service's throughput.
type timingAdvisor struct {
	svc *policy.Service
	mu  sync.Mutex
	// adviseMicros records each AdviseTransfers duration in microseconds.
	adviseMicros []float64
}

func (a *timingAdvisor) AdviseTransfers(specs []policy.TransferSpec) (*policy.TransferAdvice, error) {
	start := time.Now()
	adv, err := a.svc.AdviseTransfers(specs)
	elapsed := float64(time.Since(start).Microseconds())
	a.mu.Lock()
	a.adviseMicros = append(a.adviseMicros, elapsed)
	a.mu.Unlock()
	return adv, err
}

func (a *timingAdvisor) ReportTransfers(r policy.CompletionReport) (*policy.ReportAck, error) {
	return a.svc.ReportTransfers(r)
}

func (a *timingAdvisor) AdviseCleanups(specs []policy.CleanupSpec) (*policy.CleanupAdvice, error) {
	return a.svc.AdviseCleanups(specs)
}

func (a *timingAdvisor) ReportCleanups(r policy.CleanupReport) (*policy.ReportAck, error) {
	return a.svc.ReportCleanups(r)
}

// ScalabilityPoint measures the centralized policy service under K
// concurrently planned workflows (the paper's future-work question about
// "the scalability of the centralized policy service when planning
// multiple complex workflows").
type ScalabilityPoint struct {
	// Workflows is the number of concurrent workflows.
	Workflows int
	// MakespanSeconds is the simulated time for all workflows to finish.
	MakespanSeconds float64
	// Advise summarizes the real rule-engine evaluation cost per advice
	// call, in microseconds of wall-clock time.
	Advise stats.Summary
	// PolicyCalls counts total service round trips.
	PolicyCalls int64
	// RuleFirings counts rule activations fired over the run.
	RuleFirings int64
	// FinalFacts is the Policy Memory size at the end of the run (staged
	// resources persist).
	FinalFacts int
}

// ServiceScalability runs K concurrent scaled-down Montage workflows
// against one policy service for each K in workflowCounts.
func ServiceScalability(workflowCounts []int, o Options) ([]ScalabilityPoint, error) {
	o = o.norm()
	grid := o.GridSize
	if grid == 0 {
		grid = 4
	}
	var out []ScalabilityPoint
	for _, k := range workflowCounts {
		if k < 1 {
			return nil, fmt.Errorf("experiment: invalid workflow count %d", k)
		}
		pcfg := policy.DefaultConfig()
		pcfg.DefaultThreshold = 50
		pcfg.DefaultStreams = 4
		svc, err := policy.New(pcfg)
		if err != nil {
			return nil, err
		}
		ta := &timingAdvisor{svc: svc}

		env := simnet.NewEnv(o.Seed + int64(k))
		fab := transfer.NewSimFabric(env, PipeConfigFor)
		ptt, err := transfer.New(transfer.Config{
			Advisor: ta, Fabric: fab, DefaultStreams: 4,
			SessionSetupSeconds: 2, TransferSetupSeconds: 0.5, PolicyCallSeconds: 0.15,
		})
		if err != nil {
			return nil, err
		}
		ecfg := executor.DefaultConfig()
		cores := env.NewResource("cores", ecfg.ComputeCores)
		slots := env.NewResource("slots", ecfg.StagingSlots)

		var handles []*executor.Handle
		for i := 0; i < k; i++ {
			mcfg := montage.DefaultConfig(10)
			mcfg.GridSize = grid
			w, err := montage.Generate(mcfg)
			if err != nil {
				return nil, err
			}
			plan, err := w.Plan(workflow.PlanConfig{
				WorkflowID:      fmt.Sprintf("scale-wf%d", i+1),
				ComputeSiteBase: "file://obelix.isi.example.org/scratch",
				Cleanup:         true,
			})
			if err != nil {
				return nil, err
			}
			h, err := executor.Start(env, plan, ptt, cores, slots, ecfg)
			if err != nil {
				return nil, err
			}
			handles = append(handles, h)
		}
		makespan := env.Run(0)
		for i, h := range handles {
			if _, err := h.Result(); err != nil {
				return nil, fmt.Errorf("scalability k=%d wf%d: %w", k, i+1, err)
			}
		}
		pt := ScalabilityPoint{
			Workflows:       k,
			MakespanSeconds: makespan,
			Advise:          stats.Summarize(ta.adviseMicros),
			PolicyCalls:     ptt.Stats().PolicyCalls,
			RuleFirings:     svc.RuleFirings(),
			FinalFacts:      svc.FactCount(),
		}
		out = append(out, pt)
	}
	return out, nil
}

// WriteScalability renders a scalability sweep.
func WriteScalability(w io.Writer, pts []ScalabilityPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workflows\tmakespan (s)\tadvice mean (µs)\tadvice max (µs)\tpolicy calls\trule firings\tfinal facts")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%.1f\t%.0f\t%.0f\t%d\t%d\t%d\n",
			p.Workflows, p.MakespanSeconds, p.Advise.Mean, p.Advise.Max,
			p.PolicyCalls, p.RuleFirings, p.FinalFacts)
	}
	tw.Flush()
}
