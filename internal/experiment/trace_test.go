package experiment

import (
	"bytes"
	"testing"

	"policyflow/internal/obs"
	"policyflow/internal/synth"
)

// TestTraceIsProvenance runs a workflow with a collector tracer and an
// attached registry, then checks that the figures' quantities can be
// regenerated from the event stream alone: the trace summary must agree
// with the live Metrics the harness collected during the run.
func TestTraceIsProvenance(t *testing.T) {
	w, err := synth.Generate(synth.Config{Shape: synth.FanOut, Jobs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var tr obs.Collector
	reg := obs.NewRegistry()
	m, err := RunWorkflow(WorkflowRun{
		Workflow:       w,
		UsePolicy:      true,
		Threshold:      50,
		DefaultStreams: 4,
		Cleanup:        true,
		Seed:           3,
		Obs:            reg,
		Tracer:         &tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events collected")
	}
	if err := CheckTraceConsistency(events); err != nil {
		t.Fatal(err)
	}
	s := SummarizeTrace(events)
	if int64(s.Completed) != m.TransfersExecuted {
		t.Errorf("trace completed = %d, metrics executed = %d", s.Completed, m.TransfersExecuted)
	}
	if int64(s.Suppressed) != m.TransfersSuppressed {
		t.Errorf("trace suppressed = %d, metrics suppressed = %d", s.Suppressed, m.TransfersSuppressed)
	}
	if int64(s.Failed) != m.TransferFailures {
		t.Errorf("trace failed = %d, metrics failures = %d", s.Failed, m.TransferFailures)
	}
	if s.Started != s.Completed+s.Failed {
		t.Errorf("started %d != completed %d + failed %d", s.Started, s.Completed, s.Failed)
	}
	if s.Submitted != s.Advised+s.Suppressed {
		t.Errorf("submitted %d != advised %d + suppressed %d", s.Submitted, s.Advised, s.Suppressed)
	}
	if s.Advised == 0 || s.BytesCompleted == 0 || len(s.Workflows) != 1 {
		t.Errorf("implausible summary: %+v", s)
	}

	// The registry captured the same run: executor and transfer series
	// must be present and consistent with the trace.
	var sb bytes.Buffer
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, frag := range []string{
		"# TYPE transfer_duration_seconds histogram",
		"# TYPE executor_queue_wait_seconds histogram",
		"# TYPE policy_transfers_advised_total counter",
	} {
		if !bytes.Contains(sb.Bytes(), []byte(frag)) {
			t.Errorf("registry scrape missing %q:\n%s", frag, text[:min(len(text), 2000)])
		}
	}

	// Round-trip through JSONL: the decoded stream summarizes identically.
	var buf bytes.Buffer
	jt := obs.NewJSONLTracer(&buf)
	for _, e := range events {
		jt.Emit(e)
	}
	if err := jt.Close(); err != nil {
		t.Fatal(err)
	}
	decoded, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := SummarizeTrace(decoded)
	if s2.Completed != s.Completed || s2.BytesCompleted != s.BytesCompleted ||
		s2.Suppressed != s.Suppressed || s2.TransferSeconds != s.TransferSeconds {
		t.Errorf("JSONL round-trip changed the summary:\n got %+v\nwant %+v", s2, s)
	}
}

func TestCheckTraceConsistencyRejectsBadStreams(t *testing.T) {
	bad := [][]obs.Event{
		{{Type: obs.EventAdvised, TransferID: "t-1"}},
		{{Type: obs.EventSubmitted, TransferID: "t-1"}, {Type: obs.EventStarted, TransferID: "t-1"}},
		{
			{Type: obs.EventSubmitted, TransferID: "t-1"},
			{Type: obs.EventSuppressed, TransferID: "t-1"},
			{Type: obs.EventAdvised, TransferID: "t-1"},
		},
		{
			{Type: obs.EventSubmitted, TransferID: "t-1"},
			{Type: obs.EventSubmitted, TransferID: "t-1"},
		},
	}
	for i, events := range bad {
		if err := CheckTraceConsistency(events); err == nil {
			t.Errorf("case %d: invalid stream accepted", i)
		}
	}
}
