package experiment

import (
	"strings"
	"testing"

	"policyflow/internal/policy"
)

// paperScenario returns a full-scale (9x9 grid, 89 staging jobs) scenario.
func paperScenario(extraMB float64, usePolicy bool, threshold, defStreams int, seed int64) Scenario {
	return Scenario{
		ExtraMB:        extraMB,
		UsePolicy:      usePolicy,
		Algorithm:      policy.AlgoGreedy,
		Threshold:      threshold,
		DefaultStreams: defStreams,
		Seed:           seed,
	}
}

func TestRunMontageBasics(t *testing.T) {
	m, err := RunMontage(paperScenario(100, true, 50, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.MakespanSeconds <= 0 {
		t.Fatal("zero makespan")
	}
	// 89 extra files x 100 MB cross the WAN.
	if m.WANMBMoved < 8900-1 {
		t.Fatalf("WAN MB = %v, want >= 8900", m.WANMBMoved)
	}
	// 89 stage-in jobs x 2 transfers + stage-outs succeeded.
	if m.TransfersExecuted < 178 {
		t.Fatalf("transfers executed = %d", m.TransfersExecuted)
	}
	if m.PolicyCalls == 0 {
		t.Fatal("policy service never consulted")
	}
	if m.CleanupsExecuted == 0 {
		t.Fatal("no cleanups")
	}
}

// TestMaxStreamsMatchTableIV: the simulation's observed peak WAN stream
// counts must equal the analytic Table IV values, because 20 staging jobs
// are in flight at peak.
func TestMaxStreamsMatchTableIV(t *testing.T) {
	cases := []struct {
		threshold, defStreams int
		usePolicy             bool
		want                  int
	}{
		{50, 8, true, 63},
		{50, 4, true, 57},
		{50, 12, true, 65},
		{100, 8, true, 107},
		{200, 8, true, 160},
		{200, 12, true, 203},
		{0, 4, false, 80}, // no policy: 20 jobs x 4 streams
	}
	for _, c := range cases {
		m, err := RunMontage(paperScenario(100, c.usePolicy, c.threshold, c.defStreams, 3))
		if err != nil {
			t.Fatalf("th=%d d=%d: %v", c.threshold, c.defStreams, err)
		}
		if m.MaxWANStreams != c.want {
			t.Errorf("th=%d d=%d: max WAN streams = %d, want %d",
				c.threshold, c.defStreams, m.MaxWANStreams, c.want)
		}
	}
}

func TestTableIVAnalytic(t *testing.T) {
	tab := TableIV()
	want := map[int][]int{
		50:  {57, 61, 63, 65, 65},
		100: {80, 103, 107, 110, 111},
		200: {80, 120, 160, 200, 203},
		0:   {80, 120, 160, 200, 240},
	}
	for th, row := range want {
		for i, v := range row {
			if tab[th][i] != v {
				t.Errorf("TableIV[%d][%d] = %d, want %d", th, i, tab[th][i], v)
			}
		}
	}
	var sb strings.Builder
	WriteTableIV(&sb)
	if !strings.Contains(sb.String(), "no-policy") {
		t.Fatal("rendered table missing no-policy row")
	}
}

// TestFig7Shape asserts the paper's headline 100 MB results: greedy-50
// beats no-policy by roughly 6.7% at 8 default streams, and threshold 200
// is roughly 28.8% worse than threshold 50.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure run")
	}
	trials := 3
	g50, err := RunTrials(paperScenario(100, true, 50, 8, 11), trials)
	if err != nil {
		t.Fatal(err)
	}
	g200, err := RunTrials(paperScenario(100, true, 200, 8, 11), trials)
	if err != nil {
		t.Fatal(err)
	}
	np, err := RunTrials(paperScenario(100, false, 0, 4, 11), trials)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("greedy-50=%v greedy-200=%v no-policy=%v", g50.Makespan, g200.Makespan, np.Makespan)
	// Ordering: 50 < no-policy < 200.
	if !(g50.Makespan.Mean < np.Makespan.Mean && np.Makespan.Mean < g200.Makespan.Mean) {
		t.Fatalf("ordering violated: 50=%.0f np=%.0f 200=%.0f",
			g50.Makespan.Mean, np.Makespan.Mean, g200.Makespan.Mean)
	}
	// Paper: no-policy 6.7% slower than greedy-50 (we accept 3-15%).
	rel := np.Makespan.Mean/g50.Makespan.Mean - 1
	if rel < 0.03 || rel > 0.15 {
		t.Errorf("no-policy vs greedy-50 = %.1f%%, want ~6.7%%", rel*100)
	}
	// Paper: greedy-200 28.8% slower than greedy-50 (we accept 18-45%).
	rel = g200.Makespan.Mean/g50.Makespan.Mean - 1
	if rel < 0.18 || rel > 0.45 {
		t.Errorf("greedy-200 vs greedy-50 = %.1f%%, want ~28.8%%", rel*100)
	}
}

// TestFig6Shape: at 10 MB additional files the policies barely differ
// (the paper: "not much difference", at most ~6%).
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure run")
	}
	trials := 2
	g50, err := RunTrials(paperScenario(10, true, 50, 8, 21), trials)
	if err != nil {
		t.Fatal(err)
	}
	g200, err := RunTrials(paperScenario(10, true, 200, 8, 21), trials)
	if err != nil {
		t.Fatal(err)
	}
	spread := g200.Makespan.Mean/g50.Makespan.Mean - 1
	if spread < 0 {
		spread = -spread
	}
	// The spread at 10 MB must be far below the ~29% separation seen at
	// 100 MB (Fig. 7): small files are overhead- and compute-dominated.
	if spread > 0.15 {
		t.Errorf("10MB threshold spread = %.1f%%, want small (<15%%)", spread*100)
	}
}

// TestFig8Shape: at 500 MB, greedy-50 clearly beats no-policy (paper: 14%
// at 8 streams; we accept 6-25%) and threshold 100 stays close to 50.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure run")
	}
	trials := 2
	g50, err := RunTrials(paperScenario(500, true, 50, 8, 31), trials)
	if err != nil {
		t.Fatal(err)
	}
	g100, err := RunTrials(paperScenario(500, true, 100, 8, 31), trials)
	if err != nil {
		t.Fatal(err)
	}
	np, err := RunTrials(paperScenario(500, false, 0, 4, 31), trials)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("500MB: greedy-50=%v greedy-100=%v no-policy=%v", g50.Makespan, g100.Makespan, np.Makespan)
	rel := np.Makespan.Mean/g50.Makespan.Mean - 1
	if rel < 0.06 || rel > 0.25 {
		t.Errorf("500MB no-policy vs greedy-50 = %.1f%%, want ~14%%", rel*100)
	}
	// Threshold 100: the paper places it between 50 and no-policy; in
	// our simulator greedy-100's one-stream stragglers under overload
	// make it land next to no-policy instead (documented deviation in
	// EXPERIMENTS.md). Assert it stays well below threshold 200
	// territory (which is ~40%+ worse at 500 MB).
	rel = g100.Makespan.Mean/g50.Makespan.Mean - 1
	if rel > 0.25 {
		t.Errorf("500MB greedy-100 vs greedy-50 = %.1f%%, want < 25%%", rel*100)
	}
}

// TestFig9Shape: at 1 GB the paper finds "no clear advantage to using any
// of the greedy threshold values over the default Pegasus performance".
// Our simulator keeps a modest ordering advantage for threshold 50
// (documented deviation); this test pins the reproduced relationship:
// threshold 50 is never worse than no-policy, and the two are within ~25%.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure run")
	}
	trials := 2
	g50, err := RunTrials(paperScenario(1000, true, 50, 8, 51), trials)
	if err != nil {
		t.Fatal(err)
	}
	np, err := RunTrials(paperScenario(1000, false, 0, 4, 51), trials)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("1GB: greedy-50=%v no-policy=%v", g50.Makespan, np.Makespan)
	if g50.Makespan.Mean > np.Makespan.Mean*1.02 {
		t.Errorf("greedy-50 (%v) worse than no-policy (%v) at 1GB",
			g50.Makespan.Mean, np.Makespan.Mean)
	}
	if rel := np.Makespan.Mean/g50.Makespan.Mean - 1; rel > 0.25 {
		t.Errorf("1GB separation = %.1f%%, implausibly large", rel*100)
	}
}

// TestFig5Shape: with the threshold fixed at 50, file size dominates and
// the default stream count has little effect (the paper's Fig. 5).
func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure run")
	}
	// Size effect: 500 MB takes much longer than 10 MB.
	m10, err := RunMontage(paperScenario(10, true, 50, 8, 41))
	if err != nil {
		t.Fatal(err)
	}
	m500, err := RunMontage(paperScenario(500, true, 50, 8, 41))
	if err != nil {
		t.Fatal(err)
	}
	if m500.MakespanSeconds < 3*m10.MakespanSeconds {
		t.Errorf("size effect too weak: 10MB=%.0f 500MB=%.0f",
			m10.MakespanSeconds, m500.MakespanSeconds)
	}
	// Stream-count effect at threshold 50: small (same saturated pipe).
	d4, err := RunMontage(paperScenario(100, true, 50, 4, 41))
	if err != nil {
		t.Fatal(err)
	}
	d12, err := RunMontage(paperScenario(100, true, 50, 12, 41))
	if err != nil {
		t.Fatal(err)
	}
	rel := d12.MakespanSeconds/d4.MakespanSeconds - 1
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.08 {
		t.Errorf("default-streams effect at threshold 50 = %.1f%%, want small", rel*100)
	}
}

func TestMultiWorkflowSharing(t *testing.T) {
	// Scaled-down grid for speed; the sharing logic is size-independent.
	o := Options{Trials: 1, GridSize: 4, Seed: 5}
	withPolicy, err := MultiWorkflow(10, true, o)
	if err != nil {
		t.Fatal(err)
	}
	if withPolicy.TransfersSuppressed == 0 {
		t.Fatal("no duplicate suppression across workflows")
	}
	noPolicy, err := MultiWorkflow(10, false, o)
	if err != nil {
		t.Fatal(err)
	}
	if noPolicy.TransfersSuppressed != 0 {
		t.Fatal("suppression without policy?")
	}
	// Sharing halves the staged bytes, so the policy run is faster.
	if withPolicy.MakespanSeconds >= noPolicy.MakespanSeconds {
		t.Errorf("sharing did not help: with=%v without=%v",
			withPolicy.MakespanSeconds, noPolicy.MakespanSeconds)
	}
	if withPolicy.CleanupsSuppressed == 0 {
		t.Error("no cleanup suppression despite shared files")
	}
}

func TestFig2ClusteringReducesSessions(t *testing.T) {
	o := Options{Trials: 1, GridSize: 4, Seed: 7}
	res, err := Fig2Clustering(10, 4, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionsClustered >= res.SessionsUnclustered {
		t.Errorf("clustering did not reduce sessions: %d vs %d",
			res.SessionsClustered, res.SessionsUnclustered)
	}
}

func TestBalancedVsGreedyRuns(t *testing.T) {
	o := Options{Trials: 1, GridSize: 4, Seed: 9}
	res, err := BalancedVsGreedy(10, 4, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Greedy.Mean <= 0 || res.Balanced.Mean <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestPriorityAblationRuns(t *testing.T) {
	o := Options{Trials: 1, GridSize: 3, Seed: 13}
	res, err := PriorityAblation(10, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"none", "bfs", "dfs", "direct-dependent", "dependent"} {
		if _, ok := res[name]; !ok {
			t.Errorf("missing algorithm %s", name)
		}
	}
}

func TestPolicyOverheadSweep(t *testing.T) {
	o := Options{Trials: 1, GridSize: 4, Seed: 17}
	pts, err := PolicyOverheadSweep([]float64{0, 2}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Higher call latency can only slow the workflow down.
	if pts[1].Makespan.Mean < pts[0].Makespan.Mean {
		t.Errorf("latency sped things up: %+v", pts)
	}
	var sb strings.Builder
	WriteOverheads(&sb, pts)
	if !strings.Contains(sb.String(), "policy call latency") {
		t.Fatal("overhead table malformed")
	}
}

func TestFigDriversSmallGrid(t *testing.T) {
	o := Options{Trials: 1, GridSize: 3, Seed: 19}
	pts, err := FigThreshold(10, o)
	if err != nil {
		t.Fatal(err)
	}
	// 3 thresholds x 5 defaults + 1 no-policy point.
	if len(pts) != 16 {
		t.Fatalf("points = %d, want 16", len(pts))
	}
	if _, ok := FindPoint(pts, "no-policy", 4); !ok {
		t.Fatal("missing no-policy point")
	}
	if _, ok := FindPoint(pts, "greedy-50", 12); !ok {
		t.Fatal("missing greedy-50 series")
	}
	var sb strings.Builder
	WritePoints(&sb, "fig", pts)
	if !strings.Contains(sb.String(), "greedy-200") {
		t.Fatal("rendered points missing series")
	}
}

func TestRunTrialsAggregates(t *testing.T) {
	s := paperScenario(10, true, 50, 4, 23)
	s.GridSize = 3
	ser, err := RunTrials(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ser.Makespan.N != 3 {
		t.Fatalf("N = %d", ser.Makespan.N)
	}
	if ser.Makespan.Mean <= 0 {
		t.Fatal("zero mean")
	}
	// Distinct seeds: jitter should produce nonzero variance.
	if ser.Makespan.StdDev == 0 {
		t.Error("zero stddev across seeded trials")
	}
}
