package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"

	"policyflow/internal/policy"
	"policyflow/internal/tuner"
)

// TunerEpisode records one episode of threshold learning.
type TunerEpisode struct {
	Threshold int
	// RewardMBps is the effective WAN goodput of the episode's workflow
	// run (WAN megabytes over makespan).
	RewardMBps float64
	Makespan   float64
}

// TunerResult summarizes a threshold-learning experiment.
type TunerResult struct {
	Episodes []TunerEpisode
	// Best is the learner's final recommendation.
	Best int
	// BaselineMakespan is the mean makespan over the last quarter of
	// episodes (converged behaviour).
	ConvergedMakespan float64
}

// TuneThreshold runs the paper's proposed machine-learning extension
// end to end: a learner picks the greedy threshold for each workflow run
// (episode), observes the achieved WAN goodput, and converges toward the
// testbed's knee — discovering, rather than being told, the "threshold
// number of streams most beneficial for the application".
func TuneThreshold(fileMB float64, episodes int, learner tuner.Learner, o Options) (TunerResult, error) {
	o = o.norm()
	var res TunerResult
	if episodes < 1 {
		episodes = 1
	}
	for i := 0; i < episodes; i++ {
		th := learner.Next()
		m, err := RunMontage(Scenario{
			ExtraMB:        fileMB,
			UsePolicy:      true,
			Algorithm:      policy.AlgoGreedy,
			Threshold:      th,
			DefaultStreams: 8,
			GridSize:       o.GridSize,
			Seed:           o.Seed + int64(i)*7919,
		})
		if err != nil {
			return res, fmt.Errorf("tuning episode %d: %w", i, err)
		}
		reward := 0.0
		if m.Completed && m.MakespanSeconds > 0 {
			reward = m.WANMBMoved / m.MakespanSeconds
		}
		learner.Record(th, reward)
		res.Episodes = append(res.Episodes, TunerEpisode{
			Threshold:  th,
			RewardMBps: reward,
			Makespan:   m.MakespanSeconds,
		})
	}
	res.Best = learner.Best()
	tail := len(res.Episodes) / 4
	if tail < 1 {
		tail = 1
	}
	sum := 0.0
	for _, e := range res.Episodes[len(res.Episodes)-tail:] {
		sum += e.Makespan
	}
	res.ConvergedMakespan = sum / float64(tail)
	return res, nil
}

// WriteTunerResult renders a tuning trajectory.
func WriteTunerResult(w io.Writer, res TunerResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "episode\tthreshold\treward (MB/s)\tmakespan (s)")
	for i, e := range res.Episodes {
		fmt.Fprintf(tw, "%d\t%d\t%.3f\t%.1f\n", i+1, e.Threshold, e.RewardMBps, e.Makespan)
	}
	tw.Flush()
	fmt.Fprintf(w, "recommended threshold: %d (converged makespan %.1f s)\n",
		res.Best, res.ConvergedMakespan)
}
