package experiment

import (
	"fmt"

	"policyflow/internal/dag"
	"policyflow/internal/executor"
	"policyflow/internal/obs"
	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/transfer"
	"policyflow/internal/workflow"
)

// WorkflowRun configures the execution of an arbitrary abstract workflow
// on the simulated testbed — the general form of RunMontage, used for
// synthetic-workload experiments.
type WorkflowRun struct {
	// Workflow is the abstract workflow to plan and execute.
	Workflow *workflow.Workflow
	// WorkflowID defaults to the workflow name.
	WorkflowID string
	// Planning options.
	ClusterFactor     int
	Cleanup           bool
	PriorityAlgorithm dag.PriorityAlgorithm
	SharedScratch     bool
	// Policy options.
	UsePolicy         bool
	Algorithm         policy.Algorithm
	Threshold         int
	DefaultStreams    int
	PolicyCallSeconds float64
	// Resources; zero selects the paper defaults (54 cores, 20 slots).
	Cores int
	Slots int
	// Seed drives all randomness.
	Seed int64
	// Obs, when set, collects policy, transfer and executor metrics for
	// the run in one registry.
	Obs *obs.Registry
	// Tracer, when set, receives the per-transfer lifecycle event stream
	// — the run's provenance record, from which figures can be
	// regenerated without access to in-memory state.
	Tracer obs.Tracer
}

// RunWorkflow plans and executes the run, returning its metrics.
func RunWorkflow(r WorkflowRun) (Metrics, error) {
	if r.Workflow == nil {
		return Metrics{}, fmt.Errorf("experiment: WorkflowRun.Workflow is required")
	}
	if r.WorkflowID == "" {
		r.WorkflowID = r.Workflow.Name
	}
	plan, err := r.Workflow.Plan(workflow.PlanConfig{
		WorkflowID:        r.WorkflowID,
		ComputeSiteBase:   "file://obelix.isi.example.org/scratch",
		OutputSiteBase:    "file://obelix.isi.example.org/results",
		ClusterFactor:     r.ClusterFactor,
		Cleanup:           r.Cleanup,
		PriorityAlgorithm: r.PriorityAlgorithm,
		SharedScratch:     r.SharedScratch,
	})
	if err != nil {
		return Metrics{}, err
	}

	env := simnet.NewEnv(r.Seed)
	fab := transfer.NewSimFabric(env, PipeConfigFor)

	var advisor transfer.Advisor
	if r.UsePolicy {
		pcfg := policy.DefaultConfig()
		if r.Algorithm != "" {
			pcfg.Algorithm = r.Algorithm
		}
		if r.Threshold > 0 {
			pcfg.DefaultThreshold = r.Threshold
		}
		if r.DefaultStreams > 0 {
			pcfg.DefaultStreams = r.DefaultStreams
		}
		if r.ClusterFactor > 1 {
			pcfg.ClusterFactor = r.ClusterFactor
		}
		svc, err := policy.New(pcfg)
		if err != nil {
			return Metrics{}, err
		}
		if r.Obs != nil || r.Tracer != nil {
			svc.Instrument(r.Obs, r.Tracer)
		}
		advisor = svc
	}

	callLatency := r.PolicyCallSeconds
	if callLatency == 0 {
		callLatency = 0.15
	} else if callLatency < 0 {
		callLatency = 0
	}
	ptt, err := transfer.New(transfer.Config{
		Advisor:              advisor,
		Fabric:               fab,
		DefaultStreams:       max(1, r.DefaultStreams),
		SessionSetupSeconds:  2.0,
		TransferSetupSeconds: 0.5,
		PolicyCallSeconds:    callLatency,
		Obs:                  r.Obs,
		Tracer:               r.Tracer,
	})
	if err != nil {
		return Metrics{}, err
	}

	ecfg := executor.DefaultConfig()
	ecfg.Obs = r.Obs
	if r.Cores > 0 {
		ecfg.ComputeCores = r.Cores
	}
	if r.Slots > 0 {
		ecfg.StagingSlots = r.Slots
	}
	cores := env.NewResource("cores", ecfg.ComputeCores)
	slots := env.NewResource("slots", ecfg.StagingSlots)
	h, err := executor.Start(env, plan, ptt, cores, slots, ecfg)
	if err != nil {
		return Metrics{}, err
	}
	env.Run(0)
	res, err := h.Result()
	completed := err == nil
	if err != nil && len(res.FailedTasks) == 0 {
		return Metrics{}, err
	}
	return collectMetrics(completed, res, ptt, fab), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
