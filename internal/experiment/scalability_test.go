package experiment

import (
	"strings"
	"testing"
)

func TestServiceScalability(t *testing.T) {
	pts, err := ServiceScalability([]int{1, 3}, Options{Trials: 1, GridSize: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	one, three := pts[0], pts[1]
	if one.Workflows != 1 || three.Workflows != 3 {
		t.Fatalf("workflow counts = %d, %d", one.Workflows, three.Workflows)
	}
	// Triple the workflows, triple the advice traffic and rule firings
	// (same workload per workflow; dedup doesn't apply across per-run
	// scratch dirs).
	if three.PolicyCalls != 3*one.PolicyCalls {
		t.Errorf("policy calls: %d vs 3x%d", three.PolicyCalls, one.PolicyCalls)
	}
	if three.RuleFirings <= 2*one.RuleFirings {
		t.Errorf("rule firings: %d vs %d", three.RuleFirings, one.RuleFirings)
	}
	// Shared resources (cores, slots, WAN): more workflows take longer.
	if three.MakespanSeconds <= one.MakespanSeconds {
		t.Errorf("makespans: %v vs %v", three.MakespanSeconds, one.MakespanSeconds)
	}
	if one.Advise.N == 0 || one.Advise.Mean <= 0 {
		t.Fatalf("no advice timing collected: %+v", one.Advise)
	}
	var sb strings.Builder
	WriteScalability(&sb, pts)
	if !strings.Contains(sb.String(), "advice mean") {
		t.Fatal("table malformed")
	}
	if _, err := ServiceScalability([]int{0}, Options{}); err == nil {
		t.Fatal("zero workflows accepted")
	}
}
