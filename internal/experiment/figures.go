package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"

	"policyflow/internal/policy"
)

// DefaultStreamsSweep is the x-axis of Figs. 5-9: the default number of
// streams per transfer.
var DefaultStreamsSweep = []int{4, 6, 8, 10, 12}

// ThresholdSweep is the greedy thresholds compared in Figs. 6-9.
var ThresholdSweep = []int{50, 100, 200}

// FileSizesMB is the additional-file sizes swept in Fig. 5 (0 = the
// unaugmented workflow).
var FileSizesMB = []float64{0, 10, 100, 500, 1000}

// Options tunes a figure regeneration.
type Options struct {
	// Trials per data point; the paper runs each experiment >= 5 times.
	Trials int
	// GridSize scales the workflow down for fast test runs (0 = paper).
	GridSize int
	// Seed is the base random seed.
	Seed int64
}

func (o Options) norm() Options {
	if o.Trials < 1 {
		o.Trials = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Point is one plotted datum of a figure.
type Point struct {
	// Series labels the curve ("greedy-50", "no-policy", "10MB", ...).
	Series string
	// X is the default streams per transfer.
	X int
	// MeanSeconds and StdSeconds are the workflow execution time stats.
	MeanSeconds float64
	StdSeconds  float64
	// MaxWANStreams is the observed peak stream count.
	MaxWANStreams int
	// DNF counts trials that failed permanently (deep overload).
	DNF int
}

// TableIV regenerates Table IV: maximum streams allocated for 20
// concurrent staging jobs under each (threshold, default streams)
// combination, plus the no-policy row. It is analytic (the paper derives
// it the same way); the simulation's observed peaks are checked against it
// in the tests.
func TableIV() map[int][]int {
	const concurrentJobs = 20
	out := make(map[int][]int)
	for _, th := range ThresholdSweep {
		row := make([]int, len(DefaultStreamsSweep))
		for i, d := range DefaultStreamsSweep {
			row[i] = policy.GreedyMaxStreams(th, d, concurrentJobs)
		}
		out[th] = row
	}
	// No-policy: every job uses the default (the paper reports the
	// 4-stream column: 80).
	row := make([]int, len(DefaultStreamsSweep))
	for i, d := range DefaultStreamsSweep {
		row[i] = concurrentJobs * d
	}
	out[0] = row
	return out
}

// WriteTableIV renders Table IV.
func WriteTableIV(w io.Writer) {
	t := TableIV()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "threshold\t4\t6\t8\t10\t12")
	for _, th := range ThresholdSweep {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\n",
			th, t[th][0], t[th][1], t[th][2], t[th][3], t[th][4])
	}
	fmt.Fprintf(tw, "no-policy\t%d\t%d\t%d\t%d\t%d\n",
		t[0][0], t[0][1], t[0][2], t[0][3], t[0][4])
	tw.Flush()
}

// Fig5 regenerates Fig. 5: workflow execution time vs default streams per
// transfer, one series per additional-file size, greedy threshold fixed at
// 50.
func Fig5(o Options) ([]Point, error) {
	o = o.norm()
	var pts []Point
	for _, size := range FileSizesMB {
		for _, d := range DefaultStreamsSweep {
			s := Scenario{
				Name:           fmt.Sprintf("fig5-%gMB-%dstr", size, d),
				ExtraMB:        size,
				UsePolicy:      true,
				Algorithm:      policy.AlgoGreedy,
				Threshold:      50,
				DefaultStreams: d,
				GridSize:       o.GridSize,
				Seed:           o.Seed,
			}
			ser, err := RunTrials(s, o.Trials)
			if err != nil {
				return nil, err
			}
			pts = append(pts, Point{
				Series:        fmt.Sprintf("%gMB", size),
				X:             d,
				MeanSeconds:   ser.Makespan.Mean,
				StdSeconds:    ser.Makespan.StdDev,
				MaxWANStreams: ser.MaxWANStreams,
				DNF:           ser.DNF,
			})
		}
	}
	return pts, nil
}

// FigThreshold regenerates Figs. 6-9 for one additional-file size: series
// for greedy thresholds 50/100/200 across the default-streams sweep, plus
// the single no-policy point at 4 default streams (the blue circle in the
// paper's plots).
func FigThreshold(fileMB float64, o Options) ([]Point, error) {
	o = o.norm()
	var pts []Point
	for _, th := range ThresholdSweep {
		for _, d := range DefaultStreamsSweep {
			s := Scenario{
				Name:           fmt.Sprintf("fig-%gMB-th%d-%dstr", fileMB, th, d),
				ExtraMB:        fileMB,
				UsePolicy:      true,
				Algorithm:      policy.AlgoGreedy,
				Threshold:      th,
				DefaultStreams: d,
				GridSize:       o.GridSize,
				Seed:           o.Seed,
			}
			ser, err := RunTrials(s, o.Trials)
			if err != nil {
				return nil, err
			}
			pts = append(pts, Point{
				Series:        fmt.Sprintf("greedy-%d", th),
				X:             d,
				MeanSeconds:   ser.Makespan.Mean,
				StdSeconds:    ser.Makespan.StdDev,
				MaxWANStreams: ser.MaxWANStreams,
				DNF:           ser.DNF,
			})
		}
	}
	// No-policy baseline: default Pegasus with 4 streams per transfer.
	s := Scenario{
		Name:           fmt.Sprintf("fig-%gMB-nopolicy", fileMB),
		ExtraMB:        fileMB,
		UsePolicy:      false,
		DefaultStreams: 4,
		GridSize:       o.GridSize,
		Seed:           o.Seed,
	}
	ser, err := RunTrials(s, o.Trials)
	if err != nil {
		return nil, err
	}
	pts = append(pts, Point{
		Series:        "no-policy",
		X:             4,
		MeanSeconds:   ser.Makespan.Mean,
		StdSeconds:    ser.Makespan.StdDev,
		MaxWANStreams: ser.MaxWANStreams,
		DNF:           ser.DNF,
	})
	return pts, nil
}

// WritePoints renders a point series as a table grouped by series label.
func WritePoints(w io.Writer, title string, pts []Point) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "series\tstreams/transfer\tmean(s)\tstddev(s)\tmax WAN streams\tDNF")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%d\t%d\n",
			p.Series, p.X, p.MeanSeconds, p.StdSeconds, p.MaxWANStreams, p.DNF)
	}
	tw.Flush()
}

// WritePointsCSV renders a point series as CSV
// (series,streams,mean_s,stddev_s,max_wan_streams,dnf) for plotting.
func WritePointsCSV(w io.Writer, pts []Point) error {
	if _, err := fmt.Fprintln(w, "series,streams,mean_s,stddev_s,max_wan_streams,dnf"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%.3f,%d,%d\n",
			p.Series, p.X, p.MeanSeconds, p.StdSeconds, p.MaxWANStreams, p.DNF); err != nil {
			return err
		}
	}
	return nil
}

// FindPoint returns the first point with the given series and x.
func FindPoint(pts []Point, series string, x int) (Point, bool) {
	for _, p := range pts {
		if p.Series == series && p.X == x {
			return p, true
		}
	}
	return Point{}, false
}
