package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"

	"policyflow/internal/dag"
	"policyflow/internal/executor"
	"policyflow/internal/montage"
	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/stats"
	"policyflow/internal/transfer"
	"policyflow/internal/workflow"
)

// ClusteringResult compares clustered and unclustered transfer execution
// (Fig. 2's motivation: grouping transfers eliminates per-job
// initialization overheads).
type ClusteringResult struct {
	// Unclustered and Clustered are the aggregated makespans.
	Unclustered stats.Summary
	Clustered   stats.Summary
	// SessionsUnclustered and SessionsClustered count transfer sessions
	// opened in the last trial of each mode.
	SessionsUnclustered int64
	SessionsClustered   int64
}

// Fig2Clustering runs the clustering comparison: the same augmented
// workflow executed with singleton staging tasks versus staging tasks
// clustered with the given factor.
func Fig2Clustering(fileMB float64, factor int, o Options) (ClusteringResult, error) {
	o = o.norm()
	var res ClusteringResult
	base := Scenario{
		ExtraMB:        fileMB,
		UsePolicy:      true,
		Algorithm:      policy.AlgoGreedy,
		Threshold:      50,
		DefaultStreams: 4,
		GridSize:       o.GridSize,
		Seed:           o.Seed,
	}
	var un, cl []float64
	for i := 0; i < o.Trials; i++ {
		s := base
		s.Seed = o.Seed + int64(i)*7919
		m, err := RunMontage(s)
		if err != nil {
			return res, err
		}
		un = append(un, m.MakespanSeconds)
		res.SessionsUnclustered = m.Sessions

		s.ClusterFactor = factor
		m, err = RunMontage(s)
		if err != nil {
			return res, err
		}
		cl = append(cl, m.MakespanSeconds)
		res.SessionsClustered = m.Sessions
	}
	res.Unclustered = stats.Summarize(un)
	res.Clustered = stats.Summarize(cl)
	return res, nil
}

// AllocatorComparison reports greedy vs balanced allocation under transfer
// clustering, the scenario the balanced algorithm is designed for
// (Section III(b)): with clustering, later-arriving clusters are starved
// by greedy but protected by balanced allocation.
type AllocatorComparison struct {
	Greedy   stats.Summary
	Balanced stats.Summary
}

// BalancedVsGreedy runs the allocator ablation with the given clustering
// factor and additional-file size.
func BalancedVsGreedy(fileMB float64, factor int, o Options) (AllocatorComparison, error) {
	o = o.norm()
	var res AllocatorComparison
	var gr, ba []float64
	for i := 0; i < o.Trials; i++ {
		seed := o.Seed + int64(i)*7919
		g := Scenario{
			ExtraMB: fileMB, UsePolicy: true, Algorithm: policy.AlgoGreedy,
			Threshold: 50, DefaultStreams: 8, ClusterFactor: factor,
			GridSize: o.GridSize, Seed: seed,
		}
		m, err := RunMontage(g)
		if err != nil {
			return res, err
		}
		gr = append(gr, m.MakespanSeconds)

		b := g
		b.Algorithm = policy.AlgoBalanced
		m, err = RunMontage(b)
		if err != nil {
			return res, err
		}
		ba = append(ba, m.MakespanSeconds)
	}
	res.Greedy = stats.Summarize(gr)
	res.Balanced = stats.Summarize(ba)
	return res, nil
}

// PriorityComparison maps each structure-based priority algorithm (and
// "none") to its makespan summary.
type PriorityComparison map[string]stats.Summary

// PriorityAblation compares the Section III(c) priority algorithms.
func PriorityAblation(fileMB float64, o Options) (PriorityComparison, error) {
	o = o.norm()
	out := make(PriorityComparison)
	algos := append([]dag.PriorityAlgorithm{""}, dag.Algorithms()...)
	for _, algo := range algos {
		var mk []float64
		for i := 0; i < o.Trials; i++ {
			s := Scenario{
				ExtraMB: fileMB, UsePolicy: true, Algorithm: policy.AlgoGreedy,
				Threshold: 50, DefaultStreams: 8,
				PriorityAlgorithm: algo,
				GridSize:          o.GridSize, Seed: o.Seed + int64(i)*7919,
			}
			m, err := RunMontage(s)
			if err != nil {
				return nil, err
			}
			mk = append(mk, m.MakespanSeconds)
		}
		name := string(algo)
		if name == "" {
			name = "none"
		}
		out[name] = stats.Summarize(mk)
	}
	return out, nil
}

// MultiWorkflowResult measures the policy service's cross-workflow file
// sharing: two concurrent workflows over the same input data, staged into
// a shared scratch directory.
type MultiWorkflowResult struct {
	// MakespanSeconds is the time until both workflows finish.
	MakespanSeconds float64
	// TransfersExecuted and TransfersSuppressed: with sharing, roughly
	// half of all staging is suppressed as duplicate.
	TransfersExecuted   int64
	TransfersSuppressed int64
	// CleanupsSuppressed counts deletions blocked because the other
	// workflow still used the file.
	CleanupsSuppressed int64
}

// MultiWorkflow runs two concurrent Montage workflows with a shared
// scratch directory through one policy service.
func MultiWorkflow(fileMB float64, usePolicy bool, o Options) (MultiWorkflowResult, error) {
	o = o.norm()
	var res MultiWorkflowResult

	mcfg := montage.DefaultConfig(fileMB)
	if o.GridSize > 0 {
		mcfg.GridSize = o.GridSize
	}
	w, err := montage.Generate(mcfg)
	if err != nil {
		return res, err
	}

	env := simnet.NewEnv(o.Seed)
	fab := transfer.NewSimFabric(env, PipeConfigFor)
	var advisor transfer.Advisor
	if usePolicy {
		pcfg := policy.DefaultConfig()
		pcfg.DefaultThreshold = 50
		pcfg.DefaultStreams = 4
		svc, err := policy.New(pcfg)
		if err != nil {
			return res, err
		}
		advisor = svc
	}
	ptt, err := transfer.New(transfer.Config{
		Advisor: advisor, Fabric: fab, DefaultStreams: 4,
		SessionSetupSeconds: 2.0, TransferSetupSeconds: 0.5, PolicyCallSeconds: 0.15,
	})
	if err != nil {
		return res, err
	}
	ecfg := executor.DefaultConfig()
	cores := env.NewResource("cores", ecfg.ComputeCores)
	slots := env.NewResource("slots", ecfg.StagingSlots)

	var handles []*executor.Handle
	for i := 0; i < 2; i++ {
		plan, err := w.Plan(workflow.PlanConfig{
			WorkflowID:      fmt.Sprintf("wf%d", i+1),
			ComputeSiteBase: "file://obelix.isi.example.org/scratch",
			SharedScratch:   true,
			Cleanup:         true,
		})
		if err != nil {
			return res, err
		}
		h, err := executor.Start(env, plan, ptt, cores, slots, ecfg)
		if err != nil {
			return res, err
		}
		handles = append(handles, h)
	}
	res.MakespanSeconds = env.Run(0)
	for i, h := range handles {
		if _, err := h.Result(); err != nil {
			return res, fmt.Errorf("workflow %d: %w", i+1, err)
		}
	}
	st := ptt.Stats()
	res.TransfersExecuted = st.TransfersExecuted
	res.TransfersSuppressed = st.TransfersSuppressed
	res.CleanupsSuppressed = st.CleanupsSuppressed
	return res, nil
}

// OverheadPoint measures the cost of consulting an external policy service
// (the paper notes the approach "incurs overheads for the service calls"
// but does not isolate them).
type OverheadPoint struct {
	PolicyCallSeconds float64
	Makespan          stats.Summary
}

// PolicyOverheadSweep reruns the 100 MB greedy-50 configuration with
// increasing per-call policy service latency.
func PolicyOverheadSweep(latencies []float64, o Options) ([]OverheadPoint, error) {
	o = o.norm()
	var out []OverheadPoint
	for _, lat := range latencies {
		var mk []float64
		for i := 0; i < o.Trials; i++ {
			callLat := lat
			if callLat == 0 {
				callLat = -1 // Scenario: negative selects zero latency
			}
			m, err := RunMontage(Scenario{
				ExtraMB: 100, UsePolicy: true, Algorithm: policy.AlgoGreedy,
				Threshold: 50, DefaultStreams: 8,
				PolicyCallSeconds: callLat,
				GridSize:          o.GridSize, Seed: o.Seed + int64(i)*7919,
			})
			if err != nil {
				return nil, err
			}
			mk = append(mk, m.MakespanSeconds)
		}
		out = append(out, OverheadPoint{PolicyCallSeconds: lat, Makespan: stats.Summarize(mk)})
	}
	return out, nil
}

// WriteOverheads renders a policy-overhead sweep.
func WriteOverheads(w io.Writer, pts []OverheadPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy call latency (s)\tmean makespan (s)\tstddev")
	for _, p := range pts {
		fmt.Fprintf(tw, "%.2f\t%.1f\t%.1f\n", p.PolicyCallSeconds, p.Makespan.Mean, p.Makespan.StdDev)
	}
	tw.Flush()
}
