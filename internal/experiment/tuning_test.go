package experiment

import (
	"strings"
	"testing"

	"policyflow/internal/tuner"
)

// TestTunerDiscoversKnee: the UCB1 bandit, choosing thresholds for
// repeated full-scale runs, must converge below the testbed's overload
// knee (~65 streams) — learning the paper's manual finding that 50
// outperforms 100 and 200.
func TestTunerDiscoversKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale tuning run")
	}
	learner, err := tuner.NewUCB1(tuner.DefaultArms(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TuneThreshold(100, 30, learner, Options{Trials: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best > 65 {
		t.Fatalf("tuner recommended %d, want <= 65 (below the knee)", res.Best)
	}
	if res.Best < 25 {
		t.Fatalf("tuner recommended %d, implausibly small", res.Best)
	}
	// The converged makespan must beat a permanently over-allocated run.
	over, err := RunMontage(Scenario{
		ExtraMB: 100, UsePolicy: true, Threshold: 200, DefaultStreams: 8, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedMakespan >= over.MakespanSeconds {
		t.Fatalf("converged makespan %.0f not better than threshold-200 run %.0f",
			res.ConvergedMakespan, over.MakespanSeconds)
	}
	var sb strings.Builder
	WriteTunerResult(&sb, res)
	if !strings.Contains(sb.String(), "recommended threshold") {
		t.Fatal("tuner report malformed")
	}
}

func TestTuneThresholdHillClimber(t *testing.T) {
	climber, err := tuner.NewHillClimber(200, 40, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TuneThreshold(100, 12, climber, Options{Trials: 1, GridSize: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Episodes) != 12 {
		t.Fatalf("episodes = %d", len(res.Episodes))
	}
	if res.Best <= 0 {
		t.Fatalf("best = %d", res.Best)
	}
}
