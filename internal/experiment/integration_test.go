package experiment

import (
	"net/http/httptest"
	"testing"

	"policyflow/internal/executor"
	"policyflow/internal/montage"
	"policyflow/internal/policy"
	"policyflow/internal/policyhttp"
	"policyflow/internal/simnet"
	"policyflow/internal/transfer"
	"policyflow/internal/workflow"
)

// TestEndToEndOverHTTP runs a scaled Montage workflow on the simulator
// with the policy service deployed behind its real RESTful interface —
// the full production topology: executor -> transfer tool -> HTTP client
// -> HTTP server -> rule engine, and back.
func TestEndToEndOverHTTP(t *testing.T) {
	pcfg := policy.DefaultConfig()
	pcfg.DefaultThreshold = 50
	pcfg.DefaultStreams = 4
	svc, err := policy.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(policyhttp.NewServer(svc, nil))
	defer ts.Close()

	for _, mode := range []string{"json", "xml"} {
		t.Run(mode, func(t *testing.T) {
			var opts []policyhttp.ClientOption
			if mode == "xml" {
				opts = append(opts, policyhttp.WithXML())
			}
			client := policyhttp.NewClient(ts.URL, opts...)

			mcfg := montage.DefaultConfig(10)
			mcfg.GridSize = 4
			w, err := montage.Generate(mcfg)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := w.Plan(workflow.PlanConfig{
				WorkflowID:      "http-" + mode,
				ComputeSiteBase: "file://obelix.isi.example.org/scratch",
				Cleanup:         true,
			})
			if err != nil {
				t.Fatal(err)
			}

			env := simnet.NewEnv(11)
			fab := transfer.NewSimFabric(env, PipeConfigFor)
			ptt, err := transfer.New(transfer.Config{
				Advisor: client, Fabric: fab, DefaultStreams: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			ecfg := executor.DefaultConfig()
			cores := env.NewResource("cores", ecfg.ComputeCores)
			slots := env.NewResource("slots", ecfg.StagingSlots)
			h, err := executor.Start(env, plan, ptt, cores, slots, ecfg)
			if err != nil {
				t.Fatal(err)
			}
			env.Run(0)
			res, err := h.Result()
			if err != nil {
				t.Fatalf("workflow failed over HTTP: %v", err)
			}
			if res.Completed != len(plan.Tasks) {
				t.Fatalf("completed %d of %d", res.Completed, len(plan.Tasks))
			}
			st, err := client.State()
			if err != nil {
				t.Fatal(err)
			}
			if st.InFlight != 0 {
				t.Fatalf("transfers leaked on the service: %+v", st)
			}
			stats := ptt.Stats()
			if stats.PolicyCalls == 0 || stats.TransfersExecuted == 0 {
				t.Fatalf("stats = %+v", stats)
			}
		})
	}
}

// TestEndToEndWithReplicatedAdvisor runs the workflow against a
// two-replica policy deployment, killing the primary mid-run; the
// workflow must complete via failover without any duplicate staging.
func TestEndToEndWithReplicatedAdvisor(t *testing.T) {
	mk := func() (*httptest.Server, *policy.Service) {
		pcfg := policy.DefaultConfig()
		svc, err := policy.New(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(policyhttp.NewServer(svc, nil)), svc
	}
	primary, _ := mk()
	secondary, secondarySvc := mk()
	defer secondary.Close()

	rc, err := policyhttp.NewReplicatedClient(
		policyhttp.NewClient(primary.URL),
		policyhttp.NewClient(secondary.URL),
	)
	if err != nil {
		t.Fatal(err)
	}

	mcfg := montage.DefaultConfig(10)
	mcfg.GridSize = 3
	w, err := montage.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.Plan(workflow.PlanConfig{
		WorkflowID:      "replicated",
		ComputeSiteBase: "file://obelix.isi.example.org/scratch",
		Cleanup:         true,
	})
	if err != nil {
		t.Fatal(err)
	}

	env := simnet.NewEnv(13)
	fab := transfer.NewSimFabric(env, PipeConfigFor)
	ptt, err := transfer.New(transfer.Config{Advisor: rc, Fabric: fab, DefaultStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	ecfg := executor.DefaultConfig()
	cores := env.NewResource("cores", ecfg.ComputeCores)
	slots := env.NewResource("slots", ecfg.StagingSlots)
	h, err := executor.Start(env, plan, ptt, cores, slots, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the primary partway through the simulated run.
	env.At(30, func() { primary.Close() })
	env.Run(0)
	res, err := h.Result()
	if err != nil {
		t.Fatalf("workflow failed despite replication: %v", err)
	}
	if res.Completed != len(plan.Tasks) {
		t.Fatalf("completed %d of %d", res.Completed, len(plan.Tasks))
	}
	if got := rc.Healthy(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("healthy = %v, want only the secondary", got)
	}
	// The surviving replica carries the complete final state.
	if snap := secondarySvc.Snapshot(); snap.InFlight != 0 {
		t.Fatalf("secondary state = %+v", snap)
	}
}
