package experiment

import (
	"strings"
	"testing"

	"policyflow/internal/policy"
	"policyflow/internal/simnet"
)

func TestWriteTableIVGolden(t *testing.T) {
	var sb strings.Builder
	WriteTableIV(&sb)
	got := sb.String()
	// Exact rows from the paper's Table IV.
	for _, row := range []string{
		"50         57  61   63   65   65",
		"100        80  103  107  110  111",
		"200        80  120  160  200  203",
	} {
		if !strings.Contains(got, row) {
			t.Errorf("missing row %q in:\n%s", row, got)
		}
	}
}

func TestFig5PointCount(t *testing.T) {
	pts, err := Fig5(Options{Trials: 1, GridSize: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 5 sizes x 5 stream settings.
	if len(pts) != 25 {
		t.Fatalf("points = %d, want 25", len(pts))
	}
	series := map[string]int{}
	for _, p := range pts {
		series[p.Series]++
	}
	for _, s := range []string{"0MB", "10MB", "100MB", "500MB", "1000MB"} {
		if series[s] != 5 {
			t.Errorf("series %s has %d points", s, series[s])
		}
	}
	// The 0MB series moves nothing over the WAN.
	if p, ok := FindPoint(pts, "0MB", 8); !ok || p.MaxWANStreams != 0 {
		t.Errorf("0MB point = %+v", p)
	}
}

func TestPipeConfigFor(t *testing.T) {
	wan := PipeConfigFor(policy.HostPair{
		Src: "alamo.futuregrid.tacc.example.org", Dst: "obelix.isi.example.org",
	})
	if wan.CapacityMBps != simnet.WANConfig().CapacityMBps {
		t.Fatalf("WAN pair got %+v", wan)
	}
	lan := PipeConfigFor(policy.HostPair{
		Src: "apache.obelix.isi.example.org", Dst: "obelix.isi.example.org",
	})
	if lan.CapacityMBps != simnet.LANConfig().CapacityMBps {
		t.Fatalf("LAN pair got %+v", lan)
	}
}

func TestScenarioPolicyCallLatencyOverride(t *testing.T) {
	base := Scenario{
		ExtraMB: 10, UsePolicy: true, Algorithm: policy.AlgoGreedy,
		Threshold: 50, DefaultStreams: 4, GridSize: 3, Seed: 4,
	}
	slow := base
	slow.PolicyCallSeconds = 10
	mBase, err := RunMontage(base)
	if err != nil {
		t.Fatal(err)
	}
	mSlow, err := RunMontage(slow)
	if err != nil {
		t.Fatal(err)
	}
	if mSlow.MakespanSeconds <= mBase.MakespanSeconds {
		t.Fatalf("latency had no cost: %v vs %v", mSlow.MakespanSeconds, mBase.MakespanSeconds)
	}
	fast := base
	fast.PolicyCallSeconds = -1 // zero latency
	mFast, err := RunMontage(fast)
	if err != nil {
		t.Fatal(err)
	}
	if mFast.MakespanSeconds > mBase.MakespanSeconds {
		t.Fatalf("zero latency slower than default: %v vs %v", mFast.MakespanSeconds, mBase.MakespanSeconds)
	}
}

func TestMetricsExecAttached(t *testing.T) {
	m, err := RunMontage(Scenario{
		ExtraMB: 10, UsePolicy: true, Threshold: 50, DefaultStreams: 4,
		GridSize: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Exec == nil || len(m.Exec.Records) == 0 {
		t.Fatal("executor result not attached")
	}
	if m.Exec.BusyTimeByType == nil {
		t.Fatal("busy time aggregation missing")
	}
	var sb strings.Builder
	if err := m.Exec.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stage_in_") {
		t.Fatal("timeline missing staging rows")
	}
}
