package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"

	"policyflow/internal/dag"
	"policyflow/internal/stats"
	"policyflow/internal/synth"
)

// ShapePriorityResult holds, for one workflow shape, the makespan of each
// priority algorithm (and "none").
type ShapePriorityResult struct {
	Shape     synth.Shape
	Makespans map[string]stats.Summary
}

// SyntheticPriorityAblation measures the structure-based priority
// algorithms across workflow shapes, with staging slots made scarce so
// ordering matters. On Montage the staging mix is level-symmetric and
// priorities are a null result (see EXPERIMENTS.md); on a fan-out shape,
// staging the root before the leaves lets compute overlap the remaining
// staging and shortens the makespan.
func SyntheticPriorityAblation(shapes []synth.Shape, o Options) ([]ShapePriorityResult, error) {
	o = o.norm()
	if len(shapes) == 0 {
		shapes = synth.Shapes()
	}
	algos := append([]dag.PriorityAlgorithm{""}, dag.Algorithms()...)
	var out []ShapePriorityResult
	for _, shape := range shapes {
		res := ShapePriorityResult{Shape: shape, Makespans: map[string]stats.Summary{}}
		for _, algo := range algos {
			var mk []float64
			for trial := 0; trial < o.Trials; trial++ {
				seed := o.Seed + int64(trial)*7919
				w, err := synth.Generate(synth.Config{
					Shape:          shape,
					Jobs:           24,
					InputMB:        50,
					RuntimeSeconds: 30,
					Seed:           seed,
					Scramble:       true, // submission order is arbitrary
				})
				if err != nil {
					return nil, err
				}
				m, err := RunWorkflow(WorkflowRun{
					Workflow:          w,
					WorkflowID:        fmt.Sprintf("%s-%s-%d", shape, algo, trial),
					PriorityAlgorithm: algo,
					UsePolicy:         true,
					Threshold:         50,
					DefaultStreams:    4,
					Slots:             2, // scarce staging slots: order matters
					Seed:              seed,
				})
				if err != nil {
					return nil, err
				}
				mk = append(mk, m.MakespanSeconds)
			}
			name := string(algo)
			if name == "" {
				name = "none"
			}
			res.Makespans[name] = stats.Summarize(mk)
		}
		out = append(out, res)
	}
	return out, nil
}

// WriteShapePriorities renders the ablation as a table.
func WriteShapePriorities(w io.Writer, results []ShapePriorityResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shape\tnone\tbfs\tdfs\tdirect-dependent\tdependent")
	for _, r := range results {
		fmt.Fprintf(tw, "%s", r.Shape)
		for _, algo := range []string{"none", "bfs", "dfs", "direct-dependent", "dependent"} {
			fmt.Fprintf(tw, "\t%.0f±%.0f", r.Makespans[algo].Mean, r.Makespans[algo].StdDev)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
