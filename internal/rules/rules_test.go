package rules

import (
	"errors"
	"testing"
)

type counter struct{ n int }

type item struct {
	name string
	qty  int
	done bool
}

type threshold struct{ max int }

func TestSingleRuleFiresOncePerFact(t *testing.T) {
	s := NewSession()
	fired := 0
	s.MustAddRules(&Rule{
		Name: "count-items",
		When: []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) { fired++ },
	})
	s.Insert(&item{name: "a"})
	s.Insert(&item{name: "b"})
	s.Insert(&item{name: "c"})
	n, err := s.FireAll(0)
	if err != nil {
		t.Fatalf("FireAll: %v", err)
	}
	if n != 3 || fired != 3 {
		t.Fatalf("firings = %d (cb %d), want 3", n, fired)
	}
	// Firing again without changes does nothing (refraction).
	n, err = s.FireAll(0)
	if err != nil || n != 0 {
		t.Fatalf("second FireAll = %d, %v; want 0, nil", n, err)
	}
}

func TestGuardFiltersFacts(t *testing.T) {
	s := NewSession()
	var matched []string
	s.MustAddRules(&Rule{
		Name: "big-items",
		When: []Pattern{Match("it", func(b Bindings, v *item) bool { return v.qty > 10 })},
		Then: func(ctx *Context) { matched = append(matched, ctx.Get("it").(*item).name) },
	})
	s.Insert(&item{name: "small", qty: 5})
	s.Insert(&item{name: "big", qty: 50})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if len(matched) != 1 || matched[0] != "big" {
		t.Fatalf("matched = %v", matched)
	}
}

func TestJoinAcrossTypes(t *testing.T) {
	// Fire for items whose qty exceeds the (single) threshold fact.
	s := NewSession()
	var over []string
	s.MustAddRules(&Rule{
		Name: "over-threshold",
		When: []Pattern{
			Match[*threshold]("th", nil),
			Match("it", func(b Bindings, v *item) bool {
				return v.qty > b.Get("th").(*threshold).max
			}),
		},
		Then: func(ctx *Context) { over = append(over, ctx.Get("it").(*item).name) },
	})
	s.Insert(&threshold{max: 10})
	s.Insert(&item{name: "a", qty: 5})
	s.Insert(&item{name: "b", qty: 15})
	s.Insert(&item{name: "c", qty: 20})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if len(over) != 2 {
		t.Fatalf("over = %v", over)
	}
}

func TestSalienceOrdersFirings(t *testing.T) {
	s := NewSession()
	var order []string
	mk := func(name string, sal int) *Rule {
		return &Rule{
			Name:     name,
			Salience: sal,
			When:     []Pattern{Match[*counter]("c", nil)},
			Then:     func(ctx *Context) { order = append(order, name) },
		}
	}
	// Declared low-salience first to prove salience, not order, wins.
	s.MustAddRules(mk("low", -5), mk("high", 10), mk("mid", 0))
	s.Insert(&counter{})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"high", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRHSInsertTriggersOtherRules(t *testing.T) {
	s := NewSession()
	gotItem := false
	s.MustAddRules(
		&Rule{
			Name: "counter-spawns-item",
			When: []Pattern{Match[*counter]("c", nil)},
			Then: func(ctx *Context) { ctx.Insert(&item{name: "spawned"}) },
		},
		&Rule{
			Name: "sees-item",
			When: []Pattern{Match[*item]("it", nil)},
			Then: func(ctx *Context) { gotItem = true },
		},
	)
	s.Insert(&counter{})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if !gotItem {
		t.Fatal("chained rule did not fire")
	}
}

func TestRetractStopsMatching(t *testing.T) {
	s := NewSession()
	fired := 0
	s.MustAddRules(
		&Rule{
			Name:     "remove-done",
			Salience: 10,
			When:     []Pattern{Match("it", func(b Bindings, v *item) bool { return v.done })},
			Then:     func(ctx *Context) { ctx.Retract(ctx.Get("it")) },
		},
		&Rule{
			Name: "count-remaining",
			When: []Pattern{Match[*item]("it", nil)},
			Then: func(ctx *Context) { fired++ },
		},
	)
	s.Insert(&item{name: "a", done: true})
	s.Insert(&item{name: "b"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("count-remaining fired %d times, want 1", fired)
	}
	if s.FactCount() != 1 {
		t.Fatalf("FactCount = %d, want 1", s.FactCount())
	}
}

func TestUpdateReactivatesRule(t *testing.T) {
	s := NewSession()
	it := &item{name: "a", qty: 1}
	seenQty := []int{}
	s.MustAddRules(&Rule{
		Name: "watch",
		When: []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) { seenQty = append(seenQty, ctx.Get("it").(*item).qty) },
	})
	s.Insert(it)
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	it.qty = 2
	s.Update(it)
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if len(seenQty) != 2 || seenQty[0] != 1 || seenQty[1] != 2 {
		t.Fatalf("seenQty = %v", seenQty)
	}
}

func TestNoLoopPreventsSelfRetrigger(t *testing.T) {
	s := NewSession()
	it := &item{name: "a"}
	fired := 0
	s.MustAddRules(&Rule{
		Name:   "increment",
		NoLoop: true,
		When:   []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) {
			fired++
			v := ctx.Get("it").(*item)
			v.qty++
			ctx.Update(v) // would loop forever without NoLoop
		},
	})
	s.Insert(it)
	n, err := s.FireAll(0)
	if err != nil {
		t.Fatalf("FireAll: %v", err)
	}
	if n != 1 || fired != 1 || it.qty != 1 {
		t.Fatalf("n=%d fired=%d qty=%d, want 1,1,1", n, fired, it.qty)
	}
}

func TestBudgetExhaustedOnLoop(t *testing.T) {
	s := NewSession()
	it := &item{name: "a"}
	s.MustAddRules(&Rule{
		Name: "looper",
		When: []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) {
			v := ctx.Get("it").(*item)
			v.qty++
			ctx.Update(v)
		},
	})
	s.Insert(it)
	_, err := s.FireAll(25)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

func TestHaltStopsFiring(t *testing.T) {
	s := NewSession()
	fired := 0
	s.MustAddRules(&Rule{
		Name: "halt-after-first",
		When: []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) {
			fired++
			ctx.Halt()
		},
	})
	s.Insert(&item{name: "a"})
	s.Insert(&item{name: "b"})
	n, err := s.FireAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || fired != 1 {
		t.Fatalf("n=%d fired=%d, want 1,1", n, fired)
	}
}

func TestInsertIdempotentByIdentity(t *testing.T) {
	s := NewSession()
	it := &item{name: "a"}
	h1 := s.Insert(it)
	h2 := s.Insert(it)
	if h1 != h2 {
		t.Fatalf("handles differ: %d vs %d", h1, h2)
	}
	if s.FactCount() != 1 {
		t.Fatalf("FactCount = %d", s.FactCount())
	}
}

func TestRetractUnknownIsNoop(t *testing.T) {
	s := NewSession()
	s.Retract(&item{name: "ghost"})
	s.Update(&item{name: "ghost"})
	if s.FactCount() != 0 {
		t.Fatal("phantom fact appeared")
	}
}

func TestContextQueries(t *testing.T) {
	s := NewSession()
	var total int
	s.MustAddRules(&Rule{
		Name:   "sum-via-ctx",
		NoLoop: true,
		When:   []Pattern{Match[*counter]("c", nil)},
		Then: func(ctx *Context) {
			for _, it := range CtxFactsOf[*item](ctx) {
				total += it.qty
			}
			if _, ok := CtxFirst(ctx, func(v *item) bool { return v.qty == 2 }); !ok {
				t.Error("CtxFirst missed qty==2")
			}
			if n := CtxCountOf[*item](ctx, nil); n != 3 {
				t.Errorf("CtxCountOf = %d", n)
			}
		},
	})
	s.Insert(&item{qty: 1})
	s.Insert(&item{qty: 2})
	s.Insert(&item{qty: 3})
	s.Insert(&counter{})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("total = %d", total)
	}
}

func TestSessionQueries(t *testing.T) {
	s := NewSession()
	s.Insert(&item{name: "x", qty: 1})
	s.Insert(&item{name: "y", qty: 2})
	if got := len(FactsOf[*item](s)); got != 2 {
		t.Fatalf("FactsOf = %d", got)
	}
	if v, ok := First(s, func(it *item) bool { return it.qty == 2 }); !ok || v.name != "y" {
		t.Fatalf("First = %v, %v", v, ok)
	}
	if _, ok := First(s, func(it *item) bool { return it.qty == 99 }); ok {
		t.Fatal("First found nonexistent fact")
	}
	if n := CountOf(s, func(it *item) bool { return it.qty > 0 }); n != 2 {
		t.Fatalf("CountOf = %d", n)
	}
}

func TestRuleValidation(t *testing.T) {
	s := NewSession()
	cases := []*Rule{
		{Name: "", When: []Pattern{Match[*item]("i", nil)}, Then: func(*Context) {}},
		{Name: "no-patterns", Then: func(*Context) {}},
		{Name: "no-action", When: []Pattern{Match[*item]("i", nil)}},
		{Name: "dup-binding", When: []Pattern{Match[*item]("i", nil), Match[*item]("i", nil)}, Then: func(*Context) {}},
		{Name: "anon-pattern", When: []Pattern{Match[*item]("", nil)}, Then: func(*Context) {}},
	}
	for _, r := range cases {
		if err := s.AddRule(r); err == nil {
			t.Errorf("rule %q: want validation error", r.Name)
		}
	}
	ok := &Rule{Name: "ok", When: []Pattern{Match[*item]("i", nil)}, Then: func(*Context) {}}
	if err := s.AddRule(ok); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	if err := s.AddRule(&Rule{Name: "ok", When: ok.When, Then: ok.Then}); err == nil {
		t.Error("duplicate rule name accepted")
	}
}

func TestReset(t *testing.T) {
	s := NewSession()
	fired := 0
	s.MustAddRules(&Rule{
		Name: "r",
		When: []Pattern{Match[*item]("i", nil)},
		Then: func(ctx *Context) { fired++ },
	})
	s.Insert(&item{name: "a"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.FactCount() != 0 {
		t.Fatal("facts survived Reset")
	}
	s.Insert(&item{name: "a"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (refraction must reset)", fired)
	}
}

func TestJoinExcludesSameFactTwice(t *testing.T) {
	// A self-join over the same type must bind two distinct facts.
	s := NewSession()
	pairs := 0
	s.MustAddRules(&Rule{
		Name: "pair",
		When: []Pattern{
			Match[*item]("a", nil),
			Match[*item]("b", nil),
		},
		Then: func(ctx *Context) {
			if ctx.Get("a") == ctx.Get("b") {
				t.Error("same fact bound twice in one tuple")
			}
			pairs++
		},
	})
	s.Insert(&item{name: "x"})
	s.Insert(&item{name: "y"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if pairs != 2 { // (x,y) and (y,x)
		t.Fatalf("pairs = %d, want 2", pairs)
	}
}

func TestRecencyConflictResolution(t *testing.T) {
	// With equal salience, the rule matching the most recently inserted
	// fact fires first.
	s := NewSession()
	var order []string
	s.MustAddRules(&Rule{
		Name: "watch",
		When: []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) { order = append(order, ctx.Get("it").(*item).name) },
	})
	s.Insert(&item{name: "first"})
	s.Insert(&item{name: "second"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if order[0] != "second" || order[1] != "first" {
		t.Fatalf("order = %v, want [second first]", order)
	}
}

func TestGateSelectsRules(t *testing.T) {
	s := NewSession()
	active := "a"
	var fired []string
	mk := func(name, gate string) *Rule {
		return &Rule{
			Name: name,
			Gate: func() bool { return active == gate },
			When: []Pattern{Match[*item]("it", nil)},
			Then: func(ctx *Context) { fired = append(fired, name) },
		}
	}
	s.MustAddRules(mk("rule-a", "a"), mk("rule-b", "b"))
	s.Insert(&item{name: "x"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "rule-a" {
		t.Fatalf("fired = %v, want [rule-a]", fired)
	}
	// Flipping the gate re-enables the other rule on the same fact: gating
	// never consumed a refraction entry for rule-b.
	active = "b"
	fired = nil
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "rule-b" {
		t.Fatalf("fired = %v, want [rule-b]", fired)
	}
}
