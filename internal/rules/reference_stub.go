//go:build rules_noref

package rules

// Stubs for the naive reference matcher when it is excluded from the build
// (-tags rules_noref). Default builds compile reference.go instead, so the
// differential tests always run against the real oracle.

// NewReferenceSession panics: the reference matcher was excluded by the
// rules_noref build tag.
func NewReferenceSession() *Session {
	panic("rules: reference matcher excluded by the rules_noref build tag")
}

func (s *Session) bestActivationNaive() *activation {
	panic("rules: reference matcher excluded by the rules_noref build tag")
}
