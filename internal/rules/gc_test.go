package rules

import "testing"

// TestRefractionGarbageCollected: a long-lived session (the Policy Memory
// pattern) must not accumulate refraction state for facts that have been
// retracted.
func TestRefractionGarbageCollected(t *testing.T) {
	s := NewSession()
	s.MustAddRules(&Rule{
		Name: "touch",
		When: []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) {},
	})
	for round := 0; round < 50; round++ {
		it := &item{qty: round}
		s.Insert(it)
		if _, err := s.FireAll(0); err != nil {
			t.Fatal(err)
		}
		s.Retract(it)
	}
	if got := s.RefractionSize(); got != 0 {
		t.Fatalf("refraction entries = %d after all facts retracted, want 0", got)
	}
	if s.Firings() != 50 {
		t.Fatalf("firings = %d", s.Firings())
	}
}

func TestRefractionBoundedByLiveFacts(t *testing.T) {
	s := NewSession()
	s.MustAddRules(&Rule{
		Name: "pairwise",
		When: []Pattern{
			Match[*item]("a", nil),
			Match[*item]("b", nil),
		},
		Then: func(ctx *Context) {},
	})
	var live []*item
	for round := 0; round < 20; round++ {
		it := &item{qty: round}
		live = append(live, it)
		s.Insert(it)
		if len(live) > 4 {
			s.Retract(live[0])
			live = live[1:]
		}
		if _, err := s.FireAll(0); err != nil {
			t.Fatal(err)
		}
	}
	// With at most 4 live facts, pairwise refraction is at most 4x3
	// entries; the 20-round history must not have accumulated.
	if got := s.RefractionSize(); got > 12 {
		t.Fatalf("refraction entries = %d, want <= 12", got)
	}
}

func TestFiringsAcrossReset(t *testing.T) {
	s := NewSession()
	s.MustAddRules(&Rule{
		Name: "touch",
		When: []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) {},
	})
	s.Insert(&item{})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	// Lifetime firing counter survives Reset (it is a session statistic,
	// not working-memory state).
	if s.Firings() != 1 {
		t.Fatalf("firings = %d", s.Firings())
	}
	if s.RefractionSize() != 0 {
		t.Fatal("refraction survived Reset")
	}
}
