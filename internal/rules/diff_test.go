package rules

// Differential harness: the incremental matcher is proven bit-for-bit
// equivalent to the naive full-rejoin reference engine by driving both
// through randomized seeded schedules of insert/update/retract/FireAll —
// covering NoLoop, gates flipping mid-run, negation, existential patterns,
// Halt, and budget exhaustion — and asserting identical firing sequences,
// refraction sizes, and final fact sets. Because the reference matcher
// ignores index hints, the harness also validates that every generated
// hint is sound (the hinted bucket loses no matches).

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// Three fact types so generated rules exercise multi-type joins.
type dA struct{ K, V int }
type dB struct{ K, V int }
type dC struct{ K, V int }

func dKV(v any) (int, int) {
	switch f := v.(type) {
	case *dA:
		return f.K, f.V
	case *dB:
		return f.K, f.V
	case *dC:
		return f.K, f.V
	}
	panic(fmt.Sprintf("unexpected fact %T", v))
}

func dSetKV(v any, k, val int) {
	switch f := v.(type) {
	case *dA:
		f.K, f.V = k, val
	case *dB:
		f.K, f.V = k, val
	case *dC:
		f.K, f.V = k, val
	}
}

func dNew(typ, k, v int) any {
	switch typ % 3 {
	case 0:
		return &dA{K: k, V: v}
	case 1:
		return &dB{K: k, V: v}
	}
	return &dC{K: k, V: v}
}

// registerKIndex registers the "k" alpha index on all three types.
func registerKIndex(t *testing.T, s *Session) {
	t.Helper()
	for _, err := range []error{
		AddIndexOf(s, "k", func(f *dA) int { return f.K }),
		AddIndexOf(s, "k", func(f *dB) int { return f.K }),
		AddIndexOf(s, "k", func(f *dC) int { return f.K }),
	} {
		if err != nil {
			t.Fatalf("AddIndex: %v", err)
		}
	}
}

// twin drives the incremental engine and the naive reference engine in
// lockstep and compares their observable state.
type twin struct {
	t    *testing.T
	seed int64
	inc  *Session
	ref  *Session
	// firing logs captured by the sessions' observers.
	incLog, refLog []string
}

func newTwin(t *testing.T, seed int64) *twin {
	tw := &twin{t: t, seed: seed, inc: NewSession(), ref: NewReferenceSession()}
	registerKIndex(t, tw.inc)
	registerKIndex(t, tw.ref)
	tw.inc.SetFiringObserver(func(rule string, sal int) {
		tw.incLog = append(tw.incLog, fmt.Sprintf("%s/%d", rule, sal))
	})
	tw.ref.SetFiringObserver(func(rule string, sal int) {
		tw.refLog = append(tw.refLog, fmt.Sprintf("%s/%d", rule, sal))
	})
	return tw
}

func (tw *twin) fatalf(format string, args ...any) {
	tw.t.Helper()
	tw.t.Fatalf("seed %d: %s", tw.seed, fmt.Sprintf(format, args...))
}

// factLine renders a session's per-type fact populations in insertion order.
func factLine(s *Session) string {
	line := ""
	for _, ex := range []any{(*dA)(nil), (*dB)(nil), (*dC)(nil)} {
		line += fmt.Sprintf("%T:", ex)
		for _, v := range s.Facts(exemplarOf(ex)) {
			k, val := dKV(v)
			line += fmt.Sprintf("(%d,%d)", k, val)
		}
		line += " "
	}
	return line
}

func exemplarOf(ex any) any {
	switch ex.(type) {
	case *dA:
		return &dA{}
	case *dB:
		return &dB{}
	}
	return &dC{}
}

func (tw *twin) compare(stage string) {
	tw.t.Helper()
	if len(tw.incLog) != len(tw.refLog) {
		tw.fatalf("%s: firing count inc=%d ref=%d\ninc=%v\nref=%v", stage, len(tw.incLog), len(tw.refLog), tw.incLog, tw.refLog)
	}
	for i := range tw.incLog {
		if tw.incLog[i] != tw.refLog[i] {
			tw.fatalf("%s: firing %d inc=%s ref=%s", stage, i, tw.incLog[i], tw.refLog[i])
		}
	}
	if a, b := tw.inc.FactCount(), tw.ref.FactCount(); a != b {
		tw.fatalf("%s: fact count inc=%d ref=%d", stage, a, b)
	}
	if a, b := tw.inc.RefractionSize(), tw.ref.RefractionSize(); a != b {
		tw.fatalf("%s: refraction size inc=%d ref=%d", stage, a, b)
	}
	if a, b := tw.inc.Firings(), tw.ref.Firings(); a != b {
		tw.fatalf("%s: firings inc=%d ref=%d", stage, a, b)
	}
	if a, b := factLine(tw.inc), factLine(tw.ref); a != b {
		tw.fatalf("%s: facts diverge\ninc=%s\nref=%s", stage, a, b)
	}
}

// genRules builds a random rule set shared by both sessions. gates is the
// external state the generated Gate closures read; the driver flips entries
// mid-schedule.
func genRules(rng *rand.Rand, gates []bool) []*Rule {
	n := 1 + rng.Intn(6)
	out := make([]*Rule, 0, n)
	for ri := 0; ri < n; ri++ {
		r := &Rule{
			Name:     fmt.Sprintf("r%d", ri),
			Salience: rng.Intn(3), // small range to force recency ties
			NoLoop:   rng.Intn(5) == 0,
		}
		if rng.Intn(10) < 3 {
			gi := rng.Intn(len(gates))
			r.Gate = func() bool { return gates[gi] }
		}
		np := 1 + rng.Intn(3)
		for pi := 0; pi < np; pi++ {
			typ := rng.Intn(3)
			// First pattern is always positive so the RHS has a binding.
			positive := pi == 0 || rng.Intn(10) < 6
			negated := !positive && rng.Intn(2) == 0
			guardKind := rng.Intn(4) // 0 none, 1 parity, 2 k<c, 3 join on k
			if pi == 0 && guardKind == 3 {
				guardKind = 2 // no earlier binding to join against
			}
			c := rng.Intn(8)
			hint := guardKind == 3 && rng.Intn(2) == 0
			out2 := genPattern(typ, positive, negated, guardKind, c, hint, fmt.Sprintf("x%d", pi))
			r.When = append(r.When, out2)
		}
		r.Then = genAction(rng, r.When[0].Name)
		out = append(out, r)
	}
	return out
}

// genPattern builds one pattern. guardKind 3 joins on K against binding x0.
func genPattern(typ int, positive, negated bool, guardKind, c int, hint bool, name string) Pattern {
	guard := func(b Bindings, v any) bool {
		k, val := dKV(v)
		switch guardKind {
		case 1:
			return val%2 == c%2
		case 2:
			return k < c
		case 3:
			k0, _ := dKV(b.Get("x0"))
			return k == k0
		}
		return true
	}
	if guardKind == 0 {
		guard = nil
	}
	lookup := func(b Bindings) any {
		k0, _ := dKV(b.Get("x0"))
		return k0
	}
	mk := func(p Pattern) Pattern {
		if hint {
			p.index = "k"
			p.lookup = lookup
		}
		return p
	}
	wrap := func(g func(Bindings, any) bool) func(Bindings, any) bool { return g }
	switch typ % 3 {
	case 0:
		if positive {
			return mk(pat[*dA](name, wrap(guard)))
		}
		if negated {
			return mk(npat[*dA](wrap(guard)))
		}
		return mk(epat[*dA](wrap(guard)))
	case 1:
		if positive {
			return mk(pat[*dB](name, wrap(guard)))
		}
		if negated {
			return mk(npat[*dB](wrap(guard)))
		}
		return mk(epat[*dB](wrap(guard)))
	}
	if positive {
		return mk(pat[*dC](name, wrap(guard)))
	}
	if negated {
		return mk(npat[*dC](wrap(guard)))
	}
	return mk(epat[*dC](wrap(guard)))
}

// pat/npat/epat adapt untyped guards to the typed constructors.
func pat[T any](name string, g func(Bindings, any) bool) Pattern {
	if g == nil {
		return Match[T](name, nil)
	}
	return Match(name, func(b Bindings, v T) bool { return g(b, v) })
}

func npat[T any](g func(Bindings, any) bool) Pattern {
	if g == nil {
		return Not[T](nil)
	}
	return Not(func(b Bindings, v T) bool { return g(b, v) })
}

func epat[T any](g func(Bindings, any) bool) Pattern {
	if g == nil {
		return Exists[T](nil)
	}
	return Exists(func(b Bindings, v T) bool { return g(b, v) })
}

// genAction builds a deterministic RHS. Every action is a pure function of
// the bound facts and the session it runs against, so the twin sessions
// evolve identically.
func genAction(rng *rand.Rand, bind string) func(*Context) {
	kind := rng.Intn(6)
	insTyp := rng.Intn(3)
	switch kind {
	case 0: // bump the bound fact's value and update (may loop; budget bounds it)
		return func(ctx *Context) {
			f := ctx.Get(bind)
			k, v := dKV(f)
			if v < 24 {
				dSetKV(f, k, v+1)
				ctx.Update(f)
			}
		}
	case 1: // insert a derived fact, bounded so runs terminate
		return func(ctx *Context) {
			if ctx.s.FactCountLocked() < 60 {
				f := ctx.Get(bind)
				k, _ := dKV(f)
				ctx.Insert(dNew(insTyp, (k+1)%8, 0))
			}
		}
	case 2: // retract the triggering fact
		return func(ctx *Context) {
			ctx.RetractHandle(ctx.Handle(bind))
		}
	case 3: // halt on a specific key
		return func(ctx *Context) {
			k, _ := dKV(ctx.Get(bind))
			if k == 3 {
				ctx.Halt()
			}
		}
	case 4: // rewrite the key (re-buckets the fact in the alpha index)
		return func(ctx *Context) {
			f := ctx.Get(bind)
			k, v := dKV(f)
			if v%3 == 0 {
				dSetKV(f, (k+3)%8, v)
				ctx.Update(f)
			}
		}
	}
	return func(ctx *Context) {} // pure fire
}

// FactCountLocked supports bounded RHS actions in tests (Context actions
// run with the session lock held, so they cannot call FactCount).
func (s *Session) FactCountLocked() int { return len(s.facts) }

// applyOp applies one schedule operation to a single session.
func applyOp(s *Session, op, typ, idx, k, v, budget int) (int, error) {
	switch op {
	case 0: // insert
		s.Insert(dNew(typ, k, v))
	case 1: // update: mutate the idx-th fact of the type, then Update
		facts := s.Facts(exemplarOf(dNew(typ, 0, 0)))
		if len(facts) == 0 {
			return 0, nil
		}
		f := facts[idx%len(facts)]
		dSetKV(f, k, v)
		s.Update(f)
	case 2: // retract the idx-th fact of the type
		facts := s.Facts(exemplarOf(dNew(typ, 0, 0)))
		if len(facts) == 0 {
			return 0, nil
		}
		s.Retract(facts[idx%len(facts)])
	case 3: // fire
		return s.FireAll(budget)
	}
	return 0, nil
}

func runDifferentialSchedule(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gates := []bool{true, false}
	rs := genRules(rng, gates)
	tw := newTwin(t, seed)
	if rng.Intn(2) == 0 {
		tw.inc.SetOldestFirst(true)
		tw.ref.SetOldestFirst(true)
	}
	// Both sessions share the same *Rule values: rules are pure data plus
	// closures over bound facts, so sharing is safe and guarantees the two
	// engines match byte-identical rule bases.
	for _, r := range rs {
		if err := tw.inc.AddRule(r); err != nil {
			t.Fatalf("seed %d: inc AddRule: %v", seed, err)
		}
		if err := tw.ref.AddRule(r); err != nil {
			t.Fatalf("seed %d: ref AddRule: %v", seed, err)
		}
	}
	nops := 40 + rng.Intn(40)
	for i := 0; i < nops; i++ {
		op := rng.Intn(6)
		typ, idx, k, v := rng.Intn(3), rng.Intn(16), rng.Intn(8), rng.Intn(16)
		budget := 1 + rng.Intn(30)
		switch op {
		case 4: // flip a gate; both engines must notice without fact churn
			gates[rng.Intn(len(gates))] = !gates[rng.Intn(len(gates))]
			continue
		case 5: // fire with a budget big enough to settle most schedules
			op, budget = 3, 150
		}
		n1, err1 := applyOp(tw.inc, op, typ, idx, k, v, budget)
		n2, err2 := applyOp(tw.ref, op, typ, idx, k, v, budget)
		if n1 != n2 {
			tw.fatalf("op %d: firings inc=%d ref=%d", i, n1, n2)
		}
		if (err1 == nil) != (err2 == nil) || (err1 != nil && !errors.Is(err1, ErrBudgetExhausted)) {
			tw.fatalf("op %d: errors inc=%v ref=%v", i, err1, err2)
		}
		if op == 3 {
			tw.compare(fmt.Sprintf("after op %d", i))
		}
	}
	// Final settle with a generous budget, then a last full comparison.
	n1, err1 := tw.inc.FireAll(300)
	n2, err2 := tw.ref.FireAll(300)
	if n1 != n2 || (err1 == nil) != (err2 == nil) {
		tw.fatalf("settle: inc=(%d,%v) ref=(%d,%v)", n1, err1, n2, err2)
	}
	tw.compare("final")
}

// TestDifferentialSchedules drives both engines through 150 randomized
// seeded schedules (the acceptance bar is 100).
func TestDifferentialSchedules(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		runDifferentialSchedule(t, seed)
	}
}

// TestDifferentialLongSchedule is one deep schedule: more ops than the
// randomized runs, ensuring agenda repair stays correct across many
// FireAll cycles on the same session.
func TestDifferentialLongSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	gates := []bool{true, true}
	rs := genRules(rng, gates)
	tw := newTwin(t, 424242)
	for _, r := range rs {
		tw.inc.MustAddRules(r)
		tw.ref.MustAddRules(r)
	}
	for i := 0; i < 400; i++ {
		op := rng.Intn(4)
		typ, idx, k, v := rng.Intn(3), rng.Intn(16), rng.Intn(8), rng.Intn(16)
		applyOp(tw.inc, op, typ, idx, k, v, 20)
		applyOp(tw.ref, op, typ, idx, k, v, 20)
		if op == 3 {
			tw.compare(fmt.Sprintf("op %d", i))
		}
	}
	tw.compare("final")
}

// TestReferenceSessionSemantics spot-checks that the reference engine is
// usable standalone (Reset included) — it is the oracle, so its own
// plumbing deserves a direct test.
func TestReferenceSessionSemantics(t *testing.T) {
	s := NewReferenceSession()
	fired := 0
	s.MustAddRules(&Rule{
		Name: "count",
		When: []Pattern{Match[*dA]("a", nil)},
		Then: func(ctx *Context) { fired++ },
	})
	s.Insert(&dA{K: 1})
	if n, err := s.FireAll(0); n != 1 || err != nil {
		t.Fatalf("FireAll = %d, %v", n, err)
	}
	s.Reset()
	s.Insert(&dA{K: 2})
	if n, err := s.FireAll(0); n != 1 || err != nil {
		t.Fatalf("after Reset FireAll = %d, %v", n, err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
}
