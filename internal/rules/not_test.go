package rules

import "testing"

type flag struct{ set bool }

func TestNotMatchesWhenAbsent(t *testing.T) {
	s := NewSession()
	fired := 0
	s.MustAddRules(&Rule{
		Name: "create-if-missing",
		When: []Pattern{
			Match[*item]("it", nil),
			Not[*flag](nil),
		},
		Then: func(ctx *Context) {
			fired++
			ctx.Insert(&flag{})
		},
	})
	s.Insert(&item{name: "a"})
	s.Insert(&item{name: "b"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	// First firing inserts the flag; the second activation's negation now
	// fails, so exactly one firing happens.
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestNotWithGuardSeesBindings(t *testing.T) {
	// Fire for items that have no matching "done twin" (same name, done).
	s := NewSession()
	var lone []string
	s.MustAddRules(&Rule{
		Name: "lonely",
		When: []Pattern{
			Match("it", func(b Bindings, v *item) bool { return !v.done }),
			Not(func(b Bindings, v *item) bool {
				return v.done && v.name == b.Get("it").(*item).name
			}),
		},
		Then: func(ctx *Context) { lone = append(lone, ctx.Get("it").(*item).name) },
	})
	s.Insert(&item{name: "a"})
	s.Insert(&item{name: "a", done: true})
	s.Insert(&item{name: "b"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if len(lone) != 1 || lone[0] != "b" {
		t.Fatalf("lone = %v, want [b]", lone)
	}
}

func TestNotReArmsWhenFactRetracted(t *testing.T) {
	s := NewSession()
	fired := 0
	blocker := &flag{}
	it := &item{name: "a"}
	s.MustAddRules(&Rule{
		Name: "when-unblocked",
		When: []Pattern{
			Match[*item]("it", nil),
			Not[*flag](nil),
		},
		Then: func(ctx *Context) { fired++ },
	})
	s.Insert(blocker)
	s.Insert(it)
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("fired while blocked: %d", fired)
	}
	s.Retract(blocker)
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after unblock, want 1", fired)
	}
}

func TestNegatedPatternValidation(t *testing.T) {
	s := NewSession()
	bad := Not[*flag](nil)
	bad.Name = "oops"
	err := s.AddRule(&Rule{
		Name: "bad-not",
		When: []Pattern{Match[*item]("it", nil), bad},
		Then: func(*Context) {},
	})
	if err == nil {
		t.Fatal("named negated pattern accepted")
	}
}
