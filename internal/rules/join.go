package rules

// refKey is the refraction key: a comparable struct instead of a built
// string, so the leaf of every join allocates nothing. The recency state of
// a tuple is identified by the maximum recency across its facts: the global
// clock is strictly monotonic and a fact's recency only increases, so two
// distinct recency vectors over the same handles always differ in their
// maximum. maxRec is zero for NoLoop rules (updates never re-arm them).
type refKey struct {
	rule    int32
	maxRec  int64
	handles [maxPatterns]FactHandle
}

// matchRule emits every unfired activation of r. useIndex selects whether
// index hints are honoured (the reference matcher ignores them, so the
// differential harness also validates hint soundness). Gates are the
// caller's responsibility. Called with s.mu held.
func (s *Session) matchRule(r *Rule, ruleIndex int, useIndex bool, emit func(*activation)) {
	rt := s.rt[ruleIndex]
	var join func(depth int, t *tuple)
	join = func(depth int, t *tuple) {
		if depth == len(r.When) {
			var maxRec int64
			for _, h := range t.handles {
				if rec := s.facts[h]; rec != nil && rec.recency > maxRec {
					maxRec = rec.recency
				}
			}
			key := refKey{rule: int32(ruleIndex)}
			copy(key.handles[:], t.handles)
			if !r.NoLoop {
				key.maxRec = maxRec
			}
			if s.fired[key] {
				return
			}
			cp := &tuple{
				names:   append([]string(nil), t.names...),
				handles: append([]FactHandle(nil), t.handles...),
				values:  append([]any(nil), t.values...),
			}
			emit(&activation{rule: r, ruleIndex: ruleIndex, tuple: cp, recency: maxRec, key: key})
			return
		}
		p := &r.When[depth]
		var src *handleList
		if useIndex && rt.indexes[depth] != nil {
			src = rt.indexes[depth].buckets[p.lookup(t)]
		} else {
			src = s.byType[p.typ]
		}
		if src == nil {
			// No candidates: negation succeeds vacuously, anything else fails.
			if p.negated {
				join(depth+1, t)
			}
			return
		}
		if p.negated || p.existential {
			found := false
			for _, h := range src.items {
				if h == 0 {
					continue
				}
				rec, ok := s.facts[h]
				if !ok {
					continue
				}
				if p.where == nil || p.where(t, rec.value) {
					found = true
					break
				}
			}
			if found != p.negated {
				// Negation succeeds when nothing matched; existence
				// succeeds when something did.
				join(depth+1, t)
			}
			return
		}
		for _, h := range src.items {
			if h == 0 {
				continue
			}
			rec, ok := s.facts[h]
			if !ok {
				continue
			}
			// A fact may satisfy at most one pattern position in a tuple.
			dup := false
			for _, used := range t.handles {
				if used == h {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			t.names = append(t.names, p.Name)
			t.handles = append(t.handles, h)
			t.values = append(t.values, rec.value)
			if p.where == nil || p.where(t, rec.value) {
				join(depth+1, t)
			}
			t.names = t.names[:depth]
			t.handles = t.handles[:depth]
			t.values = t.values[:depth]
		}
	}
	join(0, &tuple{})
}
