package rules

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
)

// ErrBudgetExhausted is returned by FireAll when the firing budget is spent
// before the agenda empties — almost always a rule loop.
var ErrBudgetExhausted = errors.New("rules: firing budget exhausted")

// DefaultBudget is the FireAll firing budget used when none is given.
const DefaultBudget = 100000

// factRecord is a fact as stored in working memory.
type factRecord struct {
	handle  FactHandle
	value   any
	recency int64 // bumped on insert and update; drives conflict resolution
}

// ruleRT is the per-rule runtime state of the incremental matcher.
type ruleRT struct {
	// indexes[i] is the resolved alpha index probed by pattern i, or nil
	// when the pattern scans the type extent.
	indexes []*alphaIndex
	// acts is the rule's slice of the persistent agenda: every currently
	// valid, unfired activation, kept across firings and repaired only
	// when the rule goes dirty.
	acts []*activation
	// dirty marks that working memory was touched for one of the rule's
	// premise types (or the gate flipped on), so acts must be re-joined.
	dirty bool
	// gateOn is the gate's value at the last pick, so gate flips are
	// detected without fact mutation.
	gateOn bool
}

// Session is a rule session: working memory plus a rule base. It
// corresponds to a Drools stateful knowledge session; the paper's Policy
// Memory is the working memory of one long-lived session.
//
// Matching is incremental (Rete-style): each fact type's extent is an
// alpha memory, mutations dirty only the rules whose premises mention the
// touched type, and each rule's activations persist between firings.
// Guards must therefore be pure functions of the facts bound by the rule's
// patterns — a guard (or gate) reading other mutable state must be paired
// with Invalidate when that state changes, and a fact mutated in place is
// invisible to matching until Update is called.
//
// Sessions are safe for concurrent use; every exported method locks.
type Session struct {
	mu       sync.Mutex
	rules    []*Rule
	rt       []*ruleRT
	facts    map[FactHandle]*factRecord
	byType   map[reflect.Type]*handleList // insertion-ordered per type
	identity map[any]FactHandle
	// indexes holds the registered alpha indexes; typeIndexes groups them
	// by fact type for maintenance on insert/update/retract.
	indexes     map[indexID]*alphaIndex
	typeIndexes map[reflect.Type][]*alphaIndex
	// typeRules maps a fact type to the rules whose premises (positive or
	// quantified) mention it — the dirty-set propagation fan-out.
	typeRules map[reflect.Type][]int
	next      FactHandle
	clock     int64
	fired     map[refKey]bool // refraction memory
	// firedByHandle indexes refraction keys by the fact handles they
	// reference, so retracting a fact garbage-collects its keys — without
	// this, a long-lived session (the paper's Policy Memory persists for
	// the service lifetime) would leak refraction state forever.
	firedByHandle map[FactHandle][]refKey
	firings       int64
	halted        bool
	logger        func(format string, args ...any)
	// observer, when set, is invoked once per rule firing with the rule
	// name and its salience, in firing (i.e. conflict-resolution) order.
	// It runs with the session lock held, so it must not call back into
	// the session.
	observer func(rule string, salience int)
	// oldestFirst flips recency-based conflict resolution from Drools'
	// default LIFO (most recent fact first) to FIFO.
	oldestFirst bool
	// reference selects the naive full-rejoin matcher (see reference.go),
	// kept as the differential-testing oracle.
	reference bool
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{
		facts:         make(map[FactHandle]*factRecord),
		byType:        make(map[reflect.Type]*handleList),
		identity:      make(map[any]FactHandle),
		indexes:       make(map[indexID]*alphaIndex),
		typeIndexes:   make(map[reflect.Type][]*alphaIndex),
		typeRules:     make(map[reflect.Type][]int),
		fired:         make(map[refKey]bool),
		firedByHandle: make(map[FactHandle][]refKey),
	}
}

// Firings returns the total number of rule firings over the session's
// lifetime.
func (s *Session) Firings() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firings
}

// RefractionSize returns the number of retained refraction entries
// (diagnostic; bounded by the live fact population thanks to retraction
// garbage collection).
func (s *Session) RefractionSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fired)
}

// SetOldestFirst selects FIFO conflict resolution: at equal salience,
// activations over the least recently touched facts fire first. The default
// (false) matches Drools: most recent first.
func (s *Session) SetOldestFirst(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.oldestFirst = v
}

// SetLogger installs a trace logger (e.g. testing.T.Logf). Nil disables.
func (s *Session) SetLogger(f func(format string, args ...any)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logger = f
}

// SetFiringObserver installs a callback invoked once per rule firing
// with the rule's name and salience, in the exact order firings occur.
// The policy layer uses it to record decision provenance. The callback
// runs under the session lock and must not re-enter the session. Nil
// disables.
func (s *Session) SetFiringObserver(f func(rule string, salience int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = f
}

func (s *Session) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger(format, args...)
	}
}

// AddRule appends a rule to the rule base. Rule names must be unique, and
// any index hints must name indexes already registered with AddIndex.
func (s *Session) AddRule(r *Rule) error {
	if err := r.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.rules {
		if existing.Name == r.Name {
			return fmt.Errorf("rules: duplicate rule name %q", r.Name)
		}
	}
	rt := &ruleRT{indexes: make([]*alphaIndex, len(r.When)), dirty: true, gateOn: true}
	idx := len(s.rules)
	types := map[reflect.Type]bool{}
	for i, p := range r.When {
		if p.index != "" {
			ix := s.indexes[indexID{typ: p.typ, name: p.index}]
			if ix == nil {
				return fmt.Errorf("rules: rule %q pattern %d references unregistered index %q on %v", r.Name, i, p.index, p.typ)
			}
			rt.indexes[i] = ix
		}
		if !types[p.typ] {
			types[p.typ] = true
			s.typeRules[p.typ] = append(s.typeRules[p.typ], idx)
		}
	}
	s.rules = append(s.rules, r)
	s.rt = append(s.rt, rt)
	return nil
}

// MustAddRules adds each rule, panicking on error. Intended for static rule
// sets validated by tests.
func (s *Session) MustAddRules(rs ...*Rule) {
	for _, r := range rs {
		if err := s.AddRule(r); err != nil {
			panic(err)
		}
	}
}

// markDirty flags every rule with a premise on type t for re-join.
func (s *Session) markDirty(t reflect.Type) {
	for _, i := range s.typeRules[t] {
		s.rt[i].dirty = true
	}
}

// Invalidate marks every rule for re-join at the next firing cycle. Call it
// when state outside working memory that guards or index keys read — for the
// policy layer, the active bundle's tunables — changes.
func (s *Session) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rt := range s.rt {
		rt.dirty = true
	}
}

// Insert adds a fact to working memory and returns its handle. Inserting a
// value already present (by identity) returns the existing handle.
func (s *Session) Insert(v any) FactHandle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insert(v)
}

func (s *Session) insert(v any) FactHandle {
	if v == nil {
		panic("rules: insert of nil fact")
	}
	if h, ok := s.identity[v]; ok {
		return h
	}
	s.next++
	s.clock++
	h := s.next
	rec := &factRecord{handle: h, value: v, recency: s.clock}
	s.facts[h] = rec
	t := reflect.TypeOf(v)
	l := s.byType[t]
	if l == nil {
		l = newHandleList()
		s.byType[t] = l
	}
	l.add(h)
	s.identity[v] = h
	for _, ix := range s.typeIndexes[t] {
		ix.insert(h, v)
	}
	s.markDirty(t)
	return h
}

// Update marks an existing fact (matched by identity) as modified so rules
// re-evaluate against it. Unknown facts are ignored.
func (s *Session) Update(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.update(v)
}

func (s *Session) update(v any) {
	h, ok := s.identity[v]
	if !ok {
		return
	}
	s.clock++
	s.facts[h].recency = s.clock
	t := reflect.TypeOf(v)
	for _, ix := range s.typeIndexes[t] {
		ix.update(h, v)
	}
	s.markDirty(t)
}

// Retract removes a fact (matched by identity). Unknown facts are ignored.
func (s *Session) Retract(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retract(v)
}

func (s *Session) retract(v any) {
	if h, ok := s.identity[v]; ok {
		s.retractHandle(h)
	}
}

func (s *Session) retractHandle(h FactHandle) {
	rec, ok := s.facts[h]
	if !ok {
		return
	}
	delete(s.facts, h)
	delete(s.identity, rec.value)
	t := reflect.TypeOf(rec.value)
	if l := s.byType[t]; l != nil {
		l.remove(h)
	}
	for _, ix := range s.typeIndexes[t] {
		ix.retract(h)
	}
	// Garbage-collect refraction entries referencing the retracted fact.
	for _, key := range s.firedByHandle[h] {
		delete(s.fired, key)
	}
	delete(s.firedByHandle, h)
	s.markDirty(t)
}

// FactCount returns the number of facts in working memory.
func (s *Session) FactCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.facts)
}

// Facts returns all facts whose dynamic type equals that of exemplar, in
// insertion order.
func (s *Session) Facts(exemplar any) []any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.factsOfType(reflect.TypeOf(exemplar))
}

func (s *Session) factsOfType(t reflect.Type) []any {
	l := s.byType[t]
	if l == nil {
		return nil
	}
	out := make([]any, 0, l.size())
	for _, h := range l.items {
		if h == 0 {
			continue
		}
		out = append(out, s.facts[h].value)
	}
	return out
}

// FactsOf returns all facts of type T in insertion order.
func FactsOf[T any](s *Session) []T {
	var zero T
	vals := s.Facts(zero)
	out := make([]T, 0, len(vals))
	for _, v := range vals {
		out = append(out, v.(T))
	}
	return out
}

// First returns the first fact of type T matching pred (nil pred = any),
// and whether one was found.
func First[T any](s *Session, pred func(T) bool) (T, bool) {
	for _, v := range FactsOf[T](s) {
		if pred == nil || pred(v) {
			return v, true
		}
	}
	var zero T
	return zero, false
}

// CountOf returns the number of facts of type T matching pred (nil = all).
func CountOf[T any](s *Session, pred func(T) bool) int {
	n := 0
	for _, v := range FactsOf[T](s) {
		if pred == nil || pred(v) {
			n++
		}
	}
	return n
}

// FireAll runs the match–resolve–act cycle until the agenda is empty, Halt
// is called, or budget firings have occurred (budget <= 0 selects
// DefaultBudget). It returns the number of rule firings.
func (s *Session) FireAll(budget int) (int, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.halted = false
	firings := 0
	for firings < budget {
		act := s.pick()
		if act == nil {
			return firings, nil
		}
		s.fired[act.key] = true
		for _, h := range act.tuple.handles {
			s.firedByHandle[h] = append(s.firedByHandle[h], act.key)
		}
		s.logf("fire %s %v", act.rule.Name, act.tuple.handles)
		if s.observer != nil {
			s.observer(act.rule.Name, act.rule.Salience)
		}
		act.rule.Then(&Context{s: s, tuple: act.tuple, rule: act.rule})
		firings++
		s.firings++
		if s.halted {
			return firings, nil
		}
	}
	if s.pick() == nil {
		return firings, nil
	}
	return firings, fmt.Errorf("%w after %d firings", ErrBudgetExhausted, firings)
}

// pick returns the activation winning conflict resolution, or nil.
// Called with s.mu held.
func (s *Session) pick() *activation {
	if s.reference {
		return s.bestActivationNaive()
	}
	return s.nextActivation()
}

// Reset clears working memory and refraction state but keeps the rule base
// and registered indexes.
func (s *Session) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.facts = make(map[FactHandle]*factRecord)
	s.byType = make(map[reflect.Type]*handleList)
	s.identity = make(map[any]FactHandle)
	s.fired = make(map[refKey]bool)
	s.firedByHandle = make(map[FactHandle][]refKey)
	s.halted = false
	for _, ix := range s.indexes {
		ix.buckets = make(map[any]*handleList)
		ix.keyOf = make(map[FactHandle]any)
	}
	for _, rt := range s.rt {
		rt.acts = nil
		rt.dirty = true
		rt.gateOn = true
	}
}
