package rules

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// ErrBudgetExhausted is returned by FireAll when the firing budget is spent
// before the agenda empties — almost always a rule loop.
var ErrBudgetExhausted = errors.New("rules: firing budget exhausted")

// DefaultBudget is the FireAll firing budget used when none is given.
const DefaultBudget = 100000

// factRecord is a fact as stored in working memory.
type factRecord struct {
	handle  FactHandle
	value   any
	recency int64 // bumped on insert and update; drives conflict resolution
}

// Session is a rule session: working memory plus a rule base. It
// corresponds to a Drools stateful knowledge session; the paper's Policy
// Memory is the working memory of one long-lived session.
//
// Sessions are safe for concurrent use; every exported method locks.
type Session struct {
	mu       sync.Mutex
	rules    []*Rule
	facts    map[FactHandle]*factRecord
	byType   map[reflect.Type][]FactHandle // insertion-ordered per type
	identity map[any]FactHandle
	next     FactHandle
	clock    int64
	fired    map[string]bool // refraction memory
	// firedByHandle indexes refraction keys by the fact handles they
	// reference, so retracting a fact garbage-collects its keys — without
	// this, a long-lived session (the paper's Policy Memory persists for
	// the service lifetime) would leak refraction state forever.
	firedByHandle map[FactHandle][]string
	firings       int64
	halted        bool
	logger        func(format string, args ...any)
	// observer, when set, is invoked once per rule firing with the rule
	// name and its salience, in firing (i.e. conflict-resolution) order.
	// It runs with the session lock held, so it must not call back into
	// the session.
	observer func(rule string, salience int)
	// oldestFirst flips recency-based conflict resolution from Drools'
	// default LIFO (most recent fact first) to FIFO.
	oldestFirst bool
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{
		facts:         make(map[FactHandle]*factRecord),
		byType:        make(map[reflect.Type][]FactHandle),
		identity:      make(map[any]FactHandle),
		fired:         make(map[string]bool),
		firedByHandle: make(map[FactHandle][]string),
	}
}

// Firings returns the total number of rule firings over the session's
// lifetime.
func (s *Session) Firings() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firings
}

// RefractionSize returns the number of retained refraction entries
// (diagnostic; bounded by the live fact population thanks to retraction
// garbage collection).
func (s *Session) RefractionSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fired)
}

// SetOldestFirst selects FIFO conflict resolution: at equal salience,
// activations over the least recently touched facts fire first. The default
// (false) matches Drools: most recent first.
func (s *Session) SetOldestFirst(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.oldestFirst = v
}

// SetLogger installs a trace logger (e.g. testing.T.Logf). Nil disables.
func (s *Session) SetLogger(f func(format string, args ...any)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logger = f
}

// SetFiringObserver installs a callback invoked once per rule firing
// with the rule's name and salience, in the exact order firings occur.
// The policy layer uses it to record decision provenance. The callback
// runs under the session lock and must not re-enter the session. Nil
// disables.
func (s *Session) SetFiringObserver(f func(rule string, salience int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = f
}

func (s *Session) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger(format, args...)
	}
}

// AddRule appends a rule to the rule base. Rule names must be unique.
func (s *Session) AddRule(r *Rule) error {
	if err := r.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.rules {
		if existing.Name == r.Name {
			return fmt.Errorf("rules: duplicate rule name %q", r.Name)
		}
	}
	s.rules = append(s.rules, r)
	return nil
}

// MustAddRules adds each rule, panicking on error. Intended for static rule
// sets validated by tests.
func (s *Session) MustAddRules(rs ...*Rule) {
	for _, r := range rs {
		if err := s.AddRule(r); err != nil {
			panic(err)
		}
	}
}

// Insert adds a fact to working memory and returns its handle. Inserting a
// value already present (by identity) returns the existing handle.
func (s *Session) Insert(v any) FactHandle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insert(v)
}

func (s *Session) insert(v any) FactHandle {
	if v == nil {
		panic("rules: insert of nil fact")
	}
	if h, ok := s.identity[v]; ok {
		return h
	}
	s.next++
	s.clock++
	h := s.next
	rec := &factRecord{handle: h, value: v, recency: s.clock}
	s.facts[h] = rec
	t := reflect.TypeOf(v)
	s.byType[t] = append(s.byType[t], h)
	s.identity[v] = h
	return h
}

// Update marks an existing fact (matched by identity) as modified so rules
// re-evaluate against it. Unknown facts are ignored.
func (s *Session) Update(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.update(v)
}

func (s *Session) update(v any) {
	h, ok := s.identity[v]
	if !ok {
		return
	}
	s.clock++
	s.facts[h].recency = s.clock
}

// Retract removes a fact (matched by identity). Unknown facts are ignored.
func (s *Session) Retract(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retract(v)
}

func (s *Session) retract(v any) {
	if h, ok := s.identity[v]; ok {
		s.retractHandle(h)
	}
}

func (s *Session) retractHandle(h FactHandle) {
	rec, ok := s.facts[h]
	if !ok {
		return
	}
	delete(s.facts, h)
	delete(s.identity, rec.value)
	t := reflect.TypeOf(rec.value)
	hs := s.byType[t]
	for i, hh := range hs {
		if hh == h {
			s.byType[t] = append(hs[:i:i], hs[i+1:]...)
			break
		}
	}
	// Garbage-collect refraction entries referencing the retracted fact.
	for _, key := range s.firedByHandle[h] {
		delete(s.fired, key)
	}
	delete(s.firedByHandle, h)
}

// FactCount returns the number of facts in working memory.
func (s *Session) FactCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.facts)
}

// Facts returns all facts whose dynamic type equals that of exemplar, in
// insertion order.
func (s *Session) Facts(exemplar any) []any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.factsOfType(reflect.TypeOf(exemplar))
}

func (s *Session) factsOfType(t reflect.Type) []any {
	hs := s.byType[t]
	out := make([]any, 0, len(hs))
	for _, h := range hs {
		out = append(out, s.facts[h].value)
	}
	return out
}

// FactsOf returns all facts of type T in insertion order.
func FactsOf[T any](s *Session) []T {
	var zero T
	vals := s.Facts(zero)
	out := make([]T, 0, len(vals))
	for _, v := range vals {
		out = append(out, v.(T))
	}
	return out
}

// First returns the first fact of type T matching pred (nil pred = any),
// and whether one was found.
func First[T any](s *Session, pred func(T) bool) (T, bool) {
	for _, v := range FactsOf[T](s) {
		if pred == nil || pred(v) {
			return v, true
		}
	}
	var zero T
	return zero, false
}

// CountOf returns the number of facts of type T matching pred (nil = all).
func CountOf[T any](s *Session, pred func(T) bool) int {
	n := 0
	for _, v := range FactsOf[T](s) {
		if pred == nil || pred(v) {
			n++
		}
	}
	return n
}

// activation is a rule ready to fire on a specific tuple.
type activation struct {
	rule      *Rule
	ruleIndex int
	tuple     *tuple
	recency   int64 // max recency across tuple facts
	key       string
}

// FireAll runs the match–resolve–act cycle until the agenda is empty, Halt
// is called, or budget firings have occurred (budget <= 0 selects
// DefaultBudget). It returns the number of rule firings.
func (s *Session) FireAll(budget int) (int, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.halted = false
	firings := 0
	for firings < budget {
		act := s.bestActivation()
		if act == nil {
			return firings, nil
		}
		s.fired[act.key] = true
		for _, h := range act.tuple.handles {
			s.firedByHandle[h] = append(s.firedByHandle[h], act.key)
		}
		s.logf("fire %s %v", act.rule.Name, act.tuple.handles)
		if s.observer != nil {
			s.observer(act.rule.Name, act.rule.Salience)
		}
		act.rule.Then(&Context{s: s, tuple: act.tuple, rule: act.rule})
		firings++
		s.firings++
		if s.halted {
			return firings, nil
		}
	}
	if s.bestActivation() == nil {
		return firings, nil
	}
	return firings, fmt.Errorf("%w after %d firings", ErrBudgetExhausted, firings)
}

// bestActivation computes the current agenda and returns the activation
// that wins conflict resolution, or nil if the agenda is empty.
// Called with s.mu held.
func (s *Session) bestActivation() *activation {
	var agenda []*activation
	for i, r := range s.rules {
		s.matchRule(r, i, &agenda)
	}
	if len(agenda) == 0 {
		return nil
	}
	sort.SliceStable(agenda, func(i, j int) bool {
		a, b := agenda[i], agenda[j]
		if a.rule.Salience != b.rule.Salience {
			return a.rule.Salience > b.rule.Salience
		}
		if a.recency != b.recency {
			if s.oldestFirst {
				return a.recency < b.recency
			}
			return a.recency > b.recency
		}
		if a.ruleIndex != b.ruleIndex {
			return a.ruleIndex < b.ruleIndex
		}
		// Deterministic final tie-break: earlier handles first.
		for k := range a.tuple.handles {
			if k >= len(b.tuple.handles) {
				break
			}
			if a.tuple.handles[k] != b.tuple.handles[k] {
				return a.tuple.handles[k] < b.tuple.handles[k]
			}
		}
		return false
	})
	return agenda[0]
}

// matchRule appends every unfired activation of r to agenda.
// Called with s.mu held.
func (s *Session) matchRule(r *Rule, ruleIndex int, agenda *[]*activation) {
	if r.Gate != nil && !r.Gate() {
		return
	}
	var join func(depth int, t *tuple)
	join = func(depth int, t *tuple) {
		if depth == len(r.When) {
			key := s.activationRecencyKey(r, t)
			if s.fired[key] {
				return
			}
			var maxRec int64
			for _, h := range t.handles {
				if rec := s.facts[h]; rec != nil && rec.recency > maxRec {
					maxRec = rec.recency
				}
			}
			cp := &tuple{
				names:   append([]string(nil), t.names...),
				handles: append([]FactHandle(nil), t.handles...),
				values:  append([]any(nil), t.values...),
			}
			*agenda = append(*agenda, &activation{rule: r, ruleIndex: ruleIndex, tuple: cp, recency: maxRec, key: key})
			return
		}
		p := r.When[depth]
		if p.negated || p.existential {
			found := false
			for _, h := range s.byType[p.typ] {
				rec, ok := s.facts[h]
				if !ok {
					continue
				}
				if p.where == nil || p.where(t, rec.value) {
					found = true
					break
				}
			}
			if found != p.negated {
				// Negation succeeds when nothing matched; existence
				// succeeds when something did.
				join(depth+1, t)
			}
			return
		}
		for _, h := range append([]FactHandle(nil), s.byType[p.typ]...) {
			rec, ok := s.facts[h]
			if !ok {
				continue
			}
			// A fact may satisfy at most one pattern position in a tuple.
			dup := false
			for _, used := range t.handles {
				if used == h {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			t.names = append(t.names, p.Name)
			t.handles = append(t.handles, h)
			t.values = append(t.values, rec.value)
			if p.where == nil || p.where(t, rec.value) {
				join(depth+1, t)
			}
			t.names = t.names[:depth]
			t.handles = t.handles[:depth]
			t.values = t.values[:depth]
		}
	}
	join(0, &tuple{})
}

// activationKey builds the refraction key: rule + tuple handles, plus the
// facts' recencies unless the rule is NoLoop (so updates re-arm normal
// rules but never NoLoop rules).
func activationKey(r *Rule, t *tuple) string {
	var sb strings.Builder
	sb.WriteString(r.Name)
	for _, h := range t.handles {
		fmt.Fprintf(&sb, "|%d", h)
	}
	return sb.String()
}

// activationRecencyKey adds recency to the refraction key for non-NoLoop
// rules, so fact updates re-arm normal rules but never NoLoop rules.
func (s *Session) activationRecencyKey(r *Rule, t *tuple) string {
	base := activationKey(r, t)
	if r.NoLoop {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	for _, h := range t.handles {
		if rec := s.facts[h]; rec != nil {
			fmt.Fprintf(&sb, "~%d", rec.recency)
		}
	}
	return sb.String()
}

// Reset clears working memory and refraction state but keeps the rule base.
func (s *Session) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.facts = make(map[FactHandle]*factRecord)
	s.byType = make(map[reflect.Type][]FactHandle)
	s.identity = make(map[any]FactHandle)
	s.fired = make(map[string]bool)
	s.firedByHandle = make(map[FactHandle][]string)
	s.halted = false
}
