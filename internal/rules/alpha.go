package rules

import (
	"fmt"
	"reflect"
)

// Alpha memories. Every fact type gets a handleList (the type's alpha node:
// all live facts of the type in insertion order), and callers may register
// named alphaIndexes that bucket a type's facts by a join key so indexed
// patterns probe one bucket instead of scanning the whole type extent.

// handleList is an insertion-ordered set of fact handles with O(1) add and
// remove. Removal tombstones the slot (handle 0 is never issued) and the
// slice is compacted when more than half the slots are dead, so iteration
// stays O(live + dead) with dead bounded by live.
type handleList struct {
	items []FactHandle // 0 = tombstone
	pos   map[FactHandle]int
	dead  int
}

func newHandleList() *handleList {
	return &handleList{pos: make(map[FactHandle]int)}
}

func (l *handleList) add(h FactHandle) {
	l.pos[h] = len(l.items)
	l.items = append(l.items, h)
}

func (l *handleList) remove(h FactHandle) {
	i, ok := l.pos[h]
	if !ok {
		return
	}
	l.items[i] = 0
	delete(l.pos, h)
	l.dead++
	if l.dead*2 > len(l.items) {
		l.compact()
	}
}

func (l *handleList) compact() {
	live := l.items[:0]
	for _, h := range l.items {
		if h != 0 {
			l.pos[h] = len(live)
			live = append(live, h)
		}
	}
	l.items = live
	l.dead = 0
}

func (l *handleList) size() int { return len(l.pos) }

// indexID identifies a registered index: names are scoped per fact type.
type indexID struct {
	typ  reflect.Type
	name string
}

// alphaIndex buckets one fact type's handles by a caller-supplied key
// function. Keys must be comparable; empty buckets are deleted so negated
// probes on absent keys are a single map miss.
type alphaIndex struct {
	id      indexID
	key     func(v any) any
	buckets map[any]*handleList
	keyOf   map[FactHandle]any
}

func (ix *alphaIndex) insert(h FactHandle, v any) {
	k := ix.key(v)
	ix.keyOf[h] = k
	b := ix.buckets[k]
	if b == nil {
		b = newHandleList()
		ix.buckets[k] = b
	}
	b.add(h)
}

// update re-buckets the fact if its key changed.
func (ix *alphaIndex) update(h FactHandle, v any) {
	old, ok := ix.keyOf[h]
	if !ok {
		return
	}
	k := ix.key(v)
	if k == old {
		return
	}
	ix.removeFrom(old, h)
	ix.keyOf[h] = k
	b := ix.buckets[k]
	if b == nil {
		b = newHandleList()
		ix.buckets[k] = b
	}
	b.add(h)
}

func (ix *alphaIndex) retract(h FactHandle) {
	k, ok := ix.keyOf[h]
	if !ok {
		return
	}
	ix.removeFrom(k, h)
	delete(ix.keyOf, h)
}

func (ix *alphaIndex) removeFrom(k any, h FactHandle) {
	b := ix.buckets[k]
	if b == nil {
		return
	}
	b.remove(h)
	if b.size() == 0 {
		delete(ix.buckets, k)
	}
}

// AddIndex registers a named alpha index over facts of exemplar's dynamic
// type. The key function must return a comparable value and must depend
// only on the fact (facts mutated in place must be re-keyed via Update,
// exactly like guard re-evaluation). Indexes must be registered before
// rules that reference them are added; registering over a populated
// working memory back-fills the buckets.
func (s *Session) AddIndex(exemplar any, name string, key func(v any) any) error {
	t := reflect.TypeOf(exemplar)
	if t == nil {
		return fmt.Errorf("rules: AddIndex with untyped nil exemplar")
	}
	if name == "" {
		return fmt.Errorf("rules: AddIndex with empty name")
	}
	if key == nil {
		return fmt.Errorf("rules: AddIndex %q with nil key function", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := indexID{typ: t, name: name}
	if _, dup := s.indexes[id]; dup {
		return fmt.Errorf("rules: duplicate index %q on %v", name, t)
	}
	ix := &alphaIndex{
		id:      id,
		key:     key,
		buckets: make(map[any]*handleList),
		keyOf:   make(map[FactHandle]any),
	}
	if l := s.byType[t]; l != nil {
		for _, h := range l.items {
			if h == 0 {
				continue
			}
			if rec := s.facts[h]; rec != nil {
				ix.insert(h, rec.value)
			}
		}
	}
	s.indexes[id] = ix
	s.typeIndexes[t] = append(s.typeIndexes[t], ix)
	return nil
}

// AddIndexOf registers a typed alpha index over facts of type T.
func AddIndexOf[T any, K comparable](s *Session, name string, key func(v T) K) error {
	var zero T
	return s.AddIndex(zero, name, func(v any) any { return key(v.(T)) })
}

// FactsBy returns the facts of exemplar's dynamic type in the named
// index's bucket for key, in insertion order. It is a point query against
// the alpha memory — O(bucket), not O(type extent).
func (s *Session) FactsBy(exemplar any, index string, key any) []any {
	t := reflect.TypeOf(exemplar)
	s.mu.Lock()
	defer s.mu.Unlock()
	ix := s.indexes[indexID{typ: t, name: index}]
	if ix == nil {
		return nil
	}
	b := ix.buckets[key]
	if b == nil {
		return nil
	}
	out := make([]any, 0, b.size())
	for _, h := range b.items {
		if h == 0 {
			continue
		}
		if rec := s.facts[h]; rec != nil {
			out = append(out, rec.value)
		}
	}
	return out
}

// CtxFirstBy returns the first fact of type T in the named index's
// bucket for key that matches pred (nil pred = any). It probes the alpha
// memory directly — O(bucket) and allocation-free — and is the indexed
// counterpart of CtxFirst for rule actions, where a full type-extent scan
// would put O(facts) work inside a single firing.
func CtxFirstBy[T any](c *Context, index string, key any, pred func(T) bool) (T, bool) {
	var zero T
	ix := c.s.indexes[indexID{typ: reflect.TypeOf(zero), name: index}]
	if ix == nil {
		return zero, false
	}
	b := ix.buckets[key]
	if b == nil {
		return zero, false
	}
	for _, h := range b.items {
		if h == 0 {
			continue
		}
		if rec := c.s.facts[h]; rec != nil {
			if v, ok := rec.value.(T); ok && (pred == nil || pred(v)) {
				return v, true
			}
		}
	}
	return zero, false
}

// FactsByKey returns the facts of type T in the named index's bucket for
// key, in insertion order.
func FactsByKey[T any](s *Session, index string, key any) []T {
	var zero T
	vals := s.FactsBy(zero, index, key)
	out := make([]T, 0, len(vals))
	for _, v := range vals {
		out = append(out, v.(T))
	}
	return out
}
