package rules

// Benchmarks the refraction-key hot path: the engine used to build a
// string per candidate tuple per firing (rule name + handles + recencies);
// it now builds a comparable refKey struct. legacyRecencyKey reproduces
// the old code so the allocation drop stays measurable.

import (
	"fmt"
	"strings"
	"testing"
)

func legacyActivationKey(r *Rule, t *tuple) string {
	var sb strings.Builder
	sb.WriteString(r.Name)
	for _, h := range t.handles {
		fmt.Fprintf(&sb, "|%d", h)
	}
	return sb.String()
}

func legacyRecencyKey(s *Session, r *Rule, t *tuple) string {
	base := legacyActivationKey(r, t)
	if r.NoLoop {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	for _, h := range t.handles {
		if rec := s.facts[h]; rec != nil {
			fmt.Fprintf(&sb, "~%d", rec.recency)
		}
	}
	return sb.String()
}

func benchKeySession() (*Session, *Rule, *tuple) {
	s := NewSession()
	r := &Rule{Name: "bench-refraction-key"}
	t := &tuple{}
	for i := 0; i < 3; i++ {
		h := s.Insert(&dA{K: i})
		t.names = append(t.names, fmt.Sprintf("x%d", i))
		t.handles = append(t.handles, h)
		t.values = append(t.values, &dA{K: i})
	}
	return s, r, t
}

// BenchmarkRefractionKeyString measures the retired string-key path.
func BenchmarkRefractionKeyString(b *testing.B) {
	s, r, t := benchKeySession()
	fired := map[string]bool{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := legacyRecencyKey(s, r, t)
		if fired[key] {
			continue
		}
	}
}

// BenchmarkRefractionKeyStruct measures the current comparable struct key.
func BenchmarkRefractionKeyStruct(b *testing.B) {
	s, r, t := benchKeySession()
	fired := map[refKey]bool{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var maxRec int64
		for _, h := range t.handles {
			if rec := s.facts[h]; rec != nil && rec.recency > maxRec {
				maxRec = rec.recency
			}
		}
		key := refKey{rule: 7}
		copy(key.handles[:], t.handles)
		if !r.NoLoop {
			key.maxRec = maxRec
		}
		if fired[key] {
			continue
		}
	}
}
