//go:build !rules_noref

package rules

// The naive full-rejoin matcher, kept verbatim in behaviour as the oracle
// for the differential harness (diff_test.go, FuzzSessionOps): it rebuilds
// the whole agenda from scratch before every firing and ignores index
// hints. Build with -tags rules_noref to exclude it from a production
// binary (see reference_stub.go).

// NewReferenceSession returns a session driven by the naive full-rejoin
// matcher instead of the incremental one. Semantics are identical; cost per
// firing is O(rules × facts^joins).
func NewReferenceSession() *Session {
	s := NewSession()
	s.reference = true
	return s
}

// bestActivationNaive recomputes every rule's matches and returns the
// winner of conflict resolution, or nil. Called with s.mu held.
func (s *Session) bestActivationNaive() *activation {
	var best *activation
	for i, r := range s.rules {
		if r.Gate != nil && !r.Gate() {
			continue
		}
		s.matchRule(r, i, false, func(a *activation) {
			if best == nil || s.better(a, best) {
				best = a
			}
		})
	}
	return best
}
