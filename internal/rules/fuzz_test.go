package rules

// FuzzSessionOps decodes an arbitrary byte stream into a schedule of
// session operations and cross-checks the incremental engine against the
// naive reference engine after every firing cycle. Wired into
// `make fuzz-smoke`.

import (
	"fmt"
	"testing"
)

// fuzzRules is a fixed rule set covering salience ties, NoLoop, gates,
// negation, existential patterns, joins (hinted and unhinted), Halt, and
// working-memory mutation from the RHS.
func fuzzRules(gate *bool) []*Rule {
	return []*Rule{
		{
			Name:     "join-hinted",
			Salience: 2,
			When: []Pattern{
				Match("x0", func(b Bindings, a *dA) bool { return a.V%2 == 0 }),
				MatchOn("x1", "k", func(b Bindings) any { return b.Get("x0").(*dA).K },
					func(b Bindings, v *dB) bool { return v.K == b.Get("x0").(*dA).K }),
			},
			Then: func(ctx *Context) {
				bf := ctx.Get("x1").(*dB)
				if bf.V < 30 {
					bf.V++
					ctx.Update(bf)
				}
			},
		},
		{
			Name:     "noloop-spawn",
			Salience: 2,
			NoLoop:   true,
			When: []Pattern{
				Match("x0", func(b Bindings, a *dA) bool { return a.K < 6 }),
			},
			Then: func(ctx *Context) {
				if ctx.s.FactCountLocked() < 40 {
					ctx.Insert(&dC{K: ctx.Get("x0").(*dA).K, V: 1})
				}
			},
		},
		{
			Name:     "gated-not",
			Salience: 1,
			Gate:     func() bool { return *gate },
			When: []Pattern{
				Match[*dC]("x0", nil),
				NotOn("k", func(b Bindings) any { return b.Get("x0").(*dC).K },
					func(b Bindings, a *dA) bool { return a.K == b.Get("x0").(*dC).K && a.V > 8 }),
			},
			Then: func(ctx *Context) {
				ctx.RetractHandle(ctx.Handle("x0"))
			},
		},
		{
			Name:     "exists-halt",
			Salience: 0,
			When: []Pattern{
				Match("x0", func(b Bindings, bb *dB) bool { return bb.V > 20 }),
				Exists(func(b Bindings, a *dA) bool { return a.K == 7 }),
			},
			Then: func(ctx *Context) { ctx.Halt() },
		},
	}
}

func FuzzSessionOps(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x19, 0x73, 0xe0})
	f.Add([]byte{0x00, 0x10, 0x20, 0x30, 0x60, 0x60, 0x81, 0x45, 0x60})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x60, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		gate := true
		inc, ref := NewSession(), NewReferenceSession()
		var incLog, refLog []string
		inc.SetFiringObserver(func(r string, s int) { incLog = append(incLog, fmt.Sprintf("%s/%d", r, s)) })
		ref.SetFiringObserver(func(r string, s int) { refLog = append(refLog, fmt.Sprintf("%s/%d", r, s)) })
		for _, s := range []*Session{inc, ref} {
			registerKIndex(t, s)
			s.MustAddRules(fuzzRules(&gate)...)
		}
		check := func(stage int) {
			if len(incLog) != len(refLog) {
				t.Fatalf("byte %d: firing count inc=%d ref=%d", stage, len(incLog), len(refLog))
			}
			for i := range incLog {
				if incLog[i] != refLog[i] {
					t.Fatalf("byte %d: firing %d inc=%s ref=%s", stage, i, incLog[i], refLog[i])
				}
			}
			if a, b := factLine(inc), factLine(ref); a != b {
				t.Fatalf("byte %d: facts diverge\ninc=%s\nref=%s", stage, a, b)
			}
			if a, b := inc.RefractionSize(), ref.RefractionSize(); a != b {
				t.Fatalf("byte %d: refraction inc=%d ref=%d", stage, a, b)
			}
		}
		for i := 0; i < len(data); i++ {
			b := data[i]
			op := int(b >> 5)    // top 3 bits select the operation
			arg := int(b & 0x1f) // low 5 bits parameterize it
			typ := arg % 3
			k, v := arg%8, arg%16
			switch op {
			case 0, 1: // insert (two opcodes: inserts should dominate)
				inc.Insert(dNew(typ, k, v))
				ref.Insert(dNew(typ, k, v))
			case 2: // update
				applyOp(inc, 1, typ, arg, k, v+1, 0)
				applyOp(ref, 1, typ, arg, k, v+1, 0)
			case 3: // retract
				applyOp(inc, 2, typ, arg, 0, 0, 0)
				applyOp(ref, 2, typ, arg, 0, 0, 0)
			case 4: // flip the gate
				gate = !gate
			case 5: // fire with a small budget (exercises exhaustion)
				n1, e1 := inc.FireAll(1 + arg)
				n2, e2 := ref.FireAll(1 + arg)
				if n1 != n2 || (e1 == nil) != (e2 == nil) {
					t.Fatalf("byte %d: fire inc=(%d,%v) ref=(%d,%v)", i, n1, e1, n2, e2)
				}
				check(i)
			case 6: // fire with the default budget
				n1, e1 := inc.FireAll(0)
				n2, e2 := ref.FireAll(0)
				if n1 != n2 || (e1 == nil) != (e2 == nil) {
					t.Fatalf("byte %d: fire inc=(%d,%v) ref=(%d,%v)", i, n1, e1, n2, e2)
				}
				check(i)
			case 7: // reset both sessions
				inc.Reset()
				ref.Reset()
			}
		}
		inc.FireAll(200)
		ref.FireAll(200)
		check(len(data))
	})
}
