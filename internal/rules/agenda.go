package rules

// activation is a rule ready to fire on a specific tuple.
type activation struct {
	rule      *Rule
	ruleIndex int
	tuple     *tuple
	recency   int64 // max recency across tuple facts
	key       refKey
}

// better reports whether a wins conflict resolution over b: salience
// descending, then fact recency (LIFO by default, FIFO when oldestFirst),
// then rule declaration order, then lexicographic tuple handles. Distinct
// activations always differ at some level (same rule + same handles + same
// recency state is the same activation), so this is a total order and the
// agenda's enumeration order never affects which activation fires.
func (s *Session) better(a, b *activation) bool {
	if a.rule.Salience != b.rule.Salience {
		return a.rule.Salience > b.rule.Salience
	}
	if a.recency != b.recency {
		if s.oldestFirst {
			return a.recency < b.recency
		}
		return a.recency > b.recency
	}
	if a.ruleIndex != b.ruleIndex {
		return a.ruleIndex < b.ruleIndex
	}
	// Deterministic final tie-break: earlier handles first.
	for k := range a.tuple.handles {
		if k >= len(b.tuple.handles) {
			break
		}
		if a.tuple.handles[k] != b.tuple.handles[k] {
			return a.tuple.handles[k] < b.tuple.handles[k]
		}
	}
	return false
}

// nextActivation repairs the persistent agenda and returns the winner of
// conflict resolution, or nil if the agenda is empty. Per rule: the gate is
// re-evaluated (a flip to on dirties the rule, a flip to off clears its
// activations); a dirty rule is re-joined from the alpha memories; a clean
// rule only lazily prunes activations fired since the last pick. Called
// with s.mu held.
func (s *Session) nextActivation() *activation {
	var best *activation
	for i, r := range s.rules {
		rt := s.rt[i]
		on := r.Gate == nil || r.Gate()
		if on != rt.gateOn {
			rt.gateOn = on
			if on {
				rt.dirty = true
			} else {
				rt.acts = rt.acts[:0]
			}
		}
		if !on {
			continue
		}
		if rt.dirty {
			rt.acts = rt.acts[:0]
			s.matchRule(r, i, true, func(a *activation) {
				rt.acts = append(rt.acts, a)
				if best == nil || s.better(a, best) {
					best = a
				}
			})
			rt.dirty = false
			continue
		}
		live := rt.acts[:0]
		for _, a := range rt.acts {
			if s.fired[a.key] {
				continue
			}
			live = append(live, a)
			if best == nil || s.better(a, best) {
				best = a
			}
		}
		rt.acts = live
	}
	return best
}
