package rules

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type pnum struct{ v int }

// TestFireAllTerminatesAndCovers: for random batches of facts, a
// once-per-fact rule fires exactly once per fact, independent of insertion
// order, and FireAll terminates without touching the budget.
func TestFireAllTerminatesAndCovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		s := NewSession()
		fired := map[int]int{}
		s.MustAddRules(&Rule{
			Name: "touch",
			When: []Pattern{Match[*pnum]("x", nil)},
			Then: func(ctx *Context) { fired[ctx.Get("x").(*pnum).v]++ },
		})
		for i := 0; i < n; i++ {
			s.Insert(&pnum{v: i})
		}
		count, err := s.FireAll(0)
		if err != nil || count != n {
			return false
		}
		for i := 0; i < n; i++ {
			if fired[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedMutationInvariant: randomly interleaving inserts, updates
// and retracts between FireAll calls never double-fires a (fact, recency)
// state and never leaves working memory inconsistent with the driver's
// shadow set.
func TestInterleavedMutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSession()
		s.MustAddRules(&Rule{
			Name: "noop",
			When: []Pattern{Match[*pnum]("x", nil)},
			Then: func(ctx *Context) {},
		})
		live := map[*pnum]bool{}
		var all []*pnum
		for step := 0; step < 80; step++ {
			switch rng.Intn(4) {
			case 0, 1:
				p := &pnum{v: step}
				s.Insert(p)
				live[p] = true
				all = append(all, p)
			case 2:
				if len(all) > 0 {
					p := all[rng.Intn(len(all))]
					s.Update(p) // no-op for dead facts
				}
			case 3:
				if len(all) > 0 {
					p := all[rng.Intn(len(all))]
					s.Retract(p)
					delete(live, p)
				}
			}
			if rng.Intn(3) == 0 {
				if _, err := s.FireAll(0); err != nil {
					return false
				}
			}
		}
		if s.FactCount() != len(live) {
			return false
		}
		got := map[*pnum]bool{}
		for _, v := range FactsOf[*pnum](s) {
			got[v] = true
		}
		for p := range live {
			if !got[p] {
				return false
			}
		}
		return len(got) == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
