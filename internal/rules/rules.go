// Package rules implements a forward-chaining production rule engine in the
// style of Drools, which the paper uses to implement its Policy Service
// (Section IV). The engine provides:
//
//   - a working memory of typed facts with insert / update / retract,
//   - rules declared as data: a sequence of patterns (a join over fact
//     types with guard predicates) plus a right-hand-side action,
//   - an agenda with Drools-like conflict resolution (salience, then fact
//     recency, then rule declaration order),
//   - refraction (an activation fires at most once per fact-tuple state)
//     and a NoLoop option (at most once per fact tuple, ever),
//   - a fire budget that guarantees termination of FireAll.
//
// Rules are pure data handed to a session, so — as the paper argues for its
// Drools rules — policy behaviour is separated from application logic and
// can be swapped per deployment.
//
// Facts must be pointers (or otherwise comparable values); updates mutate
// the fact in place and then call Update to re-evaluate affected rules.
package rules

import (
	"fmt"
	"reflect"
)

// FactHandle identifies a fact inside a session's working memory.
type FactHandle int64

// Bindings gives guard predicates and rule actions access to the facts
// matched by the patterns evaluated so far, by pattern name.
type Bindings interface {
	// Get returns the fact bound to the named pattern, or nil.
	Get(name string) any
	// Handle returns the working-memory handle of the named binding, or 0.
	Handle(name string) FactHandle
}

// Pattern is one condition of a rule: it matches facts of a single dynamic
// type and may further constrain the match with a guard that can consult
// earlier bindings (making the rule a join).
type Pattern struct {
	// Name binds the matched fact for later patterns and the RHS. Negated
	// patterns bind nothing and need no name.
	Name string
	// typ is the dynamic fact type matched by this pattern.
	typ reflect.Type
	// where is the guard; nil means unconditional.
	where func(b Bindings, v any) bool
	// negated inverts the pattern: it succeeds only when no fact of typ
	// satisfies the guard (Drools "not").
	negated bool
	// existential makes the pattern succeed once if any fact of typ
	// satisfies the guard, binding nothing (Drools "exists").
	existential bool
	// index, when non-empty, names an alpha-memory index (registered with
	// Session.AddIndex on this pattern's fact type) that the incremental
	// matcher probes instead of scanning every fact of the type. lookup
	// computes the probe key from the earlier bindings.
	index  string
	lookup func(b Bindings) any
}

// Match constructs a Pattern matching facts of dynamic type T (use the
// same type facts are inserted with — conventionally a pointer type). The
// guard may be nil.
func Match[T any](name string, where func(b Bindings, v T) bool) Pattern {
	var zero T
	p := Pattern{Name: name, typ: reflect.TypeOf(zero)}
	if p.typ == nil {
		panic("rules: Match requires a concrete type parameter")
	}
	if where != nil {
		p.where = func(b Bindings, v any) bool { return where(b, v.(T)) }
	}
	return p
}

// MatchOn is Match with an alpha-index hint: instead of scanning every
// fact of type T, the incremental matcher probes the named index (see
// Session.AddIndex) with the key computed by lookup from the bindings of
// earlier patterns. The hint is pure acceleration — the guard must still
// fully constrain the match on its own, because the reference engine (and
// any pattern whose index is missing a bucket) ignores hints. The probe
// key's dynamic type must equal the index key function's result type, or
// the probe silently finds nothing.
func MatchOn[T any](name, index string, lookup func(b Bindings) any, where func(b Bindings, v T) bool) Pattern {
	p := Match(name, where)
	p.index = index
	p.lookup = lookup
	return p
}

// Not constructs a negated Pattern: the enclosing rule matches only when no
// fact of type T satisfies the guard (nil guard = no fact of type T exists
// at all). Negated patterns contribute no binding.
func Not[T any](where func(b Bindings, v T) bool) Pattern {
	p := Match("", where)
	p.negated = true
	return p
}

// NotOn is Not with an alpha-index hint; see MatchOn.
func NotOn[T any](index string, lookup func(b Bindings) any, where func(b Bindings, v T) bool) Pattern {
	p := Not(where)
	p.index = index
	p.lookup = lookup
	return p
}

// Exists constructs an existential Pattern (Drools "exists"): the rule
// matches when at least one fact of type T satisfies the guard, but the
// fact is not bound and the rule fires at most once per surrounding tuple
// regardless of how many facts satisfy it.
func Exists[T any](where func(b Bindings, v T) bool) Pattern {
	p := Match("", where)
	p.existential = true
	return p
}

// ExistsOn is Exists with an alpha-index hint; see MatchOn.
func ExistsOn[T any](index string, lookup func(b Bindings) any, where func(b Bindings, v T) bool) Pattern {
	p := Exists(where)
	p.index = index
	p.lookup = lookup
	return p
}

// Rule is a production: when all patterns match (a join), the action runs.
type Rule struct {
	// Name identifies the rule in traces and refraction keys; must be
	// unique within a session.
	Name string
	// Salience orders activations: higher fires first. Default 0.
	Salience int
	// NoLoop prevents the rule from ever firing twice on the same tuple
	// of fact handles, even if the facts are updated.
	NoLoop bool
	// Gate, when non-nil, is consulted before the rule's patterns are
	// matched; a false return removes the rule from the agenda without
	// scanning any facts. It lets a caller install every rule set up front
	// and select among them per firing cycle (e.g. by the active policy
	// bundle) at the cost of one closure call instead of a fact join. The
	// gate runs with the session lock held and must not re-enter the
	// session.
	Gate func() bool
	// When is the sequence of patterns joined left to right.
	When []Pattern
	// Then is the right-hand side, run when the rule fires.
	Then func(ctx *Context)
}

// maxPatterns bounds the number of positive (binding) patterns per rule so
// refraction keys fit a fixed-size comparable struct (see refKey).
const maxPatterns = 6

func (r *Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("rules: rule with empty name")
	}
	if len(r.When) == 0 {
		return fmt.Errorf("rules: rule %q has no patterns", r.Name)
	}
	positive := 0
	seen := map[string]bool{}
	for i, p := range r.When {
		if p.typ == nil {
			return fmt.Errorf("rules: rule %q pattern %d built without Match/Not", r.Name, i)
		}
		if p.index != "" && p.lookup == nil {
			return fmt.Errorf("rules: rule %q pattern %d names index %q without a lookup", r.Name, i, p.index)
		}
		if p.negated || p.existential {
			if p.Name != "" {
				return fmt.Errorf("rules: rule %q quantified pattern %d must not bind a name", r.Name, i)
			}
			continue
		}
		positive++
		if positive > maxPatterns {
			return fmt.Errorf("rules: rule %q has more than %d binding patterns", r.Name, maxPatterns)
		}
		if p.Name == "" {
			return fmt.Errorf("rules: rule %q pattern %d has no binding name", r.Name, i)
		}
		if seen[p.Name] {
			return fmt.Errorf("rules: rule %q duplicate binding %q", r.Name, p.Name)
		}
		seen[p.Name] = true
	}
	if r.Then == nil {
		return fmt.Errorf("rules: rule %q has no action", r.Name)
	}
	return nil
}

// Context is passed to a firing rule's action. It exposes the matched
// bindings and working-memory operations. Mutating a fact's fields must be
// followed by Update for dependent rules to re-evaluate.
type Context struct {
	s     *Session
	tuple *tuple
	rule  *Rule
}

// Rule returns the firing rule's name.
func (c *Context) Rule() string { return c.rule.Name }

// Get returns the fact bound to the named pattern.
func (c *Context) Get(name string) any { return c.tuple.Get(name) }

// Handle returns the handle bound to the named pattern.
func (c *Context) Handle(name string) FactHandle { return c.tuple.Handle(name) }

// Insert adds a fact to working memory.
func (c *Context) Insert(v any) FactHandle { return c.s.insert(v) }

// Update signals that fact v (matched by identity) was modified.
func (c *Context) Update(v any) { c.s.update(v) }

// Retract removes fact v (matched by identity) from working memory.
func (c *Context) Retract(v any) { c.s.retract(v) }

// RetractHandle removes the fact with the given handle.
func (c *Context) RetractHandle(h FactHandle) { c.s.retractHandle(h) }

// Halt stops FireAll after the current action returns.
func (c *Context) Halt() { c.s.halted = true }

// Logf writes to the session logger, if any.
func (c *Context) Logf(format string, args ...any) {
	c.s.logf("[%s] "+format, append([]any{c.rule.Name}, args...)...)
}

// Facts returns all facts of exemplar's dynamic type, in insertion order.
// RHS actions must use Context queries (not Session methods, which lock).
func (c *Context) Facts(exemplar any) []any {
	return c.s.factsOfType(reflect.TypeOf(exemplar))
}

// CtxFactsOf returns all facts of type T visible to the firing rule.
func CtxFactsOf[T any](c *Context) []T {
	var zero T
	vals := c.Facts(zero)
	out := make([]T, 0, len(vals))
	for _, v := range vals {
		out = append(out, v.(T))
	}
	return out
}

// CtxFirst returns the first fact of type T matching pred (nil = any).
func CtxFirst[T any](c *Context, pred func(T) bool) (T, bool) {
	for _, v := range CtxFactsOf[T](c) {
		if pred == nil || pred(v) {
			return v, true
		}
	}
	var zero T
	return zero, false
}

// CtxCountOf counts facts of type T matching pred (nil = all).
func CtxCountOf[T any](c *Context, pred func(T) bool) int {
	n := 0
	for _, v := range CtxFactsOf[T](c) {
		if pred == nil || pred(v) {
			n++
		}
	}
	return n
}

// tuple is a concrete Bindings: the facts matched by a rule's patterns.
type tuple struct {
	names   []string
	handles []FactHandle
	values  []any
}

func (t *tuple) Get(name string) any {
	for i, n := range t.names {
		if n == name {
			return t.values[i]
		}
	}
	return nil
}

func (t *tuple) Handle(name string) FactHandle {
	for i, n := range t.names {
		if n == name {
			return t.handles[i]
		}
	}
	return 0
}
