package rules

import "testing"

func TestExistsFiresOncePerTuple(t *testing.T) {
	s := NewSession()
	fired := 0
	s.MustAddRules(&Rule{
		Name: "counter-when-any-item",
		When: []Pattern{
			Match[*counter]("c", nil),
			Exists[*item](nil),
		},
		Then: func(ctx *Context) { fired++ },
	})
	s.Insert(&counter{})
	s.Insert(&item{name: "a"})
	s.Insert(&item{name: "b"})
	s.Insert(&item{name: "c"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	// Three items satisfy the existential, but the rule fires once per
	// counter tuple, not once per item.
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestExistsBlocksWhenAbsent(t *testing.T) {
	s := NewSession()
	fired := 0
	s.MustAddRules(&Rule{
		Name: "needs-done-item",
		When: []Pattern{
			Match[*counter]("c", nil),
			Exists(func(b Bindings, v *item) bool { return v.done }),
		},
		Then: func(ctx *Context) { fired++ },
	})
	s.Insert(&counter{})
	s.Insert(&item{name: "pending"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("fired without a matching fact")
	}
	it := &item{name: "finished", done: true}
	s.Insert(it)
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	// The counter fact was not updated, so the activation key is
	// unchanged... but a new fact arrival re-evaluates the join, and the
	// tuple (counter) now succeeds: it must fire exactly once.
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestExistsGuardSeesBindings(t *testing.T) {
	s := NewSession()
	var matched []string
	s.MustAddRules(&Rule{
		Name: "has-twin",
		When: []Pattern{
			Match("it", func(b Bindings, v *item) bool { return !v.done }),
			Exists(func(b Bindings, v *item) bool {
				return v.done && v.name == b.Get("it").(*item).name
			}),
		},
		Then: func(ctx *Context) { matched = append(matched, ctx.Get("it").(*item).name) },
	})
	s.Insert(&item{name: "a"})
	s.Insert(&item{name: "a", done: true})
	s.Insert(&item{name: "b"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if len(matched) != 1 || matched[0] != "a" {
		t.Fatalf("matched = %v", matched)
	}
}

func TestExistsValidation(t *testing.T) {
	s := NewSession()
	bad := Exists[*item](nil)
	bad.Name = "nope"
	if err := s.AddRule(&Rule{
		Name: "bad",
		When: []Pattern{Match[*counter]("c", nil), bad},
		Then: func(*Context) {},
	}); err == nil {
		t.Fatal("named existential accepted")
	}
}
