package rules

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestThreeWayJoin exercises a join across three fact types with guards
// referencing earlier bindings.
func TestThreeWayJoin(t *testing.T) {
	type order struct{ id, class int }
	type quota struct{ class, max int }
	type approval struct{ orderID int }
	s := NewSession()
	var approved []int
	s.MustAddRules(&Rule{
		Name: "approve-within-quota",
		When: []Pattern{
			Match[*order]("o", nil),
			Match("q", func(b Bindings, q *quota) bool {
				return q.class == b.Get("o").(*order).class
			}),
			Not(func(b Bindings, a *approval) bool {
				return a.orderID == b.Get("o").(*order).id
			}),
		},
		Then: func(ctx *Context) {
			o := ctx.Get("o").(*order)
			q := ctx.Get("q").(*quota)
			if o.id <= q.max {
				approved = append(approved, o.id)
				ctx.Insert(&approval{orderID: o.id})
			}
		},
	})
	s.Insert(&quota{class: 1, max: 10})
	s.Insert(&quota{class: 2, max: 0})
	s.Insert(&order{id: 5, class: 1})
	s.Insert(&order{id: 7, class: 2})
	s.Insert(&order{id: 3, class: 3}) // no quota: never matches
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if len(approved) != 1 || approved[0] != 5 {
		t.Fatalf("approved = %v", approved)
	}
}

func TestOldestFirstConflictResolution(t *testing.T) {
	s := NewSession()
	s.SetOldestFirst(true)
	var order []string
	s.MustAddRules(&Rule{
		Name: "watch",
		When: []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) { order = append(order, ctx.Get("it").(*item).name) },
	})
	s.Insert(&item{name: "first"})
	s.Insert(&item{name: "second"})
	s.Insert(&item{name: "third"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "third"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want FIFO %v", order, want)
		}
	}
}

func TestLoggerReceivesFirings(t *testing.T) {
	s := NewSession()
	var lines []string
	s.SetLogger(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	s.MustAddRules(&Rule{
		Name: "logged-rule",
		When: []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) { ctx.Logf("hello %d", 42) },
	})
	s.Insert(&item{name: "a"})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "fire") || !strings.Contains(joined, "logged-rule") {
		t.Fatalf("log = %q", joined)
	}
}

func TestFireAllBudgetExact(t *testing.T) {
	s := NewSession()
	s.MustAddRules(&Rule{
		Name: "one-per-fact",
		When: []Pattern{Match[*item]("it", nil)},
		Then: func(ctx *Context) {},
	})
	for i := 0; i < 5; i++ {
		s.Insert(&item{qty: i})
	}
	// Budget exactly equals the workload: no error.
	n, err := s.FireAll(5)
	if err != nil || n != 5 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// Budget one short: error.
	s.Reset()
	for i := 0; i < 5; i++ {
		s.Insert(&item{qty: i})
	}
	if _, err := s.FireAll(4); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestRHSRetractOfJoinPartner(t *testing.T) {
	// A rule that consumes both facts of its tuple: each flag pairs with
	// exactly one item, both retracted on firing.
	s := NewSession()
	pairs := 0
	s.MustAddRules(&Rule{
		Name: "consume-pair",
		When: []Pattern{
			Match[*flag]("f", nil),
			Match[*item]("it", nil),
		},
		Then: func(ctx *Context) {
			pairs++
			ctx.Retract(ctx.Get("f"))
			ctx.Retract(ctx.Get("it"))
		},
	})
	for i := 0; i < 3; i++ {
		s.Insert(&flag{})
		s.Insert(&item{qty: i})
	}
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	if pairs != 3 {
		t.Fatalf("pairs = %d, want 3", pairs)
	}
	if s.FactCount() != 0 {
		t.Fatalf("facts left = %d", s.FactCount())
	}
}

func TestInsertDuringIterationSafe(t *testing.T) {
	// RHS inserts new facts of the same type the rule matches, bounded by
	// a counter to avoid infinite growth; engine must terminate cleanly.
	s := NewSession()
	total := 0
	s.MustAddRules(&Rule{
		Name: "spawn-two-generations",
		When: []Pattern{Match("it", func(b Bindings, v *item) bool { return v.qty < 2 })},
		Then: func(ctx *Context) {
			total++
			v := ctx.Get("it").(*item)
			ctx.Insert(&item{qty: v.qty + 1})
		},
	})
	s.Insert(&item{qty: 0})
	if _, err := s.FireAll(0); err != nil {
		t.Fatal(err)
	}
	// Generation 0 spawns 1, 1 spawns 2 (matched, spawns 3 via guard<2
	// false for 2)... firings: qty0 and qty1 match => 2 firings.
	if total != 2 {
		t.Fatalf("firings = %d, want 2", total)
	}
	if s.FactCount() != 3 {
		t.Fatalf("facts = %d, want 3", s.FactCount())
	}
}

func TestFactsOfReturnsInsertionOrder(t *testing.T) {
	s := NewSession()
	for i := 0; i < 5; i++ {
		s.Insert(&item{qty: i})
	}
	got := FactsOf[*item](s)
	for i, it := range got {
		if it.qty != i {
			t.Fatalf("order broken: %v", got)
		}
	}
	// Retraction preserves relative order of the rest.
	s.Retract(got[2])
	rest := FactsOf[*item](s)
	want := []int{0, 1, 3, 4}
	for i, it := range rest {
		if it.qty != want[i] {
			t.Fatalf("after retract: %v", rest)
		}
	}
}

func TestMatchPanicsOnInterfaceType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for interface type parameter")
		}
	}()
	_ = Match[any]("x", nil)
}
