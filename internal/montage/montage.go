// Package montage generates the Montage astronomy workflow used as the
// paper's benchmark: an image-mosaic pipeline whose 1-degree-square
// configuration yields 89 data staging jobs, augmented (as in Section V)
// with one additional large data file per staging job to emulate emerging
// big-data applications.
//
// Structure (per the Montage papers and the Pegasus workflow gallery):
//
//	mHdr, mOverlaps                  header/overlap preparation
//	mProjectPP ×(p·p)                re-project each input image
//	mDiffFit   ×(2·p·(p-1))          fit overlapping image pairs
//	mConcatFit                       concatenate the fits
//	mBgModel                         model background corrections
//	mBackground ×(p·p)               apply corrections
//	mImgtbl                          build the image table
//	mAdd                             co-add into the mosaic
//	mShrink, mJPEG                   shrink and render the final image
//
// With the default GridSize of 9 there are 81 mProjectPP jobs, each with a
// staged input image, plus 8 auxiliary jobs with one staged configuration
// input each — 89 stage-in jobs, matching the paper's workflow.
package montage

import (
	"fmt"

	"policyflow/internal/workflow"
)

// Config parameterizes the generated workflow.
type Config struct {
	// Name is the workflow name; defaults to "montage-1deg".
	Name string
	// GridSize is the image grid edge p (p·p input images). Default 9.
	GridSize int
	// ImageMB is the size of each input image in MB. The paper reports
	// an average stage-in size of 2 MB for mProjectPP inputs. Default 2.
	ImageMB float64
	// ImageSourceBase is the URL prefix the input images are staged from
	// (the paper serves them from an Apache server on the cluster LAN).
	ImageSourceBase string
	// AuxSourceBase is the URL prefix for the auxiliary configuration
	// inputs; defaults to ImageSourceBase.
	AuxSourceBase string
	// ExtraMB, when positive, augments the workflow: every staging job
	// stages one additional data file of this size (Fig. 3).
	ExtraMB float64
	// ExtraSourceBase is the URL prefix the additional files are staged
	// from (the paper uses a GridFTP server on a FutureGrid VM at TACC,
	// reached over the WAN).
	ExtraSourceBase string
	// Runtime scale: multiplies all compute runtimes; default 1.
	RuntimeScale float64
}

// ConfigForDegrees returns a configuration approximating a mosaic of the
// given angular size: the image count grows with the square of the survey
// degree (the paper's experiments use 1 degree; 0.5 and 2 degrees are the
// other sizes commonly benchmarked with Montage).
func ConfigForDegrees(degrees, extraMB float64) Config {
	cfg := DefaultConfig(extraMB)
	switch {
	case degrees <= 0.5:
		cfg.GridSize = 5
		cfg.Name = "montage-0.5deg"
	case degrees <= 1:
		cfg.GridSize = 9
		cfg.Name = "montage-1deg"
	case degrees <= 2:
		cfg.GridSize = 13
		cfg.Name = "montage-2deg"
	default:
		cfg.GridSize = 18
		cfg.Name = fmt.Sprintf("montage-%.0fdeg", degrees)
	}
	return cfg
}

// DefaultConfig returns the paper's augmented-Montage configuration with
// the given additional-file size in MB (0 = unaugmented).
func DefaultConfig(extraMB float64) Config {
	return Config{
		Name:            "montage-1deg",
		GridSize:        9,
		ImageMB:         2,
		ImageSourceBase: "http://apache.obelix.isi.example.org/2mass/images",
		ExtraMB:         extraMB,
		ExtraSourceBase: "gsiftp://alamo.futuregrid.tacc.example.org/bigdata",
		RuntimeScale:    1,
	}
}

func (c *Config) normalize() error {
	if c.Name == "" {
		c.Name = "montage-1deg"
	}
	if c.GridSize <= 0 {
		c.GridSize = 9
	}
	if c.GridSize < 2 {
		return fmt.Errorf("montage: GridSize must be >= 2, got %d", c.GridSize)
	}
	if c.ImageMB <= 0 {
		c.ImageMB = 2
	}
	if c.ImageSourceBase == "" {
		return fmt.Errorf("montage: ImageSourceBase is required")
	}
	if c.AuxSourceBase == "" {
		c.AuxSourceBase = c.ImageSourceBase
	}
	if c.ExtraMB > 0 && c.ExtraSourceBase == "" {
		return fmt.Errorf("montage: ExtraMB set but no ExtraSourceBase")
	}
	if c.RuntimeScale <= 0 {
		c.RuntimeScale = 1
	}
	return nil
}

func mb(x float64) int64 { return int64(x * (1 << 20)) }

// Generate builds the Montage workflow.
func Generate(cfg Config) (*workflow.Workflow, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	p := cfg.GridSize
	w := workflow.New(cfg.Name)
	rt := func(seconds float64) float64 { return seconds * cfg.RuntimeScale }

	// extraFor attaches the augmentation file for the staging job feeding
	// compute job id, returning the input file names to add.
	extraSeq := 0
	extraFor := func(jobID string) []string {
		if cfg.ExtraMB <= 0 {
			return nil
		}
		extraSeq++
		name := fmt.Sprintf("extra_%03d_%s.dat", extraSeq, jobID)
		w.MustAddFile(&workflow.File{
			Name:      name,
			SizeBytes: mb(cfg.ExtraMB),
			SourceURL: cfg.ExtraSourceBase + "/" + name,
		})
		return []string{name}
	}
	aux := func(name string, sizeMB float64) string {
		w.MustAddFile(&workflow.File{
			Name:      name,
			SizeBytes: mb(sizeMB),
			SourceURL: cfg.AuxSourceBase + "/" + name,
		})
		return name
	}

	// Preparation: mHdr builds the region header from survey metadata;
	// mOverlaps computes the overlap table from the archive image list.
	w.MustAddFile(&workflow.File{Name: "region.hdr", SizeBytes: mb(0.01)})
	w.MustAddFile(&workflow.File{Name: "overlaps.tbl", SizeBytes: mb(0.05)})
	w.MustAddJob(&workflow.Job{
		ID: "mHdr", Transformation: "mHdr", RuntimeSeconds: rt(5),
		Inputs:  append([]string{aux("survey_meta.tbl", 0.1)}, extraFor("mHdr")...),
		Outputs: []string{"region.hdr"},
	})
	w.MustAddJob(&workflow.Job{
		ID: "mOverlaps", Transformation: "mOverlaps", RuntimeSeconds: rt(10),
		Inputs:  append([]string{aux("archive_list.tbl", 0.2)}, extraFor("mOverlaps")...),
		Outputs: []string{"overlaps.tbl"},
	})

	// mProjectPP per input image.
	n := p * p
	for i := 1; i <= n; i++ {
		img := fmt.Sprintf("image_%03d.fits", i)
		proj := fmt.Sprintf("proj_%03d.fits", i)
		w.MustAddFile(&workflow.File{
			Name: img, SizeBytes: mb(cfg.ImageMB),
			SourceURL: cfg.ImageSourceBase + "/" + img,
		})
		w.MustAddFile(&workflow.File{Name: proj, SizeBytes: mb(cfg.ImageMB * 1.6)})
		id := fmt.Sprintf("mProjectPP_%03d", i)
		w.MustAddJob(&workflow.Job{
			ID: id, Transformation: "mProjectPP", RuntimeSeconds: rt(20),
			Inputs:  append([]string{img, "region.hdr"}, extraFor(id)...),
			Outputs: []string{proj},
		})
	}

	// mDiffFit for each horizontally/vertically adjacent image pair.
	idx := func(r, c int) int { return r*p + c + 1 }
	var diffs []string
	addDiff := func(a, b int) {
		k := len(diffs) + 1
		diff := fmt.Sprintf("diff_%03d.tbl", k)
		w.MustAddFile(&workflow.File{Name: diff, SizeBytes: mb(0.1)})
		diffs = append(diffs, diff)
		w.MustAddJob(&workflow.Job{
			ID:             fmt.Sprintf("mDiffFit_%03d", k),
			Transformation: "mDiffFit", RuntimeSeconds: rt(8),
			Inputs: []string{
				fmt.Sprintf("proj_%03d.fits", a),
				fmt.Sprintf("proj_%03d.fits", b),
				"overlaps.tbl",
			},
			Outputs: []string{diff},
		})
	}
	for r := 0; r < p; r++ {
		for c := 0; c < p; c++ {
			if c+1 < p {
				addDiff(idx(r, c), idx(r, c+1))
			}
			if r+1 < p {
				addDiff(idx(r, c), idx(r+1, c))
			}
		}
	}

	// mConcatFit and mBgModel.
	w.MustAddFile(&workflow.File{Name: "fits.tbl", SizeBytes: mb(0.5)})
	w.MustAddJob(&workflow.Job{
		ID: "mConcatFit", Transformation: "mConcatFit", RuntimeSeconds: rt(15),
		Inputs:  append(append([]string{aux("fit_params.cfg", 0.05)}, diffs...), extraFor("mConcatFit")...),
		Outputs: []string{"fits.tbl"},
	})
	w.MustAddFile(&workflow.File{Name: "corrections.tbl", SizeBytes: mb(0.2)})
	w.MustAddJob(&workflow.Job{
		ID: "mBgModel", Transformation: "mBgModel", RuntimeSeconds: rt(100),
		Inputs:  append([]string{"fits.tbl", aux("bg_config.cfg", 0.05)}, extraFor("mBgModel")...),
		Outputs: []string{"corrections.tbl"},
	})

	// mBackground per projected image.
	var corrs []string
	for i := 1; i <= n; i++ {
		corr := fmt.Sprintf("corr_%03d.fits", i)
		w.MustAddFile(&workflow.File{Name: corr, SizeBytes: mb(cfg.ImageMB * 1.6)})
		corrs = append(corrs, corr)
		w.MustAddJob(&workflow.Job{
			ID:             fmt.Sprintf("mBackground_%03d", i),
			Transformation: "mBackground", RuntimeSeconds: rt(8),
			Inputs:  []string{fmt.Sprintf("proj_%03d.fits", i), "corrections.tbl"},
			Outputs: []string{corr},
		})
	}

	// mImgtbl, mAdd, mShrink, mJPEG.
	w.MustAddFile(&workflow.File{Name: "images.tbl", SizeBytes: mb(0.1)})
	w.MustAddJob(&workflow.Job{
		ID: "mImgtbl", Transformation: "mImgtbl", RuntimeSeconds: rt(20),
		Inputs:  append(append([]string{aux("region_tbl.hdr", 0.02)}, corrs...), extraFor("mImgtbl")...),
		Outputs: []string{"images.tbl"},
	})
	w.MustAddFile(&workflow.File{Name: "mosaic.fits", SizeBytes: mb(64), Output: true})
	w.MustAddJob(&workflow.Job{
		ID: "mAdd", Transformation: "mAdd", RuntimeSeconds: rt(120),
		Inputs:  append(append([]string{"images.tbl", aux("add_header.hdr", 0.02)}, corrs...), extraFor("mAdd")...),
		Outputs: []string{"mosaic.fits"},
	})
	w.MustAddFile(&workflow.File{Name: "mosaic_small.fits", SizeBytes: mb(8), Output: true})
	w.MustAddJob(&workflow.Job{
		ID: "mShrink", Transformation: "mShrink", RuntimeSeconds: rt(30),
		Inputs:  append([]string{"mosaic.fits", aux("shrink_params.cfg", 0.01)}, extraFor("mShrink")...),
		Outputs: []string{"mosaic_small.fits"},
	})
	w.MustAddFile(&workflow.File{Name: "mosaic.jpg", SizeBytes: mb(2), Output: true})
	w.MustAddJob(&workflow.Job{
		ID: "mJPEG", Transformation: "mJPEG", RuntimeSeconds: rt(10),
		Inputs:  append([]string{"mosaic_small.fits", aux("palette.cfg", 0.01)}, extraFor("mJPEG")...),
		Outputs: []string{"mosaic.jpg"},
	})

	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// StagingJobCount returns the number of stage-in jobs the workflow will
// produce under no-clustering planning: one per compute job with at least
// one external input.
func StagingJobCount(w *workflow.Workflow) int {
	n := 0
	for _, j := range w.Jobs() {
		for _, in := range j.Inputs {
			if f, ok := w.File(in); ok && f.IsExternalInput() {
				n++
				break
			}
		}
	}
	return n
}
