package montage

import (
	"bytes"
	"strings"
	"testing"

	"policyflow/internal/dag"
	"policyflow/internal/workflow"
)

// TestPipelineDependencies verifies the Montage dataflow shape the mosaic
// pipeline requires: projections feed diffs, diffs feed the fit, the
// background model feeds every mBackground, and mAdd consumes every
// corrected image.
func TestPipelineDependencies(t *testing.T) {
	w, err := Generate(DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.JobGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Every mDiffFit depends on exactly two mProjectPP jobs (plus
	// mOverlaps via overlaps.tbl).
	for _, j := range w.Jobs() {
		if j.Transformation != "mDiffFit" {
			continue
		}
		projParents := 0
		for _, p := range g.Parents(j.ID) {
			if strings.HasPrefix(p, "mProjectPP") {
				projParents++
			}
		}
		if projParents != 2 {
			t.Fatalf("%s has %d projection parents", j.ID, projParents)
		}
	}
	// mBgModel feeds all 81 mBackground jobs.
	bgChildren := 0
	for _, c := range g.Children("mBgModel") {
		if strings.HasPrefix(c, "mBackground") {
			bgChildren++
		}
	}
	if bgChildren != 81 {
		t.Fatalf("mBgModel feeds %d mBackground jobs", bgChildren)
	}
	// mAdd consumes every corrected image.
	addParents := 0
	for _, p := range g.Parents("mAdd") {
		if strings.HasPrefix(p, "mBackground") {
			addParents++
		}
	}
	if addParents != 81 {
		t.Fatalf("mAdd has %d mBackground parents", addParents)
	}
	// The final chain: mAdd -> mShrink -> mJPEG.
	if !g.HasEdge("mAdd", "mShrink") || !g.HasEdge("mShrink", "mJPEG") {
		t.Fatal("final chain broken")
	}
	// Depth sanity: the pipeline has a meaningful critical path.
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if levels["mJPEG"] < 6 {
		t.Fatalf("mJPEG at level %d, want >= 6", levels["mJPEG"])
	}
}

func TestMontageDAXRoundTrip(t *testing.T) {
	w, err := Generate(DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteDAX(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := workflow.ReadDAX(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if StagingJobCount(got) != 89 {
		t.Fatalf("round-tripped staging jobs = %d", StagingJobCount(got))
	}
	g1, _ := w.JobGraph()
	g2, _ := got.JobGraph()
	if g1.EdgeCount() != g2.EdgeCount() {
		t.Fatalf("edges %d vs %d", g1.EdgeCount(), g2.EdgeCount())
	}
}

// TestPrioritiesOnMontage sanity-checks structure priorities on the real
// workflow: upstream jobs outrank the final mosaic steps.
func TestPrioritiesOnMontage(t *testing.T) {
	w, err := Generate(DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.JobGraph()
	if err != nil {
		t.Fatal(err)
	}
	p, err := dag.AssignPriorities(g, dag.Dependent)
	if err != nil {
		t.Fatal(err)
	}
	// mHdr has almost the whole workflow as descendants; mJPEG has none.
	if p["mHdr"] <= p["mJPEG"] {
		t.Fatalf("mHdr %d <= mJPEG %d", p["mHdr"], p["mJPEG"])
	}
	if p["mBgModel"] <= p["mShrink"] {
		t.Fatalf("mBgModel %d <= mShrink %d", p["mBgModel"], p["mShrink"])
	}
}

func TestImageSizesAndSources(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.ImageMB = 2
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, f := range w.Files() {
		if strings.HasPrefix(f.Name, "image_") {
			n++
			if f.SizeBytes != 2<<20 {
				t.Fatalf("%s size = %d", f.Name, f.SizeBytes)
			}
			// The paper serves images from the cluster-local Apache.
			if !strings.Contains(f.SourceURL, "apache.obelix") {
				t.Fatalf("%s source = %s", f.Name, f.SourceURL)
			}
		}
	}
	if n != 81 {
		t.Fatalf("images = %d", n)
	}
}
