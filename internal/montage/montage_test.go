package montage

import (
	"strings"
	"testing"

	"policyflow/internal/workflow"
)

func TestDefaultHas89StagingJobs(t *testing.T) {
	w, err := Generate(DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "There are 89 data staging jobs in this Montage
	// workflow."
	if got := StagingJobCount(w); got != 89 {
		t.Fatalf("staging jobs = %d, want 89", got)
	}
}

func TestStructureCounts(t *testing.T) {
	w, err := Generate(DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, j := range w.Jobs() {
		counts[j.Transformation]++
	}
	want := map[string]int{
		"mHdr": 1, "mOverlaps": 1,
		"mProjectPP": 81, "mDiffFit": 144,
		"mConcatFit": 1, "mBgModel": 1,
		"mBackground": 81, "mImgtbl": 1,
		"mAdd": 1, "mShrink": 1, "mJPEG": 1,
	}
	for tr, n := range want {
		if counts[tr] != n {
			t.Errorf("%s = %d, want %d", tr, counts[tr], n)
		}
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAugmentationAddsOneExtraPerStagingJob(t *testing.T) {
	plain, err := Generate(DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	aug, err := Generate(DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	extra := aug.Stats().ExternalInputs - plain.Stats().ExternalInputs
	if extra != 89 {
		t.Fatalf("extra external inputs = %d, want 89 (one per staging job)", extra)
	}
	// Every extra file is 100 MB and staged from the WAN source.
	n := 0
	for _, f := range aug.Files() {
		if strings.HasPrefix(f.Name, "extra_") {
			n++
			if f.SizeBytes != 100<<20 {
				t.Errorf("%s size = %d", f.Name, f.SizeBytes)
			}
			if !strings.HasPrefix(f.SourceURL, "gsiftp://alamo.futuregrid") {
				t.Errorf("%s source = %s", f.Name, f.SourceURL)
			}
		}
	}
	if n != 89 {
		t.Fatalf("extra files = %d", n)
	}
	// Staging job count is unchanged: the extra file rides along on the
	// existing staging job (Fig. 3), it does not create a new one.
	if got := StagingJobCount(aug); got != 89 {
		t.Fatalf("augmented staging jobs = %d, want 89", got)
	}
}

func TestPlansWithPaperConfig(t *testing.T) {
	w, err := Generate(DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Plan(workflow.PlanConfig{
		WorkflowID:      "run1",
		ComputeSiteBase: "file://obelix.isi.example.org/scratch",
		OutputSiteBase:  "file://obelix.isi.example.org/results",
		Cleanup:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Count(workflow.TaskStageIn); got != 89 {
		t.Fatalf("planned stage-in tasks = %d, want 89", got)
	}
	if got := p.Count(workflow.TaskCompute); got != 314 {
		t.Fatalf("compute tasks = %d, want 314", got)
	}
	if p.Count(workflow.TaskCleanup) == 0 {
		t.Fatal("no cleanup tasks")
	}
	if !p.Graph.IsAcyclic() {
		t.Fatal("cyclic plan")
	}
	// Augmented stage-in tasks carry both the image (LAN) and the extra
	// file (WAN).
	si, ok := p.Task("stage_in_mProjectPP_001")
	if !ok {
		t.Fatal("missing stage_in_mProjectPP_001")
	}
	if len(si.Transfers) != 2 {
		t.Fatalf("transfers = %+v", si.Transfers)
	}
	hosts := map[string]bool{}
	for _, op := range si.Transfers {
		hosts[op.SourceURL[:8]] = true
	}
	if len(hosts) != 2 {
		t.Fatalf("expected two distinct sources, got %+v", si.Transfers)
	}
}

func TestGridSizeScaling(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.GridSize = 4
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, j := range w.Jobs() {
		counts[j.Transformation]++
	}
	if counts["mProjectPP"] != 16 {
		t.Fatalf("mProjectPP = %d", counts["mProjectPP"])
	}
	if counts["mDiffFit"] != 2*4*3 {
		t.Fatalf("mDiffFit = %d", counts["mDiffFit"])
	}
	if got := StagingJobCount(w); got != 16+8 {
		t.Fatalf("staging jobs = %d, want 24", got)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.ImageSourceBase = ""
	if _, err := Generate(cfg); err == nil {
		t.Error("missing ImageSourceBase accepted")
	}
	cfg = DefaultConfig(10)
	cfg.ExtraSourceBase = ""
	if _, err := Generate(cfg); err == nil {
		t.Error("ExtraMB without source accepted")
	}
	cfg = DefaultConfig(0)
	cfg.GridSize = 1
	if _, err := Generate(cfg); err == nil {
		t.Error("GridSize 1 accepted")
	}
}

func TestRuntimeScale(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.RuntimeScale = 2
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := w.Job("mBgModel")
	if !ok {
		t.Fatal("no mBgModel")
	}
	if j.RuntimeSeconds != 200 {
		t.Fatalf("scaled runtime = %v", j.RuntimeSeconds)
	}
}

func TestConfigForDegrees(t *testing.T) {
	half := ConfigForDegrees(0.5, 0)
	if half.GridSize != 5 || half.Name != "montage-0.5deg" {
		t.Fatalf("half = %+v", half)
	}
	one := ConfigForDegrees(1, 100)
	if one.GridSize != 9 || one.ExtraMB != 100 {
		t.Fatalf("one = %+v", one)
	}
	w, err := Generate(one)
	if err != nil {
		t.Fatal(err)
	}
	if StagingJobCount(w) != 89 {
		t.Fatalf("1-degree staging jobs = %d", StagingJobCount(w))
	}
	two := ConfigForDegrees(2, 0)
	if two.GridSize != 13 {
		t.Fatalf("two = %+v", two)
	}
	big := ConfigForDegrees(4, 0)
	if big.GridSize != 18 {
		t.Fatalf("big = %+v", big)
	}
}
