package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// wide builds: root -> {m1..m3}; m1 -> {l1, l2}; m2 -> l3; m3 has no
// children. Fan-outs: root=3, m1=2, m2=1, m3=0, leaves=0.
// Descendant counts: root=6, m1=2, m2=1, others=0.
func wide(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, id := range []string{"root", "m1", "m2", "m3", "l1", "l2", "l3"} {
		g.MustAddNode(id, nil)
	}
	g.MustAddEdge("root", "m1")
	g.MustAddEdge("root", "m2")
	g.MustAddEdge("root", "m3")
	g.MustAddEdge("m1", "l1")
	g.MustAddEdge("m1", "l2")
	g.MustAddEdge("m2", "l3")
	return g
}

func TestBFSPriorities(t *testing.T) {
	g := wide(t)
	p, err := AssignPriorities(g, BFS)
	if err != nil {
		t.Fatalf("AssignPriorities: %v", err)
	}
	// BFS visit order: root, m1, m2, m3, l1, l2, l3.
	want := []string{"root", "m1", "m2", "m3", "l1", "l2", "l3"}
	if got := p.Ranking(); !equalSlices(got, want) {
		t.Fatalf("BFS ranking = %v, want %v", got, want)
	}
	if p["root"] != g.Len() {
		t.Fatalf("top priority = %d, want %d", p["root"], g.Len())
	}
}

func TestDFSPriorities(t *testing.T) {
	g := wide(t)
	p, err := AssignPriorities(g, DFS)
	if err != nil {
		t.Fatalf("AssignPriorities: %v", err)
	}
	// DFS pre-order: root, m1, l1, l2, m2, l3, m3.
	want := []string{"root", "m1", "l1", "l2", "m2", "l3", "m3"}
	if got := p.Ranking(); !equalSlices(got, want) {
		t.Fatalf("DFS ranking = %v, want %v", got, want)
	}
}

func TestDirectDependentPriorities(t *testing.T) {
	g := wide(t)
	p, err := AssignPriorities(g, DirectDependent)
	if err != nil {
		t.Fatalf("AssignPriorities: %v", err)
	}
	// Fan-out: root(3) > m1(2) > m2(1) > zero-fanout nodes in topo order.
	r := p.Ranking()
	if r[0] != "root" || r[1] != "m1" || r[2] != "m2" {
		t.Fatalf("direct-dependent ranking head = %v", r[:3])
	}
}

func TestDependentPriorities(t *testing.T) {
	g := wide(t)
	p, err := AssignPriorities(g, Dependent)
	if err != nil {
		t.Fatalf("AssignPriorities: %v", err)
	}
	r := p.Ranking()
	// Descendants: root(6) > m1(2) > m2(1) > rest(0).
	if r[0] != "root" || r[1] != "m1" || r[2] != "m2" {
		t.Fatalf("dependent ranking head = %v", r[:3])
	}
}

func TestDependentVsDirectDependentDiffer(t *testing.T) {
	// hub has 3 direct children (leaves); chain head has 1 child but 4
	// descendants. Dependent must rank chain head above hub; direct-
	// dependent must do the opposite.
	g := New()
	for _, id := range []string{"hub", "h1", "h2", "h3", "c0", "c1", "c2", "c3", "c4"} {
		g.MustAddNode(id, nil)
	}
	g.MustAddEdge("hub", "h1")
	g.MustAddEdge("hub", "h2")
	g.MustAddEdge("hub", "h3")
	g.MustAddEdge("c0", "c1")
	g.MustAddEdge("c1", "c2")
	g.MustAddEdge("c2", "c3")
	g.MustAddEdge("c3", "c4")

	dd, err := AssignPriorities(g, DirectDependent)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := AssignPriorities(g, Dependent)
	if err != nil {
		t.Fatal(err)
	}
	if dd["hub"] <= dd["c0"] {
		t.Fatalf("direct-dependent: hub (%d) should outrank c0 (%d)", dd["hub"], dd["c0"])
	}
	if dep["c0"] <= dep["hub"] {
		t.Fatalf("dependent: c0 (%d) should outrank hub (%d)", dep["c0"], dep["hub"])
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	g := wide(t)
	if _, err := AssignPriorities(g, PriorityAlgorithm("nope")); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
}

func TestPrioritiesOnCycle(t *testing.T) {
	g := New()
	g.MustAddNode("a", nil)
	g.MustAddNode("b", nil)
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "a")
	for _, algo := range Algorithms() {
		if _, err := AssignPriorities(g, algo); err == nil {
			t.Errorf("%s: want error on cyclic graph", algo)
		}
	}
}

// TestPriorityProperties: for every algorithm on random DAGs, priorities
// are a bijection onto 1..n, and roots always outrank their descendants
// under BFS and DFS.
func TestPriorityProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(30))
		for _, algo := range Algorithms() {
			p, err := AssignPriorities(g, algo)
			if err != nil {
				return false
			}
			if len(p) != g.Len() {
				return false
			}
			seen := make(map[int]bool)
			for _, v := range p {
				if v < 1 || v > g.Len() || seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		// Traversal-based algorithms: a node is always ranked above every
		// descendant (parents are visited before children in both BFS and
		// gated DFS on DAGs whose roots dominate — check parent > child).
		for _, algo := range []PriorityAlgorithm{BFS, DFS} {
			p, _ := AssignPriorities(g, algo)
			for _, id := range g.Nodes() {
				for d := range g.Descendants(id) {
					if algo == BFS && p[id] <= p[d] {
						// BFS gates on all parents visited, so every
						// ancestor outranks its descendants.
						return false
					}
					_ = d
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
