package dag

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the classic diamond DAG: a -> {b,c} -> d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		g.MustAddNode(id, nil)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("a", "c")
	g.MustAddEdge("b", "d")
	g.MustAddEdge("c", "d")
	return g
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	if err := g.AddNode("x", 1); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := g.AddNode("x", 2); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("want ErrDuplicateNode, got %v", err)
	}
	// Original payload is preserved.
	if p, _ := g.Payload("x"); p != 1 {
		t.Fatalf("payload clobbered: %v", p)
	}
}

func TestAddEdgeUnknownNode(t *testing.T) {
	g := New()
	g.MustAddNode("a", nil)
	if err := g.AddEdge("a", "missing"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
	if err := g.AddEdge("missing", "a"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New()
	g.MustAddNode("a", nil)
	g.MustAddNode("b", nil)
	g.MustAddEdge("a", "b")
	g.MustAddEdge("a", "b")
	if got := g.EdgeCount(); got != 1 {
		t.Fatalf("EdgeCount = %d, want 1", got)
	}
	if got := len(g.Children("a")); got != 1 {
		t.Fatalf("Children(a) = %d entries, want 1", got)
	}
}

func TestSetPayload(t *testing.T) {
	g := New()
	g.MustAddNode("a", 1)
	if err := g.SetPayload("a", 42); err != nil {
		t.Fatalf("SetPayload: %v", err)
	}
	if p, _ := g.Payload("a"); p != 42 {
		t.Fatalf("payload = %v, want 42", p)
	}
	if err := g.SetPayload("zzz", 0); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
}

func TestRootsLeaves(t *testing.T) {
	g := diamond(t)
	if roots := g.Roots(); len(roots) != 1 || roots[0] != "a" {
		t.Fatalf("Roots = %v", roots)
	}
	if leaves := g.Leaves(); len(leaves) != 1 || leaves[0] != "d" {
		t.Fatalf("Leaves = %v", leaves)
	}
}

func TestTopoSortRespectsEdges(t *testing.T) {
	g := diamond(t)
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := map[string]int{}
	for i, id := range topo {
		pos[id] = i
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("edge %v violated in topo order %v", e, topo)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	g.MustAddNode("a", nil)
	g.MustAddNode("b", nil)
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "a")
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic = true for cyclic graph")
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	want := map[string]int{"a": 0, "b": 1, "c": 1, "d": 2}
	for id, lvl := range want {
		if levels[id] != lvl {
			t.Errorf("level[%s] = %d, want %d", id, levels[id], lvl)
		}
	}
}

func TestLevelsLongestPath(t *testing.T) {
	// a -> b -> d and a -> d directly: d's level must be 2 (longest path).
	g := New()
	for _, id := range []string{"a", "b", "d"} {
		g.MustAddNode(id, nil)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "d")
	g.MustAddEdge("a", "d")
	levels, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	if levels["d"] != 2 {
		t.Fatalf("level[d] = %d, want 2", levels["d"])
	}
}

func TestDescendantsAncestors(t *testing.T) {
	g := diamond(t)
	desc := g.Descendants("a")
	if len(desc) != 3 || !desc["b"] || !desc["c"] || !desc["d"] {
		t.Fatalf("Descendants(a) = %v", desc)
	}
	if d := g.Descendants("d"); len(d) != 0 {
		t.Fatalf("Descendants(d) = %v, want empty", d)
	}
	anc := g.Ancestors("d")
	if len(anc) != 3 || !anc["a"] || !anc["b"] || !anc["c"] {
		t.Fatalf("Ancestors(d) = %v", anc)
	}
	if a := g.Ancestors("a"); len(a) != 0 {
		t.Fatalf("Ancestors(a) = %v, want empty", a)
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.MustAddNode("e", nil)
	c.MustAddEdge("d", "e")
	if g.HasNode("e") {
		t.Fatal("clone mutation leaked into original")
	}
	if !c.HasEdge("a", "b") {
		t.Fatal("clone lost edge a->b")
	}
	if c.Len() != g.Len()+1 {
		t.Fatalf("clone Len = %d", c.Len())
	}
}

// randomDAG builds a random DAG with n nodes where edges only go from lower
// to higher index, guaranteeing acyclicity.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		g.MustAddNode(ids[i], nil)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				g.MustAddEdge(ids[i], ids[j])
			}
		}
	}
	return g
}

// TestTopoSortProperty: for random DAGs, TopoSort succeeds and respects
// every edge; Levels is consistent with parent levels.
func TestTopoSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40))
		topo, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, id := range topo {
			pos[id] = i
		}
		for _, id := range g.Nodes() {
			for _, c := range g.Children(id) {
				if pos[id] >= pos[c] {
					return false
				}
			}
		}
		levels, err := g.Levels()
		if err != nil {
			return false
		}
		for _, id := range g.Nodes() {
			want := 0
			for _, p := range g.Parents(id) {
				if levels[p]+1 > want {
					want = levels[p] + 1
				}
			}
			if levels[id] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDescendantsProperty: |Descendants| is consistent with reachability via
// Ancestors (x ∈ Desc(y) ⇔ y ∈ Anc(x)).
func TestDescendantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(25))
		for _, y := range g.Nodes() {
			for x := range g.Descendants(y) {
				if !g.Ancestors(x)[y] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
