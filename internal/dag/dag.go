// Package dag implements the directed-acyclic-graph model that underlies
// workflow planning and the structure-based data-staging priority policies
// of Section III(c) of the paper: breadth-first, depth-first,
// direct-dependent-based (fan-out) and dependent-based (total descendant
// count) priority assignment.
//
// The graph is generic over node identity: nodes are identified by string
// IDs, and arbitrary payloads may be attached by callers. Node and edge
// insertion preserve deterministic iteration order (insertion order), which
// keeps planners and priority assignments reproducible.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycle is returned by operations that require acyclicity when the graph
// contains a cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// ErrDuplicateNode is returned when adding a node whose ID already exists.
var ErrDuplicateNode = errors.New("dag: duplicate node")

// ErrUnknownNode is returned when an operation references a missing node.
var ErrUnknownNode = errors.New("dag: unknown node")

// Graph is a directed graph with string-identified nodes. The zero value is
// not usable; call New.
type Graph struct {
	order    []string            // insertion order of node IDs
	payload  map[string]any      // node ID -> payload
	children map[string][]string // edges, in insertion order
	parents  map[string][]string
	edgeSet  map[[2]string]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		payload:  make(map[string]any),
		children: make(map[string][]string),
		parents:  make(map[string][]string),
		edgeSet:  make(map[[2]string]bool),
	}
}

// AddNode inserts a node with the given ID and payload. It returns
// ErrDuplicateNode if the ID is already present.
func (g *Graph) AddNode(id string, payload any) error {
	if _, ok := g.payload[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	g.order = append(g.order, id)
	g.payload[id] = payload
	return nil
}

// MustAddNode is AddNode but panics on error; intended for construction code
// whose IDs are known unique.
func (g *Graph) MustAddNode(id string, payload any) {
	if err := g.AddNode(id, payload); err != nil {
		panic(err)
	}
}

// HasNode reports whether id is a node of the graph.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.payload[id]
	return ok
}

// Payload returns the payload stored for id and whether the node exists.
func (g *Graph) Payload(id string) (any, bool) {
	p, ok := g.payload[id]
	return p, ok
}

// SetPayload replaces the payload of an existing node.
func (g *Graph) SetPayload(id string, payload any) error {
	if _, ok := g.payload[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	g.payload[id] = payload
	return nil
}

// AddEdge inserts a directed edge parent->child. Adding an existing edge is
// a no-op. Both endpoints must already exist.
func (g *Graph) AddEdge(parent, child string) error {
	if !g.HasNode(parent) {
		return fmt.Errorf("%w: %q", ErrUnknownNode, parent)
	}
	if !g.HasNode(child) {
		return fmt.Errorf("%w: %q", ErrUnknownNode, child)
	}
	key := [2]string{parent, child}
	if g.edgeSet[key] {
		return nil
	}
	g.edgeSet[key] = true
	g.children[parent] = append(g.children[parent], child)
	g.parents[child] = append(g.parents[child], parent)
	return nil
}

// MustAddEdge is AddEdge but panics on error.
func (g *Graph) MustAddEdge(parent, child string) {
	if err := g.AddEdge(parent, child); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the directed edge parent->child exists.
func (g *Graph) HasEdge(parent, child string) bool {
	return g.edgeSet[[2]string{parent, child}]
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.order) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return len(g.edgeSet) }

// Nodes returns all node IDs in insertion order.
func (g *Graph) Nodes() []string {
	return append([]string(nil), g.order...)
}

// Children returns the direct successors of id in edge insertion order.
func (g *Graph) Children(id string) []string {
	return append([]string(nil), g.children[id]...)
}

// Parents returns the direct predecessors of id in edge insertion order.
func (g *Graph) Parents(id string) []string {
	return append([]string(nil), g.parents[id]...)
}

// Roots returns the nodes with no parents, in insertion order.
func (g *Graph) Roots() []string {
	var roots []string
	for _, id := range g.order {
		if len(g.parents[id]) == 0 {
			roots = append(roots, id)
		}
	}
	return roots
}

// Leaves returns the nodes with no children, in insertion order.
func (g *Graph) Leaves() []string {
	var leaves []string
	for _, id := range g.order {
		if len(g.children[id]) == 0 {
			leaves = append(leaves, id)
		}
	}
	return leaves
}

// TopoSort returns a topological ordering of the nodes, or ErrCycle. The
// ordering is deterministic: among ready nodes, insertion order wins
// (Kahn's algorithm with a stable ready list).
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.order))
	for _, id := range g.order {
		indeg[id] = len(g.parents[id])
	}
	// ready is maintained in insertion order.
	var ready []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	out := make([]string, 0, len(g.order))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		for _, c := range g.children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(out) != len(g.order) {
		return nil, ErrCycle
	}
	return out, nil
}

// IsAcyclic reports whether the graph has no directed cycles.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Levels assigns each node its depth: roots are level 0 and every other
// node is 1 + max(level of parents). Returns ErrCycle on cyclic graphs.
// Pegasus' horizontal clustering groups jobs within a level.
func (g *Graph) Levels() (map[string]int, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	levels := make(map[string]int, len(topo))
	for _, id := range topo {
		lvl := 0
		for _, p := range g.parents[id] {
			if levels[p]+1 > lvl {
				lvl = levels[p] + 1
			}
		}
		levels[id] = lvl
	}
	return levels, nil
}

// Descendants returns the set of nodes reachable from id via child edges,
// excluding id itself.
func (g *Graph) Descendants(id string) map[string]bool {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(n string) {
		for _, c := range g.children[n] {
			if !seen[c] {
				seen[c] = true
				walk(c)
			}
		}
	}
	walk(id)
	return seen
}

// Ancestors returns the set of nodes from which id is reachable, excluding
// id itself.
func (g *Graph) Ancestors(id string) map[string]bool {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(n string) {
		for _, p := range g.parents[n] {
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(id)
	return seen
}

// Clone returns a deep copy of the graph structure. Payloads are copied by
// reference.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, id := range g.order {
		c.MustAddNode(id, g.payload[id])
	}
	for _, id := range g.order {
		for _, ch := range g.children[id] {
			c.MustAddEdge(id, ch)
		}
	}
	return c
}

// SortedNodes returns node IDs in lexicographic order (handy for stable
// test assertions, as opposed to insertion order).
func (g *Graph) SortedNodes() []string {
	ids := g.Nodes()
	sort.Strings(ids)
	return ids
}
