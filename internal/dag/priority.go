package dag

import "sort"

// Priorities maps node IDs to a staging priority. Larger values mean more
// important: stage data for that node first. All four algorithms below
// produce a total order (distinct priorities) so that transfer ordering is
// deterministic; ties within an algorithm's natural ranking are broken by
// topological position and then node insertion order.
type Priorities map[string]int

// PriorityAlgorithm identifies one of the structure-based priority
// assignment algorithms of Section III(c).
type PriorityAlgorithm string

const (
	// BFS assigns higher priorities to nodes visited earlier in a
	// breadth-first traversal from the roots.
	BFS PriorityAlgorithm = "bfs"
	// DFS assigns higher priorities to nodes visited earlier in a
	// depth-first traversal from the roots.
	DFS PriorityAlgorithm = "dfs"
	// DirectDependent assigns the highest priority to the node with the
	// largest number of direct children (fan-out).
	DirectDependent PriorityAlgorithm = "direct-dependent"
	// Dependent assigns the highest priority to the node with the most
	// total descendants (not just direct children).
	Dependent PriorityAlgorithm = "dependent"
)

// Algorithms lists every supported priority algorithm.
func Algorithms() []PriorityAlgorithm {
	return []PriorityAlgorithm{BFS, DFS, DirectDependent, Dependent}
}

// AssignPriorities computes priorities for every node of g using the given
// algorithm. The highest priority equals g.Len() and the lowest is 1.
// Unknown algorithms and cyclic graphs yield an error.
func AssignPriorities(g *Graph, algo PriorityAlgorithm) (Priorities, error) {
	switch algo {
	case BFS:
		return bfsPriorities(g)
	case DFS:
		return dfsPriorities(g)
	case DirectDependent:
		return scorePriorities(g, func(id string) int { return len(g.children[id]) })
	case Dependent:
		return scorePriorities(g, func(id string) int { return len(g.Descendants(id)) })
	default:
		return nil, errUnknownAlgorithm(algo)
	}
}

type errUnknownAlgorithm PriorityAlgorithm

func (e errUnknownAlgorithm) Error() string {
	return "dag: unknown priority algorithm " + string(e)
}

// bfsPriorities ranks nodes by breadth-first visit order from the roots.
// A node is only visited once all is well-defined even for DAGs with
// multiple parents: first time reached wins.
func bfsPriorities(g *Graph) (Priorities, error) {
	if !g.IsAcyclic() {
		return nil, ErrCycle
	}
	visited := make(map[string]bool, g.Len())
	var order []string
	queue := g.Roots()
	for _, r := range queue {
		visited[r] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, c := range g.children[n] {
			if !visited[c] && allVisited(g.parents[c], visited) {
				visited[c] = true
				queue = append(queue, c)
			}
		}
	}
	// Nodes unreachable through the parent-gated queue (none in a DAG, but
	// defensive) get appended in insertion order.
	for _, id := range g.order {
		if !visited[id] {
			visited[id] = true
			order = append(order, id)
		}
	}
	return orderToPriorities(order), nil
}

func allVisited(ids []string, visited map[string]bool) bool {
	for _, id := range ids {
		if !visited[id] {
			return false
		}
	}
	return true
}

// dfsPriorities ranks nodes by pre-order depth-first visit order from the
// roots (in insertion order).
func dfsPriorities(g *Graph) (Priorities, error) {
	if !g.IsAcyclic() {
		return nil, ErrCycle
	}
	visited := make(map[string]bool, g.Len())
	var order []string
	var walk func(string)
	walk = func(n string) {
		if visited[n] {
			return
		}
		visited[n] = true
		order = append(order, n)
		for _, c := range g.children[n] {
			walk(c)
		}
	}
	for _, r := range g.Roots() {
		walk(r)
	}
	for _, id := range g.order {
		walk(id)
	}
	return orderToPriorities(order), nil
}

// scorePriorities ranks nodes by a per-node score, descending; ties are
// broken by topological order so parents outrank children at equal score,
// and then by insertion order.
func scorePriorities(g *Graph, score func(id string) int) (Priorities, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	topoIdx := make(map[string]int, len(topo))
	for i, id := range topo {
		topoIdx[id] = i
	}
	ids := g.Nodes()
	sort.SliceStable(ids, func(i, j int) bool {
		si, sj := score(ids[i]), score(ids[j])
		if si != sj {
			return si > sj
		}
		return topoIdx[ids[i]] < topoIdx[ids[j]]
	})
	return orderToPriorities(ids), nil
}

// orderToPriorities converts a visit order (earliest = most important) into
// numeric priorities, with the first node receiving len(order).
func orderToPriorities(order []string) Priorities {
	p := make(Priorities, len(order))
	n := len(order)
	for i, id := range order {
		p[id] = n - i
	}
	return p
}

// Ranking returns node IDs ordered from highest to lowest priority.
func (p Priorities) Ranking() []string {
	ids := make([]string, 0, len(p))
	for id := range p {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if p[ids[i]] != p[ids[j]] {
			return p[ids[i]] > p[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
