package workflow

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
)

// DAX serialization: an abstract workflow can be written to and read from
// an XML document modelled on Pegasus' DAX ("directed acyclic graph in
// XML") format — the representation Pegasus planners consume. The schema
// here is a compact DAX v3 subset: a file catalog plus jobs with
// input/output "uses" edges.
//
//	<adag name="montage-1deg">
//	  <file name="image_001.fits" sizeBytes="2097152"
//	        source="http://archive/image_001.fits"/>
//	  <job id="mProjectPP_001" transformation="mProjectPP" runtime="20">
//	    <uses file="image_001.fits" link="input"/>
//	    <uses file="proj_001.fits" link="output"/>
//	  </job>
//	</adag>

// daxDoc is the root element.
type daxDoc struct {
	XMLName xml.Name  `xml:"adag"`
	Name    string    `xml:"name,attr"`
	Files   []daxFile `xml:"file"`
	Jobs    []daxJob  `xml:"job"`
}

type daxFile struct {
	Name      string `xml:"name,attr"`
	SizeBytes int64  `xml:"sizeBytes,attr,omitempty"`
	Source    string `xml:"source,attr,omitempty"`
	Output    bool   `xml:"output,attr,omitempty"`
}

type daxJob struct {
	ID             string   `xml:"id,attr"`
	Transformation string   `xml:"transformation,attr,omitempty"`
	Runtime        float64  `xml:"runtime,attr,omitempty"`
	Uses           []daxUse `xml:"uses"`
}

type daxUse struct {
	File string `xml:"file,attr"`
	Link string `xml:"link,attr"` // "input" or "output"
}

// WriteDAX serializes the workflow as a DAX document.
func (w *Workflow) WriteDAX(out io.Writer) error {
	doc := daxDoc{Name: w.Name}
	files := w.Files() // sorted by name
	for _, f := range files {
		doc.Files = append(doc.Files, daxFile{
			Name: f.Name, SizeBytes: f.SizeBytes, Source: f.SourceURL, Output: f.Output,
		})
	}
	for _, j := range w.jobs {
		dj := daxJob{ID: j.ID, Transformation: j.Transformation, Runtime: j.RuntimeSeconds}
		ins := append([]string(nil), j.Inputs...)
		outs := append([]string(nil), j.Outputs...)
		sort.Strings(ins)
		sort.Strings(outs)
		for _, in := range ins {
			dj.Uses = append(dj.Uses, daxUse{File: in, Link: "input"})
		}
		for _, o := range outs {
			dj.Uses = append(dj.Uses, daxUse{File: o, Link: "output"})
		}
		doc.Jobs = append(doc.Jobs, dj)
	}
	if _, err := io.WriteString(out, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(out)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("workflow: encode DAX: %w", err)
	}
	_, err := io.WriteString(out, "\n")
	return err
}

// ReadDAX parses a DAX document into a workflow and validates it.
func ReadDAX(in io.Reader) (*Workflow, error) {
	var doc daxDoc
	if err := xml.NewDecoder(in).Decode(&doc); err != nil {
		return nil, fmt.Errorf("workflow: decode DAX: %w", err)
	}
	if doc.Name == "" {
		return nil, fmt.Errorf("workflow: DAX without a name attribute")
	}
	w := New(doc.Name)
	for _, f := range doc.Files {
		if err := w.AddFile(&File{
			Name: f.Name, SizeBytes: f.SizeBytes, SourceURL: f.Source, Output: f.Output,
		}); err != nil {
			return nil, err
		}
	}
	for _, dj := range doc.Jobs {
		j := &Job{ID: dj.ID, Transformation: dj.Transformation, RuntimeSeconds: dj.Runtime}
		for _, u := range dj.Uses {
			switch u.Link {
			case "input":
				j.Inputs = append(j.Inputs, u.File)
			case "output":
				j.Outputs = append(j.Outputs, u.File)
			default:
				return nil, fmt.Errorf("workflow: DAX job %s: unknown link %q", dj.ID, u.Link)
			}
		}
		if err := w.AddJob(j); err != nil {
			return nil, err
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
