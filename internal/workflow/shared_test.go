package workflow

import (
	"strings"
	"testing"
)

func TestSharedScratchURLs(t *testing.T) {
	w := smallWF(t)
	cfg := planCfg()
	cfg.SharedScratch = true
	p, err := w.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	si, _ := p.Task("stage_in_A")
	if want := "file://obelix.example.org/scratch/shared/in1"; si.Transfers[0].DestURL != want {
		t.Fatalf("dest = %s, want %s", si.Transfers[0].DestURL, want)
	}
	// Two workflows planning the same abstract workflow share dest URLs.
	cfg2 := cfg
	cfg2.WorkflowID = "wf2"
	w2 := smallWF(t)
	p2, err := w2.Plan(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	si2, _ := p2.Task("stage_in_A")
	if si.Transfers[0].DestURL != si2.Transfers[0].DestURL {
		t.Fatal("shared scratch produced different dest URLs")
	}
	// Without SharedScratch they differ.
	cfg3 := planCfg()
	cfg3.WorkflowID = "wf3"
	w3 := smallWF(t)
	p3, err := w3.Plan(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	si3, _ := p3.Task("stage_in_A")
	if si.Transfers[0].DestURL == si3.Transfers[0].DestURL {
		t.Fatal("per-run scratch collided with shared scratch")
	}
	if !strings.Contains(si3.Transfers[0].DestURL, "/wf3/") {
		t.Fatalf("per-run dest = %s", si3.Transfers[0].DestURL)
	}
}

// TestClusteringMultiLevel: stage-ins on different workflow levels cluster
// separately.
func TestClusteringMultiLevel(t *testing.T) {
	w := New("two-levels")
	// Level 0: jobs a1, a2 with external inputs; level 1: jobs b1, b2
	// consuming level-0 outputs plus their own external inputs.
	for _, id := range []string{"a1", "a2"} {
		w.MustAddFile(&File{Name: "in_" + id, SizeBytes: 1, SourceURL: "http://x.example.org/" + id})
		w.MustAddFile(&File{Name: "mid_" + id, SizeBytes: 1})
		w.MustAddJob(&Job{ID: id, RuntimeSeconds: 1, Inputs: []string{"in_" + id}, Outputs: []string{"mid_" + id}})
	}
	for i, id := range []string{"b1", "b2"} {
		src := []string{"mid_a1", "mid_a2"}[i]
		w.MustAddFile(&File{Name: "in_" + id, SizeBytes: 1, SourceURL: "http://x.example.org/" + id})
		w.MustAddFile(&File{Name: "out_" + id, SizeBytes: 1})
		w.MustAddJob(&Job{ID: id, RuntimeSeconds: 1, Inputs: []string{src, "in_" + id}, Outputs: []string{"out_" + id}})
	}
	cfg := planCfg()
	cfg.Cleanup = false
	cfg.ClusterFactor = 2
	p, err := w.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sis := p.TasksOf(TaskStageIn)
	// 2 levels x up to 2 clusters, each level has 2 stage-ins -> 4 tasks
	// (factor 2 splits each level's 2 stage-ins into 2 singleton
	// clusters).
	if len(sis) != 4 {
		t.Fatalf("clustered stage-ins = %d, want 4", len(sis))
	}
	levels := map[string]bool{}
	for _, si := range sis {
		if !strings.HasPrefix(si.ID, "stage_in_l") {
			t.Fatalf("unexpected cluster ID %s", si.ID)
		}
		levels[strings.Split(si.ID, "_")[2]] = true
	}
	if len(levels) != 2 {
		t.Fatalf("levels = %v, want stage-ins from 2 levels", levels)
	}
	if !p.Graph.IsAcyclic() {
		t.Fatal("cyclic")
	}
	// A level-1 clustered stage-in must not depend on level-0 compute
	// tasks (stage-ins are roots), but its children must be level-1 jobs.
	for _, si := range sis {
		if len(p.Graph.Parents(si.ID)) != 0 {
			t.Fatalf("stage-in %s has parents %v", si.ID, p.Graph.Parents(si.ID))
		}
	}
}

func TestPlanTaskLookups(t *testing.T) {
	w := smallWF(t)
	p, err := w.Plan(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Task("nonexistent"); ok {
		t.Fatal("found phantom task")
	}
	if got := p.Count(TaskType(99)); got != 0 {
		t.Fatalf("count of bogus type = %d", got)
	}
	if TaskType(99).String() == "" {
		t.Fatal("empty string for unknown task type")
	}
	for _, tt := range []TaskType{TaskCompute, TaskStageIn, TaskStageOut, TaskCleanup} {
		if tt.String() == "" || strings.HasPrefix(tt.String(), "TaskType") {
			t.Fatalf("bad name for %d", tt)
		}
	}
}
