package workflow

import (
	"strings"
	"testing"

	"policyflow/internal/dag"
)

// smallWF builds: stage-in-able inputs in1,in2 (external), job A(in1)->f1,
// job B(in2)->f2, job C(f1,f2)->out (final output).
func smallWF(t *testing.T) *Workflow {
	t.Helper()
	w := New("small")
	w.MustAddFile(&File{Name: "in1", SizeBytes: 10 << 20, SourceURL: "gsiftp://data.example.org/in1"})
	w.MustAddFile(&File{Name: "in2", SizeBytes: 20 << 20, SourceURL: "gsiftp://data.example.org/in2"})
	w.MustAddFile(&File{Name: "f1", SizeBytes: 1 << 20})
	w.MustAddFile(&File{Name: "f2", SizeBytes: 1 << 20})
	w.MustAddFile(&File{Name: "out", SizeBytes: 5 << 20, Output: true})
	w.MustAddJob(&Job{ID: "A", Transformation: "tA", RuntimeSeconds: 10, Inputs: []string{"in1"}, Outputs: []string{"f1"}})
	w.MustAddJob(&Job{ID: "B", Transformation: "tB", RuntimeSeconds: 10, Inputs: []string{"in2"}, Outputs: []string{"f2"}})
	w.MustAddJob(&Job{ID: "C", Transformation: "tC", RuntimeSeconds: 5, Inputs: []string{"f1", "f2"}, Outputs: []string{"out"}})
	return w
}

func planCfg() PlanConfig {
	return PlanConfig{
		WorkflowID:      "wf1",
		ComputeSiteBase: "file://obelix.example.org/scratch",
		OutputSiteBase:  "file://storage.example.org/results",
		Cleanup:         true,
	}
}

func TestModelValidation(t *testing.T) {
	w := New("v")
	if err := w.AddFile(&File{}); err == nil {
		t.Error("empty file name accepted")
	}
	w.MustAddFile(&File{Name: "x"})
	if err := w.AddFile(&File{Name: "x"}); err == nil {
		t.Error("duplicate file accepted")
	}
	if err := w.AddJob(&Job{ID: "j", Inputs: []string{"missing"}}); err == nil {
		t.Error("unknown input accepted")
	}
	if err := w.AddJob(&Job{ID: "j", Outputs: []string{"missing"}}); err == nil {
		t.Error("unknown output accepted")
	}
	w.MustAddFile(&File{Name: "ext", SourceURL: "http://e/x"})
	if err := w.AddJob(&Job{ID: "j", Outputs: []string{"ext"}}); err == nil {
		t.Error("producing an external input accepted")
	}
	w.MustAddJob(&Job{ID: "p1", Outputs: []string{"x"}})
	if err := w.AddJob(&Job{ID: "p2", Outputs: []string{"x"}}); err == nil {
		t.Error("two producers accepted")
	}
	if err := w.AddJob(&Job{ID: "p1"}); err == nil {
		t.Error("duplicate job ID accepted")
	}
}

func TestValidateConsumedUnproduced(t *testing.T) {
	w := New("v2")
	w.MustAddFile(&File{Name: "ghost"}) // not external, no producer
	w.MustAddJob(&Job{ID: "j", Inputs: []string{"ghost"}})
	if err := w.Validate(); err == nil {
		t.Fatal("consuming unproduced file accepted")
	}
}

func TestJobGraph(t *testing.T) {
	w := smallWF(t)
	g, err := w.JobGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("A", "C") || !g.HasEdge("B", "C") {
		t.Fatal("missing data-dependency edges")
	}
	if g.HasEdge("A", "B") {
		t.Fatal("phantom edge")
	}
}

func TestPlanBasics(t *testing.T) {
	w := smallWF(t)
	p, err := w.Plan(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Count(TaskCompute); got != 3 {
		t.Fatalf("compute tasks = %d", got)
	}
	// One stage-in per compute job with external inputs: A and B.
	if got := p.Count(TaskStageIn); got != 2 {
		t.Fatalf("stage-in tasks = %d", got)
	}
	if got := p.Count(TaskStageOut); got != 1 {
		t.Fatalf("stage-out tasks = %d", got)
	}
	// Cleanup per site file: in1, in2, f1, f2, out.
	if got := p.Count(TaskCleanup); got != 5 {
		t.Fatalf("cleanup tasks = %d", got)
	}
	// Dependencies: stage_in_A -> A -> C -> stage_out_C.
	for _, e := range [][2]string{
		{"stage_in_A", "A"}, {"stage_in_B", "B"},
		{"A", "C"}, {"B", "C"}, {"C", "stage_out_C"},
	} {
		if !p.Graph.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if !p.Graph.IsAcyclic() {
		t.Fatal("plan graph cyclic")
	}
	// Stage-in transfer URLs.
	si, _ := p.Task("stage_in_A")
	if len(si.Transfers) != 1 {
		t.Fatalf("stage_in_A transfers = %+v", si.Transfers)
	}
	op := si.Transfers[0]
	if op.SourceURL != "gsiftp://data.example.org/in1" {
		t.Errorf("source = %s", op.SourceURL)
	}
	if want := "file://obelix.example.org/scratch/wf1/in1"; op.DestURL != want {
		t.Errorf("dest = %s, want %s", op.DestURL, want)
	}
}

func TestCleanupDependsOnAllReaders(t *testing.T) {
	w := smallWF(t)
	p, err := w.Plan(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Find cleanup task for f1: must depend on A (producer) and C
	// (consumer), not on B.
	var cu *Task
	for _, task := range p.TasksOf(TaskCleanup) {
		if strings.HasSuffix(task.ID, "_f1") {
			cu = task
		}
	}
	if cu == nil {
		t.Fatal("no cleanup for f1")
	}
	parents := p.Graph.Parents(cu.ID)
	has := func(id string) bool {
		for _, x := range parents {
			if x == id {
				return true
			}
		}
		return false
	}
	if !has("A") || !has("C") {
		t.Fatalf("cleanup parents = %v", parents)
	}
	if has("B") {
		t.Fatalf("cleanup for f1 depends on unrelated job B: %v", parents)
	}
	// Cleanup of "out" must wait for stage-out.
	var co *Task
	for _, task := range p.TasksOf(TaskCleanup) {
		if strings.HasSuffix(task.ID, "_out") {
			co = task
		}
	}
	if co == nil {
		t.Fatal("no cleanup for out")
	}
	found := false
	for _, par := range p.Graph.Parents(co.ID) {
		if par == "stage_out_C" {
			found = true
		}
	}
	if !found {
		t.Fatal("cleanup of final output does not wait for stage-out")
	}
}

func TestNoCleanupWhenDisabled(t *testing.T) {
	w := smallWF(t)
	cfg := planCfg()
	cfg.Cleanup = false
	p, err := w.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Count(TaskCleanup); got != 0 {
		t.Fatalf("cleanup tasks = %d", got)
	}
}

func TestNoStageOutWithoutOutputSite(t *testing.T) {
	w := smallWF(t)
	cfg := planCfg()
	cfg.OutputSiteBase = ""
	p, err := w.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Count(TaskStageOut); got != 0 {
		t.Fatalf("stage-out tasks = %d", got)
	}
}

// fanWF: one level with n jobs, each consuming its own external input.
func fanWF(t *testing.T, n int) *Workflow {
	t.Helper()
	w := New("fan")
	for i := 0; i < n; i++ {
		id := string(rune('a' + i))
		w.MustAddFile(&File{Name: "in_" + id, SizeBytes: 1 << 20, SourceURL: "http://data.example.org/" + id})
		w.MustAddFile(&File{Name: "out_" + id, SizeBytes: 1 << 20})
		w.MustAddJob(&Job{ID: "job_" + id, RuntimeSeconds: 1, Inputs: []string{"in_" + id}, Outputs: []string{"out_" + id}})
	}
	return w
}

func TestClusteringMergesStageIns(t *testing.T) {
	w := fanWF(t, 6)
	cfg := planCfg()
	cfg.ClusterFactor = 2
	p, err := w.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sis := p.TasksOf(TaskStageIn)
	if len(sis) != 2 {
		t.Fatalf("clustered stage-ins = %d, want 2", len(sis))
	}
	totalOps := 0
	for _, si := range sis {
		totalOps += len(si.Transfers)
		if si.ClusterID == "" {
			t.Error("clustered task missing ClusterID")
		}
		// Each clustered stage-in must feed the compute jobs whose
		// transfers it carries.
		children := map[string]bool{}
		for _, c := range p.Graph.Children(si.ID) {
			children[c] = true
		}
		for _, op := range si.Transfers {
			jobID := "job_" + strings.TrimPrefix(op.FileName, "in_")
			if !children[jobID] {
				t.Errorf("cluster %s carries %s but does not feed %s", si.ID, op.FileName, jobID)
			}
		}
	}
	if totalOps != 6 {
		t.Fatalf("total transfers = %d, want 6", totalOps)
	}
	if !p.Graph.IsAcyclic() {
		t.Fatal("clustered plan cyclic")
	}
}

func TestNoClusteringSingletons(t *testing.T) {
	w := fanWF(t, 6)
	cfg := planCfg()
	cfg.ClusterFactor = 0
	p, err := w.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sis := p.TasksOf(TaskStageIn)
	if len(sis) != 6 {
		t.Fatalf("stage-ins = %d, want 6", len(sis))
	}
	for _, si := range sis {
		if si.ClusterID != si.ID {
			t.Errorf("singleton cluster ID = %q, want %q", si.ClusterID, si.ID)
		}
	}
}

func TestPriorityPropagation(t *testing.T) {
	w := smallWF(t)
	cfg := planCfg()
	cfg.PriorityAlgorithm = dag.Dependent
	p, err := w.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Task("A")
	c, _ := p.Task("C")
	if a.Priority <= c.Priority {
		t.Fatalf("A priority %d should exceed C %d (A has descendants)", a.Priority, c.Priority)
	}
	siA, _ := p.Task("stage_in_A")
	if siA.Priority != a.Priority {
		t.Fatalf("stage_in_A priority %d != A %d", siA.Priority, a.Priority)
	}
}

func TestPlanConfigValidation(t *testing.T) {
	w := smallWF(t)
	if _, err := w.Plan(PlanConfig{ComputeSiteBase: "x"}); err == nil {
		t.Error("missing WorkflowID accepted")
	}
	if _, err := w.Plan(PlanConfig{WorkflowID: "x"}); err == nil {
		t.Error("missing ComputeSiteBase accepted")
	}
	bad := planCfg()
	bad.ClusterFactor = -1
	if _, err := w.Plan(bad); err == nil {
		t.Error("negative ClusterFactor accepted")
	}
}

func TestStats(t *testing.T) {
	w := smallWF(t)
	s := w.Stats()
	if s.Jobs != 3 || s.Files != 5 || s.ExternalInputs != 2 || s.Outputs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalInputMB != 30 {
		t.Fatalf("TotalInputMB = %v", s.TotalInputMB)
	}
}
