// Package workflow models scientific workflows the way the Pegasus
// Workflow Management System does: an abstract, DAX-like workflow of
// compute jobs connected by data dependencies is *planned* into an
// executable workflow with added data stage-in, stage-out and cleanup
// tasks, optional transfer clustering (Fig. 2 of the paper), and
// structure-based priorities (Section III(c)).
package workflow

import (
	"fmt"
	"sort"

	"policyflow/internal/dag"
)

// File describes a logical file of the workflow.
type File struct {
	// Name is the logical file name, unique within the workflow.
	Name string
	// SizeBytes is the file size.
	SizeBytes int64
	// SourceURL is where the file can be fetched from when it is an
	// external input (replica-catalog entry). Empty for files produced by
	// workflow jobs.
	SourceURL string
	// Output marks a final workflow output that must be staged out.
	Output bool
}

// IsExternalInput reports whether the file pre-exists outside the
// workflow and must be staged in.
func (f *File) IsExternalInput() bool { return f.SourceURL != "" }

// Job is one compute task of the abstract workflow.
type Job struct {
	// ID is unique within the workflow.
	ID string
	// Transformation names the executable (e.g. "mProjectPP").
	Transformation string
	// RuntimeSeconds is the job's execution time on one core.
	RuntimeSeconds float64
	// Inputs and Outputs are logical file names.
	Inputs  []string
	Outputs []string
}

// Workflow is an abstract workflow: jobs plus its file catalog.
type Workflow struct {
	Name  string
	jobs  []*Job
	byID  map[string]*Job
	files map[string]*File
	// producer maps a file name to the job that creates it.
	producer map[string]string
}

// New creates an empty workflow.
func New(name string) *Workflow {
	return &Workflow{
		Name:     name,
		byID:     make(map[string]*Job),
		files:    make(map[string]*File),
		producer: make(map[string]string),
	}
}

// AddFile registers a file. Re-registering a name is an error.
func (w *Workflow) AddFile(f *File) error {
	if f.Name == "" {
		return fmt.Errorf("workflow %s: file with empty name", w.Name)
	}
	if _, ok := w.files[f.Name]; ok {
		return fmt.Errorf("workflow %s: duplicate file %q", w.Name, f.Name)
	}
	w.files[f.Name] = f
	return nil
}

// AddJob registers a job. All input and output files must have been
// registered, job IDs must be unique, and a file may have only one
// producer.
func (w *Workflow) AddJob(j *Job) error {
	if j.ID == "" {
		return fmt.Errorf("workflow %s: job with empty ID", w.Name)
	}
	if _, ok := w.byID[j.ID]; ok {
		return fmt.Errorf("workflow %s: duplicate job %q", w.Name, j.ID)
	}
	for _, in := range j.Inputs {
		if _, ok := w.files[in]; !ok {
			return fmt.Errorf("workflow %s: job %s: unknown input file %q", w.Name, j.ID, in)
		}
	}
	for _, out := range j.Outputs {
		f, ok := w.files[out]
		if !ok {
			return fmt.Errorf("workflow %s: job %s: unknown output file %q", w.Name, j.ID, out)
		}
		if f.IsExternalInput() {
			return fmt.Errorf("workflow %s: job %s: output %q is an external input", w.Name, j.ID, out)
		}
		if p, ok := w.producer[out]; ok {
			return fmt.Errorf("workflow %s: file %q produced by both %s and %s", w.Name, out, p, j.ID)
		}
		w.producer[out] = j.ID
	}
	w.jobs = append(w.jobs, j)
	w.byID[j.ID] = j
	return nil
}

// MustAddFile and MustAddJob panic on error; for generator code.
func (w *Workflow) MustAddFile(f *File) {
	if err := w.AddFile(f); err != nil {
		panic(err)
	}
}

// MustAddJob panics on error; for generator code.
func (w *Workflow) MustAddJob(j *Job) {
	if err := w.AddJob(j); err != nil {
		panic(err)
	}
}

// Jobs returns the jobs in insertion order.
func (w *Workflow) Jobs() []*Job { return append([]*Job(nil), w.jobs...) }

// Job returns a job by ID.
func (w *Workflow) Job(id string) (*Job, bool) {
	j, ok := w.byID[id]
	return j, ok
}

// File returns a file by name.
func (w *Workflow) File(name string) (*File, bool) {
	f, ok := w.files[name]
	return f, ok
}

// Files returns all files sorted by name.
func (w *Workflow) Files() []*File {
	out := make([]*File, 0, len(w.files))
	for _, f := range w.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Producer returns the job ID producing the named file ("" for external
// inputs).
func (w *Workflow) Producer(file string) string { return w.producer[file] }

// Consumers returns the IDs of jobs consuming the named file, in job
// insertion order.
func (w *Workflow) Consumers(file string) []string {
	var out []string
	for _, j := range w.jobs {
		for _, in := range j.Inputs {
			if in == file {
				out = append(out, j.ID)
				break
			}
		}
	}
	return out
}

// JobGraph builds the compute-job dependency DAG from data dependencies:
// an edge runs from the producer of a file to each consumer.
func (w *Workflow) JobGraph() (*dag.Graph, error) {
	g := dag.New()
	for _, j := range w.jobs {
		if err := g.AddNode(j.ID, j); err != nil {
			return nil, err
		}
	}
	for _, j := range w.jobs {
		for _, in := range j.Inputs {
			if p, ok := w.producer[in]; ok {
				if err := g.AddEdge(p, j.ID); err != nil {
					return nil, err
				}
			}
		}
	}
	if !g.IsAcyclic() {
		return nil, fmt.Errorf("workflow %s: %w", w.Name, dag.ErrCycle)
	}
	return g, nil
}

// Validate checks structural integrity: the job graph must be acyclic and
// every non-external file must have a producer if consumed.
func (w *Workflow) Validate() error {
	if _, err := w.JobGraph(); err != nil {
		return err
	}
	for _, j := range w.jobs {
		for _, in := range j.Inputs {
			f := w.files[in]
			if !f.IsExternalInput() && w.producer[in] == "" {
				return fmt.Errorf("workflow %s: job %s consumes %q which nothing produces", w.Name, j.ID, in)
			}
		}
	}
	return nil
}

// Stats summarizes a workflow.
type Stats struct {
	Jobs           int
	Files          int
	ExternalInputs int
	Outputs        int
	TotalInputMB   float64
}

// Stats computes summary statistics.
func (w *Workflow) Stats() Stats {
	s := Stats{Jobs: len(w.jobs), Files: len(w.files)}
	for _, f := range w.files {
		if f.IsExternalInput() {
			s.ExternalInputs++
			s.TotalInputMB += float64(f.SizeBytes) / (1 << 20)
		}
		if f.Output {
			s.Outputs++
		}
	}
	return s
}
