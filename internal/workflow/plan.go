package workflow

import (
	"fmt"
	"sort"
	"strings"

	"policyflow/internal/dag"
)

// TaskType distinguishes the tasks of an executable workflow.
type TaskType int

const (
	// TaskCompute runs a workflow job on a compute resource.
	TaskCompute TaskType = iota
	// TaskStageIn transfers external input files to the compute site.
	TaskStageIn
	// TaskStageOut transfers final outputs to permanent storage.
	TaskStageOut
	// TaskCleanup deletes files no longer needed at the compute site.
	TaskCleanup
)

// String implements fmt.Stringer.
func (t TaskType) String() string {
	switch t {
	case TaskCompute:
		return "compute"
	case TaskStageIn:
		return "stage-in"
	case TaskStageOut:
		return "stage-out"
	case TaskCleanup:
		return "cleanup"
	default:
		return fmt.Sprintf("TaskType(%d)", int(t))
	}
}

// TransferOp is one file movement inside a staging task.
type TransferOp struct {
	FileName  string
	SourceURL string
	DestURL   string
	SizeBytes int64
}

// Task is a node of the executable workflow.
type Task struct {
	ID   string
	Type TaskType
	// Job is set for compute tasks.
	Job *Job
	// Transfers is set for staging tasks.
	Transfers []TransferOp
	// Deletions lists site URLs removed by a cleanup task.
	Deletions []string
	// ClusterID labels the transfer cluster the task belongs to (empty
	// when clustering is disabled).
	ClusterID string
	// Priority is the structure-based priority (0 when disabled).
	Priority int
}

// Plan is an executable workflow: tasks plus their dependency DAG.
type Plan struct {
	WorkflowID string
	Tasks      []*Task
	Graph      *dag.Graph
	byID       map[string]*Task
}

// Task returns a task by ID.
func (p *Plan) Task(id string) (*Task, bool) {
	t, ok := p.byID[id]
	return t, ok
}

// TasksOf returns all tasks of the given type, in plan order.
func (p *Plan) TasksOf(tt TaskType) []*Task {
	var out []*Task
	for _, t := range p.Tasks {
		if t.Type == tt {
			out = append(out, t)
		}
	}
	return out
}

// Count returns the number of tasks of the given type.
func (p *Plan) Count(tt TaskType) int { return len(p.TasksOf(tt)) }

// PlanConfig controls planning.
type PlanConfig struct {
	// WorkflowID identifies the run (used in site paths and policy calls).
	WorkflowID string
	// ComputeSiteBase is the URL prefix of the compute site's shared
	// scratch space, e.g. "file://obelix.isi.example.org/scratch".
	ComputeSiteBase string
	// OutputSiteBase is the URL prefix of permanent storage for final
	// outputs; empty disables stage-out tasks.
	OutputSiteBase string
	// ClusterFactor is the transfer clustering factor: the maximum number
	// of clustered staging tasks per workflow level. 0 or 1 disables
	// clustering ("one stage-in job per compute job", the paper's
	// experimental configuration, corresponds to 0).
	ClusterFactor int
	// Cleanup adds cleanup tasks that delete files once no remaining
	// task needs them.
	Cleanup bool
	// PriorityAlgorithm, when set, assigns structure-based priorities to
	// compute jobs and propagates them to their staging tasks.
	PriorityAlgorithm dag.PriorityAlgorithm
	// SharedScratch stages files into a scratch directory shared by all
	// workflows instead of a per-run directory, letting concurrent
	// workflows share staged files through the policy service (the
	// paper's multi-workflow file-sharing scenario).
	SharedScratch bool
}

func (c *PlanConfig) normalize() error {
	if c.WorkflowID == "" {
		return fmt.Errorf("workflow: PlanConfig.WorkflowID is required")
	}
	if c.ComputeSiteBase == "" {
		return fmt.Errorf("workflow: PlanConfig.ComputeSiteBase is required")
	}
	c.ComputeSiteBase = strings.TrimRight(c.ComputeSiteBase, "/")
	c.OutputSiteBase = strings.TrimRight(c.OutputSiteBase, "/")
	if c.ClusterFactor < 0 {
		return fmt.Errorf("workflow: negative ClusterFactor")
	}
	return nil
}

// siteURL returns the compute-site URL of a logical file for this run.
func (c *PlanConfig) siteURL(file string) string {
	if c.SharedScratch {
		return c.ComputeSiteBase + "/shared/" + file
	}
	return c.ComputeSiteBase + "/" + c.WorkflowID + "/" + file
}

// Plan converts the abstract workflow into an executable workflow,
// mirroring Pegasus' planning phase: it "adds to the workflow data staging
// tasks that move input data sets to resources where compute jobs will
// execute, ... and that transfer results to permanent storage", optionally
// clusters staging tasks, inserts cleanup tasks, and assigns priorities.
func (w *Workflow) Plan(cfg PlanConfig) (*Plan, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	jg, err := w.JobGraph()
	if err != nil {
		return nil, err
	}

	p := &Plan{WorkflowID: cfg.WorkflowID, Graph: dag.New(), byID: make(map[string]*Task)}
	add := func(t *Task) *Task {
		p.Tasks = append(p.Tasks, t)
		p.byID[t.ID] = t
		p.Graph.MustAddNode(t.ID, t)
		return t
	}

	// Compute tasks mirror the abstract jobs.
	for _, j := range w.jobs {
		add(&Task{ID: j.ID, Type: TaskCompute, Job: j})
	}
	for _, j := range w.jobs {
		for _, in := range j.Inputs {
			if prod := w.producer[in]; prod != "" {
				p.Graph.MustAddEdge(prod, j.ID)
			}
		}
	}

	// Stage-in tasks: one per compute job that consumes external inputs
	// (the paper's "one stage-in job per compute job" when clustering is
	// off); clustering merges them level-by-level below.
	levels, err := jg.Levels()
	if err != nil {
		return nil, err
	}
	var stageIns []*stageIn
	for _, j := range w.jobs {
		var ops []TransferOp
		for _, in := range j.Inputs {
			f := w.files[in]
			if f.IsExternalInput() {
				ops = append(ops, TransferOp{
					FileName:  f.Name,
					SourceURL: f.SourceURL,
					DestURL:   cfg.siteURL(f.Name),
					SizeBytes: f.SizeBytes,
				})
			}
		}
		if len(ops) == 0 {
			continue
		}
		t := add(&Task{ID: "stage_in_" + j.ID, Type: TaskStageIn, Transfers: ops})
		p.Graph.MustAddEdge(t.ID, j.ID)
		stageIns = append(stageIns, &stageIn{task: t, jobID: j.ID, level: levels[j.ID]})
	}

	// Transfer clustering (Fig. 2): group the stage-in tasks of each
	// workflow level into at most ClusterFactor clustered tasks; within a
	// cluster, transfers execute serially in one session.
	if cfg.ClusterFactor > 1 {
		clusterStageIns(p, stageIns, cfg.ClusterFactor)
	} else {
		// Each staging task is its own (singleton) cluster.
		for _, si := range stageIns {
			si.task.ClusterID = si.task.ID
		}
	}

	// Stage-out tasks for final outputs.
	if cfg.OutputSiteBase != "" {
		for _, j := range w.jobs {
			var ops []TransferOp
			for _, out := range j.Outputs {
				f := w.files[out]
				if f.Output {
					ops = append(ops, TransferOp{
						FileName:  f.Name,
						SourceURL: cfg.siteURL(f.Name),
						DestURL:   cfg.OutputSiteBase + "/" + cfg.WorkflowID + "/" + f.Name,
						SizeBytes: f.SizeBytes,
					})
				}
			}
			if len(ops) == 0 {
				continue
			}
			t := add(&Task{ID: "stage_out_" + j.ID, Type: TaskStageOut, Transfers: ops, ClusterID: "stage_out_" + j.ID})
			p.Graph.MustAddEdge(j.ID, t.ID)
		}
	}

	// Cleanup tasks: delete each site file once every task that reads it
	// (compute consumers; stage-out for outputs) has finished.
	if cfg.Cleanup {
		addCleanupTasks(w, p, cfg)
	}

	// Structure-based priorities on the compute-job DAG, propagated to
	// staging tasks (a staging task inherits its consumer's priority: it
	// is "more important to stage data to a root job" first).
	if cfg.PriorityAlgorithm != "" {
		prios, err := dag.AssignPriorities(jg, cfg.PriorityAlgorithm)
		if err != nil {
			return nil, err
		}
		for _, t := range p.Tasks {
			switch t.Type {
			case TaskCompute:
				t.Priority = prios[t.ID]
			case TaskStageIn:
				// Highest priority among the compute tasks this staging
				// task feeds.
				for _, child := range p.Graph.Children(t.ID) {
					if pr := prios[child]; pr > t.Priority {
						t.Priority = pr
					}
				}
			}
		}
	}

	if !p.Graph.IsAcyclic() {
		return nil, fmt.Errorf("workflow %s: planned graph is cyclic", w.Name)
	}
	return p, nil
}

// clusterStageIns merges the singleton stage-in tasks of each level into at
// most factor clustered tasks. The original tasks are removed from the
// plan; the clustered task adopts their transfers (serially ordered) and
// their graph edges.
func clusterStageIns(p *Plan, stageIns []*stageIn, factor int) {
	byLevel := make(map[int][]*stageIn)
	var lvls []int
	for _, si := range stageIns {
		if _, ok := byLevel[si.level]; !ok {
			lvls = append(lvls, si.level)
		}
		byLevel[si.level] = append(byLevel[si.level], si)
	}
	sort.Ints(lvls)

	// Rebuild the plan without the singleton stage-in tasks.
	removed := make(map[string]bool)
	for _, si := range stageIns {
		removed[si.task.ID] = true
	}
	var kept []*Task
	for _, t := range p.Tasks {
		if !removed[t.ID] {
			kept = append(kept, t)
		}
	}
	oldGraph := p.Graph
	p.Tasks = nil
	p.byID = make(map[string]*Task)
	p.Graph = dag.New()
	for _, t := range kept {
		p.Tasks = append(p.Tasks, t)
		p.byID[t.ID] = t
		p.Graph.MustAddNode(t.ID, t)
	}
	for _, parent := range oldGraph.Nodes() {
		if removed[parent] {
			continue
		}
		for _, child := range oldGraph.Children(parent) {
			if !removed[child] {
				p.Graph.MustAddEdge(parent, child)
			}
		}
	}

	for _, lvl := range lvls {
		group := byLevel[lvl]
		for c := 0; c < factor; c++ {
			var members []*stageIn
			for i, si := range group {
				if i%factor == c {
					members = append(members, si)
				}
			}
			if len(members) == 0 {
				continue
			}
			id := fmt.Sprintf("stage_in_l%d_c%d", lvl, c)
			ct := &Task{ID: id, Type: TaskStageIn, ClusterID: id}
			for _, m := range members {
				ct.Transfers = append(ct.Transfers, m.task.Transfers...)
			}
			p.Tasks = append(p.Tasks, ct)
			p.byID[id] = ct
			p.Graph.MustAddNode(id, ct)
			for _, m := range members {
				// The clustered task feeds every compute job the
				// originals fed.
				for _, child := range oldGraph.Children(m.task.ID) {
					p.Graph.MustAddEdge(id, child)
				}
			}
		}
	}
}

// stageIn pairs a singleton stage-in task with the compute job and level
// it serves, for use by the clustering pass.
type stageIn struct {
	task  *Task
	jobID string
	level int
}

// addCleanupTasks inserts one cleanup task per site file, depending on all
// tasks that read the file.
func addCleanupTasks(w *Workflow, p *Plan, cfg PlanConfig) {
	// readers maps each logical file present at the compute site to the
	// plan tasks that must finish before it can be deleted.
	readers := make(map[string][]string)
	ensure := func(file string) {
		if _, ok := readers[file]; !ok {
			readers[file] = nil
		}
	}
	for _, t := range p.Tasks {
		switch t.Type {
		case TaskCompute:
			for _, in := range t.Job.Inputs {
				ensure(in)
				readers[in] = append(readers[in], t.ID)
			}
			for _, out := range t.Job.Outputs {
				ensure(out)
				readers[out] = append(readers[out], t.ID)
			}
		case TaskStageOut:
			for _, op := range t.Transfers {
				ensure(op.FileName)
				readers[op.FileName] = append(readers[op.FileName], t.ID)
			}
		}
	}
	files := make([]string, 0, len(readers))
	for f := range readers {
		files = append(files, f)
	}
	sort.Strings(files)
	n := 0
	for _, f := range files {
		deps := readers[f]
		if len(deps) == 0 {
			continue
		}
		n++
		t := &Task{
			ID:        fmt.Sprintf("cleanup_%04d_%s", n, f),
			Type:      TaskCleanup,
			Deletions: []string{cfg.siteURL(f)},
		}
		p.Tasks = append(p.Tasks, t)
		p.byID[t.ID] = t
		p.Graph.MustAddNode(t.ID, t)
		for _, d := range deps {
			p.Graph.MustAddEdge(d, t.ID)
		}
	}
}
