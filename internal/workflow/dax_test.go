package workflow

import (
	"bytes"
	"strings"
	"testing"
)

func TestDAXRoundTrip(t *testing.T) {
	w := smallWF(t)
	var buf bytes.Buffer
	if err := w.WriteDAX(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{`<adag name="small">`, `<file name="in1"`, `link="input"`, `link="output"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("DAX missing %q:\n%s", frag, out)
		}
	}
	got, err := ReadDAX(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || len(got.Jobs()) != len(w.Jobs()) {
		t.Fatalf("round trip mismatch: %s %d jobs", got.Name, len(got.Jobs()))
	}
	// Structure preserved: same dependency edges.
	g1, err := w.JobGraph()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := got.JobGraph()
	if err != nil {
		t.Fatal(err)
	}
	for _, parent := range g1.Nodes() {
		for _, child := range g1.Children(parent) {
			if !g2.HasEdge(parent, child) {
				t.Errorf("lost edge %s->%s", parent, child)
			}
		}
	}
	if g1.EdgeCount() != g2.EdgeCount() {
		t.Fatalf("edges %d vs %d", g1.EdgeCount(), g2.EdgeCount())
	}
	// File attributes preserved.
	f, ok := got.File("in1")
	if !ok || f.SizeBytes != 10<<20 || f.SourceURL == "" {
		t.Fatalf("file lost attrs: %+v", f)
	}
	o, _ := got.File("out")
	if !o.Output {
		t.Fatal("output flag lost")
	}
	// Job attributes preserved.
	j, _ := got.Job("A")
	if j.Transformation != "tA" || j.RuntimeSeconds != 10 {
		t.Fatalf("job lost attrs: %+v", j)
	}
}

func TestDAXPlansIdentically(t *testing.T) {
	w := smallWF(t)
	var buf bytes.Buffer
	if err := w.WriteDAX(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDAX(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := w.Plan(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := got.Plan(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []TaskType{TaskCompute, TaskStageIn, TaskStageOut, TaskCleanup} {
		if p1.Count(tt) != p2.Count(tt) {
			t.Errorf("%v: %d vs %d tasks", tt, p1.Count(tt), p2.Count(tt))
		}
	}
}

func TestReadDAXErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not xml at all",
		"unnamed":      `<adag><job id="j"/></adag>`,
		"unknown link": `<adag name="x"><file name="f"/><job id="j"><uses file="f" link="sideways"/></job></adag>`,
		"unknown file": `<adag name="x"><job id="j"><uses file="ghost" link="input"/></job></adag>`,
		"cycle": `<adag name="x">
			<file name="a"/><file name="b"/>
			<job id="j1"><uses file="b" link="input"/><uses file="a" link="output"/></job>
			<job id="j2"><uses file="a" link="input"/><uses file="b" link="output"/></job>
		</adag>`,
	}
	for name, doc := range cases {
		if _, err := ReadDAX(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
