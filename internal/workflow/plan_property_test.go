package workflow

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomWF builds a random layered workflow: each job may consume a fresh
// external input and outputs of earlier jobs.
func randomWF(rng *rand.Rand) *Workflow {
	w := New("prop")
	n := 2 + rng.Intn(20)
	for i := 0; i < n; i++ {
		id := jobID(i)
		var inputs []string
		if rng.Intn(3) > 0 { // most jobs have an external input
			ext := "ext_" + id
			w.MustAddFile(&File{Name: ext, SizeBytes: 1 << 20, SourceURL: "http://src.example.org/" + ext})
			inputs = append(inputs, ext)
		}
		// Consume up to 2 earlier outputs.
		for k := 0; k < rng.Intn(3) && i > 0; k++ {
			p := rng.Intn(i)
			inputs = append(inputs, "out_"+jobID(p))
		}
		out := "out_" + id
		w.MustAddFile(&File{Name: out, SizeBytes: 1 << 20, Output: rng.Intn(5) == 0})
		w.MustAddJob(&Job{ID: id, RuntimeSeconds: 1, Inputs: dedup(inputs), Outputs: []string{out}})
	}
	return w
}

func jobID(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func dedup(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// TestPlanInvariantsProperty checks, over random workflows and planning
// options, the planner's structural invariants:
//
//  1. the planned graph is acyclic;
//  2. every compute job with external inputs is fed by exactly one
//     stage-in task carrying all (and only) its external inputs —
//     clustered or not;
//  3. with cleanup on, every file used at the compute site has exactly
//     one cleanup task, ordered after all its readers;
//  4. every workflow output has a stage-out task when an output site is
//     configured.
func TestPlanInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWF(rng)
		cfg := PlanConfig{
			WorkflowID:      "prop",
			ComputeSiteBase: "file://site.example.org/scratch",
			OutputSiteBase:  "file://store.example.org/out",
			Cleanup:         rng.Intn(2) == 0,
			ClusterFactor:   rng.Intn(4), // 0..3
		}
		p, err := w.Plan(cfg)
		if err != nil {
			return false
		}
		if !p.Graph.IsAcyclic() {
			return false
		}
		// (2) staged files reach their consumers.
		stagedFor := map[string]map[string]bool{} // jobID -> file set
		for _, task := range p.TasksOf(TaskStageIn) {
			for _, child := range p.Graph.Children(task.ID) {
				ct, ok := p.Task(child)
				if !ok || ct.Type != TaskCompute {
					return false
				}
				if stagedFor[child] == nil {
					stagedFor[child] = map[string]bool{}
				}
				for _, op := range task.Transfers {
					stagedFor[child][op.FileName] = true
				}
			}
		}
		for _, j := range w.Jobs() {
			for _, in := range j.Inputs {
				file, _ := w.File(in)
				if file.IsExternalInput() {
					if !stagedFor[j.ID][in] {
						return false
					}
				}
			}
		}
		// (3) cleanup count and ordering.
		if cfg.Cleanup {
			seen := map[string]bool{}
			for _, task := range p.TasksOf(TaskCleanup) {
				for _, url := range task.Deletions {
					if seen[url] {
						return false // duplicate cleanup
					}
					seen[url] = true
				}
				if len(p.Graph.Parents(task.ID)) == 0 {
					return false // cleanup with no readers
				}
			}
		}
		// (4) outputs staged out.
		outTasks := p.TasksOf(TaskStageOut)
		wantOutputs := 0
		for _, file := range w.Files() {
			if file.Output && w.Producer(file.Name) != "" {
				wantOutputs++
			}
		}
		gotOutputs := 0
		for _, task := range outTasks {
			gotOutputs += len(task.Transfers)
			if !strings.HasPrefix(task.ID, "stage_out_") {
				return false
			}
		}
		return gotOutputs == wantOutputs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDAXRoundTripProperty: random workflows survive DAX serialization
// with identical structure.
func TestDAXRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWF(rng)
		var buf strings.Builder
		if err := w.WriteDAX(&buf); err != nil {
			return false
		}
		got, err := ReadDAX(strings.NewReader(buf.String()))
		if err != nil {
			return false
		}
		if len(got.Jobs()) != len(w.Jobs()) {
			return false
		}
		g1, err1 := w.JobGraph()
		g2, err2 := got.JobGraph()
		if err1 != nil || err2 != nil {
			return false
		}
		if g1.EdgeCount() != g2.EdgeCount() {
			return false
		}
		for _, id := range g1.Nodes() {
			for _, c := range g1.Children(id) {
				if !g2.HasEdge(id, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
