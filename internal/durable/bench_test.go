package durable

import (
	"fmt"
	"sync/atomic"
	"testing"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// benchAdvise drives a full advise → report → cleanup-advise →
// cleanup-report cycle per iteration so each op lands one WAL record and
// Policy Memory stays bounded.
func benchAdvise(b *testing.B, svc *policy.Service) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := fmt.Sprintf("gsiftp://src.example.org/f%d", i)
		dst := fmt.Sprintf("file://dst.example.org/scratch/f%d", i)
		adv, err := svc.AdviseTransfers([]policy.TransferSpec{{
			RequestID:  fmt.Sprintf("r%d", i),
			WorkflowID: "bench",
			SourceURL:  src,
			DestURL:    dst,
		}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.ReportTransfers(policy.CompletionReport{
			TransferIDs: []string{adv.Transfers[0].ID},
		}); err != nil {
			b.Fatal(err)
		}
		cadv, err := svc.AdviseCleanups([]policy.CleanupSpec{{
			RequestID: fmt.Sprintf("c%d", i), WorkflowID: "bench", FileURL: dst,
		}})
		if err != nil {
			b.Fatal(err)
		}
		if len(cadv.Cleanups) == 1 {
			if _, err := svc.ReportCleanups(policy.CleanupReport{
				CleanupIDs: []string{cadv.Cleanups[0].ID},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func newBenchService(b *testing.B) *policy.Service {
	b.Helper()
	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return svc
}

// BenchmarkWALAdviseBaseline measures the cycle with no mutation log
// attached — the pure in-memory cost every durable variant adds to.
func BenchmarkWALAdviseBaseline(b *testing.B) {
	benchAdvise(b, newBenchService(b))
}

// BenchmarkWALAdviseNoFsync logs every mutation but leaves durability to
// the OS page cache (crash-consistent, not power-fail durable).
func BenchmarkWALAdviseNoFsync(b *testing.B) {
	svc := newBenchService(b)
	ps, _, err := OpenPolicyStore(b.TempDir(), svc, Options{Fsync: false})
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	benchAdvise(b, svc)
}

// BenchmarkWALAdviseFsync waits for fsync before acknowledging each
// mutation — the group-commit path under a serial (worst-case) load.
func BenchmarkWALAdviseFsync(b *testing.B) {
	svc := newBenchService(b)
	ps, _, err := OpenPolicyStore(b.TempDir(), svc, Options{Fsync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	benchAdvise(b, svc)
}

// BenchmarkWALRecovery measures boot-time recovery (open + full WAL
// replay through the rule engine) as a function of log length — the
// number EXPERIMENTS.md reports, and the cost -snapshot-every bounds.
func BenchmarkWALRecovery(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			svc := newBenchService(b)
			ps, _, err := OpenPolicyStore(dir, svc, Options{Fsync: false})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n/2; i++ {
				adv, err := svc.AdviseTransfers([]policy.TransferSpec{{
					RequestID:  fmt.Sprintf("r%d", i),
					WorkflowID: "bench",
					SourceURL:  fmt.Sprintf("gsiftp://src.example.org/f%d", i),
					DestURL:    fmt.Sprintf("file://dst.example.org/scratch/f%d", i),
				}})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := svc.ReportTransfers(policy.CompletionReport{
					TransferIDs: []string{adv.Transfers[0].ID},
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := ps.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc2 := newBenchService(b)
				ps2, stats, err := OpenPolicyStore(dir, svc2, Options{Fsync: false})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Replayed != n {
					b.Fatalf("replayed %d, want %d", stats.Replayed, n)
				}
				ps2.Close()
			}
		})
	}
}

// BenchmarkWALAdviseFsyncParallel shows group commit amortising fsyncs
// across concurrent clients: the reported fsyncs/append ratio drops well
// below 1 because one leader's fsync covers every record buffered behind
// it.
func BenchmarkWALAdviseFsyncParallel(b *testing.B) {
	svc := newBenchService(b)
	m := obs.NewWALMetrics(obs.NewRegistry())
	ps, _, err := OpenPolicyStore(b.TempDir(), svc, Options{Fsync: true, Metrics: m})
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	b.ReportAllocs()
	// Eight client goroutines per processor: group commit needs real
	// concurrency to batch, and the grid deployments this models run many
	// simultaneous transfer tools against one service.
	b.SetParallelism(8)
	b.ResetTimer()
	var n int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&n, 1)
			adv, err := svc.AdviseTransfers([]policy.TransferSpec{{
				RequestID:  fmt.Sprintf("r%d", i),
				WorkflowID: "bench",
				SourceURL:  fmt.Sprintf("gsiftp://src.example.org/p%d", i),
				DestURL:    fmt.Sprintf("file://dst.example.org/scratch/p%d", i),
			}})
			if err != nil {
				b.Fatal(err)
			}
			// Report failure so Policy Memory stays bounded and the
			// measurement isolates WAL cost rather than fact-base growth.
			if _, err := svc.ReportTransfers(policy.CompletionReport{
				FailedIDs: []string{adv.Transfers[0].ID},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if appends := m.Appends.Value(); appends > 0 {
		b.ReportMetric(m.Fsyncs.Value()/appends, "fsyncs/append")
	}
}
