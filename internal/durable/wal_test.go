package durable

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTestWAL(t *testing.T, dir string, replayFrom uint64, replay func(Record) error) *wal {
	t.Helper()
	w, err := openWAL(dir, walOptions{Fsync: true, ReplayFrom: replayFrom}, replay)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func appendN(t *testing.T, w *wal, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		data, _ := json.Marshal(map[string]int{"i": i})
		seq, err := w.Append("op", data)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(seq); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0, nil)
	appendN(t, w, 1, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []uint64
	w2 := openTestWAL(t, dir, 0, func(rec Record) error {
		if rec.Op != "op" {
			t.Errorf("op = %q", rec.Op)
		}
		got = append(got, rec.Seq)
		return nil
	})
	defer w2.Close()
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("replayed seqs = %v", got)
	}
	if w2.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d", w2.LastSeq())
	}
	// Appends continue from the recovered position.
	seq, err := w2.Append("op", nil)
	if err != nil || seq != 6 {
		t.Fatalf("next append = %d, %v", seq, err)
	}
}

func TestWALToleratesTornTail(t *testing.T) {
	for name, garbage := range map[string][]byte{
		"partial-header": {0x10},
		"partial-body":   {0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02},
		"bad-crc": func() []byte {
			// A full frame whose checksum does not match its body.
			b := []byte{4, 0, 0, 0, 0, 0, 0, 0, 'j', 'u', 'n', 'k'}
			return b
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w := openTestWAL(t, dir, 0, nil)
			appendN(t, w, 1, 3)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			segs, err := listSegments(dir)
			if err != nil || len(segs) != 1 {
				t.Fatalf("segments = %v, %v", segs, err)
			}
			f, err := os.OpenFile(segs[0].path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(garbage)
			f.Close()

			n := 0
			w2 := openTestWAL(t, dir, 0, func(Record) error { n++; return nil })
			if n != 3 || w2.LastSeq() != 3 {
				t.Fatalf("recovered %d records, LastSeq=%d", n, w2.LastSeq())
			}
			// The tear was truncated: new appends land cleanly and a third
			// open sees exactly 4 records.
			appendN(t, w2, 4, 4)
			w2.Close()
			n = 0
			w3 := openTestWAL(t, dir, 0, func(Record) error { n++; return nil })
			defer w3.Close()
			if n != 4 {
				t.Fatalf("after re-append, recovered %d records", n)
			}
		})
	}
}

func TestWALRotateCompacts(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0, nil)
	appendN(t, w, 1, 10)
	if err := w.Rotate(10); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].first != 11 {
		t.Fatalf("segments after rotate = %+v", segs)
	}
	appendN(t, w, 11, 12)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery with ReplayFrom = snapshot seq sees only the tail.
	var got []uint64
	w2 := openTestWAL(t, dir, 10, func(rec Record) error { got = append(got, rec.Seq); return nil })
	defer w2.Close()
	if len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Fatalf("tail replay = %v", got)
	}
}

func TestWALDetectsGap(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0, nil)
	appendN(t, w, 1, 6)
	if err := w.Rotate(3); err != nil { // keeps the old segment? no: covered fully -> removed
		t.Fatal(err)
	}
	w.Close()
	// The snapshot at 3 was never written; reopening with ReplayFrom 0
	// must notice records 1..6 are gone (segment deleted) only if they
	// are: Rotate(3) retains the segment because it holds records 4..6.
	n := 0
	w2, err := openWAL(dir, walOptions{ReplayFrom: 0}, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("replayed %d records, want 6 (segment with live tail retained)", n)
	}
	w2.Close()

	// A genuinely missing prefix is corruption: removing the first
	// segment leaves a gap versus ReplayFrom 0.
	w3, _ := openWAL(dir, walOptions{ReplayFrom: 6}, nil)
	appendN(t, w3, 7, 8)
	w3.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("segments = %+v", segs)
	}
	os.Remove(segs[0].path)
	if _, err := openWAL(dir, walOptions{ReplayFrom: 0}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWALDamageBeforeTailIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0, nil)
	appendN(t, w, 1, 3)
	if err := w.Rotate(0); err != nil { // rotate without compaction: two segments
		t.Fatal(err)
	}
	appendN(t, w, 4, 5)
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) != 2 {
		t.Fatalf("segments = %+v", segs)
	}
	// Corrupt the FIRST segment's tail: damage not at the log tail.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openWAL(dir, walOptions{ReplayFrom: 0}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0, nil)
	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq, err := w.Append("op", nil)
				if err == nil {
					err = w.Sync(seq)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := w.LastSeq(); got != goroutines*each {
		t.Fatalf("LastSeq = %d, want %d", got, goroutines*each)
	}
	w.Close()
	n := 0
	w2 := openTestWAL(t, dir, 0, func(Record) error { n++; return nil })
	defer w2.Close()
	if n != goroutines*each {
		t.Fatalf("recovered %d records", n)
	}
}

func TestSnapshotFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := writeSnapshotFile(dir, 3, []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshotFile(dir, 7, []byte(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	// Damage the newest snapshot; loading falls back to seq 3.
	path := snapshotPath(dir, 7)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)
	seq, _, state, err := loadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || string(state) != `{"a":1}` {
		t.Fatalf("fallback snapshot = %d %q", seq, state)
	}
	// Leftover .tmp files are ignored.
	os.WriteFile(filepath.Join(dir, "snap-00000000000000000009.json.tmp"), []byte("junk"), 0o644)
	if seq, _, _, _ := loadLatestSnapshot(dir); seq != 3 {
		t.Fatalf("tmp file considered: seq = %d", seq)
	}
}
