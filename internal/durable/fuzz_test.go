package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"
)

// FuzzWALRecord feeds arbitrary bytes to the WAL record scanner. Whatever
// the input — torn headers, lying length prefixes, checksum mismatches,
// valid frames wrapping broken JSON — the scanner must not panic, must
// never report a negative or overshooting truncation offset, and every
// record it does accept must round-trip through the frame encoder to the
// exact bytes it was parsed from.
func FuzzWALRecord(f *testing.F) {
	frame := func(recs ...Record) []byte {
		var buf bytes.Buffer
		for i := range recs {
			if _, err := writeRecord(&buf, &recs[i]); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}

	// Seed corpus: well-formed logs, an empty input, a torn tail, a bad
	// checksum, a length prefix past maxRecordSize, and valid frames
	// around non-record JSON.
	f.Add([]byte{})
	f.Add(frame(Record{Seq: 1, Op: "advise_transfers", Data: json.RawMessage(`[{"requestId":"r1"}]`)}))
	f.Add(frame(
		Record{Seq: 1, Op: "set_threshold", Data: json.RawMessage(`{"max":3}`)},
		Record{Seq: 2, Op: "report_transfers", Data: json.RawMessage(`{"transferIds":["t-1"]}`)},
	))
	torn := frame(Record{Seq: 3, Op: "advise_cleanups"})
	f.Add(torn[:len(torn)-2])
	badSum := frame(Record{Seq: 4, Op: "import_state"})
	badSum[recordHeaderSize] ^= 0xff
	f.Add(badSum)
	lying := make([]byte, recordHeaderSize)
	binary.LittleEndian.PutUint32(lying[0:4], maxRecordSize+1)
	f.Add(lying)
	notJSON := []byte("not json at all")
	withFrame := make([]byte, recordHeaderSize)
	binary.LittleEndian.PutUint32(withFrame[0:4], uint32(len(notJSON)))
	binary.LittleEndian.PutUint32(withFrame[4:8], crc32.ChecksumIEEE(notJSON))
	f.Add(append(withFrame, notJSON...))

	f.Fuzz(func(t *testing.T, data []byte) {
		var seen []Record
		valid, n, err := scanRecords(bytes.NewReader(data), func(rec Record) error {
			seen = append(seen, rec)
			return nil
		})
		if err != nil {
			t.Fatalf("scanRecords returned an error for corrupt input (must truncate silently): %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("truncation offset %d outside input of %d bytes", valid, len(data))
		}
		if n != len(seen) {
			t.Fatalf("scanRecords reported %d records, delivered %d", n, len(seen))
		}
		// Every accepted record must survive a canonical re-frame + re-scan
		// (the recovery path: what Append wrote, Open reads back).
		var buf bytes.Buffer
		for i := range seen {
			if _, err := writeRecord(&buf, &seen[i]); err != nil {
				t.Fatalf("re-encode accepted record %d: %v", i, err)
			}
		}
		var again []Record
		revalid, ren, err := scanRecords(bytes.NewReader(buf.Bytes()), func(rec Record) error {
			again = append(again, rec)
			return nil
		})
		if err != nil || ren != n || revalid != int64(buf.Len()) {
			t.Fatalf("re-scan of re-framed records diverged: records %d->%d, offset %d/%d, err %v",
				n, ren, revalid, buf.Len(), err)
		}
		// Compare marshaled forms: Marshal compacts RawMessage whitespace,
		// so this is equality up to JSON canonicalization.
		j1, err1 := json.Marshal(seen)
		j2, err2 := json.Marshal(again)
		if err1 != nil || err2 != nil || !bytes.Equal(j1, j2) {
			t.Fatalf("records changed across frame round-trip:\n  first  %s (%v)\n  second %s (%v)", j1, err1, j2, err2)
		}
		// A re-scan of the accepted on-disk prefix — what reopening a
		// truncated segment does — must accept exactly the same records.
		prevalid, pren, err := scanRecords(bytes.NewReader(data[:valid]), func(Record) error { return nil })
		if err != nil || prevalid != valid || pren != n {
			t.Fatalf("re-scan of truncated prefix diverged: offset %d->%d, records %d->%d, err %v",
				valid, prevalid, n, pren, err)
		}
	})
}
