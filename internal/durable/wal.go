package durable

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"policyflow/internal/obs"
)

// walOptions configures a segmented WAL.
type walOptions struct {
	// Fsync forces an fsync(2) before Sync reports a record durable.
	// Without it, Sync only flushes to the OS (surviving a process crash
	// but not a machine crash).
	Fsync bool
	// ReplayFrom skips records with Seq <= ReplayFrom during open replay
	// (they are covered by a snapshot).
	ReplayFrom uint64
	// Metrics, when non-nil, receives append/fsync/byte counters.
	Metrics *obs.WALMetrics
	// Tracer, when non-nil, receives a "wal.fsync" span for every
	// group-commit fsync the leader performs, annotated with the highest
	// sequence the batch made durable.
	Tracer obs.Tracer
}

// walSegment is one on-disk log file; First is the sequence number of the
// first record it may contain (the file name encodes it).
type walSegment struct {
	path  string
	first uint64
}

// wal is an append-only, segmented write-ahead log. Appends buffer under
// mu; Sync makes records durable with group commit — concurrent callers
// elect one leader that flushes and fsyncs once for the whole batch, so N
// concurrent commits cost one fsync, not N.
type wal struct {
	dir  string
	opts walOptions

	mu      sync.Mutex // append path: f, bw, nextSeq, segs, closed
	f       *os.File
	bw      *bufio.Writer
	nextSeq uint64
	segs    []walSegment
	closed  bool

	syncMu sync.Mutex
	syncC  *sync.Cond
	token  bool   // a leader (fsync or rotation) holds the commit token
	synced uint64 // highest seq Sync has made durable
	err    error  // sticky fatal write/sync error
}

// errClosed reports use of a closed WAL.
var errClosed = errors.New("durable: wal is closed")

func segmentPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%020d.log", first))
}

// listSegments returns the dir's WAL segments in ascending first-seq order.
func listSegments(dir string) ([]walSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range entries {
		name := e.Name()
		var first uint64
		if _, err := fmt.Sscanf(name, "wal-%d.log", &first); err != nil || e.IsDir() {
			continue
		}
		segs = append(segs, walSegment{path: filepath.Join(dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// openWAL opens (creating if empty) the WAL in dir and replays every
// record with Seq > opts.ReplayFrom through replay, in order. A torn tail
// on the final segment is truncated silently; damage anywhere else, or a
// gap in the sequence numbering, is ErrCorrupt.
func openWAL(dir string, opts walOptions, replay func(Record) error) (*wal, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &wal{dir: dir, opts: opts, segs: segs}
	w.syncC = sync.NewCond(&w.syncMu)

	prev := uint64(0) // last record seq seen across segments
	var lastValid int64
	for i, seg := range segs {
		f, err := os.Open(seg.path)
		if err != nil {
			return nil, err
		}
		valid, _, scanErr := scanRecords(bufio.NewReader(f), func(rec Record) error {
			if prev == 0 {
				if rec.Seq > opts.ReplayFrom+1 {
					return fmt.Errorf("%w: %s starts at seq %d but snapshot covers only up to %d",
						ErrCorrupt, seg.path, rec.Seq, opts.ReplayFrom)
				}
			} else if rec.Seq != prev+1 {
				return fmt.Errorf("%w: %s: seq %d follows %d", ErrCorrupt, seg.path, rec.Seq, prev)
			}
			prev = rec.Seq
			if rec.Seq > opts.ReplayFrom && replay != nil {
				if err := replay(rec); err != nil {
					return err
				}
			}
			return nil
		})
		size, _ := f.Seek(0, io.SeekEnd)
		f.Close()
		if scanErr != nil {
			return nil, scanErr
		}
		if i < len(segs)-1 && valid < size {
			return nil, fmt.Errorf("%w: %s is damaged before the log tail", ErrCorrupt, seg.path)
		}
		lastValid = valid
	}
	w.nextSeq = opts.ReplayFrom
	if prev > w.nextSeq {
		w.nextSeq = prev
	}

	if len(segs) == 0 {
		if err := w.createSegmentLocked(w.nextSeq + 1); err != nil {
			return nil, err
		}
	} else {
		// Reopen the active segment for appending, truncating any torn
		// tail so new records never interleave with garbage.
		active := segs[len(segs)-1]
		f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(lastValid); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(lastValid, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		w.f = f
		w.bw = bufio.NewWriter(f)
	}
	w.synced = w.nextSeq
	return w, nil
}

// createSegmentLocked makes a fresh segment whose first record will be
// seq first, pointing the append path at it. Callers hold w.mu (or own the
// WAL exclusively during open).
func (w *wal) createSegmentLocked(first uint64) error {
	f, err := os.OpenFile(segmentPath(w.dir, first), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	if w.bw == nil {
		w.bw = bufio.NewWriter(f)
	} else {
		w.bw.Reset(f)
	}
	w.segs = append(w.segs, walSegment{path: f.Name(), first: first})
	return syncDir(w.dir)
}

// Append assigns the next sequence number and buffers the framed record.
// The record is not durable until Sync(seq) returns.
func (w *wal) Append(op string, data []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errClosed
	}
	seq := w.nextSeq + 1
	n, err := writeRecord(w.bw, &Record{Seq: seq, Op: op, Data: data})
	if err != nil {
		w.fail(err)
		return 0, err
	}
	w.nextSeq = seq
	if m := w.opts.Metrics; m != nil {
		m.Appends.Inc()
		m.Bytes.Add(float64(n))
	}
	return seq, nil
}

// Sync blocks until the record at seq is durable. Concurrent callers are
// group-committed: one leader flushes and fsyncs the whole buffered batch,
// the rest wait on the result.
func (w *wal) Sync(seq uint64) error {
	if seq == 0 {
		return nil
	}
	for {
		lead, err := w.acquireToken(seq)
		if err != nil {
			return err
		}
		if !lead {
			// Another leader made seq durable while we waited.
			return nil
		}
		w.mu.Lock()
		end := w.nextSeq
		err = w.bw.Flush()
		f := w.f
		w.mu.Unlock()
		if err == nil && w.opts.Fsync {
			start := time.Now()
			err = f.Sync()
			if m := w.opts.Metrics; m != nil {
				m.Fsyncs.Inc()
			}
			if tr := w.opts.Tracer; tr != nil {
				// The leader's fsync covers a whole batch of concurrent
				// commits, so the span is a root of its own trace; request
				// traces join it through the WALSeq annotation.
				sc := obs.NewSpanContext()
				tr.Emit(obs.Event{Type: obs.EventSpan, Name: "wal.fsync",
					TraceID: sc.TraceID, SpanID: sc.SpanID, WALSeq: end,
					DurationNanos: time.Since(start).Nanoseconds()})
			}
		}
		w.releaseToken(end, err)
		if err != nil {
			return err
		}
		if end >= seq {
			return nil
		}
	}
}

// acquireToken waits until the caller holds the commit token (lead=true)
// or, for seq != 0, until another leader has already made seq durable
// (lead=false, no token held). A sticky error aborts immediately.
func (w *wal) acquireToken(seq uint64) (lead bool, err error) {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for {
		if w.err != nil {
			return false, w.err
		}
		if seq != 0 && w.synced >= seq {
			return false, nil
		}
		if !w.token {
			w.token = true
			return true, nil
		}
		w.syncC.Wait()
	}
}

// releaseToken publishes a leader's result: on success records up to end
// are durable; on failure the error becomes sticky.
func (w *wal) releaseToken(end uint64, err error) {
	w.syncMu.Lock()
	if err != nil {
		w.err = err
	} else if end > w.synced {
		w.synced = end
	}
	w.token = false
	w.syncC.Broadcast()
	w.syncMu.Unlock()
}

// fail records a sticky fatal error from the append path. Callers hold w.mu.
func (w *wal) fail(err error) {
	w.syncMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.syncC.Broadcast()
	w.syncMu.Unlock()
}

// acquireToken(0) variants below serialize rotation and flushing against
// in-flight group commits.

// Flush pushes buffered records to the OS without waiting for fsync —
// enough for readers of the segment files to observe them.
func (w *wal) Flush() error {
	if _, err := w.acquireToken(0); err != nil {
		return err
	}
	w.mu.Lock()
	err := w.bw.Flush()
	w.mu.Unlock()
	w.releaseToken(0, err)
	return err
}

// Rotate seals the active segment and starts a new one, deleting segments
// whose records are all covered by a snapshot at seq upTo. The sealed
// segment is flushed (and fsynced when configured) first.
func (w *wal) Rotate(upTo uint64) error {
	if _, err := w.acquireToken(0); err != nil {
		return err
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.releaseToken(0, nil)
		return errClosed
	}
	end := w.nextSeq
	err := w.bw.Flush()
	if err == nil && w.opts.Fsync {
		err = w.f.Sync()
	}
	if err != nil {
		w.mu.Unlock()
		w.releaseToken(0, err)
		return err
	}
	old := w.f
	if err := w.createSegmentLocked(w.nextSeq + 1); err != nil {
		w.mu.Unlock()
		w.releaseToken(0, err)
		return err
	}
	old.Close()
	// A segment is removable when its successor starts at or before the
	// snapshot horizon — then every record it holds is <= upTo.
	var keep []walSegment
	for i, seg := range w.segs {
		if i+1 < len(w.segs) && w.segs[i+1].first <= upTo+1 {
			os.Remove(seg.path)
			continue
		}
		keep = append(keep, seg)
	}
	w.segs = keep
	dirErr := syncDir(w.dir)
	w.mu.Unlock()
	w.releaseToken(end, dirErr)
	return dirErr
}

// ReadAfter returns every durable record with Seq > after, in order. It
// flushes buffered appends first so the file scan observes them.
func (w *wal) ReadAfter(after uint64) ([]Record, error) {
	if err := w.Flush(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	segs := append([]walSegment(nil), w.segs...)
	w.mu.Unlock()
	var out []Record
	for _, seg := range segs {
		f, err := os.Open(seg.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // compacted concurrently
			}
			return nil, err
		}
		_, _, scanErr := scanRecords(bufio.NewReader(f), func(rec Record) error {
			if rec.Seq > after {
				out = append(out, rec)
			}
			return nil
		})
		f.Close()
		if scanErr != nil {
			return nil, scanErr
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i].Seq != out[i-1].Seq+1 {
			return nil, fmt.Errorf("%w: gap between seq %d and %d", ErrCorrupt, out[i-1].Seq, out[i].Seq)
		}
	}
	return out, nil
}

// LastSeq returns the sequence number of the last appended record.
func (w *wal) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Close flushes and (when configured) fsyncs outstanding records, then
// closes the active segment. Further appends fail.
func (w *wal) Close() error {
	if _, err := w.acquireToken(0); err != nil {
		// A sticky error does not block closing the file handle.
		w.mu.Lock()
		defer w.mu.Unlock()
		if !w.closed {
			w.closed = true
			w.f.Close()
		}
		return err
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.releaseToken(0, nil)
		return nil
	}
	end := w.nextSeq
	err := w.bw.Flush()
	if err == nil && w.opts.Fsync {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.closed = true
	w.mu.Unlock()
	w.releaseToken(end, err)
	return err
}

// syncDir fsyncs a directory so entry creation/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
