package durable

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Snapshots are JSON envelopes written atomically (temp file, fsync,
// rename) and self-validating: the envelope carries a CRC-32 of the state
// payload, so a damaged snapshot is skipped in favor of an older one.
type snapshotEnvelope struct {
	Seq uint64 `json:"seq"`
	CRC uint32 `json:"crc"`
	// Epoch is the fencing epoch embedded in the state payload, lifted
	// into the header so archives and recovery can report it without
	// decoding the full state.
	Epoch uint64          `json:"epoch,omitempty"`
	State json.RawMessage `json:"state"`
}

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%020d.json", seq))
}

// writeSnapshotFile atomically persists state as the snapshot at seq.
func writeSnapshotFile(dir string, seq uint64, state []byte) error {
	var hdr struct {
		Epoch uint64 `json:"epoch"`
	}
	// Best-effort lift: a state payload without an epoch field (or not
	// JSON-object-shaped) leaves the header epoch at 0.
	json.Unmarshal(state, &hdr)
	data, err := json.Marshal(&snapshotEnvelope{
		Seq: seq, CRC: crc32.ChecksumIEEE(state), Epoch: hdr.Epoch, State: state,
	})
	if err != nil {
		return fmt.Errorf("durable: encode snapshot %d: %w", seq, err)
	}
	path := snapshotPath(dir, seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// listSnapshots returns the snapshot sequence numbers present in dir,
// ascending. Leftover .tmp files from interrupted writes are ignored.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "snap-%d.json", &seq); n != 1 || err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// loadLatestSnapshot returns the newest snapshot in dir whose checksum
// validates — its log position, header epoch and state payload — or
// (0, 0, nil, nil) when none exists. Invalid snapshots are skipped,
// falling back to older ones.
func loadLatestSnapshot(dir string) (uint64, uint64, []byte, error) {
	seqs, err := listSnapshots(dir)
	if err != nil {
		return 0, 0, nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(snapshotPath(dir, seqs[i]))
		if err != nil {
			continue
		}
		var env snapshotEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			continue
		}
		if env.Seq != seqs[i] || crc32.ChecksumIEEE(env.State) != env.CRC {
			continue
		}
		return env.Seq, env.Epoch, env.State, nil
	}
	return 0, 0, nil, nil
}

// pruneSnapshots removes all but the newest keep snapshots.
func pruneSnapshots(dir string, keep int) {
	seqs, err := listSnapshots(dir)
	if err != nil || len(seqs) <= keep {
		return
	}
	for _, seq := range seqs[:len(seqs)-keep] {
		os.Remove(snapshotPath(dir, seq))
	}
}
