// Package durable persists Policy Memory across process crashes: an
// append-only write-ahead log of mutation commands (length-prefixed,
// CRC-checksummed JSON records with monotonic sequence numbers), periodic
// snapshots of the full state, log compaction at snapshot boundaries, and
// a recovery path that loads the latest valid snapshot and replays the WAL
// tail — tolerating a torn final record from a mid-write crash. The policy
// service being deterministic, logging the *requests* (advise, report,
// threshold, restore) is sufficient: replaying them in order reproduces
// Policy Memory exactly, including assigned transfer and group IDs.
//
// The package is stdlib-only, like the rest of the reproduction. The
// generic layers (Record, WAL, Store) know nothing about policy; the
// PolicyStore type binds a Store to a *policy.Service.
package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record is one logged mutation command. Data holds the operation's
// request payload exactly as submitted (a transfer-spec list, a completion
// report, ...); Op names the policy operation that consumes it.
type Record struct {
	Seq  uint64          `json:"seq"`
	Op   string          `json:"op"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Record framing on disk: a fixed header of the body length (uint32,
// little endian) and the body's CRC-32 (IEEE), followed by the JSON body.
// A record is valid only when the full body is present and its checksum
// matches, so a crash mid-write leaves a detectably torn tail.
const recordHeaderSize = 8

// maxRecordSize bounds a single record body; a length prefix beyond it is
// treated as corruption rather than allocated.
const maxRecordSize = 64 << 20

// ErrCorrupt reports a WAL segment damaged somewhere other than its tail
// (a tear at the tail is expected after a crash and handled silently).
var ErrCorrupt = errors.New("durable: corrupt WAL segment")

// writeRecord frames and writes one record, returning the bytes written.
func writeRecord(w io.Writer, rec *Record) (int, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("durable: encode record %d: %w", rec.Seq, err)
	}
	if len(body) > maxRecordSize {
		return 0, fmt.Errorf("durable: record %d exceeds %d bytes", rec.Seq, maxRecordSize)
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return recordHeaderSize, err
	}
	return recordHeaderSize + len(body), nil
}

// scanRecords reads framed records from r until EOF or damage, calling fn
// for each valid record in order. It returns the byte offset of the end of
// the last valid record — the truncation point for reopening the segment —
// and the number of valid records. Damage at the tail (short header, short
// body, checksum or JSON mismatch on the final frame) ends the scan
// without error; fn errors abort the scan and are returned.
func scanRecords(r io.Reader, fn func(Record) error) (valid int64, n int, err error) {
	br := &byteCounter{r: r}
	for {
		var hdr [recordHeaderSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			// Clean EOF or a torn header: everything before it is good.
			return valid, n, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordSize {
			return valid, n, nil
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return valid, n, nil
		}
		if crc32.ChecksumIEEE(body) != sum {
			return valid, n, nil
		}
		var rec Record
		if err := json.Unmarshal(body, &rec); err != nil {
			return valid, n, nil
		}
		if err := fn(rec); err != nil {
			return valid, n, err
		}
		valid = br.n
		n++
	}
}

// byteCounter counts bytes consumed from r.
type byteCounter struct {
	r io.Reader
	n int64
}

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}
