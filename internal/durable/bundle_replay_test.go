package durable

import (
	"bytes"
	"testing"

	"policyflow/internal/policy"
)

const replayBundleDoc = `{
  "schemaVersion": 1,
  "version": "durable-v1",
  "algorithm": "greedy",
  "defaultStreams": 2,
  "minStreams": 1,
  "defaultThreshold": 9,
  "clusterFactor": 1,
  "pairThresholds": [
    {"sourceHost": "src.example.org", "destHost": "dst.example.org", "max": 4}
  ]
}`

// TestBundleActivationReplaysPastTornCrash: a bundle activation is a
// WAL-logged mutation carrying the full document, so a crash that tears
// the record written after it must recover the activation — same active
// version, same tunables, byte-identical Policy Memory — without the
// original bundle file existing anywhere on the replica.
func TestBundleActivationReplaysPastTornCrash(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t)
	ps, _, err := OpenPolicyStore(dir, svc, Options{Fsync: false})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := svc.AdviseTransfers([]policy.TransferSpec{spec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	info, err := svc.ActivateBundle([]byte(replayBundleDoc))
	if err != nil {
		t.Fatalf("ActivateBundle: %v", err)
	}
	if !info.Active || info.Version != "durable-v1" {
		t.Fatalf("activation info %+v", info)
	}
	// More logged work after the activation, then a torn crash.
	if _, err := svc.AdviseTransfers([]policy.TransferSpec{spec(2, "wf2")}); err != nil {
		t.Fatal(err)
	}
	before := dumpJSON(t, svc)
	beforeTun := svc.Tunables()
	_ = ps // crash: no Close
	tearWALTail(t, dir)

	svc2 := newService(t)
	ps2, stats, err := OpenPolicyStore(dir, svc2, Options{Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer ps2.Close()
	if stats.Replayed != 3 {
		t.Fatalf("replayed %d records, want 3 (advise, activate, advise)", stats.Replayed)
	}
	after := dumpJSON(t, svc2)
	if !bytes.Equal(before, after) {
		t.Fatalf("state diverged after torn-crash recovery:\n before %s\n after  %s", before, after)
	}
	afterTun := svc2.Tunables()
	if afterTun != beforeTun {
		t.Fatalf("tunables diverged after recovery:\n before %+v\n after  %+v", beforeTun, afterTun)
	}
	if afterTun.Version != "durable-v1" || afterTun.DefaultThreshold != 9 {
		t.Fatalf("recovered tunables %+v, want durable-v1 threshold 9", afterTun)
	}
	// The rollback target survives replay too: rolling back on the
	// recovered replica restores the bootstrap bundle.
	rb, err := svc2.RollbackBundle()
	if err != nil {
		t.Fatalf("RollbackBundle after recovery: %v", err)
	}
	if rb.Version != policy.BootstrapBundleVersion {
		t.Fatalf("post-recovery rollback landed on %q", rb.Version)
	}
}

// TestRollbackReplaysAcrossRestart: rollback is logged as a plain
// activation of the previous document, so restart converges on the
// rolled-back state.
func TestRollbackReplaysAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t)
	if _, _, err := OpenPolicyStore(dir, svc, Options{Fsync: false}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ActivateBundle([]byte(replayBundleDoc)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RollbackBundle(); err != nil {
		t.Fatal(err)
	}
	before := dumpJSON(t, svc)

	svc2 := newService(t)
	ps2, stats, err := OpenPolicyStore(dir, svc2, Options{Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer ps2.Close()
	if stats.Replayed != 2 {
		t.Fatalf("replayed %d records, want 2 (activate, rollback)", stats.Replayed)
	}
	if !bytes.Equal(before, dumpJSON(t, svc2)) {
		t.Fatal("state diverged after replaying a rollback")
	}
	if got := svc2.Tunables().Version; got != policy.BootstrapBundleVersion {
		t.Fatalf("recovered active bundle %q, want %q", got, policy.BootstrapBundleVersion)
	}
}
