package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"policyflow/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Fsync makes Sync wait for fsync(2) before reporting a record
	// durable (group-committed across concurrent callers). When false,
	// records are flushed to the OS only — they survive a process crash
	// but not a machine crash.
	Fsync bool
	// KeepSnapshots is how many snapshot generations to retain; 0 selects
	// the default of 2 (the latest plus one fallback).
	KeepSnapshots int
	// Metrics, when non-nil, receives the WAL and snapshot series.
	Metrics *obs.WALMetrics
	// Tracer, when non-nil, receives "wal.fsync" spans from group-commit
	// leaders (see walOptions.Tracer).
	Tracer obs.Tracer
	// WriteFault is a fault-injection hook for tests and harnesses: when
	// non-nil it is consulted before every append, and a non-nil error
	// fails the append as a disk-write error would — before any state
	// change is acknowledged. Leave nil in production.
	WriteFault func(op string) error
}

// RecoveryStats describes what Open found in the data directory.
type RecoveryStats struct {
	// SnapshotSeq is the sequence number of the snapshot restored, 0 when
	// the store started from the log alone.
	SnapshotSeq uint64
	// Replayed is the number of WAL records applied after the snapshot.
	Replayed int
	// LastSeq is the log position after recovery.
	LastSeq uint64
}

// Store combines the segmented WAL with snapshot files in one data
// directory. It is safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	wal  *wal

	mu      sync.Mutex // serializes snapshot/compaction
	snapSeq uint64
}

// Archive is a transportable recovery bundle: the latest snapshot payload
// plus the WAL records after it. Shipping an archive instead of a live
// state dump lets a peer resync without pausing the donor's Policy Memory.
type Archive struct {
	// SnapshotSeq is the log position the snapshot covers (0 = none).
	SnapshotSeq uint64 `json:"snapshotSeq"`
	// Epoch is the fencing epoch recorded in the snapshot header (0 when
	// no snapshot exists or it predates epochs). The tail may raise it
	// further via bump_epoch records.
	Epoch uint64 `json:"epoch,omitempty"`
	// Snapshot is the raw snapshot payload (a policy.StateDump in JSON),
	// absent when the donor has not snapshotted yet.
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	// Tail is the mutation records after the snapshot, in order.
	Tail []Record `json:"tail,omitempty"`
}

// Open opens (creating if needed) the store in dir and recovers: restore
// receives the latest valid snapshot payload (when one exists), then apply
// receives every WAL record after it, in order. A torn final record — the
// signature of a mid-write crash — is truncated silently; damage anywhere
// else is ErrCorrupt.
func Open(dir string, opts Options, restore func(state []byte) error, apply func(Record) error) (*Store, RecoveryStats, error) {
	var stats RecoveryStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, err
	}
	if opts.KeepSnapshots <= 0 {
		opts.KeepSnapshots = 2
	}
	snapSeq, _, state, err := loadLatestSnapshot(dir)
	if err != nil {
		return nil, stats, err
	}
	stats.SnapshotSeq = snapSeq
	if state != nil && restore != nil {
		if err := restore(state); err != nil {
			return nil, stats, fmt.Errorf("durable: restore snapshot %d: %w", snapSeq, err)
		}
	}
	w, err := openWAL(dir, walOptions{
		Fsync:      opts.Fsync,
		ReplayFrom: snapSeq,
		Metrics:    opts.Metrics,
		Tracer:     opts.Tracer,
	}, func(rec Record) error {
		stats.Replayed++
		if opts.Metrics != nil {
			opts.Metrics.RecoveredRecords.Inc()
		}
		if apply != nil {
			return apply(rec)
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	stats.LastSeq = w.LastSeq()
	return &Store{dir: dir, opts: opts, wal: w, snapSeq: snapSeq}, stats, nil
}

// Append logs one mutation command (JSON-encoding its payload) and
// returns its sequence number. The record is durable only once Sync(seq)
// returns.
func (st *Store) Append(op string, payload any) (uint64, error) {
	if st.opts.WriteFault != nil {
		if err := st.opts.WriteFault(op); err != nil {
			return 0, fmt.Errorf("durable: append %s: %w", op, err)
		}
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return 0, fmt.Errorf("durable: encode %s payload: %w", op, err)
	}
	return st.wal.Append(op, data)
}

// Sync blocks until the record at seq is durable (group-committed).
func (st *Store) Sync(seq uint64) error { return st.wal.Sync(seq) }

// LastSeq returns the sequence number of the last appended record.
func (st *Store) LastSeq() uint64 { return st.wal.LastSeq() }

// SnapshotSeq returns the log position covered by the latest snapshot.
func (st *Store) SnapshotSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapSeq
}

// WriteSnapshot persists state as the snapshot at seq, then compacts: the
// WAL rotates to a fresh segment, segments fully covered by the snapshot
// are deleted, and snapshot generations beyond KeepSnapshots are pruned.
// Writing a snapshot at or before the current one is a no-op.
func (st *Store) WriteSnapshot(seq uint64, state []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if seq <= st.snapSeq {
		return nil
	}
	if err := writeSnapshotFile(st.dir, seq, state); err != nil {
		return err
	}
	if err := st.wal.Rotate(seq); err != nil {
		return err
	}
	pruneSnapshots(st.dir, st.opts.KeepSnapshots)
	st.snapSeq = seq
	if st.opts.Metrics != nil {
		st.opts.Metrics.Snapshots.Inc()
	}
	return nil
}

// ArchiveTail bundles the latest snapshot with the WAL records after it.
// The lock keeps the pair consistent against a concurrent WriteSnapshot.
func (st *Store) ArchiveTail() (*Archive, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	snapSeq, epoch, state, err := loadLatestSnapshot(st.dir)
	if err != nil {
		return nil, err
	}
	tail, err := st.wal.ReadAfter(snapSeq)
	if err != nil {
		return nil, err
	}
	return &Archive{SnapshotSeq: snapSeq, Epoch: epoch, Snapshot: state, Tail: tail}, nil
}

// Close flushes (and fsyncs, when configured) outstanding records and
// closes the log. Further appends fail.
func (st *Store) Close() error { return st.wal.Close() }
