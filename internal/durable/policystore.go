package durable

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"time"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// PolicyStore makes a *policy.Service durable: it implements
// policy.MutationLog over a Store, recovers the service from the data
// directory on open, and snapshots Policy Memory with the existing
// StateDump encoding.
type PolicyStore struct {
	svc   *policy.Service
	store *Store
	m     *obs.WALMetrics
}

// SnapshotInfo describes one written snapshot.
type SnapshotInfo struct {
	XMLName xml.Name `json:"-" xml:"snapshot"`
	// Seq is the log position the snapshot covers.
	Seq uint64 `json:"seq" xml:"seq"`
	// Bytes is the encoded state size.
	Bytes int `json:"bytes" xml:"bytes"`
	// DurationSeconds is the end-to-end snapshot time (export, encode,
	// fsync, rename, WAL compaction).
	DurationSeconds float64 `json:"durationSeconds" xml:"durationSeconds"`
}

// OpenPolicyStore opens dir, recovers svc from it — the latest valid
// snapshot is imported, then the WAL tail is replayed through the
// service's own operations, tolerating a torn final record — and attaches
// the store as the service's mutation log, so every subsequent
// advise/report/threshold/cleanup decision is persisted before it is
// acknowledged. The service must be freshly constructed with the same
// configuration the logged operations ran under: configuration is not
// logged, replay determinism supplies the rest.
func OpenPolicyStore(dir string, svc *policy.Service, opts Options) (*PolicyStore, RecoveryStats, error) {
	restore := func(state []byte) error {
		var d policy.StateDump
		if err := json.Unmarshal(state, &d); err != nil {
			return fmt.Errorf("decode state dump: %w", err)
		}
		return svc.ImportState(&d)
	}
	apply := func(rec Record) error {
		return svc.ApplyLogged(rec.Op, rec.Data)
	}
	st, stats, err := Open(dir, opts, restore, apply)
	if err != nil {
		return nil, stats, err
	}
	ps := &PolicyStore{svc: svc, store: st, m: opts.Metrics}
	svc.SetMutationLog(ps)
	return ps, stats, nil
}

// Append implements policy.MutationLog.
func (ps *PolicyStore) Append(op string, payload any) (uint64, error) {
	return ps.store.Append(op, payload)
}

// Sync implements policy.MutationLog.
func (ps *PolicyStore) Sync(seq uint64) error { return ps.store.Sync(seq) }

// SnapshotNow exports Policy Memory at its current log position, writes
// it as a snapshot and compacts the WAL behind it.
func (ps *PolicyStore) SnapshotNow() (SnapshotInfo, error) {
	start := time.Now()
	dump, seq := ps.svc.ExportStateAt(ps.store.LastSeq)
	state, err := json.Marshal(dump)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("durable: encode snapshot: %w", err)
	}
	if err := ps.store.WriteSnapshot(seq, state); err != nil {
		return SnapshotInfo{}, err
	}
	info := SnapshotInfo{Seq: seq, Bytes: len(state),
		DurationSeconds: time.Since(start).Seconds()}
	if ps.m != nil {
		ps.m.SnapshotSeconds.Observe(info.DurationSeconds)
	}
	return info, nil
}

// Archive bundles the latest snapshot with the WAL records after it — the
// transportable form a replica resync ships instead of a full live dump.
func (ps *PolicyStore) Archive() (*Archive, error) { return ps.store.ArchiveTail() }

// LastSeq returns the log position of the last persisted mutation.
func (ps *PolicyStore) LastSeq() uint64 { return ps.store.LastSeq() }

// Close detaches the store from the service and closes the log, flushing
// outstanding records first.
func (ps *PolicyStore) Close() error {
	ps.svc.SetMutationLog(nil)
	return ps.store.Close()
}
