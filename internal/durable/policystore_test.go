package durable

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

func newService(t *testing.T) *policy.Service {
	t.Helper()
	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func spec(i int, wf string) policy.TransferSpec {
	return policy.TransferSpec{
		RequestID:  wf + "-r",
		WorkflowID: wf,
		SourceURL:  "gsiftp://src.example.org/f" + string(rune('0'+i)),
		DestURL:    "file://dst.example.org/scratch/f" + string(rune('0'+i)),
	}
}

// dumpJSON renders the full Policy Memory dump for byte-level comparison.
func dumpJSON(t *testing.T, svc *policy.Service) []byte {
	t.Helper()
	data, err := json.Marshal(svc.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// tearWALTail appends a partial frame to the newest WAL segment,
// simulating a crash mid-write.
func tearWALTail(t *testing.T, dir string) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible header promising 200 bytes, followed by only a few.
	f.Write([]byte{200, 0, 0, 0, 0x13, 0x57, 0x9b, 0xdf, 'p', 'a', 'r'})
	f.Close()
}

// TestCrashRecoveryByteIdentical is the acceptance scenario: run a
// workload, discard all process state (SIGKILL-equivalent) leaving a
// deliberately torn final WAL record, restart from the data directory,
// and require a byte-identical state dump — then verify that a file
// staged by workflow 1 before the crash is still suppressed as a
// duplicate when workflow 2 requests it after recovery.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t)
	ps, stats, err := OpenPolicyStore(dir, svc, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotSeq != 0 || stats.Replayed != 0 {
		t.Fatalf("fresh dir recovery stats = %+v", stats)
	}

	// Workflow 1 stages two files (one completes, one stays in flight),
	// sets a threshold, and requests a cleanup that is left pending.
	adv, err := svc.AdviseTransfers([]policy.TransferSpec{spec(1, "wf1"), spec(2, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Transfers) != 2 {
		t.Fatalf("advice = %+v", adv)
	}
	if _, err := svc.ReportTransfers(policy.CompletionReport{
		TransferIDs: []string{adv.Transfers[0].ID},
	}); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetThreshold("src.example.org", "dst.example.org", 17); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AdviseCleanups([]policy.CleanupSpec{{
		RequestID: "c1", WorkflowID: "wf1", FileURL: adv.Transfers[0].DestURL,
	}}); err != nil {
		t.Fatal(err)
	}

	before := dumpJSON(t, svc)

	// Crash: the process dies without Close; all in-memory state is
	// dropped and the WAL gains a torn final record.
	tearWALTail(t, dir)

	svc2 := newService(t)
	ps2, stats2, err := OpenPolicyStore(dir, svc2, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ps2.Close()
	if stats2.Replayed != 4 {
		t.Fatalf("replayed %d records, want 4", stats2.Replayed)
	}
	after := dumpJSON(t, svc2)
	if !bytes.Equal(before, after) {
		t.Fatalf("state diverged after crash recovery:\n before: %s\n after:  %s", before, after)
	}

	// Cross-workflow duplicate suppression survives the crash: the file
	// workflow 1 staged is removed from workflow 2's list.
	adv2, err := svc2.AdviseTransfers([]policy.TransferSpec{spec(1, "wf2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv2.Removed) != 1 || adv2.Removed[0].Reason != "already-staged" {
		t.Fatalf("post-recovery advice = %+v", adv2)
	}

	_ = ps
}

// TestRecoveryFromSnapshotPlusTail exercises the compacted path: snapshot
// mid-run, keep mutating, crash, and recover from snapshot + WAL tail.
func TestRecoveryFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t)
	ps, _, err := OpenPolicyStore(dir, svc, Options{Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AdviseTransfers([]policy.TransferSpec{spec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	info, err := ps.SnapshotNow()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || info.Bytes == 0 {
		t.Fatalf("snapshot info = %+v", info)
	}
	// Mutations after the snapshot land in the fresh WAL segment.
	adv, err := svc.AdviseTransfers([]policy.TransferSpec{spec(2, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}
	// Flush to the OS (no Close — the "process" dies here).
	if err := ps.store.wal.Flush(); err != nil {
		t.Fatal(err)
	}
	before := dumpJSON(t, svc)

	svc2 := newService(t)
	_, stats, err := OpenPolicyStore(dir, svc2, Options{Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotSeq != 1 || stats.Replayed != 2 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	if !bytes.Equal(before, dumpJSON(t, svc2)) {
		t.Fatal("snapshot+tail recovery diverged")
	}
}

// TestSnapshotCompactsAndPrunes verifies WAL segments behind a snapshot
// are deleted and old snapshot generations pruned.
func TestSnapshotCompactsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t)
	ps, _, err := OpenPolicyStore(dir, svc, Options{Fsync: false, KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		if _, err := svc.AdviseTransfers([]policy.TransferSpec{spec(round, "wf")}); err != nil {
			t.Fatal(err)
		}
		if _, err := ps.SnapshotNow(); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[1] != 4 {
		t.Fatalf("snapshots = %v", snaps)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].first != 5 {
		t.Fatalf("segments = %+v", segs)
	}
	// Idempotence: snapshotting with no new mutations is a no-op.
	if _, err := ps.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if segs2, _ := listSegments(dir); len(segs2) != 1 || segs2[0].first != 5 {
		t.Fatalf("no-op snapshot rotated: %+v", segs2)
	}
}

// TestArchiveShipsSnapshotAndTail verifies the resync bundle and that a
// fresh service replaying it converges to the donor's state.
func TestArchiveShipsSnapshotAndTail(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t)
	ps, _, err := OpenPolicyStore(dir, svc, Options{Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AdviseTransfers([]policy.TransferSpec{spec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AdviseTransfers([]policy.TransferSpec{spec(2, "wf1")}); err != nil {
		t.Fatal(err)
	}
	arch, err := ps.Archive()
	if err != nil {
		t.Fatal(err)
	}
	if arch.SnapshotSeq != 1 || arch.Snapshot == nil || len(arch.Tail) != 1 {
		t.Fatalf("archive = seq %d, snapshot %v, %d tail records",
			arch.SnapshotSeq, arch.Snapshot != nil, len(arch.Tail))
	}
	// A blank service fed the archive converges to the donor.
	svc2 := newService(t)
	var d policy.StateDump
	if err := json.Unmarshal(arch.Snapshot, &d); err != nil {
		t.Fatal(err)
	}
	if err := svc2.ImportState(&d); err != nil {
		t.Fatal(err)
	}
	for _, rec := range arch.Tail {
		if err := svc2.ApplyLogged(rec.Op, rec.Data); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(dumpJSON(t, svc), dumpJSON(t, svc2)) {
		t.Fatal("archive replay diverged from donor")
	}
}

// TestWALMetrics verifies the obs series move with WAL activity.
func TestWALMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewWALMetrics(reg)
	dir := t.TempDir()
	svc := newService(t)
	ps, _, err := OpenPolicyStore(dir, svc, Options{Fsync: true, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AdviseTransfers([]policy.TransferSpec{spec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if got := m.Appends.Value(); got != 1 {
		t.Errorf("appends = %v", got)
	}
	if got := m.Fsyncs.Value(); got < 1 {
		t.Errorf("fsyncs = %v", got)
	}
	if got := m.Bytes.Value(); got <= 0 {
		t.Errorf("bytes = %v", got)
	}
	if got := m.Snapshots.Value(); got != 1 {
		t.Errorf("snapshots = %v", got)
	}
	if got := m.SnapshotSeconds.Count(); got != 1 {
		t.Errorf("snapshot observations = %v", got)
	}
	ps.Close()

	// Recovery counts replayed records.
	svc2 := newService(t)
	if _, _, err := OpenPolicyStore(dir, svc2, Options{Fsync: true, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if got := m.RecoveredRecords.Value(); got != 0 {
		t.Errorf("recovered = %v, want 0 (snapshot covered the log)", got)
	}
	if _, err := svc2.AdviseTransfers([]policy.TransferSpec{spec(2, "wf1")}); err != nil {
		t.Fatal(err)
	}
	svc3 := newService(t)
	if _, _, err := OpenPolicyStore(dir, svc3, Options{Fsync: true, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if got := m.RecoveredRecords.Value(); got != 1 {
		t.Errorf("recovered = %v, want 1", got)
	}
}
