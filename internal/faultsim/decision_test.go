package faultsim

import (
	"strings"
	"testing"

	"policyflow/internal/policy"
)

// TestDecisionRecordsSurviveRetries checks decision provenance under the
// faults that make exactly-once hard: a dropped response (the client
// retries with the same idempotency key and is answered from the replay
// cache) and a duplicated delivery. Each replica must commit exactly one
// decision record per acknowledged advise, the record must carry the WAL
// sequence it was logged under, and — because the replicated client mints
// one span context per logical operation — both replicas' records must
// carry the same trace ID.
func TestDecisionRecordsSurviveRetries(t *testing.T) {
	h, err := NewHarness(t.TempDir(), passingSchedule())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if err := h.Step(adviseOp("r-1", "f-01",
		FaultSpec{Replica: 0, Kind: FaultDropResponse},
		FaultSpec{Replica: 1, Kind: FaultDuplicate},
	)); err != nil {
		t.Fatal(err)
	}

	var traces []string
	for i, r := range h.replicas {
		if got := r.svc.DecisionCount(policy.OpAdviseTransfers); got != 1 {
			t.Fatalf("replica %d committed %d advise decision records, want exactly 1", i, got)
		}
		recs := r.svc.Decisions(0)
		if len(recs) != 1 {
			t.Fatalf("replica %d ring holds %d records, want 1", i, len(recs))
		}
		rec := recs[0]
		if rec.Op != policy.OpAdviseTransfers {
			t.Fatalf("replica %d record op = %q", i, rec.Op)
		}
		if rec.WALSeq == 0 {
			t.Fatalf("replica %d record has no WAL sequence", i)
		}
		if rec.TraceID == "" {
			t.Fatalf("replica %d record carries no trace ID", i)
		}
		if len(rec.RulesFired) == 0 {
			t.Fatalf("replica %d record lists no rule firings", i)
		}
		advised := 0
		for _, line := range rec.Lines {
			if line.Outcome == policy.OutcomeAdvised && strings.HasSuffix(line.FileURL, "f-01") {
				advised++
			}
		}
		if advised != 1 {
			t.Fatalf("replica %d record lines = %+v, want one advised f-01", i, rec.Lines)
		}
		traces = append(traces, rec.TraceID)
	}
	if traces[0] != traces[1] {
		t.Fatalf("replicas recorded different trace IDs for one logical advise: %v", traces)
	}

	// The follow-up report (fault-free) adds exactly one report record per
	// replica and leaves the advise count alone.
	ids := h.model.InFlightIDs()
	if err := h.Step(Op{Kind: OpReport, Report: &policy.CompletionReport{TransferIDs: ids}}); err != nil {
		t.Fatal(err)
	}
	for i, r := range h.replicas {
		if got := r.svc.DecisionCount(policy.OpAdviseTransfers); got != 1 {
			t.Fatalf("replica %d advise records after report = %d, want 1", i, got)
		}
		if got := r.svc.DecisionCount(policy.OpReportTransfers); got != 1 {
			t.Fatalf("replica %d report records = %d, want 1", i, got)
		}
	}
}

// TestHarnessDetectsDecisionMiscount proves the per-step provenance check
// is live: skewing the acknowledged-op ledger must make the next check
// report a mismatch between committed records and acknowledged calls.
func TestHarnessDetectsDecisionMiscount(t *testing.T) {
	h, err := NewHarness(t.TempDir(), passingSchedule())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Step(adviseOp("r-1", "f-01")); err != nil {
		t.Fatal(err)
	}
	h.acked[policy.OpAdviseTransfers]-- // simulate a duplicate decision record
	if err := h.checkDecisions(); err == nil {
		t.Fatal("decision-record miscount went undetected")
	}
}
