package faultsim

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"policyflow/internal/policy"
)

// defaultFailoverSchedules is how many randomized failover schedules
// TestFailoverSim runs; FAILOVER_SCHEDULES overrides it and FAILOVER_SEED
// rebases the seed sequence, mirroring TestFaultSim's knobs.
const (
	defaultFailoverSchedules = 150
	defaultFailoverBaseSeed  = 20260808
)

// TestFailoverSim is the failover model checker: randomized workloads run
// against an epoch-fenced primary/standby pair while scripted episodes
// partition the primary, promote the standby, heal the partition and
// resync — checking after every step that writes are acknowledged by
// exactly one epoch, that a deposed primary fences every write (the probe
// turns a violation into a step error), that no acknowledged mutation is
// lost across a promotion, and that the pair reconverges byte-identically
// after heal+resync. Failures shrink to a locally minimal trace.
func TestFailoverSim(t *testing.T) {
	schedules := int(envInt(t, "FAILOVER_SCHEDULES", defaultFailoverSchedules))
	baseSeed := envInt(t, "FAILOVER_SEED", defaultFailoverBaseSeed)

	var mu sync.Mutex
	totalFaults := make(map[string]int)

	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		for _, kind := range []string{OpPartition, OpPromote, OpFenceProbe} {
			if totalFaults[kind] == 0 {
				t.Errorf("schedules never exercised %q (faults: %v) — episode generator drifted", kind, totalFaults)
			}
		}
	})

	for i := 0; i < schedules; i++ {
		seed := baseSeed + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := RandomFailoverSchedule(seed)
			trace, faults, err := RunSchedule(t.TempDir(), sched)
			mu.Lock()
			for k, n := range faults {
				totalFaults[k] += n
			}
			mu.Unlock()
			if err == nil {
				return
			}
			minTrace := Shrink(trace, func(candidate []Op) bool {
				return ReplayTrace(t.TempDir(), sched, candidate) != nil
			})
			minErr := ReplayTrace(t.TempDir(), sched, minTrace)
			schedJSON, _ := json.Marshal(sched)
			traceJSON, _ := json.MarshalIndent(minTrace, "", "  ")
			t.Fatalf("invariant violation at seed %d: %v\n\nreplay: FAILOVER_SEED=%d FAILOVER_SCHEDULES=1 go test ./internal/faultsim -run 'TestFailoverSim$'\nschedule: %s\nminimal trace (%d of %d ops, fails with: %v):\n%s",
				seed, err, seed, schedJSON, len(minTrace), len(trace), minErr, traceJSON)
		})
	}
}

// TestFailoverSimDeterministicReplay proves failover schedules are as
// replayable as the role-less ones: one seed, one trace, one outcome.
func TestFailoverSimDeterministicReplay(t *testing.T) {
	for _, seed := range []int64{3, 11, 20260808} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := RandomFailoverSchedule(seed)
			trace1, _, err1 := RunSchedule(t.TempDir(), sched)
			trace2, _, err2 := RunSchedule(t.TempDir(), sched)
			j1, _ := json.Marshal(trace1)
			j2, _ := json.Marshal(trace2)
			if string(j1) != string(j2) {
				t.Fatalf("same seed generated different traces:\n  run1 %s\n  run2 %s", j1, j2)
			}
			if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
				t.Fatalf("same seed produced different outcomes: %v vs %v", err1, err2)
			}
			if err1 != nil {
				return
			}
			if err := ReplayTrace(t.TempDir(), sched, trace1); err != nil {
				t.Fatalf("replaying a passing trace failed: %v", err)
			}
		})
	}
}

// failoverSchedule is a fixed fault-free failover configuration for the
// detector self-tests below.
func failoverSchedule() Schedule {
	s := passingSchedule()
	s.Config.Failover = true
	return s
}

// TestFailoverDetectsLostWrite proves the durability detector works: a
// promotion whose standby never synced after an acknowledged write (the
// scripted episodes always sync first; this trace deliberately does not)
// must be flagged — the acked advise would otherwise silently vanish from
// the post-failover state.
func TestFailoverDetectsLostWrite(t *testing.T) {
	trace := []Op{
		adviseOp("r-1", "f-01"),
		{Kind: OpPartition, Replica: 0},
		{Kind: OpPromote, Replica: 1},
	}
	err := ReplayTrace(t.TempDir(), failoverSchedule(), trace)
	if err == nil {
		t.Fatal("promotion of a stale standby dropped an acknowledged write undetected")
	}
	t.Logf("detected as: %v", err)
}

// TestFailoverEpisodeReplay replays one full hand-written episode — sync,
// partition, promote, writes on the new primary, heal, fence probe,
// demote, resync — and requires it to pass: the happy path of the fencing
// protocol, step for step, under the harness's full invariant battery.
func TestFailoverEpisodeReplay(t *testing.T) {
	probe := policy.TransferSpec{
		RequestID:  "r-probe",
		WorkflowID: "wf-a",
		SourceURL:  "gsiftp://hostA/data/f-09",
		DestURL:    "gsiftp://hostB/data/f-09",
	}
	trace := []Op{
		adviseOp("r-1", "f-01"),
		{Kind: OpStandbySync},
		{Kind: OpPartition, Replica: 0},
		{Kind: OpPromote, Replica: 1},
		adviseOp("r-2", "f-02"),
		{Kind: OpHeal},
		{Kind: OpFenceProbe, Replica: 0, Specs: []policy.TransferSpec{probe}},
		{Kind: OpDemote, Replica: 0},
		{Kind: OpStandbySync},
		adviseOp("r-3", "f-03"),
	}
	if err := ReplayTrace(t.TempDir(), failoverSchedule(), trace); err != nil {
		t.Fatalf("scripted failover episode violated an invariant: %v", err)
	}
}
