package faultsim

import (
	"encoding/json"
	"fmt"
	"testing"

	"policyflow/internal/policy"
)

// livenessSchedule is the fixed configuration for the scripted reclamation
// scenario: greedy allocation, leases enabled with a 10-unit TTL, no
// injected faults.
func livenessSchedule() Schedule {
	return Schedule{Seed: 7, Config: ScheduleConfig{
		Algorithm:      policy.AlgoGreedy,
		Threshold:      8,
		DefaultStreams: 2,
		ClusterFactor:  1,
		FaultProb:      0,
		LeaseTTL:       10,
	}}
}

func wfAdviseOp(wf, reqID string, files ...string) Op {
	op := Op{Kind: OpAdvise}
	for _, f := range files {
		op.Specs = append(op.Specs, policy.TransferSpec{
			RequestID:  reqID + "-" + f,
			WorkflowID: wf,
			SourceURL:  "gsiftp://hostA/data/" + f,
			DestURL:    "gsiftp://hostB/scratch/" + f,
		})
	}
	return op
}

// TestLeaseReclamationScenario is the acceptance scenario for lease-based
// liveness: two workflows share a staged file, one crashes mid-run holding
// streams and reference counts, and after its lease expires the survivor
// finds the streams released, the shared file still protected by its own
// reference, and the orphaned file re-stageable. Every step also runs the
// harness's standing checks: the model invariants on the oracle and
// byte-for-byte replica/oracle agreement. The crash-restart steps at the
// end prove the reclamation replays from the WAL: each replica must
// recover to exactly its pre-crash (post-reclamation) state.
func TestLeaseReclamationScenario(t *testing.T) {
	h, err := NewHarness(t.TempDir(), livenessSchedule())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	mustStep := func(op Op) {
		t.Helper()
		if err := h.Step(op); err != nil {
			t.Fatalf("step %+v: %v", op, err)
		}
	}

	// wf-a stages two files (2 streams each -> 4 allocated); wf-b requests
	// one of them and is suppressed against the in-flight transfer, which
	// registers it as a second user of f-01.
	mustStep(wfAdviseOp("wf-a", "ra", "f-01", "f-02"))
	mustStep(wfAdviseOp("wf-b", "rb", "f-01"))

	d := h.oracle.ExportState()
	if len(d.Transfers) != 2 || len(d.Leases) != 2 {
		t.Fatalf("setup: %d transfers, %d leases, want 2 and 2", len(d.Transfers), len(d.Leases))
	}
	var allocated int
	for _, l := range d.Ledgers {
		allocated += l.Allocated
	}
	if allocated != 4 {
		t.Fatalf("setup: %d streams allocated, want 4", allocated)
	}

	// wf-a's client dies without reporting anything. The service cannot
	// know yet; the holdings stay pinned.
	mustStep(Op{Kind: OpClientCrash, Workflow: "wf-a"})

	// Time passes but not enough to expire anyone; wf-b proves it is alive.
	mustStep(Op{Kind: OpAdvanceClock, Now: 6})
	mustStep(Op{Kind: OpRenewLease, Workflow: "wf-b"})

	// The clock passes wf-a's deadline (10): its lease expires and the
	// reclamation rules fire.
	mustStep(Op{Kind: OpAdvanceClock, Now: 12})

	d = h.oracle.ExportState()
	if len(d.Transfers) != 0 {
		t.Fatalf("after expiry: %d in-flight transfers, want 0", len(d.Transfers))
	}
	for _, l := range d.Ledgers {
		if l.Allocated != 0 {
			t.Fatalf("after expiry: %d streams leaked on %s->%s", l.Allocated, l.Src, l.Dst)
		}
	}
	if len(d.Leases) != 1 || d.Leases[0].Owner != "wf-b" || d.Leases[0].Deadline != 16 {
		t.Fatalf("after expiry: leases = %+v, want only wf-b at deadline 16", d.Leases)
	}
	// Reference-count conservation: wf-a's references are gone wholesale,
	// wf-b's single reference to the shared file survives.
	users := map[string][]policy.UserCount{}
	for _, r := range d.Resources {
		users[r.DestURL] = r.Users
	}
	shared := users["gsiftp://hostB/scratch/f-01"]
	if len(shared) != 1 || shared[0].WorkflowID != "wf-b" || shared[0].Count != 1 {
		t.Fatalf("after expiry: shared file users = %+v, want wf-b x1", shared)
	}
	if orphan := users["gsiftp://hostB/scratch/f-02"]; len(orphan) != 0 {
		t.Fatalf("after expiry: orphaned file users = %+v, want none", orphan)
	}

	// The orphaned file is re-stageable: the dead workflow's in-flight
	// transfer no longer suppresses wf-b's advise. (The model predicts a
	// grant, so a suppression would also fail the step itself.)
	mustStep(wfAdviseOp("wf-b", "rb2", "f-02"))
	d = h.oracle.ExportState()
	if len(d.Transfers) != 1 || d.Transfers[0].WorkflowID != "wf-b" ||
		d.Transfers[0].DestURL != "gsiftp://hostB/scratch/f-02" {
		t.Fatalf("survivor re-stage: transfers = %+v, want one wf-b transfer of f-02", d.Transfers)
	}

	// Crash-restart each durable replica: recovery replays the logged
	// advises, renewals and clock advances, so the reclamation must be
	// reproduced exactly (stepCrash compares pre- and post-crash state).
	mustStep(Op{Kind: OpCrash, Replica: 0})
	mustStep(Op{Kind: OpTornCrash, Replica: 1})

	// Both replicas converge byte-identically, on each other and on the
	// fault-free oracle.
	dump0, err := json.Marshal(h.replicas[0].svc.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	dump1, err := json.Marshal(h.replicas[1].svc.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := json.Marshal(h.oracle.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if string(dump0) != string(dump1) {
		t.Fatalf("replica dumps differ after replaying reclamation:\n  r0 %s\n  r1 %s", dump0, dump1)
	}
	if string(dump0) != string(oracle) {
		t.Fatalf("replicas diverge from oracle:\n  replica %s\n  oracle  %s", dump0, oracle)
	}
}

// TestLeaseLivenessProperty forces leases on and runs randomized schedules
// of advises, reports, cleanups, renewals, client crashes and clock
// advances across the three generator workflows. The harness checks the
// model after every step, and with LeaseTTL > 0 the model's CheckDump
// enforces the liveness invariant throughout: the set of workflows holding
// reference counts, in-flight transfers or in-progress cleanups is exactly
// a subset of the live (unexpired) lease holders, and stream ledgers always
// equal the in-flight grant sum — i.e. expiry reclaims everything, leaks
// nothing, and never touches a survivor's state.
func TestLeaseLivenessProperty(t *testing.T) {
	const seeds = 60
	for i := 0; i < seeds; i++ {
		seed := int64(31000 + i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := RandomSchedule(seed)
			sched.Config.LeaseTTL = 2 + float64(seed%19) // force liveness on
			sched.Config.OpCount = 30
			trace, _, err := RunSchedule(t.TempDir(), sched)
			if err != nil {
				j, _ := json.MarshalIndent(trace, "", "  ")
				t.Fatalf("liveness invariant violated at seed %d: %v\ntrace:\n%s", seed, err, j)
			}
		})
	}
}
