package faultsim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"time"

	"policyflow/internal/admit"
	"policyflow/internal/bundle"
	"policyflow/internal/durable"
	"policyflow/internal/obs"
	"policyflow/internal/policy"
	"policyflow/internal/policyhttp"
)

// numReplicas is the size of the simulated replica group.
const numReplicas = 2

// simReplica is one simulated policy server: a service with a durable
// store on its own data directory, exposed through the full HTTP stack
// behind an admission controller.
type simReplica struct {
	host   string
	dir    string
	svc    *policy.Service
	ps     *durable.PolicyStore
	reg    *obs.Registry
	server *policyhttp.Server
	ctl    *admit.Controller
}

// Harness wires the full stack — policy service, durable store, HTTP
// server, retrying client, replicated client — into a deterministic
// simulation. Every operation runs against the replica group through the
// fault-injecting Router AND against a fault-free in-memory oracle; after
// each step the oracle's state is checked against the order-free model and
// every healthy replica is checked byte-for-byte against the oracle.
type Harness struct {
	cfg policy.Config
	sc  ScheduleConfig

	router   *Router
	replicas [numReplicas]*simReplica
	clients  [numReplicas]*policyhttp.Client
	rc       *policyhttp.ReplicatedClient

	oracle *policy.Service
	model  *Model

	// acked counts acknowledged operations by logged op name. After every
	// step the oracle's decision-provenance counters must equal these
	// exactly: one decision record per acknowledged advise/report, none
	// for rejections, none for retries or idempotent replays.
	acked map[string]int64

	// ClientReg holds the shared client retry metrics (requests, retries,
	// faults, exhausted, idempotent replays) for all simulated clients.
	ClientReg     *obs.Registry
	ClientMetrics *obs.ClientMetrics

	walMu     sync.Mutex
	walFaults [numReplicas]int

	// localFaults counts fault events injected outside the Router (crash,
	// torn WAL tail, disk-write failure), by kind.
	localFaults map[string]int

	// Failover-mode state (sc.Failover). roles is the harness's intent for
	// each replica — a partitioned old primary still believes it is primary
	// until probed or demoted, but the harness knows who SHOULD be serving.
	// expectedEpoch is the one epoch allowed to acknowledge writes; fresh
	// marks replicas whose Policy Memory must equal the oracle's right now
	// (a standby legitimately lags between syncs, so only fresh replicas
	// are compared). syncers and peerClients wire each replica at its peer.
	roles         [numReplicas]policyhttp.Role
	curPrimary    int
	expectedEpoch uint64
	fresh         [numReplicas]bool
	syncers       [numReplicas]*policyhttp.StandbySyncer
	peerClients   [numReplicas]*policyhttp.Client

	seed int64
	step int
}

// NewHarness builds a harness with replica data directories under baseDir.
func NewHarness(baseDir string, sched Schedule) (*Harness, error) {
	sc := sched.Config
	cfg := policy.Config{
		Algorithm:        sc.Algorithm,
		DefaultStreams:   sc.DefaultStreams,
		MinStreams:       1,
		DefaultThreshold: sc.Threshold,
		ClusterFactor:    sc.ClusterFactor,
		LeaseTTL:         sc.LeaseTTL,
	}
	oracle, err := policy.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("faultsim: build oracle: %w", err)
	}
	h := &Harness{
		cfg:         cfg,
		sc:          sc,
		router:      NewRouter(),
		oracle:      oracle,
		model:       NewModel(cfg),
		ClientReg:   obs.NewRegistry(),
		acked:       make(map[string]int64),
		localFaults: make(map[string]int),
		seed:        sched.Seed,
	}
	h.ClientMetrics = obs.NewClientMetrics(h.ClientReg)
	// The compiled-in v0 bundle's checksum is internal to the service; the
	// model learns it from the fault-free oracle so it can tell
	// state-changing activations from idempotent no-ops.
	h.model.SetActiveChecksum(oracle.Tunables().Checksum)
	if sc.Failover {
		// Replica 0 starts as primary, 1 as its standby. Peer clients are
		// wired before the replicas open because openReplica installs them
		// (promotion demotes and pulls from the peer through the router, so
		// partitions apply to the control plane too).
		h.roles = [numReplicas]policyhttp.Role{policyhttp.RolePrimary, policyhttp.RoleStandby}
		for i := 0; i < numReplicas; i++ {
			h.peerClients[i] = policyhttp.NewClient(fmt.Sprintf("http://replica%d", 1-i),
				policyhttp.WithTransport(h.router),
				policyhttp.WithBackoffSleep(func(time.Duration) {}),
				policyhttp.WithJitterSeed(sched.Seed*37+int64(i)),
			)
		}
	}
	for i := 0; i < numReplicas; i++ {
		host := fmt.Sprintf("replica%d", i)
		dir := filepath.Join(baseDir, host)
		h.replicas[i] = &simReplica{host: host, dir: dir}
		if err := h.openReplica(i); err != nil {
			return nil, err
		}
		h.clients[i] = policyhttp.NewClient("http://"+host,
			policyhttp.WithTransport(h.router),
			policyhttp.WithBackoffSleep(func(time.Duration) {}),
			policyhttp.WithJitterSeed(sched.Seed*31+int64(i)),
			policyhttp.WithMetrics(h.ClientMetrics),
		)
	}
	h.rc, err = policyhttp.NewReplicatedClient(h.clients[:]...)
	if err != nil {
		return nil, err
	}
	if sc.Failover {
		// The initial primary takes epoch 1 through its WAL; the oracle and
		// model move in lockstep. The standby starts at epoch 0 (stale) and
		// becomes fresh at its first sync.
		if _, err := h.replicas[0].svc.BumpEpoch(1); err != nil {
			return nil, fmt.Errorf("faultsim: seed primary epoch: %w", err)
		}
		if _, err := h.oracle.BumpEpoch(1); err != nil {
			return nil, fmt.Errorf("faultsim: seed oracle epoch: %w", err)
		}
		h.model.SetEpoch(1)
		h.expectedEpoch = 1
		h.fresh[0] = true
	}
	return h, nil
}

// faultFor returns the WriteFault hook for replica i: it fails the next
// h.walFaults[i] appends with an injected disk error. The hook survives
// crash-restarts because the countdown lives on the harness.
func (h *Harness) faultFor(i int) func(op string) error {
	return func(op string) error {
		h.walMu.Lock()
		defer h.walMu.Unlock()
		if h.walFaults[i] > 0 {
			h.walFaults[i]--
			return fmt.Errorf("injected disk-write failure (op %s)", op)
		}
		return nil
	}
}

// openReplica (re)builds replica i's full stack on its data directory,
// recovering Policy Memory from snapshot + WAL, and routes its host at the
// new server.
func (h *Harness) openReplica(i int) error {
	r := h.replicas[i]
	svc, err := policy.New(h.cfg)
	if err != nil {
		return fmt.Errorf("faultsim: build replica %d: %w", i, err)
	}
	ps, _, err := durable.OpenPolicyStore(r.dir, svc, durable.Options{
		Fsync:      false, // the harness crashes between ops, never mid-write
		WriteFault: h.faultFor(i),
	})
	if err != nil {
		return fmt.Errorf("faultsim: open replica %d store: %w", i, err)
	}
	reg := obs.NewRegistry()
	server := policyhttp.NewServerWith(svc, nil, reg, nil)
	server.SetDurable(ps)
	// Each replica fronts its service with a real admission controller, so
	// mutations flow through the coalescing queue exactly as deployed.
	// Bounds are generous — the harness is sequential — and the only sheds
	// are the ones OpShed arms deterministically via FailNext.
	ctl := policyhttp.NewAdmissionController(svc, admit.Config{
		MaxQueue: 64,
		MaxWait:  30 * time.Second,
		BatchMax: 8,
	})
	server.SetAdmission(ctl)
	if h.sc.Failover {
		// Restore the role the harness believes this replica has (the epoch
		// itself recovers from the WAL) and rebuild its standby syncer: the
		// old syncer's delta cursor described the previous service instance.
		server.SetFailover(h.roles[i], h.peerClients[i])
		syncer, serr := policyhttp.NewStandbySyncer(svc, h.peerClients[i], time.Second)
		if serr != nil {
			return fmt.Errorf("faultsim: build replica %d syncer: %w", i, serr)
		}
		h.syncers[i] = syncer
	}
	if r.ctl != nil {
		r.ctl.Close()
	}
	r.svc, r.ps, r.reg, r.server, r.ctl = svc, ps, reg, server, ctl
	h.router.Register(r.host, server)
	return nil
}

// Close releases the replicas' durable stores and stops their admission
// dispatchers.
func (h *Harness) Close() {
	for _, r := range h.replicas {
		if r == nil {
			continue
		}
		if r.ps != nil {
			r.ps.Close()
		}
		if r.ctl != nil {
			r.ctl.Close()
		}
	}
}

// ServerRegistry exposes replica i's metrics registry (tests assert the
// idempotent-replay counter there).
func (h *Harness) ServerRegistry(i int) *obs.Registry { return h.replicas[i].reg }

// FaultCounts merges the Router's injected-fault counters with the
// harness-level ones (crashes, torn tails, disk faults), by kind.
func (h *Harness) FaultCounts() map[string]int {
	out := make(map[string]int)
	h.router.mu.Lock()
	for k, n := range h.router.Injected {
		out[string(k)] += n
	}
	h.router.mu.Unlock()
	for k, n := range h.localFaults {
		out[k] += n
	}
	return out
}

// Step executes one operation: queue its HTTP faults, run it against the
// replica group and the oracle, then verify the model and replica
// consistency. A non-nil error is an invariant violation (or an internal
// harness failure) and fails the schedule.
func (h *Harness) Step(op Op) error {
	h.step++
	for _, f := range op.Faults {
		if f.Replica < 0 || f.Replica >= numReplicas {
			return fmt.Errorf("faultsim: step %d: fault replica %d out of range", h.step, f.Replica)
		}
		h.router.Queue(h.replicas[f.Replica].host, f.Kind)
	}
	var err error
	switch op.Kind {
	case OpAdvise:
		err = h.stepAdvise(op)
	case OpReport:
		err = h.stepReport(op)
	case OpCleanup:
		err = h.stepCleanup(op)
	case OpCleanupReport:
		err = h.stepCleanupReport(op)
	case OpSetThreshold:
		err = h.stepSetThreshold(op)
	case OpActivateBundle:
		err = h.stepActivateBundle(op)
	case OpRollbackBundle:
		err = h.stepRollbackBundle(op)
	case OpRenewLease:
		err = h.stepRenewLease(op)
	case OpAdvanceClock:
		err = h.stepAdvanceClock(op)
	case OpClientCrash:
		// A client process dies. Nothing reaches the service — the whole
		// point of the lease subsystem is that the server notices only via
		// the clock. The generator stops issuing ops for this workflow; its
		// holdings stay pinned until a later advanceClock expires its lease.
		h.localFaults[OpClientCrash]++
	case OpCrash, OpTornCrash:
		err = h.stepCrash(op.Replica, op.Kind == OpTornCrash)
	case OpShed:
		// Arm deterministic admission sheds: the replica's controller
		// rejects its next Count mutation submissions with 429 before any
		// side effect. The client retries through them (or gives up and
		// reports busy); either way the shed ops must leave the replica
		// byte-identical to one that never saw them.
		h.replicas[op.Replica].ctl.FailNext(op.Count)
		h.localFaults[OpShed] += op.Count
	case OpDiskFault:
		h.walMu.Lock()
		h.walFaults[op.Replica] += op.Count
		h.walMu.Unlock()
		h.localFaults[OpDiskFault] += op.Count
	case OpResync:
		err = h.stepResync()
	case OpSnapshot:
		err = h.stepSnapshot(op.Replica)
	case OpPartition:
		h.router.SetPartitioned(h.replicas[op.Replica].host, true)
		h.localFaults[OpPartition]++
	case OpHeal:
		for _, r := range h.replicas {
			h.router.SetPartitioned(r.host, false)
		}
		h.localFaults[OpHeal]++
	case OpPromote:
		err = h.stepPromote(op)
	case OpDemote:
		err = h.stepDemote(op)
	case OpStandbySync:
		err = h.stepStandbySync()
	case OpFenceProbe:
		err = h.stepFenceProbe(op)
	default:
		err = fmt.Errorf("faultsim: unknown op kind %q", op.Kind)
	}
	h.router.Drain()
	if err != nil {
		return fmt.Errorf("step %d (%s): %w", h.step, op.Kind, err)
	}
	if err := h.checkReplicas(); err != nil {
		return fmt.Errorf("step %d (%s): %w", h.step, op.Kind, err)
	}
	return nil
}

// clientOutcome routes the legitimate outcomes of a replicated call:
// success (apply to oracle + model), admission shed (the op never
// happened anywhere — nothing changes and nothing reaches the oracle),
// deterministic rejection (oracle must reject identically, nothing
// changes), or total replica loss (repair). Anything else is a violation.
// IsBusy is checked before IsRejection: a 429 is a 4xx on the wire, but
// unlike a rejection it is about the server's load, not the request, so
// the oracle — which has no admission queue — must not see it.
func (h *Harness) clientOutcome(err error, onSuccess, onRejection func() error) error {
	switch {
	case err == nil:
		if h.sc.Failover {
			if aerr := h.noteAck(); aerr != nil {
				return aerr
			}
		}
		return onSuccess()
	case policyhttp.IsBusy(err):
		return nil
	case errors.Is(err, policyhttp.ErrNoPrimary):
		// Mid-failover: every reachable replica fenced the write, so it was
		// applied nowhere the client could confirm. The primary may still
		// have applied it before a dropped response, so its freshness is no
		// longer known — stop comparing it until the next acknowledged
		// mutation or sync re-establishes it.
		h.fresh[h.curPrimary] = false
		return nil
	case policyhttp.IsRejection(err):
		return onRejection()
	case errors.Is(err, policyhttp.ErrNoReplicas):
		return h.repair()
	default:
		return fmt.Errorf("unexpected client error: %w", err)
	}
}

// noteAck runs after every acknowledged mutation in failover mode: the ack
// must come from the expected primary at the expected epoch (two replicas
// acking under different epochs is split brain, the one failure mode the
// fence exists to prevent), and it makes the primary the only replica
// whose state is required to match the oracle (the standby fenced the
// write, so it lags until its next sync).
func (h *Harness) noteAck() error {
	if e := h.rc.LastAckEpoch(); e != h.expectedEpoch {
		return fmt.Errorf("mutation acknowledged at epoch %d, expected %d", e, h.expectedEpoch)
	}
	if r := h.rc.LastAckReplica(); r != h.curPrimary {
		return fmt.Errorf("mutation acknowledged by replica %d, expected primary %d", r, h.curPrimary)
	}
	for i := range h.fresh {
		h.fresh[i] = i == h.curPrimary
	}
	return nil
}

func (h *Harness) stepAdvise(op Op) error {
	adv, err := h.rc.AdviseTransfers(op.Specs)
	return h.clientOutcome(err,
		func() error {
			if op.Invalid {
				return fmt.Errorf("invalid transfer batch was accepted")
			}
			oadv, oerr := h.oracle.AdviseTransfers(op.Specs)
			if oerr != nil {
				return fmt.Errorf("replicas accepted batch the oracle rejects: %v", oerr)
			}
			if !reflect.DeepEqual(adv, oadv) {
				return fmt.Errorf("advice diverges from oracle:\n  got  %+v\n  want %+v", adv, oadv)
			}
			h.acked[policy.OpAdviseTransfers]++
			return h.model.ApplyAdvice(op.Specs, adv)
		},
		func() error {
			if _, oerr := h.oracle.AdviseTransfers(op.Specs); oerr == nil {
				return fmt.Errorf("replicas rejected batch the oracle accepts: %v", err)
			}
			return nil
		})
}

func (h *Harness) stepReport(op Op) error {
	ack, err := h.rc.ReportTransfers(*op.Report)
	return h.clientOutcome(err,
		func() error {
			oack, oerr := h.oracle.ReportTransfers(*op.Report)
			if oerr != nil {
				return fmt.Errorf("replicas accepted report the oracle rejects: %v", oerr)
			}
			if !reflect.DeepEqual(ack, oack) {
				return fmt.Errorf("report ack diverges from oracle:\n  got  %+v\n  want %+v", ack, oack)
			}
			h.acked[policy.OpReportTransfers]++
			h.model.ApplyReport(*op.Report)
			return nil
		},
		func() error {
			if _, oerr := h.oracle.ReportTransfers(*op.Report); oerr == nil {
				return fmt.Errorf("replicas rejected report the oracle accepts: %v", err)
			}
			return nil
		})
}

func (h *Harness) stepCleanup(op Op) error {
	adv, err := h.rc.AdviseCleanups(op.Cleanups)
	return h.clientOutcome(err,
		func() error {
			if op.Invalid {
				return fmt.Errorf("invalid cleanup batch was accepted")
			}
			oadv, oerr := h.oracle.AdviseCleanups(op.Cleanups)
			if oerr != nil {
				return fmt.Errorf("replicas accepted cleanups the oracle rejects: %v", oerr)
			}
			if !reflect.DeepEqual(adv, oadv) {
				return fmt.Errorf("cleanup advice diverges from oracle:\n  got  %+v\n  want %+v", adv, oadv)
			}
			h.acked[policy.OpAdviseCleanups]++
			return h.model.ApplyCleanupAdvice(op.Cleanups, adv)
		},
		func() error {
			if _, oerr := h.oracle.AdviseCleanups(op.Cleanups); oerr == nil {
				return fmt.Errorf("replicas rejected cleanups the oracle accepts: %v", err)
			}
			return nil
		})
}

func (h *Harness) stepCleanupReport(op Op) error {
	ack, err := h.rc.ReportCleanups(*op.CleanupReport)
	return h.clientOutcome(err,
		func() error {
			oack, oerr := h.oracle.ReportCleanups(*op.CleanupReport)
			if oerr != nil {
				return fmt.Errorf("replicas accepted cleanup report the oracle rejects: %v", oerr)
			}
			if !reflect.DeepEqual(ack, oack) {
				return fmt.Errorf("cleanup ack diverges from oracle:\n  got  %+v\n  want %+v", ack, oack)
			}
			h.acked[policy.OpReportCleanups]++
			h.model.ApplyCleanupReport(*op.CleanupReport)
			return nil
		},
		func() error {
			if _, oerr := h.oracle.ReportCleanups(*op.CleanupReport); oerr == nil {
				return fmt.Errorf("replicas rejected cleanup report the oracle accepts: %v", err)
			}
			return nil
		})
}

// stepRenewLease renews op.Workflow's lease on the replica group and the
// oracle, then mirrors it into the model.
func (h *Harness) stepRenewLease(op Op) error {
	st, err := h.rc.RenewLease(op.Workflow)
	return h.clientOutcome(err,
		func() error {
			ost, oerr := h.oracle.RenewLease(op.Workflow)
			if oerr != nil {
				return fmt.Errorf("replicas accepted lease renewal the oracle rejects: %v", oerr)
			}
			if !reflect.DeepEqual(st, ost) {
				return fmt.Errorf("lease status diverges from oracle:\n  got  %+v\n  want %+v", st, ost)
			}
			h.model.ApplyRenewLease(op.Workflow)
			return nil
		},
		func() error {
			if _, oerr := h.oracle.RenewLease(op.Workflow); oerr == nil {
				return fmt.Errorf("replicas rejected lease renewal the oracle accepts: %v", err)
			}
			return nil
		})
}

// stepAdvanceClock moves the logical clock forward everywhere. The
// reclamation that follows is a logged deterministic mutation, so the
// replicas' expiry results must match the oracle's exactly, and the model
// must predict the same set of expired owners.
func (h *Harness) stepAdvanceClock(op Op) error {
	adv, err := h.rc.AdvanceClock(op.Now)
	return h.clientOutcome(err,
		func() error {
			oadv, oerr := h.oracle.AdvanceClock(op.Now)
			if oerr != nil {
				return fmt.Errorf("replicas accepted clock advance the oracle rejects: %v", oerr)
			}
			if !reflect.DeepEqual(adv, oadv) {
				return fmt.Errorf("clock advance diverges from oracle:\n  got  %+v\n  want %+v", adv, oadv)
			}
			return h.model.ApplyAdvanceClock(op.Now, adv)
		},
		func() error {
			if _, oerr := h.oracle.AdvanceClock(op.Now); oerr == nil {
				return fmt.Errorf("replicas rejected clock advance the oracle accepts: %v", err)
			}
			return nil
		})
}

func (h *Harness) stepSetThreshold(op Op) error {
	err := h.rc.SetThreshold(op.SrcHost, op.DstHost, op.Max)
	return h.clientOutcome(err,
		func() error {
			if oerr := h.oracle.SetThreshold(op.SrcHost, op.DstHost, op.Max); oerr != nil {
				return fmt.Errorf("replicas accepted threshold the oracle rejects: %v", oerr)
			}
			h.model.ApplySetThreshold(op.SrcHost, op.DstHost, op.Max)
			return nil
		},
		func() error {
			if oerr := h.oracle.SetThreshold(op.SrcHost, op.DstHost, op.Max); oerr == nil {
				return fmt.Errorf("replicas rejected threshold the oracle accepts: %v", err)
			}
			return nil
		})
}

// stepActivateBundle activates a bundle document on the replica group and
// the oracle. The replicated client carries the full document, so the call
// is self-contained even against crash-recovered replicas. The model only
// advances — and the provenance counter only increments — when the
// document's checksum differs from the active one: re-activation is an
// idempotent no-op that appends nothing and records nothing.
func (h *Harness) stepActivateBundle(op Op) error {
	info, err := h.rc.ActivateBundleDoc(op.BundleDoc)
	return h.clientOutcome(err,
		func() error {
			oinfo, oerr := h.oracle.ActivateBundle(op.BundleDoc)
			if oerr != nil {
				return fmt.Errorf("replicas activated bundle the oracle rejects: %v", oerr)
			}
			if !reflect.DeepEqual(info, oinfo) {
				return fmt.Errorf("bundle info diverges from oracle:\n  got  %+v\n  want %+v", info, oinfo)
			}
			b, perr := bundle.Parse(op.BundleDoc)
			if perr != nil {
				return fmt.Errorf("accepted bundle fails to parse: %v", perr)
			}
			if b.Checksum() != h.model.ActiveChecksum() {
				h.acked[policy.OpActivateBundle]++
				h.model.ApplyActivateBundle(b)
			}
			return nil
		},
		func() error {
			if _, oerr := h.oracle.ActivateBundle(op.BundleDoc); oerr == nil {
				return fmt.Errorf("replicas rejected bundle the oracle accepts: %v", err)
			}
			return nil
		})
}

// stepRollbackBundle re-activates the previous bundle everywhere. A
// rollback is never a no-op (the previous checksum differs by
// construction), so an acknowledged rollback always logs one activation.
func (h *Harness) stepRollbackBundle(op Op) error {
	info, err := h.rc.RollbackBundle()
	return h.clientOutcome(err,
		func() error {
			oinfo, oerr := h.oracle.RollbackBundle()
			if oerr != nil {
				return fmt.Errorf("replicas rolled back bundle the oracle rejects: %v", oerr)
			}
			if !reflect.DeepEqual(info, oinfo) {
				return fmt.Errorf("rollback info diverges from oracle:\n  got  %+v\n  want %+v", info, oinfo)
			}
			h.acked[policy.OpActivateBundle]++
			return h.model.ApplyRollbackBundle()
		},
		func() error {
			if _, oerr := h.oracle.RollbackBundle(); oerr == nil {
				return fmt.Errorf("replicas rejected rollback the oracle accepts: %v", err)
			}
			return nil
		})
}

// stepCrash kills replica i (optionally tearing the WAL tail, simulating a
// crash mid-write) and recovers it from disk. Recovery must reproduce the
// exact pre-crash Policy Memory.
func (h *Harness) stepCrash(i int, torn bool) error {
	r := h.replicas[i]
	pre := r.svc.ExportState()
	if err := r.ps.Close(); err != nil {
		return fmt.Errorf("close replica %d store: %w", i, err)
	}
	kind := OpCrash
	if torn {
		if err := tearTail(r.dir); err != nil {
			return fmt.Errorf("tear WAL tail of replica %d: %w", i, err)
		}
		kind = OpTornCrash
	}
	h.localFaults[kind]++
	if err := h.openReplica(i); err != nil {
		return err
	}
	post := r.svc.ExportState()
	if !reflect.DeepEqual(pre, post) {
		return fmt.Errorf("replica %d state after crash recovery differs from pre-crash state:\n  pre  %+v\n  post %+v", i, pre, post)
	}
	return nil
}

// tearTail simulates a crash mid-append: the last WAL segment gains a
// record header promising more bytes than follow. Recovery must detect the
// torn record and truncate it.
func tearTail(dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(names) == 0 {
		return err
	}
	sort.Strings(names)
	f, err := os.OpenFile(names[len(names)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	// Header claims a 4096-byte body; only 3 junk bytes follow.
	torn := []byte{0x00, 0x10, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03}
	_, err = f.Write(torn)
	return err
}

// stepResync brings every downed replica back from a healthy donor.
func (h *Harness) stepResync() error {
	healthy := make(map[int]bool)
	for _, i := range h.rc.Healthy() {
		healthy[i] = true
	}
	for i := 0; i < numReplicas; i++ {
		if healthy[i] {
			continue
		}
		err := h.rc.Resync(i)
		if errors.Is(err, policyhttp.ErrNoReplicas) {
			return h.repair()
		}
		// Any other resync failure is legitimate — e.g. an armed disk
		// fault on the target refuses the restore's WAL append. The
		// replica just stays down.
	}
	return nil
}

func (h *Harness) stepSnapshot(i int) error {
	if _, err := h.replicas[i].ps.SnapshotNow(); err != nil {
		return fmt.Errorf("snapshot replica %d: %w", i, err)
	}
	return nil
}

// stepPromote promotes replica i and verifies the two failover invariants
// directly: the promotion lands at exactly the next epoch (one bump per
// promotion, no epoch reuse), and the new primary's Policy Memory equals
// the oracle's — i.e. every client-acknowledged mutation survived into the
// post-failover state. The generator's episodes guarantee the structural
// precondition (the standby synced after the last ack), so a mismatch here
// is a real lost write, not a stale-standby artifact.
func (h *Harness) stepPromote(op Op) error {
	i := op.Replica
	res, err := h.clients[i].Promote()
	if err != nil {
		return fmt.Errorf("promote replica %d: %w", i, err)
	}
	if res.Epoch != h.expectedEpoch+1 {
		return fmt.Errorf("promotion of replica %d landed at epoch %d, expected %d", i, res.Epoch, h.expectedEpoch+1)
	}
	h.expectedEpoch = res.Epoch
	h.localFaults[OpPromote]++
	if _, err := h.oracle.BumpEpoch(res.Epoch); err != nil {
		return fmt.Errorf("bump oracle epoch: %w", err)
	}
	h.model.SetEpoch(res.Epoch)
	dump := h.replicas[i].svc.ExportState()
	oracleDump := h.oracle.ExportState()
	if !reflect.DeepEqual(dump, oracleDump) {
		return fmt.Errorf("acknowledged state lost across failover: new primary %d diverges from oracle:\n  primary %+v\n  oracle  %+v",
			i, dump, oracleDump)
	}
	h.roles[i] = policyhttp.RolePrimary
	h.curPrimary = i
	h.fresh[i] = true
	h.fresh[1-i] = false // its epoch now lags the bump
	h.syncers[i].Reset() // the catch-up import moved state outside the syncer
	if res.CaughtUp {
		// Clean switchover: the protocol demoted the peer before pulling.
		h.roles[1-i] = policyhttp.RoleStandby
		h.syncers[1-i].Reset()
	}
	return nil
}

// stepDemote steps replica i down to standby. Against a deposed primary
// this is usually a formality — the fence probe already forced it to
// self-depose — but the explicit demote is what the harness's role intent
// tracks, and it must be idempotent either way.
func (h *Harness) stepDemote(op Op) error {
	i := op.Replica
	if _, err := h.clients[i].Demote(); err != nil {
		return fmt.Errorf("demote replica %d: %w", i, err)
	}
	h.roles[i] = policyhttp.RoleStandby
	h.syncers[i].Reset() // it served as primary; the delta cursor is void
	return nil
}

// stepStandbySync converges every current standby on the primary: through
// the ReplicatedClient's archive resync when the replica was marked down
// (which also marks it up again), through its own StandbySyncer otherwise.
// With both hosts reachable the sync MUST succeed and leave the standby
// byte-identical to a fresh primary — this is the heal+resync convergence
// invariant; the very next checkReplicas compares both replicas against
// the oracle. With a partition in force the attempt may fail; the standby
// simply stays stale.
func (h *Harness) stepStandbySync() error {
	for i := 0; i < numReplicas; i++ {
		peer := 1 - i
		if h.roles[i] != policyhttp.RoleStandby || h.roles[peer] != policyhttp.RolePrimary {
			continue
		}
		reachable := !h.router.Partitioned(h.replicas[i].host) && !h.router.Partitioned(h.replicas[peer].host)
		down := true
		for _, j := range h.rc.Healthy() {
			if j == i {
				down = false
			}
		}
		var err error
		if down {
			err = h.rc.ResyncFrom(i, peer)
		} else {
			err = h.syncers[i].SyncOnce()
		}
		if err != nil {
			if reachable {
				return fmt.Errorf("standby %d failed to sync from reachable primary %d: %w", i, peer, err)
			}
			continue
		}
		h.fresh[i] = h.fresh[peer]
	}
	return nil
}

// stepFenceProbe writes to a deposed primary carrying the current epoch.
// The server still believes it is primary (it was partitioned through the
// promotion), but the newer epoch in the request header must make it
// self-depose and fence the write with 412 — accepting it would be split
// brain: two servers acknowledging writes under different epochs.
func (h *Harness) stepFenceProbe(op Op) error {
	c := h.clients[op.Replica]
	c.RaiseEpoch(h.expectedEpoch)
	_, err := c.AdviseTransfers(op.Specs)
	switch {
	case err == nil:
		return fmt.Errorf("deposed replica %d accepted a write at epoch %d (split brain)", op.Replica, h.expectedEpoch)
	case policyhttp.IsFenced(err):
		h.localFaults[OpFenceProbe]++
		return nil
	default:
		return fmt.Errorf("fence probe on replica %d: want 412, got: %w", op.Replica, err)
	}
}

// repair is the harness's last-resort recovery when every replica is down
// (e.g. disk faults armed on all of them at once): disarm the fault hooks
// and restore each replica from the fault-free oracle. The triggering
// operation is treated as never applied — the oracle and model do not see
// it — which is exactly the contract: a call that returns ErrNoReplicas
// must leave no effect the resync path won't erase.
func (h *Harness) repair() error {
	h.walMu.Lock()
	for i := range h.walFaults {
		h.walFaults[i] = 0
	}
	h.walMu.Unlock()
	h.router.Drain()
	dump := h.oracle.ExportState()
	for i, c := range h.clients {
		if err := c.Restore(dump); err != nil {
			return fmt.Errorf("repair: restore replica %d: %w", i, err)
		}
	}
	rc, err := policyhttp.NewReplicatedClient(h.clients[:]...)
	if err != nil {
		return err
	}
	h.rc = rc
	if h.sc.Failover {
		// Every replica was just restored from the oracle, epoch included.
		for i := range h.fresh {
			h.fresh[i] = true
		}
	}
	return nil
}

// checkReplicas verifies the oracle against the order-free model and every
// healthy replica against the oracle, dump for dump. In failover mode the
// comparison is direct (ExportState, not HTTP — a partitioned replica must
// still be checkable) and gated on freshness: a standby legitimately lags
// the oracle between syncs, so only replicas required to be current are
// compared.
func (h *Harness) checkReplicas() error {
	oracleDump := h.oracle.ExportState()
	if err := h.model.CheckDump(oracleDump); err != nil {
		return err
	}
	if err := h.checkDecisions(); err != nil {
		return err
	}
	if h.sc.Failover {
		for i := 0; i < numReplicas; i++ {
			if !h.fresh[i] {
				continue
			}
			dump := h.replicas[i].svc.ExportState()
			if !reflect.DeepEqual(dump, oracleDump) {
				return fmt.Errorf("replica %d (%s, fresh) diverged from oracle:\n  replica %+v\n  oracle  %+v",
					i, h.roles[i], dump, oracleDump)
			}
		}
		return nil
	}
	for _, i := range h.rc.Healthy() {
		dump, err := h.clients[i].Dump()
		if err != nil {
			return fmt.Errorf("dump replica %d: %w", i, err)
		}
		if !reflect.DeepEqual(dump, oracleDump) {
			return fmt.Errorf("replica %d diverged from oracle:\n  replica %+v\n  oracle  %+v", i, dump, oracleDump)
		}
	}
	return nil
}

// checkDecisions asserts decision-provenance exactly-once: the oracle
// committed one decision record per acknowledged advise/report and
// nothing else. The oracle sees exactly the acknowledged operations (no
// retries, no replays, no rejections), so any mismatch means an
// operation produced zero or duplicate provenance. Replica rings are
// not compared — a crash-recovered replica legitimately rebuilds only
// the WAL tail since its last snapshot — but replica behavior under
// retries is covered by TestDecisionRecordsSurviveRetries.
func (h *Harness) checkDecisions() error {
	for _, op := range []string{
		policy.OpAdviseTransfers, policy.OpReportTransfers,
		policy.OpAdviseCleanups, policy.OpReportCleanups,
		policy.OpActivateBundle,
	} {
		if got, want := h.oracle.DecisionCount(op), h.acked[op]; got != want {
			return fmt.Errorf("decision records for %s: %d committed, %d operations acknowledged", op, got, want)
		}
	}
	// Bundle-stamped provenance: every record carries the version of the
	// bundle that produced it, and the newest record must have been
	// produced under the currently active version.
	recs := h.oracle.Decisions(0)
	for _, r := range recs {
		if r.Bundle == "" {
			return fmt.Errorf("decision record %s/%d carries no bundle version", r.Op, r.Seq)
		}
	}
	if len(recs) > 0 {
		if got, want := recs[len(recs)-1].Bundle, h.model.ActiveVersion(); got != want {
			return fmt.Errorf("newest decision record stamped with bundle %q, active bundle is %q", got, want)
		}
	}
	return nil
}

// RunSchedule generates and executes one randomized schedule, returning
// the executed trace (for shrinking and replay), the fault counts, and the
// first invariant violation, if any.
func RunSchedule(baseDir string, sched Schedule) ([]Op, map[string]int, error) {
	h, err := NewHarness(baseDir, sched)
	if err != nil {
		return nil, nil, err
	}
	defer h.Close()
	g := &gen{rng: rand.New(rand.NewSource(sched.Seed)), h: h, dead: make(map[string]bool)}
	g.initBundles(sched.Config)
	var trace []Op
	for i := 0; i < sched.Config.OpCount; i++ {
		op := g.next(sched.Config)
		trace = append(trace, op)
		if err := h.Step(op); err != nil {
			return trace, h.FaultCounts(), err
		}
	}
	return trace, h.FaultCounts(), nil
}

// ReplayTrace executes a fixed trace under a schedule's configuration —
// the replay half of shrink-and-replay debugging.
func ReplayTrace(baseDir string, sched Schedule, trace []Op) error {
	h, err := NewHarness(baseDir, sched)
	if err != nil {
		return err
	}
	defer h.Close()
	for _, op := range trace {
		if err := h.Step(op); err != nil {
			return err
		}
	}
	return nil
}
