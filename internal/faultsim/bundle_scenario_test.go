package faultsim

import (
	"encoding/json"
	"testing"

	"policyflow/internal/bundle"
	"policyflow/internal/policy"
)

func scenarioBundle(t *testing.T, version, algo string, streams, threshold, clusterFactor int, pairs ...bundle.PairThreshold) []byte {
	t.Helper()
	b := bundle.Bundle{
		SchemaVersion:    bundle.SchemaVersion,
		Version:          version,
		Description:      "scenario bundle",
		Algorithm:        algo,
		DefaultStreams:   streams,
		MinStreams:       1,
		DefaultThreshold: threshold,
		ClusterFactor:    clusterFactor,
		PairThresholds:   pairs,
	}
	doc, err := json.Marshal(&b)
	if err != nil {
		t.Fatalf("marshal scenario bundle: %v", err)
	}
	return doc
}

// TestBundleActivationScenario is the acceptance scenario for policy-as-
// data: bundle activations and a rollback interleaved with response loss,
// duplicate delivery, torn-tail crashes and plain crash-restarts. Every
// step also runs the harness's standing checks — the order-free model on
// the oracle, byte-for-byte replica/oracle agreement, exactly-once
// decision provenance, and the bundle stamp on the newest decision record
// — so the scenario proves activation is atomic, durable, idempotent and
// attributable without any extra assertions for those properties.
func TestBundleActivationScenario(t *testing.T) {
	sched := Schedule{Seed: 11, Config: ScheduleConfig{
		Algorithm:      policy.AlgoGreedy,
		Threshold:      4,
		DefaultStreams: 2,
		ClusterFactor:  1,
		FaultProb:      0,
	}}
	h, err := NewHarness(t.TempDir(), sched)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	mustStep := func(op Op) {
		t.Helper()
		if err := h.Step(op); err != nil {
			t.Fatalf("step %+v: %v", op, err)
		}
	}

	// Work under the compiled-in v0 bundle.
	mustStep(wfAdviseOp("wf-a", "ra", "f-01", "f-02"))
	if v := h.oracle.Tunables().Version; v != policy.BootstrapBundleVersion {
		t.Fatalf("boot bundle version %q, want %q", v, policy.BootstrapBundleVersion)
	}

	// Activate v1 under response loss and duplicate delivery: the client
	// retries, the idempotency layer replays, and exactly one activation
	// must be logged.
	docA := scenarioBundle(t, "scenario-v1", bundle.AlgoGreedy, 3, 6, 1,
		bundle.PairThreshold{SourceHost: "hostA", DestHost: "hostB", Max: 5})
	mustStep(Op{Kind: OpActivateBundle, BundleDoc: docA, Faults: []FaultSpec{
		{Replica: 0, Kind: FaultDropResponse},
		{Replica: 1, Kind: FaultDuplicate},
	}})
	tun := h.oracle.Tunables()
	if tun.Version != "scenario-v1" || tun.DefaultThreshold != 6 || tun.DefaultStreams != 3 {
		t.Fatalf("post-activation tunables %+v, want scenario-v1 threshold 6 streams 3", tun)
	}
	if got := h.oracle.DecisionCount(policy.OpActivateBundle); got != 1 {
		t.Fatalf("%d activation records after faulted activation, want exactly 1", got)
	}

	// Re-activating the same document is an idempotent no-op: nothing is
	// appended and nothing is recorded.
	mustStep(Op{Kind: OpActivateBundle, BundleDoc: docA})
	if got := h.oracle.DecisionCount(policy.OpActivateBundle); got != 1 {
		t.Fatalf("%d activation records after no-op re-activation, want 1", got)
	}

	// Torn crash: replica 0 recovers by replaying the activation past the
	// torn WAL tail (Step compares pre- and post-crash state exactly).
	mustStep(Op{Kind: OpTornCrash, Replica: 0})

	// New work is shaped — and stamped — by the active bundle.
	mustStep(wfAdviseOp("wf-b", "rb", "f-03"))
	recs := h.oracle.Decisions(0)
	if got := recs[len(recs)-1].Bundle; got != "scenario-v1" {
		t.Fatalf("advice under scenario-v1 stamped %q", got)
	}

	// Switch algorithms entirely: balanced v2 re-materializes cluster
	// ledgers from in-flight transfers, then survives a crash-restart.
	docB := scenarioBundle(t, "scenario-v2", bundle.AlgoBalanced, 1, 8, 2)
	mustStep(Op{Kind: OpActivateBundle, BundleDoc: docB})
	mustStep(Op{Kind: OpCrash, Replica: 1})
	mustStep(wfAdviseOp("wf-a", "rc", "f-04"))

	// Roll back to v1 without a restart: algorithm and thresholds return.
	mustStep(Op{Kind: OpRollbackBundle})
	tun = h.oracle.Tunables()
	if tun.Version != "scenario-v1" || tun.DefaultThreshold != 6 || tun.Algorithm != policy.AlgoGreedy {
		t.Fatalf("post-rollback tunables %+v, want scenario-v1 greedy threshold 6", tun)
	}

	// Crash-recover both replicas: the whole activation history — two
	// activations and a rollback — replays to the same state, and work
	// continues under the rolled-back bundle.
	mustStep(Op{Kind: OpCrash, Replica: 0})
	mustStep(Op{Kind: OpTornCrash, Replica: 1})
	mustStep(wfAdviseOp("wf-b", "rd", "f-05"))
	recs = h.oracle.Decisions(0)
	if got := recs[len(recs)-1].Bundle; got != "scenario-v1" {
		t.Fatalf("advice after rollback stamped %q, want scenario-v1", got)
	}
}

// TestScheduleGeneratorDrawsBundleOps guards the generator's coverage:
// randomized schedules must actually exercise activations and rollbacks,
// or the model-checking of bundle semantics silently stops happening.
func TestScheduleGeneratorDrawsBundleOps(t *testing.T) {
	activations, rollbacks := 0, 0
	for seed := int64(1); seed <= 60; seed++ {
		sched := RandomSchedule(seed)
		trace, _, err := RunSchedule(t.TempDir(), sched)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, op := range trace {
			switch op.Kind {
			case OpActivateBundle:
				activations++
			case OpRollbackBundle:
				rollbacks++
			}
		}
	}
	if activations == 0 || rollbacks == 0 {
		t.Errorf("60 schedules drew %d activations and %d rollbacks, want both > 0", activations, rollbacks)
	}
}
