package faultsim

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"policyflow/internal/policy"
)

// TestAtMostOnceUnderResponseLoss drives mutations through dropped
// responses, duplicated deliveries and injected 503s, and proves the
// client's idempotency-key retry machinery kept every mutation
// at-most-once: the harness's per-step consistency checks pass, the client
// metrics show the retries and replays actually happened, and the server
// counted the answers it served from its idempotency cache.
func TestAtMostOnceUnderResponseLoss(t *testing.T) {
	h, err := NewHarness(t.TempDir(), passingSchedule())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	ops := []Op{
		// The handler applies the mutation, the response is lost, the
		// retry must be answered from the idempotency cache.
		adviseOp("r-1", "f-01", FaultSpec{Replica: 0, Kind: FaultDropResponse}),
		// The delivery itself is duplicated; the second copy carries the
		// same key and must replay, not re-apply.
		adviseOp("r-2", "f-02", FaultSpec{Replica: 0, Kind: FaultDuplicate}),
		// A 503 exercises the retryable-status path.
		adviseOp("r-3", "f-03", FaultSpec{Replica: 1, Kind: Fault503}),
		adviseOp("r-4", "f-04",
			FaultSpec{Replica: 0, Kind: FaultDropResponse},
			FaultSpec{Replica: 1, Kind: FaultLoseRequest}),
	}
	for i, op := range ops {
		if err := h.Step(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}

	const endpoint = "/v1/transfers"
	if v := h.ClientMetrics.Retries.With(endpoint).Value(); v == 0 {
		t.Error("no client retries recorded despite injected faults")
	}
	if v := h.ClientMetrics.IdempotentReplays.With(endpoint).Value(); v == 0 {
		t.Error("no idempotent replays observed by the client")
	}
	transport := h.ClientMetrics.Faults.With(endpoint, "transport").Value()
	http5xx := h.ClientMetrics.Faults.With(endpoint, "http_5xx").Value()
	if transport == 0 || http5xx == 0 {
		t.Errorf("fault counters incomplete: transport=%v http_5xx=%v", transport, http5xx)
	}
	// The server side of the same story: replica 0 answered at least one
	// retry from its idempotency cache instead of re-applying.
	served := h.ServerRegistry(0).Counter("http_idempotent_replays_total",
		"Mutating requests answered from the idempotency cache without re-applying.").With().Value()
	if served == 0 {
		t.Error("replica 0 never served from its idempotency cache")
	}
}

// TestConcurrentClientsStayConsistent hammers the replicated client from
// several goroutines (the -race companion to the single-threaded
// schedules): after the storm quiesces, both replicas must hold identical,
// internally consistent Policy Memory.
func TestConcurrentClientsStayConsistent(t *testing.T) {
	h, err := NewHarness(t.TempDir(), passingSchedule())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				specs := []policy.TransferSpec{{
					RequestID:  fmt.Sprintf("r-%d-%d", w, i),
					WorkflowID: fmt.Sprintf("wf-%d", w),
					SourceURL:  fmt.Sprintf("gsiftp://hostA/data/w%d-f%02d", w, i),
					DestURL:    fmt.Sprintf("gsiftp://hostB/data/w%d-f%02d", w, i),
				}}
				adv, err := h.rc.AdviseTransfers(specs)
				if err != nil {
					t.Errorf("worker %d advise %d: %v", w, i, err)
					return
				}
				if i%2 == 0 && len(adv.Transfers) == 1 {
					if _, err := h.rc.ReportTransfers(policy.CompletionReport{
						TransferIDs: []string{adv.Transfers[0].ID},
					}); err != nil {
						t.Errorf("worker %d report %d: %v", w, i, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	d0, err := h.clients[0].Dump()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := h.clients[1].Dump()
	if err != nil {
		t.Fatal(err)
	}
	b0, _ := json.Marshal(d0)
	b1, _ := json.Marshal(d1)
	j0, j1 := string(b0), string(b1)
	if j0 != j1 {
		t.Fatalf("replicas diverged under concurrent load:\n  replica0 %s\n  replica1 %s", j0, j1)
	}
	if err := checkDumpConsistency(d0); err != nil {
		t.Fatalf("post-storm state inconsistent: %v", err)
	}
}
