package faultsim

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"policyflow/internal/bundle"
	"policyflow/internal/policy"
)

// Op kinds. Every schedule is a flat list of Ops, serializable to JSON so
// a failing trace can be printed, shrunk and replayed byte-for-byte.
const (
	OpAdvise         = "advise"
	OpReport         = "report"
	OpCleanup        = "cleanup"
	OpCleanupReport  = "cleanupReport"
	OpSetThreshold   = "setThreshold"
	OpCrash          = "crash"          // close a replica's store, reopen, compare state
	OpTornCrash      = "tornCrash"      // crash + append a torn record to the WAL tail first
	OpDiskFault      = "diskFault"      // arm N injected WAL append failures on a replica
	OpShed           = "shed"           // arm N admission-control sheds (429) on a replica
	OpResync         = "resync"         // resync every downed replica from a healthy peer
	OpSnapshot       = "snapshot"       // force a snapshot on a replica
	OpRenewLease     = "renewLease"     // explicitly renew a workflow's lease
	OpAdvanceClock   = "advanceClock"   // advance the logical clock, expiring stale leases
	OpClientCrash    = "clientCrash"    // a client dies: it stops issuing ops, holdings stay pinned
	OpActivateBundle = "activateBundle" // activate a policy bundle document on every replica
	OpRollbackBundle = "rollbackBundle" // re-activate the previously active bundle

	// Failover-mode operations (ScheduleConfig.Failover). The generator
	// emits them in scripted episodes — sync, partition, promote, heal,
	// probe, demote, resync — so every schedule exercises a full failover
	// with the structural preconditions (standby caught up before the
	// primary partitions) that make the durability invariant checkable.
	OpPartition   = "partition"   // cut a replica's host off the network
	OpHeal        = "heal"        // reconnect every partitioned host
	OpPromote     = "promote"     // promote a replica to primary (epoch bump)
	OpDemote      = "demote"      // demote a replica to standby
	OpStandbySync = "standbySync" // sync/resync every current standby from the primary
	OpFenceProbe  = "fenceProbe"  // write to a deposed primary at the new epoch; must be fenced
)

// Op is one step of a schedule.
type Op struct {
	Kind   string      `json:"kind"`
	Faults []FaultSpec `json:"faults,omitempty"` // HTTP faults queued before the step

	Specs         []policy.TransferSpec    `json:"specs,omitempty"`
	Report        *policy.CompletionReport `json:"report,omitempty"`
	Cleanups      []policy.CleanupSpec     `json:"cleanups,omitempty"`
	CleanupReport *policy.CleanupReport    `json:"cleanupReport,omitempty"`

	SrcHost string `json:"srcHost,omitempty"` // setThreshold
	DstHost string `json:"dstHost,omitempty"`
	Max     int    `json:"max,omitempty"`

	Replica int  `json:"replica,omitempty"` // crash/tornCrash/diskFault/shed/snapshot
	Count   int  `json:"count,omitempty"`   // diskFault/shed: failures to arm
	Invalid bool `json:"invalid,omitempty"` // advise/cleanup: deliberately malformed

	Workflow string  `json:"workflow,omitempty"` // renewLease/clientCrash
	Now      float64 `json:"now,omitempty"`      // advanceClock

	BundleDoc json.RawMessage `json:"bundleDoc,omitempty"` // activateBundle
}

// ScheduleConfig fixes the service configuration a schedule runs under.
type ScheduleConfig struct {
	Algorithm      policy.Algorithm `json:"algorithm"`
	Threshold      int              `json:"threshold"`
	DefaultStreams int              `json:"defaultStreams"`
	ClusterFactor  int              `json:"clusterFactor"`
	OpCount        int              `json:"opCount"`
	FaultProb      float64          `json:"faultProb"`
	// LeaseTTL enables the lease subsystem when positive; the generator
	// then also draws renewLease, advanceClock and clientCrash operations.
	LeaseTTL float64 `json:"leaseTtl,omitempty"`
	// Failover runs the replicas as an epoch-fenced primary/standby pair
	// (replica 0 starts as primary at epoch 1) instead of the role-less
	// active-replication group, and the generator interleaves scripted
	// failover episodes with the normal workload.
	Failover bool `json:"failover,omitempty"`
}

// Schedule identifies one randomized run: regenerate it from the seed.
type Schedule struct {
	Seed   int64          `json:"seed"`
	Config ScheduleConfig `json:"config"`
}

// RandomSchedule derives a schedule configuration from a seed. The same
// seed always yields the same configuration and, through the generator,
// the same operation sequence.
func RandomSchedule(seed int64) Schedule {
	rng := rand.New(rand.NewSource(seed))
	algos := []policy.Algorithm{policy.AlgoGreedy, policy.AlgoGreedy, policy.AlgoBalanced, policy.AlgoBalanced, policy.AlgoNone}
	return Schedule{
		Seed: seed,
		Config: ScheduleConfig{
			Algorithm:      algos[rng.Intn(len(algos))],
			Threshold:      2 + rng.Intn(8),   // 2..9
			DefaultStreams: 1 + rng.Intn(4),   // 1..4
			ClusterFactor:  1 + rng.Intn(3),   // 1..3
			OpCount:        12 + rng.Intn(17), // 12..28
			FaultProb:      0.25 + rng.Float64()*0.25,
			// Half the schedules exercise liveness: leases short enough that
			// generated clock jumps routinely expire them.
			LeaseTTL: float64(rng.Intn(2)) * (2 + float64(rng.Intn(20))), // 0 or 2..21
		},
	}
}

// RandomFailoverSchedule derives a failover-mode schedule from a seed: the
// same configuration space as RandomSchedule, run as an epoch-fenced
// primary/standby pair, with extra op budget because a failover episode
// spends six to eight operations of it.
func RandomFailoverSchedule(seed int64) Schedule {
	s := RandomSchedule(seed)
	s.Config.Failover = true
	s.Config.OpCount += 12
	return s
}

// gen draws operations for a running harness. Every random choice goes
// through the single rng in a fixed order, so a (seed, config) pair fully
// determines the trace; nothing iterates a Go map.
type gen struct {
	rng    *rand.Rand
	h      *Harness
	reqSeq int
	// now is the generator's logical clock; advanceClock ops carry it, and
	// it only moves forward.
	now float64
	// dead marks workflows whose client crashed: the generator stops
	// issuing operations on their behalf — no advises, no reports — so
	// their holdings stay pinned until a lease expiry reclaims them.
	dead map[string]bool
	// variants are pre-drawn bundle documents the schedule activates;
	// activeVar/prevVar track which variant the generator believes is
	// active (-1 = the compiled-in v0) so rollbacks are drawn sensibly.
	variants  [][]byte
	activeVar int
	prevVar   int
	hasPrev   bool
	// Failover-episode state: pending ops are emitted next, verbatim;
	// epilogue is queued after epilogueIn more normal ops. A non-nil
	// epilogue marks an episode in flight, so episodes never nest.
	pending    []Op
	epilogue   []Op
	epilogueIn int
}

var (
	genHosts    = []string{"hostA", "hostB", "hostC"}
	genWfs      = []string{"wf-a", "wf-b", "wf-c"}
	genClusters = []string{"", "cl-1", "cl-2"}
)

func (g *gen) requestID() string {
	g.reqSeq++
	return fmt.Sprintf("r-%06d", g.reqSeq)
}

// liveWfs returns the workflows whose clients are still running, in the
// fixed genWfs order.
func (g *gen) liveWfs() []string {
	live := make([]string, 0, len(genWfs))
	for _, wf := range genWfs {
		if !g.dead[wf] {
			live = append(live, wf)
		}
	}
	return live
}

func (g *gen) fileURL(host string, n int) string {
	return fmt.Sprintf("gsiftp://%s/data/f-%02d", host, n)
}

// transferSpec draws one spec. Files live on a small set of hosts so
// schedules collide on dest URLs and host pairs often enough to exercise
// the duplicate-suppression and threshold rules.
func (g *gen) transferSpec() policy.TransferSpec {
	src := genHosts[g.rng.Intn(len(genHosts))]
	dst := genHosts[g.rng.Intn(len(genHosts))]
	for dst == src {
		dst = genHosts[g.rng.Intn(len(genHosts))]
	}
	n := g.rng.Intn(12)
	live := g.liveWfs()
	return policy.TransferSpec{
		RequestID:        g.requestID(),
		WorkflowID:       live[g.rng.Intn(len(live))],
		ClusterID:        genClusters[g.rng.Intn(len(genClusters))],
		SourceURL:        g.fileURL(src, n),
		DestURL:          g.fileURL(dst, n),
		RequestedStreams: g.rng.Intn(5), // 0 → service default
	}
}

// faults draws the HTTP faults to queue before a client op. The breaking
// FaultDuplicateNoKey kind is never drawn here — it exists only for the
// detector self-test.
var scheduleFaultKinds = []FaultKind{FaultLoseRequest, FaultDropResponse, Fault503, FaultDuplicate}

func (g *gen) faults(prob float64) []FaultSpec {
	if g.rng.Float64() >= prob {
		return nil
	}
	n := 1 + g.rng.Intn(2)
	fs := make([]FaultSpec, 0, n)
	for i := 0; i < n; i++ {
		fs = append(fs, FaultSpec{
			Replica: g.rng.Intn(numReplicas),
			Kind:    scheduleFaultKinds[g.rng.Intn(len(scheduleFaultKinds))],
		})
	}
	return fs
}

// initBundles pre-draws the bundle variants a schedule activates. Every
// random choice goes through the single rng before any op is drawn, so
// the variant set is part of the (seed, config) determinism contract.
func (g *gen) initBundles(sc ScheduleConfig) {
	g.activeVar = -1 // compiled-in v0
	algos := []string{bundle.AlgoGreedy, bundle.AlgoBalanced, bundle.AlgoPassthrough}
	pairCandidates := [][2]string{{"hostA", "hostB"}, {"hostB", "hostC"}}
	for i := 0; i < 3; i++ {
		b := bundle.Bundle{
			SchemaVersion:    bundle.SchemaVersion,
			Version:          fmt.Sprintf("sim-v%d", i+1),
			Description:      "fault-schedule variant",
			Algorithm:        algos[g.rng.Intn(len(algos))],
			DefaultStreams:   1 + g.rng.Intn(4),
			MinStreams:       1,
			DefaultThreshold: 2 + g.rng.Intn(8),
			ClusterFactor:    1 + g.rng.Intn(3),
		}
		for _, pc := range pairCandidates {
			if g.rng.Intn(2) == 0 {
				b.PairThresholds = append(b.PairThresholds, bundle.PairThreshold{
					SourceHost: pc[0], DestHost: pc[1], Max: 1 + g.rng.Intn(8),
				})
			}
		}
		doc, err := json.Marshal(&b)
		if err != nil {
			panic(fmt.Sprintf("faultsim: marshal bundle variant: %v", err))
		}
		g.variants = append(g.variants, doc)
	}
}

// genBundleOp draws a bundle activation or — when a previous bundle
// exists — occasionally a rollback. Re-activating the current variant is
// allowed: the service must treat it as an idempotent no-op.
func (g *gen) genBundleOp(sc ScheduleConfig) Op {
	if g.hasPrev && g.rng.Float64() < 0.35 {
		g.activeVar, g.prevVar = g.prevVar, g.activeVar
		return Op{Kind: OpRollbackBundle, Faults: g.faults(sc.FaultProb)}
	}
	vi := g.rng.Intn(len(g.variants))
	if vi != g.activeVar {
		g.prevVar, g.hasPrev = g.activeVar, true
		g.activeVar = vi
	}
	return Op{Kind: OpActivateBundle, BundleDoc: g.variants[vi], Faults: g.faults(sc.FaultProb)}
}

// next draws the next operation given the harness's current model state.
// In failover mode, scripted episode ops take priority, and draws that
// only make sense for the role-less group (resync of a downed peer, disk
// faults and sheds whose 5xx/429 handling assumes any replica may refuse
// a write) are remapped to standby syncs — their behaviors are covered by
// the role-less schedules, and keeping them here would down the only
// server allowed to accept writes.
func (g *gen) next(sc ScheduleConfig) Op {
	if len(g.pending) > 0 {
		op := g.pending[0]
		g.pending = g.pending[1:]
		return op
	}
	if sc.Failover {
		if g.epilogue != nil {
			if g.epilogueIn > 0 {
				g.epilogueIn--
			} else {
				ops := g.epilogue
				g.epilogue = nil
				g.pending = ops[1:]
				return ops[0]
			}
		} else if g.rng.Float64() < 0.15 {
			return g.startFailoverEpisode()
		}
		op := g.draw(sc)
		switch op.Kind {
		case OpResync, OpDiskFault, OpShed:
			return Op{Kind: OpStandbySync}
		}
		return op
	}
	return g.draw(sc)
}

// startFailoverEpisode scripts one failover. Both variants begin with a
// standby sync so the standby holds every acknowledged mutation before
// the promotion — the structural precondition that makes "no acked write
// is lost" an invariant rather than a hope — and end with a fence probe
// against the deposed primary plus a resync that must reconverge it.
func (g *gen) startFailoverEpisode() Op {
	old := g.h.curPrimary
	nw := 1 - old
	probe := g.transferSpec()
	if g.rng.Float64() < 0.6 {
		// Partitioned failover: the primary drops off the network after
		// the sync, the standby is promoted without a catch-up pull, and
		// after the heal the old primary must self-depose on first contact.
		g.pending = []Op{
			{Kind: OpPartition, Replica: old},
			{Kind: OpPromote, Replica: nw},
		}
		g.epilogue = []Op{
			{Kind: OpHeal},
			{Kind: OpFenceProbe, Replica: old, Specs: []policy.TransferSpec{probe}},
			{Kind: OpDemote, Replica: old},
			{Kind: OpStandbySync},
		}
		g.epilogueIn = 1 + g.rng.Intn(3)
		return Op{Kind: OpStandbySync}
	}
	// Clean switchover: the promote protocol itself demotes the peer and
	// pulls its final state, so only the probe and resync remain.
	g.pending = []Op{{Kind: OpPromote, Replica: nw}}
	g.epilogue = []Op{
		{Kind: OpFenceProbe, Replica: old, Specs: []policy.TransferSpec{probe}},
		{Kind: OpStandbySync},
	}
	g.epilogueIn = 1 + g.rng.Intn(3)
	return Op{Kind: OpStandbySync}
}

// draw picks one op from the normal workload distribution.
func (g *gen) draw(sc ScheduleConfig) Op {
	if sc.LeaseTTL > 0 && g.rng.Float64() < 0.18 {
		return g.genLeaseOp(sc)
	}
	roll := g.rng.Float64()
	switch {
	case roll < 0.30:
		return g.genAdvise(sc)
	case roll < 0.50:
		return g.genReport(sc)
	case roll < 0.62:
		return g.genCleanup(sc)
	case roll < 0.72:
		return g.genCleanupReport(sc)
	case roll < 0.79:
		return Op{
			Kind:    OpSetThreshold,
			Faults:  g.faults(sc.FaultProb),
			SrcHost: genHosts[g.rng.Intn(len(genHosts))],
			DstHost: genHosts[g.rng.Intn(len(genHosts))],
			Max:     1 + g.rng.Intn(8), // statusFor maps max<1 to 500, so stay valid
		}
	case roll < 0.84:
		return g.genBundleOp(sc)
	case roll < 0.88:
		torn := g.rng.Intn(3) == 0
		kind := OpCrash
		if torn {
			kind = OpTornCrash
		}
		return Op{Kind: kind, Replica: g.rng.Intn(numReplicas)}
	case roll < 0.91:
		return Op{Kind: OpDiskFault, Replica: g.rng.Intn(numReplicas), Count: 1}
	case roll < 0.94:
		// 1 = shed then the client's retry succeeds; 3 = every attempt
		// shed, the client reports busy and the op must be a no-op.
		return Op{Kind: OpShed, Replica: g.rng.Intn(numReplicas), Count: 1 + g.rng.Intn(3)}
	case roll < 0.97:
		return Op{Kind: OpResync}
	default:
		return Op{Kind: OpSnapshot, Replica: g.rng.Intn(numReplicas)}
	}
}

// genLeaseOp draws a liveness operation: renew a live workflow's lease,
// advance the logical clock (sometimes far enough to expire every current
// lease), or crash a client process.
func (g *gen) genLeaseOp(sc ScheduleConfig) Op {
	switch roll := g.rng.Float64(); {
	case roll < 0.30:
		live := g.liveWfs()
		return Op{Kind: OpRenewLease, Workflow: live[g.rng.Intn(len(live))], Faults: g.faults(sc.FaultProb)}
	case roll < 0.85:
		delta := 0.5 + g.rng.Float64()*sc.LeaseTTL*0.4
		if g.rng.Intn(4) == 0 {
			// Jump past every deadline currently in force.
			delta += sc.LeaseTTL + 1
		}
		g.now += delta
		return Op{Kind: OpAdvanceClock, Now: g.now, Faults: g.faults(sc.FaultProb)}
	default:
		live := g.liveWfs()
		if len(live) <= 1 {
			// Keep at least one client running; advance the clock instead.
			g.now++
			return Op{Kind: OpAdvanceClock, Now: g.now, Faults: g.faults(sc.FaultProb)}
		}
		wf := live[g.rng.Intn(len(live))]
		g.dead[wf] = true
		return Op{Kind: OpClientCrash, Workflow: wf}
	}
}

func (g *gen) genAdvise(sc ScheduleConfig) Op {
	if g.rng.Float64() < 0.10 {
		// Deliberately malformed batch: the service must reject it with a
		// 4xx on every replica and change no state anywhere.
		if g.rng.Intn(2) == 0 {
			return Op{Kind: OpAdvise, Invalid: true, Faults: g.faults(sc.FaultProb)}
		}
		spec := g.transferSpec()
		spec.DestURL = ""
		return Op{Kind: OpAdvise, Invalid: true, Specs: []policy.TransferSpec{spec}, Faults: g.faults(sc.FaultProb)}
	}
	n := 1 + g.rng.Intn(3)
	specs := make([]policy.TransferSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, g.transferSpec())
	}
	return Op{Kind: OpAdvise, Specs: specs, Faults: g.faults(sc.FaultProb)}
}

func (g *gen) genReport(sc ScheduleConfig) Op {
	// Only live clients report: a crashed workflow's transfers stay
	// in-flight until its lease expires.
	ids := g.h.model.InFlightIDsOwned(g.dead)
	if len(ids) == 0 {
		return g.genAdvise(sc)
	}
	perm := g.rng.Perm(len(ids))
	n := 1 + g.rng.Intn(len(ids))
	rep := &policy.CompletionReport{}
	for i := 0; i < n; i++ {
		id := ids[perm[i]]
		if g.rng.Float64() < 0.3 {
			rep.FailedIDs = append(rep.FailedIDs, id)
		} else {
			rep.TransferIDs = append(rep.TransferIDs, id)
		}
	}
	if g.rng.Float64() < 0.15 {
		rep.TransferIDs = append(rep.TransferIDs, fmt.Sprintf("t-%08d", 900000+g.rng.Intn(1000)))
	}
	return Op{Kind: OpReport, Report: rep, Faults: g.faults(sc.FaultProb)}
}

func (g *gen) genCleanup(sc ScheduleConfig) Op {
	live := g.liveWfs()
	if g.rng.Float64() < 0.08 {
		spec := policy.CleanupSpec{RequestID: g.requestID(), WorkflowID: live[g.rng.Intn(len(live))]}
		return Op{Kind: OpCleanup, Invalid: true, Cleanups: []policy.CleanupSpec{spec}, Faults: g.faults(sc.FaultProb)}
	}
	urls := g.h.model.TrackedURLs()
	n := 1 + g.rng.Intn(2)
	specs := make([]policy.CleanupSpec, 0, n)
	for i := 0; i < n; i++ {
		var url string
		if len(urls) > 0 && g.rng.Float64() < 0.8 {
			url = urls[g.rng.Intn(len(urls))]
		} else {
			host := genHosts[g.rng.Intn(len(genHosts))]
			url = g.fileURL(host, g.rng.Intn(12))
		}
		specs = append(specs, policy.CleanupSpec{
			RequestID:  g.requestID(),
			WorkflowID: live[g.rng.Intn(len(live))],
			FileURL:    url,
		})
	}
	return Op{Kind: OpCleanup, Cleanups: specs, Faults: g.faults(sc.FaultProb)}
}

func (g *gen) genCleanupReport(sc ScheduleConfig) Op {
	ids := g.h.model.CleanupIDsOwned(g.dead)
	if len(ids) == 0 {
		return g.genCleanup(sc)
	}
	perm := g.rng.Perm(len(ids))
	n := 1 + g.rng.Intn(len(ids))
	rep := &policy.CleanupReport{}
	for i := 0; i < n; i++ {
		rep.CleanupIDs = append(rep.CleanupIDs, ids[perm[i]])
	}
	if g.rng.Float64() < 0.15 {
		rep.CleanupIDs = append(rep.CleanupIDs, fmt.Sprintf("c-%08d", 900000+g.rng.Intn(1000)))
	}
	return Op{Kind: OpCleanupReport, CleanupReport: rep, Faults: g.faults(sc.FaultProb)}
}
