package faultsim

import (
	"fmt"
	"reflect"
	"sort"

	"policyflow/internal/bundle"
	"policyflow/internal/policy"
)

// The model in this file is an order-free re-implementation of the policy
// service's externally observable contract, built independently of the rule
// engine. The harness checks every policy.StateDump against it, so a bug
// would have to be made twice — once in the rules and once here, in
// different formulations — to go unnoticed. Exact advice equality is
// checked separately against a fault-free oracle service; the model's job
// is the global invariants: reference counts, staging, ledger accounting
// and threshold bounds.

type pairCluster struct {
	pair    policy.HostPair
	cluster string
}

type modelTransfer struct {
	destURL  string
	workflow string
	cluster  string
	pair     policy.HostPair
	streams  int
}

type modelResource struct {
	sourceURL string
	staged    bool
	users     map[string]int
}

type modelCleanup struct {
	fileURL  string
	workflow string
}

// modelBundle is the model's mirror of one policy bundle's tunables —
// the values the active bundle imposes on every subsequent operation.
type modelBundle struct {
	version          string
	checksum         string
	algorithm        policy.Algorithm
	defaultStreams   int
	minStreams       int
	defaultThreshold int
	clusterFactor    int
	pairTh           map[policy.HostPair]int
}

func modelBundleOf(b *bundle.Bundle) modelBundle {
	mb := modelBundle{
		version:          b.Version,
		checksum:         b.Checksum(),
		algorithm:        policy.Algorithm(b.Algorithm),
		defaultStreams:   b.DefaultStreams,
		minStreams:       b.MinStreams,
		defaultThreshold: b.DefaultThreshold,
		clusterFactor:    b.ClusterFactor,
		pairTh:           make(map[policy.HostPair]int, len(b.PairThresholds)),
	}
	for _, pt := range b.PairThresholds {
		mb.pairTh[policy.HostPair{Src: pt.SourceHost, Dst: pt.DestHost}] = pt.Max
	}
	return mb
}

// Model predicts, per operation, which requests are suppressed and why,
// which IDs are assigned, and how reference counts, stream ledgers and
// thresholds evolve. It is fed only the request and the service's reply.
type Model struct {
	cfg policy.Config

	nextTransfer int
	nextCleanup  int
	advised      int
	suppressed   int

	inProgress map[string]*modelTransfer // transfer ID -> in-flight transfer
	resources  map[string]*modelResource // dest URL -> staged-file resource
	cleanups   map[string]*modelCleanup  // cleanup ID -> in-progress cleanup

	pairsSeen   map[policy.HostPair]bool // pairs with group/ledger facts
	thFacts     map[policy.HostPair]int  // mirror of the Threshold fact set
	ledger      map[policy.HostPair]int
	clusterTh   map[policy.HostPair]int // balanced: per-cluster share, fixed at creation
	clusterLedg map[pairCluster]int     // balanced: per-(pair, cluster) allocation

	// active mirrors the tunables imposed by the active policy bundle;
	// prev is the rollback target (nil until the first activation).
	active modelBundle
	prev   *modelBundle

	clock  float64            // mirrors the service's logical clock
	leases map[string]float64 // workflow -> lease deadline (LeaseTTL > 0 only)
	epoch  uint64             // mirrors the fencing epoch (failover mode only)

	// CorruptRefcounts deliberately breaks the model's reference counting.
	// Tests set it to prove the harness reports a divergence instead of
	// silently agreeing with whatever the service does.
	CorruptRefcounts bool
}

// NewModel builds a model for a service running with cfg (cfg must carry
// explicit DefaultStreams, MinStreams, DefaultThreshold and ClusterFactor).
func NewModel(cfg policy.Config) *Model {
	m := &Model{
		cfg:         cfg,
		inProgress:  make(map[string]*modelTransfer),
		resources:   make(map[string]*modelResource),
		cleanups:    make(map[string]*modelCleanup),
		pairsSeen:   make(map[policy.HostPair]bool),
		thFacts:     make(map[policy.HostPair]int),
		ledger:      make(map[policy.HostPair]int),
		clusterTh:   make(map[policy.HostPair]int),
		clusterLedg: make(map[pairCluster]int),
		leases:      make(map[string]float64),
		active: modelBundle{
			version:          policy.BootstrapBundleVersion,
			algorithm:        cfg.Algorithm,
			defaultStreams:   cfg.DefaultStreams,
			minStreams:       cfg.MinStreams,
			defaultThreshold: cfg.DefaultThreshold,
			clusterFactor:    cfg.ClusterFactor,
			pairTh:           make(map[policy.HostPair]int, len(cfg.PairThresholds)),
		},
	}
	for p, v := range cfg.PairThresholds {
		m.active.pairTh[p] = v
		m.thFacts[p] = v
	}
	return m
}

// SetActiveChecksum records the checksum of the service's bootstrap bundle
// (the model cannot derive it: the v0 document is compiled into the
// service). The harness reads it from the fault-free oracle's tunables.
func (m *Model) SetActiveChecksum(sum string) { m.active.checksum = sum }

// ActiveChecksum returns the checksum of the bundle the model believes is
// active — used to predict whether an activation is a state-changing
// transition or a logged-nowhere no-op.
func (m *Model) ActiveChecksum() string { return m.active.checksum }

// ActiveVersion returns the version of the bundle the model believes is
// active. Every decision record the service emits from here on must carry
// this version.
func (m *Model) ActiveVersion() string { return m.active.version }

// SetEpoch records the fencing epoch the model expects every subsequent
// dump to carry. The harness calls it exactly when a promotion (or the
// initial role assignment) lands an epoch bump; any other epoch movement
// in a dump is a violation.
func (m *Model) SetEpoch(e uint64) { m.epoch = e }

func (m *Model) threshold(p policy.HostPair) int {
	if v, ok := m.thFacts[p]; ok {
		return v
	}
	return m.active.defaultThreshold
}

// InFlightIDs returns the IDs of in-flight transfers, sorted (the schedule
// generator draws completion reports from this list deterministically).
func (m *Model) InFlightIDs() []string {
	ids := make([]string, 0, len(m.inProgress))
	for id := range m.inProgress {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CleanupIDs returns the IDs of in-progress cleanups, sorted.
func (m *Model) CleanupIDs() []string {
	ids := make([]string, 0, len(m.cleanups))
	for id := range m.cleanups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// InFlightIDsOwned returns the in-flight transfer IDs whose owning
// workflow is not in dead, sorted. The generator draws completion reports
// from this list: a crashed client never reports.
func (m *Model) InFlightIDsOwned(dead map[string]bool) []string {
	ids := make([]string, 0, len(m.inProgress))
	for id, t := range m.inProgress {
		if !dead[t.workflow] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// CleanupIDsOwned returns the in-progress cleanup IDs whose owning
// workflow is not in dead, sorted.
func (m *Model) CleanupIDsOwned(dead map[string]bool) []string {
	ids := make([]string, 0, len(m.cleanups))
	for id, c := range m.cleanups {
		if !dead[c.workflow] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// TrackedURLs returns the dest URLs of tracked resources, sorted (cleanup
// targets for the generator).
func (m *Model) TrackedURLs() []string {
	urls := make([]string, 0, len(m.resources))
	for u := range m.resources {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ApplyAdvice checks the service's transfer advice against the model's
// independent prediction and, if consistent, advances the model state.
func (m *Model) ApplyAdvice(specs []policy.TransferSpec, adv *policy.TransferAdvice) error {
	n := len(specs)
	ids := make([]string, n)
	for i := range specs {
		ids[i] = fmt.Sprintf("t-%08d", m.nextTransfer+i+1)
	}

	// Classify each dest-URL group: a staged resource suppresses the whole
	// group ("already-staged"), an in-flight transfer for the same file
	// suppresses the whole group ("in-progress"), otherwise the first
	// request survives and the rest are in-batch duplicates. The priority
	// order mirrors the rule saliences (staged > in-progress > in-batch).
	inflightURL := make(map[string]bool, len(m.inProgress))
	for _, t := range m.inProgress {
		inflightURL[t.destURL] = true
	}
	firstIdx := make(map[string]int)
	reasons := make([]string, n) // "" = advised
	survivors := make(map[string]int)
	for i, spec := range specs {
		switch {
		case m.resources[spec.DestURL] != nil && m.resources[spec.DestURL].staged:
			reasons[i] = "already-staged"
		case inflightURL[spec.DestURL]:
			reasons[i] = "in-progress"
		default:
			if _, dup := firstIdx[spec.DestURL]; dup {
				reasons[i] = "duplicate-in-batch"
			} else {
				firstIdx[spec.DestURL] = i
				survivors[spec.DestURL] = i
			}
		}
	}

	// Removed entries appear in batch order with the predicted reason.
	var wantRemoved []policy.RemovedTransfer
	for i, spec := range specs {
		if reasons[i] != "" {
			wantRemoved = append(wantRemoved, policy.RemovedTransfer{
				RequestID: spec.RequestID,
				SourceURL: spec.SourceURL,
				DestURL:   spec.DestURL,
				Reason:    reasons[i],
			})
		}
	}
	if !reflect.DeepEqual(adv.Removed, wantRemoved) {
		return fmt.Errorf("model: removed list mismatch:\n  got  %+v\n  want %+v", adv.Removed, wantRemoved)
	}

	// Advised entries: every survivor, with the position-predicted ID and a
	// stream grant inside the allocation bounds.
	type expectation struct{ idx int }
	expect := make(map[string]expectation, len(survivors))
	for _, i := range survivors {
		if _, dup := expect[specs[i].RequestID]; dup {
			return fmt.Errorf("model: duplicate request ID %q in batch", specs[i].RequestID)
		}
		expect[specs[i].RequestID] = expectation{idx: i}
	}
	if len(adv.Transfers) != len(expect) {
		return fmt.Errorf("model: advised %d transfers, predicted %d", len(adv.Transfers), len(expect))
	}
	for _, e := range adv.Transfers {
		x, ok := expect[e.RequestID]
		if !ok {
			return fmt.Errorf("model: unexpected advised transfer for request %q", e.RequestID)
		}
		delete(expect, e.RequestID)
		spec := specs[x.idx]
		if e.ID != ids[x.idx] {
			return fmt.Errorf("model: request %q assigned ID %s, predicted %s", e.RequestID, e.ID, ids[x.idx])
		}
		if e.SourceURL != spec.SourceURL || e.DestURL != spec.DestURL || e.WorkflowID != spec.WorkflowID || e.ClusterID != spec.ClusterID {
			return fmt.Errorf("model: advised transfer %s does not match its spec", e.ID)
		}
		if e.GroupID == "" {
			return fmt.Errorf("model: advised transfer %s has no group", e.ID)
		}
		requested := spec.RequestedStreams
		if requested <= 0 {
			requested = m.active.defaultStreams
		}
		grantCap := maxInt(requested, m.active.minStreams)
		if e.Streams < m.active.minStreams || e.Streams > grantCap {
			return fmt.Errorf("model: transfer %s granted %d streams, outside [%d, %d]",
				e.ID, e.Streams, m.active.minStreams, grantCap)
		}
		if m.active.algorithm == policy.AlgoNone && e.Streams != grantCap {
			return fmt.Errorf("model: algorithm none granted %d streams, want %d", e.Streams, grantCap)
		}
	}
	for reqID := range expect {
		return fmt.Errorf("model: request %q should have been advised but was not", reqID)
	}

	// Threshold bounds. Greedy: a pair's ledger may pass the threshold only
	// through the min-stream floor, once per grant. Balanced: the same
	// bound applies per (pair, cluster) against the frozen cluster share.
	if m.active.algorithm == policy.AlgoGreedy {
		sums := make(map[policy.HostPair]int)
		counts := make(map[policy.HostPair]int)
		for _, e := range adv.Transfers {
			p := policy.PairOf(e.SourceURL, e.DestURL)
			sums[p] += e.Streams
			counts[p]++
		}
		for p, s := range sums {
			before := m.ledger[p]
			after := before + s
			bound := maxInt(before, m.threshold(p)) + counts[p]*m.active.minStreams
			if after > bound {
				return fmt.Errorf("model: pair %s->%s ledger %d exceeds threshold bound %d (threshold %d, %d grants)",
					p.Src, p.Dst, after, bound, m.threshold(p), counts[p])
			}
		}
	}
	if m.active.algorithm == policy.AlgoBalanced {
		// Freeze cluster shares for pairs seen for the first time, using
		// the pair threshold in force now (the service never updates the
		// share afterwards, even when SetThreshold changes the threshold).
		for _, e := range adv.Transfers {
			p := policy.PairOf(e.SourceURL, e.DestURL)
			if _, ok := m.clusterTh[p]; !ok {
				m.clusterTh[p] = maxInt(1, m.threshold(p)/m.active.clusterFactor)
			}
		}
		sums := make(map[pairCluster]int)
		counts := make(map[pairCluster]int)
		for _, e := range adv.Transfers {
			pc := pairCluster{policy.PairOf(e.SourceURL, e.DestURL), e.ClusterID}
			sums[pc] += e.Streams
			counts[pc]++
		}
		for pc, s := range sums {
			before := m.clusterLedg[pc]
			after := before + s
			bound := maxInt(before, m.clusterTh[pc.pair]) + counts[pc]*m.active.minStreams
			if after > bound {
				return fmt.Errorf("model: pair %s->%s cluster %q ledger %d exceeds share bound %d",
					pc.pair.Src, pc.pair.Dst, pc.cluster, after, bound)
			}
		}
	}

	// Prediction confirmed — advance the model.
	m.nextTransfer += n
	m.advised += len(adv.Transfers)
	m.suppressed += len(adv.Removed)

	// Advising doubles as a liveness signal: every workflow in the batch
	// (advised or suppressed) gets its lease registered or extended.
	for _, spec := range specs {
		m.renewLease(spec.WorkflowID)
	}

	// Reference counting: every batch member — advised or suppressed —
	// counts as a user of the staged file, provided the resource fact
	// exists when the association rule runs. It exists when it pre-existed
	// or when a surviving member of this batch creates it; a group whose
	// members were all suppressed against an in-flight transfer whose
	// resource was deleted by a cleanup gets no resource and no counts.
	if !m.CorruptRefcounts {
		for url, si := range groupURLs(specs) {
			res := m.resources[url]
			if res == nil {
				if _, survives := survivors[url]; !survives {
					continue
				}
				res = &modelResource{sourceURL: specs[si[0]].SourceURL, users: make(map[string]int)}
				m.resources[url] = res
			}
			for _, i := range si {
				res.users[specs[i].WorkflowID]++
			}
		}
	}

	for _, e := range adv.Transfers {
		p := policy.PairOf(e.SourceURL, e.DestURL)
		m.pairsSeen[p] = true
		// The service materializes a Threshold fact at the current default
		// the first time a pair is advised without one (bundle activation
		// may have retracted an earlier fact for the same pair).
		if _, ok := m.thFacts[p]; !ok {
			m.thFacts[p] = m.active.defaultThreshold
		}
		if _, ok := m.ledger[p]; !ok {
			m.ledger[p] = 0
		}
		m.ledger[p] += e.Streams
		m.inProgress[e.ID] = &modelTransfer{
			destURL:  e.DestURL,
			workflow: e.WorkflowID,
			cluster:  e.ClusterID,
			pair:     p,
			streams:  e.Streams,
		}
		if m.active.algorithm == policy.AlgoBalanced {
			pc := pairCluster{p, e.ClusterID}
			if _, ok := m.clusterLedg[pc]; !ok {
				m.clusterLedg[pc] = 0
			}
			m.clusterLedg[pc] += e.Streams
		}
	}
	return nil
}

// groupURLs maps each dest URL to the batch indexes that requested it, in
// batch order, iterated deterministically by the caller via the map's use
// below (order does not matter: the per-group update is commutative).
func groupURLs(specs []policy.TransferSpec) map[string][]int {
	g := make(map[string][]int)
	for i, spec := range specs {
		g[spec.DestURL] = append(g[spec.DestURL], i)
	}
	return g
}

// ApplyReport advances the model for a completion report. Unknown IDs are
// ignored, matching the service's garbage-collection of unmatched results.
func (m *Model) ApplyReport(rep policy.CompletionReport) {
	release := func(t *modelTransfer) {
		m.ledger[t.pair] -= t.streams
		if m.ledger[t.pair] < 0 {
			m.ledger[t.pair] = 0
		}
		if m.active.algorithm == policy.AlgoBalanced {
			pc := pairCluster{t.pair, t.cluster}
			m.clusterLedg[pc] -= t.streams
			if m.clusterLedg[pc] < 0 {
				m.clusterLedg[pc] = 0
			}
		}
	}
	for _, id := range rep.TransferIDs {
		t := m.inProgress[id]
		if t == nil {
			continue
		}
		delete(m.inProgress, id)
		release(t)
		if r := m.resources[t.destURL]; r != nil {
			r.staged = true
		}
	}
	for _, id := range rep.FailedIDs {
		t := m.inProgress[id]
		if t == nil {
			continue
		}
		delete(m.inProgress, id)
		release(t)
		if r := m.resources[t.destURL]; r != nil && r.users[t.workflow] > 0 {
			r.users[t.workflow]--
			if r.users[t.workflow] == 0 {
				delete(r.users, t.workflow)
			}
		}
	}
}

// ApplyCleanupAdvice checks cleanup advice against the model's prediction
// and advances the model.
func (m *Model) ApplyCleanupAdvice(specs []policy.CleanupSpec, adv *policy.CleanupAdvice) error {
	n := len(specs)
	ids := make([]string, n)
	for i := range specs {
		ids[i] = fmt.Sprintf("c-%08d", m.nextCleanup+i+1)
	}
	inProgFile := make(map[string]bool, len(m.cleanups))
	for _, c := range m.cleanups {
		inProgFile[c.fileURL] = true
	}

	var wantAdvised []policy.AdvisedCleanup
	var wantRemoved []policy.RemovedCleanup
	type pendingCleanup struct {
		id   string
		spec policy.CleanupSpec
	}
	var approved []pendingCleanup
	seenFile := make(map[string]bool)
	for i, spec := range specs {
		if inProgFile[spec.FileURL] || seenFile[spec.FileURL] {
			wantRemoved = append(wantRemoved, policy.RemovedCleanup{
				RequestID: spec.RequestID, FileURL: spec.FileURL, Reason: "duplicate",
			})
			continue
		}
		seenFile[spec.FileURL] = true
		// The surviving request detaches its workflow from the resource
		// even when the cleanup is then refused as in-use.
		res := m.resources[spec.FileURL]
		if res != nil {
			delete(res.users, spec.WorkflowID)
		}
		if res != nil && len(res.users) > 0 {
			wantRemoved = append(wantRemoved, policy.RemovedCleanup{
				RequestID: spec.RequestID, FileURL: spec.FileURL, Reason: "in-use",
			})
			continue
		}
		wantAdvised = append(wantAdvised, policy.AdvisedCleanup{
			ID: ids[i], RequestID: spec.RequestID, WorkflowID: spec.WorkflowID, FileURL: spec.FileURL,
		})
		approved = append(approved, pendingCleanup{id: ids[i], spec: spec})
	}
	m.nextCleanup += n
	for _, spec := range specs {
		m.renewLease(spec.WorkflowID)
	}
	if !reflect.DeepEqual(adv.Cleanups, wantAdvised) {
		return fmt.Errorf("model: cleanup advice mismatch:\n  got  %+v\n  want %+v", adv.Cleanups, wantAdvised)
	}
	if !reflect.DeepEqual(adv.Removed, wantRemoved) {
		return fmt.Errorf("model: cleanup removed mismatch:\n  got  %+v\n  want %+v", adv.Removed, wantRemoved)
	}
	for _, p := range approved {
		m.cleanups[p.id] = &modelCleanup{fileURL: p.spec.FileURL, workflow: p.spec.WorkflowID}
	}
	return nil
}

// ApplyCleanupReport advances the model for completed cleanups: the cleanup
// and the deleted file's resource leave the state. Unknown IDs are ignored.
func (m *Model) ApplyCleanupReport(rep policy.CleanupReport) {
	for _, id := range rep.CleanupIDs {
		c := m.cleanups[id]
		if c == nil {
			continue
		}
		delete(m.cleanups, id)
		delete(m.resources, c.fileURL)
	}
}

// ApplySetThreshold records an explicit per-pair threshold: the service
// creates or updates the pair's Threshold fact in place.
func (m *Model) ApplySetThreshold(src, dst string, max int) {
	m.thFacts[policy.HostPair{Src: src, Dst: dst}] = max
}

// ApplyActivateBundle advances the model for a state-changing bundle
// activation: the active bundle's tunables are swapped, the previous
// bundle becomes the rollback target, and the bundle-owned fact families
// are rebuilt the way the service's applyBundleLocked rebuilds them.
func (m *Model) ApplyActivateBundle(b *bundle.Bundle) {
	prev := m.active
	m.prev = &prev
	m.active = modelBundleOf(b)
	m.resetBundleFacts()
}

// ApplyRollbackBundle advances the model for a rollback: active and
// previous swap, with the same fact rebuild as a forward activation.
func (m *Model) ApplyRollbackBundle() error {
	if m.prev == nil {
		return fmt.Errorf("model: rollback accepted with no previous bundle")
	}
	m.active, *m.prev = *m.prev, m.active
	m.resetBundleFacts()
	return nil
}

// resetBundleFacts rebuilds the fact families a bundle activation owns:
// Threshold facts are replaced wholesale by the bundle's pair list,
// cluster shares are dropped (re-frozen lazily on the next balanced
// advise), and cluster ledgers are re-materialized from in-flight
// transfers when the incoming algorithm is balanced. Pair ledgers, group
// counters, resources and leases survive untouched.
func (m *Model) resetBundleFacts() {
	m.thFacts = make(map[policy.HostPair]int, len(m.active.pairTh))
	for p, v := range m.active.pairTh {
		m.thFacts[p] = v
	}
	m.clusterTh = make(map[policy.HostPair]int)
	m.clusterLedg = make(map[pairCluster]int)
	if m.active.algorithm == policy.AlgoBalanced {
		for _, t := range m.inProgress {
			m.clusterLedg[pairCluster{t.pair, t.cluster}] += t.streams
		}
	}
}

// renewLease registers or extends owner's lease at clock + TTL, mirroring
// the service's renew-on-advise behavior. No-op when leases are disabled.
func (m *Model) renewLease(owner string) {
	if m.cfg.LeaseTTL <= 0 || owner == "" {
		return
	}
	if d := m.clock + m.cfg.LeaseTTL; d > m.leases[owner] {
		m.leases[owner] = d
	}
}

// ApplyRenewLease advances the model for an explicit RenewLease call.
func (m *Model) ApplyRenewLease(workflowID string) {
	m.renewLease(workflowID)
}

// ApplyAdvanceClock checks a clock advance's reported effect against the
// model's independent prediction — which leases expire and how much of the
// dead workflows' holdings are reclaimed — and advances the model: the
// expired owners' in-flight transfers are dropped and their streams
// released, their reference counts removed wholesale, and their in-progress
// cleanups forgotten. Resources stay tracked even with no users left.
func (m *Model) ApplyAdvanceClock(now float64, adv *policy.ClockAdvance) error {
	if now <= m.clock {
		// Monotonic clamp: a stale tick is a no-op on every replica.
		if adv.Now != m.clock || len(adv.Expired) != 0 || adv.ReclaimedTransfers != 0 || adv.ReclaimedStreams != 0 {
			return fmt.Errorf("model: stale clock advance to %v changed state: %+v", now, adv)
		}
		return nil
	}
	m.clock = now
	var expired []string
	for wf, deadline := range m.leases {
		if deadline <= now {
			expired = append(expired, wf)
		}
	}
	sort.Strings(expired)
	var want []string
	want = append(want, expired...) // nil when nothing expired, like the DTO
	if !reflect.DeepEqual(adv.Expired, want) {
		return fmt.Errorf("model: clock advance expired %v, predicted %v", adv.Expired, want)
	}
	reclaimedT, reclaimedS := 0, 0
	for _, wf := range expired {
		delete(m.leases, wf)
		for id, t := range m.inProgress {
			if t.workflow != wf {
				continue
			}
			reclaimedT++
			reclaimedS += t.streams
			m.ledger[t.pair] -= t.streams
			if m.ledger[t.pair] < 0 {
				m.ledger[t.pair] = 0
			}
			if m.active.algorithm == policy.AlgoBalanced {
				pc := pairCluster{t.pair, t.cluster}
				m.clusterLedg[pc] -= t.streams
				if m.clusterLedg[pc] < 0 {
					m.clusterLedg[pc] = 0
				}
			}
			delete(m.inProgress, id)
		}
		for _, r := range m.resources {
			delete(r.users, wf)
		}
		for id, c := range m.cleanups {
			if c.workflow == wf {
				delete(m.cleanups, id)
			}
		}
	}
	if adv.ReclaimedTransfers != reclaimedT || adv.ReclaimedStreams != reclaimedS {
		return fmt.Errorf("model: clock advance reclaimed %d transfers / %d streams, predicted %d / %d",
			adv.ReclaimedTransfers, adv.ReclaimedStreams, reclaimedT, reclaimedS)
	}
	if adv.Now != now {
		return fmt.Errorf("model: clock advance reports now=%v, requested %v", adv.Now, now)
	}
	return nil
}

// CheckDump verifies a full Policy Memory dump against the model: every
// fact the model predicts is present with the predicted value, and nothing
// else is. Call it between operations (no request is being evaluated).
func (m *Model) CheckDump(d *policy.StateDump) error {
	if d.NextTransfer != m.nextTransfer || d.NextCleanup != m.nextCleanup {
		return fmt.Errorf("model: ID counters (transfer %d, cleanup %d) != predicted (%d, %d)",
			d.NextTransfer, d.NextCleanup, m.nextTransfer, m.nextCleanup)
	}
	if d.NextGroup != len(m.pairsSeen) {
		return fmt.Errorf("model: %d groups created, predicted %d", d.NextGroup, len(m.pairsSeen))
	}
	if d.Advised != m.advised || d.Suppressed != m.suppressed {
		return fmt.Errorf("model: advised/suppressed counters (%d, %d) != predicted (%d, %d)",
			d.Advised, d.Suppressed, m.advised, m.suppressed)
	}

	// Transfers: exactly the in-flight set, one per file, all in progress.
	seenID := make(map[string]bool)
	urlInFlight := make(map[string]bool)
	for _, t := range d.Transfers {
		if t.State != int(policy.TransferInProgress) {
			return fmt.Errorf("model: transfer %s left in state %d between operations", t.ID, t.State)
		}
		if seenID[t.ID] {
			return fmt.Errorf("model: duplicate transfer ID %s", t.ID)
		}
		seenID[t.ID] = true
		if urlInFlight[t.DestURL] {
			return fmt.Errorf("model: two in-flight transfers stage %s", t.DestURL)
		}
		urlInFlight[t.DestURL] = true
		mt := m.inProgress[t.ID]
		if mt == nil {
			return fmt.Errorf("model: unexpected in-flight transfer %s", t.ID)
		}
		if mt.destURL != t.DestURL || mt.workflow != t.WorkflowID || mt.streams != t.AllocatedStreams {
			return fmt.Errorf("model: transfer %s is (%s, %s, %d streams), predicted (%s, %s, %d)",
				t.ID, t.DestURL, t.WorkflowID, t.AllocatedStreams, mt.destURL, mt.workflow, mt.streams)
		}
	}
	if len(d.Transfers) != len(m.inProgress) {
		return fmt.Errorf("model: %d in-flight transfers, predicted %d (%v)",
			len(d.Transfers), len(m.inProgress), m.InFlightIDs())
	}

	// Resources: reference counts must match exactly and never go negative.
	seenURL := make(map[string]bool)
	for _, r := range d.Resources {
		if seenURL[r.DestURL] {
			return fmt.Errorf("model: resource %s tracked twice", r.DestURL)
		}
		seenURL[r.DestURL] = true
		mr := m.resources[r.DestURL]
		if mr == nil {
			return fmt.Errorf("model: unexpected resource %s", r.DestURL)
		}
		if r.Staged != mr.staged {
			return fmt.Errorf("model: resource %s staged=%v, predicted %v", r.DestURL, r.Staged, mr.staged)
		}
		if len(r.Users) != len(mr.users) {
			return fmt.Errorf("model: resource %s has %d users, predicted %d (%+v vs %+v)",
				r.DestURL, len(r.Users), len(mr.users), r.Users, mr.users)
		}
		for _, u := range r.Users {
			if u.Count <= 0 {
				return fmt.Errorf("model: resource %s user %s has non-positive count %d", r.DestURL, u.WorkflowID, u.Count)
			}
			if mr.users[u.WorkflowID] != u.Count {
				return fmt.Errorf("model: resource %s user %s count %d, predicted %d",
					r.DestURL, u.WorkflowID, u.Count, mr.users[u.WorkflowID])
			}
		}
	}
	if len(d.Resources) != len(m.resources) {
		return fmt.Errorf("model: %d resources tracked, predicted %d", len(d.Resources), len(m.resources))
	}

	// Cleanups: exactly the in-progress set.
	for _, c := range d.Cleanups {
		if c.State != int(policy.CleanupInProgress) {
			return fmt.Errorf("model: cleanup %s left in state %d between operations", c.ID, c.State)
		}
		mc := m.cleanups[c.ID]
		if mc == nil {
			return fmt.Errorf("model: unexpected cleanup %s", c.ID)
		}
		if mc.fileURL != c.FileURL || mc.workflow != c.WorkflowID {
			return fmt.Errorf("model: cleanup %s is (%s, %s), predicted (%s, %s)",
				c.ID, c.FileURL, c.WorkflowID, mc.fileURL, mc.workflow)
		}
	}
	if len(d.Cleanups) != len(m.cleanups) {
		return fmt.Errorf("model: %d cleanups in progress, predicted %d", len(d.Cleanups), len(m.cleanups))
	}

	// Thresholds: the model mirrors the Threshold fact set directly
	// (bundle activation replaces it wholesale, so it cannot be derived
	// from pairs seen plus overrides).
	wantTh := make(map[policy.HostPair]int, len(m.thFacts))
	for p, v := range m.thFacts {
		wantTh[p] = v
	}
	gotTh := make(map[policy.HostPair]int, len(d.Thresholds))
	for _, th := range d.Thresholds {
		gotTh[policy.HostPair{Src: th.Src, Dst: th.Dst}] = th.Max
	}
	if !reflect.DeepEqual(gotTh, wantTh) {
		return fmt.Errorf("model: thresholds %+v, predicted %+v", gotTh, wantTh)
	}

	// Ledgers: one per pair seen, equal to the sum of in-flight grants.
	gotLedg := make(map[policy.HostPair]int, len(d.Ledgers))
	for _, l := range d.Ledgers {
		if l.Allocated < 0 {
			return fmt.Errorf("model: negative ledger for %s->%s", l.Src, l.Dst)
		}
		gotLedg[policy.HostPair{Src: l.Src, Dst: l.Dst}] = l.Allocated
	}
	wantLedg := make(map[policy.HostPair]int)
	for p := range m.pairsSeen {
		wantLedg[p] = m.ledger[p]
	}
	if !reflect.DeepEqual(gotLedg, wantLedg) {
		return fmt.Errorf("model: ledgers %+v, predicted %+v", gotLedg, wantLedg)
	}
	inFlightSum := make(map[policy.HostPair]int)
	for _, t := range m.inProgress {
		inFlightSum[t.pair] += t.streams
	}
	for p, v := range gotLedg {
		if v != inFlightSum[p] {
			return fmt.Errorf("model: ledger %s->%s is %d but in-flight grants sum to %d",
				p.Src, p.Dst, v, inFlightSum[p])
		}
	}

	// Leases: the clock and the lease set must match the model exactly, and
	// the liveness invariant must hold — with leases enabled, every
	// in-flight transfer owner, every staged-file user and every in-progress
	// cleanup owner holds an unexpired lease (anything else is a leak the
	// expiry pass failed to reclaim).
	if d.Clock != m.clock {
		return fmt.Errorf("model: clock %v, predicted %v", d.Clock, m.clock)
	}
	if d.Epoch != m.epoch {
		return fmt.Errorf("model: epoch %d, predicted %d", d.Epoch, m.epoch)
	}
	gotLeases := make(map[string]float64, len(d.Leases))
	for _, l := range d.Leases {
		if _, dup := gotLeases[l.Owner]; dup {
			return fmt.Errorf("model: workflow %s holds two leases", l.Owner)
		}
		gotLeases[l.Owner] = l.Deadline
	}
	if !reflect.DeepEqual(gotLeases, m.leases) {
		return fmt.Errorf("model: leases %+v, predicted %+v", gotLeases, m.leases)
	}
	if m.cfg.LeaseTTL > 0 {
		for _, l := range d.Leases {
			if l.Deadline <= d.Clock {
				return fmt.Errorf("model: lease %s expired (deadline %v <= clock %v) but was not reclaimed",
					l.Owner, l.Deadline, d.Clock)
			}
		}
		for _, t := range d.Transfers {
			if _, ok := gotLeases[t.WorkflowID]; !ok {
				return fmt.Errorf("model: in-flight transfer %s owned by %s, which holds no lease", t.ID, t.WorkflowID)
			}
		}
		for _, r := range d.Resources {
			for _, u := range r.Users {
				if _, ok := gotLeases[u.WorkflowID]; !ok {
					return fmt.Errorf("model: resource %s referenced by %s, which holds no lease", r.DestURL, u.WorkflowID)
				}
			}
		}
		for _, c := range d.Cleanups {
			if _, ok := gotLeases[c.WorkflowID]; !ok {
				return fmt.Errorf("model: cleanup %s owned by %s, which holds no lease", c.ID, c.WorkflowID)
			}
		}
	}

	// Cluster accounting (balanced only; absent otherwise).
	if m.active.algorithm != policy.AlgoBalanced {
		if len(d.ClusterThresholds) != 0 || len(d.ClusterLedgers) != 0 {
			return fmt.Errorf("model: cluster facts present under algorithm %q", m.active.algorithm)
		}
		return nil
	}
	gotCT := make(map[policy.HostPair]int, len(d.ClusterThresholds))
	for _, ct := range d.ClusterThresholds {
		gotCT[policy.HostPair{Src: ct.Src, Dst: ct.Dst}] = ct.Max
	}
	if !reflect.DeepEqual(gotCT, m.clusterTh) {
		return fmt.Errorf("model: cluster thresholds %+v, predicted %+v", gotCT, m.clusterTh)
	}
	gotCL := make(map[pairCluster]int, len(d.ClusterLedgers))
	for _, cl := range d.ClusterLedgers {
		if cl.Allocated < 0 {
			return fmt.Errorf("model: negative cluster ledger for %s->%s cluster %q", cl.Src, cl.Dst, cl.ClusterID)
		}
		gotCL[pairCluster{policy.HostPair{Src: cl.Src, Dst: cl.Dst}, cl.ClusterID}] = cl.Allocated
	}
	if !reflect.DeepEqual(gotCL, m.clusterLedg) {
		return fmt.Errorf("model: cluster ledgers %+v, predicted %+v", gotCL, m.clusterLedg)
	}
	return nil
}

// checkDumpConsistency validates a dump's internal invariants without a
// model — the check the concurrent stress test applies after quiescing,
// when operation order (and hence a model) is unavailable.
func checkDumpConsistency(d *policy.StateDump) error {
	seenID := make(map[string]bool)
	urlInFlight := make(map[string]bool)
	inFlightSum := make(map[policy.HostPair]int)
	for _, t := range d.Transfers {
		if t.State != int(policy.TransferInProgress) {
			return fmt.Errorf("consistency: transfer %s in state %d between operations", t.ID, t.State)
		}
		if seenID[t.ID] {
			return fmt.Errorf("consistency: duplicate transfer ID %s", t.ID)
		}
		seenID[t.ID] = true
		if urlInFlight[t.DestURL] {
			return fmt.Errorf("consistency: two in-flight transfers stage %s", t.DestURL)
		}
		urlInFlight[t.DestURL] = true
		if t.AllocatedStreams <= 0 {
			return fmt.Errorf("consistency: transfer %s has %d streams", t.ID, t.AllocatedStreams)
		}
		inFlightSum[policy.PairOf(t.SourceURL, t.DestURL)] += t.AllocatedStreams
	}
	for _, r := range d.Resources {
		for _, u := range r.Users {
			if u.Count <= 0 {
				return fmt.Errorf("consistency: resource %s user %s count %d", r.DestURL, u.WorkflowID, u.Count)
			}
		}
	}
	ledgerPairs := make(map[policy.HostPair]int)
	for _, l := range d.Ledgers {
		p := policy.HostPair{Src: l.Src, Dst: l.Dst}
		if l.Allocated < 0 {
			return fmt.Errorf("consistency: negative ledger %s->%s", l.Src, l.Dst)
		}
		ledgerPairs[p] = l.Allocated
		if l.Allocated != inFlightSum[p] {
			return fmt.Errorf("consistency: ledger %s->%s is %d, in-flight grants sum to %d",
				l.Src, l.Dst, l.Allocated, inFlightSum[p])
		}
	}
	for p, sum := range inFlightSum {
		if _, ok := ledgerPairs[p]; !ok && sum > 0 {
			return fmt.Errorf("consistency: in-flight streams on %s->%s but no ledger", p.Src, p.Dst)
		}
	}
	if len(d.ClusterLedgers) > 0 {
		perPair := make(map[policy.HostPair]int)
		for _, cl := range d.ClusterLedgers {
			perPair[policy.HostPair{Src: cl.Src, Dst: cl.Dst}] += cl.Allocated
		}
		for p, sum := range perPair {
			if sum != ledgerPairs[p] {
				return fmt.Errorf("consistency: cluster ledgers for %s->%s sum to %d, pair ledger is %d",
					p.Src, p.Dst, sum, ledgerPairs[p])
			}
		}
	}
	for _, c := range d.Cleanups {
		if c.State != int(policy.CleanupInProgress) {
			return fmt.Errorf("consistency: cleanup %s in state %d between operations", c.ID, c.State)
		}
	}
	return nil
}
