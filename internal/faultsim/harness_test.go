package faultsim

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"policyflow/internal/policy"
)

// defaultSchedules is how many randomized schedules TestFaultSim runs by
// default; FAULTSIM_SCHEDULES overrides it and FAULTSIM_SEED rebases the
// seed sequence (seed i of a run is base+i, so a failure report's seed is
// replayed with FAULTSIM_SEED=<seed> FAULTSIM_SCHEDULES=1).
const (
	defaultSchedules = 1000
	defaultBaseSeed  = 20260806
)

func envInt(t *testing.T, name string, def int64) int64 {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad %s=%q: %v", name, v, err)
	}
	return n
}

// TestFaultSim is the model checker: it runs many randomized schedules of
// workflow operations interleaved with crash-restarts, torn WAL tails,
// disk-write faults and HTTP-level network faults, checking the reference
// model and all replica-consistency invariants after every step. On
// failure it shrinks the trace to a locally minimal reproduction and
// prints the seed, the schedule configuration and the minimal trace.
func TestFaultSim(t *testing.T) {
	schedules := int(envInt(t, "FAULTSIM_SCHEDULES", defaultSchedules))
	baseSeed := envInt(t, "FAULTSIM_SEED", defaultBaseSeed)

	var mu sync.Mutex
	totalFaults := make(map[string]int)

	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		kinds := 0
		for _, n := range totalFaults {
			if n > 0 {
				kinds++
			}
		}
		if kinds < 4 {
			t.Errorf("schedules exercised only %d fault kinds (%v), want >= 4 — generator drifted", kinds, totalFaults)
		}
	})

	for i := 0; i < schedules; i++ {
		seed := baseSeed + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := RandomSchedule(seed)
			trace, faults, err := RunSchedule(t.TempDir(), sched)
			mu.Lock()
			for k, n := range faults {
				totalFaults[k] += n
			}
			mu.Unlock()
			if err == nil {
				return
			}
			minTrace := Shrink(trace, func(candidate []Op) bool {
				return ReplayTrace(t.TempDir(), sched, candidate) != nil
			})
			minErr := ReplayTrace(t.TempDir(), sched, minTrace)
			schedJSON, _ := json.Marshal(sched)
			traceJSON, _ := json.MarshalIndent(minTrace, "", "  ")
			t.Fatalf("invariant violation at seed %d: %v\n\nreplay: FAULTSIM_SEED=%d FAULTSIM_SCHEDULES=1 go test ./internal/faultsim -run 'TestFaultSim$'\nschedule: %s\nminimal trace (%d of %d ops, fails with: %v):\n%s",
				seed, err, seed, schedJSON, len(minTrace), len(trace), minErr, traceJSON)
		})
	}
}

// TestFaultSimDeterministicReplay proves a seed fully determines a run:
// the same seed must generate the identical trace and the identical
// outcome twice, and replaying the recorded trace must match too.
func TestFaultSimDeterministicReplay(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 20260806} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := RandomSchedule(seed)
			trace1, _, err1 := RunSchedule(t.TempDir(), sched)
			trace2, _, err2 := RunSchedule(t.TempDir(), sched)
			j1, _ := json.Marshal(trace1)
			j2, _ := json.Marshal(trace2)
			if string(j1) != string(j2) {
				t.Fatalf("same seed generated different traces:\n  run1 %s\n  run2 %s", j1, j2)
			}
			if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
				t.Fatalf("same seed produced different outcomes: %v vs %v", err1, err2)
			}
			if err1 != nil {
				return // a failing seed replays identically; nothing more to check
			}
			if err := ReplayTrace(t.TempDir(), sched, trace1); err != nil {
				t.Fatalf("replaying a passing trace failed: %v", err)
			}
		})
	}
}

// passingSchedule is a fixed fault-free configuration for the detector
// self-tests below.
func passingSchedule() Schedule {
	return Schedule{Seed: 1, Config: ScheduleConfig{
		Algorithm:      policy.AlgoGreedy,
		Threshold:      4,
		DefaultStreams: 2,
		ClusterFactor:  1,
		OpCount:        4,
		FaultProb:      0,
	}}
}

func adviseOp(reqID, file string, faults ...FaultSpec) Op {
	return Op{
		Kind:   OpAdvise,
		Faults: faults,
		Specs: []policy.TransferSpec{{
			RequestID:  reqID,
			WorkflowID: "wf-a",
			SourceURL:  "gsiftp://hostA/data/" + file,
			DestURL:    "gsiftp://hostB/data/" + file,
		}},
	}
}

// TestHarnessDetectsBrokenIdempotency proves the harness is a working
// detector: a duplicated delivery with the idempotency key stripped
// double-applies the mutation on one replica, and the harness must flag
// the divergence. (The schedule generator never draws this fault kind —
// it exists exactly for this self-test.)
func TestHarnessDetectsBrokenIdempotency(t *testing.T) {
	trace := []Op{adviseOp("r-1", "f-01", FaultSpec{Replica: 0, Kind: FaultDuplicateNoKey})}
	err := ReplayTrace(t.TempDir(), passingSchedule(), trace)
	if err == nil {
		t.Fatal("double application with no idempotency key went undetected")
	}
	t.Logf("detected as: %v", err)
}

// TestHarnessDetectsModelCorruption proves the model side of the detector:
// with reference counting deliberately broken in the model, a plain
// successful advise must be reported as a divergence.
func TestHarnessDetectsModelCorruption(t *testing.T) {
	h, err := NewHarness(t.TempDir(), passingSchedule())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	h.model.CorruptRefcounts = true
	if err := h.Step(adviseOp("r-1", "f-01")); err == nil {
		t.Fatal("corrupted reference-count model not detected")
	}
}

// TestShrinkMinimizesFailingTrace pads a failing op with benign traffic
// and checks the shrinker strips all of it.
func TestShrinkMinimizesFailingTrace(t *testing.T) {
	sched := passingSchedule()
	trace := []Op{
		adviseOp("r-1", "f-01"),
		adviseOp("r-2", "f-02"),
		{Kind: OpSetThreshold, SrcHost: "hostA", DstHost: "hostB", Max: 3},
		adviseOp("r-3", "f-03", FaultSpec{Replica: 1, Kind: FaultDuplicateNoKey}),
		{Kind: OpSnapshot, Replica: 0},
		adviseOp("r-4", "f-04"),
	}
	if err := ReplayTrace(t.TempDir(), sched, trace); err == nil {
		t.Fatal("constructed trace unexpectedly passes")
	}
	minTrace := Shrink(trace, func(candidate []Op) bool {
		return ReplayTrace(t.TempDir(), sched, candidate) != nil
	})
	if len(minTrace) != 1 {
		j, _ := json.MarshalIndent(minTrace, "", "  ")
		t.Fatalf("shrunk to %d ops, want 1:\n%s", len(minTrace), j)
	}
	if len(minTrace[0].Faults) != 1 || minTrace[0].Faults[0].Kind != FaultDuplicateNoKey {
		t.Fatalf("shrink kept the wrong op: %+v", minTrace[0])
	}
}
