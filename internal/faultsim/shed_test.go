package faultsim

import (
	"testing"
)

// TestShedIsEffectFree drives admission sheds through the full stack and
// proves a 429 is free of side effects: after every step the harness
// dumps each healthy replica and compares it byte-for-byte against the
// fault-free oracle — which never sees shed operations at all — so any
// WAL append, idempotency-cache entry or partial state change made by a
// shed request would surface as a divergence.
//
// Count 1 sheds one attempt and lets the client's Retry-After-aware
// retry succeed (the op lands everywhere exactly once). Count 3 sheds
// every attempt, the client reports busy, and the op must have happened
// nowhere. Sheds interleave with crashes and resyncs to cover recovery:
// a shed during WAL-tail replay fails the resync rather than dropping
// the record, and the replica heals on the next resync.
func TestShedIsEffectFree(t *testing.T) {
	ops := []Op{
		// Baseline mutation so replicas hold non-trivial state.
		adviseOp("r-1", "f-01"),
		// Shed-then-retry: one 429 on replica 0, the retry is admitted.
		{Kind: OpShed, Replica: 0, Count: 1},
		adviseOp("r-2", "f-02"),
		// Full shed on the first replica tried: the replicated client
		// surfaces busy, the harness treats the op as never-happened, and
		// the per-step dump check proves no replica applied it.
		{Kind: OpShed, Replica: 0, Count: 3},
		adviseOp("r-3", "f-03"),
		// Full shed on the second replica: replica 0 applies, replica 1
		// sheds every attempt and is marked down (to the client a refusal
		// after a peer accepted is indistinguishable from divergence).
		{Kind: OpShed, Replica: 1, Count: 3},
		adviseOp("r-4", "f-04"),
		// Crash-recover the shed replica, then resync it from its peer;
		// afterwards the dump check covers it again.
		{Kind: OpCrash, Replica: 1},
		{Kind: OpResync},
		// Sheds armed while a replica is down land on the resync's
		// WAL-tail replay: the restore must fail (replica stays down)
		// rather than silently drop the shed record.
		adviseOp("r-5", "f-05", FaultSpec{Replica: 1, Kind: Fault503},
			FaultSpec{Replica: 1, Kind: Fault503}, FaultSpec{Replica: 1, Kind: Fault503}),
		{Kind: OpShed, Replica: 1, Count: 3},
		{Kind: OpResync},
		{Kind: OpResync},
		adviseOp("r-6", "f-06"),
	}
	h, err := NewHarness(t.TempDir(), passingSchedule())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i, op := range ops {
		if err := h.Step(op); err != nil {
			t.Fatalf("op %d (%s): %v", i, op.Kind, err)
		}
	}

	// The client saw and retried through real 429s.
	const endpoint = "/v1/transfers"
	if v := h.ClientMetrics.Faults.With(endpoint, "http_429").Value(); v == 0 {
		t.Error("no http_429 client faults recorded despite armed sheds")
	}
	// Both replicas ended healthy and byte-identical to the oracle (the
	// per-step checks proved it); the shed counters confirm the sheds
	// actually fired rather than the schedule silently skipping them.
	if got := len(h.rc.Healthy()); got != numReplicas {
		t.Fatalf("%d healthy replicas after final resync, want %d", got, numReplicas)
	}
	if h.FaultCounts()[OpShed] == 0 {
		t.Error("harness recorded no shed faults")
	}
}
