package faultsim

// Shrink reduces a failing trace to a locally minimal one: a delta-
// debugging pass removes chunks of operations — halves first, then ever
// smaller slices down to single ops — keeping a removal whenever the
// remaining trace still fails, until no single-op removal does. check must
// return true when the candidate trace still reproduces the failure; it is
// called with freshly built slices and may replay them destructively.
func Shrink(trace []Op, check func([]Op) bool) []Op {
	cur := append([]Op(nil), trace...)
	chunk := len(cur) / 2
	if chunk < 1 {
		chunk = 1
	}
	for {
		removed := false
		for start := 0; start+chunk <= len(cur); {
			candidate := make([]Op, 0, len(cur)-chunk)
			candidate = append(candidate, cur[:start]...)
			candidate = append(candidate, cur[start+chunk:]...)
			if len(candidate) > 0 && check(candidate) {
				cur = candidate
				removed = true
				// Same start again: the next chunk shifted into place.
			} else {
				start += chunk
			}
		}
		if chunk == 1 && !removed {
			return cur
		}
		if chunk > 1 {
			chunk /= 2
		}
	}
}
