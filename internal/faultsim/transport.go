package faultsim

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
)

// FaultKind names one injectable HTTP-level fault.
type FaultKind string

const (
	// FaultLoseRequest drops the request before it reaches the server: the
	// handler never runs and the client sees a transport error.
	FaultLoseRequest FaultKind = "lose-request"
	// FaultDropResponse delivers the request — the handler runs and the
	// mutation is applied — but the response is lost; the client sees a
	// transport error and retries with the same idempotency key.
	FaultDropResponse FaultKind = "drop-response"
	// Fault503 answers 503 Service Unavailable without reaching the
	// handler, exercising the client's retryable-status path.
	Fault503 FaultKind = "http-503"
	// FaultDuplicate delivers the request twice back to back (a duplicated
	// message); idempotency must collapse the two deliveries into one
	// application.
	FaultDuplicate FaultKind = "duplicate"
	// FaultDuplicateNoKey duplicates the delivery AND strips the
	// idempotency key from both copies, deliberately breaking at-most-once.
	// It exists so tests can prove the harness detects double application.
	FaultDuplicateNoKey FaultKind = "duplicate-no-key"
	// FaultPartitioned is not queueable: it is the counter key for
	// deliveries refused because the host is network-partitioned (see
	// SetPartitioned). A partition persists until healed, unlike the
	// one-shot queued faults above.
	FaultPartitioned FaultKind = "partitioned"
)

// FaultSpec schedules one fault on one replica's next delivery.
type FaultSpec struct {
	Replica int       `json:"replica"`
	Kind    FaultKind `json:"kind"`
}

// errInjected is the transport error surfaced for lost requests and
// dropped responses.
var errInjected = errors.New("faultsim: injected network fault")

// Router is an in-process http.RoundTripper that routes requests by host
// name to registered http.Handlers and injects faults from per-host FIFO
// queues. No sockets are involved, so schedules are fast and fully
// deterministic: a fault is consumed by exactly the delivery it was queued
// for.
type Router struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	queues   map[string][]FaultKind
	// partitioned hosts refuse every delivery with a transport error until
	// healed; queued one-shot faults are left unconsumed.
	partitioned map[string]bool
	// Injected counts consumed faults by kind; HandlerRuns counts actual
	// handler executions per host (duplicated deliveries count twice).
	Injected    map[FaultKind]int
	HandlerRuns map[string]int
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{
		handlers:    make(map[string]http.Handler),
		queues:      make(map[string][]FaultKind),
		partitioned: make(map[string]bool),
		Injected:    make(map[FaultKind]int),
		HandlerRuns: make(map[string]int),
	}
}

// SetPartitioned cuts host off the network (or reconnects it). While
// partitioned, every delivery to host fails with a transport error before
// any fault queue or handler is consulted — the request never existed as
// far as the server is concerned.
func (r *Router) SetPartitioned(host string, p bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.partitioned[host] = p
}

// Partitioned reports whether host is currently cut off.
func (r *Router) Partitioned(host string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.partitioned[host]
}

// Register points host (e.g. "replica0") at h, replacing any previous
// handler — this is how a crash-restarted replica swaps its server in.
func (r *Router) Register(host string, h http.Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[host] = h
}

// Queue schedules a fault for the next delivery to host.
func (r *Router) Queue(host string, kind FaultKind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queues[host] = append(r.queues[host], kind)
}

// Drain clears all pending fault queues, returning how many faults were
// still queued (an op may succeed before consuming every scheduled fault).
func (r *Router) Drain() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for host, q := range r.queues {
		n += len(q)
		r.queues[host] = nil
	}
	return n
}

// pop takes the next queued fault for host, if any.
func (r *Router) pop(host string) (FaultKind, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q := r.queues[host]
	if len(q) == 0 {
		return "", false
	}
	kind := q[0]
	r.queues[host] = q[1:]
	r.Injected[kind]++
	return kind, true
}

// RoundTrip implements http.RoundTripper.
func (r *Router) RoundTrip(req *http.Request) (*http.Response, error) {
	r.mu.Lock()
	h, ok := r.handlers[req.URL.Host]
	part := r.partitioned[req.URL.Host]
	if part {
		r.Injected[FaultPartitioned]++
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("faultsim: no handler registered for host %q", req.URL.Host)
	}
	if part {
		return nil, fmt.Errorf("%w: host %s partitioned", errInjected, req.URL.Host)
	}
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	kind, faulted := r.pop(req.URL.Host)
	if !faulted {
		return r.deliver(h, req, body, false), nil
	}
	switch kind {
	case FaultLoseRequest:
		return nil, fmt.Errorf("%w: request to %s lost", errInjected, req.URL.Host)
	case Fault503:
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(bytes.NewReader([]byte("injected 503"))),
			Request: req,
		}, nil
	case FaultDropResponse:
		r.deliver(h, req, body, false) // the server applies; the client never hears
		return nil, fmt.Errorf("%w: response from %s dropped", errInjected, req.URL.Host)
	case FaultDuplicate:
		r.deliver(h, req, body, false)
		return r.deliver(h, req, body, false), nil
	case FaultDuplicateNoKey:
		r.deliver(h, req, body, true)
		return r.deliver(h, req, body, true), nil
	default:
		return nil, fmt.Errorf("faultsim: unknown fault kind %q", kind)
	}
}

// deliver executes the handler once against a reconstructed request and
// returns the recorded response.
func (r *Router) deliver(h http.Handler, req *http.Request, body []byte, stripIdemKey bool) *http.Response {
	cp := req.Clone(req.Context())
	cp.Body = io.NopCloser(bytes.NewReader(body))
	cp.ContentLength = int64(len(body))
	if stripIdemKey {
		cp.Header.Del("Idempotency-Key")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, cp)
	r.mu.Lock()
	r.HandlerRuns[req.URL.Host]++
	r.mu.Unlock()
	resp := rec.Result()
	resp.Request = req
	return resp
}
