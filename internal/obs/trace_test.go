package obs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// closeBuffer records whether Close was called through the tracer.
type closeBuffer struct {
	bytes.Buffer
	closed bool
}

func (b *closeBuffer) Close() error {
	b.closed = true
	return nil
}

func TestTracerRoundTrip(t *testing.T) {
	var buf closeBuffer
	tr := NewJSONLTracer(&buf)
	tr.now = func() time.Time { return time.Unix(0, 42) }
	in := []Event{
		{Type: EventSubmitted, TransferID: "t-00000001", WorkflowID: "wf1",
			SourceHost: "src.example.org", DestHost: "dst.example.org", SizeBytes: 1 << 20},
		{Type: EventAdvised, TransferID: "t-00000001", GroupID: "g-0001", Streams: 4, Priority: 3},
		{Type: EventStarted, TransferID: "t-00000001", SimSeconds: 1.5},
		{Type: EventCompleted, TransferID: "t-00000001", Seconds: 2.25},
		{Type: EventSuppressed, TransferID: "t-00000002", Reason: "already-staged"},
		{Type: EventCleaned, TransferID: "c-00000001", FileURL: "file://dst.example.org/f"},
	}
	for _, e := range in {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !buf.closed {
		t.Error("Close did not close the underlying writer")
	}
	// Every event is on its own line (flush-on-close drained the buffer).
	if got := strings.Count(buf.String(), "\n"); got != len(in) {
		t.Fatalf("lines = %d, want %d:\n%s", got, len(in), buf.String())
	}

	out, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i, e := range out {
		if e.Seq != int64(i+1) {
			t.Errorf("event %d: seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.TimeUnixNano != 42 {
			t.Errorf("event %d: time = %d, want 42", i, e.TimeUnixNano)
		}
		want := in[i]
		if e.Type != want.Type || e.TransferID != want.TransferID ||
			e.Reason != want.Reason || e.Streams != want.Streams ||
			e.Seconds != want.Seconds || e.SizeBytes != want.SizeBytes ||
			e.FileURL != want.FileURL || e.SimSeconds != want.SimSeconds {
			t.Errorf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, e, want)
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"type\":\"advised\"}\nnot json\n"))
	if err == nil {
		t.Fatal("garbage line accepted")
	}
}

// failWriter errors after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestTracerStickyError(t *testing.T) {
	tr := NewJSONLTracer(&failWriter{n: 0})
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Type: EventAdvised})
	}
	// The buffered writer only hits the underlying writer on flush.
	if err := tr.Close(); err == nil {
		t.Fatal("Close did not report the write error")
	}
}

// TestTracerConcurrentOrdering checks under -race that concurrent Emits
// are serialized: sequence numbers are unique, dense, and the JSONL lines
// appear in sequence order.
func TestTracerConcurrentOrdering(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Emit(Event{Type: EventAdvised, TransferID: fmt.Sprintf("t-%d-%d", w, i)})
			}
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*perWorker {
		t.Fatalf("events = %d, want %d", len(events), workers*perWorker)
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("line %d carries seq %d: emission order not preserved", i, e.Seq)
		}
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	c.Emit(Event{Type: EventSubmitted})
	c.Emit(Event{Type: EventAdvised})
	evs := c.Events()
	if len(evs) != 2 || c.Len() != 2 {
		t.Fatalf("collector holds %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("collector seqs = %d,%d", evs[0].Seq, evs[1].Seq)
	}
	// Events returns a copy; mutating it must not affect the collector.
	evs[0].Type = "mutated"
	if c.Events()[0].Type != EventSubmitted {
		t.Error("Events returned a live slice")
	}
}
