package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() {
		t.Fatalf("minted span context invalid: %+v", sc)
	}
	got, ok := ParseTraceparent(sc.Traceparent())
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := NewSpanContext()
	cases := []string{
		"",
		"garbage",
		"00-" + valid.TraceID + "-" + valid.SpanID,                    // missing flags
		"0-" + valid.TraceID + "-" + valid.SpanID + "-01",             // short version
		"00-" + valid.TraceID[:31] + "-" + valid.SpanID + "-01",       // short trace
		"00-" + strings.Repeat("0", 32) + "-" + valid.SpanID + "-01",  // zero trace
		"00-" + valid.TraceID + "-" + strings.Repeat("0", 16) + "-01", // zero span
		"00-" + strings.Repeat("g", 32) + "-" + valid.SpanID + "-01",  // non-hex
	}
	for _, v := range cases {
		if sc, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted as %+v", v, sc)
		}
	}
	// Any version and uppercase hex are accepted; IDs come back lowercased.
	up := "EF-" + strings.ToUpper(valid.TraceID) + "-" + strings.ToUpper(valid.SpanID) + "-FF"
	if sc, ok := ParseTraceparent(up); !ok || sc != valid {
		t.Fatalf("uppercase variant parsed as %+v ok=%v, want %+v", sc, ok, valid)
	}
}

func TestStartSpanZeroCostWhenDisabled(t *testing.T) {
	ctx := context.Background()
	got, span := StartSpan(ctx, nil, "noop")
	if span != nil {
		t.Fatal("nil tracer with no parent returned a live span")
	}
	if got != ctx {
		t.Fatal("context was replaced on the disabled path")
	}
	// The nil span is fully inert.
	span.SetWALSeq(7)
	span.End()
	if sc := span.Context(); sc.Valid() {
		t.Fatalf("nil span has a context: %+v", sc)
	}
}

func TestStartSpanPropagatesWithoutTracer(t *testing.T) {
	parent := NewSpanContext()
	ctx := ContextWithSpan(context.Background(), parent)
	ctx, span := StartSpan(ctx, nil, "child")
	if span != nil {
		t.Fatal("nil tracer returned a live span")
	}
	child, ok := SpanFromContext(ctx)
	if !ok {
		t.Fatal("derived context lost the span")
	}
	if child.TraceID != parent.TraceID || child.SpanID == parent.SpanID {
		t.Fatalf("child %+v does not descend from %+v", child, parent)
	}
}

func TestSpanParentChildEmission(t *testing.T) {
	var col Collector
	ctx, root := StartSpan(context.Background(), &col, "root")
	ctx, child := StartSpan(ctx, &col, "child")
	child.SetWALSeq(42)
	child.End()
	root.End()
	child.End() // second End is ignored

	events := col.Events()
	if len(events) != 2 {
		t.Fatalf("emitted %d events, want 2 (double End must not re-emit)", len(events))
	}
	ce, re := events[0], events[1]
	if ce.Name != "child" || re.Name != "root" {
		t.Fatalf("emission order = %q, %q; spans end inside out", ce.Name, re.Name)
	}
	if ce.Type != EventSpan || re.Type != EventSpan {
		t.Fatalf("span events typed %q/%q", ce.Type, re.Type)
	}
	if ce.TraceID != re.TraceID {
		t.Fatalf("child trace %s != root trace %s", ce.TraceID, re.TraceID)
	}
	if ce.ParentSpanID != re.SpanID {
		t.Fatalf("child parent %s != root span %s", ce.ParentSpanID, re.SpanID)
	}
	if re.ParentSpanID != "" {
		t.Fatalf("root span has parent %s", re.ParentSpanID)
	}
	if ce.WALSeq != 42 {
		t.Fatalf("child annotation lost: WALSeq = %d", ce.WALSeq)
	}
	if sc, ok := SpanFromContext(ctx); !ok || sc != child.Context() {
		t.Fatalf("context carries %+v, want child %+v", sc, child.Context())
	}
}

// TestConcurrentSpans exercises span creation, annotation and finish from
// many goroutines at once (run under -race). Every goroutine builds a
// small root->child chain; afterwards each chain must be internally
// consistent and no span ID may repeat across the whole run.
func TestConcurrentSpans(t *testing.T) {
	const goroutines = 32
	const chains = 25
	var col Collector
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < chains; i++ {
				ctx, root := StartSpan(context.Background(), &col, "root")
				ctx, child := StartSpan(ctx, &col, "child")
				child.SetWALSeq(uint64(g*chains + i + 1))
				_, leaf := StartSpan(ctx, &col, "leaf")
				leaf.End()
				child.End()
				root.End()
			}
		}(g)
	}
	wg.Wait()

	events := col.Events()
	if want := goroutines * chains * 3; len(events) != want {
		t.Fatalf("collected %d span events, want %d", len(events), want)
	}
	spanIDs := make(map[string]bool, len(events))
	byTrace := make(map[string][]Event)
	for _, e := range events {
		if e.SpanID == "" || e.TraceID == "" {
			t.Fatalf("event missing IDs: %+v", e)
		}
		if spanIDs[e.SpanID] {
			t.Fatalf("span ID %s issued twice", e.SpanID)
		}
		spanIDs[e.SpanID] = true
		byTrace[e.TraceID] = append(byTrace[e.TraceID], e)
	}
	if len(byTrace) != goroutines*chains {
		t.Fatalf("%d distinct traces, want %d", len(byTrace), goroutines*chains)
	}
	for trace, chain := range byTrace {
		if len(chain) != 3 {
			t.Fatalf("trace %s has %d spans, want 3", trace, len(chain))
		}
		parentOf := make(map[string]string, 3)
		names := make(map[string]string, 3)
		for _, e := range chain {
			parentOf[e.SpanID] = e.ParentSpanID
			names[e.SpanID] = e.Name
		}
		for id, parent := range parentOf {
			switch names[id] {
			case "root":
				if parent != "" {
					t.Fatalf("trace %s: root has parent %s", trace, parent)
				}
			default:
				if names[parent] == "" {
					t.Fatalf("trace %s: %s's parent %s is not in the chain", trace, names[id], parent)
				}
			}
		}
	}
}

// deadWriter fails every write, modeling a full or revoked trace sink.
type deadWriter struct{}

func (deadWriter) Write(p []byte) (int, error) { return 0, errors.New("sink gone") }

// TestTracerDropCounter is the obs_trace_dropped_total contract: once the
// sink fails, every subsequent event increments the drop counter instead
// of disappearing silently. The first oversized event defeats bufio's
// 4 KiB buffering so the failure surfaces immediately.
func TestTracerDropCounter(t *testing.T) {
	tr := NewJSONLTracer(deadWriter{})
	reg := NewRegistry()
	dropped := reg.Counter("obs_trace_dropped_total", "t").With()
	tr.SetDropCounter(dropped)

	// Larger than the 4096-byte buffer: the write reaches the sink and
	// fails, so this event is dropped and the error becomes sticky.
	tr.Emit(Event{Type: EventSpan, Name: strings.Repeat("x", 8192)})
	if got := dropped.Value(); got != 1 {
		t.Fatalf("dropped after failing write = %v, want 1", got)
	}
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Type: EventAdvised, TransferID: fmt.Sprintf("t-%d", i)})
	}
	if got := dropped.Value(); got != 11 {
		t.Fatalf("dropped after sticky rejects = %v, want 11", got)
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close did not report the sink failure")
	}
}
