package obs

import (
	"encoding/json"
	"net/http"
)

// VarsHandler serves the registry as indented JSON — the expvar-style
// /debug/vars endpoint mounted by cmd/policyserver behind its -debug flag.
func VarsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}

// MetricsHandler serves the registry in the Prometheus text exposition
// format, for callers that mount a scrape endpoint outside policyhttp.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
