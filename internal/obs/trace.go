package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event types emitted over a transfer's lifecycle:
// submitted -> advised | suppressed -> started -> completed | failed,
// and for cleanups cleanup-advised | cleanup-suppressed -> cleaned.
const (
	EventSubmitted         = "submitted"
	EventAdvised           = "advised"
	EventSuppressed        = "suppressed"
	EventStarted           = "started"
	EventCompleted         = "completed"
	EventFailed            = "failed"
	EventCleanupAdvised    = "cleanup-advised"
	EventCleanupSuppressed = "cleanup-suppressed"
	EventCleaned           = "cleaned"
	// Lease lifecycle: a workflow's lease expired, and each in-progress
	// transfer reclaimed from it.
	EventLeaseExpired = "lease-expired"
	EventReclaimed    = "reclaimed"
	// EventSpan records one finished causal span (see span.go); the
	// TraceID/SpanID/ParentSpanID fields link spans into a trace.
	EventSpan = "span"
)

// Event is one structured trace record. The JSONL stream of events is the
// provenance record of a run: every policy decision and every data
// movement appears with enough context (workflow, host pair, group,
// streams, sizes, durations) to reconstruct figures without access to the
// in-memory state that produced them.
type Event struct {
	// Seq is the tracer-assigned sequence number, strictly increasing in
	// emission order.
	Seq int64 `json:"seq"`
	// TimeUnixNano is the wall-clock emission time.
	TimeUnixNano int64 `json:"timeUnixNano,omitempty"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// TransferID is the policy-assigned transfer ID (t-...), or the
	// cleanup ID (c-...) for cleanup events.
	TransferID string `json:"transferId,omitempty"`
	// RequestID is the caller-supplied request identifier.
	RequestID string `json:"requestId,omitempty"`
	// WorkflowID identifies the requesting workflow.
	WorkflowID string `json:"workflowId,omitempty"`
	// GroupID is the host-pair session group assigned by the service.
	GroupID string `json:"groupId,omitempty"`
	// SourceHost and DestHost are the transfer's host pair.
	SourceHost string `json:"sourceHost,omitempty"`
	DestHost   string `json:"destHost,omitempty"`
	// FileURL names the staged file for cleanup events.
	FileURL string `json:"fileUrl,omitempty"`
	// SizeBytes is the transfer payload size when known.
	SizeBytes int64 `json:"sizeBytes,omitempty"`
	// Streams is the allocated parallel-stream count.
	Streams int `json:"streams,omitempty"`
	// Priority is the transfer's scheduling priority.
	Priority int `json:"priority,omitempty"`
	// Reason explains a suppressed / cleanup-suppressed event.
	Reason string `json:"reason,omitempty"`
	// Seconds is the measured transfer duration (completed events that
	// carried timings).
	Seconds float64 `json:"seconds,omitempty"`
	// SimSeconds is the simulation clock at emission, for events produced
	// inside the simulated testbed.
	SimSeconds float64 `json:"simSeconds,omitempty"`
	// Name is the span's operation name (span events only), e.g.
	// "policy.advise_transfers" or "wal.fsync".
	Name string `json:"name,omitempty"`
	// TraceID, SpanID and ParentSpanID link span events (and any
	// lifecycle event emitted under a traced request) into a causal
	// trace; ParentSpanID is empty on root spans.
	TraceID      string `json:"traceId,omitempty"`
	SpanID       string `json:"spanId,omitempty"`
	ParentSpanID string `json:"parentSpanId,omitempty"`
	// DurationNanos is the span's measured wall-clock duration.
	DurationNanos int64 `json:"durationNanos,omitempty"`
	// WALSeq ties a span to the mutation-log record it covers (append
	// spans carry the appended sequence, fsync spans the last durable
	// one).
	WALSeq uint64 `json:"walSeq,omitempty"`
	// Endpoint and Status annotate HTTP server spans with the route
	// pattern and response code.
	Endpoint string `json:"endpoint,omitempty"`
	Status   int    `json:"status,omitempty"`
}

// Tracer receives lifecycle events. Implementations must be safe for
// concurrent use. A nil Tracer is never passed; callers guard with
// nil checks instead.
type Tracer interface {
	Emit(Event)
}

// JSONLTracer streams events to an io.Writer as JSON Lines, one event per
// line, in emission order. It buffers internally; call Close (or Flush) to
// drain. Safe for concurrent use.
type JSONLTracer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	seq int64
	err error
	// now is the wall clock; replaceable in tests for determinism.
	now func() time.Time
	// dropped counts events discarded because of a write failure (the
	// failing write and every event rejected by the sticky error after
	// it). Nil until SetDropCounter wires a metric.
	dropped *Counter
}

// SetDropCounter registers the counter incremented once per event the
// tracer drops on write failure, surfacing losses that would otherwise
// be invisible until Close.
func (t *JSONLTracer) SetDropCounter(c *Counter) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropped = c
}

// drop records a discarded event. Called with t.mu held.
func (t *JSONLTracer) drop() {
	if t.dropped != nil {
		t.dropped.Inc()
	}
}

// NewJSONLTracer wraps w. If w is also an io.Closer, Close closes it after
// flushing.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	t := &JSONLTracer{bw: bufio.NewWriter(w), now: time.Now}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Emit assigns the event a sequence number and timestamp and writes it.
// Write errors are sticky and reported by Close.
func (t *JSONLTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		t.drop()
		return
	}
	t.seq++
	e.Seq = t.seq
	if e.TimeUnixNano == 0 {
		e.TimeUnixNano = t.now().UnixNano()
	}
	data, err := json.Marshal(&e)
	if err != nil {
		t.err = err
		t.drop()
		return
	}
	if _, err := t.bw.Write(data); err != nil {
		t.err = err
		t.drop()
		return
	}
	if err := t.bw.WriteByte('\n'); err != nil {
		t.err = err
		t.drop()
	}
}

// Flush drains the internal buffer.
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// Close flushes buffered events, closes the underlying writer when it is
// closable, and returns the first error encountered over the tracer's
// lifetime.
func (t *JSONLTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ferr := t.bw.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.c != nil {
		if cerr := t.c.Close(); t.err == nil {
			t.err = cerr
		}
		t.c = nil
	}
	return t.err
}

// ReadEvents decodes a JSONL event stream, preserving order. It is the
// inverse of JSONLTracer and the entry point for regenerating figures
// from a recorded run.
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("obs: event %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

// Collector is an in-memory Tracer for tests and embedded experiment
// runs; events are retrievable in emission order.
type Collector struct {
	mu     sync.Mutex
	seq    int64
	events []Event
}

// Emit appends the event, assigning its sequence number.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	e.Seq = c.seq
	c.events = append(c.events, e)
}

// Events returns a copy of the collected events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of collected events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}
