package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync/atomic"
	"time"
)

// Causal span tracing. A SpanContext (trace ID + span ID) rides a
// context.Context through the process and a traceparent-style header
// across the policyhttp client/server boundary, so one advise call is
// reconstructable end-to-end: client attempt -> server handler -> rule
// firing -> WAL append -> group-commit fsync. Spans are emitted as
// ordinary Events (Type == EventSpan) into the same JSONL stream as the
// transfer lifecycle, keyed by TraceID/SpanID/ParentSpanID.

// TraceparentHeader is the HTTP header carrying the span context, in the
// W3C trace-context style: "00-<32 hex trace id>-<16 hex span id>-01".
const TraceparentHeader = "Traceparent"

// SpanContext identifies a position in a trace: the trace it belongs to
// and the span that is current.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether both IDs are present.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// Traceparent renders the header value for sc.
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a traceparent-style header value. It accepts
// any version field and ignores the flags; malformed values return
// ok == false.
func ParseTraceparent(v string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 {
		return SpanContext{}, false
	}
	if len(parts[0]) != 2 || !isHex(parts[0]) {
		return SpanContext{}, false
	}
	if len(parts[1]) != 32 || !isHex(parts[1]) || parts[1] == strings.Repeat("0", 32) {
		return SpanContext{}, false
	}
	if len(parts[2]) != 16 || !isHex(parts[2]) || parts[2] == strings.Repeat("0", 16) {
		return SpanContext{}, false
	}
	if len(parts[3]) != 2 || !isHex(parts[3]) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: strings.ToLower(parts[1]), SpanID: strings.ToLower(parts[2])}, true
}

func isHex(s string) bool {
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return false
		}
	}
	return true
}

// idFallback seeds deterministic fallback IDs if crypto/rand ever fails
// (it does not on any supported platform, but span creation must never
// fail or block a policy decision).
var idFallback atomic.Uint64

func randomHex(nbytes int) string {
	b := make([]byte, nbytes)
	if _, err := rand.Read(b); err != nil {
		n := idFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * (uint(i) % 8)))
		}
		b[0] |= 1 // never all zeros
	}
	return hex.EncodeToString(b)
}

// NewTraceID returns a fresh 128-bit trace ID in lowercase hex.
func NewTraceID() string { return randomHex(16) }

// NewSpanID returns a fresh 64-bit span ID in lowercase hex.
func NewSpanID() string { return randomHex(8) }

// NewSpanContext mints a root span context: a fresh trace with a fresh
// span.
func NewSpanContext() SpanContext {
	return SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sc.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the span context carried by ctx, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Span is one timed operation within a trace. It is created by StartSpan
// and emitted on End. A nil *Span is valid and inert, so callers need no
// nil checks when tracing is disabled.
type Span struct {
	tracer Tracer
	name   string
	sc     SpanContext
	parent string
	start  time.Time
	// Annot holds optional annotations merged into the emitted event
	// (identifying and timing fields are overwritten at End). Set fields
	// before calling End; Span is not safe for concurrent mutation.
	Annot Event
}

// StartSpan begins a span named name as a child of the span context in
// ctx (or as a root span of a fresh trace if ctx carries none) and
// returns a derived context carrying the new span context. The span is
// emitted to tr on End; if tr is nil the returned *Span is nil (End is
// still safe to call) but the context still carries the child span
// context so propagation works with tracing disabled.
func StartSpan(ctx context.Context, tr Tracer, name string) (context.Context, *Span) {
	parent, ok := SpanFromContext(ctx)
	if tr == nil && !ok {
		// Tracing disabled and no incoming trace to propagate: the hot
		// path pays nothing (no ID generation, no context allocation).
		return ctx, nil
	}
	var sc SpanContext
	var parentID string
	if ok {
		sc = SpanContext{TraceID: parent.TraceID, SpanID: NewSpanID()}
		parentID = parent.SpanID
	} else {
		sc = NewSpanContext()
	}
	ctx = ContextWithSpan(ctx, sc)
	if tr == nil {
		return ctx, nil
	}
	return ctx, &Span{tracer: tr, name: name, sc: sc, parent: parentID, start: time.Now()}
}

// SetWALSeq annotates the span with the WAL sequence it covers. Safe on
// nil spans (tracing disabled).
func (s *Span) SetWALSeq(seq uint64) {
	if s != nil {
		s.Annot.WALSeq = seq
	}
}

// Context returns the span's own span context. Valid on nil spans.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// End emits the span event with its measured duration. Safe on nil
// spans; a second End is ignored.
func (s *Span) End() {
	if s == nil || s.tracer == nil {
		return
	}
	e := s.Annot
	e.Type = EventSpan
	e.Name = s.name
	e.TraceID = s.sc.TraceID
	e.SpanID = s.sc.SpanID
	e.ParentSpanID = s.parent
	e.DurationNanos = time.Since(s.start).Nanoseconds()
	tr := s.tracer
	s.tracer = nil
	tr.Emit(e)
}
