package obs

// WALMetrics groups the registry series of the durability layer (the
// write-ahead log and snapshot machinery in internal/durable). It is
// created against a registry with NewWALMetrics and handed to the store;
// a nil *WALMetrics disables instrumentation, so embedded and test runs
// pay nothing.
type WALMetrics struct {
	// Appends counts records appended to the WAL.
	Appends *Counter // wal_appends_total
	// Fsyncs counts fsync(2) calls issued by the group-commit path. The
	// ratio appends/fsyncs is the group-commit batching factor.
	Fsyncs *Counter // wal_fsyncs_total
	// Bytes counts framed record bytes written to the WAL.
	Bytes *Counter // wal_bytes_written_total
	// Snapshots counts snapshots written.
	Snapshots *Counter // wal_snapshots_total
	// SnapshotSeconds measures snapshot write duration (export, encode,
	// fsync and rename included).
	SnapshotSeconds *Histogram // wal_snapshot_seconds
	// RecoveredRecords counts WAL records replayed during crash recovery.
	RecoveredRecords *Counter // wal_recovered_records_total
}

// NewWALMetrics registers the durability-layer metric families in reg and
// returns their handles.
func NewWALMetrics(reg *Registry) *WALMetrics {
	return &WALMetrics{
		Appends: reg.Counter("wal_appends_total",
			"Mutation records appended to the write-ahead log.").With(),
		Fsyncs: reg.Counter("wal_fsyncs_total",
			"fsync calls issued by the WAL group-commit path.").With(),
		Bytes: reg.Counter("wal_bytes_written_total",
			"Framed record bytes written to the write-ahead log.").With(),
		Snapshots: reg.Counter("wal_snapshots_total",
			"Policy Memory snapshots written to the data directory.").With(),
		SnapshotSeconds: reg.Histogram("wal_snapshot_seconds",
			"Snapshot write duration in seconds.", nil).With(),
		RecoveredRecords: reg.Counter("wal_recovered_records_total",
			"WAL records replayed during crash recovery.").With(),
	}
}
