// Package obs is the observability layer shared by the policy service,
// the transfer tool and the workflow executor: a concurrency-safe metrics
// registry (counters, gauges and bounded-bucket histograms with labeled
// series, rendered in the Prometheus text exposition format) and a
// structured JSONL event tracer that records the lifecycle of every
// transfer the policy service sees. It is stdlib-only by design — the
// reproduction must not grow external dependencies — and every hot-path
// operation takes a single short mutex hold so instrumented code stays
// cheap under the concurrent workloads of the scalability experiments.
package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind identifies a metric family's type.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bounded-bucket distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// nameRe is the Prometheus metric/label name grammar.
var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds metric families and renders them for scraping. It is safe
// for concurrent use; the zero value is not usable, call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// family is one named metric with a fixed label schema and many series.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	keys   []string
}

// series is one labeled sample (or histogram) within a family.
type series struct {
	labelValues []string

	mu    sync.Mutex
	value float64  // counter/gauge
	sum   float64  // histogram
	count uint64   // histogram
	cells []uint64 // histogram; len(buckets)+1, last is +Inf
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind, buckets []float64, labels []string) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q in metric %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]*series),
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: metric %s buckets are not strictly increasing", name))
			}
		}
		f.buckets = append([]float64(nil), buckets...)
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label value(s), got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.kind == KindHistogram {
			s.cells = make([]uint64, len(f.buckets)+1)
		}
		f.series[key] = s
		f.keys = append(f.keys, key)
		sort.Strings(f.keys)
	}
	return s
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// Counter registers (or retrieves) a counter family. Families without
// labels materialize their single series immediately so a zero sample is
// always exposed.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{f: r.family(name, help, KindCounter, nil, labels)}
	if len(labels) == 0 {
		v.f.get(nil)
	}
	return v
}

// With returns the counter for the given label values, creating it at zero
// on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.get(labelValues)}
}

// Counter is one monotonically increasing series.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotonic).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.s.mu.Lock()
	c.s.value += delta
	c.s.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.value
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// Gauge registers (or retrieves) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{f: r.family(name, help, KindGauge, nil, labels)}
	if len(labels) == 0 {
		v.f.get(nil)
	}
	return v
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{s: v.f.get(labelValues)}
}

// Gauge is one series whose value moves both ways.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.value = v
	g.s.mu.Unlock()
}

// Add shifts the value by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	g.s.mu.Lock()
	g.s.value += delta
	g.s.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.value
}

// DefBuckets are latency buckets in seconds, matching the Prometheus
// client defaults — appropriate for rule-evaluation and HTTP handler
// times.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n strictly increasing buckets starting at start and
// multiplying by factor — for transfer sizes and durations that span
// orders of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// Histogram registers (or retrieves) a histogram family with the given
// bucket upper bounds (nil selects DefBuckets). Bounds must be strictly
// increasing; a +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{f: r.family(name, help, KindHistogram, buckets, labels)}
	if len(labels) == 0 {
		v.f.get(nil)
	}
	return v
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{s: v.f.get(labelValues), buckets: v.f.buckets}
}

// Histogram is one bounded-bucket distribution series.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.buckets, v) // first bound >= v
	h.s.mu.Lock()
	h.s.cells[idx]++
	h.s.count++
	h.s.sum += v
	h.s.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.sum
}

// escapeLabel escapes a label value per the text exposition format.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k1="v1",k2="v2"}; empty schemas render nothing.
func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel.Replace(values[i]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if len(names) > 0 || i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extra[i], escapeLabel.Replace(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4): each family's samples
// are preceded by its # HELP and # TYPE lines, histogram series expand to
// cumulative _bucket samples plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(order))
	for _, name := range order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()

		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range sers {
			if err := f.writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f *family) writeSeries(w io.Writer, s *series) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch f.kind {
	case KindHistogram:
		var cum uint64
		for i, bound := range f.buckets {
			cum += s.cells[i]
			le := formatValue(bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelString(f.labels, s.labelValues, "le", le), cum); err != nil {
				return err
			}
		}
		cum += s.cells[len(f.buckets)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labels, s.labelValues, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, labelString(f.labels, s.labelValues), formatValue(s.sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, labelString(f.labels, s.labelValues), s.count)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.name, labelString(f.labels, s.labelValues), formatValue(s.value))
		return err
	}
}

// Sample is one rendered series in a Snapshot.
type Sample struct {
	// Labels maps label names to values; nil for unlabeled series.
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value, or the histogram sum.
	Value float64 `json:"value"`
	// Count is the histogram observation count (histograms only).
	Count uint64 `json:"count,omitempty"`
}

// FamilySnapshot is the point-in-time state of one metric family.
type FamilySnapshot struct {
	Name    string   `json:"name"`
	Help    string   `json:"help"`
	Kind    string   `json:"kind"`
	Samples []Sample `json:"samples"`
}

// Snapshot returns the registry contents in registration order — the
// expvar-style JSON form served on /debug/vars and consumed by tests.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(order))
	for _, name := range order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, s := range sers {
			s.mu.Lock()
			smp := Sample{}
			if len(f.labels) > 0 {
				smp.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					smp.Labels[n] = s.labelValues[i]
				}
			}
			if f.kind == KindHistogram {
				smp.Value = s.sum
				smp.Count = s.count
			} else {
				smp.Value = s.value
			}
			s.mu.Unlock()
			fs.Samples = append(fs.Samples, smp)
		}
		out = append(out, fs)
	}
	return out
}
