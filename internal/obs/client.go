package obs

// ClientMetrics groups the registry series of the policy HTTP client's
// retry machinery. A nil *ClientMetrics disables instrumentation, so
// un-instrumented clients pay nothing.
type ClientMetrics struct {
	// Requests counts logical client calls by endpoint path.
	Requests *CounterVec // client_requests_total{endpoint}
	// Retries counts retry attempts (the first attempt is not a retry).
	Retries *CounterVec // client_retries_total{endpoint}
	// Faults counts attempt failures by kind: "transport" (connection
	// error, timeout, dropped response) or "http_5xx" (retryable status).
	Faults *CounterVec // client_faults_total{endpoint,kind}
	// Exhausted counts calls that failed after the last attempt.
	Exhausted *CounterVec // client_retries_exhausted_total{endpoint}
	// IdempotentReplays counts server-acknowledged idempotent replays
	// observed by the client (the server answered from its response cache).
	IdempotentReplays *CounterVec // client_idempotent_replays_total{endpoint}
}

// NewClientMetrics registers the client retry metric families in reg and
// returns their handles.
func NewClientMetrics(reg *Registry) *ClientMetrics {
	return &ClientMetrics{
		Requests: reg.Counter("client_requests_total",
			"Logical policy-client calls by endpoint.", "endpoint"),
		Retries: reg.Counter("client_retries_total",
			"Policy-client retry attempts by endpoint.", "endpoint"),
		Faults: reg.Counter("client_faults_total",
			"Policy-client attempt failures by endpoint and kind.", "endpoint", "kind"),
		Exhausted: reg.Counter("client_retries_exhausted_total",
			"Policy-client calls that failed after exhausting retries.", "endpoint"),
		IdempotentReplays: reg.Counter("client_idempotent_replays_total",
			"Responses served from the server's idempotency cache.", "endpoint"),
	}
}
