package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.", "op")
	c.With("advise").Add(3)
	c.With("advise").Inc()
	c.With("report").Inc()
	if got := c.With("advise").Value(); got != 4 {
		t.Errorf("advise counter = %v, want 4", got)
	}
	c.With("advise").Add(-5) // ignored: counters are monotonic
	if got := c.With("advise").Value(); got != 4 {
		t.Errorf("advise counter after negative Add = %v, want 4", got)
	}
	g := r.Gauge("in_flight", "In-flight work.")
	g.With().Set(7)
	g.With().Add(-2)
	if got := g.With().Value(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
}

func TestRegistryReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "Hits.", "route")
	b := r.Counter("hits_total", "Hits.", "route")
	a.With("x").Inc()
	b.With("x").Inc()
	if got := a.With("x").Value(); got != 2 {
		t.Errorf("shared family counter = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registration with different schema did not panic")
		}
	}()
	r.Gauge("hits_total", "Hits.")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "2bad", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q accepted", bad)
				}
			}()
			r.Counter(bad, "bad")
		}()
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a sample equal to a
// bound lands in that bound's bucket; a sample above every bound lands
// only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10}).With()
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 10, 11} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,  // 0.05, 0.1
		`lat_seconds_bucket{le="1"} 4`,    // + 0.5, 1
		`lat_seconds_bucket{le="10"} 5`,   // + 10
		`lat_seconds_bucket{le="+Inf"} 6`, // + 11
		`lat_seconds_sum 22.65`,
		`lat_seconds_count 6`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestHistogramBadBucketsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("non-increasing buckets accepted")
		}
	}()
	r.Histogram("h", "h", []float64{1, 1})
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("policy_streams_allocated", "Streams per pair.", "src", "dst")
	c.With("a.example.org", "b.example.org").Add(4)
	r.Gauge("empty_gauge", "Never set.")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP policy_streams_allocated Streams per pair.\n# TYPE policy_streams_allocated counter\n",
		"policy_streams_allocated{src=\"a.example.org\",dst=\"b.example.org\"} 4\n",
		// Unlabeled families expose a zero sample immediately.
		"empty_gauge 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", "l").With(`a"b\c` + "\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `c_total{l="a\"b\\c\n"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("escaping: got\n%s\nwant fragment %q", sb.String(), want)
	}
}

// TestConcurrentRegistry hammers every metric kind from many goroutines
// while a reader scrapes — under -race this is the registry's
// thread-safety proof required by the acceptance criteria.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops_total", "Ops.", "worker")
			g := r.Gauge("depth", "Depth.", "worker")
			h := r.Histogram("dur_seconds", "Durations.", nil, "worker")
			label := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.With(label).Inc()
				g.With(label).Add(1)
				h.With(label).Observe(float64(i%13) / 10)
			}
		}()
	}
	// Concurrent scrapes must not race with writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			r.Snapshot()
		}
	}()
	wg.Wait()

	for w := 0; w < workers; w++ {
		label := string(rune('a' + w))
		if got := r.Counter("ops_total", "Ops.", "worker").With(label).Value(); got != iters {
			t.Errorf("worker %s counter = %v, want %d", label, got, iters)
		}
		if got := r.Histogram("dur_seconds", "Durations.", nil, "worker").With(label).Count(); got != iters {
			t.Errorf("worker %s histogram count = %d, want %d", label, got, iters)
		}
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot families = %d, want 3", len(snap))
	}
}
