package transfer

import (
	"context"
	"math"
	"sync"
	"testing"

	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/workflow"
)

// recordingAdvisor wraps a policy service and captures completion reports.
type recordingAdvisor struct {
	*policy.Service
	mu      sync.Mutex
	reports []policy.CompletionReport
}

func (r *recordingAdvisor) ReportTransfers(rep policy.CompletionReport) (*policy.ReportAck, error) {
	r.mu.Lock()
	r.reports = append(r.reports, rep)
	r.mu.Unlock()
	return r.Service.ReportTransfers(rep)
}

// ReportTransfersCtx intercepts the ContextAdvisor path the PTT prefers.
func (r *recordingAdvisor) ReportTransfersCtx(ctx context.Context, rep policy.CompletionReport) (*policy.ReportAck, error) {
	r.mu.Lock()
	r.reports = append(r.reports, rep)
	r.mu.Unlock()
	return r.Service.ReportTransfersCtx(ctx, rep)
}

func TestTimingsReportedAccurately(t *testing.T) {
	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingAdvisor{Service: svc}
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	ptt, err := New(Config{Advisor: rec, Fabric: fab, DefaultStreams: 10})
	if err != nil {
		t.Fatal(err)
	}
	env.Go("task", func(p *simnet.Proc) {
		// 7 MB at 10 streams saturating 3.5 MB/s -> exactly 2 s.
		if err := ptt.ExecuteList(p, "wf", "c", []workflow.TransferOp{op(1, 7)}, 0); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.reports) != 1 || len(rec.reports[0].Timings) != 1 {
		t.Fatalf("reports = %+v", rec.reports)
	}
	tm := rec.reports[0].Timings[0]
	if math.Abs(tm.Seconds-2.0) > 1e-9 {
		t.Fatalf("timing = %v, want 2.0", tm.Seconds)
	}
}

func TestFailedTransfersHaveNoTimings(t *testing.T) {
	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingAdvisor{Service: svc}
	env := simnet.NewEnv(3)
	fab := NewSimFabric(env, func(pair policy.HostPair) simnet.PipeConfig {
		c := quietConfigFor(pair)
		c.OverloadKnee = 1
		c.FailureHazard = 100
		return c
	})
	ptt, err := New(Config{Advisor: rec, Fabric: fab, DefaultStreams: 8})
	if err != nil {
		t.Fatal(err)
	}
	env.Go("task", func(p *simnet.Proc) {
		ptt.ExecuteList(p, "wf", "c", []workflow.TransferOp{op(1, 100)}, 0)
	})
	env.Run(0)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.reports) != 1 {
		t.Fatalf("reports = %d", len(rec.reports))
	}
	rep := rec.reports[0]
	if len(rep.FailedIDs) != 1 || len(rep.Timings) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestNoPolicySessionPerPairChange(t *testing.T) {
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	ptt, err := New(Config{Fabric: fab, DefaultStreams: 4, SessionSetupSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Alternating pairs A,B,A force a session change at each step (no
	// policy grouping to save us).
	a1 := op(1, 1)
	b := op(2, 1)
	b.SourceURL = "http://other.example.org/f2"
	a2 := op(3, 1)
	env.Go("task", func(p *simnet.Proc) {
		if err := ptt.ExecuteList(p, "wf", "c", []workflow.TransferOp{a1, b, a2}, 0); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	if got := ptt.Stats().Sessions; got != 3 {
		t.Fatalf("sessions = %d, want 3 (ungrouped alternation)", got)
	}
}
