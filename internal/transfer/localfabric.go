package transfer

import (
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"policyflow/internal/simnet"
)

// LocalFabric is a Fabric that moves real bytes on the local filesystem:
// each URL's path is mapped beneath a root directory, and transfers are
// file copies. It lets the full stack — planner, executor, transfer tool,
// policy service — run against real data without a GridFTP deployment,
// and backs the integration tests that verify actual file movement.
//
// Parallel stream counts are accepted but do not change local copy
// behaviour. Copies run instantaneously in virtual time; LocalFabric is
// for functional verification, not performance simulation.
type LocalFabric struct {
	root string
}

// NewLocalFabric stores all files under root (created if absent).
func NewLocalFabric(root string) (*LocalFabric, error) {
	if root == "" {
		return nil, fmt.Errorf("transfer: LocalFabric root is required")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("transfer: create root: %w", err)
	}
	return &LocalFabric{root: root}, nil
}

// Path maps a URL to its backing file under the fabric root: host and
// path become directory components.
func (f *LocalFabric) Path(rawURL string) (string, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return "", fmt.Errorf("transfer: parse URL %q: %w", rawURL, err)
	}
	p := strings.TrimPrefix(u.Path, "/")
	clean := filepath.Clean(filepath.Join(u.Hostname(), filepath.FromSlash(p)))
	if clean == "." || strings.HasPrefix(clean, "..") {
		return "", fmt.Errorf("transfer: URL %q escapes the fabric root", rawURL)
	}
	return filepath.Join(f.root, clean), nil
}

// Put creates a source file with the given content, for seeding inputs.
func (f *LocalFabric) Put(rawURL string, content []byte) error {
	path, err := f.Path(rawURL)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, content, 0o644)
}

// Exists reports whether a URL's backing file exists.
func (f *LocalFabric) Exists(rawURL string) bool {
	path, err := f.Path(rawURL)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// Transfer implements Fabric with a real file copy.
func (f *LocalFabric) Transfer(p *simnet.Proc, srcURL, dstURL string, sizeBytes int64, streams int) error {
	srcPath, err := f.Path(srcURL)
	if err != nil {
		return err
	}
	dstPath, err := f.Path(dstURL)
	if err != nil {
		return err
	}
	src, err := os.Open(srcPath)
	if err != nil {
		return fmt.Errorf("transfer: open source %s: %w", srcURL, err)
	}
	defer src.Close()
	if err := os.MkdirAll(filepath.Dir(dstPath), 0o755); err != nil {
		return err
	}
	dst, err := os.Create(dstPath)
	if err != nil {
		return fmt.Errorf("transfer: create destination %s: %w", dstURL, err)
	}
	if _, err := io.Copy(dst, src); err != nil {
		dst.Close()
		return fmt.Errorf("transfer: copy %s -> %s: %w", srcURL, dstURL, err)
	}
	return dst.Close()
}

// Delete implements Fabric by removing the backing file. Deleting a
// missing file is not an error (cleanup is idempotent).
func (f *LocalFabric) Delete(p *simnet.Proc, rawURL string) error {
	path, err := f.Path(rawURL)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("transfer: delete %s: %w", rawURL, err)
	}
	return nil
}
