// Package transfer implements the Pegasus Transfer Tool (PTT) equivalent:
// the client that actually executes data staging and cleanup operations.
// As in the paper's modified PTT, when a policy service is configured the
// tool first submits its transfer list to the service, then executes the
// returned (modified) list — grouped by host pair, in the advised order,
// with the advised parallel-stream counts — and finally reports completed
// and failed transfers back to the service.
package transfer

import (
	"context"
	"fmt"
	"sync"

	"policyflow/internal/policy"
	"policyflow/internal/simnet"
)

// Advisor is the policy service interface the PTT consults. Both
// *policy.Service (in-process) and *policyhttp.Client (REST) satisfy it.
type Advisor interface {
	AdviseTransfers([]policy.TransferSpec) (*policy.TransferAdvice, error)
	ReportTransfers(policy.CompletionReport) (*policy.ReportAck, error)
	AdviseCleanups([]policy.CleanupSpec) (*policy.CleanupAdvice, error)
	ReportCleanups(policy.CleanupReport) (*policy.ReportAck, error)
}

// ContextAdvisor is the optional Advisor extension for advisors that
// accept a caller context carrying a causal span context (both
// *policy.Service and *policyhttp.Client implement it). The PTT mints one
// trace per advised batch, so the advise call, the rule firings behind
// it, and the resulting transfer lifecycle events all share one trace ID.
type ContextAdvisor interface {
	AdviseTransfersCtx(ctx context.Context, specs []policy.TransferSpec) (*policy.TransferAdvice, error)
	ReportTransfersCtx(ctx context.Context, report policy.CompletionReport) (*policy.ReportAck, error)
	AdviseCleanupsCtx(ctx context.Context, specs []policy.CleanupSpec) (*policy.CleanupAdvice, error)
	ReportCleanupsCtx(ctx context.Context, report policy.CleanupReport) (*policy.ReportAck, error)
}

// KeyedContextReporter is the optional Advisor extension combining a
// caller-chosen idempotency key with a caller trace context (the REST
// client). The PTT prefers it over KeyedReporter so keyed reports keep
// their batch trace without giving up stable keys across backlog drains.
type KeyedContextReporter interface {
	ReportTransfersKeyedCtx(ctx context.Context, key string, report policy.CompletionReport) (*policy.ReportAck, error)
	ReportCleanupsKeyedCtx(ctx context.Context, key string, report policy.CleanupReport) (*policy.ReportAck, error)
}

// KeyedReporter is the optional Advisor extension for advisors that accept
// a caller-chosen idempotency key (the REST client). The PTT uses it when
// draining its degraded-mode backlog: each queued report keeps one key
// across every drain attempt, so a report that reached the service before
// a lost response is not applied twice.
type KeyedReporter interface {
	ReportTransfersKeyed(key string, report policy.CompletionReport) (*policy.ReportAck, error)
	ReportCleanupsKeyed(key string, report policy.CleanupReport) (*policy.ReportAck, error)
}

// LeaseRenewer is the optional Advisor extension for advisors that expose
// lease renewal. The PTT re-acquires its lease when reconciling after a
// degraded-mode episode.
type LeaseRenewer interface {
	RenewLease(workflowID string) (*policy.LeaseStatus, error)
}

// Fabric abstracts the data plane: something that can move bytes between
// URLs and delete staged files, in simulated time.
type Fabric interface {
	// Transfer moves sizeBytes from srcURL to dstURL with the given
	// number of parallel streams, blocking p until done.
	Transfer(p *simnet.Proc, srcURL, dstURL string, sizeBytes int64, streams int) error
	// Delete removes the staged file at url.
	Delete(p *simnet.Proc, url string) error
}

// SimFabric is a Fabric backed by simnet pipes, one per host pair. Pipe
// configurations are chosen by the PipeConfigFor callback, so a WAN pair
// and a LAN pair get different bandwidth models.
type SimFabric struct {
	mu  sync.Mutex
	env *simnet.Env
	// PipeConfigFor selects the bandwidth model for a host pair.
	pipeConfigFor func(pair policy.HostPair) simnet.PipeConfig
	pipes         map[policy.HostPair]*simnet.Pipe
	// DeleteSeconds is the simulated cost of one file deletion.
	deleteSeconds float64
}

// NewSimFabric creates a fabric on env. configFor may be nil, in which
// case every pair uses simnet.WANConfig.
func NewSimFabric(env *simnet.Env, configFor func(pair policy.HostPair) simnet.PipeConfig) *SimFabric {
	if configFor == nil {
		configFor = func(policy.HostPair) simnet.PipeConfig { return simnet.WANConfig() }
	}
	return &SimFabric{
		env:           env,
		pipeConfigFor: configFor,
		pipes:         make(map[policy.HostPair]*simnet.Pipe),
		deleteSeconds: 0.2,
	}
}

// SetDeleteSeconds overrides the simulated per-deletion cost.
func (f *SimFabric) SetDeleteSeconds(s float64) { f.deleteSeconds = s }

// Pipe returns (creating on first use) the pipe for a host pair.
func (f *SimFabric) Pipe(pair policy.HostPair) *simnet.Pipe {
	f.mu.Lock()
	defer f.mu.Unlock()
	pipe, ok := f.pipes[pair]
	if !ok {
		pipe = f.env.NewPipe(f.pipeConfigFor(pair))
		f.pipes[pair] = pipe
	}
	return pipe
}

// Pipes returns a snapshot of all pipes created so far, keyed by pair.
func (f *SimFabric) Pipes() map[policy.HostPair]*simnet.Pipe {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[policy.HostPair]*simnet.Pipe, len(f.pipes))
	for k, v := range f.pipes {
		out[k] = v
	}
	return out
}

// Transfer implements Fabric.
func (f *SimFabric) Transfer(p *simnet.Proc, srcURL, dstURL string, sizeBytes int64, streams int) error {
	pair := policy.PairOf(srcURL, dstURL)
	pipe := f.Pipe(pair)
	sizeMB := float64(sizeBytes) / (1 << 20)
	if err := pipe.Transfer(p, sizeMB, streams); err != nil {
		return fmt.Errorf("transfer %s -> %s: %w", srcURL, dstURL, err)
	}
	return nil
}

// Delete implements Fabric.
func (f *SimFabric) Delete(p *simnet.Proc, url string) error {
	p.Sleep(f.deleteSeconds)
	return nil
}
