package transfer

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/workflow"
)

// Config configures a PTT instance.
type Config struct {
	// Advisor is the policy service; nil runs without policy (default
	// Pegasus behaviour: every transfer uses DefaultStreams).
	Advisor Advisor
	// Fabric executes the actual data movement; required.
	Fabric Fabric
	// DefaultStreams is used for every transfer when no policy service is
	// configured, and sent as the requested stream count when one is.
	// (The paper's experiments vary this "default streams per transfer".)
	DefaultStreams int
	// SessionSetupSeconds is the cost of opening a transfer session to a
	// new host pair (GridFTP connection + authentication). Grouping
	// transfers by host pair amortizes it (Fig. 2's motivation).
	SessionSetupSeconds float64
	// TransferSetupSeconds is the per-transfer initiation overhead within
	// an open session.
	TransferSetupSeconds float64
	// PolicyCallSeconds models the round-trip latency of one policy
	// service call (the paper: the approach "incurs overheads for the
	// service calls").
	PolicyCallSeconds float64
	// Obs, when set, receives per-host-pair transfer metrics (bytes and
	// duration histograms, executed/failed counters).
	Obs *obs.Registry
	// Tracer, when set, receives a started event (stamped with the
	// simulation clock) for every transfer the PTT begins executing.
	Tracer obs.Tracer
	// Breaker configures the fail-open circuit breaker around the policy
	// advisor. The zero value disables it: policy-call failures fail the
	// staging task, the pre-existing behaviour.
	Breaker BreakerConfig
}

// BreakerConfig tunes the PTT's degraded mode. When the policy service is
// unreachable for FailureThreshold consecutive calls, the breaker opens:
// staging proceeds with locally computed defaults (DefaultStreams per
// transfer, host-pair grouping), cleanups are deferred, and unreported
// completions queue in a bounded backlog. After CooldownSeconds of
// simulated time one call probes the service again; on success the PTT
// reconciles — re-acquires its lease and drains the backlog, reusing each
// queued report's idempotency key so nothing is applied twice.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive policy-call failures
	// that opens the breaker; 0 disables the breaker entirely.
	FailureThreshold int
	// CooldownSeconds is how long (simulated time) the breaker stays open
	// before probing the service again. Defaults to 30.
	CooldownSeconds float64
	// BacklogLimit bounds the unreported-completion queue; the oldest
	// entry is dropped on overflow. Defaults to 256.
	BacklogLimit int
}

func (c *Config) normalize() error {
	if c.Fabric == nil {
		return errors.New("transfer: Config.Fabric is required")
	}
	if c.DefaultStreams < 1 {
		c.DefaultStreams = 4
	}
	if c.SessionSetupSeconds < 0 || c.TransferSetupSeconds < 0 || c.PolicyCallSeconds < 0 {
		return errors.New("transfer: negative overhead")
	}
	if c.Breaker.FailureThreshold > 0 {
		if c.Breaker.CooldownSeconds <= 0 {
			c.Breaker.CooldownSeconds = 30
		}
		if c.Breaker.BacklogLimit <= 0 {
			c.Breaker.BacklogLimit = 256
		}
	}
	return nil
}

// Stats aggregates PTT activity counters.
type Stats struct {
	// TransfersExecuted counts transfers actually performed.
	TransfersExecuted int64
	// TransfersSuppressed counts transfers the policy service removed.
	TransfersSuppressed int64
	// TransfersFailed counts failed transfer attempts.
	TransfersFailed int64
	// BytesMoved totals the payload of executed transfers.
	BytesMoved int64
	// PolicyCalls counts round trips to the policy service.
	PolicyCalls int64
	// Sessions counts transfer sessions opened (host-pair groups).
	Sessions int64
	// CleanupsExecuted and CleanupsSuppressed count deletion operations.
	CleanupsExecuted   int64
	CleanupsSuppressed int64
	// DegradedTransfers counts transfers executed with fail-open defaults
	// while the breaker was open or the advice call failed.
	DegradedTransfers int64
	// BreakerOpens counts breaker open transitions.
	BreakerOpens int64
	// PolicyBusy counts policy calls shed by server admission control
	// (HTTP 429). Busy is "healthy but overloaded": the call is degraded
	// or queued like a failure, but does not count toward the breaker
	// threshold — tripping to fail-open would convert a transient
	// overload into a policy-blind stampede.
	PolicyBusy int64
	// BacklogQueued, BacklogDropped and BacklogDrained count completion
	// reports entering, overflowing out of, and successfully leaving the
	// degraded-mode backlog.
	BacklogQueued  int64
	BacklogDropped int64
	BacklogDrained int64
	// Reconciles counts recoveries that fully drained the backlog.
	Reconciles int64
	// CleanupsDeferred counts deletions skipped while degraded (without
	// policy knowledge a shared file must not be deleted).
	CleanupsDeferred int64
	// LeaseRenewals counts explicit lease re-acquisitions at reconcile.
	LeaseRenewals int64
}

// PTT is the Pegasus Transfer Tool equivalent. Safe for concurrent use by
// many simulated processes.
type PTT struct {
	cfg   Config
	mu    sync.Mutex
	stats Stats
	seq   int64

	// Circuit-breaker state, all under mu.
	consecFailures int
	open           bool
	openedAt       float64
	backlog        []backlogEntry
	reconciling    bool

	metrics *pttMetrics // nil without Config.Obs
}

// backlogEntry is one unreported completion held while the policy service
// is unreachable. Exactly one of transfers/cleanups is set. The key is
// minted once and reused on every drain attempt, so an advisor that
// honors idempotency keys (the REST client) applies the report at most
// once even if an earlier attempt's response was lost.
type backlogEntry struct {
	key        string
	workflowID string
	transfers  *policy.CompletionReport
	cleanups   *policy.CleanupReport
}

// pttMetrics holds the PTT's registry series, all labeled by host pair.
type pttMetrics struct {
	bytesHist   *obs.HistogramVec // transfer_size_bytes{src,dst}
	durHist     *obs.HistogramVec // transfer_duration_seconds{src,dst}
	executed    *obs.CounterVec   // transfer_executed_total{src,dst}
	failed      *obs.CounterVec   // transfer_failed_total{src,dst}
	bytesMoved  *obs.CounterVec   // transfer_bytes_total{src,dst}
	sessions    *obs.Counter      // transfer_sessions_total
	policyCalls *obs.Counter      // transfer_policy_calls_total

	degraded       *obs.Counter // transfer_degraded_total
	policyBusy     *obs.Counter // transfer_policy_busy_total
	breakerOpens   *obs.Counter // transfer_breaker_opens_total
	backlogQueued  *obs.Counter // transfer_backlog_queued_total
	backlogDropped *obs.Counter // transfer_backlog_dropped_total
	backlogDrained *obs.Counter // transfer_backlog_drained_total
	reconciles     *obs.Counter // transfer_reconciles_total
}

// New creates a PTT.
func New(cfg Config) (*PTT, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	t := &PTT{cfg: cfg}
	if reg := cfg.Obs; reg != nil {
		t.metrics = &pttMetrics{
			bytesHist: reg.Histogram("transfer_size_bytes",
				"Executed transfer payload sizes per host pair.",
				obs.ExpBuckets(1<<10, 4, 12), "src", "dst"),
			durHist: reg.Histogram("transfer_duration_seconds",
				"Executed transfer durations (simulated seconds) per host pair.",
				obs.ExpBuckets(0.01, 4, 12), "src", "dst"),
			executed: reg.Counter("transfer_executed_total",
				"Transfers executed per host pair.", "src", "dst"),
			failed: reg.Counter("transfer_failed_total",
				"Transfer attempts failed per host pair.", "src", "dst"),
			bytesMoved: reg.Counter("transfer_bytes_total",
				"Bytes moved per host pair.", "src", "dst"),
			sessions: reg.Counter("transfer_sessions_total",
				"Transfer sessions opened (host-pair groups).").With(),
			policyCalls: reg.Counter("transfer_policy_calls_total",
				"Round trips to the policy service.").With(),
			degraded: reg.Counter("transfer_degraded_total",
				"Transfers executed with fail-open defaults (policy unreachable).").With(),
			policyBusy: reg.Counter("transfer_policy_busy_total",
				"Policy calls shed by server admission control (429).").With(),
			breakerOpens: reg.Counter("transfer_breaker_opens_total",
				"Circuit-breaker open transitions.").With(),
			backlogQueued: reg.Counter("transfer_backlog_queued_total",
				"Completion reports queued while degraded.").With(),
			backlogDropped: reg.Counter("transfer_backlog_dropped_total",
				"Queued completion reports dropped on backlog overflow.").With(),
			backlogDrained: reg.Counter("transfer_backlog_drained_total",
				"Queued completion reports delivered at reconcile.").With(),
			reconciles: reg.Counter("transfer_reconciles_total",
				"Recoveries that fully drained the degraded-mode backlog.").With(),
		}
	}
	return t, nil
}

// observeTransfer records one executed or failed transfer against the
// per-host-pair series; a no-op when Config.Obs is unset.
func (t *PTT) observeTransfer(pair policy.HostPair, sizeBytes int64, seconds float64, failed bool) {
	m := t.metrics
	if m == nil {
		return
	}
	if failed {
		m.failed.With(pair.Src, pair.Dst).Inc()
		return
	}
	m.executed.With(pair.Src, pair.Dst).Inc()
	m.bytesMoved.With(pair.Src, pair.Dst).Add(float64(sizeBytes))
	m.bytesHist.With(pair.Src, pair.Dst).Observe(float64(sizeBytes))
	m.durHist.With(pair.Src, pair.Dst).Observe(seconds)
}

// Stats returns a snapshot of the activity counters.
func (t *PTT) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func (t *PTT) bump(f func(*Stats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}

// ErrTransfersFailed reports that one or more transfers in a list failed;
// the caller (the workflow executor) retries the staging job.
var ErrTransfersFailed = errors.New("transfer: one or more transfers failed")

// breakerEnabled reports whether the fail-open breaker is in effect.
func (t *PTT) breakerEnabled() bool {
	return t.cfg.Advisor != nil && t.cfg.Breaker.FailureThreshold > 0
}

// breakerOpen reports whether policy calls should be skipped at simulated
// time now. Once the cooldown has elapsed the next call is allowed
// through as a probe; the breaker itself stays open until that probe
// succeeds (policySucceeded) or fails (policyFailed restarts the
// cooldown).
func (t *PTT) breakerOpen(now float64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open && now-t.openedAt < t.cfg.Breaker.CooldownSeconds
}

// isBusy reports whether a policy-call error is an admission shed (HTTP
// 429): the service is alive and refusing extra load before any side
// effect. Matched structurally — any error exposing HTTPStatus() int,
// such as the REST client's ServerError — so this package stays
// independent of the HTTP client.
func isBusy(err error) bool {
	var sc interface{ HTTPStatus() int }
	return errors.As(err, &sc) && sc.HTTPStatus() == http.StatusTooManyRequests
}

// policyBusy records one shed policy call. Deliberately does not touch
// consecFailures: a 429 proves the service is up, so it must neither
// open the breaker nor (as a success would) reset the count and mask a
// real outage pattern.
func (t *PTT) policyBusy() {
	t.bump(func(s *Stats) { s.PolicyBusy++ })
	if t.metrics != nil {
		t.metrics.policyBusy.Inc()
	}
}

// policyFailed records one failed policy call at simulated time now,
// opening the breaker at the configured threshold.
func (t *PTT) policyFailed(now float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.consecFailures++
	if t.open {
		// A failed probe: restart the cooldown.
		t.openedAt = now
		return
	}
	if t.consecFailures >= t.cfg.Breaker.FailureThreshold {
		t.open = true
		t.openedAt = now
		t.stats.BreakerOpens++
		if t.metrics != nil {
			t.metrics.breakerOpens.Inc()
		}
	}
}

// policySucceeded records one successful policy call. If the PTT had been
// degraded (breaker open, or reports queued) it reconciles: re-acquires
// the workflow's lease and drains the backlog.
func (t *PTT) policySucceeded(p *simnet.Proc, workflowID string) {
	if !t.breakerEnabled() {
		return
	}
	t.mu.Lock()
	t.consecFailures = 0
	wasOpen := t.open
	t.open = false
	pending := len(t.backlog)
	t.mu.Unlock()
	if wasOpen || pending > 0 {
		t.reconcile(p, workflowID)
	}
}

// nextBacklogKey mints the idempotency key a report keeps for life —
// through the first send attempt and every backlog drain after it.
func (t *PTT) nextBacklogKey(workflowID string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	return fmt.Sprintf("%s-bk-%06d", workflowID, t.seq)
}

// enqueueBacklog queues one unreported completion, dropping the oldest
// entry when the bound is reached.
func (t *PTT) enqueueBacklog(e backlogEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.backlog) >= t.cfg.Breaker.BacklogLimit {
		t.backlog = t.backlog[1:]
		t.stats.BacklogDropped++
		if t.metrics != nil {
			t.metrics.backlogDropped.Inc()
		}
	}
	t.backlog = append(t.backlog, e)
	t.stats.BacklogQueued++
	if t.metrics != nil {
		t.metrics.backlogQueued.Inc()
	}
}

// sendBacklog delivers one queued report, preferring the keyed interface
// so the entry's original idempotency key is reused.
func (t *PTT) sendBacklog(e backlogEntry) error {
	if kr, ok := t.cfg.Advisor.(KeyedReporter); ok {
		if e.transfers != nil {
			_, err := kr.ReportTransfersKeyed(e.key, *e.transfers)
			return err
		}
		_, err := kr.ReportCleanupsKeyed(e.key, *e.cleanups)
		return err
	}
	if e.transfers != nil {
		_, err := t.cfg.Advisor.ReportTransfers(*e.transfers)
		return err
	}
	_, err := t.cfg.Advisor.ReportCleanups(*e.cleanups)
	return err
}

// reconcile runs after the service answers again: leases are re-acquired
// for every workflow with queued state (the service may have reclaimed
// their holdings while they looked dead), then the backlog drains in
// order. A delivery failure requeues the remainder and re-opens the
// breaker accounting; the next recovery picks up where this one stopped.
func (t *PTT) reconcile(p *simnet.Proc, workflowID string) {
	t.mu.Lock()
	if t.reconciling {
		t.mu.Unlock()
		return
	}
	t.reconciling = true
	pending := t.backlog
	t.backlog = nil
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		t.reconciling = false
		t.mu.Unlock()
	}()

	if lr, ok := t.cfg.Advisor.(LeaseRenewer); ok {
		owners := map[string]bool{}
		if workflowID != "" {
			owners[workflowID] = true
		}
		for _, e := range pending {
			if e.workflowID != "" {
				owners[e.workflowID] = true
			}
		}
		sorted := make([]string, 0, len(owners))
		for o := range owners {
			sorted = append(sorted, o)
		}
		sort.Strings(sorted)
		for _, o := range sorted {
			// Best-effort: a rejection here (e.g. leases disabled) must not
			// block the backlog drain.
			if _, err := lr.RenewLease(o); err == nil {
				t.bump(func(s *Stats) { s.LeaseRenewals++ })
			}
		}
	}
	for i, e := range pending {
		p.Sleep(t.cfg.PolicyCallSeconds)
		t.bump(func(s *Stats) { s.PolicyCalls++ })
		if t.metrics != nil {
			t.metrics.policyCalls.Inc()
		}
		if err := t.sendBacklog(e); err != nil {
			t.mu.Lock()
			t.backlog = append(append([]backlogEntry{}, pending[i:]...), t.backlog...)
			for len(t.backlog) > t.cfg.Breaker.BacklogLimit {
				t.backlog = t.backlog[1:]
				t.stats.BacklogDropped++
				if t.metrics != nil {
					t.metrics.backlogDropped.Inc()
				}
			}
			t.mu.Unlock()
			t.policyFailed(p.Now())
			return
		}
		t.bump(func(s *Stats) { s.BacklogDrained++ })
		if t.metrics != nil {
			t.metrics.backlogDrained.Inc()
		}
	}
	t.bump(func(s *Stats) { s.Reconciles++ })
	if t.metrics != nil {
		t.metrics.reconciles.Inc()
	}
}

// executeDegraded stages the list without policy advice — the fail-open
// path. The locally computed fallback mirrors what the service would do
// knowing nothing: DefaultStreams per transfer, transfers grouped by host
// pair to amortize session setup. Duplicate suppression and threshold
// enforcement are unavailable; the workflow makes progress anyway, which
// is the point.
func (t *PTT) executeDegraded(p *simnet.Proc, ops []workflow.TransferOp) error {
	sorted := append([]workflow.TransferOp(nil), ops...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a := policy.PairOf(sorted[i].SourceURL, sorted[i].DestURL)
		b := policy.PairOf(sorted[j].SourceURL, sorted[j].DestURL)
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	t.bump(func(s *Stats) { s.DegradedTransfers += int64(len(sorted)) })
	if t.metrics != nil {
		t.metrics.degraded.Add(float64(len(sorted)))
	}
	return t.executeWithoutPolicy(p, sorted)
}

// ExecuteList performs a list of transfer operations on behalf of one
// staging task. With a policy service configured it submits the list for
// advice first, executes the modified list in the advised order (grouped
// by host pair, paying one session setup per group), and reports
// completions and failures back. Without a policy service it executes the
// operations in the given order with DefaultStreams each, opening a new
// session whenever the host pair changes.
func (t *PTT) ExecuteList(p *simnet.Proc, workflowID, clusterID string, ops []workflow.TransferOp, priority int) error {
	if len(ops) == 0 {
		return nil
	}
	if t.cfg.Advisor == nil {
		return t.executeWithoutPolicy(p, ops)
	}
	return t.executeWithPolicy(p, workflowID, clusterID, ops, priority)
}

func (t *PTT) executeWithoutPolicy(p *simnet.Proc, ops []workflow.TransferOp) error {
	var lastPair policy.HostPair
	first := true
	var failed int
	for _, op := range ops {
		pair := policy.PairOf(op.SourceURL, op.DestURL)
		if first || pair != lastPair {
			p.Sleep(t.cfg.SessionSetupSeconds)
			t.bump(func(s *Stats) { s.Sessions++ })
			if t.metrics != nil {
				t.metrics.sessions.Inc()
			}
			lastPair, first = pair, false
		}
		p.Sleep(t.cfg.TransferSetupSeconds)
		start := p.Now()
		if err := t.cfg.Fabric.Transfer(p, op.SourceURL, op.DestURL, op.SizeBytes, t.cfg.DefaultStreams); err != nil {
			failed++
			t.bump(func(s *Stats) { s.TransfersFailed++ })
			t.observeTransfer(pair, op.SizeBytes, 0, true)
			continue
		}
		t.bump(func(s *Stats) {
			s.TransfersExecuted++
			s.BytesMoved += op.SizeBytes
		})
		t.observeTransfer(pair, op.SizeBytes, p.Now()-start, false)
	}
	if failed > 0 {
		return fmt.Errorf("%w: %d of %d", ErrTransfersFailed, failed, len(ops))
	}
	return nil
}

func (t *PTT) executeWithPolicy(p *simnet.Proc, workflowID, clusterID string, ops []workflow.TransferOp, priority int) error {
	specs := make([]policy.TransferSpec, 0, len(ops))
	for _, op := range ops {
		t.mu.Lock()
		t.seq++
		reqID := fmt.Sprintf("%s-%06d", workflowID, t.seq)
		t.mu.Unlock()
		specs = append(specs, policy.TransferSpec{
			RequestID:        reqID,
			WorkflowID:       workflowID,
			ClusterID:        clusterID,
			SourceURL:        op.SourceURL,
			DestURL:          op.DestURL,
			SizeBytes:        op.SizeBytes,
			RequestedStreams: t.cfg.DefaultStreams,
			Priority:         priority,
		})
	}
	if t.breakerEnabled() && t.breakerOpen(p.Now()) {
		return t.executeDegraded(p, ops)
	}
	// One trace per advised batch: the advise call, the rule firings
	// behind it, the completion report and every started event below
	// share this trace ID.
	batch := obs.NewSpanContext()
	ctx := obs.ContextWithSpan(context.Background(), batch)
	p.Sleep(t.cfg.PolicyCallSeconds)
	t.bump(func(s *Stats) { s.PolicyCalls++ })
	if t.metrics != nil {
		t.metrics.policyCalls.Inc()
	}
	var adv *policy.TransferAdvice
	var err error
	if ca, ok := t.cfg.Advisor.(ContextAdvisor); ok {
		adv, err = ca.AdviseTransfersCtx(ctx, specs)
	} else {
		adv, err = t.cfg.Advisor.AdviseTransfers(specs)
	}
	if err != nil {
		if !t.breakerEnabled() {
			return fmt.Errorf("transfer: policy advice: %w", err)
		}
		if isBusy(err) {
			// Healthy but busy: run this batch with defaults, breaker
			// untouched.
			t.policyBusy()
			return t.executeDegraded(p, ops)
		}
		// Fail open: the service is unreachable, the data still moves.
		t.policyFailed(p.Now())
		return t.executeDegraded(p, ops)
	}
	t.policySucceeded(p, workflowID)
	t.bump(func(s *Stats) { s.TransfersSuppressed += int64(len(adv.Removed)) })

	var completed, failedIDs []string
	var timings []policy.TransferTiming
	var lastGroup string
	first := true
	for _, tr := range adv.Transfers {
		if first || tr.GroupID != lastGroup {
			p.Sleep(t.cfg.SessionSetupSeconds)
			t.bump(func(s *Stats) { s.Sessions++ })
			if t.metrics != nil {
				t.metrics.sessions.Inc()
			}
			lastGroup, first = tr.GroupID, false
		}
		p.Sleep(t.cfg.TransferSetupSeconds)
		start := p.Now()
		if t.cfg.Tracer != nil {
			t.cfg.Tracer.Emit(obs.Event{
				Type:       obs.EventStarted,
				TraceID:    batch.TraceID,
				TransferID: tr.ID,
				RequestID:  tr.RequestID,
				WorkflowID: tr.WorkflowID,
				GroupID:    tr.GroupID,
				SourceHost: tr.SourceHost,
				DestHost:   tr.DestHost,
				SizeBytes:  tr.SizeBytes,
				Streams:    tr.Streams,
				Priority:   tr.Priority,
				SimSeconds: start,
			})
		}
		pair := policy.HostPair{Src: tr.SourceHost, Dst: tr.DestHost}
		if err := t.cfg.Fabric.Transfer(p, tr.SourceURL, tr.DestURL, tr.SizeBytes, tr.Streams); err != nil {
			failedIDs = append(failedIDs, tr.ID)
			t.bump(func(s *Stats) { s.TransfersFailed++ })
			t.observeTransfer(pair, tr.SizeBytes, 0, true)
			continue
		}
		completed = append(completed, tr.ID)
		timings = append(timings, policy.TransferTiming{TransferID: tr.ID, Seconds: p.Now() - start})
		t.bump(func(s *Stats) {
			s.TransfersExecuted++
			s.BytesMoved += tr.SizeBytes
		})
		t.observeTransfer(pair, tr.SizeBytes, p.Now()-start, false)
	}

	if len(completed) > 0 || len(failedIDs) > 0 {
		p.Sleep(t.cfg.PolicyCallSeconds)
		t.bump(func(s *Stats) { s.PolicyCalls++ })
		if t.metrics != nil {
			t.metrics.policyCalls.Inc()
		}
		report := policy.CompletionReport{
			TransferIDs: completed,
			FailedIDs:   failedIDs,
			Timings:     timings,
		}
		// The key is minted before the first attempt so a backlog drain
		// after a lost response reuses it and the report applies once.
		key := t.nextBacklogKey(workflowID)
		var rerr error
		if kcr, ok := t.cfg.Advisor.(KeyedContextReporter); ok {
			_, rerr = kcr.ReportTransfersKeyedCtx(ctx, key, report)
		} else if kr, ok := t.cfg.Advisor.(KeyedReporter); ok {
			_, rerr = kr.ReportTransfersKeyed(key, report)
		} else if ca, ok := t.cfg.Advisor.(ContextAdvisor); ok {
			_, rerr = ca.ReportTransfersCtx(ctx, report)
		} else {
			_, rerr = t.cfg.Advisor.ReportTransfers(report)
		}
		if rerr != nil {
			if !t.breakerEnabled() {
				return fmt.Errorf("transfer: completion report: %w", rerr)
			}
			// The transfers happened; only the bookkeeping is stuck. Queue
			// it for reconciliation instead of failing the staging task. A
			// shed report (429) was never applied, so it queues the same
			// way but without counting toward the breaker.
			if isBusy(rerr) {
				t.policyBusy()
			} else {
				t.policyFailed(p.Now())
			}
			t.enqueueBacklog(backlogEntry{key: key, workflowID: workflowID, transfers: &report})
		} else {
			t.policySucceeded(p, workflowID)
		}
	}
	if len(failedIDs) > 0 {
		return fmt.Errorf("%w: %d of %d", ErrTransfersFailed, len(failedIDs), len(adv.Transfers))
	}
	return nil
}

// ExecuteCleanups deletes the given staged-file URLs on behalf of a
// cleanup task, consulting the policy service first when configured (the
// service removes duplicates and files other workflows still use) and
// reporting successful deletions afterwards.
func (t *PTT) ExecuteCleanups(p *simnet.Proc, workflowID string, urls []string) error {
	if len(urls) == 0 {
		return nil
	}
	if t.cfg.Advisor == nil {
		for _, u := range urls {
			if err := t.cfg.Fabric.Delete(p, u); err != nil {
				return fmt.Errorf("transfer: delete %s: %w", u, err)
			}
			t.bump(func(s *Stats) { s.CleanupsExecuted++ })
		}
		return nil
	}
	specs := make([]policy.CleanupSpec, 0, len(urls))
	for _, u := range urls {
		t.mu.Lock()
		t.seq++
		reqID := fmt.Sprintf("%s-c%06d", workflowID, t.seq)
		t.mu.Unlock()
		specs = append(specs, policy.CleanupSpec{RequestID: reqID, WorkflowID: workflowID, FileURL: u})
	}
	if t.breakerEnabled() && t.breakerOpen(p.Now()) {
		// Fail safe, not open: without policy knowledge a staged file may
		// still be in use by another workflow, so deletions are deferred
		// rather than risked.
		t.bump(func(s *Stats) { s.CleanupsDeferred += int64(len(urls)) })
		return nil
	}
	batch := obs.NewSpanContext()
	ctx := obs.ContextWithSpan(context.Background(), batch)
	p.Sleep(t.cfg.PolicyCallSeconds)
	t.bump(func(s *Stats) { s.PolicyCalls++ })
	if t.metrics != nil {
		t.metrics.policyCalls.Inc()
	}
	var adv *policy.CleanupAdvice
	var err error
	if ca, ok := t.cfg.Advisor.(ContextAdvisor); ok {
		adv, err = ca.AdviseCleanupsCtx(ctx, specs)
	} else {
		adv, err = t.cfg.Advisor.AdviseCleanups(specs)
	}
	if err != nil {
		if !t.breakerEnabled() {
			return fmt.Errorf("transfer: cleanup advice: %w", err)
		}
		if isBusy(err) {
			// Shed, not down: defer the deletions (fail safe) without
			// counting toward the breaker.
			t.policyBusy()
			t.bump(func(s *Stats) { s.CleanupsDeferred += int64(len(urls)) })
			return nil
		}
		t.policyFailed(p.Now())
		t.bump(func(s *Stats) { s.CleanupsDeferred += int64(len(urls)) })
		return nil
	}
	t.policySucceeded(p, workflowID)
	t.bump(func(s *Stats) { s.CleanupsSuppressed += int64(len(adv.Removed)) })
	var done []string
	for _, c := range adv.Cleanups {
		if err := t.cfg.Fabric.Delete(p, c.FileURL); err != nil {
			return fmt.Errorf("transfer: delete %s: %w", c.FileURL, err)
		}
		done = append(done, c.ID)
		t.bump(func(s *Stats) { s.CleanupsExecuted++ })
	}
	if len(done) > 0 {
		p.Sleep(t.cfg.PolicyCallSeconds)
		t.bump(func(s *Stats) { s.PolicyCalls++ })
		if t.metrics != nil {
			t.metrics.policyCalls.Inc()
		}
		report := policy.CleanupReport{CleanupIDs: done}
		key := t.nextBacklogKey(workflowID)
		var rerr error
		if kcr, ok := t.cfg.Advisor.(KeyedContextReporter); ok {
			_, rerr = kcr.ReportCleanupsKeyedCtx(ctx, key, report)
		} else if kr, ok := t.cfg.Advisor.(KeyedReporter); ok {
			_, rerr = kr.ReportCleanupsKeyed(key, report)
		} else if ca, ok := t.cfg.Advisor.(ContextAdvisor); ok {
			_, rerr = ca.ReportCleanupsCtx(ctx, report)
		} else {
			_, rerr = t.cfg.Advisor.ReportCleanups(report)
		}
		if rerr != nil {
			if !t.breakerEnabled() {
				return fmt.Errorf("transfer: cleanup report: %w", rerr)
			}
			if isBusy(rerr) {
				t.policyBusy()
			} else {
				t.policyFailed(p.Now())
			}
			t.enqueueBacklog(backlogEntry{key: key, workflowID: workflowID, cleanups: &report})
		} else {
			t.policySucceeded(p, workflowID)
		}
	}
	return nil
}
