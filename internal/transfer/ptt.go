package transfer

import (
	"errors"
	"fmt"
	"sync"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/workflow"
)

// Config configures a PTT instance.
type Config struct {
	// Advisor is the policy service; nil runs without policy (default
	// Pegasus behaviour: every transfer uses DefaultStreams).
	Advisor Advisor
	// Fabric executes the actual data movement; required.
	Fabric Fabric
	// DefaultStreams is used for every transfer when no policy service is
	// configured, and sent as the requested stream count when one is.
	// (The paper's experiments vary this "default streams per transfer".)
	DefaultStreams int
	// SessionSetupSeconds is the cost of opening a transfer session to a
	// new host pair (GridFTP connection + authentication). Grouping
	// transfers by host pair amortizes it (Fig. 2's motivation).
	SessionSetupSeconds float64
	// TransferSetupSeconds is the per-transfer initiation overhead within
	// an open session.
	TransferSetupSeconds float64
	// PolicyCallSeconds models the round-trip latency of one policy
	// service call (the paper: the approach "incurs overheads for the
	// service calls").
	PolicyCallSeconds float64
	// Obs, when set, receives per-host-pair transfer metrics (bytes and
	// duration histograms, executed/failed counters).
	Obs *obs.Registry
	// Tracer, when set, receives a started event (stamped with the
	// simulation clock) for every transfer the PTT begins executing.
	Tracer obs.Tracer
}

func (c *Config) normalize() error {
	if c.Fabric == nil {
		return errors.New("transfer: Config.Fabric is required")
	}
	if c.DefaultStreams < 1 {
		c.DefaultStreams = 4
	}
	if c.SessionSetupSeconds < 0 || c.TransferSetupSeconds < 0 || c.PolicyCallSeconds < 0 {
		return errors.New("transfer: negative overhead")
	}
	return nil
}

// Stats aggregates PTT activity counters.
type Stats struct {
	// TransfersExecuted counts transfers actually performed.
	TransfersExecuted int64
	// TransfersSuppressed counts transfers the policy service removed.
	TransfersSuppressed int64
	// TransfersFailed counts failed transfer attempts.
	TransfersFailed int64
	// BytesMoved totals the payload of executed transfers.
	BytesMoved int64
	// PolicyCalls counts round trips to the policy service.
	PolicyCalls int64
	// Sessions counts transfer sessions opened (host-pair groups).
	Sessions int64
	// CleanupsExecuted and CleanupsSuppressed count deletion operations.
	CleanupsExecuted   int64
	CleanupsSuppressed int64
}

// PTT is the Pegasus Transfer Tool equivalent. Safe for concurrent use by
// many simulated processes.
type PTT struct {
	cfg   Config
	mu    sync.Mutex
	stats Stats
	seq   int64

	metrics *pttMetrics // nil without Config.Obs
}

// pttMetrics holds the PTT's registry series, all labeled by host pair.
type pttMetrics struct {
	bytesHist   *obs.HistogramVec // transfer_size_bytes{src,dst}
	durHist     *obs.HistogramVec // transfer_duration_seconds{src,dst}
	executed    *obs.CounterVec   // transfer_executed_total{src,dst}
	failed      *obs.CounterVec   // transfer_failed_total{src,dst}
	bytesMoved  *obs.CounterVec   // transfer_bytes_total{src,dst}
	sessions    *obs.Counter      // transfer_sessions_total
	policyCalls *obs.Counter      // transfer_policy_calls_total
}

// New creates a PTT.
func New(cfg Config) (*PTT, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	t := &PTT{cfg: cfg}
	if reg := cfg.Obs; reg != nil {
		t.metrics = &pttMetrics{
			bytesHist: reg.Histogram("transfer_size_bytes",
				"Executed transfer payload sizes per host pair.",
				obs.ExpBuckets(1<<10, 4, 12), "src", "dst"),
			durHist: reg.Histogram("transfer_duration_seconds",
				"Executed transfer durations (simulated seconds) per host pair.",
				obs.ExpBuckets(0.01, 4, 12), "src", "dst"),
			executed: reg.Counter("transfer_executed_total",
				"Transfers executed per host pair.", "src", "dst"),
			failed: reg.Counter("transfer_failed_total",
				"Transfer attempts failed per host pair.", "src", "dst"),
			bytesMoved: reg.Counter("transfer_bytes_total",
				"Bytes moved per host pair.", "src", "dst"),
			sessions: reg.Counter("transfer_sessions_total",
				"Transfer sessions opened (host-pair groups).").With(),
			policyCalls: reg.Counter("transfer_policy_calls_total",
				"Round trips to the policy service.").With(),
		}
	}
	return t, nil
}

// observeTransfer records one executed or failed transfer against the
// per-host-pair series; a no-op when Config.Obs is unset.
func (t *PTT) observeTransfer(pair policy.HostPair, sizeBytes int64, seconds float64, failed bool) {
	m := t.metrics
	if m == nil {
		return
	}
	if failed {
		m.failed.With(pair.Src, pair.Dst).Inc()
		return
	}
	m.executed.With(pair.Src, pair.Dst).Inc()
	m.bytesMoved.With(pair.Src, pair.Dst).Add(float64(sizeBytes))
	m.bytesHist.With(pair.Src, pair.Dst).Observe(float64(sizeBytes))
	m.durHist.With(pair.Src, pair.Dst).Observe(seconds)
}

// Stats returns a snapshot of the activity counters.
func (t *PTT) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func (t *PTT) bump(f func(*Stats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}

// ErrTransfersFailed reports that one or more transfers in a list failed;
// the caller (the workflow executor) retries the staging job.
var ErrTransfersFailed = errors.New("transfer: one or more transfers failed")

// ExecuteList performs a list of transfer operations on behalf of one
// staging task. With a policy service configured it submits the list for
// advice first, executes the modified list in the advised order (grouped
// by host pair, paying one session setup per group), and reports
// completions and failures back. Without a policy service it executes the
// operations in the given order with DefaultStreams each, opening a new
// session whenever the host pair changes.
func (t *PTT) ExecuteList(p *simnet.Proc, workflowID, clusterID string, ops []workflow.TransferOp, priority int) error {
	if len(ops) == 0 {
		return nil
	}
	if t.cfg.Advisor == nil {
		return t.executeWithoutPolicy(p, ops)
	}
	return t.executeWithPolicy(p, workflowID, clusterID, ops, priority)
}

func (t *PTT) executeWithoutPolicy(p *simnet.Proc, ops []workflow.TransferOp) error {
	var lastPair policy.HostPair
	first := true
	var failed int
	for _, op := range ops {
		pair := policy.PairOf(op.SourceURL, op.DestURL)
		if first || pair != lastPair {
			p.Sleep(t.cfg.SessionSetupSeconds)
			t.bump(func(s *Stats) { s.Sessions++ })
			if t.metrics != nil {
				t.metrics.sessions.Inc()
			}
			lastPair, first = pair, false
		}
		p.Sleep(t.cfg.TransferSetupSeconds)
		start := p.Now()
		if err := t.cfg.Fabric.Transfer(p, op.SourceURL, op.DestURL, op.SizeBytes, t.cfg.DefaultStreams); err != nil {
			failed++
			t.bump(func(s *Stats) { s.TransfersFailed++ })
			t.observeTransfer(pair, op.SizeBytes, 0, true)
			continue
		}
		t.bump(func(s *Stats) {
			s.TransfersExecuted++
			s.BytesMoved += op.SizeBytes
		})
		t.observeTransfer(pair, op.SizeBytes, p.Now()-start, false)
	}
	if failed > 0 {
		return fmt.Errorf("%w: %d of %d", ErrTransfersFailed, failed, len(ops))
	}
	return nil
}

func (t *PTT) executeWithPolicy(p *simnet.Proc, workflowID, clusterID string, ops []workflow.TransferOp, priority int) error {
	specs := make([]policy.TransferSpec, 0, len(ops))
	for _, op := range ops {
		t.mu.Lock()
		t.seq++
		reqID := fmt.Sprintf("%s-%06d", workflowID, t.seq)
		t.mu.Unlock()
		specs = append(specs, policy.TransferSpec{
			RequestID:        reqID,
			WorkflowID:       workflowID,
			ClusterID:        clusterID,
			SourceURL:        op.SourceURL,
			DestURL:          op.DestURL,
			SizeBytes:        op.SizeBytes,
			RequestedStreams: t.cfg.DefaultStreams,
			Priority:         priority,
		})
	}
	p.Sleep(t.cfg.PolicyCallSeconds)
	t.bump(func(s *Stats) { s.PolicyCalls++ })
	if t.metrics != nil {
		t.metrics.policyCalls.Inc()
	}
	adv, err := t.cfg.Advisor.AdviseTransfers(specs)
	if err != nil {
		return fmt.Errorf("transfer: policy advice: %w", err)
	}
	t.bump(func(s *Stats) { s.TransfersSuppressed += int64(len(adv.Removed)) })

	var completed, failedIDs []string
	var timings []policy.TransferTiming
	var lastGroup string
	first := true
	for _, tr := range adv.Transfers {
		if first || tr.GroupID != lastGroup {
			p.Sleep(t.cfg.SessionSetupSeconds)
			t.bump(func(s *Stats) { s.Sessions++ })
			if t.metrics != nil {
				t.metrics.sessions.Inc()
			}
			lastGroup, first = tr.GroupID, false
		}
		p.Sleep(t.cfg.TransferSetupSeconds)
		start := p.Now()
		if t.cfg.Tracer != nil {
			t.cfg.Tracer.Emit(obs.Event{
				Type:       obs.EventStarted,
				TransferID: tr.ID,
				RequestID:  tr.RequestID,
				WorkflowID: tr.WorkflowID,
				GroupID:    tr.GroupID,
				SourceHost: tr.SourceHost,
				DestHost:   tr.DestHost,
				SizeBytes:  tr.SizeBytes,
				Streams:    tr.Streams,
				Priority:   tr.Priority,
				SimSeconds: start,
			})
		}
		pair := policy.HostPair{Src: tr.SourceHost, Dst: tr.DestHost}
		if err := t.cfg.Fabric.Transfer(p, tr.SourceURL, tr.DestURL, tr.SizeBytes, tr.Streams); err != nil {
			failedIDs = append(failedIDs, tr.ID)
			t.bump(func(s *Stats) { s.TransfersFailed++ })
			t.observeTransfer(pair, tr.SizeBytes, 0, true)
			continue
		}
		completed = append(completed, tr.ID)
		timings = append(timings, policy.TransferTiming{TransferID: tr.ID, Seconds: p.Now() - start})
		t.bump(func(s *Stats) {
			s.TransfersExecuted++
			s.BytesMoved += tr.SizeBytes
		})
		t.observeTransfer(pair, tr.SizeBytes, p.Now()-start, false)
	}

	if len(completed) > 0 || len(failedIDs) > 0 {
		p.Sleep(t.cfg.PolicyCallSeconds)
		t.bump(func(s *Stats) { s.PolicyCalls++ })
		if t.metrics != nil {
			t.metrics.policyCalls.Inc()
		}
		if err := t.cfg.Advisor.ReportTransfers(policy.CompletionReport{
			TransferIDs: completed,
			FailedIDs:   failedIDs,
			Timings:     timings,
		}); err != nil {
			return fmt.Errorf("transfer: completion report: %w", err)
		}
	}
	if len(failedIDs) > 0 {
		return fmt.Errorf("%w: %d of %d", ErrTransfersFailed, len(failedIDs), len(adv.Transfers))
	}
	return nil
}

// ExecuteCleanups deletes the given staged-file URLs on behalf of a
// cleanup task, consulting the policy service first when configured (the
// service removes duplicates and files other workflows still use) and
// reporting successful deletions afterwards.
func (t *PTT) ExecuteCleanups(p *simnet.Proc, workflowID string, urls []string) error {
	if len(urls) == 0 {
		return nil
	}
	if t.cfg.Advisor == nil {
		for _, u := range urls {
			if err := t.cfg.Fabric.Delete(p, u); err != nil {
				return fmt.Errorf("transfer: delete %s: %w", u, err)
			}
			t.bump(func(s *Stats) { s.CleanupsExecuted++ })
		}
		return nil
	}
	specs := make([]policy.CleanupSpec, 0, len(urls))
	for _, u := range urls {
		t.mu.Lock()
		t.seq++
		reqID := fmt.Sprintf("%s-c%06d", workflowID, t.seq)
		t.mu.Unlock()
		specs = append(specs, policy.CleanupSpec{RequestID: reqID, WorkflowID: workflowID, FileURL: u})
	}
	p.Sleep(t.cfg.PolicyCallSeconds)
	t.bump(func(s *Stats) { s.PolicyCalls++ })
	if t.metrics != nil {
		t.metrics.policyCalls.Inc()
	}
	adv, err := t.cfg.Advisor.AdviseCleanups(specs)
	if err != nil {
		return fmt.Errorf("transfer: cleanup advice: %w", err)
	}
	t.bump(func(s *Stats) { s.CleanupsSuppressed += int64(len(adv.Removed)) })
	var done []string
	for _, c := range adv.Cleanups {
		if err := t.cfg.Fabric.Delete(p, c.FileURL); err != nil {
			return fmt.Errorf("transfer: delete %s: %w", c.FileURL, err)
		}
		done = append(done, c.ID)
		t.bump(func(s *Stats) { s.CleanupsExecuted++ })
	}
	if len(done) > 0 {
		p.Sleep(t.cfg.PolicyCallSeconds)
		t.bump(func(s *Stats) { s.PolicyCalls++ })
		if t.metrics != nil {
			t.metrics.policyCalls.Inc()
		}
		if err := t.cfg.Advisor.ReportCleanups(policy.CleanupReport{CleanupIDs: done}); err != nil {
			return fmt.Errorf("transfer: cleanup report: %w", err)
		}
	}
	return nil
}
