package transfer

import (
	"errors"
	"fmt"
	"testing"

	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/workflow"
)

func quietConfigFor(pair policy.HostPair) simnet.PipeConfig {
	cfg := simnet.WANConfig()
	cfg.FlowJitterSigma = 0
	cfg.CapacityJitterSigma = 0
	cfg.FailureHazard = 0
	return cfg
}

func op(i int, sizeMB float64) workflow.TransferOp {
	return workflow.TransferOp{
		FileName:  fmt.Sprintf("f%d", i),
		SourceURL: fmt.Sprintf("gsiftp://src.example.org/data/f%d", i),
		DestURL:   fmt.Sprintf("file://dst.example.org/scratch/f%d", i),
		SizeBytes: int64(sizeMB * (1 << 20)),
	}
}

func newPolicySvc(t *testing.T, threshold, defStreams int) *policy.Service {
	t.Helper()
	cfg := policy.DefaultConfig()
	cfg.DefaultThreshold = threshold
	cfg.DefaultStreams = defStreams
	svc, err := policy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestExecuteListNoPolicy(t *testing.T) {
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	ptt, err := New(Config{Fabric: fab, DefaultStreams: 10, SessionSetupSeconds: 2, TransferSetupSeconds: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var took float64
	env.Go("task", func(p *simnet.Proc) {
		start := p.Now()
		if err := ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(1, 7), op(2, 7)}, 0); err != nil {
			t.Errorf("ExecuteList: %v", err)
		}
		took = p.Now() - start
	})
	env.Run(0)
	// Same host pair: one session setup (2s) + 2 x (0.5s setup + 2s
	// transfer: 10 streams saturate the 3.5 MB/s link, 7 MB each).
	if want := 2 + 2*(0.5+2.0); absDiff(took, want) > 1e-6 {
		t.Fatalf("took = %v, want %v", took, want)
	}
	st := ptt.Stats()
	if st.TransfersExecuted != 2 || st.Sessions != 1 || st.PolicyCalls != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesMoved != 14<<20 {
		t.Fatalf("bytes = %d", st.BytesMoved)
	}
}

func TestExecuteListWithPolicyGroupsAndReports(t *testing.T) {
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	svc := newPolicySvc(t, 50, 4)
	ptt, err := New(Config{
		Advisor: svc, Fabric: fab, DefaultStreams: 4,
		SessionSetupSeconds: 2, TransferSetupSeconds: 0.5, PolicyCallSeconds: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two host pairs interleaved; policy groups them into two sessions.
	o2 := op(2, 1)
	o2.SourceURL = "http://other.example.org/f2"
	ops := []workflow.TransferOp{op(1, 1), o2, op(3, 1)}
	env.Go("task", func(p *simnet.Proc) {
		if err := ptt.ExecuteList(p, "wf1", "c1", ops, 0); err != nil {
			t.Errorf("ExecuteList: %v", err)
		}
	})
	env.Run(0)
	st := ptt.Stats()
	if st.Sessions != 2 {
		t.Fatalf("sessions = %d, want 2 (grouped)", st.Sessions)
	}
	if st.TransfersExecuted != 3 || st.PolicyCalls != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Completion was reported: no in-flight transfers remain.
	snap := svc.Snapshot()
	if snap.InFlight != 0 || snap.StagedResources != 3 {
		t.Fatalf("service state = %+v", snap)
	}
}

func TestDuplicateSuppressionAcrossTasks(t *testing.T) {
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	svc := newPolicySvc(t, 50, 4)
	ptt, err := New(Config{Advisor: svc, Fabric: fab, DefaultStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Two workflows stage the same file, sequentially.
	env.Go("wf1", func(p *simnet.Proc) {
		if err := ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(1, 5)}, 0); err != nil {
			t.Error(err)
		}
		if err := ptt.ExecuteList(p, "wf2", "c1", []workflow.TransferOp{op(1, 5)}, 0); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	st := ptt.Stats()
	if st.TransfersExecuted != 1 || st.TransfersSuppressed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailedTransferReturnsError(t *testing.T) {
	cfgFor := func(pair policy.HostPair) simnet.PipeConfig {
		c := quietConfigFor(pair)
		c.OverloadKnee = 1
		c.FailureHazard = 10 // guaranteed failure under overload
		return c
	}
	env := simnet.NewEnv(3)
	fab := NewSimFabric(env, cfgFor)
	svc := newPolicySvc(t, 50, 8)
	ptt, err := New(Config{Advisor: svc, Fabric: fab, DefaultStreams: 8})
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	env.Go("task", func(p *simnet.Proc) {
		gotErr = ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(1, 100)}, 0)
	})
	env.Run(0)
	if !errors.Is(gotErr, ErrTransfersFailed) {
		t.Fatalf("err = %v", gotErr)
	}
	// Failure was reported: streams released, file not marked staged, so
	// a retry is advised again (not suppressed).
	var retryErr error
	env2 := simnet.NewEnv(4)
	fab2 := NewSimFabric(env2, quietConfigFor)
	ptt2, _ := New(Config{Advisor: svc, Fabric: fab2, DefaultStreams: 8})
	env2.Go("retry", func(p *simnet.Proc) {
		retryErr = ptt2.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(1, 100)}, 0)
	})
	env2.Run(0)
	if retryErr != nil {
		t.Fatalf("retry err = %v", retryErr)
	}
	if ptt2.Stats().TransfersSuppressed != 0 {
		t.Fatal("retry was wrongly suppressed as duplicate")
	}
}

func TestExecuteCleanupsWithPolicy(t *testing.T) {
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	svc := newPolicySvc(t, 50, 4)
	ptt, err := New(Config{Advisor: svc, Fabric: fab, DefaultStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	env.Go("task", func(p *simnet.Proc) {
		// Stage a file as wf1, then as wf2 (suppressed but associated).
		if err := ptt.ExecuteList(p, "wf1", "c", []workflow.TransferOp{op(1, 1)}, 0); err != nil {
			t.Error(err)
		}
		if err := ptt.ExecuteList(p, "wf2", "c", []workflow.TransferOp{op(1, 1)}, 0); err != nil {
			t.Error(err)
		}
		// wf1's cleanup is suppressed (wf2 uses the file).
		if err := ptt.ExecuteCleanups(p, "wf1", []string{op(1, 1).DestURL}); err != nil {
			t.Error(err)
		}
		// wf2's cleanup proceeds.
		if err := ptt.ExecuteCleanups(p, "wf2", []string{op(1, 1).DestURL}); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	st := ptt.Stats()
	if st.CleanupsSuppressed != 1 || st.CleanupsExecuted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if snap := svc.Snapshot(); snap.TrackedFiles != 0 {
		t.Fatalf("resource leaked: %+v", snap)
	}
}

func TestEmptyListNoop(t *testing.T) {
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	ptt, err := New(Config{Fabric: fab})
	if err != nil {
		t.Fatal(err)
	}
	env.Go("task", func(p *simnet.Proc) {
		if err := ptt.ExecuteList(p, "wf", "c", nil, 0); err != nil {
			t.Error(err)
		}
		if err := ptt.ExecuteCleanups(p, "wf", nil); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	if st := ptt.Stats(); st.TransfersExecuted != 0 || st.PolicyCalls != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing fabric accepted")
	}
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, nil)
	if _, err := New(Config{Fabric: fab, SessionSetupSeconds: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
	ptt, err := New(Config{Fabric: fab})
	if err != nil {
		t.Fatal(err)
	}
	if ptt.cfg.DefaultStreams != 4 {
		t.Fatalf("default streams = %d", ptt.cfg.DefaultStreams)
	}
}

func TestSimFabricPipeReuse(t *testing.T) {
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	pair := policy.HostPair{Src: "a", Dst: "b"}
	p1 := fab.Pipe(pair)
	p2 := fab.Pipe(pair)
	if p1 != p2 {
		t.Fatal("pipe not reused for same pair")
	}
	other := fab.Pipe(policy.HostPair{Src: "a", Dst: "c"})
	if other == p1 {
		t.Fatal("distinct pairs share a pipe")
	}
	if len(fab.Pipes()) != 2 {
		t.Fatalf("pipes = %d", len(fab.Pipes()))
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
