package transfer

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/workflow"
)

func TestLocalFabricCopiesRealBytes(t *testing.T) {
	fab, err := NewLocalFabric(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const srcURL = "gsiftp://src.example.org/data/input.dat"
	const dstURL = "file://dst.example.org/scratch/input.dat"
	content := []byte("the quick brown fox")
	if err := fab.Put(srcURL, content); err != nil {
		t.Fatal(err)
	}

	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ptt, err := New(Config{Advisor: svc, Fabric: fab, DefaultStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	env := simnet.NewEnv(1)
	env.Go("stage", func(p *simnet.Proc) {
		err := ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{{
			FileName: "input.dat", SourceURL: srcURL, DestURL: dstURL,
			SizeBytes: int64(len(content)),
		}}, 0)
		if err != nil {
			t.Errorf("ExecuteList: %v", err)
		}
	})
	env.Run(0)

	dstPath, err := fab.Path(dstURL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dstPath)
	if err != nil {
		t.Fatalf("destination missing: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content = %q", got)
	}

	// Cleanup through the policy path deletes the real file.
	env2 := simnet.NewEnv(2)
	env2.Go("clean", func(p *simnet.Proc) {
		if err := ptt.ExecuteCleanups(p, "wf1", []string{dstURL}); err != nil {
			t.Errorf("ExecuteCleanups: %v", err)
		}
	})
	env2.Run(0)
	if fab.Exists(dstURL) {
		t.Fatal("file survived cleanup")
	}
}

func TestLocalFabricMissingSource(t *testing.T) {
	fab, err := NewLocalFabric(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env := simnet.NewEnv(1)
	var gotErr error
	env.Go("x", func(p *simnet.Proc) {
		gotErr = fab.Transfer(p, "http://a.example.org/missing", "file://b.example.org/x", 1, 1)
	})
	env.Run(0)
	if gotErr == nil {
		t.Fatal("missing source accepted")
	}
}

func TestLocalFabricPathSafety(t *testing.T) {
	fab, err := NewLocalFabric(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"http://../../../etc/passwd",
		"http:///../../x",
	} {
		if _, err := fab.Path(bad); err == nil {
			t.Errorf("traversal URL %q accepted", bad)
		}
	}
	// Distinct hosts map to distinct directories.
	p1, err := fab.Path("http://a.example.org/f")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := fab.Path("http://b.example.org/f")
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("hosts collide")
	}
	if !strings.Contains(p1, "a.example.org") {
		t.Fatalf("path %q missing host component", p1)
	}
}

func TestLocalFabricDeleteIdempotent(t *testing.T) {
	fab, err := NewLocalFabric(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env := simnet.NewEnv(1)
	env.Go("x", func(p *simnet.Proc) {
		if err := fab.Delete(p, "file://h.example.org/never-existed"); err != nil {
			t.Errorf("Delete of missing file: %v", err)
		}
	})
	env.Run(0)
}

func TestLocalFabricValidation(t *testing.T) {
	if _, err := NewLocalFabric(""); err == nil {
		t.Fatal("empty root accepted")
	}
}
