package transfer

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/workflow"
)

// flakyAdvisor wraps a policy service behind a toggleable outage, with an
// idempotency cache mirroring the REST stack's semantics: a keyed report is
// applied at most once per key, replays are served from the cache, and a
// "lost response" applies (and caches) the report on the server before the
// client sees a transport error.
type flakyAdvisor struct {
	svc *policy.Service

	mu             sync.Mutex
	down           bool
	busy           bool
	busyNextReport bool
	loseNextReport bool
	cache          map[string]*policy.ReportAck
	replays        int
	renewals       int
}

var errUnreachable = errors.New("policy service unreachable")

// busyError mimics the REST client's 429 surface: any error exposing
// HTTPStatus() int is recognized by the PTT's isBusy without this package
// importing policyhttp.
type busyError struct{}

func (busyError) Error() string   { return "policy service busy: shed by admission control" }
func (busyError) HTTPStatus() int { return 429 }

func (f *flakyAdvisor) gate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return errUnreachable
	}
	if f.busy {
		return busyError{}
	}
	return nil
}

func (f *flakyAdvisor) AdviseTransfers(specs []policy.TransferSpec) (*policy.TransferAdvice, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.svc.AdviseTransfers(specs)
}

func (f *flakyAdvisor) AdviseCleanups(specs []policy.CleanupSpec) (*policy.CleanupAdvice, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.svc.AdviseCleanups(specs)
}

func (f *flakyAdvisor) ReportTransfers(rep policy.CompletionReport) (*policy.ReportAck, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.svc.ReportTransfers(rep)
}

func (f *flakyAdvisor) ReportCleanups(rep policy.CleanupReport) (*policy.ReportAck, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.svc.ReportCleanups(rep)
}

func (f *flakyAdvisor) ReportTransfersKeyed(key string, rep policy.CompletionReport) (*policy.ReportAck, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.busyNextReport {
		f.busyNextReport = false
		f.mu.Unlock()
		return nil, busyError{}
	}
	f.mu.Unlock()
	f.mu.Lock()
	if ack, ok := f.cache[key]; ok {
		f.replays++
		f.mu.Unlock()
		return ack, nil
	}
	lose := f.loseNextReport
	f.loseNextReport = false
	f.mu.Unlock()
	ack, err := f.svc.ReportTransfers(rep)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.cache[key] = ack
	f.mu.Unlock()
	if lose {
		// The server applied and cached the report; the response was lost
		// on the way back.
		return nil, errUnreachable
	}
	return ack, nil
}

func (f *flakyAdvisor) ReportCleanupsKeyed(key string, rep policy.CleanupReport) (*policy.ReportAck, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	if ack, ok := f.cache[key]; ok {
		f.replays++
		f.mu.Unlock()
		return ack, nil
	}
	f.mu.Unlock()
	ack, err := f.svc.ReportCleanups(rep)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.cache[key] = ack
	f.mu.Unlock()
	return ack, nil
}

func (f *flakyAdvisor) RenewLease(workflowID string) (*policy.LeaseStatus, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.renewals++
	f.mu.Unlock()
	return f.svc.RenewLease(workflowID)
}

// TestDegradedModeFailOpenAndReconcile drives the PTT's circuit breaker
// through a full outage cycle: a lost report response opens the breaker and
// queues the report; a staging list during the outage still completes with
// fail-open defaults; a cleanup during the outage is deferred (fail safe);
// and after the cooldown the first successful call reconciles — re-acquires
// the lease and drains the backlog reusing the original idempotency key, so
// the report is applied exactly once (the replay is served from cache and
// the service counts zero unmatched IDs).
func TestDegradedModeFailOpenAndReconcile(t *testing.T) {
	cfg := policy.DefaultConfig()
	cfg.DefaultThreshold = 50
	cfg.DefaultStreams = 4
	cfg.LeaseTTL = 120
	svc, err := policy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc.Instrument(reg, nil)
	fa := &flakyAdvisor{svc: svc, cache: make(map[string]*policy.ReportAck)}

	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	ptt, err := New(Config{
		Advisor: fa, Fabric: fab, DefaultStreams: 4,
		PolicyCallSeconds: 0.1, Obs: reg,
		Breaker: BreakerConfig{FailureThreshold: 1, CooldownSeconds: 30, BacklogLimit: 8},
	})
	if err != nil {
		t.Fatal(err)
	}

	env.Go("workflow", func(p *simnet.Proc) {
		// Phase 1: the advise succeeds and the transfers run, but the
		// completion report's response is lost. The service has applied it;
		// the PTT cannot know, queues the report under its key, and the
		// breaker opens.
		fa.mu.Lock()
		fa.loseNextReport = true
		fa.mu.Unlock()
		if err := ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(1, 4), op(2, 4)}, 0); err != nil {
			t.Errorf("phase 1: %v", err)
		}

		// Phase 2: full outage. The workflow keeps moving data with local
		// defaults, and a cleanup is deferred rather than risked.
		fa.mu.Lock()
		fa.down = true
		fa.mu.Unlock()
		if err := ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(3, 4)}, 0); err != nil {
			t.Errorf("phase 2: %v", err)
		}
		if err := ptt.ExecuteCleanups(p, "wf1", []string{"file://dst.example.org/scratch/f1"}); err != nil {
			t.Errorf("phase 2 cleanup: %v", err)
		}

		// Phase 3: the service heals; once the cooldown elapses the next
		// call probes it, succeeds and reconciles.
		fa.mu.Lock()
		fa.down = false
		fa.mu.Unlock()
		p.Sleep(40)
		if err := ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(4, 4)}, 0); err != nil {
			t.Errorf("phase 3: %v", err)
		}
	})
	env.Run(0)

	st := ptt.Stats()
	if st.TransfersExecuted != 4 || st.TransfersFailed != 0 {
		t.Fatalf("executed %d / failed %d transfers, want 4 / 0", st.TransfersExecuted, st.TransfersFailed)
	}
	if st.BreakerOpens != 1 {
		t.Errorf("BreakerOpens = %d, want 1", st.BreakerOpens)
	}
	if st.DegradedTransfers != 1 {
		t.Errorf("DegradedTransfers = %d, want 1 (the outage-phase list)", st.DegradedTransfers)
	}
	if st.CleanupsDeferred != 1 {
		t.Errorf("CleanupsDeferred = %d, want 1", st.CleanupsDeferred)
	}
	if st.BacklogQueued != 1 || st.BacklogDrained != 1 || st.BacklogDropped != 0 {
		t.Errorf("backlog queued/drained/dropped = %d/%d/%d, want 1/1/0",
			st.BacklogQueued, st.BacklogDrained, st.BacklogDropped)
	}
	if st.Reconciles != 1 {
		t.Errorf("Reconciles = %d, want 1", st.Reconciles)
	}
	if st.LeaseRenewals != 1 {
		t.Errorf("LeaseRenewals = %d, want 1 (lease re-acquired at reconcile)", st.LeaseRenewals)
	}

	// Exactly-once application: the drain reused the original idempotency
	// key, so the advisor served it from cache instead of re-applying.
	fa.mu.Lock()
	replays := fa.replays
	fa.mu.Unlock()
	if replays != 1 {
		t.Errorf("idempotent replays = %d, want 1 (backlog drain reused the key)", replays)
	}

	// The service saw every advised transfer reported exactly once: nothing
	// in flight, no streams held, and no unmatched report IDs anywhere.
	d := svc.ExportState()
	if len(d.Transfers) != 0 {
		t.Errorf("%d transfers still in flight: %+v", len(d.Transfers), d.Transfers)
	}
	for _, l := range d.Ledgers {
		if l.Allocated != 0 {
			t.Errorf("%d streams still allocated on %s->%s", l.Allocated, l.Src, l.Dst)
		}
	}
	var scrape bytes.Buffer
	if err := reg.WritePrometheus(&scrape); err != nil {
		t.Fatal(err)
	}
	text := scrape.String()
	if strings.Contains(text, "policy_report_unmatched_total{") {
		t.Errorf("unmatched report IDs counted — a report was double-applied:\n%s", text)
	}
	for _, frag := range []string{
		"transfer_breaker_opens_total 1",
		"transfer_degraded_total 1",
		"transfer_backlog_queued_total 1",
		"transfer_backlog_drained_total 1",
		"transfer_reconciles_total 1",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("scrape missing %q", frag)
		}
	}

	// The lease re-acquired at reconcile is live on the service.
	leases := svc.Leases()
	if len(leases.Leases) != 1 || leases.Leases[0].WorkflowID != "wf1" {
		t.Errorf("leases = %+v, want wf1 only", leases.Leases)
	}
}

// TestBreakerDisabledFailsClosed pins the pre-existing contract: without a
// breaker configured, a policy outage fails the staging task instead of
// falling back to defaults.
func TestBreakerDisabledFailsClosed(t *testing.T) {
	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fa := &flakyAdvisor{svc: svc, down: true, cache: make(map[string]*policy.ReportAck)}
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	ptt, err := New(Config{Advisor: fa, Fabric: fab, DefaultStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	var got error
	env.Go("task", func(p *simnet.Proc) {
		got = ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(1, 1)}, 0)
	})
	env.Run(0)
	if !errors.Is(got, errUnreachable) {
		t.Fatalf("ExecuteList = %v, want the advisor's outage error", got)
	}
	if st := ptt.Stats(); st.DegradedTransfers != 0 || st.TransfersExecuted != 0 {
		t.Fatalf("stats = %+v, want no execution without policy", st)
	}
}

// TestBusyDoesNotTripBreaker pins the 429 contract: an admission shed is
// "healthy but busy", so the PTT degrades the shed call (or queues the
// shed report) exactly like an outage, but never counts it toward the
// breaker threshold. With FailureThreshold 1 a single miscounted shed
// would open the breaker, which the final phase would expose by needing
// a cooldown before the next policy call.
func TestBusyDoesNotTripBreaker(t *testing.T) {
	cfg := policy.DefaultConfig()
	cfg.LeaseTTL = 120
	svc, err := policy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fa := &flakyAdvisor{svc: svc, cache: make(map[string]*policy.ReportAck)}
	env := simnet.NewEnv(1)
	fab := NewSimFabric(env, quietConfigFor)
	ptt, err := New(Config{
		Advisor: fa, Fabric: fab, DefaultStreams: 4,
		PolicyCallSeconds: 0.1,
		Breaker:           BreakerConfig{FailureThreshold: 1, CooldownSeconds: 1000, BacklogLimit: 8},
	})
	if err != nil {
		t.Fatal(err)
	}

	env.Go("workflow", func(p *simnet.Proc) {
		// Phase 1: the advise call is shed. The batch degrades to local
		// defaults; the breaker must stay closed.
		fa.mu.Lock()
		fa.busy = true
		fa.mu.Unlock()
		if err := ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(1, 4)}, 0); err != nil {
			t.Errorf("phase 1: %v", err)
		}
		// A shed cleanup advise defers the deletions (fail safe).
		if err := ptt.ExecuteCleanups(p, "wf1", []string{"file://dst.example.org/scratch/f1"}); err != nil {
			t.Errorf("phase 1 cleanup: %v", err)
		}

		// Phase 2: advise admitted, but the completion report is shed. The
		// report queues for reconciliation; breaker still closed.
		fa.mu.Lock()
		fa.busy = false
		fa.busyNextReport = true
		fa.mu.Unlock()
		if err := ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(2, 4)}, 0); err != nil {
			t.Errorf("phase 2: %v", err)
		}

		// Phase 3: immediately — no cooldown sleep — the next call must go
		// straight through (a tripped breaker would skip it) and drain the
		// queued report.
		if err := ptt.ExecuteList(p, "wf1", "c1", []workflow.TransferOp{op(3, 4)}, 0); err != nil {
			t.Errorf("phase 3: %v", err)
		}
	})
	env.Run(0)

	st := ptt.Stats()
	if st.BreakerOpens != 0 {
		t.Errorf("BreakerOpens = %d, want 0 (429 must not trip the breaker)", st.BreakerOpens)
	}
	if st.PolicyBusy != 3 {
		t.Errorf("PolicyBusy = %d, want 3 (shed advise, shed cleanup advise, shed report)", st.PolicyBusy)
	}
	if st.DegradedTransfers != 1 {
		t.Errorf("DegradedTransfers = %d, want 1 (the shed advise batch)", st.DegradedTransfers)
	}
	if st.CleanupsDeferred != 1 {
		t.Errorf("CleanupsDeferred = %d, want 1", st.CleanupsDeferred)
	}
	if st.BacklogQueued != 1 || st.BacklogDrained != 1 {
		t.Errorf("backlog queued/drained = %d/%d, want 1/1", st.BacklogQueued, st.BacklogDrained)
	}
	if st.TransfersExecuted != 3 {
		t.Errorf("TransfersExecuted = %d, want 3", st.TransfersExecuted)
	}
}
