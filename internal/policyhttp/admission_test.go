package policyhttp

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"policyflow/internal/admit"
	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// newAdmittedServer builds a test server whose mutations flow through a
// real admission controller; the controller is returned so tests can arm
// deterministic sheds or occupy its queues.
func newAdmittedServer(t *testing.T, cfg admit.Config) (*httptest.Server, *policy.Service, *admit.Controller) {
	t.Helper()
	pcfg := policy.DefaultConfig()
	pcfg.DefaultThreshold = 50
	pcfg.DefaultStreams = 4
	svc, err := policy.New(pcfg)
	if err != nil {
		t.Fatalf("policy.New: %v", err)
	}
	srv := NewServer(svc, nil)
	ctl := NewAdmissionController(svc, cfg)
	srv.SetAdmission(ctl)
	t.Cleanup(ctl.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, svc, ctl
}

// noSleep disables real backoff sleeps in end-to-end retry tests.
func noSleep() ClientOption { return WithBackoffSleep(func(time.Duration) {}) }

// TestShedReturns429BeforeAnySideEffect: an armed shed is rejected with
// 429 + Retry-After, and Policy Memory shows the mutation never ran.
func TestShedReturns429BeforeAnySideEffect(t *testing.T) {
	ts, svc, ctl := newAdmittedServer(t, admit.Config{MaxQueue: 8})
	c := NewClient(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 1}))

	ctl.FailNext(1)
	_, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf")})
	if !IsBusy(err) {
		t.Fatalf("err = %v, want busy (429)", err)
	}
	var se *ServerError
	if !errors.As(err, &se) || se.RetryAfter < time.Second {
		t.Fatalf("err = %v, want Retry-After >= 1s attached", err)
	}
	// 429 is a 4xx on the wire, so IsRejection also matches — callers that
	// care about the difference must check IsBusy first (as the transfer
	// tool does). Pin that ordering contract.
	if !IsRejection(err) {
		t.Fatal("429 stopped matching IsRejection; revisit callers that rely on IsBusy-first ordering")
	}
	if st := svc.ExportState(); len(st.Transfers) != 0 {
		t.Fatalf("shed request left %d transfers resident", len(st.Transfers))
	}
	// With nothing armed the same call is admitted.
	adv, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf")})
	if err != nil || len(adv.Transfers) != 1 {
		t.Fatalf("post-shed call: adv=%v err=%v", adv, err)
	}
}

// TestShedRetryIsTransparent: with the default retry budget the client
// rides through a shed on its own — callers never see the 429.
func TestShedRetryIsTransparent(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewClientMetrics(reg)
	ts, _, ctl := newAdmittedServer(t, admit.Config{MaxQueue: 8})
	c := NewClient(ts.URL, noSleep(), WithMetrics(m))

	ctl.FailNext(1)
	adv, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf")})
	if err != nil || len(adv.Transfers) != 1 {
		t.Fatalf("adv=%v err=%v", adv, err)
	}
	if got := m.Faults.With("/v1/transfers", "http_429").Value(); got != 1 {
		t.Errorf("http_429 fault counter = %v, want 1", got)
	}
	if got := m.Retries.With("/v1/transfers").Value(); got != 1 {
		t.Errorf("retry counter = %v, want 1", got)
	}
}

// TestShedDoesNotPolluteIdempotencyCache is the core at-most-once
// interaction: a 429 under an Idempotency-Key must not be cached, or the
// client's post-backoff retry under the same key would replay the
// rejection forever instead of executing.
func TestShedDoesNotPolluteIdempotencyCache(t *testing.T) {
	ts, svc, ctl := newAdmittedServer(t, admit.Config{MaxQueue: 8})
	body := `{"transfers":[{"requestId":"r1","workflowId":"wf","sourceUrl":"gsiftp://s.example.org/f","destUrl":"file://d.example.org/f"}]}`
	post := func() *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/transfers", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(IdempotencyKeyHeader, "shed-key-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	ctl.FailNext(1)
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("armed request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carried no Retry-After header")
	}

	// Same key, nothing armed: the request must EXECUTE, not replay the
	// cached 429.
	resp = post()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry under same key status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get(IdempotencyReplayedHeader) != "" {
		t.Error("retry under same key was served as an idempotent replay")
	}
	if st := svc.ExportState(); len(st.Transfers) != 1 {
		t.Fatalf("resident transfers = %d, want exactly 1", len(st.Transfers))
	}

	// And a third request under the key now replays the recorded success:
	// the cache only refused the not-applied response.
	resp = post()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(IdempotencyReplayedHeader) != "true" {
		t.Fatalf("third request: status=%d replayed=%q, want cached replay",
			resp.StatusCode, resp.Header.Get(IdempotencyReplayedHeader))
	}
	if st := svc.ExportState(); len(st.Transfers) != 1 {
		t.Fatalf("replay re-applied the mutation: %d transfers", len(st.Transfers))
	}
}

// TestWriteShedStatusMapping pins the admission-error -> wire contract.
func TestWriteShedStatusMapping(t *testing.T) {
	svc, _ := policy.New(policy.DefaultConfig())
	s := NewServer(svc, nil)
	ctl := NewAdmissionController(svc, admit.Config{MaxQueue: 8})
	defer ctl.Close()
	s.SetAdmission(ctl)

	cases := []struct {
		err        error
		status     int
		retryAfter bool
	}{
		{admit.ErrQueueFull, http.StatusTooManyRequests, true},
		{admit.ErrWaitExceeded, http.StatusTooManyRequests, true},
		{admit.ErrDraining, http.StatusServiceUnavailable, true},
		{admit.ErrCanceled, http.StatusRequestTimeout, false},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		s.writeShed(w, formatJSON, tc.err)
		if w.Code != tc.status {
			t.Errorf("%v -> status %d, want %d", tc.err, w.Code, tc.status)
		}
		if got := w.Header().Get("Retry-After") != ""; got != tc.retryAfter {
			t.Errorf("%v -> Retry-After present=%v, want %v", tc.err, got, tc.retryAfter)
		}
		if !strings.Contains(w.Body.String(), "admit") {
			t.Errorf("%v -> body %q does not carry the admission error", tc.err, w.Body.String())
		}
	}
}

// TestReadShedding: read-only endpoints sit behind the read-concurrency
// gate and shed with 429 when the slots stay occupied past the wait
// budget — but never touch the mutation queue.
func TestReadShedding(t *testing.T) {
	ts, _, ctl := newAdmittedServer(t, admit.Config{
		MaxQueue: 8, MaxWait: 20 * time.Millisecond, ReadConcurrency: 1,
	})
	c := NewClient(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 1}))

	release, err := ctl.AcquireRead(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.State(); !IsBusy(err) {
		t.Fatalf("read with occupied slot: err = %v, want busy", err)
	}
	// Mutations are unaffected: the classes have independent queues.
	if _, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf")}); err != nil {
		t.Fatalf("mutation while reads occupied: %v", err)
	}
	release()
	if _, err := c.State(); err != nil {
		t.Fatalf("read after release: %v", err)
	}
}

// TestDrainingReturns503: once the controller drains, new mutations get
// 503 + Retry-After — the load balancer signal to go elsewhere.
func TestDrainingReturns503(t *testing.T) {
	ts, _, ctl := newAdmittedServer(t, admit.Config{MaxQueue: 8})
	c := NewClient(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 1}))
	if err := ctl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf")})
	var se *ServerError
	if !errors.As(err, &se) || se.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("draining 503 carried no Retry-After: %v", err)
	}
}

// TestAbandonedRequestCountsClientGone: a client that disconnects while
// queued is abandoned at dequeue — the mutation never executes and the
// shed counter records reason="client_gone".
func TestAbandonedRequestCountsClientGone(t *testing.T) {
	pcfg := policy.DefaultConfig()
	svc, err := policy.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := NewServerWith(svc, nil, reg, nil)

	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	run := ServiceRunner(svc)
	ctl := admit.New(admit.Config{MaxQueue: 8, MaxWait: 30 * time.Second, BatchMax: 4},
		func(batch []any) {
			entered <- struct{}{}
			<-gate
			run(batch)
		})
	ctl.Instrument(reg)
	srv.SetAdmission(ctl)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// Registered after ts.Close so it runs first: a parked handler must be
	// released before the test server waits for connections to finish.
	defer func() {
		close(gate)
		ctl.Close()
	}()

	// First request occupies the dispatcher.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := NewClient(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 1}))
		c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf")})
	}()
	<-entered

	// Second request queues behind it, then its client walks away.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer wg.Done()
		body := strings.NewReader(`{"transfers":[{"requestId":"r2","workflowId":"wf","sourceUrl":"gsiftp://s.example.org/f2","destUrl":"file://d.example.org/f2"}]}`)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/transfers", body)
		req.Header.Set("Content-Type", "application/json")
		http.DefaultClient.Do(req) // fails with context.Canceled; that IS the scenario
	}()
	for ctl.Depth(admit.ClassMutate) < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()

	// The waiter records the client_gone shed the moment it abandons its
	// queued task; wait for that BEFORE releasing the dispatcher, or the
	// dispatcher could claim the still-pending task first and execute it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(buf.String(), `policy_admit_shed_total{class="mutate",reason="client_gone"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client_gone shed not recorded; scrape:\n%s", buf.String())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Release the dispatcher; the abandoned task is discarded at dequeue
	// without a runner call, so only the first batch needs the gate.
	gate <- struct{}{}
	wg.Wait()
	// The abandoned mutation never executed.
	if st := svc.ExportState(); len(st.Transfers) != 1 {
		t.Fatalf("resident transfers = %d, want only the first request's", len(st.Transfers))
	}
}
