package policyhttp

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"

	"policyflow/internal/durable"
	"policyflow/internal/policy"
)

// DurableStore is the slice of *durable.PolicyStore the HTTP layer needs:
// on-demand snapshots and the snapshot+tail archive a replica resync
// ships instead of a full live dump.
type DurableStore interface {
	SnapshotNow() (durable.SnapshotInfo, error)
	Archive() (*durable.Archive, error)
}

// SetDurable attaches a durable store, enabling POST /v1/state/snapshot
// and GET /v1/state/archive (both answer 501 Not Implemented otherwise).
// Call it before serving requests.
func (s *Server) SetDurable(ds DurableStore) { s.durable = ds }

// errNotDurable is the 501 body for servers running purely in memory.
var errNotDurable = errors.New("service is running without a durable store")

// handleSnapshot forces a snapshot of Policy Memory and compacts the WAL
// behind it, returning the snapshot's log position, size and duration.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	if s.durable == nil {
		s.writeError(w, resf, http.StatusNotImplemented, errNotDurable)
		return
	}
	info, err := s.durable.SnapshotNow()
	if err != nil {
		s.writeError(w, resf, http.StatusInternalServerError, err)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &info)
}

// handleArchive serves the latest snapshot plus the WAL tail after it.
// The archive embeds raw JSON state and log records, so unlike the rest
// of the interface it is JSON-only.
func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	if s.durable == nil {
		s.writeError(w, formatJSON, http.StatusNotImplemented, errNotDurable)
		return
	}
	arch, err := s.durable.Archive()
	if err != nil {
		s.writeError(w, formatJSON, http.StatusInternalServerError, err)
		return
	}
	s.writeResponse(w, formatJSON, http.StatusOK, arch)
}

// SnapshotNow asks the remote service to snapshot its Policy Memory now.
func (c *Client) SnapshotNow() (*durable.SnapshotInfo, error) {
	var info durable.SnapshotInfo
	if err := c.do(http.MethodPost, "/v1/state/snapshot", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Archive fetches the remote snapshot+tail bundle. The endpoint is
// JSON-only, so this bypasses the client's XML preference.
func (c *Client) Archive() (*durable.Archive, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/state/archive", nil)
	if err != nil {
		return nil, fmt.Errorf("policyhttp: build request: %w", err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("policyhttp: GET /v1/state/archive: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, c.decodeError(resp)
	}
	var arch durable.Archive
	if err := json.NewDecoder(resp.Body).Decode(&arch); err != nil {
		return nil, fmt.Errorf("policyhttp: decode archive: %w", err)
	}
	return &arch, nil
}

// replayArchive reconstructs a replica's Policy Memory from an archive:
// the snapshot is restored wholesale, then each tail record is replayed
// through the replica's public endpoints in log order. The service being
// deterministic, the replica converges on the donor's exact state.
// Application-level replay errors are ignored — the donor logged the
// operation even if it was rejected, and a rejection replays as a
// rejection.
func replayArchive(target *Client, arch *durable.Archive) error {
	// Replay is replication-plane traffic: mark it so the epoch fence lets
	// it into a standby (a fenced replica must still be resyncable).
	target.syncReplay.Store(true)
	defer target.syncReplay.Store(false)
	dump := &policy.StateDump{}
	if arch.Snapshot != nil {
		if err := json.Unmarshal(arch.Snapshot, dump); err != nil {
			return fmt.Errorf("policyhttp: decode archive snapshot: %w", err)
		}
	}
	if err := target.Restore(dump); err != nil {
		return err
	}
	for _, rec := range arch.Tail {
		if err := replayRecord(target, rec); err != nil {
			return fmt.Errorf("policyhttp: replay record %d (%s): %w", rec.Seq, rec.Op, err)
		}
	}
	return nil
}

// replayRecord applies one logged mutation to target. Decode failures are
// errors; application errors are deterministic rejections and ignored.
func replayRecord(target *Client, rec durable.Record) error {
	switch rec.Op {
	case policy.OpAdviseTransfers:
		var specs []policy.TransferSpec
		if err := json.Unmarshal(rec.Data, &specs); err != nil {
			return err
		}
		_, err := target.AdviseTransfers(specs)
		return ignoreApplication(err)
	case policy.OpReportTransfers:
		var report policy.CompletionReport
		if err := json.Unmarshal(rec.Data, &report); err != nil {
			return err
		}
		_, err := target.ReportTransfers(report)
		return ignoreApplication(err)
	case policy.OpAdviseCleanups:
		var specs []policy.CleanupSpec
		if err := json.Unmarshal(rec.Data, &specs); err != nil {
			return err
		}
		_, err := target.AdviseCleanups(specs)
		return ignoreApplication(err)
	case policy.OpReportCleanups:
		var report policy.CleanupReport
		if err := json.Unmarshal(rec.Data, &report); err != nil {
			return err
		}
		_, err := target.ReportCleanups(report)
		return ignoreApplication(err)
	case policy.OpSetThreshold:
		var op policy.ThresholdOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return err
		}
		return ignoreApplication(target.SetThreshold(op.SourceHost, op.DestHost, op.Max))
	case policy.OpImportState:
		var dump policy.StateDump
		if err := json.Unmarshal(rec.Data, &dump); err != nil {
			return err
		}
		return target.Restore(&dump)
	case policy.OpRenewLease:
		var op policy.LeaseOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return err
		}
		_, err := target.RenewLease(op.WorkflowID)
		return ignoreApplication(err)
	case policy.OpAdvanceClock:
		var op policy.ClockOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return err
		}
		_, err := target.AdvanceClock(op.Now)
		return ignoreApplication(err)
	case policy.OpActivateBundle:
		var op policy.BundleOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return err
		}
		if op.Bundle == nil {
			return fmt.Errorf("activation record carries no bundle")
		}
		// Re-marshal and ship the full document: the bundle checksum is
		// defined over parsed canonical values, not raw bytes, so the
		// round-trip re-derives the same version identity.
		doc, err := json.Marshal(op.Bundle)
		if err != nil {
			return err
		}
		_, aerr := target.ActivateBundleDoc(doc)
		return ignoreApplication(aerr)
	case policy.OpBumpEpoch:
		var op policy.EpochOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return err
		}
		_, aerr := target.BumpEpoch(op.Epoch)
		return ignoreApplication(aerr)
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

// ignoreApplication drops server-side rejections (the request landed and
// was refused — a deterministic outcome the donor's log also recorded)
// but keeps transport failures, which mean the replay never reached the
// replica, and not-applied responses (shed 429, draining 503, abandoned
// 408), which promise the mutation did NOT execute: swallowing one of
// those would silently lose a logged record and diverge the replica.
func ignoreApplication(err error) error {
	if err == nil {
		return nil
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return err
	}
	var se *ServerError
	if errors.As(err, &se) && notApplied(se.StatusCode) {
		return err
	}
	return nil
}
