package policyhttp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// ReplicatedClient realizes the paper's future-work reliability strategy
// ("strategies for distribution and replication of policy logic to
// improve reliability") with client-sequenced state-machine replication:
// every mutating call is applied to all reachable replicas in the same
// order, so — the policy service being deterministic — their Policy
// Memories stay identical (including assigned transfer IDs). Advice is
// taken from the first replica that answers; replicas that fail are
// marked down and skipped until Resync brings them back using a state
// dump from a healthy peer.
//
// ReplicatedClient implements the same Advisor interface the transfer
// tool uses, so a Pegasus-side deployment needs no changes to gain
// failover.
type ReplicatedClient struct {
	mu       sync.Mutex
	replicas []*Client
	down     []bool

	// leader is the replica index that last accepted a mutation (-1 =
	// unknown). When replicas run the epoch fence (primary/standby roles),
	// a 412 from a standby is not a failure: the replica is skipped
	// without being marked down, and the leader hint re-routes the next
	// call straight to whichever replica last acted as primary.
	leader int
	// epoch is the highest fencing epoch observed across all replicas;
	// it is pushed into every per-replica client before each call so a
	// deposed primary learns it has been passed and self-fences.
	epoch uint64
	// lastAckEpoch/lastAckReplica record which epoch (and which replica)
	// acknowledged the most recent successful mutation — the faultsim
	// harness asserts acks only ever come from the expected primary.
	lastAckEpoch   uint64
	lastAckReplica int
}

// ErrNoReplicas is returned when every replica is down.
var ErrNoReplicas = errors.New("policyhttp: no healthy replicas")

// ErrNoPrimary is returned when at least one replica was reachable but
// every reachable replica refused the mutation with the epoch fence (412):
// the cluster is mid-failover with no server currently willing to accept
// writes. The mutation was applied nowhere — retry once a promotion lands.
var ErrNoPrimary = errors.New("policyhttp: no replica is primary")

// NewReplicatedClient wraps one client per replica endpoint. At least one
// is required.
func NewReplicatedClient(replicas ...*Client) (*ReplicatedClient, error) {
	if len(replicas) == 0 {
		return nil, errors.New("policyhttp: replicated client needs at least one replica")
	}
	return &ReplicatedClient{
		replicas: replicas, down: make([]bool, len(replicas)),
		leader: -1, lastAckReplica: -1,
	}, nil
}

// Leader returns the index of the replica that last accepted a mutation,
// -1 when unknown.
func (rc *ReplicatedClient) Leader() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.leader
}

// Epoch returns the highest fencing epoch observed across all replicas.
func (rc *ReplicatedClient) Epoch() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.epoch
}

// LastAckEpoch returns the epoch stamped on the most recent successful
// mutation's response (0 before any, or when replicas run unfenced).
func (rc *ReplicatedClient) LastAckEpoch() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.lastAckEpoch
}

// LastAckReplica returns the replica index that acknowledged the most
// recent successful mutation, -1 before any.
func (rc *ReplicatedClient) LastAckReplica() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.lastAckReplica
}

// Healthy returns the indexes of replicas currently considered up.
func (rc *ReplicatedClient) Healthy() []int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var up []int
	for i, d := range rc.down {
		if !d {
			up = append(up, i)
		}
	}
	return up
}

// apply runs op against every healthy replica in index order. The first
// successful result wins; replicas that fail (transport errors, 5xx) are
// marked down. A deterministic rejection (4xx) from the first replica
// tried is returned as-is without downing anything: the replica is
// healthy, it refused the request, and — the service being deterministic
// — every peer would refuse it identically, so no peer sees it and no
// state diverges. A rejection AFTER another replica accepted the same
// call means the rejecting replica has diverged, and it is marked down.
//
// Fenced replicas (primary/standby roles) re-route instead of failing: a
// 412 marks the replica as a healthy standby — skipped, never downed —
// and the leader hint tries the last-known primary first, so after one
// fence response the client sticks to the new primary. The re-routed
// attempt reuses the same op closure, hence the same idempotency key: a
// mutation acked by exactly one epoch is never double-applied even when
// the fence arrives after a lost response.
//
// One root span context is minted per logical operation and shared by
// every replica attempt (and every retry within each attempt), so a
// fault episode spanning failover is reconstructable under one trace ID.
func apply[T any](rc *ReplicatedClient, op func(context.Context, *Client) (T, error)) (T, error) {
	var zero T
	sc := obs.NewSpanContext()
	rc.mu.Lock()
	defer rc.mu.Unlock()
	// Last-known leader first, the rest in index order.
	order := make([]int, 0, len(rc.replicas))
	if rc.leader >= 0 && rc.leader < len(rc.replicas) {
		order = append(order, rc.leader)
	}
	for i := range rc.replicas {
		if i != rc.leader {
			order = append(order, i)
		}
	}
	got := false
	sawFenced := false
	var result T
	var lastErr error
	for _, i := range order {
		if rc.down[i] {
			continue
		}
		c := rc.replicas[i]
		// Spread the newest epoch before the call: the request header is
		// what deposes a stale primary.
		c.RaiseEpoch(rc.epoch)
		// Each replica keeps its own cancellation context; only the trace
		// is shared.
		r, err := op(obs.ContextWithSpan(c.ctx, sc), c)
		if e := c.Epoch(); e > rc.epoch {
			rc.epoch = e
		}
		if err != nil {
			if IsFenced(err) {
				sawFenced = true
				if rc.leader == i {
					rc.leader = -1
				}
				continue
			}
			if IsRejection(err) && !got {
				return zero, err
			}
			rc.down[i] = true
			lastErr = err
			continue
		}
		if !got {
			result, got = r, true
			rc.leader = i
			rc.lastAckEpoch = c.Epoch()
			rc.lastAckReplica = i
		}
	}
	if !got {
		if sawFenced {
			if lastErr != nil {
				return zero, fmt.Errorf("%w: last error: %v", ErrNoPrimary, lastErr)
			}
			return zero, ErrNoPrimary
		}
		if lastErr != nil {
			return zero, fmt.Errorf("%w: last error: %v", ErrNoReplicas, lastErr)
		}
		return zero, ErrNoReplicas
	}
	return result, nil
}

// AdviseTransfers implements the Advisor interface with replication.
func (rc *ReplicatedClient) AdviseTransfers(specs []policy.TransferSpec) (*policy.TransferAdvice, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.TransferAdvice, error) {
		return c.AdviseTransfersCtx(ctx, specs)
	})
}

// ReportTransfers implements the Advisor interface with replication.
func (rc *ReplicatedClient) ReportTransfers(report policy.CompletionReport) (*policy.ReportAck, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.ReportAck, error) {
		return c.ReportTransfersCtx(ctx, report)
	})
}

// AdviseCleanups implements the Advisor interface with replication.
func (rc *ReplicatedClient) AdviseCleanups(specs []policy.CleanupSpec) (*policy.CleanupAdvice, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.CleanupAdvice, error) {
		return c.AdviseCleanupsCtx(ctx, specs)
	})
}

// ReportCleanups implements the Advisor interface with replication.
func (rc *ReplicatedClient) ReportCleanups(report policy.CleanupReport) (*policy.ReportAck, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.ReportAck, error) {
		return c.ReportCleanupsCtx(ctx, report)
	})
}

// RenewLease renews the workflow's lease on every healthy replica.
func (rc *ReplicatedClient) RenewLease(workflowID string) (*policy.LeaseStatus, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.LeaseStatus, error) {
		return c.renewLeaseCtx(ctx, workflowID)
	})
}

// AdvanceClock advances the logical clock on every healthy replica; being
// a logged deterministic mutation, each replica expires the same leases.
func (rc *ReplicatedClient) AdvanceClock(now float64) (*policy.ClockAdvance, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.ClockAdvance, error) {
		return c.advanceClockCtx(ctx, now)
	})
}

// Leases lists active leases from the first healthy replica.
func (rc *ReplicatedClient) Leases() (*policy.LeaseList, error) {
	return apply(rc, func(_ context.Context, c *Client) (*policy.LeaseList, error) { return c.Leases() })
}

// SetThreshold applies a threshold change to every healthy replica.
func (rc *ReplicatedClient) SetThreshold(src, dst string, max int) error {
	_, err := apply(rc, func(ctx context.Context, c *Client) (struct{}, error) {
		return struct{}{}, c.setThresholdCtx(ctx, src, dst, max)
	})
	return err
}

// ActivateBundleDoc activates a policy bundle document on every healthy
// replica through the WAL-logged activation path. Carrying the full
// document (rather than a staged version name) keeps the call
// self-contained: a replica that crashed after the push still applies it.
func (rc *ReplicatedClient) ActivateBundleDoc(doc []byte) (*policy.BundleInfo, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.BundleInfo, error) {
		return c.ActivateBundleDocCtx(ctx, doc)
	})
}

// RollbackBundle re-activates the previously active bundle on every
// healthy replica. The previous-bundle pointer is WAL-replayed state, so
// identical replicas roll back to the identical version.
func (rc *ReplicatedClient) RollbackBundle() (*policy.BundleInfo, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.BundleInfo, error) {
		return c.RollbackBundleCtx(ctx)
	})
}

// State reads the externally visible state from the first healthy replica.
func (rc *ReplicatedClient) State() (*policy.Snapshot, error) {
	return apply(rc, func(_ context.Context, c *Client) (*policy.Snapshot, error) { return c.State() })
}

// Resync restores replica i from a healthy peer and marks it up again.
// Durable peers ship their snapshot + WAL tail archive, so the donor
// serves a compact, already-persisted bundle instead of exporting its
// full live Policy Memory; peers without a durable store (the archive
// endpoint answers 501) fall back to the live state dump.
func (rc *ReplicatedClient) Resync(i int) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if i < 0 || i >= len(rc.replicas) {
		return fmt.Errorf("policyhttp: replica index %d out of range", i)
	}
	var lastErr error
	for j := range rc.replicas {
		if j == i || rc.down[j] {
			continue
		}
		err, donorSide := rc.resyncFromLocked(i, j)
		if err == nil {
			return nil
		}
		if !donorSide {
			return err
		}
		rc.down[j] = true
		lastErr = err
	}
	if lastErr != nil {
		return fmt.Errorf("%w: last error: %v", ErrNoReplicas, lastErr)
	}
	return ErrNoReplicas
}

// ResyncFrom restores replica i from the specific donor replica and marks
// i up again. Under failover, use it to pull from the current primary:
// Resync's first-healthy-donor scan could pick a standby whose state lags
// the primary by up to a sync interval.
func (rc *ReplicatedClient) ResyncFrom(i, donor int) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if i < 0 || i >= len(rc.replicas) {
		return fmt.Errorf("policyhttp: replica index %d out of range", i)
	}
	if donor < 0 || donor >= len(rc.replicas) || donor == i {
		return fmt.Errorf("policyhttp: donor index %d invalid for replica %d", donor, i)
	}
	err, _ := rc.resyncFromLocked(i, donor)
	return err
}

// resyncFromLocked restores replica i from donor j: the donor's durable
// snapshot+tail archive when it has one, its full live dump otherwise.
// donorSide=true means the donor could not supply state (the caller may
// try another donor); false means the target failed to accept it.
func (rc *ReplicatedClient) resyncFromLocked(i, j int) (err error, donorSide bool) {
	target := rc.replicas[i]
	c := rc.replicas[j]
	if arch, aerr := c.Archive(); aerr == nil {
		if rerr := replayArchive(target, arch); rerr != nil {
			return fmt.Errorf("policyhttp: restore replica %d: %w", i, rerr), false
		}
		rc.down[i] = false
		return nil, false
	}
	dump, derr := c.Dump()
	if derr != nil {
		return derr, true
	}
	if rerr := target.Restore(dump); rerr != nil {
		return fmt.Errorf("policyhttp: restore replica %d: %w", i, rerr), false
	}
	rc.down[i] = false
	return nil, false
}
