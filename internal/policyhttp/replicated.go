package policyhttp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// ReplicatedClient realizes the paper's future-work reliability strategy
// ("strategies for distribution and replication of policy logic to
// improve reliability") with client-sequenced state-machine replication:
// every mutating call is applied to all reachable replicas in the same
// order, so — the policy service being deterministic — their Policy
// Memories stay identical (including assigned transfer IDs). Advice is
// taken from the first replica that answers; replicas that fail are
// marked down and skipped until Resync brings them back using a state
// dump from a healthy peer.
//
// ReplicatedClient implements the same Advisor interface the transfer
// tool uses, so a Pegasus-side deployment needs no changes to gain
// failover.
type ReplicatedClient struct {
	mu       sync.Mutex
	replicas []*Client
	down     []bool
}

// ErrNoReplicas is returned when every replica is down.
var ErrNoReplicas = errors.New("policyhttp: no healthy replicas")

// NewReplicatedClient wraps one client per replica endpoint. At least one
// is required.
func NewReplicatedClient(replicas ...*Client) (*ReplicatedClient, error) {
	if len(replicas) == 0 {
		return nil, errors.New("policyhttp: replicated client needs at least one replica")
	}
	return &ReplicatedClient{replicas: replicas, down: make([]bool, len(replicas))}, nil
}

// Healthy returns the indexes of replicas currently considered up.
func (rc *ReplicatedClient) Healthy() []int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var up []int
	for i, d := range rc.down {
		if !d {
			up = append(up, i)
		}
	}
	return up
}

// apply runs op against every healthy replica in index order. The first
// successful result wins; replicas that fail (transport errors, 5xx) are
// marked down. A deterministic rejection (4xx) from the first replica
// tried is returned as-is without downing anything: the replica is
// healthy, it refused the request, and — the service being deterministic
// — every peer would refuse it identically, so no peer sees it and no
// state diverges. A rejection AFTER another replica accepted the same
// call means the rejecting replica has diverged, and it is marked down.
//
// One root span context is minted per logical operation and shared by
// every replica attempt (and every retry within each attempt), so a
// fault episode spanning failover is reconstructable under one trace ID.
func apply[T any](rc *ReplicatedClient, op func(context.Context, *Client) (T, error)) (T, error) {
	var zero T
	sc := obs.NewSpanContext()
	rc.mu.Lock()
	defer rc.mu.Unlock()
	got := false
	var result T
	var lastErr error
	for i, c := range rc.replicas {
		if rc.down[i] {
			continue
		}
		// Each replica keeps its own cancellation context; only the trace
		// is shared.
		r, err := op(obs.ContextWithSpan(c.ctx, sc), c)
		if err != nil {
			if IsRejection(err) && !got {
				return zero, err
			}
			rc.down[i] = true
			lastErr = err
			continue
		}
		if !got {
			result, got = r, true
		}
	}
	if !got {
		if lastErr != nil {
			return zero, fmt.Errorf("%w: last error: %v", ErrNoReplicas, lastErr)
		}
		return zero, ErrNoReplicas
	}
	return result, nil
}

// AdviseTransfers implements the Advisor interface with replication.
func (rc *ReplicatedClient) AdviseTransfers(specs []policy.TransferSpec) (*policy.TransferAdvice, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.TransferAdvice, error) {
		return c.AdviseTransfersCtx(ctx, specs)
	})
}

// ReportTransfers implements the Advisor interface with replication.
func (rc *ReplicatedClient) ReportTransfers(report policy.CompletionReport) (*policy.ReportAck, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.ReportAck, error) {
		return c.ReportTransfersCtx(ctx, report)
	})
}

// AdviseCleanups implements the Advisor interface with replication.
func (rc *ReplicatedClient) AdviseCleanups(specs []policy.CleanupSpec) (*policy.CleanupAdvice, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.CleanupAdvice, error) {
		return c.AdviseCleanupsCtx(ctx, specs)
	})
}

// ReportCleanups implements the Advisor interface with replication.
func (rc *ReplicatedClient) ReportCleanups(report policy.CleanupReport) (*policy.ReportAck, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.ReportAck, error) {
		return c.ReportCleanupsCtx(ctx, report)
	})
}

// RenewLease renews the workflow's lease on every healthy replica.
func (rc *ReplicatedClient) RenewLease(workflowID string) (*policy.LeaseStatus, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.LeaseStatus, error) {
		return c.renewLeaseCtx(ctx, workflowID)
	})
}

// AdvanceClock advances the logical clock on every healthy replica; being
// a logged deterministic mutation, each replica expires the same leases.
func (rc *ReplicatedClient) AdvanceClock(now float64) (*policy.ClockAdvance, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.ClockAdvance, error) {
		return c.advanceClockCtx(ctx, now)
	})
}

// Leases lists active leases from the first healthy replica.
func (rc *ReplicatedClient) Leases() (*policy.LeaseList, error) {
	return apply(rc, func(_ context.Context, c *Client) (*policy.LeaseList, error) { return c.Leases() })
}

// SetThreshold applies a threshold change to every healthy replica.
func (rc *ReplicatedClient) SetThreshold(src, dst string, max int) error {
	_, err := apply(rc, func(ctx context.Context, c *Client) (struct{}, error) {
		return struct{}{}, c.setThresholdCtx(ctx, src, dst, max)
	})
	return err
}

// ActivateBundleDoc activates a policy bundle document on every healthy
// replica through the WAL-logged activation path. Carrying the full
// document (rather than a staged version name) keeps the call
// self-contained: a replica that crashed after the push still applies it.
func (rc *ReplicatedClient) ActivateBundleDoc(doc []byte) (*policy.BundleInfo, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.BundleInfo, error) {
		return c.ActivateBundleDocCtx(ctx, doc)
	})
}

// RollbackBundle re-activates the previously active bundle on every
// healthy replica. The previous-bundle pointer is WAL-replayed state, so
// identical replicas roll back to the identical version.
func (rc *ReplicatedClient) RollbackBundle() (*policy.BundleInfo, error) {
	return apply(rc, func(ctx context.Context, c *Client) (*policy.BundleInfo, error) {
		return c.RollbackBundleCtx(ctx)
	})
}

// State reads the externally visible state from the first healthy replica.
func (rc *ReplicatedClient) State() (*policy.Snapshot, error) {
	return apply(rc, func(_ context.Context, c *Client) (*policy.Snapshot, error) { return c.State() })
}

// Resync restores replica i from a healthy peer and marks it up again.
// Durable peers ship their snapshot + WAL tail archive, so the donor
// serves a compact, already-persisted bundle instead of exporting its
// full live Policy Memory; peers without a durable store (the archive
// endpoint answers 501) fall back to the live state dump.
func (rc *ReplicatedClient) Resync(i int) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if i < 0 || i >= len(rc.replicas) {
		return fmt.Errorf("policyhttp: replica index %d out of range", i)
	}
	target := rc.replicas[i]
	var lastErr error
	for j, c := range rc.replicas {
		if j == i || rc.down[j] {
			continue
		}
		if arch, err := c.Archive(); err == nil {
			if err := replayArchive(target, arch); err != nil {
				return fmt.Errorf("policyhttp: restore replica %d: %w", i, err)
			}
			rc.down[i] = false
			return nil
		}
		dump, err := c.Dump()
		if err != nil {
			rc.down[j] = true
			lastErr = err
			continue
		}
		if err := target.Restore(dump); err != nil {
			return fmt.Errorf("policyhttp: restore replica %d: %w", i, err)
		}
		rc.down[i] = false
		return nil
	}
	if lastErr != nil {
		return fmt.Errorf("%w: last error: %v", ErrNoReplicas, lastErr)
	}
	return ErrNoReplicas
}
