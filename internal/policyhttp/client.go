package policyhttp

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// IdempotencyKeyHeader carries the client-generated key that makes a
// mutating request safely retryable: the server applies the mutation at
// most once per key and replays the recorded response to duplicates.
const IdempotencyKeyHeader = "Idempotency-Key"

// IdempotencyReplayedHeader marks a response served from the server's
// idempotency cache instead of a fresh application.
const IdempotencyReplayedHeader = "Idempotency-Replayed"

// RetryPolicy controls the client's retry loop. Attempts beyond the first
// are made only for transport errors (connection failures, timeouts,
// dropped responses), retryable 5xx statuses (502, 503, 504), and 429
// admission sheds — which are guaranteed side-effect free and carry a
// Retry-After hint the backoff honors. Every retried mutation carries the
// same idempotency key, so a response lost after the server applied the
// mutation is recovered without applying it twice.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 1 mean 1 (no retries).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further retry
	// doubles it (exponential backoff), capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth; 0 means no cap.
	MaxBackoff time.Duration
	// Jitter is the fractional randomization applied to each backoff
	// (0.2 = +-20%), decorrelating retry storms across clients.
	Jitter float64
}

// DefaultRetryPolicy is the retry configuration clients start with: three
// attempts with 50ms base backoff, 1s cap and 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Millisecond,
		MaxBackoff: time.Second, Jitter: 0.2}
}

// Client is the Go client for the policy service's RESTful interface; the
// modified Pegasus Transfer Tool uses it to obtain advice before executing
// transfers. The zero value is not usable; call NewClient.
type Client struct {
	base string
	http *http.Client
	// useXML selects the XML wire format instead of JSON.
	useXML bool
	retry  RetryPolicy
	// sleep waits between retry attempts; injectable so tests and the
	// fault-injection harness never sleep real time.
	sleep func(time.Duration)
	// ctx is the base context every request derives from.
	ctx     context.Context
	metrics *obs.ClientMetrics

	// epoch is the highest fencing epoch observed in any response's
	// X-Policy-Epoch header (monotonic; see failover.go). Mutations echo
	// it so a deposed primary learns it has been passed and self-fences.
	epoch atomic.Uint64
	// syncReplay marks outgoing mutations as replication-plane traffic
	// (SyncReplayHeader), letting archive replay write into a fenced
	// standby. Toggled only by replayArchive under ReplicatedClient's lock.
	syncReplay atomic.Bool

	mu         sync.Mutex
	rng        *rand.Rand // backoff jitter
	keyPrefix  string
	keyCounter uint64
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithXML makes the client speak XML on the wire (the service supports
// both; the paper's interface offers "XML or JSON data structures").
func WithXML() ClientOption {
	return func(c *Client) { c.useXML = true }
}

// WithTimeout replaces the default 30s per-attempt HTTP timeout.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.http.Timeout = d }
}

// WithTransport substitutes the HTTP transport — the fault-injection
// harness routes requests in-process and injects faults here.
func WithTransport(rt http.RoundTripper) ClientOption {
	return func(c *Client) { c.http.Transport = rt }
}

// WithRetry replaces the default retry policy. A policy with
// MaxAttempts <= 1 disables retries.
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithBackoffSleep substitutes the function that waits between retries
// (tests pass a fake clock so backoff never sleeps real time).
func WithBackoffSleep(sleep func(time.Duration)) ClientOption {
	return func(c *Client) { c.sleep = sleep }
}

// WithBaseContext makes every request derive from ctx, so cancelling it
// aborts in-flight calls and pending retries.
func WithBaseContext(ctx context.Context) ClientOption {
	return func(c *Client) { c.ctx = ctx }
}

// WithMetrics attaches retry/fault counters (see obs.NewClientMetrics).
func WithMetrics(m *obs.ClientMetrics) ClientOption {
	return func(c *Client) { c.metrics = m }
}

// WithJitterSeed seeds the backoff jitter generator, making retry timing
// reproducible in tests.
func WithJitterSeed(seed int64) ClientOption {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// NewClient returns a client for the policy service at baseURL (e.g.
// "http://localhost:8765"). Retries with backoff and idempotency keys are
// on by default (DefaultRetryPolicy); pass WithRetry to tune or disable.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		http:  &http.Client{Timeout: 30 * time.Second},
		retry: DefaultRetryPolicy(),
		sleep: time.Sleep,
		ctx:   context.Background(),
	}
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		c.keyPrefix = hex.EncodeToString(b[:])
	} else {
		c.keyPrefix = fmt.Sprintf("%x", time.Now().UnixNano())
	}
	for _, o := range opts {
		o(c)
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(int64(time.Now().UnixNano())))
	}
	return c
}

func (c *Client) contentType() string {
	if c.useXML {
		return "application/xml"
	}
	return "application/json"
}

func (c *Client) encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if c.useXML {
		if err := xml.NewEncoder(&buf).Encode(v); err != nil {
			return nil, err
		}
	} else {
		if err := json.NewEncoder(&buf).Encode(v); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// newIdempotencyKey mints a key unique to this client instance and call.
func (c *Client) newIdempotencyKey() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keyCounter++
	return fmt.Sprintf("%s-%d", c.keyPrefix, c.keyCounter)
}

// backoff computes the jittered exponential backoff before retry number
// retry (1-based).
func (c *Client) backoff(retry int) time.Duration {
	d := c.retry.BaseBackoff
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	for i := 1; i < retry; i++ {
		d *= 2
		if c.retry.MaxBackoff > 0 && d >= c.retry.MaxBackoff {
			d = c.retry.MaxBackoff
			break
		}
	}
	if c.retry.MaxBackoff > 0 && d > c.retry.MaxBackoff {
		d = c.retry.MaxBackoff
	}
	return c.jittered(d)
}

// jittered spreads d across the +-Jitter band so that a burst of clients
// rejected together does not return in lockstep.
func (c *Client) jittered(d time.Duration) time.Duration {
	if j := c.retry.Jitter; j > 0 {
		c.mu.Lock()
		f := 1 + j*(2*c.rng.Float64()-1)
		c.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// retryDelay picks the sleep before retry number retry (1-based): the
// jittered exponential backoff, unless the previous attempt carried a
// server Retry-After hint, which takes precedence — capped at MaxBackoff
// so a misbehaving server cannot park the client, and still jittered.
func (c *Client) retryDelay(retry int, hint time.Duration) time.Duration {
	if hint <= 0 {
		return c.backoff(retry)
	}
	if c.retry.MaxBackoff > 0 && hint > c.retry.MaxBackoff {
		hint = c.retry.MaxBackoff
	}
	return c.jittered(hint)
}

// retryableStatus reports whether a status code is safe and useful to
// retry: gateway-class failures where the response carries no decision,
// and 429 — the admission layer shed the request before any side effect,
// explicitly inviting a retry after backoff.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout || code == http.StatusTooManyRequests
}

// retryAfterHint extracts the server's Retry-After from the previous
// attempt's error, if any.
func retryAfterHint(err error) time.Duration {
	var se *ServerError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// parseRetryAfter reads a Retry-After header value, either delay-seconds
// or an HTTP date; 0 means absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

func (c *Client) countFault(path, kind string) {
	if c.metrics != nil {
		c.metrics.Faults.With(path, kind).Inc()
	}
}

// do performs one logical API call with retries. Mutating calls (anything
// but GET) carry an idempotency key that is reused across attempts, so
// the server applies the mutation at most once even when responses are
// lost and the call is retried.
func (c *Client) do(method, path string, in, out any) error {
	return c.doCtx(c.ctx, method, path, in, out)
}

// doCtx is do deriving from the caller's context, joining its causal
// trace (see doKeyedCtx).
func (c *Client) doCtx(ctx context.Context, method, path string, in, out any) error {
	var idemKey string
	if method != http.MethodGet {
		idemKey = c.newIdempotencyKey()
	}
	return c.doKeyedCtx(ctx, method, path, idemKey, in, out)
}

// doKeyed is do with a caller-chosen idempotency key: callers that retry a
// logical operation across their own failure-handling episodes (the PTT's
// degraded-mode backlog) keep the key stable so the server applies the
// mutation at most once across all of them.
func (c *Client) doKeyed(method, path, idemKey string, in, out any) error {
	return c.doKeyedCtx(c.ctx, method, path, idemKey, in, out)
}

// doKeyedCtx performs one logical call with retries under ctx. A span
// context is fixed once per logical call — derived from the trace in ctx
// when there is one, freshly minted otherwise — and sent as the
// Traceparent header on every attempt, so all retries of one call (and,
// via ReplicatedClient, all replicas it lands on) share one trace ID and
// the fault episode is reconstructable end-to-end from the server-side
// event logs.
func (c *Client) doKeyedCtx(ctx context.Context, method, path, idemKey string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = c.encode(in)
		if err != nil {
			return fmt.Errorf("policyhttp: encode request: %w", err)
		}
	}
	var sc obs.SpanContext
	if parent, ok := obs.SpanFromContext(ctx); ok {
		sc = obs.SpanContext{TraceID: parent.TraceID, SpanID: obs.NewSpanID()}
	} else {
		sc = obs.NewSpanContext()
	}
	if c.metrics != nil {
		c.metrics.Requests.With(path).Inc()
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if c.metrics != nil {
				c.metrics.Retries.With(path).Inc()
			}
			c.sleep(c.retryDelay(attempt-1, retryAfterHint(lastErr)))
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("policyhttp: %s %s: %w", method, path, err)
			}
		}
		done, err := c.attempt(ctx, method, path, body, idemKey, sc, in != nil, out)
		if done {
			return err
		}
		lastErr = err
	}
	if c.metrics != nil {
		c.metrics.Exhausted.With(path).Inc()
	}
	return lastErr
}

// attempt performs one HTTP attempt. done=false means the failure is
// retryable; done=true returns the final result (success or not).
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, idemKey string, sc obs.SpanContext, hasBody bool, out any) (done bool, err error) {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return true, fmt.Errorf("policyhttp: build request: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", c.contentType())
	}
	req.Header.Set("Accept", c.contentType())
	if idemKey != "" {
		req.Header.Set(IdempotencyKeyHeader, idemKey)
	}
	if sc.Valid() {
		req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
	}
	if method != http.MethodGet {
		if e := c.epoch.Load(); e > 0 {
			req.Header.Set(EpochHeader, strconv.FormatUint(e, 10))
		}
		if c.syncReplay.Load() {
			req.Header.Set(SyncReplayHeader, "1")
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.countFault(path, "transport")
		return false, fmt.Errorf("policyhttp: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if h := resp.Header.Get(EpochHeader); h != "" {
		if e, perr := strconv.ParseUint(h, 10, 64); perr == nil {
			c.RaiseEpoch(e)
		}
	}
	if retryableStatus(resp.StatusCode) {
		kind := "http_5xx"
		if resp.StatusCode == http.StatusTooManyRequests {
			kind = "http_429"
		}
		c.countFault(path, kind)
		return false, c.decodeError(resp)
	}
	if c.metrics != nil && resp.Header.Get(IdempotencyReplayedHeader) != "" {
		c.metrics.IdempotentReplays.With(path).Inc()
	}
	if resp.StatusCode >= 400 {
		return true, c.decodeError(resp)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		io.Copy(io.Discard, resp.Body)
		return true, nil
	}
	if c.useXML {
		if err := xml.NewDecoder(resp.Body).Decode(out); err != nil {
			return true, fmt.Errorf("policyhttp: decode response: %w", err)
		}
		return true, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return true, fmt.Errorf("policyhttp: decode response: %w", err)
	}
	return true, nil
}

// ServerError is an error response decoded from the service. StatusCode
// distinguishes deterministic rejections (4xx — the service is healthy and
// refused the request) from server-side failures (5xx).
type ServerError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint (zero when absent); on
	// 429/503 it feeds the retry loop's backoff.
	RetryAfter time.Duration
	// Epoch is the fencing epoch the server stamped on the response
	// (X-Policy-Epoch; zero when the server has no failover role). On a
	// 412 it tells the caller which epoch fenced the request.
	Epoch uint64
	// raw is the undecoded body, used when no error document was parsed.
	raw string
}

// Error implements error.
func (e *ServerError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("policyhttp: server: %s (HTTP %d)", e.Message, e.StatusCode)
	}
	return fmt.Sprintf("policyhttp: HTTP %d: %s", e.StatusCode, e.raw)
}

// IsRejection reports whether err is a deterministic server-side rejection
// (HTTP 4xx): the service is healthy, it just refused the request. Every
// identically-configured replica would refuse it the same way.
func IsRejection(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.StatusCode >= 400 && se.StatusCode < 500
}

// IsBusy reports whether err is the service shedding load (HTTP 429): the
// service is healthy but at capacity, and the request was rejected before
// any side effect — back off and retry rather than treating the service
// as failed. IsRejection is also true for 429, so busy-aware callers must
// check IsBusy first.
func IsBusy(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.StatusCode == http.StatusTooManyRequests
}

// HTTPStatus exposes the status code behind interface checks, letting
// packages that only see the error (not this package's types) classify
// busy responses.
func (e *ServerError) HTTPStatus() int { return e.StatusCode }

func (c *Client) decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	ra := parseRetryAfter(resp.Header.Get("Retry-After"))
	epoch, _ := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
	var doc ErrorDoc
	if c.useXML {
		if xml.Unmarshal(data, &doc) == nil && doc.Message != "" {
			return &ServerError{StatusCode: resp.StatusCode, Message: doc.Message, RetryAfter: ra, Epoch: epoch}
		}
	} else if json.Unmarshal(data, &doc) == nil && doc.Message != "" {
		return &ServerError{StatusCode: resp.StatusCode, Message: doc.Message, RetryAfter: ra, Epoch: epoch}
	}
	return &ServerError{StatusCode: resp.StatusCode, RetryAfter: ra, Epoch: epoch, raw: strings.TrimSpace(string(data))}
}

// AdviseTransfers submits a transfer list and returns the modified list.
func (c *Client) AdviseTransfers(specs []policy.TransferSpec) (*policy.TransferAdvice, error) {
	return c.AdviseTransfersCtx(c.ctx, specs)
}

// AdviseTransfersCtx is AdviseTransfers joining the causal trace carried
// by ctx (all retry attempts share one trace ID).
func (c *Client) AdviseTransfersCtx(ctx context.Context, specs []policy.TransferSpec) (*policy.TransferAdvice, error) {
	var doc TransferAdviceDoc
	if err := c.doCtx(ctx, http.MethodPost, "/v1/transfers", &TransferRequest{Transfers: specs}, &doc); err != nil {
		return nil, err
	}
	return &doc.TransferAdvice, nil
}

// ReportTransfers reports completed and failed transfers.
func (c *Client) ReportTransfers(report policy.CompletionReport) (*policy.ReportAck, error) {
	return c.ReportTransfersCtx(c.ctx, report)
}

// ReportTransfersCtx is ReportTransfers joining the causal trace carried
// by ctx.
func (c *Client) ReportTransfersCtx(ctx context.Context, report policy.CompletionReport) (*policy.ReportAck, error) {
	return c.ReportTransfersKeyedCtx(ctx, c.newIdempotencyKey(), report)
}

// ReportTransfersKeyed is ReportTransfers with a caller-chosen idempotency
// key (see KeyedReporter in internal/transfer).
func (c *Client) ReportTransfersKeyed(key string, report policy.CompletionReport) (*policy.ReportAck, error) {
	return c.ReportTransfersKeyedCtx(c.ctx, key, report)
}

// ReportTransfersKeyedCtx combines a caller-chosen idempotency key with a
// caller trace context.
func (c *Client) ReportTransfersKeyedCtx(ctx context.Context, key string, report policy.CompletionReport) (*policy.ReportAck, error) {
	var doc ReportAckDoc
	if err := c.doKeyedCtx(ctx, http.MethodPost, "/v1/transfers/completed", key,
		&CompletionDoc{CompletionReport: report}, &doc); err != nil {
		return nil, err
	}
	return &doc.ReportAck, nil
}

// AdviseCleanups submits a cleanup list and returns the modified list.
func (c *Client) AdviseCleanups(specs []policy.CleanupSpec) (*policy.CleanupAdvice, error) {
	return c.AdviseCleanupsCtx(c.ctx, specs)
}

// AdviseCleanupsCtx is AdviseCleanups joining the causal trace carried by
// ctx.
func (c *Client) AdviseCleanupsCtx(ctx context.Context, specs []policy.CleanupSpec) (*policy.CleanupAdvice, error) {
	var doc CleanupAdviceDoc
	if err := c.doCtx(ctx, http.MethodPost, "/v1/cleanups", &CleanupRequest{Cleanups: specs}, &doc); err != nil {
		return nil, err
	}
	return &doc.CleanupAdvice, nil
}

// ReportCleanups reports completed cleanups.
func (c *Client) ReportCleanups(report policy.CleanupReport) (*policy.ReportAck, error) {
	return c.ReportCleanupsCtx(c.ctx, report)
}

// ReportCleanupsCtx is ReportCleanups joining the causal trace carried by
// ctx.
func (c *Client) ReportCleanupsCtx(ctx context.Context, report policy.CleanupReport) (*policy.ReportAck, error) {
	return c.ReportCleanupsKeyedCtx(ctx, c.newIdempotencyKey(), report)
}

// ReportCleanupsKeyed is ReportCleanups with a caller-chosen idempotency
// key.
func (c *Client) ReportCleanupsKeyed(key string, report policy.CleanupReport) (*policy.ReportAck, error) {
	return c.ReportCleanupsKeyedCtx(c.ctx, key, report)
}

// ReportCleanupsKeyedCtx combines a caller-chosen idempotency key with a
// caller trace context.
func (c *Client) ReportCleanupsKeyedCtx(ctx context.Context, key string, report policy.CleanupReport) (*policy.ReportAck, error) {
	var doc ReportAckDoc
	if err := c.doKeyedCtx(ctx, http.MethodPost, "/v1/cleanups/completed", key,
		&CleanupReportDoc{CleanupReport: report}, &doc); err != nil {
		return nil, err
	}
	return &doc.ReportAck, nil
}

// RenewLease registers or extends the workflow's liveness lease.
func (c *Client) RenewLease(workflowID string) (*policy.LeaseStatus, error) {
	return c.renewLeaseCtx(c.ctx, workflowID)
}

func (c *Client) renewLeaseCtx(ctx context.Context, workflowID string) (*policy.LeaseStatus, error) {
	var doc LeaseStatusDoc
	if err := c.doCtx(ctx, http.MethodPost, "/v1/leases/renew", &LeaseRenewal{WorkflowID: workflowID}, &doc); err != nil {
		return nil, err
	}
	return &doc.LeaseStatus, nil
}

// Leases lists the active leases and the holdings behind each.
func (c *Client) Leases() (*policy.LeaseList, error) {
	var doc LeaseListDoc
	if err := c.do(http.MethodGet, "/v1/leases", nil, &doc); err != nil {
		return nil, err
	}
	return &doc.LeaseList, nil
}

// AdvanceClock moves the service's logical clock forward, expiring leases
// whose deadlines have passed and reclaiming their holdings.
func (c *Client) AdvanceClock(now float64) (*policy.ClockAdvance, error) {
	return c.advanceClockCtx(c.ctx, now)
}

func (c *Client) advanceClockCtx(ctx context.Context, now float64) (*policy.ClockAdvance, error) {
	var doc ClockAdvanceDoc
	if err := c.doCtx(ctx, http.MethodPost, "/v1/clock/advance", &ClockUpdate{Now: now}, &doc); err != nil {
		return nil, err
	}
	return &doc.ClockAdvance, nil
}

// State fetches the service's externally visible state.
func (c *Client) State() (*policy.Snapshot, error) {
	var doc SnapshotDoc
	if err := c.do(http.MethodGet, "/v1/state", nil, &doc); err != nil {
		return nil, err
	}
	return &doc.Snapshot, nil
}

// SetThreshold sets the stream threshold for a host pair.
func (c *Client) SetThreshold(sourceHost, destHost string, max int) error {
	return c.setThresholdCtx(c.ctx, sourceHost, destHost, max)
}

func (c *Client) setThresholdCtx(ctx context.Context, sourceHost, destHost string, max int) error {
	return c.doCtx(ctx, http.MethodPut, "/v1/thresholds", &ThresholdUpdate{
		SourceHost: sourceHost, DestHost: destHost, Max: max,
	}, nil)
}

// PushBundle stages a policy bundle document without activating it. The
// argument is the raw bundle JSON; it is sent verbatim, because the
// bundle checksum is defined over the document's canonical JSON form.
// XML-mode clients cannot push bundles.
func (c *Client) PushBundle(doc []byte) (*policy.BundleInfo, error) {
	return c.PushBundleCtx(c.ctx, doc)
}

// PushBundleCtx is PushBundle joining the causal trace carried by ctx.
func (c *Client) PushBundleCtx(ctx context.Context, doc []byte) (*policy.BundleInfo, error) {
	if c.useXML {
		return nil, errors.New("policyhttp: bundle documents are JSON-only; use a JSON-mode client")
	}
	var out BundleInfoDoc
	if err := c.doCtx(ctx, http.MethodPut, "/v1/bundles", json.RawMessage(doc), &out); err != nil {
		return nil, err
	}
	return &out.BundleInfo, nil
}

// ActivateBundle activates a previously pushed bundle by version through
// the WAL-logged activation path.
func (c *Client) ActivateBundle(version string) (*policy.BundleInfo, error) {
	return c.ActivateBundleCtx(c.ctx, version)
}

// ActivateBundleCtx is ActivateBundle joining the causal trace carried by
// ctx.
func (c *Client) ActivateBundleCtx(ctx context.Context, version string) (*policy.BundleInfo, error) {
	return c.activateBundleReq(ctx, &BundleActivateRequest{Version: version})
}

// ActivateBundleDoc pushes and activates a bundle document in one call:
// the document rides inside the activation request, so the operation does
// not depend on previously staged (non-durable) state. XML-mode clients
// cannot carry bundle documents.
func (c *Client) ActivateBundleDoc(doc []byte) (*policy.BundleInfo, error) {
	return c.ActivateBundleDocCtx(c.ctx, doc)
}

// ActivateBundleDocCtx is ActivateBundleDoc joining the causal trace
// carried by ctx.
func (c *Client) ActivateBundleDocCtx(ctx context.Context, doc []byte) (*policy.BundleInfo, error) {
	if c.useXML {
		return nil, errors.New("policyhttp: bundle documents are JSON-only; use a JSON-mode client")
	}
	return c.activateBundleReq(ctx, &BundleActivateRequest{Bundle: json.RawMessage(doc)})
}

// RollbackBundle re-activates the previously active bundle.
func (c *Client) RollbackBundle() (*policy.BundleInfo, error) {
	return c.RollbackBundleCtx(c.ctx)
}

// RollbackBundleCtx is RollbackBundle joining the causal trace carried by
// ctx.
func (c *Client) RollbackBundleCtx(ctx context.Context) (*policy.BundleInfo, error) {
	return c.activateBundleReq(ctx, &BundleActivateRequest{Rollback: true})
}

func (c *Client) activateBundleReq(ctx context.Context, req *BundleActivateRequest) (*policy.BundleInfo, error) {
	var out BundleInfoDoc
	if err := c.doCtx(ctx, http.MethodPost, "/v1/bundles/activate", req, &out); err != nil {
		return nil, err
	}
	return &out.BundleInfo, nil
}

// Bundles reports the active, previous, and staged policy bundles.
func (c *Client) Bundles() (*policy.BundleStatus, error) {
	var doc BundleStatusDoc
	if err := c.do(http.MethodGet, "/v1/bundles", nil, &doc); err != nil {
		return nil, err
	}
	return &doc.BundleStatus, nil
}

// Healthz probes the service.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/v1/healthz", nil, nil)
}

// Metrics fetches the raw Prometheus text-format scrape from /v1/metrics.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http.Get(c.base + "/v1/metrics")
	if err != nil {
		return "", fmt.Errorf("policyhttp: GET /v1/metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return "", c.decodeError(resp)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", fmt.Errorf("policyhttp: read metrics: %w", err)
	}
	return string(data), nil
}

// Decisions fetches recent decision provenance records from
// /v1/decisions, oldest first. Zero or empty arguments mean no limit or
// no filter; lfn matches exactly, by path basename, or by suffix; bundle
// keeps only decisions produced under that bundle version.
func (c *Client) Decisions(n int, op, workflow, lfn, bundle string) ([]policy.DecisionRecord, error) {
	q := url.Values{}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	if op != "" {
		q.Set("op", op)
	}
	if workflow != "" {
		q.Set("workflow", workflow)
	}
	if lfn != "" {
		q.Set("lfn", lfn)
	}
	if bundle != "" {
		q.Set("bundle", bundle)
	}
	path := "/v1/decisions"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var doc DecisionListDoc
	if err := c.do(http.MethodGet, path, nil, &doc); err != nil {
		return nil, err
	}
	return doc.Decisions, nil
}

// Dump fetches a full Policy Memory snapshot.
func (c *Client) Dump() (*policy.StateDump, error) {
	var dump policy.StateDump
	if err := c.do(http.MethodGet, "/v1/state/dump", nil, &dump); err != nil {
		return nil, err
	}
	return &dump, nil
}

// Restore replaces the remote service's Policy Memory with the dump.
func (c *Client) Restore(dump *policy.StateDump) error {
	return c.do(http.MethodPost, "/v1/state/restore", dump, nil)
}
