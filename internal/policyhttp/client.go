package policyhttp

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"policyflow/internal/policy"
)

// Client is the Go client for the policy service's RESTful interface; the
// modified Pegasus Transfer Tool uses it to obtain advice before executing
// transfers. The zero value is not usable; call NewClient.
type Client struct {
	base string
	http *http.Client
	// useXML selects the XML wire format instead of JSON.
	useXML bool
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithXML makes the client speak XML on the wire (the service supports
// both; the paper's interface offers "XML or JSON data structures").
func WithXML() ClientOption {
	return func(c *Client) { c.useXML = true }
}

// NewClient returns a client for the policy service at baseURL (e.g.
// "http://localhost:8765").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) contentType() string {
	if c.useXML {
		return "application/xml"
	}
	return "application/json"
}

func (c *Client) encode(v any) (io.Reader, error) {
	var buf bytes.Buffer
	if c.useXML {
		if err := xml.NewEncoder(&buf).Encode(v); err != nil {
			return nil, err
		}
	} else {
		if err := json.NewEncoder(&buf).Encode(v); err != nil {
			return nil, err
		}
	}
	return &buf, nil
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		var err error
		body, err = c.encode(in)
		if err != nil {
			return fmt.Errorf("policyhttp: encode request: %w", err)
		}
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("policyhttp: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", c.contentType())
	}
	req.Header.Set("Accept", c.contentType())
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("policyhttp: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return c.decodeError(resp)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if c.useXML {
		if err := xml.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("policyhttp: decode response: %w", err)
		}
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("policyhttp: decode response: %w", err)
	}
	return nil
}

func (c *Client) decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var doc ErrorDoc
	if c.useXML {
		if xml.Unmarshal(data, &doc) == nil && doc.Message != "" {
			return fmt.Errorf("policyhttp: server: %s (HTTP %d)", doc.Message, resp.StatusCode)
		}
	} else if json.Unmarshal(data, &doc) == nil && doc.Message != "" {
		return fmt.Errorf("policyhttp: server: %s (HTTP %d)", doc.Message, resp.StatusCode)
	}
	return fmt.Errorf("policyhttp: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
}

// AdviseTransfers submits a transfer list and returns the modified list.
func (c *Client) AdviseTransfers(specs []policy.TransferSpec) (*policy.TransferAdvice, error) {
	var doc TransferAdviceDoc
	if err := c.do(http.MethodPost, "/v1/transfers", &TransferRequest{Transfers: specs}, &doc); err != nil {
		return nil, err
	}
	return &doc.TransferAdvice, nil
}

// ReportTransfers reports completed and failed transfers.
func (c *Client) ReportTransfers(report policy.CompletionReport) error {
	return c.do(http.MethodPost, "/v1/transfers/completed", &CompletionDoc{CompletionReport: report}, nil)
}

// AdviseCleanups submits a cleanup list and returns the modified list.
func (c *Client) AdviseCleanups(specs []policy.CleanupSpec) (*policy.CleanupAdvice, error) {
	var doc CleanupAdviceDoc
	if err := c.do(http.MethodPost, "/v1/cleanups", &CleanupRequest{Cleanups: specs}, &doc); err != nil {
		return nil, err
	}
	return &doc.CleanupAdvice, nil
}

// ReportCleanups reports completed cleanups.
func (c *Client) ReportCleanups(report policy.CleanupReport) error {
	return c.do(http.MethodPost, "/v1/cleanups/completed", &CleanupReportDoc{CleanupReport: report}, nil)
}

// State fetches the service's externally visible state.
func (c *Client) State() (*policy.Snapshot, error) {
	var doc SnapshotDoc
	if err := c.do(http.MethodGet, "/v1/state", nil, &doc); err != nil {
		return nil, err
	}
	return &doc.Snapshot, nil
}

// SetThreshold sets the stream threshold for a host pair.
func (c *Client) SetThreshold(sourceHost, destHost string, max int) error {
	return c.do(http.MethodPut, "/v1/thresholds", &ThresholdUpdate{
		SourceHost: sourceHost, DestHost: destHost, Max: max,
	}, nil)
}

// Healthz probes the service.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/v1/healthz", nil, nil)
}

// Metrics fetches the raw Prometheus text-format scrape from /v1/metrics.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http.Get(c.base + "/v1/metrics")
	if err != nil {
		return "", fmt.Errorf("policyhttp: GET /v1/metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return "", c.decodeError(resp)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", fmt.Errorf("policyhttp: read metrics: %w", err)
	}
	return string(data), nil
}

// Dump fetches a full Policy Memory snapshot.
func (c *Client) Dump() (*policy.StateDump, error) {
	var dump policy.StateDump
	if err := c.do(http.MethodGet, "/v1/state/dump", nil, &dump); err != nil {
		return nil, err
	}
	return &dump, nil
}

// Restore replaces the remote service's Policy Memory with the dump.
func (c *Client) Restore(dump *policy.StateDump) error {
	return c.do(http.MethodPost, "/v1/state/restore", dump, nil)
}
