package policyhttp

import (
	"context"
	"net/http/httptest"
	"testing"

	"policyflow/internal/durable"
	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// spansByName collects span events from a run, keyed by span name.
func spansByName(events []obs.Event) map[string][]obs.Event {
	out := make(map[string][]obs.Event)
	for _, e := range events {
		if e.Type == obs.EventSpan {
			out[e.Name] = append(out[e.Name], e)
		}
	}
	return out
}

// TestTracePropagationAcrossClientServer is the tentpole's end-to-end
// check over a real httptest round trip: a caller-minted span context
// rides the Traceparent header through the client, and every span the
// server side emits — the http.server envelope, the policy operation,
// WAL append, rule firing, group-commit sync — plus the lifecycle events
// and the decision record all carry the caller's trace ID. The WAL fsync
// span is deliberately its own trace (it covers a batch of requests) and
// joins the request trace through its WAL sequence.
func TestTracePropagationAcrossClientServer(t *testing.T) {
	cfg := policy.DefaultConfig()
	svc, err := policy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var col obs.Collector
	ps, _, err := durable.OpenPolicyStore(t.TempDir(), svc, durable.Options{
		Fsync:  true,
		Tracer: &col,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	server := NewServerWith(svc, nil, obs.NewRegistry(), &col)
	server.SetDurable(ps)
	ts := httptest.NewServer(server)
	defer ts.Close()
	c := NewClient(ts.URL)

	root := obs.NewSpanContext()
	ctx := obs.ContextWithSpan(context.Background(), root)
	adv, err := c.AdviseTransfersCtx(ctx, []policy.TransferSpec{testSpec(1, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Transfers) != 1 {
		t.Fatalf("advised %d transfers", len(adv.Transfers))
	}

	spans := spansByName(col.Events())
	for _, name := range []string{"http.server", "policy.advise_transfers", "wal.append", "rules.fire", "wal.sync"} {
		got := spans[name]
		if len(got) != 1 {
			t.Fatalf("span %s emitted %d times, want 1 (have: %v)", name, len(got), spanNames(col.Events()))
		}
		if got[0].TraceID != root.TraceID {
			t.Errorf("span %s carries trace %s, want caller trace %s", name, got[0].TraceID, root.TraceID)
		}
		if got[0].SpanID == "" {
			t.Errorf("span %s has no span ID", name)
		}
	}
	hs := spans["http.server"][0]
	if hs.Endpoint != "POST /v1/transfers" || hs.Status != 200 {
		t.Errorf("http.server span endpoint/status = %q/%d", hs.Endpoint, hs.Status)
	}
	// The policy op is a child of the http.server span, which in turn
	// descends from the client's per-call span (same trace, not root's
	// span ID — the client mints a child span ID per logical call).
	op := spans["policy.advise_transfers"][0]
	if op.ParentSpanID != hs.SpanID {
		t.Errorf("policy span parent %s, want http.server span %s", op.ParentSpanID, hs.SpanID)
	}
	if hs.ParentSpanID == "" || hs.ParentSpanID == root.SpanID {
		t.Errorf("http.server parent %s: must descend from the client's per-call span, not the caller root", hs.ParentSpanID)
	}

	// The WAL append span names the sequence the mutation was logged
	// under; the fsync span is a root span of its own trace covering the
	// same (or a later) durable sequence.
	appendSpan := spans["wal.append"][0]
	if appendSpan.WALSeq == 0 {
		t.Error("wal.append span carries no WAL sequence")
	}
	fsync := spans["wal.fsync"]
	if len(fsync) == 0 {
		t.Fatal("no wal.fsync span emitted")
	}
	for _, f := range fsync {
		if f.TraceID == root.TraceID {
			t.Error("wal.fsync joined the request trace; it must be its own root (it covers a batch)")
		}
		if f.ParentSpanID != "" {
			t.Errorf("wal.fsync has parent %s, want root span", f.ParentSpanID)
		}
	}
	if last := fsync[len(fsync)-1]; last.WALSeq < appendSpan.WALSeq {
		t.Errorf("fsync covers WAL seq %d, append logged %d", last.WALSeq, appendSpan.WALSeq)
	}

	// Lifecycle events and the decision record join the same trace.
	for _, e := range col.Events() {
		if e.Type == obs.EventSubmitted || e.Type == obs.EventAdvised {
			if e.TraceID != root.TraceID {
				t.Errorf("%s event carries trace %q, want %s", e.Type, e.TraceID, root.TraceID)
			}
		}
	}
	recs := svc.Decisions(0)
	if len(recs) != 1 {
		t.Fatalf("%d decision records, want 1", len(recs))
	}
	if recs[0].TraceID != root.TraceID {
		t.Errorf("decision record trace %s, want %s", recs[0].TraceID, root.TraceID)
	}
	if recs[0].WALSeq != appendSpan.WALSeq {
		t.Errorf("decision record WAL seq %d, append span %d", recs[0].WALSeq, appendSpan.WALSeq)
	}

	// A context-free call still traces: the client mints a fresh root, so
	// the server spans share one trace that is not the first call's.
	if _, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(2, "wf1")}); err != nil {
		t.Fatal(err)
	}
	spans = spansByName(col.Events())
	ops := spans["policy.advise_transfers"]
	if len(ops) != 2 {
		t.Fatalf("%d policy spans after second call", len(ops))
	}
	second := ops[1]
	if second.TraceID == "" || second.TraceID == root.TraceID {
		t.Errorf("second call trace %q: want fresh non-empty trace", second.TraceID)
	}
	if hs2 := spans["http.server"][1]; hs2.TraceID != second.TraceID {
		t.Errorf("second http.server span trace %s != policy span trace %s", hs2.TraceID, second.TraceID)
	}
}

func spanNames(events []obs.Event) []string {
	var names []string
	for _, e := range events {
		if e.Type == obs.EventSpan {
			names = append(names, e.Name)
		}
	}
	return names
}
