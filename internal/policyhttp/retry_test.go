package policyhttp

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// scriptedTransport answers each request from a fixed script of status
// codes (0 means a transport error) and records what it saw. It lets the
// retry tests run without sockets or timers.
type scriptedTransport struct {
	script     []int    // per-attempt status; 0 = transport error
	retryAfter []string // per-attempt Retry-After header ("" = none)
	calls      int
	keys       []string // Idempotency-Key header per attempt
}

func (s *scriptedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := s.calls
	s.calls++
	s.keys = append(s.keys, req.Header.Get(IdempotencyKeyHeader))
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	code := http.StatusOK
	if i < len(s.script) {
		code = s.script[i]
	}
	if code == 0 {
		return nil, errors.New("scripted transport error")
	}
	body := `{}`
	if code >= 400 {
		body = `{"message":"scripted failure"}`
	}
	header := http.Header{"Content-Type": []string{"application/json"}}
	if i < len(s.retryAfter) && s.retryAfter[i] != "" {
		header.Set("Retry-After", s.retryAfter[i])
	}
	return &http.Response{
		StatusCode: code,
		Header:     header,
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
	}, nil
}

// retryClient builds a client over a scripted transport that never sleeps
// real time, capturing each backoff instead.
func retryClient(script []int, opts ...ClientOption) (*Client, *scriptedTransport, *[]time.Duration) {
	st := &scriptedTransport{script: script}
	sleeps := &[]time.Duration{}
	base := []ClientOption{
		WithTransport(st),
		WithBackoffSleep(func(d time.Duration) { *sleeps = append(*sleeps, d) }),
		WithJitterSeed(1),
	}
	c := NewClient("http://scripted", append(base, opts...)...)
	return c, st, sleeps
}

// TestBackoffGrowthAndCap pins the backoff schedule: exponential doubling
// from BaseBackoff, clamped at MaxBackoff, with zero jitter so the values
// are exact.
func TestBackoffGrowthAndCap(t *testing.T) {
	c, _, _ := retryClient(nil, WithRetry(RetryPolicy{
		MaxAttempts: 8, BaseBackoff: 10 * time.Millisecond,
		MaxBackoff: 80 * time.Millisecond, Jitter: 0,
	}))
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := c.backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Without a cap the doubling continues unbounded.
	c2, _, _ := retryClient(nil, WithRetry(RetryPolicy{
		MaxAttempts: 8, BaseBackoff: 10 * time.Millisecond, Jitter: 0,
	}))
	if got := c2.backoff(5); got != 160*time.Millisecond {
		t.Errorf("uncapped backoff(5) = %v, want 160ms", got)
	}
}

// TestBackoffJitterBounds checks that jittered backoffs stay within the
// +-Jitter band around the nominal value and are reproducible from the
// seed.
func TestBackoffJitterBounds(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 5, BaseBackoff: 100 * time.Millisecond,
		MaxBackoff: time.Second, Jitter: 0.2}
	c, _, _ := retryClient(nil, WithRetry(pol), WithJitterSeed(42))
	var first []time.Duration
	for i := 1; i <= 4; i++ {
		d := c.backoff(i)
		nominal := 100 * time.Millisecond << (i - 1)
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if d < lo || d > hi {
			t.Errorf("backoff(%d) = %v outside [%v, %v]", i, d, lo, hi)
		}
		first = append(first, d)
	}
	// Same seed, same sequence.
	c2, _, _ := retryClient(nil, WithRetry(pol), WithJitterSeed(42))
	for i := 1; i <= 4; i++ {
		if d := c2.backoff(i); d != first[i-1] {
			t.Errorf("seeded jitter not reproducible: backoff(%d) = %v, first run %v", i, d, first[i-1])
		}
	}
}

// TestRetryOnGatewayFailures checks that 502/503/504 and transport errors
// are retried until success, sleeping the backoff between attempts, and
// that every attempt carries the same idempotency key.
func TestRetryOnGatewayFailures(t *testing.T) {
	for _, code := range []int{0, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout} {
		c, st, sleeps := retryClient([]int{code, code, http.StatusOK}, WithRetry(RetryPolicy{
			MaxAttempts: 3, BaseBackoff: time.Millisecond, Jitter: 0,
		}))
		if err := c.SetThreshold("a", "b", 3); err != nil {
			t.Errorf("script %d: call failed after retries: %v", code, err)
		}
		if st.calls != 3 {
			t.Errorf("script %d: %d attempts, want 3", code, st.calls)
		}
		if len(*sleeps) != 2 {
			t.Errorf("script %d: slept %d times, want 2", code, len(*sleeps))
		}
		if st.keys[0] == "" || st.keys[0] != st.keys[1] || st.keys[1] != st.keys[2] {
			t.Errorf("script %d: idempotency keys varied across attempts: %v", code, st.keys)
		}
	}
}

// TestNoRetryOnDeterministicStatus checks that 4xx rejections and plain
// 500s are returned immediately: retrying them cannot change the outcome.
func TestNoRetryOnDeterministicStatus(t *testing.T) {
	for _, code := range []int{http.StatusBadRequest, http.StatusNotFound, http.StatusInternalServerError} {
		c, st, sleeps := retryClient([]int{code, http.StatusOK}, WithRetry(RetryPolicy{
			MaxAttempts: 3, BaseBackoff: time.Millisecond, Jitter: 0,
		}))
		err := c.SetThreshold("a", "b", 3)
		if err == nil {
			t.Errorf("status %d: call unexpectedly succeeded", code)
			continue
		}
		var se *ServerError
		if !errors.As(err, &se) || se.StatusCode != code {
			t.Errorf("status %d: error = %v, want ServerError with that status", code, err)
		}
		if st.calls != 1 {
			t.Errorf("status %d: %d attempts, want 1 (no retry)", code, st.calls)
		}
		if len(*sleeps) != 0 {
			t.Errorf("status %d: slept %v, want no backoff", code, *sleeps)
		}
		if IsRejection(err) != (code < 500) {
			t.Errorf("status %d: IsRejection = %v", code, IsRejection(err))
		}
	}
}

// TestRetryExhaustion checks that a persistent outage surfaces the last
// error after MaxAttempts tries and bumps the exhausted counter.
func TestRetryExhaustion(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewClientMetrics(reg)
	c, st, _ := retryClient([]int{503, 503, 503, 503}, WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseBackoff: time.Millisecond, Jitter: 0,
	}), WithMetrics(m))
	err := c.SetThreshold("a", "b", 3)
	var se *ServerError
	if !errors.As(err, &se) || se.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("error = %v, want the final 503", err)
	}
	if st.calls != 3 {
		t.Fatalf("%d attempts, want 3", st.calls)
	}
	if got := m.Exhausted.With("/v1/thresholds").Value(); got != 1 {
		t.Errorf("exhausted counter = %v, want 1", got)
	}
	if got := m.Retries.With("/v1/thresholds").Value(); got != 2 {
		t.Errorf("retries counter = %v, want 2", got)
	}
}

// TestRetryRespectsCancellation checks that a cancelled base context stops
// the retry loop between attempts instead of burning the remaining budget.
func TestRetryRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st := &scriptedTransport{script: []int{503, 503, 503}}
	c := NewClient("http://scripted",
		WithTransport(st),
		WithBaseContext(ctx),
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Jitter: 0}),
		// Cancel during the first backoff: the loop must notice before
		// launching attempt two.
		WithBackoffSleep(func(time.Duration) { cancel() }),
	)
	err := c.SetThreshold("a", "b", 3)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if st.calls != 1 {
		t.Fatalf("%d attempts after cancellation, want 1", st.calls)
	}
}

// TestMutationKeysAreUnique checks that separate logical calls never share
// an idempotency key (sharing one would silently drop the second call),
// and that GETs carry none.
func TestMutationKeysAreUnique(t *testing.T) {
	c, st, _ := retryClient(nil)
	if err := c.SetThreshold("a", "b", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReportTransfers(policy.CompletionReport{TransferIDs: []string{"t-00000001"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Dump(); err != nil {
		t.Fatal(err)
	}
	if len(st.keys) != 3 {
		t.Fatalf("%d attempts, want 3", len(st.keys))
	}
	if st.keys[0] == "" || st.keys[1] == "" || st.keys[0] == st.keys[1] {
		t.Errorf("mutation keys not unique: %q, %q", st.keys[0], st.keys[1])
	}
	if st.keys[2] != "" {
		t.Errorf("GET carried idempotency key %q", st.keys[2])
	}
}
