package policyhttp

import (
	"errors"
	"net/http/httptest"
	"testing"

	"policyflow/internal/policy"
)

// replicaSet starts n policy services behind test servers.
func replicaSet(t *testing.T, n int) ([]*httptest.Server, []*policy.Service, []*Client) {
	t.Helper()
	var servers []*httptest.Server
	var services []*policy.Service
	var clients []*Client
	for i := 0; i < n; i++ {
		cfg := policy.DefaultConfig()
		svc, err := policy.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewServer(svc, nil))
		t.Cleanup(ts.Close)
		servers = append(servers, ts)
		services = append(services, svc)
		clients = append(clients, NewClient(ts.URL))
	}
	return servers, services, clients
}

func TestReplicasStayIdentical(t *testing.T) {
	_, services, clients := replicaSet(t, 3)
	rc, err := NewReplicatedClient(clients...)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1"), testSpec(2, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Transfers) != 2 {
		t.Fatalf("advice = %+v", adv)
	}
	if _, err := rc.ReportTransfers(policy.CompletionReport{
		TransferIDs: []string{adv.Transfers[0].ID},
	}); err != nil {
		t.Fatal(err)
	}
	// All replicas hold identical state (deterministic replication).
	want := services[0].ExportState()
	for i := 1; i < 3; i++ {
		got := services[i].ExportState()
		if len(got.Transfers) != len(want.Transfers) ||
			len(got.Resources) != len(want.Resources) ||
			got.NextTransfer != want.NextTransfer {
			t.Fatalf("replica %d diverged: %+v vs %+v", i, got, want)
		}
	}
	// In-flight count matches on every replica: 1 remaining.
	for i, svc := range services {
		if snap := svc.Snapshot(); snap.InFlight != 1 {
			t.Fatalf("replica %d InFlight = %d", i, snap.InFlight)
		}
	}
}

func TestFailoverOnPrimaryDeath(t *testing.T) {
	servers, _, clients := replicaSet(t, 2)
	rc, err := NewReplicatedClient(clients...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	// Kill the primary. The next call fails over to the secondary, whose
	// memory already contains the in-progress transfer: the duplicate is
	// suppressed exactly as the primary would have.
	servers[0].Close()
	adv, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf2")})
	if err != nil {
		t.Fatalf("failover failed: %v", err)
	}
	if len(adv.Removed) != 1 || adv.Removed[0].Reason != "in-progress" {
		t.Fatalf("secondary lost state: %+v", adv)
	}
	if healthy := rc.Healthy(); len(healthy) != 1 || healthy[0] != 1 {
		t.Fatalf("healthy = %v", healthy)
	}
}

func TestAllReplicasDown(t *testing.T) {
	servers, _, clients := replicaSet(t, 2)
	rc, err := NewReplicatedClient(clients...)
	if err != nil {
		t.Fatal(err)
	}
	servers[0].Close()
	servers[1].Close()
	if _, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
}

func TestResyncRecoversReplica(t *testing.T) {
	_, services, clients := replicaSet(t, 2)
	rc, err := NewReplicatedClient(clients...)
	if err != nil {
		t.Fatal(err)
	}
	// Build state through the replicated client.
	adv, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}
	// Simulate replica 1 losing its memory (fresh restart).
	blank, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := services[1].ImportState(blank.ExportState()); err != nil {
		t.Fatal(err)
	}
	if snap := services[1].Snapshot(); snap.StagedResources != 0 {
		t.Fatal("replica 1 should be blank")
	}
	// Resync from replica 0.
	if err := rc.Resync(1); err != nil {
		t.Fatal(err)
	}
	if snap := services[1].Snapshot(); snap.StagedResources != 1 {
		t.Fatalf("resync did not restore state: %+v", snap)
	}
	// The resynced replica suppresses duplicates like the primary.
	adv2, err := clients[1].AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv2.Removed) != 1 || adv2.Removed[0].Reason != "already-staged" {
		t.Fatalf("resynced replica advice = %+v", adv2)
	}
}

func TestResyncValidation(t *testing.T) {
	_, _, clients := replicaSet(t, 1)
	rc, err := NewReplicatedClient(clients...)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Resync(5); err == nil {
		t.Error("out-of-range index accepted")
	}
	// With a single replica there is no peer to resync from.
	if err := rc.Resync(0); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("err = %v, want ErrNoReplicas", err)
	}
	if _, err := NewReplicatedClient(); err == nil {
		t.Error("empty replica set accepted")
	}
}

func TestDumpRestoreOverHTTP(t *testing.T) {
	for _, mode := range []string{"json", "xml"} {
		t.Run(mode, func(t *testing.T) {
			_, _, clients := replicaSet(t, 2)
			a, b := clients[0], clients[1]
			if mode == "xml" {
				a = NewClient(a.base, WithXML())
				b = NewClient(b.base, WithXML())
			}
			adv, err := a.AdviseTransfers([]policy.TransferSpec{testSpec(7, "wf1")})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
				t.Fatal(err)
			}
			dump, err := a.Dump()
			if err != nil {
				t.Fatal(err)
			}
			if len(dump.Resources) != 1 || !dump.Resources[0].Staged {
				t.Fatalf("dump = %+v", dump)
			}
			if err := b.Restore(dump); err != nil {
				t.Fatal(err)
			}
			st, err := b.State()
			if err != nil {
				t.Fatal(err)
			}
			if st.StagedResources != 1 {
				t.Fatalf("restored state = %+v", st)
			}
		})
	}
}
