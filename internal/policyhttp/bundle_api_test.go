package policyhttp

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"policyflow/internal/policy"
)

const testBundleDoc = `{
  "schemaVersion": 1,
  "version": "api-v1",
  "description": "api test bundle",
  "algorithm": "greedy",
  "defaultStreams": 2,
  "minStreams": 1,
  "defaultThreshold": 7,
  "clusterFactor": 1,
  "pairThresholds": [
    {"sourceHost": "src.example.org", "destHost": "dst.example.org", "max": 5}
  ]
}`

// TestBundleLifecycleOverHTTP walks the client through push, status,
// activate, decision attribution and rollback.
func TestBundleLifecycleOverHTTP(t *testing.T) {
	ts, svc := newTestServer(t)
	c := NewClient(ts.URL)

	info, err := c.PushBundle([]byte(testBundleDoc))
	if err != nil {
		t.Fatalf("PushBundle: %v", err)
	}
	if !info.Staged || info.Active || info.Version != "api-v1" {
		t.Fatalf("pushed info %+v", info)
	}

	st, err := c.Bundles()
	if err != nil {
		t.Fatalf("Bundles: %v", err)
	}
	if st.Active.Version != policy.BootstrapBundleVersion || len(st.Staged) != 1 {
		t.Fatalf("status before activation %+v", st)
	}

	info, err = c.ActivateBundle("api-v1")
	if err != nil {
		t.Fatalf("ActivateBundle: %v", err)
	}
	if !info.Active || info.Version != "api-v1" {
		t.Fatalf("activation info %+v", info)
	}

	// Work done now is attributed to api-v1 and filterable by it.
	if _, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Decisions(0, "", "", "", "api-v1")
	if err != nil {
		t.Fatalf("Decisions: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("no decisions attributed to api-v1")
	}
	for _, rec := range recs {
		if rec.Bundle != "api-v1" {
			t.Fatalf("bundle filter leaked record %+v", rec)
		}
	}
	if recs, err = c.Decisions(0, "", "", "", "no-such-bundle"); err != nil || len(recs) != 0 {
		t.Fatalf("filter for unknown bundle: %d records, err %v", len(recs), err)
	}

	info, err = c.RollbackBundle()
	if err != nil {
		t.Fatalf("RollbackBundle: %v", err)
	}
	if info.Version != policy.BootstrapBundleVersion {
		t.Fatalf("rollback landed on %q", info.Version)
	}
	if got := svc.Tunables().Version; got != policy.BootstrapBundleVersion {
		t.Fatalf("service active bundle %q after rollback", got)
	}
}

// TestBundlePushRejectsMalformedWith400 pins the status mapping: invalid
// documents are client errors, never 500s.
func TestBundlePushRejectsMalformedWith400(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := map[string]string{
		"syntax":         `{"schemaVersion": 1,`,
		"unknown-schema": `{"schemaVersion": 99, "version": "x", "algorithm": "greedy", "defaultStreams": 1, "minStreams": 1, "defaultThreshold": 1, "clusterFactor": 1}`,
		"unknown-field":  `{"schemaVersion": 1, "version": "x", "algorithm": "greedy", "defaultStreams": 1, "minStreams": 1, "defaultThreshold": 1, "clusterFactor": 1, "surprise": 1}`,
		"bad-values":     `{"schemaVersion": 1, "version": "x", "algorithm": "greedy", "defaultStreams": 0, "minStreams": 1, "defaultThreshold": 1, "clusterFactor": 1}`,
	}
	for name, doc := range cases {
		for _, path := range []string{"/v1/bundles", "/v1/bundles/activate"} {
			body := doc
			method := http.MethodPut
			if path == "/v1/bundles/activate" {
				method = http.MethodPost
				if name == "syntax" {
					continue // the envelope itself would be unparseable
				}
				body = fmt.Sprintf(`{"bundle": %s}`, doc)
			}
			req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s (%s): status %d, want 400", method, path, name, resp.StatusCode)
			}
		}
	}
}

// TestBundleActivateRequiresExactlyOneMode pins the request contract.
func TestBundleActivateRequiresExactlyOneMode(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, body := range []string{
		`{}`,
		fmt.Sprintf(`{"version": "v", "bundle": %s}`, testBundleDoc),
		`{"version": "v", "rollback": true}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/bundles/activate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("activate %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestBundlePushIsJSONOnly: bundle documents are canonical JSON (the
// checksum is defined over it), so XML payloads are refused up front.
func TestBundlePushIsJSONOnly(t *testing.T) {
	ts, _ := newTestServer(t)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/bundles", strings.NewReader("<bundle/>"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("XML push: status %d, want 415", resp.StatusCode)
	}
	if _, err := NewClient(ts.URL, WithXML()).PushBundle([]byte(testBundleDoc)); err == nil {
		t.Fatal("XML-mode client pushed a bundle")
	}
}

// TestBundleStatusETag: the inventory answers 304 when the active
// checksum has not moved, and re-validates after an activation.
func TestBundleStatusETag(t *testing.T) {
	ts, _ := newTestServer(t)

	get := func(etag string) (*http.Response, error) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/bundles", nil)
		if err != nil {
			return nil, err
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		return http.DefaultClient.Do(req)
	}

	resp, err := get("")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("GET /v1/bundles: status %d, ETag %q", resp.StatusCode, etag)
	}

	resp, err = get(etag)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET with current ETag: status %d, want 304", resp.StatusCode)
	}

	c := NewClient(ts.URL)
	if _, err := c.ActivateBundleDoc([]byte(testBundleDoc)); err != nil {
		t.Fatalf("ActivateBundleDoc: %v", err)
	}
	resp, err = get(etag)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("conditional GET after activation: status %d, want 200", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("api-v1")) {
		t.Fatalf("inventory after activation misses api-v1: %s", buf.String())
	}
}
