package policyhttp

import (
	"net/http"
	"sync"
)

// idemEntry records the response produced by the first application of an
// idempotency key. done is closed once the response is recorded, so
// concurrent duplicates wait for the original instead of re-applying.
type idemEntry struct {
	done   chan struct{}
	code   int
	header http.Header
	body   []byte
}

// idemCache is a bounded single-flight response cache keyed by the
// client-supplied Idempotency-Key header. The first request with a given
// key executes; duplicates (retries after a lost response, duplicated
// deliveries) receive the recorded response without re-applying the
// mutation — at-most-once application per key.
type idemCache struct {
	mu      sync.Mutex
	entries map[string]*idemEntry
	order   []string // insertion order, for FIFO eviction
	cap     int
}

// defaultIdemCap bounds retained responses; retries arrive within seconds,
// so a small window of recent mutations is ample.
const defaultIdemCap = 1024

func newIdemCache(capacity int) *idemCache {
	if capacity <= 0 {
		capacity = defaultIdemCap
	}
	return &idemCache{entries: make(map[string]*idemEntry), cap: capacity}
}

// begin claims key. first=true means the caller must execute the request
// and record the outcome with finish; first=false returns the (possibly
// still pending) entry to replay after waiting on entry.done.
func (c *idemCache) begin(key string) (entry *idemEntry, first bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, false
	}
	e := &idemEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	for len(c.order) > c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	return e, true
}

// finish records the response for a claimed key and releases waiters.
func (c *idemCache) finish(e *idemEntry, code int, header http.Header, body []byte) {
	e.code = code
	e.header = header
	e.body = body
	close(e.done)
}

// forget records the response for waiters already parked on the entry but
// removes the key from the cache, so the next request carrying the same
// key executes afresh instead of replaying. Used for responses that
// guarantee the mutation was never applied (shed, draining, abandoned):
// caching those would turn a client's post-backoff retry into a replayed
// rejection.
func (c *idemCache) forget(key string, e *idemEntry, code int, header http.Header, body []byte) {
	c.mu.Lock()
	if c.entries[key] == e {
		delete(c.entries, key)
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
	c.mu.Unlock()
	c.finish(e, code, header, body)
}

// captureWriter buffers a handler's response so it can be recorded in the
// idempotency cache and then copied to the real writer.
type captureWriter struct {
	header http.Header
	code   int
	body   []byte
}

func newCaptureWriter() *captureWriter {
	return &captureWriter{header: make(http.Header), code: http.StatusOK}
}

func (w *captureWriter) Header() http.Header { return w.header }

func (w *captureWriter) WriteHeader(code int) { w.code = code }

func (w *captureWriter) Write(p []byte) (int, error) {
	w.body = append(w.body, p...)
	return len(p), nil
}

// writeEntry copies a recorded response to the real writer, marking it as
// replayed when replay is true.
func writeEntry(w http.ResponseWriter, e *idemEntry, replay bool) {
	for k, vs := range e.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if replay {
		w.Header().Set(IdempotencyReplayedHeader, "true")
	}
	w.WriteHeader(e.code)
	w.Write(e.body)
}

// idempotent wraps a mutating handler with at-most-once semantics per
// Idempotency-Key header. Requests without the header pass through
// unchanged (the pre-retry wire behaviour).
func (s *Server) idempotent(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get(IdempotencyKeyHeader)
		if key == "" {
			h(w, r)
			return
		}
		e, first := s.idem.begin(key)
		if !first {
			<-e.done
			s.idemReplays.Inc()
			writeEntry(w, e, true)
			return
		}
		cw := newCaptureWriter()
		h(cw, r)
		if notApplied(cw.code) {
			s.idem.forget(key, e, cw.code, cw.header, cw.body)
		} else {
			s.idem.finish(e, cw.code, cw.header, cw.body)
		}
		writeEntry(w, e, false)
	}
}

// notApplied reports response codes that promise the mutation had no side
// effect: admission shed (429), draining or standby (503), abandoned
// because the client's context ended while queued (408), and fenced (412 —
// the epoch fence refused the request before the handler ran; defensive
// here, since the fence wraps outside this cache). These must not enter
// the idempotency cache — the whole point of the client retrying under the
// same key is that the next attempt may be admitted (or re-routed to the
// primary, for 412).
func notApplied(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusRequestTimeout ||
		code == http.StatusPreconditionFailed
}
