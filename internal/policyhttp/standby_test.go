package policyhttp

import (
	"context"
	"testing"
	"time"

	"policyflow/internal/policy"
)

func TestStandbySyncOnce(t *testing.T) {
	_, services, clients := replicaSet(t, 1)
	primary := clients[0]
	// Put state on the primary.
	adv, err := primary.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}
	standby, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	syncer, err := NewStandbySyncer(standby, primary, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := syncer.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if snap := standby.Snapshot(); snap.StagedResources != 1 {
		t.Fatalf("standby state = %+v", snap)
	}
	// Standby continues with identical semantics after primary death.
	_ = services
	adv2, err := standby.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv2.Removed) != 1 || adv2.Removed[0].Reason != "already-staged" {
		t.Fatalf("standby advice = %+v", adv2)
	}
	if syncs, fails := syncer.Stats(); syncs != 1 || fails != 0 {
		t.Fatalf("stats = %d, %d", syncs, fails)
	}
}

func TestStandbyRunLoop(t *testing.T) {
	servers, _, clients := replicaSet(t, 1)
	standby, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	synced := make(chan error, 16)
	syncer, err := NewStandbySyncer(standby, clients[0], 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	syncer.OnSync = func(err error) { synced <- err }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go syncer.Run(ctx)
	// First sync succeeds.
	select {
	case err := <-synced:
		if err != nil {
			t.Fatalf("first sync: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no sync within deadline")
	}
	// After the primary dies, syncs fail but the loop keeps running.
	servers[0].Close()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case err := <-synced:
			if err != nil {
				return // observed a failed sync: loop survived the outage
			}
		case <-deadline:
			t.Fatal("no failed sync observed after primary death")
		}
	}
}

func TestStandbyValidation(t *testing.T) {
	if _, err := NewStandbySyncer(nil, nil, 0); err == nil {
		t.Fatal("nil arguments accepted")
	}
}
