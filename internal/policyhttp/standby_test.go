package policyhttp

import (
	"context"
	"testing"
	"time"

	"policyflow/internal/policy"
)

func TestStandbySyncOnce(t *testing.T) {
	_, services, clients := replicaSet(t, 1)
	primary := clients[0]
	// Put state on the primary.
	adv, err := primary.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}
	standby, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	syncer, err := NewStandbySyncer(standby, primary, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := syncer.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if snap := standby.Snapshot(); snap.StagedResources != 1 {
		t.Fatalf("standby state = %+v", snap)
	}
	// Standby continues with identical semantics after primary death.
	_ = services
	adv2, err := standby.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv2.Removed) != 1 || adv2.Removed[0].Reason != "already-staged" {
		t.Fatalf("standby advice = %+v", adv2)
	}
	if syncs, fails := syncer.Stats(); syncs != 1 || fails != 0 {
		t.Fatalf("stats = %d, %d", syncs, fails)
	}
}

// TestStandbyRunLoop drives Run through an injected tick channel, so the
// test is deterministic: exactly one sync per tick, no real timers, no
// deadlines racing the scheduler.
func TestStandbyRunLoop(t *testing.T) {
	servers, _, clients := replicaSet(t, 1)
	standby, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	synced := make(chan error)
	syncer, err := NewStandbySyncer(standby, clients[0], time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ticks := make(chan time.Time)
	syncer.Ticks = ticks
	syncer.OnSync = func(err error) { synced <- err }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		syncer.Run(ctx)
		close(done)
	}()

	// First tick: the primary is healthy, the sync succeeds.
	ticks <- time.Time{}
	if err := <-synced; err != nil {
		t.Fatalf("first sync: %v", err)
	}
	// After the primary dies, syncs fail but the loop keeps running.
	servers[0].Close()
	ticks <- time.Time{}
	if err := <-synced; err == nil {
		t.Fatal("sync against a dead primary reported success")
	}
	// The loop survived the failure: it still answers the next tick.
	ticks <- time.Time{}
	if err := <-synced; err == nil {
		t.Fatal("sync against a dead primary reported success")
	}
	if syncs, fails := syncer.Stats(); syncs != 1 || fails != 2 {
		t.Fatalf("stats = %d syncs, %d failures; want 1, 2", syncs, fails)
	}
	// Cancellation stops the loop.
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
}

func TestStandbyValidation(t *testing.T) {
	if _, err := NewStandbySyncer(nil, nil, 0); err == nil {
		t.Fatal("nil arguments accepted")
	}
}
