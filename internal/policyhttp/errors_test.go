package policyhttp

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"policyflow/internal/policy"
)

func TestClientDecodesServerErrors(t *testing.T) {
	for _, mode := range []string{"json", "xml"} {
		t.Run(mode, func(t *testing.T) {
			ts, _ := newTestServer(t)
			var c *Client
			if mode == "xml" {
				c = NewClient(ts.URL, WithXML())
			} else {
				c = NewClient(ts.URL)
			}
			// Empty transfer list -> structured error body.
			_, err := c.AdviseTransfers(nil)
			if err == nil {
				t.Fatal("no error for empty request")
			}
			if !strings.Contains(err.Error(), "empty request") {
				t.Fatalf("error body not decoded: %v", err)
			}
		})
	}
}

func TestClientAgainstNonPolicyServer(t *testing.T) {
	// A server that returns plain-text errors (no ErrorDoc).
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	_, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf")})
	if err == nil || !strings.Contains(err.Error(), "418") {
		t.Fatalf("err = %v", err)
	}
	if err := c.Healthz(); err == nil {
		t.Fatal("health against teapot succeeded")
	}
}

func TestClientConnectionRefused(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens there
	if _, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf")}); err == nil {
		t.Fatal("no error for refused connection")
	}
	if _, err := c.Dump(); err == nil {
		t.Fatal("dump succeeded against nothing")
	}
	if err := c.Restore(&policy.StateDump{}); err == nil {
		t.Fatal("restore succeeded against nothing")
	}
	if _, err := c.State(); err == nil {
		t.Fatal("state succeeded against nothing")
	}
	if _, err := c.ReportCleanups(policy.CleanupReport{CleanupIDs: []string{"x"}}); err == nil {
		t.Fatal("report succeeded against nothing")
	}
}

func TestRestoreMalformedBody(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/state/restore", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestReplicatedStateAndThreshold(t *testing.T) {
	_, services, clients := replicaSet(t, 2)
	rc, err := NewReplicatedClient(clients...)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.SetThreshold("a.example.org", "b.example.org", 7); err != nil {
		t.Fatal(err)
	}
	// Both replicas got the threshold.
	for i, svc := range services {
		adv, err := svc.AdviseTransfers([]policy.TransferSpec{{
			RequestID: "r", WorkflowID: "wf",
			SourceURL: "gsiftp://a.example.org/f", DestURL: "file://b.example.org/f",
			RequestedStreams: 50,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if adv.Transfers[0].Streams != 7 {
			t.Fatalf("replica %d threshold not applied: %d", i, adv.Transfers[0].Streams)
		}
	}
	st, err := rc.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.InFlight != 1 { // State() reads the first replica, which holds
		// the one transfer advised directly against it above
		t.Fatalf("state = %+v", st)
	}
	if _, err := rc.AdviseCleanups([]policy.CleanupSpec{{
		RequestID: "c", WorkflowID: "wf", FileURL: "file://b.example.org/f",
	}}); err != nil {
		t.Fatal(err)
	}
}
