package policyhttp

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"policyflow/internal/obs"
	"policyflow/internal/policy"
	"policyflow/internal/simnet"
	"policyflow/internal/transfer"
	"policyflow/internal/workflow"
)

func TestConfigEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, frag := range []string{`"algorithm":"greedy"`, `"defaultThreshold":50`, `"defaultStreams":4`} {
		if !strings.Contains(string(body), frag) {
			t.Errorf("config missing %s: %s", frag, body)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	adv, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1"), testSpec(2, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, frag := range []string{
		"policy_transfers_advised_total 2",
		"policy_transfers_suppressed_total 0",
		"policy_transfers_in_flight 1",
		"policy_staged_files 1",
		`policy_streams_allocated{src="src.example.org",dst="dst.example.org"} 4`,
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("metrics missing %q:\n%s", frag, text)
		}
	}
}

// validatePrometheusFormat parses a text-format scrape and fails the test
// unless it satisfies the Prometheus exposition format: every sample line
// must belong to a family announced by preceding # HELP and # TYPE
// comments, histogram families must expose only _bucket/_sum/_count
// series, and every sample value must parse as a float.
func validatePrometheusFormat(t *testing.T, text string) map[string]string {
	t.Helper()
	types := map[string]string{}
	help := map[string]bool{}
	for i, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			name, h, ok := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			if !ok || h == "" {
				t.Errorf("line %d: HELP without text: %q", i+1, line)
			}
			help[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			name, kind, ok := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("line %d: unknown metric kind %q", i+1, kind)
			}
			if !help[name] {
				t.Errorf("line %d: TYPE for %s precedes its HELP", i+1, name)
			}
			if _, dup := types[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", i+1, name)
			}
			types[name] = kind
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unrecognized comment: %q", i+1, line)
		default:
			name := line
			if j := strings.IndexAny(line, "{ "); j >= 0 {
				name = line[:j]
			}
			fam := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suf); base != name && types[base] == "histogram" {
					fam = base
				}
			}
			kind, ok := types[fam]
			if !ok {
				t.Errorf("line %d: sample %s has no preceding HELP/TYPE", i+1, name)
				continue
			}
			if kind == "histogram" && fam == name {
				t.Errorf("line %d: bare series %s under histogram family", i+1, name)
			}
			val := line[strings.LastIndex(line, " ")+1:]
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Errorf("line %d: sample value %q: %v", i+1, val, err)
			}
		}
	}
	return types
}

// TestMetricsPrometheusFormat drives HTTP traffic and a PTT sharing the
// server's registry, then checks the /v1/metrics scrape is format-valid
// and carries both per-endpoint request latency histograms and
// per-host-pair transfer series.
func TestMetricsPrometheusFormat(t *testing.T) {
	cfg := policy.DefaultConfig()
	cfg.DefaultThreshold = 50
	cfg.DefaultStreams = 4
	svc, err := policy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ts := httptest.NewServer(NewServerWith(svc, nil, reg, nil))
	defer ts.Close()
	c := NewClient(ts.URL)

	adv, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1"), testSpec(2, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Get(ts.URL + "/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	// A Policy-based Transfer Tool sharing the registry contributes the
	// per-host-pair transfer histograms to the same scrape.
	env := simnet.NewEnv(1)
	fab := transfer.NewSimFabric(env, func(policy.HostPair) simnet.PipeConfig {
		pc := simnet.WANConfig()
		pc.FlowJitterSigma = 0
		pc.CapacityJitterSigma = 0
		pc.FailureHazard = 0
		return pc
	})
	ptt, err := transfer.New(transfer.Config{
		Advisor: svc, Fabric: fab, DefaultStreams: 4, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Go("task", func(p *simnet.Proc) {
		ops := []workflow.TransferOp{
			{
				FileName:  "p1",
				SourceURL: "gsiftp://src.example.org/data/p1",
				DestURL:   "file://dst.example.org/scratch/p1",
				SizeBytes: 4 << 20,
			},
			{
				FileName:  "p2",
				SourceURL: "gsiftp://src.example.org/data/p2",
				DestURL:   "file://dst.example.org/scratch/p2",
				SizeBytes: 4 << 20,
			},
		}
		if err := ptt.ExecuteList(p, "wf1", "g1", ops, 0); err != nil {
			t.Errorf("ExecuteList: %v", err)
		}
	})
	env.Run(0)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)

	types := validatePrometheusFormat(t, text)
	for fam, kind := range map[string]string{
		"http_requests_total":        "counter",
		"http_request_seconds":       "histogram",
		"policy_request_seconds":     "histogram",
		"policy_transfers_in_flight": "gauge",
		"transfer_size_bytes":        "histogram",
		"transfer_duration_seconds":  "histogram",
	} {
		if types[fam] != kind {
			t.Errorf("family %s: type %q, want %q", fam, types[fam], kind)
		}
	}
	for _, frag := range []string{
		// Per-endpoint request accounting, exact counts: the PTT talks to
		// the service in-process, so only our own calls are counted.
		`http_requests_total{endpoint="POST /v1/transfers",code="200"} 1`,
		`http_requests_total{endpoint="POST /v1/transfers/completed",code="200"} 1`,
		`http_requests_total{endpoint="unmatched",code="404"} 1`,
		`http_request_seconds_bucket{endpoint="POST /v1/transfers",le="+Inf"} 1`,
		`http_request_seconds_count{endpoint="POST /v1/transfers"} 1`,
		// Per-host-pair transfer series from the shared-registry PTT.
		`transfer_size_bytes_count{src="src.example.org",dst="dst.example.org"} 2`,
		`transfer_executed_total{src="src.example.org",dst="dst.example.org"} 2`,
		`policy_streams_allocated{src="src.example.org",dst="dst.example.org"}`,
		// Per-op policy service latency histograms.
		`policy_request_seconds_count{op="advise_transfers"}`,
		`policy_request_seconds_count{op="report_transfers"}`,
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("scrape missing %q", frag)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", text)
	}
}

// metricName is the naming rule every exported family must obey: lowercase
// words joined by underscores, nothing else.
var metricName = regexp.MustCompile(`^[a-z_]+$`)

// TestMetricsConformance is the scrape self-check: after traffic has
// touched every endpoint class, each exported family must carry exactly
// one HELP and one TYPE line, every family and series name must match
// ^[a-z_]+$, and no series may be emitted twice. It guards against a
// hand-rolled exporter drifting out of the Prometheus exposition format
// as metrics are added.
func TestMetricsConformance(t *testing.T) {
	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewJSONLTracer(io.Discard)
	// Mirror the cmd/policyserver wiring so the drop counter is scraped.
	tracer.SetDropCounter(reg.Counter("obs_trace_dropped_total",
		"Trace events discarded because the JSONL sink failed.").With())
	ts := httptest.NewServer(NewServerWith(svc, nil, reg, tracer))
	defer ts.Close()
	c := NewClient(ts.URL)

	// One request per endpoint class, including an error and a 404, so
	// every label dimension the server knows materializes in the scrape.
	adv, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1"), testSpec(2, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReportTransfers(policy.CompletionReport{
		TransferIDs: []string{adv.Transfers[0].ID},
		FailedIDs:   []string{adv.Transfers[1].ID},
	}); err != nil {
		t.Fatal(err)
	}
	cadv, err := c.AdviseCleanups([]policy.CleanupSpec{{RequestID: "c1", WorkflowID: "wf1", FileURL: testSpec(1, "wf1").DestURL}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cadv.Cleanups) == 1 {
		if _, err := c.ReportCleanups(policy.CleanupReport{CleanupIDs: []string{cadv.Cleanups[0].ID}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetThreshold("src.example.org", "dst.example.org", 16); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decisions(0, "", "", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AdviseTransfers(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if resp, err := http.Get(ts.URL + "/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	validatePrometheusFormat(t, text)

	helpCount := map[string]int{}
	typeCount := map[string]int{}
	seen := map[string]bool{}
	for i, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			if !metricName.MatchString(name) {
				t.Errorf("line %d: family name %q violates [a-z_]+", i+1, name)
			}
			helpCount[name]++
		case strings.HasPrefix(line, "# TYPE "):
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			typeCount[name]++
		default:
			name := line
			if j := strings.IndexAny(line, "{ "); j >= 0 {
				name = line[:j]
			}
			if !metricName.MatchString(name) {
				t.Errorf("line %d: series name %q violates [a-z_]+", i+1, name)
			}
			series := line[:strings.LastIndex(line, " ")]
			if seen[series] {
				t.Errorf("line %d: series %s emitted twice", i+1, series)
			}
			seen[series] = true
		}
	}
	for name, n := range helpCount {
		if n != 1 {
			t.Errorf("family %s has %d HELP lines", name, n)
		}
		if typeCount[name] != 1 {
			t.Errorf("family %s has %d TYPE lines", name, typeCount[name])
		}
	}
	for _, fam := range []string{"obs_trace_dropped_total", "http_requests_total", "policy_request_seconds"} {
		if helpCount[fam] == 0 {
			t.Errorf("scrape missing family %s", fam)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", text)
	}
}

// TestServerTraceEvents attaches a JSONL tracer to the HTTP server and
// verifies the lifecycle events a client's calls produce decode back in
// order.
func TestServerTraceEvents(t *testing.T) {
	cfg := policy.DefaultConfig()
	svc, err := policy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := obs.NewJSONLTracer(&buf)
	ts := httptest.NewServer(NewServerWith(svc, nil, obs.NewRegistry(), tracer))
	defer ts.Close()
	c := NewClient(ts.URL)

	adv, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	id := adv.Transfers[0].ID
	if _, err := c.ReportTransfers(policy.CompletionReport{TransferIDs: []string{id}}); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range events {
		if e.TransferID == id {
			got = append(got, e.Type)
		}
	}
	want := []string{obs.EventSubmitted, obs.EventAdvised, obs.EventCompleted}
	if len(got) != len(want) {
		t.Fatalf("event types = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event types = %v, want %v", got, want)
		}
	}
	for _, e := range events {
		if e.Type == obs.EventAdvised && e.TransferID == id {
			if e.WorkflowID != "wf1" || e.SourceHost == "" || e.DestHost == "" || e.Streams == 0 {
				t.Errorf("advised event missing context: %+v", e)
			}
		}
	}
}

// TestConcurrentClients hammers the service from many goroutines; run
// under -race this verifies the full HTTP + rule-engine path is
// thread-safe, and the final accounting must balance.
func TestConcurrentClients(t *testing.T) {
	ts, svc := newTestServer(t)
	const workers = 8
	const perWorker = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(ts.URL)
			for i := 0; i < perWorker; i++ {
				spec := policy.TransferSpec{
					RequestID:  fmt.Sprintf("w%d-r%d", w, i),
					WorkflowID: fmt.Sprintf("wf%d", w),
					SourceURL:  fmt.Sprintf("gsiftp://src.example.org/w%d/f%d", w, i),
					DestURL:    fmt.Sprintf("file://dst.example.org/w%d/f%d", w, i),
				}
				adv, err := c.AdviseTransfers([]policy.TransferSpec{spec})
				if err != nil {
					errs <- err
					return
				}
				if len(adv.Transfers) != 1 {
					errs <- fmt.Errorf("worker %d: advice %+v", w, adv)
					return
				}
				if _, err := c.ReportTransfers(policy.CompletionReport{
					TransferIDs: []string{adv.Transfers[0].ID},
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := svc.Snapshot()
	if snap.InFlight != 0 {
		t.Fatalf("in-flight after all completions: %+v", snap)
	}
	if snap.StagedResources != workers*perWorker {
		t.Fatalf("staged = %d, want %d", snap.StagedResources, workers*perWorker)
	}
	for _, p := range snap.Pairs {
		if p.Allocated != 0 {
			t.Fatalf("streams leaked: %+v", p)
		}
	}
}
