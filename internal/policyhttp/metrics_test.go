package policyhttp

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"policyflow/internal/policy"
)

func TestConfigEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, frag := range []string{`"algorithm":"greedy"`, `"defaultThreshold":50`, `"defaultStreams":4`} {
		if !strings.Contains(string(body), frag) {
			t.Errorf("config missing %s: %s", frag, body)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	adv, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1"), testSpec(2, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, frag := range []string{
		"policy_transfers_advised_total 2",
		"policy_transfers_suppressed_total 0",
		"policy_transfers_in_flight 1",
		"policy_staged_files 1",
		`policy_streams_allocated{src="src.example.org",dst="dst.example.org"} 4`,
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("metrics missing %q:\n%s", frag, text)
		}
	}
}

// TestConcurrentClients hammers the service from many goroutines; run
// under -race this verifies the full HTTP + rule-engine path is
// thread-safe, and the final accounting must balance.
func TestConcurrentClients(t *testing.T) {
	ts, svc := newTestServer(t)
	const workers = 8
	const perWorker = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(ts.URL)
			for i := 0; i < perWorker; i++ {
				spec := policy.TransferSpec{
					RequestID:  fmt.Sprintf("w%d-r%d", w, i),
					WorkflowID: fmt.Sprintf("wf%d", w),
					SourceURL:  fmt.Sprintf("gsiftp://src.example.org/w%d/f%d", w, i),
					DestURL:    fmt.Sprintf("file://dst.example.org/w%d/f%d", w, i),
				}
				adv, err := c.AdviseTransfers([]policy.TransferSpec{spec})
				if err != nil {
					errs <- err
					return
				}
				if len(adv.Transfers) != 1 {
					errs <- fmt.Errorf("worker %d: advice %+v", w, adv)
					return
				}
				if err := c.ReportTransfers(policy.CompletionReport{
					TransferIDs: []string{adv.Transfers[0].ID},
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := svc.Snapshot()
	if snap.InFlight != 0 {
		t.Fatalf("in-flight after all completions: %+v", snap)
	}
	if snap.StagedResources != workers*perWorker {
		t.Fatalf("staged = %d, want %d", snap.StagedResources, workers*perWorker)
	}
	for _, p := range snap.Pairs {
		if p.Allocated != 0 {
			t.Fatalf("streams leaked: %+v", p)
		}
	}
}
