package policyhttp

import (
	"context"
	"testing"
	"time"

	"policyflow/internal/policy"
)

// hasThreshold reports whether svc's exported state carries the marker
// threshold the delta tests plant out-of-band.
func hasThreshold(svc *policy.Service, src, dst string, max int) bool {
	for _, th := range svc.ExportState().Thresholds {
		if th.Src == src && th.Dst == dst && th.Max == max {
			return true
		}
	}
	return false
}

// TestStandbyDeltaSyncAppliesOnlyTail proves the steady-state sync is
// O(delta), not O(state): a marker planted in the standby between syncs
// survives the second sync (a full restore would erase it — ImportState
// resets the session), while the donor's new WAL records still arrive.
// Reset then forces the full path and the marker disappears.
func TestStandbyDeltaSyncAppliesOnlyTail(t *testing.T) {
	_, donorSvc, donorClient, ps := durableReplica(t, t.TempDir())
	defer ps.Close()
	local, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStandbySyncer(local, donorClient, time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := donorClient.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncOnce(); err != nil {
		t.Fatalf("initial full sync: %v", err)
	}
	if !s.primed {
		t.Fatal("first archive sync did not prime the delta cursor")
	}
	if got := len(local.ExportState().Transfers); got != 1 {
		t.Fatalf("standby holds %d transfers after full sync, want 1", got)
	}

	// Plant a marker the donor does not have, then grow the donor's WAL.
	if err := local.SetThreshold("mark", "er", 7); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 3; i++ {
		if _, err := donorClient.AdviseTransfers([]policy.TransferSpec{testSpec(i, "wf1")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SyncOnce(); err != nil {
		t.Fatalf("delta sync: %v", err)
	}
	if !hasThreshold(local, "mark", "er", 7) {
		t.Fatal("second sync erased the marker: it restored the full state instead of applying the tail")
	}
	if got, want := len(local.ExportState().Transfers), len(donorSvc.ExportState().Transfers); got != want {
		t.Fatalf("standby holds %d transfers after delta sync, donor %d", got, want)
	}

	// Reset invalidates the cursor: the next sync is a full restore, which
	// wipes anything the donor never had.
	s.Reset()
	if err := s.SyncOnce(); err != nil {
		t.Fatalf("post-reset full sync: %v", err)
	}
	if hasThreshold(local, "mark", "er", 7) {
		t.Fatal("Reset did not force a full restore: the marker survived")
	}
	if syncs, failures := s.Stats(); syncs != 3 || failures != 0 {
		t.Fatalf("stats = (%d, %d), want (3, 0)", syncs, failures)
	}
}

// TestStandbyRunActiveGateResetsCursor: while Active reports false (the
// server is serving as primary), Run must skip syncing AND drop the delta
// cursor — state moved outside the syncer, so the next sync after
// reactivation has to be a full restore.
func TestStandbyRunActiveGateResetsCursor(t *testing.T) {
	_, _, donorClient, ps := durableReplica(t, t.TempDir())
	defer ps.Close()
	local, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStandbySyncer(local, donorClient, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Feeding the gate from a channel makes each tick's gate check a
	// rendezvous: the next send can only be received after the previous
	// tick's whole iteration (including the cursor reset) completed.
	gate := make(chan bool)
	s.Active = func() bool { return <-gate }
	ticks := make(chan time.Time)
	s.Ticks = ticks
	synced := make(chan error, 8)
	s.OnSync = func(err error) { synced <- err }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)

	if _, err := donorClient.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	ticks <- time.Time{}
	gate <- true
	if err := <-synced; err != nil {
		t.Fatalf("priming sync: %v", err)
	}

	// The server acts as primary for a while: the marker stands in for
	// writes applied outside the syncer.
	if err := local.SetThreshold("mark", "er", 7); err != nil {
		t.Fatal(err)
	}
	ticks <- time.Time{}
	gate <- false // skipped: no OnSync, cursor dropped

	ticks <- time.Time{}
	gate <- true
	if err := <-synced; err != nil {
		t.Fatalf("post-reactivation sync: %v", err)
	}
	// Exactly one OnSync arrived: the gated tick synced nothing.
	if syncs, failures := s.Stats(); syncs != 2 || failures != 0 {
		t.Fatalf("stats = (%d, %d), want (2, 0) — the inactive tick must not sync", syncs, failures)
	}
	// The reactivation sync was a full restore, not a tail replay: the
	// primary-era marker is gone.
	if hasThreshold(local, "mark", "er", 7) {
		t.Fatal("reactivation sync took the delta path: Active gate did not reset the cursor")
	}
}
