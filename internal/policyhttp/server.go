// Package policyhttp exposes the policy service over a RESTful web
// interface, playing the role of the paper's Policy Controller and RESTful
// Web Interface (hosted on Apache Tomcat in the original system). Requests
// and responses are XML or JSON data structures; the wire format is chosen
// per request via the Content-Type and Accept headers.
//
// Endpoints (all under /v1):
//
//	POST /v1/transfers            submit a transfer list, receive advice
//	POST /v1/transfers/completed  report completed/failed transfers
//	POST /v1/cleanups             submit a cleanup list, receive advice
//	POST /v1/cleanups/completed   report completed cleanups
//	GET  /v1/state                observe stream ledgers and resources
//	PUT  /v1/thresholds           set a host-pair stream threshold
//	POST /v1/leases/renew         renew a workflow's liveness lease
//	GET  /v1/leases               list active leases and their holdings
//	POST /v1/clock/advance        advance the logical clock (expires leases)
//	GET  /v1/decisions            recent decision provenance records
//	GET  /v1/healthz              liveness probe
//
// Servers attached to a durable store (SetDurable) additionally serve
// POST /v1/state/snapshot and GET /v1/state/archive.
package policyhttp

import (
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"policyflow/internal/admit"
	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// maxBodyBytes bounds request bodies; a transfer list for even a very
// large workflow is far below this.
const maxBodyBytes = 16 << 20

// TransferRequest is the wire envelope for a transfer-advice request.
type TransferRequest struct {
	XMLName   xml.Name              `xml:"transferRequest" json:"-"`
	Transfers []policy.TransferSpec `json:"transfers" xml:"transfers>transfer"`
}

// CleanupRequest is the wire envelope for a cleanup-advice request.
type CleanupRequest struct {
	XMLName  xml.Name             `xml:"cleanupRequest" json:"-"`
	Cleanups []policy.CleanupSpec `json:"cleanups" xml:"cleanups>cleanup"`
}

// TransferAdviceDoc wraps policy.TransferAdvice for XML round-trips.
type TransferAdviceDoc struct {
	XMLName xml.Name `xml:"transferAdvice" json:"-"`
	policy.TransferAdvice
}

// CleanupAdviceDoc wraps policy.CleanupAdvice for XML round-trips.
type CleanupAdviceDoc struct {
	XMLName xml.Name `xml:"cleanupAdvice" json:"-"`
	policy.CleanupAdvice
}

// CompletionDoc wraps policy.CompletionReport for XML round-trips.
type CompletionDoc struct {
	XMLName xml.Name `xml:"completionReport" json:"-"`
	policy.CompletionReport
}

// CleanupReportDoc wraps policy.CleanupReport for XML round-trips.
type CleanupReportDoc struct {
	XMLName xml.Name `xml:"cleanupReport" json:"-"`
	policy.CleanupReport
}

// SnapshotDoc wraps policy.Snapshot for XML round-trips.
type SnapshotDoc struct {
	XMLName xml.Name `xml:"state" json:"-"`
	policy.Snapshot
}

// ReportAckDoc wraps policy.ReportAck for XML round-trips.
type ReportAckDoc struct {
	XMLName xml.Name `xml:"reportAck" json:"-"`
	policy.ReportAck
}

// LeaseRenewal is the wire type for POST /v1/leases/renew.
type LeaseRenewal struct {
	XMLName    xml.Name `xml:"leaseRenewal" json:"-"`
	WorkflowID string   `json:"workflowId" xml:"workflowId"`
}

// LeaseStatusDoc wraps policy.LeaseStatus for XML round-trips.
type LeaseStatusDoc struct {
	XMLName xml.Name `xml:"lease" json:"-"`
	policy.LeaseStatus
}

// LeaseListDoc wraps policy.LeaseList for XML round-trips.
type LeaseListDoc struct {
	XMLName xml.Name `xml:"leases" json:"-"`
	policy.LeaseList
}

// ClockUpdate is the wire type for POST /v1/clock/advance.
type ClockUpdate struct {
	XMLName xml.Name `xml:"clock" json:"-"`
	Now     float64  `json:"now" xml:"now"`
}

// ClockAdvanceDoc wraps policy.ClockAdvance for XML round-trips.
type ClockAdvanceDoc struct {
	XMLName xml.Name `xml:"clockAdvance" json:"-"`
	policy.ClockAdvance
}

// ThresholdUpdate is the wire type for PUT /v1/thresholds.
type ThresholdUpdate struct {
	XMLName    xml.Name `xml:"threshold" json:"-"`
	SourceHost string   `json:"sourceHost" xml:"sourceHost"`
	DestHost   string   `json:"destHost" xml:"destHost"`
	Max        int      `json:"max" xml:"max"`
}

// ErrorDoc is the error response body.
type ErrorDoc struct {
	XMLName xml.Name `xml:"error" json:"-"`
	Message string   `json:"error" xml:"message"`
}

// Server adapts a policy.Service to HTTP. It implements http.Handler.
type Server struct {
	svc *policy.Service
	mux *http.ServeMux
	log *log.Logger

	// tracer receives http.server spans; requests carrying a Traceparent
	// header join the caller's trace even when tracer is nil.
	tracer obs.Tracer

	// durable, when set via SetDurable, backs the snapshot and archive
	// endpoints.
	durable DurableStore

	reg      *obs.Registry
	httpReqs *obs.CounterVec   // http_requests_total{endpoint,code}
	httpLat  *obs.HistogramVec // http_request_seconds{endpoint}

	// idem caches responses to mutating requests by idempotency key, so a
	// client retry after a lost response does not re-apply the mutation.
	idem        *idemCache
	idemReplays *obs.Counter // http_idempotent_replays_total

	// admit, when set via SetAdmission, bounds and batches the traffic:
	// advise/report mutations coalesce through its queue, reads take a
	// concurrency slot, and overload is shed before any side effect.
	admit *admit.Controller

	// Failover state (see failover.go). role is RoleNone unless
	// SetFailover assigned one; peer is the other half of the pair.
	// promoteMu serializes promotions so concurrent triggers cannot race
	// the demote-then-catch-up protocol.
	roleMu    sync.Mutex
	role      Role
	peer      *Client
	promoteMu sync.Mutex

	// state gauges, refreshed from the service snapshot at scrape time.
	inFlight    *obs.Gauge
	stagedFiles *obs.Gauge
	tracked     *obs.Gauge
	pendClean   *obs.Gauge
	streamsVec  *obs.GaugeVec
}

// NewServer wraps svc with a fresh metrics registry and no tracer. logger
// may be nil to disable request logging.
func NewServer(svc *policy.Service, logger *log.Logger) *Server {
	return NewServerWith(svc, logger, obs.NewRegistry(), nil)
}

// NewServerWith wraps svc using the caller's registry and tracer (tracer
// may be nil). The service is instrumented with both, so every policy
// decision lands in reg and, when a tracer is given, in the event log; the
// registry is what GET /v1/metrics renders.
func NewServerWith(svc *policy.Service, logger *log.Logger, reg *obs.Registry, tracer obs.Tracer) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), log: logger, reg: reg, tracer: tracer}
	svc.Instrument(reg, tracer)
	s.httpReqs = reg.Counter("http_requests_total",
		"HTTP requests served, by route pattern and status code.", "endpoint", "code")
	s.httpLat = reg.Histogram("http_request_seconds",
		"HTTP request latency by route pattern.", nil, "endpoint")
	s.inFlight = reg.Gauge("policy_transfers_in_flight",
		"In-progress transfers.").With()
	s.stagedFiles = reg.Gauge("policy_staged_files",
		"Staged files tracked in Policy Memory.").With()
	s.tracked = reg.Gauge("policy_tracked_files",
		"File resources tracked in Policy Memory (staged or pending).").With()
	s.pendClean = reg.Gauge("policy_pending_cleanups",
		"Cleanup operations in progress.").With()
	s.streamsVec = reg.Gauge("policy_streams_allocated",
		"Parallel streams currently allocated per host pair.", "src", "dst")
	s.idem = newIdemCache(0)
	s.idemReplays = reg.Counter("http_idempotent_replays_total",
		"Mutating requests answered from the idempotency cache without re-applying.").With()
	// Policy-plane mutations are fenced (see failover.go) OUTSIDE the
	// idempotency cache: a 412 must never be recorded against a key the
	// client will re-use at the real primary. Replication-plane endpoints
	// (restore, snapshot, archive, promote/demote/epoch) stay unfenced —
	// they are how standbys are fed and leadership moves.
	s.mux.HandleFunc("POST /v1/transfers", s.fenced(s.idempotent(s.handleTransfers)))
	s.mux.HandleFunc("POST /v1/transfers/completed", s.fenced(s.idempotent(s.handleTransfersCompleted)))
	s.mux.HandleFunc("POST /v1/cleanups", s.fenced(s.idempotent(s.handleCleanups)))
	s.mux.HandleFunc("POST /v1/cleanups/completed", s.fenced(s.idempotent(s.handleCleanupsCompleted)))
	// Read-only endpoints go through the admission controller's read
	// gate (a pass-through until SetAdmission). /v1/state/archive stays
	// ungated: it is how a downed replica resyncs, and recovery must not
	// compete with the overload that may have caused the outage. Metrics
	// and health stay ungated for the same reason — observability is most
	// valuable during overload.
	s.mux.HandleFunc("GET /v1/state", s.admitRead(s.handleState))
	s.mux.HandleFunc("GET /v1/state/dump", s.admitRead(s.handleDump))
	s.mux.HandleFunc("POST /v1/state/restore", s.idempotent(s.handleRestore))
	s.mux.HandleFunc("POST /v1/state/snapshot", s.idempotent(s.handleSnapshot))
	s.mux.HandleFunc("GET /v1/state/archive", s.handleArchive)
	s.mux.HandleFunc("PUT /v1/thresholds", s.fenced(s.idempotent(s.handleThreshold)))
	s.mux.HandleFunc("PUT /v1/bundles", s.fenced(s.idempotent(s.handleBundlePush)))
	s.mux.HandleFunc("POST /v1/bundles/activate", s.fenced(s.idempotent(s.handleBundleActivate)))
	s.mux.HandleFunc("GET /v1/bundles", s.admitRead(s.handleBundles))
	s.mux.HandleFunc("POST /v1/leases/renew", s.fenced(s.idempotent(s.handleLeaseRenew)))
	s.mux.HandleFunc("GET /v1/leases", s.admitRead(s.handleLeases))
	s.mux.HandleFunc("POST /v1/clock/advance", s.fenced(s.idempotent(s.handleClockAdvance)))
	s.mux.HandleFunc("POST /v1/promote", s.handlePromote)
	s.mux.HandleFunc("POST /v1/demote", s.handleDemote)
	s.mux.HandleFunc("GET /v1/epoch", s.handleEpochGet)
	s.mux.HandleFunc("POST /v1/epoch", s.idempotent(s.handleEpochBump))
	s.mux.HandleFunc("GET /v1/config", s.admitRead(s.handleConfig))
	s.mux.HandleFunc("GET /v1/decisions", s.admitRead(s.handleDecisions))
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return s
}

// ConfigDoc is the wire form of the effective service configuration —
// the tunables of the active policy bundle, stamped with its version.
type ConfigDoc struct {
	XMLName          xml.Name `json:"-" xml:"config"`
	Bundle           string   `json:"bundle" xml:"bundle"`
	Algorithm        string   `json:"algorithm" xml:"algorithm"`
	DefaultStreams   int      `json:"defaultStreams" xml:"defaultStreams"`
	MinStreams       int      `json:"minStreams" xml:"minStreams"`
	DefaultThreshold int      `json:"defaultThreshold" xml:"defaultThreshold"`
	ClusterFactor    int      `json:"clusterFactor" xml:"clusterFactor"`
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	tun := s.svc.Tunables()
	s.writeResponse(w, resf, http.StatusOK, &ConfigDoc{
		Bundle:           tun.Version,
		Algorithm:        string(tun.Algorithm),
		DefaultStreams:   tun.DefaultStreams,
		MinStreams:       tun.MinStreams,
		DefaultThreshold: tun.DefaultThreshold,
		ClusterFactor:    tun.ClusterFactor,
	})
}

// Registry returns the server's metrics registry, for callers that mount
// additional endpoints over it (cmd/policyserver's /debug/vars).
func (s *Server) Registry() *obs.Registry { return s.reg }

// DecisionListDoc wraps the decision records returned by /v1/decisions.
type DecisionListDoc struct {
	XMLName   xml.Name                `xml:"decisions" json:"-"`
	Decisions []policy.DecisionRecord `json:"decisions" xml:"decision"`
}

// MatchesLFN reports whether a decision line's file URL refers to the
// given logical file name: exact match, path-basename match, or suffix.
// The /v1/decisions lfn filter and `policyctl explain` share it.
func MatchesLFN(fileURL, lfn string) bool {
	if lfn == "" || fileURL == lfn {
		return true
	}
	base := fileURL
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return base == lfn || strings.HasSuffix(fileURL, lfn)
}

// handleDecisions serves the decision provenance ring. Query parameters:
// n (max records, newest retained), op (logged op name), bundle (policy
// bundle version that produced the decision), workflow and lfn (keep only
// records with a matching line). This is the endpoint `policyctl explain`
// renders its why-chain from.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	q := r.URL.Query()
	n := 0
	if v := q.Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil || n < 0 {
			s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
			return
		}
	}
	op, workflow, lfn := q.Get("op"), q.Get("workflow"), q.Get("lfn")
	bundleVersion := q.Get("bundle")
	recs := s.svc.Decisions(0)
	out := make([]policy.DecisionRecord, 0, len(recs))
	for _, rec := range recs {
		if op != "" && rec.Op != op {
			continue
		}
		if bundleVersion != "" && rec.Bundle != bundleVersion {
			continue
		}
		if workflow != "" || lfn != "" {
			matched := false
			for _, ln := range rec.Lines {
				if workflow != "" && ln.WorkflowID != workflow {
					continue
				}
				if lfn != "" && !MatchesLFN(ln.FileURL, lfn) {
					continue
				}
				matched = true
				break
			}
			if !matched {
				continue
			}
		}
		out = append(out, rec)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	s.writeResponse(w, resf, http.StatusOK, &DecisionListDoc{Decisions: out})
}

// handleMetrics exposes the full metrics registry in the Prometheus text
// exposition format (no external dependency needed for the text form).
// State-derived gauges are refreshed from the service snapshot at scrape
// time, so the scrape is always consistent with /v1/state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.svc.Snapshot()
	s.inFlight.Set(float64(snap.InFlight))
	s.stagedFiles.Set(float64(snap.StagedResources))
	s.tracked.Set(float64(snap.TrackedFiles))
	s.pendClean.Set(float64(snap.PendingCleanups))
	for _, p := range snap.Pairs {
		s.streamsVec.With(p.SourceHost, p.DestHost).Set(float64(p.Allocated))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil && s.log != nil {
		s.log.Printf("write metrics: %v", err)
	}
}

// statusWriter captures the response status for request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler. Every request is measured into the
// per-endpoint request counter and latency histogram, labeled by the
// matched route pattern so path parameters do not explode the series set.
// Requests carrying a Traceparent header join the caller's causal trace:
// the header's span context is installed in the request context (so the
// policy layer's spans, lifecycle events and decision records carry the
// caller's trace ID), and — when the server has a tracer — an
// http.server span covering the full request is emitted around the
// handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.log != nil {
		s.log.Printf("%s %s", r.Method, r.URL.Path)
	}
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		pattern = "unmatched"
	}
	ctx := r.Context()
	if sc, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		ctx = obs.ContextWithSpan(ctx, sc)
	}
	ctx, span := obs.StartSpan(ctx, s.tracer, "http.server")
	if _, ok := obs.SpanFromContext(ctx); ok {
		r = r.WithContext(ctx)
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	s.httpReqs.With(pattern, strconv.Itoa(sw.code)).Inc()
	s.httpLat.With(pattern).Observe(time.Since(start).Seconds())
	if span != nil {
		span.Annot.Endpoint = pattern
		span.Annot.Status = sw.code
		span.End()
	}
}

// format identifies a wire encoding.
type format int

const (
	formatJSON format = iota
	formatXML
)

func (f format) contentType() string {
	if f == formatXML {
		return "application/xml; charset=utf-8"
	}
	return "application/json; charset=utf-8"
}

// requestFormat inspects Content-Type; unknown or absent means JSON.
func requestFormat(r *http.Request) (format, error) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return formatJSON, nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return formatJSON, fmt.Errorf("bad Content-Type %q", ct)
	}
	switch {
	case mt == "application/json" || strings.HasSuffix(mt, "+json"):
		return formatJSON, nil
	case mt == "application/xml" || mt == "text/xml" || strings.HasSuffix(mt, "+xml"):
		return formatXML, nil
	default:
		return formatJSON, fmt.Errorf("unsupported Content-Type %q", mt)
	}
}

// responseFormat inspects Accept; default is the request's own format.
func responseFormat(r *http.Request, def format) format {
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/xml"), strings.Contains(accept, "text/xml"):
		return formatXML
	case strings.Contains(accept, "application/json"):
		return formatJSON
	default:
		return def
	}
}

func decode(r *http.Request, f format, v any) error {
	body := io.LimitReader(r.Body, maxBodyBytes)
	switch f {
	case formatXML:
		return xml.NewDecoder(body).Decode(v)
	default:
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		return dec.Decode(v)
	}
}

func (s *Server) writeResponse(w http.ResponseWriter, f format, status int, v any) {
	w.Header().Set("Content-Type", f.contentType())
	w.WriteHeader(status)
	var err error
	switch f {
	case formatXML:
		if _, werr := io.WriteString(w, xml.Header); werr != nil {
			return
		}
		enc := xml.NewEncoder(w)
		enc.Indent("", "  ")
		err = enc.Encode(v)
	default:
		enc := json.NewEncoder(w)
		err = enc.Encode(v)
	}
	if err != nil && s.log != nil {
		s.log.Printf("encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, f format, status int, err error) {
	s.writeResponse(w, f, status, &ErrorDoc{Message: err.Error()})
}

func (s *Server) handleTransfers(w http.ResponseWriter, r *http.Request) {
	reqf, err := requestFormat(r)
	resf := responseFormat(r, reqf)
	if err != nil {
		s.writeError(w, resf, http.StatusUnsupportedMediaType, err)
		return
	}
	var req TransferRequest
	if err := decode(r, reqf, &req); err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if s.admit != nil {
		mut := &policy.BatchMutation{Ctx: r.Context(), TransferSpecs: req.Transfers}
		if !s.runAdmitted(w, r, resf, mut) {
			return
		}
		if mut.Err != nil {
			s.writeError(w, resf, statusFor(mut.Err), mut.Err)
			return
		}
		s.writeResponse(w, resf, http.StatusOK, &TransferAdviceDoc{TransferAdvice: *mut.TransferAdvice})
		return
	}
	adv, err := s.svc.AdviseTransfersCtx(r.Context(), req.Transfers)
	if err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &TransferAdviceDoc{TransferAdvice: *adv})
}

func (s *Server) handleTransfersCompleted(w http.ResponseWriter, r *http.Request) {
	reqf, err := requestFormat(r)
	resf := responseFormat(r, reqf)
	if err != nil {
		s.writeError(w, resf, http.StatusUnsupportedMediaType, err)
		return
	}
	var doc CompletionDoc
	if err := decode(r, reqf, &doc); err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if s.admit != nil {
		mut := &policy.BatchMutation{Ctx: r.Context(), TransferReport: &doc.CompletionReport}
		if !s.runAdmitted(w, r, resf, mut) {
			return
		}
		if mut.Err != nil {
			s.writeError(w, resf, statusFor(mut.Err), mut.Err)
			return
		}
		s.writeResponse(w, resf, http.StatusOK, &ReportAckDoc{ReportAck: *mut.Ack})
		return
	}
	ack, err := s.svc.ReportTransfersCtx(r.Context(), doc.CompletionReport)
	if err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &ReportAckDoc{ReportAck: *ack})
}

func (s *Server) handleCleanups(w http.ResponseWriter, r *http.Request) {
	reqf, err := requestFormat(r)
	resf := responseFormat(r, reqf)
	if err != nil {
		s.writeError(w, resf, http.StatusUnsupportedMediaType, err)
		return
	}
	var req CleanupRequest
	if err := decode(r, reqf, &req); err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if s.admit != nil {
		mut := &policy.BatchMutation{Ctx: r.Context(), CleanupSpecs: req.Cleanups}
		if !s.runAdmitted(w, r, resf, mut) {
			return
		}
		if mut.Err != nil {
			s.writeError(w, resf, statusFor(mut.Err), mut.Err)
			return
		}
		s.writeResponse(w, resf, http.StatusOK, &CleanupAdviceDoc{CleanupAdvice: *mut.CleanupAdvice})
		return
	}
	adv, err := s.svc.AdviseCleanupsCtx(r.Context(), req.Cleanups)
	if err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &CleanupAdviceDoc{CleanupAdvice: *adv})
}

func (s *Server) handleCleanupsCompleted(w http.ResponseWriter, r *http.Request) {
	reqf, err := requestFormat(r)
	resf := responseFormat(r, reqf)
	if err != nil {
		s.writeError(w, resf, http.StatusUnsupportedMediaType, err)
		return
	}
	var doc CleanupReportDoc
	if err := decode(r, reqf, &doc); err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if s.admit != nil {
		mut := &policy.BatchMutation{Ctx: r.Context(), CleanupReport: &doc.CleanupReport}
		if !s.runAdmitted(w, r, resf, mut) {
			return
		}
		if mut.Err != nil {
			s.writeError(w, resf, statusFor(mut.Err), mut.Err)
			return
		}
		s.writeResponse(w, resf, http.StatusOK, &ReportAckDoc{ReportAck: *mut.Ack})
		return
	}
	ack, err := s.svc.ReportCleanupsCtx(r.Context(), doc.CleanupReport)
	if err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &ReportAckDoc{ReportAck: *ack})
}

func (s *Server) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	reqf, err := requestFormat(r)
	resf := responseFormat(r, reqf)
	if err != nil {
		s.writeError(w, resf, http.StatusUnsupportedMediaType, err)
		return
	}
	var req LeaseRenewal
	if err := decode(r, reqf, &req); err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	status, err := s.svc.RenewLease(req.WorkflowID)
	if err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &LeaseStatusDoc{LeaseStatus: *status})
}

func (s *Server) handleLeases(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	s.writeResponse(w, resf, http.StatusOK, &LeaseListDoc{LeaseList: *s.svc.Leases()})
}

func (s *Server) handleClockAdvance(w http.ResponseWriter, r *http.Request) {
	reqf, err := requestFormat(r)
	resf := responseFormat(r, reqf)
	if err != nil {
		s.writeError(w, resf, http.StatusUnsupportedMediaType, err)
		return
	}
	var req ClockUpdate
	if err := decode(r, reqf, &req); err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	adv, err := s.svc.AdvanceClock(req.Now)
	if err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &ClockAdvanceDoc{ClockAdvance: *adv})
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	s.writeResponse(w, resf, http.StatusOK, &SnapshotDoc{Snapshot: s.svc.Snapshot()})
}

func (s *Server) handleDump(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	s.writeResponse(w, resf, http.StatusOK, s.svc.ExportState())
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	reqf, err := requestFormat(r)
	resf := responseFormat(r, reqf)
	if err != nil {
		s.writeError(w, resf, http.StatusUnsupportedMediaType, err)
		return
	}
	var dump policy.StateDump
	if err := decode(r, reqf, &dump); err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := s.svc.ImportState(&dump); err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	reqf, err := requestFormat(r)
	resf := responseFormat(r, reqf)
	if err != nil {
		s.writeError(w, resf, http.StatusUnsupportedMediaType, err)
		return
	}
	var upd ThresholdUpdate
	if err := decode(r, reqf, &upd); err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if upd.SourceHost == "" || upd.DestHost == "" {
		s.writeError(w, resf, http.StatusBadRequest, errors.New("sourceHost and destHost are required"))
		return
	}
	if err := s.svc.SetThreshold(upd.SourceHost, upd.DestHost, upd.Max); err != nil {
		// statusFor, not a blanket 400: an infrastructure failure (e.g. a
		// WAL write error) must surface as 500 so a replicated client marks
		// this replica down instead of treating the call as rejected
		// everywhere.
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// BundleInfoDoc is the wire form of a single bundle's metadata, returned
// by the push and activate endpoints.
type BundleInfoDoc struct {
	XMLName xml.Name `json:"-" xml:"bundle"`
	policy.BundleInfo
}

// BundleStatusDoc is the wire form of GET /v1/bundles: the active bundle,
// the previous one (rollback target), and any staged-but-inactive pushes.
type BundleStatusDoc struct {
	XMLName xml.Name `json:"-" xml:"bundles"`
	policy.BundleStatus
}

// BundleActivateRequest selects what POST /v1/bundles/activate switches
// to. Exactly one of the three modes must be set: a previously pushed
// version, an inline bundle document, or a rollback to the previously
// active bundle.
type BundleActivateRequest struct {
	XMLName  xml.Name        `json:"-" xml:"activateBundle"`
	Version  string          `json:"version,omitempty" xml:"version,omitempty"`
	Bundle   json.RawMessage `json:"bundle,omitempty" xml:"-"`
	Rollback bool            `json:"rollback,omitempty" xml:"rollback,omitempty"`
}

// handleBundlePush stages a policy bundle without activating it. The body
// is the bundle document itself, always JSON (the bundle encoding is
// JSON-canonical; its checksum is defined over that form), so unlike the
// other endpoints an XML Content-Type is rejected outright.
func (s *Server) handleBundlePush(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	if reqf, err := requestFormat(r); err != nil || reqf != formatJSON {
		s.writeError(w, resf, http.StatusUnsupportedMediaType,
			errors.New("bundle documents must be application/json"))
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("read bundle: %w", err))
		return
	}
	info, err := s.svc.StageBundle(data)
	if err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &BundleInfoDoc{BundleInfo: *info})
}

// handleBundleActivate switches the active bundle through the WAL-logged
// activation path, so durable replicas and crash replay converge on the
// same version.
func (s *Server) handleBundleActivate(w http.ResponseWriter, r *http.Request) {
	reqf, err := requestFormat(r)
	resf := responseFormat(r, reqf)
	if err != nil {
		s.writeError(w, resf, http.StatusUnsupportedMediaType, err)
		return
	}
	var req BundleActivateRequest
	if err := decode(r, reqf, &req); err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	modes := 0
	if req.Version != "" {
		modes++
	}
	if len(req.Bundle) > 0 {
		modes++
	}
	if req.Rollback {
		modes++
	}
	if modes != 1 {
		s.writeError(w, resf, http.StatusBadRequest,
			errors.New("exactly one of version, bundle, or rollback is required"))
		return
	}
	var info *policy.BundleInfo
	switch {
	case req.Rollback:
		info, err = s.svc.RollbackBundleCtx(r.Context())
	case len(req.Bundle) > 0:
		info, err = s.svc.ActivateBundleCtx(r.Context(), req.Bundle)
	default:
		info, err = s.svc.ActivateBundleVersionCtx(r.Context(), req.Version)
	}
	if err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &BundleInfoDoc{BundleInfo: *info})
}

// handleBundles reports bundle status. The ETag is the active bundle's
// checksum, so pollers can cheaply watch for activations with
// If-None-Match.
func (s *Server) handleBundles(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	st := s.svc.Bundles()
	etag := `"` + st.Active.Checksum + `"`
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &BundleStatusDoc{BundleStatus: *st})
}

func statusFor(err error) int {
	if errors.Is(err, policy.ErrEmptyRequest) || errors.Is(err, policy.ErrInvalidRequest) {
		return http.StatusBadRequest
	}
	if strings.Contains(err.Error(), "required") {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}
