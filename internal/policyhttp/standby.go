package policyhttp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"policyflow/internal/policy"
)

// StandbySyncer keeps a local policy service warm as a standby replica of
// a remote primary: it periodically pulls the primary's Policy Memory dump
// and restores it locally. If the primary dies, the standby answers with
// state at most one sync interval old — the warm-standby half of the
// paper's proposed replication strategies (the ReplicatedClient is the
// active-replication half).
type StandbySyncer struct {
	local   *policy.Service
	primary *Client
	// Interval between syncs.
	Interval time.Duration
	// OnSync, when set, is called after each attempt with the error (nil
	// on success).
	OnSync func(error)
	// Ticks, when set, replaces the interval ticker as Run's time source:
	// one sync per value received. Tests use this to drive the loop
	// deterministically without real timers.
	Ticks  <-chan time.Time
	syncs  int
	errors int
}

// NewStandbySyncer creates a syncer replicating primary into local.
func NewStandbySyncer(local *policy.Service, primary *Client, interval time.Duration) (*StandbySyncer, error) {
	if local == nil || primary == nil {
		return nil, errors.New("policyhttp: standby syncer needs a local service and a primary client")
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &StandbySyncer{local: local, primary: primary, Interval: interval}, nil
}

// SyncOnce pulls one dump from the primary and restores it locally.
func (s *StandbySyncer) SyncOnce() error {
	dump, err := s.primary.Dump()
	if err != nil {
		s.errors++
		return fmt.Errorf("policyhttp: standby pull: %w", err)
	}
	if err := s.local.ImportState(dump); err != nil {
		s.errors++
		return fmt.Errorf("policyhttp: standby restore: %w", err)
	}
	s.syncs++
	return nil
}

// Stats returns (successful syncs, failed attempts).
func (s *StandbySyncer) Stats() (syncs, failures int) { return s.syncs, s.errors }

// Run syncs on the interval until ctx is cancelled. Failures are reported
// through OnSync and do not stop the loop (the primary may come back).
// When Ticks is set it is used instead of a real ticker.
func (s *StandbySyncer) Run(ctx context.Context) {
	ticks := s.Ticks
	if ticks == nil {
		ticker := time.NewTicker(s.Interval)
		defer ticker.Stop()
		ticks = ticker.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticks:
			err := s.SyncOnce()
			if s.OnSync != nil {
				s.OnSync(err)
			}
		}
	}
}
