package policyhttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"policyflow/internal/durable"
	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// StandbySyncer keeps a local policy service warm as a standby replica of
// a remote primary. Each sync pulls the primary's snapshot+WAL-tail
// archive and tracks how far into the donor's log it has applied, so a
// steady-state sync ships and applies only the records since the last one
// — O(delta), not O(state). Donors without a durable store (the archive
// endpoint answers 501) fall back to the full Policy Memory dump. If the
// primary dies, the standby answers with state at most one sync interval
// old — the warm-standby half of the paper's proposed replication
// strategies (the ReplicatedClient is the active-replication half), and
// the state a promotion (POST /v1/promote) serves from when the old
// primary is unreachable for a final catch-up pull.
type StandbySyncer struct {
	local   *policy.Service
	primary *Client
	// Interval between syncs.
	Interval time.Duration
	// OnSync, when set, is called after each attempt with the error (nil
	// on success).
	OnSync func(error)
	// Ticks, when set, replaces the interval ticker as Run's time source:
	// one sync per value received. Tests use this to drive the loop
	// deterministically without real timers.
	Ticks <-chan time.Time
	// Active, when set, gates each Run tick: while it returns false the
	// loop skips syncing AND resets the delta cursor — a server that was
	// promoted (and later demoted back) got state outside this syncer, so
	// the cursor no longer describes what the local service holds.
	Active func() bool

	syncs  int
	errors int
	// primed/lastSeq form the delta cursor: lastSeq is the donor WAL
	// position already applied locally, valid only while primed. Any sync
	// failure or external state change (see Reset) drops back to a full
	// restore.
	primed  bool
	lastSeq uint64
	// lastOK is the wall time of the last successful sync, for the lag
	// gauge.
	lastOK time.Time

	syncsC *obs.Counter // policy_standby_syncs_total
	errsC  *obs.Counter // policy_standby_errors_total
	lagG   *obs.Gauge   // policy_standby_lag_seconds
}

// NewStandbySyncer creates a syncer replicating primary into local.
func NewStandbySyncer(local *policy.Service, primary *Client, interval time.Duration) (*StandbySyncer, error) {
	if local == nil || primary == nil {
		return nil, errors.New("policyhttp: standby syncer needs a local service and a primary client")
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &StandbySyncer{local: local, primary: primary, Interval: interval}, nil
}

// Instrument registers the syncer's metrics on reg: sync and error
// counters plus a lag gauge (seconds since the last successful sync,
// refreshed on every attempt; 0 after a success).
func (s *StandbySyncer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.syncsC = reg.Counter("policy_standby_syncs_total",
		"Successful standby syncs from the primary.").With()
	s.errsC = reg.Counter("policy_standby_errors_total",
		"Failed standby sync attempts.").With()
	s.lagG = reg.Gauge("policy_standby_lag_seconds",
		"Seconds since the last successful standby sync, as of the last attempt.").With()
	s.syncsC.Add(float64(s.syncs))
	s.errsC.Add(float64(s.errors))
}

// Reset invalidates the delta cursor; the next sync performs a full
// restore. Call it whenever the local service's state moved outside this
// syncer — a promotion's catch-up import, a crash-recovery reopen, a
// manual restore — because the cursor is only meaningful while the syncer
// is the sole writer of the local Policy Memory.
func (s *StandbySyncer) Reset() { s.primed = false }

// SyncOnce pulls once from the primary: the delta tail when the cursor is
// valid, a full archive or dump restore otherwise.
func (s *StandbySyncer) SyncOnce() error {
	err := s.syncOnce()
	if err != nil {
		s.errors++
		s.primed = false
		if s.errsC != nil {
			s.errsC.Inc()
		}
		if s.lagG != nil && !s.lastOK.IsZero() {
			s.lagG.Set(time.Since(s.lastOK).Seconds())
		}
		return err
	}
	s.syncs++
	s.lastOK = time.Now()
	if s.syncsC != nil {
		s.syncsC.Inc()
	}
	if s.lagG != nil {
		s.lagG.Set(0)
	}
	return nil
}

func (s *StandbySyncer) syncOnce() error {
	arch, err := s.primary.Archive()
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) && se.StatusCode == http.StatusNotImplemented {
			// The primary runs without a durable store: no archive, no
			// delta — pull the full live dump every time.
			dump, derr := s.primary.Dump()
			if derr != nil {
				return fmt.Errorf("policyhttp: standby pull: %w", derr)
			}
			if ierr := s.local.ImportState(dump); ierr != nil {
				return fmt.Errorf("policyhttp: standby restore: %w", ierr)
			}
			s.primed = false
			return nil
		}
		return fmt.Errorf("policyhttp: standby pull: %w", err)
	}
	if s.primed && arch.SnapshotSeq <= s.lastSeq {
		// Delta path: everything up to lastSeq is already applied, so only
		// the newer tail records run — through ApplyLogged, which re-logs
		// them into the standby's own WAL (the standby's durability is its
		// own, mirroring what ImportState does on the full path).
		return s.applyTail(arch.Tail)
	}
	// Full path: restore the donor's snapshot, then replay its tail.
	dump := &policy.StateDump{}
	if arch.Snapshot != nil {
		if err := json.Unmarshal(arch.Snapshot, dump); err != nil {
			return fmt.Errorf("policyhttp: decode archive snapshot: %w", err)
		}
	}
	if err := s.local.ImportState(dump); err != nil {
		return fmt.Errorf("policyhttp: standby restore: %w", err)
	}
	s.lastSeq = arch.SnapshotSeq
	if err := s.applyTail(arch.Tail); err != nil {
		return err
	}
	s.primed = true
	return nil
}

// applyTail replays donor WAL records newer than the cursor and advances
// it. A failure leaves the cursor wherever it got to; the caller unprimes.
func (s *StandbySyncer) applyTail(tail []durable.Record) error {
	for _, rec := range tail {
		if rec.Seq <= s.lastSeq {
			continue
		}
		if err := s.local.ApplyLogged(rec.Op, rec.Data); err != nil {
			return fmt.Errorf("policyhttp: standby apply record %d (%s): %w", rec.Seq, rec.Op, err)
		}
		s.lastSeq = rec.Seq
	}
	return nil
}

// Stats returns (successful syncs, failed attempts).
func (s *StandbySyncer) Stats() (syncs, failures int) { return s.syncs, s.errors }

// Run syncs on the interval until ctx is cancelled. Failures are reported
// through OnSync and do not stop the loop (the primary may come back).
// When Ticks is set it is used instead of a real ticker.
func (s *StandbySyncer) Run(ctx context.Context) {
	ticks := s.Ticks
	if ticks == nil {
		ticker := time.NewTicker(s.Interval)
		defer ticker.Stop()
		ticks = ticker.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticks:
			if s.Active != nil && !s.Active() {
				s.Reset()
				continue
			}
			err := s.SyncOnce()
			if s.OnSync != nil {
				s.OnSync(err)
			}
		}
	}
}
