package policyhttp

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"policyflow/internal/policy"
)

func newTestServer(t *testing.T) (*httptest.Server, *policy.Service) {
	t.Helper()
	cfg := policy.DefaultConfig()
	cfg.DefaultThreshold = 50
	cfg.DefaultStreams = 4
	svc, err := policy.New(cfg)
	if err != nil {
		t.Fatalf("policy.New: %v", err)
	}
	ts := httptest.NewServer(NewServer(svc, nil))
	t.Cleanup(ts.Close)
	return ts, svc
}

func testSpec(i int, wf string) policy.TransferSpec {
	return policy.TransferSpec{
		RequestID:  fmt.Sprintf("req-%d", i),
		WorkflowID: wf,
		SourceURL:  fmt.Sprintf("gsiftp://src.example.org/data/f%d", i),
		DestURL:    fmt.Sprintf("file://dst.example.org/scratch/f%d", i),
	}
}

func TestTransferRoundTripJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	testTransferRoundTrip(t, c)
}

func TestTransferRoundTripXML(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL, WithXML())
	testTransferRoundTrip(t, c)
}

func testTransferRoundTrip(t *testing.T, c *Client) {
	t.Helper()
	adv, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1"), testSpec(2, "wf1")})
	if err != nil {
		t.Fatalf("AdviseTransfers: %v", err)
	}
	if len(adv.Transfers) != 2 {
		t.Fatalf("transfers = %+v", adv)
	}
	for _, tr := range adv.Transfers {
		if tr.Streams != 4 || tr.GroupID == "" || tr.ID == "" {
			t.Fatalf("bad advice entry: %+v", tr)
		}
	}
	st, err := c.State()
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if st.InFlight != 2 {
		t.Fatalf("InFlight = %d", st.InFlight)
	}
	if _, err := c.ReportTransfers(policy.CompletionReport{
		TransferIDs: []string{adv.Transfers[0].ID, adv.Transfers[1].ID},
	}); err != nil {
		t.Fatalf("ReportTransfers: %v", err)
	}
	st, err = c.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.InFlight != 0 || st.StagedResources != 2 {
		t.Fatalf("state after completion = %+v", st)
	}
	// Duplicate of a staged file is removed.
	adv2, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv2.Transfers) != 0 || len(adv2.Removed) != 1 || adv2.Removed[0].Reason != "already-staged" {
		t.Fatalf("dup advice = %+v", adv2)
	}
}

func TestCleanupRoundTrip(t *testing.T) {
	for _, mode := range []string{"json", "xml"} {
		t.Run(mode, func(t *testing.T) {
			ts, _ := newTestServer(t)
			var c *Client
			if mode == "xml" {
				c = NewClient(ts.URL, WithXML())
			} else {
				c = NewClient(ts.URL)
			}
			adv, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
				t.Fatal(err)
			}
			cadv, err := c.AdviseCleanups([]policy.CleanupSpec{{
				RequestID: "c1", WorkflowID: "wf1", FileURL: testSpec(1, "").DestURL,
			}})
			if err != nil {
				t.Fatal(err)
			}
			if len(cadv.Cleanups) != 1 {
				t.Fatalf("cleanups = %+v", cadv)
			}
			if _, err := c.ReportCleanups(policy.CleanupReport{CleanupIDs: []string{cadv.Cleanups[0].ID}}); err != nil {
				t.Fatal(err)
			}
			st, err := c.State()
			if err != nil {
				t.Fatal(err)
			}
			if st.TrackedFiles != 0 {
				t.Fatalf("resource survived cleanup: %+v", st)
			}
		})
	}
}

func TestSetThresholdEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	if err := c.SetThreshold("src.example.org", "dst.example.org", 2); err != nil {
		t.Fatal(err)
	}
	adv, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Transfers[0].Streams != 2 {
		t.Fatalf("streams = %d, want 2", adv.Transfers[0].Streams)
	}
	// Invalid threshold rejected.
	if err := c.SetThreshold("a", "b", 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if err := c.SetThreshold("", "", 5); err == nil {
		t.Fatal("empty hosts accepted")
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	if err := NewClient(ts.URL).Healthz(); err != nil {
		t.Fatal(err)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	// Empty list -> 400.
	if _, err := c.AdviseTransfers(nil); err == nil {
		t.Fatal("empty request accepted")
	}
	// Malformed JSON -> 400.
	resp, err := http.Post(ts.URL+"/v1/transfers", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	// Unsupported media type -> 415.
	resp, err = http.Post(ts.URL+"/v1/transfers", "application/x-yaml", strings.NewReader("x: 1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("yaml: status %d", resp.StatusCode)
	}
	// Wrong method -> 405.
	resp, err = http.Get(ts.URL + "/v1/transfers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/transfers: status %d", resp.StatusCode)
	}
}

func TestContentNegotiation(t *testing.T) {
	ts, _ := newTestServer(t)
	// JSON request, XML response via Accept.
	body := `{"transfers":[{"requestId":"r1","workflowId":"wf1",` +
		`"sourceUrl":"gsiftp://s.example.org/f","destUrl":"file://d.example.org/f"}]}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/transfers", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/xml") {
		t.Fatalf("Content-Type = %q, want XML", ct)
	}
	var doc TransferAdviceDoc
	if err := xml.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode XML: %v", err)
	}
	if len(doc.Transfers) != 1 || doc.Transfers[0].RequestID != "r1" {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestUnknownJSONFieldRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"transfers":[],"bogus":true}`
	resp, err := http.Post(ts.URL+"/v1/transfers", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestWireFormatsStable(t *testing.T) {
	// Guard the wire contract: the JSON and XML encodings of a request
	// envelope keep their field names.
	req := TransferRequest{Transfers: []policy.TransferSpec{testSpec(1, "wf1")}}
	j, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"transfers"`, `"requestId"`, `"workflowId"`, `"sourceUrl"`, `"destUrl"`} {
		if !strings.Contains(string(j), field) {
			t.Errorf("JSON missing %s: %s", field, j)
		}
	}
	x, err := xml.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range []string{"<transferRequest>", "<transfers>", "<transfer>", "<sourceUrl>"} {
		if !strings.Contains(string(x), el) {
			t.Errorf("XML missing %s: %s", el, x)
		}
	}
}
