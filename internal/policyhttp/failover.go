package policyhttp

import (
	"encoding/xml"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
)

// This file is the HTTP half of the epoch-fenced failover subsystem. The
// policy core owns the epoch itself (a WAL-logged monotonic counter, see
// internal/policy/epoch.go); here it becomes a fence: servers assigned a
// role stamp every policy-plane response with X-Policy-Epoch, clients echo
// the highest epoch they have seen on every mutation, and a server that is
// not the primary — or that learns from a request header that a newer
// epoch exists — answers 412 Precondition Failed instead of applying
// anything. 412 (not 409) because the request itself is well-formed and
// would be accepted by the current primary: only a precondition about
// *which server* may apply it failed, and the client should re-route, not
// re-form, the request.
//
// The fence wraps OUTSIDE the idempotency cache, so a 412 is never
// recorded against the request's idempotency key: when the client
// re-routes to the real primary under the same key, the mutation applies
// exactly once there, and a later duplicate to either server replays from
// the cache that recorded the one real application.

// EpochHeader carries the fencing epoch: on requests, the highest epoch
// the client has observed; on responses from role-assigned servers, the
// epoch the answering server believes is current.
const EpochHeader = "X-Policy-Epoch"

// SyncReplayHeader marks a mutation as replication-plane traffic (archive
// replay into a standby during resync). Fencing passes it through: a
// standby must accept replayed records while still refusing client writes.
const SyncReplayHeader = "X-Policy-Sync"

// Role is a server's position in a primary/standby pair.
type Role string

const (
	// RoleNone disables fencing entirely — the standalone and
	// active-replication deployments that predate failover.
	RoleNone Role = ""
	// RolePrimary accepts mutations and stamps responses with its epoch.
	RolePrimary Role = "primary"
	// RoleStandby refuses every client mutation with 412 while the
	// StandbySyncer (or a resync) keeps its Policy Memory warm.
	RoleStandby Role = "standby"
)

func (r Role) String() string {
	if r == RoleNone {
		return "none"
	}
	return string(r)
}

// SetFailover assigns the server's failover role and its peer (the other
// half of the pair; may be nil). Promotion flips a standby to primary via
// POST /v1/promote; a primary that observes a newer epoch in a request
// header deposes itself back to standby.
func (s *Server) SetFailover(role Role, peer *Client) {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	s.role = role
	s.peer = peer
}

// Role returns the server's current failover role.
func (s *Server) Role() Role {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	return s.role
}

// fenced wraps a mutating policy-plane handler with the epoch fence.
// Replication-plane requests (sync header) and role-less servers pass
// through untouched; everything else is stamped with the server's epoch
// and refused with 412 unless this server is the primary.
func (s *Server) fenced(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(SyncReplayHeader) != "" {
			h(w, r)
			return
		}
		s.roleMu.Lock()
		role := s.role
		s.roleMu.Unlock()
		if role == RoleNone {
			h(w, r)
			return
		}
		own := s.svc.Epoch()
		reqEpoch, _ := strconv.ParseUint(r.Header.Get(EpochHeader), 10, 64)
		if role == RolePrimary && reqEpoch > own {
			// The client has been acked by a newer epoch, so a promotion
			// happened past this server (a partition healed, a demote was
			// lost). Self-depose before acking a single stale write.
			s.roleMu.Lock()
			if s.role == RolePrimary {
				s.role = RoleStandby
			}
			role = s.role
			s.roleMu.Unlock()
		}
		w.Header().Set(EpochHeader, strconv.FormatUint(own, 10))
		if role != RolePrimary {
			resf := responseFormat(r, formatJSON)
			s.writeError(w, resf, http.StatusPreconditionFailed,
				fmt.Errorf("not primary (role %s, epoch %d)", role, own))
			return
		}
		h(w, r)
	}
}

// PromoteResult is the wire response of POST /v1/promote.
type PromoteResult struct {
	XMLName xml.Name `json:"-" xml:"promote"`
	Epoch   uint64   `json:"epoch" xml:"epoch"`
	Role    string   `json:"role" xml:"role"`
	// CaughtUp reports whether a final catch-up pull from the old primary
	// succeeded before the epoch bump (false when it was unreachable).
	CaughtUp bool `json:"caughtUp" xml:"caughtUp"`
}

// EpochDoc is the wire form of GET/POST /v1/epoch.
type EpochDoc struct {
	XMLName xml.Name `json:"-" xml:"epoch"`
	Epoch   uint64   `json:"epoch" xml:"epoch"`
	Role    string   `json:"role,omitempty" xml:"role,omitempty"`
}

// handlePromote turns this server into the primary:
//
//  1. Demote the peer first, so the old primary stops acknowledging
//     writes before the catch-up pull — otherwise a write acked between
//     pull and fence would be silently lost. An unreachable peer (the
//     very failure promotion exists for) is skipped; a reachable peer
//     that refuses demotion aborts the promotion.
//  2. Pull the peer's final state and import it (skipped when
//     unreachable — the standby serves from its last sync).
//  3. Bump the epoch through this server's own WAL, then serve as
//     primary. Every client that contacts the old primary with the new
//     epoch deposes it; every fence response routes clients here.
//
// Promoting a server that is already primary is an idempotent no-op.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	s.roleMu.Lock()
	role, peer := s.role, s.peer
	s.roleMu.Unlock()
	if role == RolePrimary {
		s.writeResponse(w, resf, http.StatusOK, &PromoteResult{
			Epoch: s.svc.Epoch(), Role: string(RolePrimary),
		})
		return
	}
	caughtUp := false
	if peer != nil {
		if _, err := peer.Demote(); err != nil {
			if !isUnreachable(err) {
				s.writeError(w, resf, http.StatusBadGateway,
					fmt.Errorf("demote peer before promotion: %w", err))
				return
			}
		} else if dump, err := peer.Dump(); err == nil {
			// ImportState adopts the dump's epoch along with the state,
			// so the bump below always lands above the old primary's.
			if err := s.svc.ImportState(dump); err != nil {
				s.writeError(w, resf, statusFor(err), err)
				return
			}
			caughtUp = true
		}
	}
	epoch, err := s.svc.BumpEpoch(s.svc.Epoch() + 1)
	if err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	s.roleMu.Lock()
	s.role = RolePrimary
	s.roleMu.Unlock()
	s.writeResponse(w, resf, http.StatusOK, &PromoteResult{
		Epoch: epoch, Role: string(RolePrimary), CaughtUp: caughtUp,
	})
}

// handleDemote steps this server down to standby (idempotent). The epoch
// is left alone: demotion fences this server, it does not elect anyone.
func (s *Server) handleDemote(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	s.roleMu.Lock()
	s.role = RoleStandby
	s.roleMu.Unlock()
	s.writeResponse(w, resf, http.StatusOK, &EpochDoc{
		Epoch: s.svc.Epoch(), Role: string(RoleStandby),
	})
}

// handleEpochGet reports the server's epoch and role.
func (s *Server) handleEpochGet(w http.ResponseWriter, r *http.Request) {
	resf := responseFormat(r, formatJSON)
	s.writeResponse(w, resf, http.StatusOK, &EpochDoc{
		Epoch: s.svc.Epoch(), Role: s.Role().String(),
	})
}

// handleEpochBump applies a WAL-logged epoch bump (archive replay of a
// bump_epoch record during resync lands here). Raising the epoch never
// changes the role: a standby stays fenced, just at a newer epoch.
func (s *Server) handleEpochBump(w http.ResponseWriter, r *http.Request) {
	reqf, err := requestFormat(r)
	resf := responseFormat(r, reqf)
	if err != nil {
		s.writeError(w, resf, http.StatusUnsupportedMediaType, err)
		return
	}
	var doc EpochDoc
	if err := decode(r, reqf, &doc); err != nil {
		s.writeError(w, resf, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	epoch, err := s.svc.BumpEpoch(doc.Epoch)
	if err != nil {
		s.writeError(w, resf, statusFor(err), err)
		return
	}
	s.writeResponse(w, resf, http.StatusOK, &EpochDoc{Epoch: epoch, Role: s.Role().String()})
}

// isUnreachable reports a transport-level failure: the peer never saw the
// request. Server-side errors (the peer answered, unhappily) are not
// unreachability — promotion must not steamroll a live, objecting peer.
func isUnreachable(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue)
}

// IsFenced reports whether err is a 412 fence response: the server is
// healthy but is not the primary. The caller should re-route to the
// current primary (ReplicatedClient does this transparently) rather than
// retry here or mark the replica down.
func IsFenced(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.StatusCode == http.StatusPreconditionFailed
}

// Epoch returns the highest fencing epoch this client has observed.
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// RaiseEpoch raises the client's observed epoch (monotonic; lower values
// are ignored). Every response from a role-assigned server raises it
// automatically; ReplicatedClient uses this to spread the newest epoch
// across its per-replica clients.
func (c *Client) RaiseEpoch(e uint64) {
	for {
		cur := c.epoch.Load()
		if e <= cur || c.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Promote asks the server to become primary (see handlePromote).
func (c *Client) Promote() (*PromoteResult, error) {
	var out PromoteResult
	if err := c.do(http.MethodPost, "/v1/promote", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Demote asks the server to step down to standby (idempotent).
func (c *Client) Demote() (*EpochDoc, error) {
	var out EpochDoc
	if err := c.do(http.MethodPost, "/v1/demote", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EpochInfo reports the server's current epoch and role.
func (c *Client) EpochInfo() (*EpochDoc, error) {
	var out EpochDoc
	if err := c.do(http.MethodGet, "/v1/epoch", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BumpEpoch raises the server's epoch through its WAL-logged bump path
// (archive replay uses it; see replayRecord).
func (c *Client) BumpEpoch(epoch uint64) (*EpochDoc, error) {
	var out EpochDoc
	if err := c.do(http.MethodPost, "/v1/epoch", &EpochDoc{Epoch: epoch}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
