package policyhttp

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"policyflow/internal/policy"
)

// FuzzDecodeRequest throws arbitrary bytes at the wire-envelope decoder —
// every request DTO, both JSON and XML — and then at the full server
// request path. Malformed, truncated, deeply nested or type-confused
// payloads must produce an error response, never a panic or a hang.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"transfers":[{"requestId":"r1","workflowId":"wf1","sourceUrl":"gsiftp://s/f","destUrl":"gsiftp://d/f"}]}`), uint8(0))
	f.Add([]byte(`{"cleanups":[{"requestId":"r2","workflowId":"wf1","fileUrl":"gsiftp://d/f"}]}`), uint8(1))
	f.Add([]byte(`{"transferIds":["t-00000001"],"failedIds":["t-00000002"]}`), uint8(2))
	f.Add([]byte(`{"cleanupIds":["c-00000001"]}`), uint8(3))
	f.Add([]byte(`{"sourceHost":"a","destHost":"b","max":5}`), uint8(4))
	f.Add([]byte(`{"nextTransfer":3,"transfers":[{"id":"t-1","sourceUrl":"s","destUrl":"d","state":3}]}`), uint8(5))
	f.Add([]byte(`<transferRequest><transfers><transfer><requestId>r1</requestId></transfer></transfers></transferRequest>`), uint8(64))
	f.Add([]byte(`<threshold><sourceHost>a</sourceHost><destHost>b</destHost><max>2</max></threshold>`), uint8(68))
	f.Add([]byte(`{"transfers":[`), uint8(0))
	f.Add([]byte(`{"transfers":{"not":"a list"}}`), uint8(0))
	f.Add([]byte(`<transferRequest>`), uint8(64))
	f.Add([]byte{0xff, 0xfe, 0x00}, uint8(0))

	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	srv := NewServer(svc, nil)
	endpoints := []string{
		"/v1/transfers",
		"/v1/cleanups",
		"/v1/transfers/completed",
		"/v1/cleanups/completed",
		"/v1/thresholds",
		"/v1/state/restore",
	}

	f.Fuzz(func(t *testing.T, data []byte, pick uint8) {
		// Decode layer: every envelope, both wire formats.
		targets := []any{
			&TransferRequest{}, &CleanupRequest{}, &CompletionDoc{},
			&CleanupReportDoc{}, &ThresholdUpdate{}, &policy.StateDump{},
		}
		for _, v := range targets {
			req := httptest.NewRequest(http.MethodPost, "/fuzz", bytes.NewReader(data))
			_ = decode(req, formatJSON, v)
			req = httptest.NewRequest(http.MethodPost, "/fuzz", bytes.NewReader(data))
			_ = decode(req, formatXML, v)
		}

		// Full request path: the response must terminate with a sane status.
		endpoint := endpoints[int(pick)%len(endpoints)]
		method := http.MethodPost
		if endpoint == "/v1/thresholds" {
			method = http.MethodPut
		}
		req := httptest.NewRequest(method, endpoint, bytes.NewReader(data))
		if pick >= 64 {
			req.Header.Set("Content-Type", "application/xml")
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("endpoint %s answered impossible status %d", endpoint, rec.Code)
		}
	})
}
