package policyhttp

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"policyflow/internal/policy"
)

// TestReplicatedReroutesAcrossPromotion drives a ReplicatedClient over a
// fenced pair across a failover: the standby's 412s are skipped without
// marking it down, and after the promotion the client transparently
// re-routes to the new primary — with every mutation applied exactly once.
func TestReplicatedReroutesAcrossPromotion(t *testing.T) {
	_, svcs, urls := fencedPair(t)
	rc, err := NewReplicatedClient(
		NewClient(urls[0], noSleep()),
		NewClient(urls[1], noSleep()))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	if rc.Leader() != 0 || rc.LastAckReplica() != 0 || rc.LastAckEpoch() != 1 {
		t.Fatalf("pre-failover ack: leader %d, replica %d, epoch %d",
			rc.Leader(), rc.LastAckReplica(), rc.LastAckEpoch())
	}
	// The standby's fence response did not down it.
	if healthy := rc.Healthy(); len(healthy) != 2 {
		t.Fatalf("healthy = %v, want both (412 is not a failure)", healthy)
	}

	// Fail over out-of-band, as policyctl promote would.
	if _, err := NewClient(urls[1], noSleep()).Promote(); err != nil {
		t.Fatal(err)
	}

	// The next mutation hits the deposed leader first, gets fenced, and
	// re-routes to the new primary under the same idempotency key.
	adv, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(2, "wf1")})
	if err != nil {
		t.Fatalf("mutation across failover failed: %v", err)
	}
	if len(adv.Transfers) != 1 || len(adv.Removed) != 0 {
		t.Fatalf("post-failover advice = %+v", adv)
	}
	if rc.Leader() != 1 || rc.LastAckReplica() != 1 || rc.LastAckEpoch() != 2 {
		t.Fatalf("post-failover ack: leader %d, replica %d, epoch %d; want 1, 1, 2",
			rc.Leader(), rc.LastAckReplica(), rc.LastAckEpoch())
	}
	if healthy := rc.Healthy(); len(healthy) != 2 {
		t.Fatalf("healthy = %v after re-route, want both", healthy)
	}
	// Exactly once: the new primary holds the pre-failover write (carried
	// by the catch-up pull) plus the re-routed one — nothing twice.
	if dump := svcs[1].ExportState(); len(dump.Transfers) != 2 || dump.NextTransfer != 2 {
		t.Fatalf("new primary holds %d transfers (next %d), want 2 (next 2)",
			len(dump.Transfers), dump.NextTransfer)
	}
}

// TestReplicatedAllFenced: mid-failover there may briefly be no primary at
// all. Every reachable replica answering 412 must surface as ErrNoPrimary
// — applied nowhere, nobody marked down.
func TestReplicatedAllFenced(t *testing.T) {
	var urls [2]string
	var svcs [2]*policy.Service
	for i := range urls {
		svc, err := policy.New(policy.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(svc, nil)
		srv.SetFailover(RoleStandby, nil)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		urls[i], svcs[i] = ts.URL, svc
	}
	rc, err := NewReplicatedClient(
		NewClient(urls[0], noSleep()),
		NewClient(urls[1], noSleep()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")}); !errors.Is(err, ErrNoPrimary) {
		t.Fatalf("err = %v, want ErrNoPrimary", err)
	}
	if healthy := rc.Healthy(); len(healthy) != 2 {
		t.Fatalf("healthy = %v, want both (fenced replicas are healthy)", healthy)
	}
	for i, svc := range svcs {
		if dump := svc.ExportState(); len(dump.Transfers) != 0 {
			t.Fatalf("replica %d applied a write while fenced: %+v", i, dump.Transfers)
		}
	}
}

// TestResyncUnreachableReplicas covers Resync's two failure sides: a
// target that cannot accept state, and donors that cannot supply it.
func TestResyncUnreachableReplicas(t *testing.T) {
	servers, _, clients := replicaSet(t, 2)
	rc, err := NewReplicatedClient(clients...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}

	// Kill replica 0; the next call downs it and replica 1 acks alone.
	servers[0].Close()
	if _, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(2, "wf1")}); err != nil {
		t.Fatal(err)
	}
	if healthy := rc.Healthy(); len(healthy) != 1 || healthy[0] != 1 {
		t.Fatalf("healthy = %v, want [1]", healthy)
	}

	// Target-side failure: the donor is fine but replica 0 is unreachable,
	// so the restore push fails and 0 stays down.
	if err := rc.Resync(0); err == nil {
		t.Fatal("resync of an unreachable target reported success")
	}
	if healthy := rc.Healthy(); len(healthy) != 1 || healthy[0] != 1 {
		t.Fatalf("healthy = %v after failed resync, want [1]", healthy)
	}

	// ResyncFrom input validation.
	if err := rc.ResyncFrom(0, 0); err == nil {
		t.Error("self-donor accepted")
	}
	if err := rc.ResyncFrom(0, 5); err == nil {
		t.Error("out-of-range donor accepted")
	}

	// Donor-side failure: with replica 1 also gone there is no donor left.
	servers[1].Close()
	if err := rc.Resync(0); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
	if healthy := rc.Healthy(); len(healthy) != 0 {
		t.Fatalf("healthy = %v, want none (failed donor marked down)", healthy)
	}
}

// TestHealthyUnderFlapping runs a replica through repeated fail/heal
// cycles: each 5xx episode downs it, each resync brings it back, and the
// pair reconverges every time.
func TestHealthyUnderFlapping(t *testing.T) {
	var svcs [2]*policy.Service
	var clients [2]*Client
	var broken atomic.Bool
	for i := range svcs {
		svc, err := policy.New(policy.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
		h := http.Handler(NewServer(svc, nil))
		if i == 1 {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if broken.Load() {
					http.Error(w, "flapping", http.StatusInternalServerError)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		clients[i] = NewClient(ts.URL, noSleep())
	}
	rc, err := NewReplicatedClient(clients[0], clients[1])
	if err != nil {
		t.Fatal(err)
	}

	for cycle := 0; cycle < 3; cycle++ {
		// Healthy phase: both replicas apply.
		if _, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(10*cycle, "wf1")}); err != nil {
			t.Fatal(err)
		}
		if healthy := rc.Healthy(); len(healthy) != 2 {
			t.Fatalf("cycle %d: healthy = %v, want both", cycle, healthy)
		}

		// Replica 1 starts failing: downed, advice still served by 0.
		broken.Store(true)
		if _, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(10*cycle+1, "wf1")}); err != nil {
			t.Fatalf("cycle %d: advise during flap failed: %v", cycle, err)
		}
		if healthy := rc.Healthy(); len(healthy) != 1 || healthy[0] != 0 {
			t.Fatalf("cycle %d: healthy = %v during flap, want [0]", cycle, healthy)
		}

		// Down is sticky until an explicit resync, even after the server
		// recovers — flapping must not silently re-admit a stale replica.
		broken.Store(false)
		if _, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(10*cycle+2, "wf1")}); err != nil {
			t.Fatal(err)
		}
		if healthy := rc.Healthy(); len(healthy) != 1 || healthy[0] != 0 {
			t.Fatalf("cycle %d: healthy = %v after recovery without resync, want [0]", cycle, healthy)
		}

		if err := rc.Resync(1); err != nil {
			t.Fatalf("cycle %d: resync failed: %v", cycle, err)
		}
		if healthy := rc.Healthy(); len(healthy) != 2 {
			t.Fatalf("cycle %d: healthy = %v after resync, want both", cycle, healthy)
		}
		d0, d1 := svcs[0].ExportState(), svcs[1].ExportState()
		if len(d0.Transfers) != len(d1.Transfers) || d0.NextTransfer != d1.NextTransfer {
			t.Fatalf("cycle %d: replicas diverged after resync: %d/%d transfers, next %d/%d",
				cycle, len(d0.Transfers), len(d1.Transfers), d0.NextTransfer, d1.NextTransfer)
		}
	}
}
