package policyhttp

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"policyflow/internal/durable"
	"policyflow/internal/policy"
)

// durableReplica starts one policy service persisting to dir, with the
// snapshot/archive endpoints enabled. The returned store is NOT closed
// automatically — crash tests abandon it deliberately.
func durableReplica(t *testing.T, dir string) (*httptest.Server, *policy.Service, *Client, *durable.PolicyStore) {
	t.Helper()
	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps, _, err := durable.OpenPolicyStore(dir, svc, durable.Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc, nil)
	srv.SetDurable(ps)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, svc, NewClient(ts.URL), ps
}

// tearWAL appends a partial record frame to the newest WAL segment in
// dir, as a crash mid-append would leave behind.
func tearWAL(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("wal segments = %v, %v", segs, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{150, 0, 0, 0, 0xaa, 0xbb, 0xcc, 0xdd, 't', 'o', 'r', 'n'})
	f.Close()
}

// TestDurableCrashRecoveryAndResync is the end-to-end reliability
// scenario: two durable replicas diverge when the primary is killed
// mid-run (leaving a torn WAL record); the primary restarts from its data
// directory, recovers its pre-crash memory, and Resync ships the
// secondary's snapshot + WAL tail to bring it back into convergence —
// after which a file staged by the first workflow is still suppressed as
// a duplicate for a second workflow.
func TestDurableCrashRecoveryAndResync(t *testing.T) {
	dir0, dir1 := t.TempDir(), t.TempDir()
	ts0, _, c0, _ := durableReplica(t, dir0)
	_, svc1, c1, _ := durableReplica(t, dir1)
	rc, err := NewReplicatedClient(c0, c1)
	if err != nil {
		t.Fatal(err)
	}

	adv, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1"), testSpec(2, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}

	// The primary dies without any shutdown path: its process state is
	// discarded (server closed, store abandoned) and its WAL gains a torn
	// final record.
	ts0.Close()
	tearWAL(t, dir0)

	// Workflow traffic continues against the surviving replica.
	adv2, err := rc.AdviseTransfers([]policy.TransferSpec{testSpec(3, "wf1")})
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if _, err := rc.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv2.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}

	// Restart the primary from its data directory. Recovery replays the
	// two pre-crash records (the failover ops never reached this replica)
	// and ignores the torn tail.
	svc0b, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps0b, stats, err := durable.OpenPolicyStore(dir0, svc0b, durable.Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ps0b.Close()
	if stats.Replayed != 2 {
		t.Fatalf("recovery replayed %d records, want 2 (pre-crash advise+report)", stats.Replayed)
	}
	srv0b := NewServer(svc0b, nil)
	srv0b.SetDurable(ps0b)
	ts0b := httptest.NewServer(srv0b)
	t.Cleanup(ts0b.Close)
	c0b := NewClient(ts0b.URL)

	// Snapshot the donor so the resync exercises the snapshot+tail path
	// rather than an all-tail archive.
	if _, err := c1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	arch, err := c1.Archive()
	if err != nil {
		t.Fatal(err)
	}
	if arch.SnapshotSeq == 0 || arch.Snapshot == nil {
		t.Fatalf("donor archive has no snapshot: %+v", arch)
	}

	// Resync the restarted primary from the survivor and verify the two
	// Policy Memories are byte-identical.
	rc2, err := NewReplicatedClient(c0b, c1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc2.Resync(0); err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(svc1.ExportState())
	got, _ := json.Marshal(svc0b.ExportState())
	if string(want) != string(got) {
		t.Fatalf("replicas diverged after resync:\n survivor: %s\n restarted: %s", want, got)
	}

	// Duplicate suppression survives the crash + resync: the file staged
	// by workflow 1 before the crash is removed from workflow 2's list on
	// the restarted primary.
	adv3, err := c0b.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv3.Removed) != 1 || adv3.Removed[0].Reason != "already-staged" {
		t.Fatalf("post-recovery advice = %+v", adv3)
	}
}

// TestSnapshotAndArchiveRequireDurable pins the 501 contract for servers
// running without a data directory.
func TestSnapshotAndArchiveRequireDurable(t *testing.T) {
	_, _, clients := replicaSet(t, 1)
	if _, err := clients[0].SnapshotNow(); err == nil {
		t.Error("SnapshotNow succeeded without a durable store")
	}
	if _, err := clients[0].Archive(); err == nil {
		t.Error("Archive succeeded without a durable store")
	}
}

// TestResyncPrefersArchive verifies a durable donor serves the archive
// path end to end, including replay of records logged after the snapshot.
func TestResyncPrefersArchive(t *testing.T) {
	dir0 := t.TempDir()
	_, svc0, c0, ps0 := durableReplica(t, dir0)
	defer ps0.Close()
	_, svc1, c1 := replicaPair(t)

	adv, err := c0.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c0.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations ride in the archive tail.
	if _, err := c0.ReportTransfers(policy.CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}

	rc, err := NewReplicatedClient(c1, c0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Resync(0); err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(svc0.ExportState())
	got, _ := json.Marshal(svc1.ExportState())
	if string(want) != string(got) {
		t.Fatalf("archive resync diverged:\n donor: %s\n target: %s", want, got)
	}
}

// replicaPair returns one memory-only replica (server, service, client).
func replicaPair(t *testing.T) (*httptest.Server, *policy.Service, *Client) {
	t.Helper()
	servers, services, clients := replicaSet(t, 1)
	return servers[0], services[0], clients[0]
}
