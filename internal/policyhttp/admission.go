package policyhttp

import (
	"errors"
	"math"
	"net/http"
	"strconv"

	"policyflow/internal/admit"
	"policyflow/internal/obs"
	"policyflow/internal/policy"
)

// ServiceRunner adapts a policy service to the admission controller's
// batch dispatcher: one call executes a coalesced batch of client
// mutations under a single lock acquisition and a single group-commit
// fsync.
func ServiceRunner(svc *policy.Service) admit.BatchRunner {
	return func(batch []any) {
		muts := make([]*policy.BatchMutation, len(batch))
		for i, b := range batch {
			muts[i] = b.(*policy.BatchMutation)
		}
		svc.ExecuteBatch(muts)
	}
}

// NewAdmissionController builds an admission controller whose batch
// dispatcher drains into svc.ExecuteBatch.
func NewAdmissionController(svc *policy.Service, cfg admit.Config) *admit.Controller {
	return admit.New(cfg, ServiceRunner(svc))
}

// SetAdmission installs the admission controller: advise/report mutations
// go through its coalescing queue and read-only endpoints through its
// concurrency gate, with anything beyond the configured bounds shed as
// 429/503 + Retry-After before any side effect. Call before serving
// traffic. A nil controller (the default) admits everything directly.
func (s *Server) SetAdmission(ctl *admit.Controller) { s.admit = ctl }

// Admission returns the installed controller (nil when admission is
// disabled); fault-injection harnesses use it to arm deterministic sheds.
func (s *Server) Admission() *admit.Controller { return s.admit }

// retryAfterSeconds renders the controller's backoff hint as a
// Retry-After header value (integer seconds, minimum 1).
func (s *Server) retryAfterSeconds() string {
	secs := int(math.Ceil(s.admit.RetryAfterHint().Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeShed maps an admission error onto the wire: 429 + Retry-After for
// overload (healthy but busy — back off and retry), 503 + Retry-After
// while draining for shutdown, and 408 when the client's own context
// ended while queued (the response is a courtesy; the client has usually
// stopped listening).
func (s *Server) writeShed(w http.ResponseWriter, f format, err error) {
	switch {
	case errors.Is(err, admit.ErrDraining):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		s.writeError(w, f, http.StatusServiceUnavailable, err)
	case errors.Is(err, admit.ErrCanceled):
		s.writeError(w, f, http.StatusRequestTimeout, err)
	default: // ErrQueueFull, ErrWaitExceeded
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		s.writeError(w, f, http.StatusTooManyRequests, err)
	}
}

// runAdmitted pushes one mutation through the admission queue and blocks
// until the batch dispatcher has executed it (results land on mut) or it
// was shed, in which case the shed response has been written and false is
// returned. The queue wait is traced as an admit.wait span ended by the
// dispatcher at dequeue.
func (s *Server) runAdmitted(w http.ResponseWriter, r *http.Request, f format, mut *policy.BatchMutation) bool {
	ctx := r.Context()
	_, waitSpan := obs.StartSpan(ctx, s.tracer, "admit.wait")
	// onStart fires only for tasks that reach execution, so the span End
	// calls are mutually exclusive with the error path below.
	err := s.admit.SubmitMutation(ctx, mut, func() { waitSpan.End() })
	if err != nil {
		waitSpan.End()
		s.writeShed(w, f, err)
		return false
	}
	return true
}

// admitRead gates a read-only handler behind the controller's read
// concurrency slots when admission is enabled.
func (s *Server) admitRead(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.admit == nil {
			h(w, r)
			return
		}
		release, err := s.admit.AcquireRead(r.Context())
		if err != nil {
			s.writeShed(w, responseFormat(r, formatJSON), err)
			return
		}
		defer release()
		h(w, r)
	}
}
