package policyhttp

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"policyflow/internal/policy"
)

// fencedServer starts one role-assigned policy server with no peer.
func fencedServer(t *testing.T, role Role) (*Server, *policy.Service, *Client, string) {
	t.Helper()
	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc, nil)
	srv.SetFailover(role, nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, svc, NewClient(ts.URL, noSleep()), ts.URL
}

// fencedPair wires a primary/standby pair whose servers know each other as
// peers, with the primary seeded at epoch 1.
func fencedPair(t *testing.T) (srvs [2]*Server, svcs [2]*policy.Service, urls [2]string) {
	t.Helper()
	for i := 0; i < 2; i++ {
		svc, err := policy.New(policy.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(svc, nil)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		srvs[i], svcs[i], urls[i] = srv, svc, ts.URL
	}
	srvs[0].SetFailover(RolePrimary, NewClient(urls[1], noSleep()))
	srvs[1].SetFailover(RoleStandby, NewClient(urls[0], noSleep()))
	if _, err := svcs[0].BumpEpoch(1); err != nil {
		t.Fatal(err)
	}
	return srvs, svcs, urls
}

// TestFenceRejectsEveryMutation drives every mutating policy-plane
// endpoint against a standby and requires the epoch fence on each: 412
// Precondition Failed carrying the server's epoch, surfaced through
// IsFenced, with the client's observed epoch raised by the response.
func TestFenceRejectsEveryMutation(t *testing.T) {
	_, svc, c, _ := fencedServer(t, RoleStandby)
	if _, err := svc.BumpEpoch(3); err != nil {
		t.Fatal(err)
	}
	calls := []struct {
		name string
		call func() error
	}{
		{"adviseTransfers", func() error {
			_, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")})
			return err
		}},
		{"reportTransfers", func() error {
			_, err := c.ReportTransfers(policy.CompletionReport{TransferIDs: []string{"t-1"}})
			return err
		}},
		{"adviseCleanups", func() error {
			_, err := c.AdviseCleanups(nil)
			return err
		}},
		{"reportCleanups", func() error {
			_, err := c.ReportCleanups(policy.CleanupReport{})
			return err
		}},
		{"setThreshold", func() error {
			return c.SetThreshold("hostA", "hostB", 4)
		}},
		{"activateBundleDoc", func() error {
			_, err := c.ActivateBundleDoc([]byte(`{}`))
			return err
		}},
		{"rollbackBundle", func() error {
			_, err := c.RollbackBundle()
			return err
		}},
		{"renewLease", func() error {
			_, err := c.RenewLease("wf1")
			return err
		}},
		{"advanceClock", func() error {
			_, err := c.AdvanceClock(99)
			return err
		}},
	}
	for _, tc := range calls {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("standby accepted a client mutation")
			}
			if !IsFenced(err) {
				t.Fatalf("err = %v, want a 412 fence response", err)
			}
			var se *ServerError
			if !errors.As(err, &se) || se.Epoch != 3 {
				t.Fatalf("fence response epoch = %+v, want 3", err)
			}
		})
	}
	// The fence responses taught the client the fencing epoch.
	if c.Epoch() != 3 {
		t.Fatalf("client epoch = %d, want 3 (raised by fence responses)", c.Epoch())
	}
	// Nothing was applied behind the fence.
	if snap := svc.Snapshot(); snap.InFlight != 0 || snap.StagedResources != 0 {
		t.Fatalf("standby state mutated behind the fence: %+v", snap)
	}
}

// TestFenceAllowsReadsAndReplication proves the fence is scoped to client
// mutations: reads and the replication plane still work on a standby, and
// the sync-replay header lets archive replay through.
func TestFenceAllowsReadsAndReplication(t *testing.T) {
	_, svc, c, url := fencedServer(t, RoleStandby)
	if _, err := svc.BumpEpoch(3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.State(); err != nil {
		t.Fatalf("standby refused a read: %v", err)
	}
	if _, err := c.Dump(); err != nil {
		t.Fatalf("standby refused a state dump: %v", err)
	}
	info, err := c.EpochInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 3 || info.Role != string(RoleStandby) {
		t.Fatalf("epoch info = %+v", info)
	}

	// Raw HTTP: a client mutation is fenced with the epoch stamped on the
	// response header; the same request marked as replication-plane
	// traffic (archive replay during resync) passes through.
	body, _ := json.Marshal(&ClockUpdate{Now: 5})
	post := func(sync bool) *http.Response {
		req, err := http.NewRequest(http.MethodPost, url+"/v1/clock/advance", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if sync {
			req.Header.Set(SyncReplayHeader, "1")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(false); resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("unmarked mutation: status %d, want 412", resp.StatusCode)
	} else if got := resp.Header.Get(EpochHeader); got != "3" {
		t.Fatalf("fence response %s = %q, want 3", EpochHeader, got)
	}
	if resp := post(true); resp.StatusCode != http.StatusOK {
		t.Fatalf("sync-replay mutation: status %d, want 200", resp.StatusCode)
	}
}

// TestFenceSelfDeposesStalePrimary: a primary that sees a request carrying
// a newer epoch has provably been passed by a promotion — it must fence the
// write and step down before acknowledging anything stale.
func TestFenceSelfDeposesStalePrimary(t *testing.T) {
	srv, svc, c, _ := fencedServer(t, RolePrimary)
	if _, err := svc.BumpEpoch(1); err != nil {
		t.Fatal(err)
	}
	// Sanity: as primary at the newest epoch it accepts writes.
	if _, err := c.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")}); err != nil {
		t.Fatalf("primary refused a write: %v", err)
	}
	// The client has been acked by epoch 2 elsewhere; its next request
	// deposes this server.
	c.RaiseEpoch(2)
	if _, err := c.AdviseTransfers(nil); !IsFenced(err) {
		t.Fatalf("stale primary answered %v, want a 412 fence response", err)
	}
	if got := srv.Role(); got != RoleStandby {
		t.Fatalf("stale primary role = %s, want standby (self-deposed)", got)
	}
	// Deposed is sticky: the next write is fenced too.
	if err := c.SetThreshold("a", "b", 2); !IsFenced(err) {
		t.Fatalf("deposed primary accepted a write: %v", err)
	}
}

// TestPromoteCleanSwitchover walks the full promote protocol against a
// reachable peer: demote-first, catch-up pull, epoch bump, role flip — and
// proves promotion is idempotent.
func TestPromoteCleanSwitchover(t *testing.T) {
	srvs, svcs, urls := fencedPair(t)
	c0 := NewClient(urls[0], noSleep())
	c1 := NewClient(urls[1], noSleep())

	// Acknowledged state on the primary that the standby never synced.
	if _, err := c0.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}

	res, err := c1.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 2 || !res.CaughtUp || res.Role != string(RolePrimary) {
		t.Fatalf("promote result = %+v, want epoch 2, caughtUp, primary", res)
	}
	if got := srvs[0].Role(); got != RoleStandby {
		t.Fatalf("old primary role = %s, want standby (demoted before catch-up)", got)
	}
	// The catch-up pull carried the acknowledged write across.
	if got, want := svcs[1].ExportState().NextTransfer, svcs[0].ExportState().NextTransfer; got != want {
		t.Fatalf("new primary NextTransfer = %d, old primary %d — acked write lost", got, want)
	}
	if svcs[1].Epoch() != 2 {
		t.Fatalf("new primary epoch = %d, want 2", svcs[1].Epoch())
	}

	// The old primary now fences; the new one serves.
	if err := c0.SetThreshold("a", "b", 2); !IsFenced(err) {
		t.Fatalf("old primary accepted a post-failover write: %v", err)
	}
	adv, err := c1.AdviseTransfers([]policy.TransferSpec{testSpec(1, "wf2")})
	if err != nil {
		t.Fatalf("new primary refused a write: %v", err)
	}
	// The duplicate of the pre-failover file is suppressed from carried
	// state — the same answer the old primary would have given.
	if len(adv.Removed) != 1 {
		t.Fatalf("carried state did not suppress the duplicate: %+v", adv)
	}

	// Promoting the primary again is a no-op at the same epoch.
	res2, err := c1.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Epoch != 2 || res2.Role != string(RolePrimary) {
		t.Fatalf("re-promote result = %+v, want idempotent epoch 2", res2)
	}
}

// TestPromoteUnreachablePeer is the failure promotion exists for: the
// primary is gone, so the standby serves from its last sync, reporting
// CaughtUp=false.
func TestPromoteUnreachablePeer(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc, nil)
	srv.SetFailover(RoleStandby, NewClient(deadURL,
		noSleep(), WithRetry(RetryPolicy{MaxAttempts: 1})))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	res, err := NewClient(ts.URL, noSleep()).Promote()
	if err != nil {
		t.Fatalf("promotion with an unreachable peer failed: %v", err)
	}
	if res.CaughtUp {
		t.Fatal("promote reported a catch-up pull from an unreachable peer")
	}
	if res.Epoch != 1 || srv.Role() != RolePrimary {
		t.Fatalf("promote result = %+v, role %s; want epoch 1, primary", res, srv.Role())
	}
}

// TestPromoteAbortsWhenPeerRefuses: a peer that answers the demote — and
// objects — is alive, so promotion must not steamroll it. The promote
// fails with 502 and the standby stays fenced.
func TestPromoteAbortsWhenPeerRefuses(t *testing.T) {
	angry := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "demote refused", http.StatusInternalServerError)
	}))
	t.Cleanup(angry.Close)

	svc, err := policy.New(policy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc, nil)
	srv.SetFailover(RoleStandby, NewClient(angry.URL,
		noSleep(), WithRetry(RetryPolicy{MaxAttempts: 1})))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	_, err = NewClient(ts.URL, noSleep()).Promote()
	var se *ServerError
	if !errors.As(err, &se) || se.StatusCode != http.StatusBadGateway {
		t.Fatalf("promote over an objecting peer: err = %v, want 502", err)
	}
	if srv.Role() != RoleStandby || svc.Epoch() != 0 {
		t.Fatalf("aborted promote left role %s epoch %d; want standby, 0", srv.Role(), svc.Epoch())
	}
}

// BenchmarkFailoverPromote measures a clean switchover round trip: demote
// the reachable peer, pull its final state, bump the epoch through the WAL
// and start serving. Roles alternate each iteration so every promote is a
// real standby-to-primary transition over the same seeded state.
func BenchmarkFailoverPromote(b *testing.B) {
	var srvs [2]*Server
	var urls [2]string
	for i := 0; i < 2; i++ {
		svc, err := policy.New(policy.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		srvs[i] = NewServer(svc, nil)
		ts := httptest.NewServer(srvs[i])
		b.Cleanup(ts.Close)
		urls[i] = ts.URL
		if i == 0 {
			if _, err := svc.BumpEpoch(1); err != nil {
				b.Fatal(err)
			}
		}
	}
	srvs[0].SetFailover(RolePrimary, NewClient(urls[1], noSleep()))
	srvs[1].SetFailover(RoleStandby, NewClient(urls[0], noSleep()))
	seed := NewClient(urls[0], noSleep())
	for i := 0; i < 8; i++ {
		if _, err := seed.AdviseTransfers([]policy.TransferSpec{testSpec(i, "wf-bench")}); err != nil {
			b.Fatal(err)
		}
	}
	clients := [2]*Client{
		NewClient(urls[0], noSleep()),
		NewClient(urls[1], noSleep()),
	}
	standby := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := clients[standby].Promote()
		if err != nil {
			b.Fatal(err)
		}
		if !res.CaughtUp || res.Role != string(RolePrimary) {
			b.Fatalf("promote result = %+v", res)
		}
		standby = 1 - standby
	}
}
