package policyhttp

import (
	"errors"
	"net/http"
	"testing"
	"time"
)

// TestRetryDelayPrefersHint pins the precedence rule: a server Retry-After
// hint replaces the exponential backoff for that retry; without a hint the
// normal schedule applies.
func TestRetryDelayPrefersHint(t *testing.T) {
	c, _, _ := retryClient(nil, WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseBackoff: 10 * time.Millisecond,
		MaxBackoff: 10 * time.Second, Jitter: 0,
	}))
	if got := c.retryDelay(1, 5*time.Second); got != 5*time.Second {
		t.Errorf("retryDelay with hint = %v, want the 5s hint", got)
	}
	if got := c.retryDelay(1, 0); got != 10*time.Millisecond {
		t.Errorf("retryDelay without hint = %v, want BaseBackoff", got)
	}
	// The hint applies per-retry: a later retry with no hint falls back to
	// the (doubled) schedule, not the previous hint.
	if got := c.retryDelay(2, 0); got != 20*time.Millisecond {
		t.Errorf("retryDelay(2) without hint = %v, want 20ms", got)
	}
}

// TestRetryDelayCapsHint: a misbehaving server cannot park the client —
// the hint is clamped to MaxBackoff.
func TestRetryDelayCapsHint(t *testing.T) {
	c, _, _ := retryClient(nil, WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseBackoff: 10 * time.Millisecond,
		MaxBackoff: 2 * time.Second, Jitter: 0,
	}))
	if got := c.retryDelay(1, 30*time.Second); got != 2*time.Second {
		t.Errorf("retryDelay with oversized hint = %v, want MaxBackoff cap 2s", got)
	}
}

// TestRetryDelayKeepsJitter: honoring the hint must not remove jitter, or
// every client shed in the same burst would retry in lockstep.
func TestRetryDelayKeepsJitter(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Millisecond,
		MaxBackoff: 10 * time.Second, Jitter: 0.2}
	c, _, _ := retryClient(nil, WithRetry(pol), WithJitterSeed(7))
	hint := time.Second
	lo, hi := 800*time.Millisecond, 1200*time.Millisecond
	sawOffNominal := false
	for i := 0; i < 8; i++ {
		d := c.retryDelay(1, hint)
		if d < lo || d > hi {
			t.Fatalf("jittered hint delay %v outside [%v, %v]", d, lo, hi)
		}
		if d != hint {
			sawOffNominal = true
		}
	}
	if !sawOffNominal {
		t.Error("eight jittered draws all landed exactly on the hint")
	}
}

// TestRetryAfterHonoredOn429 runs the full retry loop: the first attempt
// is shed with 429 + Retry-After, the client sleeps exactly the hint
// (jitter disabled) and retries under the same idempotency key.
func TestRetryAfterHonoredOn429(t *testing.T) {
	c, st, sleeps := retryClient(
		[]int{http.StatusTooManyRequests, http.StatusOK},
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond,
			MaxBackoff: 10 * time.Second, Jitter: 0}),
	)
	st.retryAfter = []string{"3"}
	if err := c.SetThreshold("a", "b", 3); err != nil {
		t.Fatalf("call failed despite retry budget: %v", err)
	}
	if st.calls != 2 {
		t.Fatalf("%d attempts, want 2", st.calls)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 3*time.Second {
		t.Fatalf("sleeps = %v, want exactly the 3s Retry-After hint", *sleeps)
	}
	if st.keys[0] == "" || st.keys[0] != st.keys[1] {
		t.Fatalf("idempotency keys varied across the shed retry: %v", st.keys)
	}
}

// TestRetryAfterHonoredOn503: draining servers hint too, same contract.
func TestRetryAfterHonoredOn503(t *testing.T) {
	c, st, sleeps := retryClient(
		[]int{http.StatusServiceUnavailable, http.StatusOK},
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond,
			MaxBackoff: 10 * time.Second, Jitter: 0}),
	)
	st.retryAfter = []string{"2"}
	if err := c.SetThreshold("a", "b", 3); err != nil {
		t.Fatal(err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 2*time.Second {
		t.Fatalf("sleeps = %v, want the 2s hint", *sleeps)
	}
}

// TestRetryAfterCapInLoop: an absurd hint in a live retry loop is clamped
// to MaxBackoff before sleeping.
func TestRetryAfterCapInLoop(t *testing.T) {
	c, st, sleeps := retryClient(
		[]int{http.StatusTooManyRequests, http.StatusOK},
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond,
			MaxBackoff: 50 * time.Millisecond, Jitter: 0}),
	)
	st.retryAfter = []string{"9999"}
	if err := c.SetThreshold("a", "b", 3); err != nil {
		t.Fatal(err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 50*time.Millisecond {
		t.Fatalf("sleeps = %v, want the 50ms MaxBackoff cap", *sleeps)
	}
}

// TestBusySurfacesAfterExhaustion: a persistently shedding server yields a
// ServerError that IsBusy (not IsRejection-style terminal) with the parsed
// Retry-After attached, so callers like the transfer tool can treat it as
// "healthy but overloaded".
func TestBusySurfacesAfterExhaustion(t *testing.T) {
	c, st, _ := retryClient(
		[]int{http.StatusTooManyRequests, http.StatusTooManyRequests, http.StatusTooManyRequests},
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond,
			MaxBackoff: time.Second, Jitter: 0}),
	)
	st.retryAfter = []string{"1", "1", "1"}
	err := c.SetThreshold("a", "b", 3)
	if err == nil {
		t.Fatal("call succeeded against a permanently shedding server")
	}
	if st.calls != 3 {
		t.Fatalf("%d attempts, want the full budget of 3", st.calls)
	}
	if !IsBusy(err) {
		t.Fatalf("IsBusy(%v) = false, want true for a final 429", err)
	}
	var se *ServerError
	if !errors.As(err, &se) || se.RetryAfter != time.Second {
		t.Fatalf("error = %v, want ServerError carrying the 1s Retry-After", err)
	}
	if se.HTTPStatus() != http.StatusTooManyRequests {
		t.Fatalf("HTTPStatus = %d", se.HTTPStatus())
	}
}
