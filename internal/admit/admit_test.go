package admit

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"policyflow/internal/obs"
)

// gatedRunner blocks every batch until released, so tests control exactly
// when the dispatcher is busy and what has piled up behind it.
type gatedRunner struct {
	entered chan []any    // receives each batch as the runner starts it
	release chan struct{} // one receive per batch lets it finish
	batches [][]any       // completed batches, guarded by mu
	mu      sync.Mutex
}

func newGatedRunner() *gatedRunner {
	return &gatedRunner{entered: make(chan []any, 16), release: make(chan struct{}, 16)}
}

func (g *gatedRunner) run(batch []any) {
	g.entered <- batch
	<-g.release
	g.mu.Lock()
	g.batches = append(g.batches, batch)
	g.mu.Unlock()
}

func (g *gatedRunner) executed() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, b := range g.batches {
		n += len(b)
	}
	return n
}

// submitAsync starts a SubmitMutation in a goroutine and returns its
// result channel.
func submitAsync(c *Controller, ctx context.Context, payload any) chan error {
	ch := make(chan error, 1)
	go func() { ch <- c.SubmitMutation(ctx, payload, nil) }()
	return ch
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxQueue != 256 || cfg.MaxWait != 250*time.Millisecond || cfg.BatchMax != 32 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.ReadConcurrency <= 0 || cfg.RetryAfter != time.Second {
		t.Errorf("defaults = %+v", cfg)
	}
}

// TestBatchCoalescing pins the group-commit shape: mutations that pile up
// while the dispatcher is busy drain as one batch (one runner call),
// capped at BatchMax.
func TestBatchCoalescing(t *testing.T) {
	g := newGatedRunner()
	c := New(Config{MaxQueue: 16, MaxWait: 5 * time.Second, BatchMax: 4}, g.run)
	defer c.Close()

	first := submitAsync(c, context.Background(), 0)
	b1 := <-g.entered // dispatcher busy with the first mutation alone
	if len(b1) != 1 {
		t.Fatalf("first batch has %d payloads, want 1", len(b1))
	}
	// Five more pile up while the runner is blocked.
	var waiters []chan error
	for i := 1; i <= 5; i++ {
		waiters = append(waiters, submitAsync(c, context.Background(), i))
	}
	for c.Depth(ClassMutate) < 6 {
		time.Sleep(time.Millisecond)
	}
	g.release <- struct{}{}
	b2 := <-g.entered
	if len(b2) != 4 {
		t.Fatalf("coalesced batch has %d payloads, want BatchMax=4", len(b2))
	}
	g.release <- struct{}{}
	b3 := <-g.entered
	if len(b3) != 1 {
		t.Fatalf("final batch has %d payloads, want 1", len(b3))
	}
	g.release <- struct{}{}
	if err := <-first; err != nil {
		t.Fatalf("first mutation: %v", err)
	}
	for i, w := range waiters {
		if err := <-w; err != nil {
			t.Fatalf("mutation %d: %v", i+1, err)
		}
	}
	if got := g.executed(); got != 6 {
		t.Fatalf("executed %d payloads, want 6", got)
	}
}

// TestQueueFullSheds proves the depth bound: with the dispatcher busy and
// the queue full, the next submission is rejected immediately — before
// any side effect — with ErrQueueFull.
func TestQueueFullSheds(t *testing.T) {
	g := newGatedRunner()
	c := New(Config{MaxQueue: 2, MaxWait: 5 * time.Second, BatchMax: 1}, g.run)
	defer c.Close()

	a := submitAsync(c, context.Background(), "a")
	<-g.entered
	b := submitAsync(c, context.Background(), "b")
	cc := submitAsync(c, context.Background(), "c")
	for c.Depth(ClassMutate) < 3 {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	err := c.SubmitMutation(context.Background(), "d", nil)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission = %v, want ErrQueueFull", err)
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("shed took %s, want immediate rejection", since)
	}
	for i := 0; i < 3; i++ {
		g.release <- struct{}{}
	}
	for i, ch := range []chan error{a, b, cc} {
		if err := <-ch; err != nil {
			t.Fatalf("queued mutation %d: %v", i, err)
		}
	}
	if got := g.executed(); got != 3 {
		t.Fatalf("executed %d payloads, want 3 (the shed one never ran)", got)
	}
}

// TestWaitExceeded pins the wait budget: a mutation stuck behind a slow
// batch is shed with ErrWaitExceeded and never executed.
func TestWaitExceeded(t *testing.T) {
	g := newGatedRunner()
	c := New(Config{MaxQueue: 8, MaxWait: 20 * time.Millisecond, BatchMax: 1}, g.run)
	defer c.Close()

	a := submitAsync(c, context.Background(), "a")
	<-g.entered
	err := c.SubmitMutation(context.Background(), "b", nil)
	if !errors.Is(err, ErrWaitExceeded) {
		t.Fatalf("stuck submission = %v, want ErrWaitExceeded", err)
	}
	g.release <- struct{}{}
	if err := <-a; err != nil {
		t.Fatalf("first mutation: %v", err)
	}
	// The abandoned task is discarded on dequeue, not executed.
	deadline := time.Now().Add(time.Second)
	for c.Depth(ClassMutate) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned task still pending")
		}
		time.Sleep(time.Millisecond)
	}
	if got := g.executed(); got != 1 {
		t.Fatalf("executed %d payloads, want 1 (the shed one never ran)", got)
	}
}

// TestCanceledWhileQueued pins deadline propagation: a client that gives
// up while queued gets ErrCanceled and its mutation never runs.
func TestCanceledWhileQueued(t *testing.T) {
	g := newGatedRunner()
	c := New(Config{MaxQueue: 8, MaxWait: 5 * time.Second, BatchMax: 1}, g.run)
	defer c.Close()

	a := submitAsync(c, context.Background(), "a")
	<-g.entered
	ctx, cancel := context.WithCancel(context.Background())
	b := submitAsync(c, ctx, "b")
	for c.Depth(ClassMutate) < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-b; !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled submission = %v, want ErrCanceled", err)
	}
	g.release <- struct{}{}
	if err := <-a; err != nil {
		t.Fatalf("first mutation: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for c.Depth(ClassMutate) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned task still pending")
		}
		time.Sleep(time.Millisecond)
	}
	if got := g.executed(); got != 1 {
		t.Fatalf("executed %d payloads, want 1 (the canceled one never ran)", got)
	}
}

func TestFailNextInjectsSheds(t *testing.T) {
	var ran atomic.Int32
	c := New(Config{MaxQueue: 8}, func(batch []any) { ran.Add(int32(len(batch))) })
	defer c.Close()
	c.FailNext(2)
	for i := 0; i < 2; i++ {
		if err := c.SubmitMutation(context.Background(), i, nil); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("armed submission %d = %v, want ErrQueueFull", i, err)
		}
	}
	if err := c.SubmitMutation(context.Background(), 2, nil); err != nil {
		t.Fatalf("submission after arming consumed: %v", err)
	}
	if ran.Load() != 1 {
		t.Fatalf("%d payloads ran, want 1", ran.Load())
	}
}

func TestOnStartRunsOnlyForExecutedTasks(t *testing.T) {
	g := newGatedRunner()
	c := New(Config{MaxQueue: 8, MaxWait: 5 * time.Second, BatchMax: 1}, g.run)
	defer c.Close()
	var started atomic.Int32
	onStart := func() { started.Add(1) }
	ch := make(chan error, 1)
	go func() { ch <- c.SubmitMutation(context.Background(), "a", onStart) }()
	<-g.entered
	if started.Load() != 1 {
		t.Fatalf("onStart ran %d times before execution, want 1 (at dequeue)", started.Load())
	}
	c.FailNext(1)
	if err := c.SubmitMutation(context.Background(), "b", onStart); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("armed submission = %v", err)
	}
	g.release <- struct{}{}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	if started.Load() != 1 {
		t.Fatalf("onStart ran %d times, want 1 (never for shed tasks)", started.Load())
	}
}

func TestAcquireRead(t *testing.T) {
	c := New(Config{MaxQueue: 2, MaxWait: 20 * time.Millisecond, ReadConcurrency: 1}, func([]any) {})
	defer c.Close()

	rel1, err := c.AcquireRead(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The single slot is held: the next read times out on the wait budget.
	if _, err := c.AcquireRead(context.Background()); !errors.Is(err, ErrWaitExceeded) {
		t.Fatalf("second read = %v, want ErrWaitExceeded", err)
	}
	// A canceled caller is shed with ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.AcquireRead(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled read = %v, want ErrCanceled", err)
	}
	rel1()
	rel1() // idempotent: the slot releases once
	rel2, err := c.AcquireRead(context.Background())
	if err != nil {
		t.Fatalf("read after release: %v", err)
	}
	rel2()
}

// TestReadQueueBound: reads beyond MaxQueue+ReadConcurrency pending shed
// immediately instead of piling up.
func TestReadQueueBound(t *testing.T) {
	c := New(Config{MaxQueue: 1, MaxWait: time.Second, ReadConcurrency: 1}, func([]any) {})
	defer c.Close()
	rel, err := c.AcquireRead(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	waiting := make(chan error, 1)
	go func() {
		r, err := c.AcquireRead(context.Background())
		if err == nil {
			defer r()
		}
		waiting <- err
	}()
	for c.Depth(ClassRead) < 2 {
		time.Sleep(time.Millisecond)
	}
	if _, err := c.AcquireRead(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("read beyond bound = %v, want ErrQueueFull", err)
	}
	rel()
	if err := <-waiting; err != nil {
		t.Fatalf("queued read: %v", err)
	}
}

func TestDrainAndClose(t *testing.T) {
	g := newGatedRunner()
	// A short wait budget keeps the refusal probes below cycling until
	// they observe the drain; the accepted mutation is already claimed by
	// the dispatcher, so the budget cannot shed it.
	c := New(Config{MaxQueue: 8, MaxWait: 20 * time.Millisecond, BatchMax: 1}, g.run)

	a := submitAsync(c, context.Background(), "a")
	<-g.entered
	drainDone := make(chan error, 1)
	go func() { drainDone <- c.Drain(context.Background()) }()
	// New work of both classes is refused while draining. Probes racing
	// ahead of the drain flag are shed on the wait budget; retry until
	// the drain refusal shows up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.SubmitMutation(context.Background(), "late", nil)
		if errors.Is(err, ErrDraining) {
			break
		}
		if !errors.Is(err, ErrWaitExceeded) && !errors.Is(err, ErrQueueFull) {
			t.Fatalf("mutation during drain = %v, want ErrDraining", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("mutation during drain still %v, want ErrDraining", err)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.AcquireRead(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("read during drain = %v, want ErrDraining", err)
	}
	g.release <- struct{}{}
	if err := <-a; err != nil {
		t.Fatalf("accepted mutation during drain: %v", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	c.Close()
	if err := c.SubmitMutation(context.Background(), "post", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close submission = %v, want ErrDraining", err)
	}
}

func TestDrainDeadline(t *testing.T) {
	g := newGatedRunner()
	c := New(Config{MaxQueue: 8, MaxWait: 5 * time.Second, BatchMax: 1}, g.run)
	defer func() {
		g.release <- struct{}{}
		c.Close()
	}()
	a := submitAsync(c, context.Background(), "a")
	<-g.entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with wedged runner = %v, want deadline exceeded", err)
	}
	_ = a
}

func TestRunnerPanicFailsBatchNotDispatcher(t *testing.T) {
	var calls atomic.Int32
	c := New(Config{MaxQueue: 8, BatchMax: 4}, func(batch []any) {
		if calls.Add(1) == 1 {
			panic("boom")
		}
	})
	defer c.Close()
	err := c.SubmitMutation(context.Background(), "a", nil)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("mutation in panicking batch = %v, want panic error", err)
	}
	// The dispatcher survived: the next mutation executes normally.
	if err := c.SubmitMutation(context.Background(), "b", nil); err != nil {
		t.Fatalf("mutation after panic: %v", err)
	}
}

func TestInstrumentMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{MaxQueue: 4}, func([]any) {})
	c.Instrument(reg)
	defer c.Close()
	c.FailNext(1)
	if err := c.SubmitMutation(context.Background(), "a", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatal(err)
	}
	if err := c.SubmitMutation(context.Background(), "b", nil); err != nil {
		t.Fatal(err)
	}
	rel, err := c.AcquireRead(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, frag := range []string{
		"policy_admit_depth{class=\"mutate\"}",
		"policy_admit_depth{class=\"read\"}",
		"policy_admit_shed_total{class=\"mutate\",reason=\"injected\"} 1",
		"policy_admit_batch_size",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("scrape missing %q:\n%s", frag, text)
		}
	}
}

// TestStressBoundedDepthNoLeaks hammers the controller at 4x saturation
// under -race: clients far outnumber queue slots, so most submissions
// shed, but the pending depth must never exceed MaxQueue plus one
// executing batch, every accepted mutation must execute exactly once,
// and after Drain+Close no goroutine may linger.
func TestStressBoundedDepthNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	const (
		maxQueue = 16
		batchMax = 4
		workers  = 4 * maxQueue // 4x saturation
		perW     = 25
	)
	var executed atomic.Int64
	c := New(Config{MaxQueue: maxQueue, MaxWait: 2 * time.Millisecond, BatchMax: batchMax},
		func(batch []any) {
			executed.Add(int64(len(batch)))
			time.Sleep(200 * time.Microsecond) // keep the queue saturated
		})

	var wg sync.WaitGroup
	var accepted, shed atomic.Int64
	var depthViolation atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if d := c.Depth(ClassMutate); d > maxQueue+batchMax {
					depthViolation.Store(int64(d))
				}
				err := c.SubmitMutation(context.Background(), fmt.Sprintf("%d-%d", w, i), nil)
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrWaitExceeded):
					shed.Add(1)
				default:
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if v := depthViolation.Load(); v != 0 {
		t.Errorf("queue depth reached %d, bound is %d", v, maxQueue+batchMax)
	}
	if accepted.Load() == 0 || shed.Load() == 0 {
		t.Errorf("accepted=%d shed=%d: the stress run must both admit and shed", accepted.Load(), shed.Load())
	}
	if executed.Load() != accepted.Load() {
		t.Errorf("executed %d mutations, accepted %d: must match exactly", executed.Load(), accepted.Load())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drain after storm: %v", err)
	}
	c.Close()

	// The dispatcher and every waiter are gone; allow the runtime a
	// moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
