// Package admit is the admission-control layer in front of the policy
// core. It bounds the work the service accepts instead of letting every
// request park a goroutine on the service mutex: mutating requests enter
// a bounded coalescing queue drained in batches (one lock acquisition and
// one group-commit fsync per batch), read-only requests pass through a
// bounded concurrency gate, and everything beyond the configured depth or
// wait budget is shed with an explicit "busy" error before any side
// effect happens. Queued requests whose client context has already ended
// are abandoned rather than executed — the client stopped listening, so
// performing the work would only add load during overload.
package admit

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"policyflow/internal/obs"
)

// Admission classes, used as the metric label and the Depth selector.
const (
	ClassMutate = "mutate"
	ClassRead   = "read"
)

// Shedding errors. ErrQueueFull and ErrWaitExceeded mean "healthy but
// busy" (HTTP 429): the caller should back off and retry. ErrDraining
// means the controller is shutting down (HTTP 503). ErrCanceled means
// the caller's own context ended while the request was queued; the
// request was abandoned without side effects.
var (
	ErrQueueFull    = errors.New("admit: queue full")
	ErrWaitExceeded = errors.New("admit: queue wait budget exceeded")
	ErrDraining     = errors.New("admit: draining, not accepting new work")
	ErrCanceled     = errors.New("admit: canceled while queued")
)

// Config bounds the controller. The zero value of any field selects its
// default.
type Config struct {
	// MaxQueue is the depth bound per class: mutations queued for the
	// batch dispatcher, and reads waiting for a concurrency slot. Beyond
	// it submissions shed immediately with ErrQueueFull.
	MaxQueue int
	// MaxWait is how long a request may sit queued before it is shed
	// with ErrWaitExceeded. Bounding the wait keeps queueing delay out
	// of p99 once the service saturates: beyond saturation the queue
	// would otherwise just move latency, not absorb load.
	MaxWait time.Duration
	// BatchMax caps how many mutations one dispatcher drain coalesces
	// into a single BatchRunner call.
	BatchMax int
	// ReadConcurrency is how many read-only requests may execute at
	// once.
	ReadConcurrency int
	// RetryAfter is the hint handed to shed clients (the Retry-After
	// header upstream).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 250 * time.Millisecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.ReadConcurrency <= 0 {
		c.ReadConcurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// BatchRunner executes one coalesced batch of mutations. It is called
// from the dispatcher goroutine with 1..BatchMax payloads and must set
// per-payload results/errors on the payloads themselves; a panic fails
// every task in the batch but leaves the dispatcher running.
type BatchRunner func(batch []any)

type taskState = int32

const (
	taskPending   taskState = iota // queued, owned by nobody yet
	taskClaimed                    // dispatcher won the task
	taskAbandoned                  // waiter gave up (timeout or cancel)
)

// mutTask is one queued mutation. The waiter and the dispatcher race for
// ownership through the state CAS: exactly one side wins, so a task is
// either executed (dispatcher claims it, then closes done) or provably
// never touched (waiter abandons it; the dispatcher discards it on
// dequeue without running it).
type mutTask struct {
	ctx     context.Context
	payload any
	onStart func()
	state   atomic.Int32
	err     error // set by the dispatcher before close(done)
	done    chan struct{}
}

// Controller is the admission gate. Build one with New, hand mutations to
// SubmitMutation and reads to AcquireRead, and Drain+Close it on
// shutdown.
type Controller struct {
	cfg Config
	run BatchRunner

	mutCh     chan *mutTask
	readSlots chan struct{}

	mu            sync.Mutex
	closed        bool
	pendingMut    int
	pendingRead   int
	drainSignaled bool
	drained       chan struct{}

	failNext atomic.Int64

	stop           chan struct{}
	stopOnce       sync.Once
	dispatcherDone chan struct{}

	depthMut  *obs.Gauge
	depthRead *obs.Gauge
	shed      *obs.CounterVec
	batchSize *obs.Histogram
}

// New builds a controller and starts its dispatcher goroutine. run must
// not be nil.
func New(cfg Config, run BatchRunner) *Controller {
	if run == nil {
		panic("admit: nil BatchRunner")
	}
	c := &Controller{
		cfg:            cfg.withDefaults(),
		run:            run,
		drained:        make(chan struct{}),
		stop:           make(chan struct{}),
		dispatcherDone: make(chan struct{}),
	}
	c.mutCh = make(chan *mutTask, c.cfg.MaxQueue)
	c.readSlots = make(chan struct{}, c.cfg.ReadConcurrency)
	go c.dispatch()
	return c
}

// Instrument registers the admission metrics on reg. Call before serving
// traffic; a controller without Instrument records nothing.
func (c *Controller) Instrument(reg *obs.Registry) {
	depth := reg.Gauge("policy_admit_depth",
		"Requests queued or executing per admission class.", "class")
	c.depthMut = depth.With(ClassMutate)
	c.depthRead = depth.With(ClassRead)
	c.shed = reg.Counter("policy_admit_shed_total",
		"Requests shed by admission control.", "class", "reason")
	c.batchSize = reg.Histogram("policy_admit_batch_size",
		"Mutations coalesced per batch drain.",
		obs.ExpBuckets(1, 2, 8)).With()
}

// RetryAfterHint is the backoff the controller suggests to shed clients.
func (c *Controller) RetryAfterHint() time.Duration { return c.cfg.RetryAfter }

// FailNext arms n injected sheds: the next n SubmitMutation calls are
// rejected with ErrQueueFull regardless of actual queue state. It exists
// so fault-injection harnesses can exercise the shed path
// deterministically; timing-based shedding is inherently racy.
func (c *Controller) FailNext(n int) { c.failNext.Add(int64(n)) }

func (c *Controller) consumeFailNext() bool {
	for {
		v := c.failNext.Load()
		if v <= 0 {
			return false
		}
		if c.failNext.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// Depth reports how many requests of the class are queued or executing.
func (c *Controller) Depth(class string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if class == ClassRead {
		return c.pendingRead
	}
	return c.pendingMut
}

func (c *Controller) shedMetric(class, reason string) {
	if c.shed != nil {
		c.shed.With(class, reason).Inc()
	}
}

// enter admits one request of the class into the pending count, or
// reports why it cannot. The caller must pair every successful enter
// with exactly one leave.
func (c *Controller) enter(class string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrDraining
	}
	if class == ClassRead {
		if c.pendingRead >= c.cfg.MaxQueue+c.cfg.ReadConcurrency {
			return ErrQueueFull
		}
		c.pendingRead++
		if c.depthRead != nil {
			c.depthRead.Set(float64(c.pendingRead))
		}
		return nil
	}
	c.pendingMut++
	if c.depthMut != nil {
		c.depthMut.Set(float64(c.pendingMut))
	}
	return nil
}

func (c *Controller) leave(class string) {
	c.mu.Lock()
	if class == ClassRead {
		c.pendingRead--
		if c.depthRead != nil {
			c.depthRead.Set(float64(c.pendingRead))
		}
	} else {
		c.pendingMut--
		if c.depthMut != nil {
			c.depthMut.Set(float64(c.pendingMut))
		}
	}
	if c.closed && c.pendingMut+c.pendingRead == 0 && !c.drainSignaled {
		c.drainSignaled = true
		close(c.drained)
	}
	c.mu.Unlock()
}

// SubmitMutation queues payload for the batch dispatcher and blocks until
// it has been executed, shed, or abandoned. A nil return means the
// payload went through a BatchRunner call; any result lives on the
// payload itself. onStart, if non-nil, runs on the dispatcher goroutine
// the moment the task is dequeued for execution (it ends the queue-wait
// trace span upstream); it is never called for shed or abandoned tasks.
//
// Every rejection happens before the payload reaches the runner, so a
// non-nil error guarantees the mutation had no side effects.
func (c *Controller) SubmitMutation(ctx context.Context, payload any, onStart func()) error {
	if err := c.enter(ClassMutate); err != nil {
		c.shedMetric(ClassMutate, reasonFor(err))
		return err
	}
	if c.consumeFailNext() {
		c.leave(ClassMutate)
		c.shedMetric(ClassMutate, "injected")
		return ErrQueueFull
	}
	t := &mutTask{ctx: ctx, payload: payload, onStart: onStart, done: make(chan struct{})}
	select {
	case c.mutCh <- t:
	default:
		c.leave(ClassMutate)
		c.shedMetric(ClassMutate, "queue_full")
		return ErrQueueFull
	}
	timer := time.NewTimer(c.cfg.MaxWait)
	defer timer.Stop()
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		if t.state.CompareAndSwap(taskPending, taskAbandoned) {
			c.shedMetric(ClassMutate, "client_gone")
			return fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
		}
		// The dispatcher claimed the task first; the batch is running, so
		// wait for its verdict.
		<-t.done
		return t.err
	case <-timer.C:
		if t.state.CompareAndSwap(taskPending, taskAbandoned) {
			c.shedMetric(ClassMutate, "wait_exceeded")
			return ErrWaitExceeded
		}
		<-t.done
		return t.err
	}
}

// AcquireRead admits one read-only request, blocking up to MaxWait for a
// concurrency slot. On success the returned release function must be
// called when the read finishes (it is idempotent).
func (c *Controller) AcquireRead(ctx context.Context) (release func(), err error) {
	if err := c.enter(ClassRead); err != nil {
		c.shedMetric(ClassRead, reasonFor(err))
		return nil, err
	}
	timer := time.NewTimer(c.cfg.MaxWait)
	defer timer.Stop()
	select {
	case c.readSlots <- struct{}{}:
		var once sync.Once
		return func() {
			once.Do(func() {
				<-c.readSlots
				c.leave(ClassRead)
			})
		}, nil
	case <-ctx.Done():
		c.leave(ClassRead)
		c.shedMetric(ClassRead, "client_gone")
		return nil, fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	case <-timer.C:
		c.leave(ClassRead)
		c.shedMetric(ClassRead, "wait_exceeded")
		return nil, ErrWaitExceeded
	}
}

func reasonFor(err error) string {
	switch {
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrWaitExceeded):
		return "wait_exceeded"
	default:
		return "queue_full"
	}
}

// Drain stops admitting new work (submissions shed with ErrDraining) and
// waits until everything already accepted has finished. The dispatcher
// keeps running so queued mutations complete; call Close afterwards to
// stop it.
func (c *Controller) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	if !c.drainSignaled && c.pendingMut+c.pendingRead == 0 {
		c.drainSignaled = true
		close(c.drained)
	}
	c.mu.Unlock()
	select {
	case <-c.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops admitting new work and terminates the dispatcher. Tasks
// still queued are failed with ErrDraining (their waiters unblock) rather
// than executed. Close blocks until the dispatcher goroutine has exited;
// call Drain first for a graceful stop.
func (c *Controller) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.dispatcherDone
}

func (c *Controller) dispatch() {
	defer close(c.dispatcherDone)
	for {
		select {
		case t := <-c.mutCh:
			c.drainBatch(t)
		case <-c.stop:
			// Fail whatever is still queued so no waiter hangs.
			for {
				select {
				case t := <-c.mutCh:
					if t.state.CompareAndSwap(taskPending, taskClaimed) {
						t.err = ErrDraining
						close(t.done)
					}
					c.leave(ClassMutate)
				default:
					return
				}
			}
		}
	}
}

// drainBatch coalesces up to BatchMax queued mutations (starting with
// first) into one BatchRunner call. Abandoned tasks are discarded;
// tasks whose client context already ended are abandoned here — shed
// after queueing but still strictly before execution.
func (c *Controller) drainBatch(first *mutTask) {
	batch := make([]*mutTask, 0, c.cfg.BatchMax)
	payloads := make([]any, 0, c.cfg.BatchMax)
	admitTask := func(t *mutTask) {
		if !t.state.CompareAndSwap(taskPending, taskClaimed) {
			// The waiter abandoned it (timeout or cancel); it was never
			// executed.
			c.leave(ClassMutate)
			return
		}
		if t.ctx != nil && t.ctx.Err() != nil {
			// Deadline propagation: the client is gone, don't do the work.
			t.err = fmt.Errorf("%w: %v", ErrCanceled, t.ctx.Err())
			close(t.done)
			c.leave(ClassMutate)
			c.shedMetric(ClassMutate, "client_gone")
			return
		}
		if t.onStart != nil {
			t.onStart()
		}
		batch = append(batch, t)
		payloads = append(payloads, t.payload)
	}
	admitTask(first)
	for len(batch) < c.cfg.BatchMax {
		select {
		case t := <-c.mutCh:
			admitTask(t)
		default:
			goto collected
		}
	}
collected:
	if len(batch) == 0 {
		return
	}
	if c.batchSize != nil {
		c.batchSize.Observe(float64(len(batch)))
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				err := fmt.Errorf("admit: batch runner panic: %v", r)
				for _, t := range batch {
					if t.err == nil {
						t.err = err
					}
				}
			}
		}()
		c.run(payloads)
	}()
	for _, t := range batch {
		close(t.done)
		c.leave(ClassMutate)
	}
}
