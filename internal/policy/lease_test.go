package policy

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"policyflow/internal/obs"
)

func leaseTestService(t *testing.T, ttl float64) *Service {
	t.Helper()
	cfg := DefaultConfig()
	cfg.LeaseTTL = ttl
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func leaseSpec(wf, req, file string) TransferSpec {
	return TransferSpec{
		RequestID:  req,
		WorkflowID: wf,
		SourceURL:  "gsiftp://src.example.org/data/" + file,
		DestURL:    "gsiftp://dst.example.org/scratch/" + file,
	}
}

func TestRenewLeaseValidation(t *testing.T) {
	svc := leaseTestService(t, 10)
	if _, err := svc.RenewLease(""); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("empty workflow ID: err = %v, want ErrInvalidRequest", err)
	}
	disabled := leaseTestService(t, 0)
	if _, err := disabled.RenewLease("wf1"); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("leases disabled: err = %v, want ErrInvalidRequest", err)
	}
}

func TestAdvanceClockValidation(t *testing.T) {
	svc := leaseTestService(t, 10)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		if _, err := svc.AdvanceClock(bad); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("AdvanceClock(%v): err = %v, want ErrInvalidRequest", bad, err)
		}
	}
}

// TestStaleClockTickIsUnloggedNoOp pins the monotonic clamp: a tick that
// does not move the clock forward changes nothing and writes nothing to the
// mutation log, so wall-clock tickers on different replicas cannot make
// their WALs diverge.
func TestStaleClockTickIsUnloggedNoOp(t *testing.T) {
	svc := leaseTestService(t, 10)
	fl := &fakeLog{}
	svc.SetMutationLog(fl)
	if _, err := svc.AdvanceClock(5); err != nil {
		t.Fatal(err)
	}
	logged := len(fl.ops)
	for _, stale := range []float64{5, 3, 0} {
		adv, err := svc.AdvanceClock(stale)
		if err != nil {
			t.Fatalf("AdvanceClock(%v): %v", stale, err)
		}
		if adv.Now != 5 || len(adv.Expired) != 0 {
			t.Fatalf("AdvanceClock(%v) = %+v, want clamped no-op at 5", stale, adv)
		}
	}
	if len(fl.ops) != logged {
		t.Fatalf("stale ticks were logged: ops = %v", fl.ops)
	}
}

// TestAdviseRegistersLeaseAndExpiryReclaims covers the lease lifecycle at
// the service level: advises implicitly register leases, Leases() reports
// the holdings at stake, renewal extends only the renewed owner, and expiry
// reclaims the dead workflow's transfers, streams and reference counts
// while leaving the survivor untouched.
func TestAdviseRegistersLeaseAndExpiryReclaims(t *testing.T) {
	svc := leaseTestService(t, 10)
	if _, err := svc.AdviseTransfers([]TransferSpec{
		leaseSpec("wf-a", "ra1", "f1"),
		leaseSpec("wf-a", "ra2", "f2"),
	}); err != nil {
		t.Fatal(err)
	}
	// wf-b requests the file wf-a is staging: suppressed, refcounted, and
	// leased even though it was granted nothing.
	adv, err := svc.AdviseTransfers([]TransferSpec{leaseSpec("wf-b", "rb1", "f1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Transfers) != 0 || len(adv.Removed) != 1 {
		t.Fatalf("wf-b advice = %+v, want full suppression", adv)
	}

	list := svc.Leases()
	if list.TTLSeconds != 10 || len(list.Leases) != 2 {
		t.Fatalf("leases = %+v, want 2 at ttl 10", list)
	}
	a, b := list.Leases[0], list.Leases[1]
	if a.WorkflowID != "wf-a" || a.Deadline != 10 || a.InProgress != 2 || a.HeldStreams != 2*svc.cfg.DefaultStreams {
		t.Fatalf("wf-a lease = %+v", a)
	}
	if b.WorkflowID != "wf-b" || b.InProgress != 0 || b.HeldStreams != 0 {
		t.Fatalf("wf-b lease = %+v", b)
	}

	// wf-b renews at t=6; wf-a goes silent.
	if _, err := svc.AdvanceClock(6); err != nil {
		t.Fatal(err)
	}
	st, err := svc.RenewLease("wf-b")
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadline != 16 {
		t.Fatalf("renewed deadline = %v, want 16", st.Deadline)
	}

	adv2, err := svc.AdvanceClock(12)
	if err != nil {
		t.Fatal(err)
	}
	wantExpired := []string{"wf-a"}
	if len(adv2.Expired) != 1 || adv2.Expired[0] != wantExpired[0] ||
		adv2.ReclaimedTransfers != 2 || adv2.ReclaimedStreams != 2*svc.cfg.DefaultStreams {
		t.Fatalf("expiry = %+v, want wf-a's 2 transfers reclaimed", adv2)
	}

	d := svc.ExportState()
	if len(d.Transfers) != 0 {
		t.Fatalf("transfers after expiry = %+v", d.Transfers)
	}
	for _, l := range d.Ledgers {
		if l.Allocated != 0 {
			t.Fatalf("ledger %s->%s still holds %d streams", l.Src, l.Dst, l.Allocated)
		}
	}
	for _, r := range d.Resources {
		for _, u := range r.Users {
			if u.WorkflowID == "wf-a" {
				t.Fatalf("wf-a still referenced on %s", r.DestURL)
			}
		}
	}
	if len(d.Leases) != 1 || d.Leases[0].Owner != "wf-b" {
		t.Fatalf("leases after expiry = %+v", d.Leases)
	}
}

// TestReportAckCountsUnmatched covers the report acknowledgement contract:
// IDs that match nothing in Policy Memory are counted back to the caller
// and onto the policy_report_unmatched_total counter instead of being
// silently dropped.
func TestReportAckCountsUnmatched(t *testing.T) {
	svc := leaseTestService(t, 0)
	reg := obs.NewRegistry()
	svc.Instrument(reg, nil)
	adv, err := svc.AdviseTransfers([]TransferSpec{leaseSpec("wf1", "r1", "f1")})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := svc.ReportTransfers(CompletionReport{
		TransferIDs: []string{adv.Transfers[0].ID, "t-bogus-1"},
		FailedIDs:   []string{"t-bogus-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Matched != 1 || ack.Unmatched != 2 {
		t.Fatalf("ack = %+v, want matched 1 unmatched 2", ack)
	}
	// A duplicate of the same report now matches nothing at all.
	ack, err = svc.ReportTransfers(CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Matched != 0 || ack.Unmatched != 1 {
		t.Fatalf("duplicate ack = %+v, want matched 0 unmatched 1", ack)
	}
	cack, err := svc.ReportCleanups(CleanupReport{CleanupIDs: []string{"c-bogus"}})
	if err != nil {
		t.Fatal(err)
	}
	if cack.Matched != 0 || cack.Unmatched != 1 {
		t.Fatalf("cleanup ack = %+v, want matched 0 unmatched 1", cack)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`policy_report_unmatched_total{op="report_transfers"} 3`,
		`policy_report_unmatched_total{op="report_cleanups"} 1`,
	} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("scrape missing %q:\n%s", frag, buf.String())
		}
	}
}

// benchLeases loads a service with n active leases, each holding one
// in-progress transfer on its own host pair.
func benchLeases(b *testing.B, ttl float64, n int) *Service {
	b.Helper()
	cfg := DefaultConfig()
	cfg.LeaseTTL = ttl
	svc, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := svc.AdviseTransfers([]TransferSpec{{
			RequestID:  fmt.Sprintf("r%d", i),
			WorkflowID: fmt.Sprintf("wf%d", i),
			SourceURL:  fmt.Sprintf("gsiftp://src%d.example.org/data/f", i),
			DestURL:    fmt.Sprintf("gsiftp://dst%d.example.org/scratch/f", i),
		}}); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

// BenchmarkLeaseScan measures the no-expiry clock tick — the steady-state
// cost a wall-clock ticker pays on every scan. It is O(active leases) and
// entirely off the advise hot path.
func BenchmarkLeaseScan(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("leases=%d", n), func(b *testing.B) {
			svc := benchLeases(b, 1e9, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.AdvanceClock(float64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdviseLeaseOverhead compares the advise path with leases off and
// on: the lease upkeep an advise pays is one renewal for the calling
// workflow, independent of how the expiry scan scales.
func BenchmarkAdviseLeaseOverhead(b *testing.B) {
	for _, ttl := range []float64{0, 1e9} {
		name := "leases=off"
		if ttl > 0 {
			name = "leases=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.LeaseTTL = ttl
			svc, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				adv, err := svc.AdviseTransfers([]TransferSpec{{
					RequestID:  fmt.Sprintf("r%d", i),
					WorkflowID: "wf",
					SourceURL:  "gsiftp://src.example.org/data/f",
					DestURL:    fmt.Sprintf("gsiftp://dst.example.org/scratch/f%d", i),
				}})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := svc.ReportTransfers(CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
