package policy

import "policyflow/internal/rules"

// Alpha-memory indexes for the Policy Memory session. Every join in the
// rule sets is an equality on one of a handful of keys — host pair,
// destination URL, transfer/cleanup ID, workflow owner, lifecycle state —
// so a small set of shared named indexes lets the incremental matcher
// probe one bucket per pattern instead of scanning a type's whole extent.
// The hints are pure acceleration: each pattern's guard still states the
// full join condition, and the differential harness in internal/rules runs
// the reference engine with hints ignored, so an unsound hint shows up as
// an engine divergence, not silent advice drift.

// pairCluster keys the balanced allocator's per-(pair, cluster) ledger.
type pairCluster struct {
	Pair      HostPair
	ClusterID string
}

// registerIndexes installs the shared alpha indexes. Must run before the
// rule sets referencing them are added.
func registerIndexes(s *rules.Session) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(rules.AddIndexOf(s, "state", func(t *Transfer) TransferState { return t.State }))
	// "pending" buckets the states the associate-resource rule matches
	// (Submitted or Duplicate) under one boolean key — a predicate-keyed
	// alpha node, since a single state bucket cannot express the union.
	must(rules.AddIndexOf(s, "pending", func(t *Transfer) bool {
		return t.State == TransferSubmitted || t.State == TransferDuplicate
	}))
	must(rules.AddIndexOf(s, "dest", func(t *Transfer) string { return t.DestURL }))
	must(rules.AddIndexOf(s, "id", func(t *Transfer) string { return t.ID }))
	must(rules.AddIndexOf(s, "owner", func(t *Transfer) string { return t.WorkflowID }))
	must(rules.AddIndexOf(s, "dest", func(r *Resource) string { return r.DestURL }))
	must(rules.AddIndexOf(s, "pair", func(th *Threshold) HostPair { return th.Pair }))
	must(rules.AddIndexOf(s, "pair", func(l *StreamLedger) HostPair { return l.Pair }))
	must(rules.AddIndexOf(s, "pair", func(g *Group) HostPair { return g.Pair }))
	must(rules.AddIndexOf(s, "pair", func(ct *ClusterThreshold) HostPair { return ct.Pair }))
	must(rules.AddIndexOf(s, "paircluster", func(cl *ClusterLedger) pairCluster {
		return pairCluster{Pair: cl.Pair, ClusterID: cl.ClusterID}
	}))
	must(rules.AddIndexOf(s, "state", func(c *Cleanup) CleanupState { return c.State }))
	must(rules.AddIndexOf(s, "file", func(c *Cleanup) string { return c.FileURL }))
	must(rules.AddIndexOf(s, "id", func(c *Cleanup) string { return c.ID }))
	must(rules.AddIndexOf(s, "owner", func(c *Cleanup) string { return c.WorkflowID }))
}

// Probe-key helpers shared by the rule sets. Each computes a pattern's
// index key from the bindings of earlier patterns.

// keyConst probes a fixed bucket (e.g. the Submitted state).
func keyConst(k any) func(rules.Bindings) any {
	return func(rules.Bindings) any { return k }
}

// firstByKey is a point query against a registered index: the first fact
// of type T in the named index's bucket for key.
func firstByKey[T any](s *rules.Session, index string, key any) (T, bool) {
	for _, v := range rules.FactsByKey[T](s, index, key) {
		return v, true
	}
	var zero T
	return zero, false
}

// transferByID resolves a transfer fact by ID via the "id" alpha index —
// the report paths call this once per reported ID, so the naive O(facts)
// scan it replaces dominated report latency at scale.
func transferByID(s *rules.Session, id string) (*Transfer, bool) {
	return firstByKey[*Transfer](s, "id", id)
}

func keyTransferDest(b rules.Bindings) any { return b.Get("t").(*Transfer).DestURL }
func keyTransferPair(b rules.Bindings) any { return b.Get("t").(*Transfer).Pair }
func keyTransferCluster(b rules.Bindings) any {
	t := b.Get("t").(*Transfer)
	return pairCluster{Pair: t.Pair, ClusterID: t.ClusterID}
}
func keyResultTransferID(b rules.Bindings) any { return b.Get("e").(*TransferResult).TransferID }
func keyExpiredOwner(b rules.Bindings) any     { return b.Get("e").(*LeaseExpired).Owner }
func keyCleanupFile(b rules.Bindings) any      { return b.Get("c").(*Cleanup).FileURL }
func keyCleanupResultID(b rules.Bindings) any  { return b.Get("e").(*CleanupResult).CleanupID }
