package policy

import (
	"fmt"
	"testing"
)

func newPrioritized(t *testing.T, threshold, defStreams int, w PriorityWeighting) *Service {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DefaultThreshold = threshold
	cfg.DefaultStreams = defStreams
	cfg.Priority = w
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func prioSpec(i, prio int) TransferSpec {
	sp := spec(i, "wf1")
	sp.Priority = prio
	return sp
}

func TestPriorityBoostAboveMedian(t *testing.T) {
	s := newPrioritized(t, 100, 4, DefaultPriorityWeighting())
	// Priorities 1..5: median 3. Priority 4 and 5 boosted to 6 streams
	// (4 x 1.5); priority 1 and 2 reduced to 2; the median stays at 4.
	var specs []TransferSpec
	for i := 1; i <= 5; i++ {
		specs = append(specs, prioSpec(i, i))
	}
	adv, err := s.AdviseTransfers(specs)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, tr := range adv.Transfers {
		got[tr.RequestID] = tr.Streams
	}
	want := map[string]int{
		"req-1": 2, "req-2": 2, // below median: halved
		"req-3": 4,             // median: unchanged
		"req-4": 6, "req-5": 6, // above median: boosted
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s streams = %d, want %d (all: %v)", k, got[k], w, got)
		}
	}
	// Ordering: highest priority first.
	if adv.Transfers[0].RequestID != "req-5" {
		t.Errorf("first transfer = %s, want req-5", adv.Transfers[0].RequestID)
	}
}

func TestPriorityWeightingRespectsThreshold(t *testing.T) {
	// Threshold 10: boosts cannot push total allocation past the greedy
	// cap.
	s := newPrioritized(t, 10, 4, DefaultPriorityWeighting())
	var specs []TransferSpec
	for i := 1; i <= 4; i++ {
		specs = append(specs, prioSpec(i, i))
	}
	adv, err := s.AdviseTransfers(specs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tr := range adv.Transfers {
		total += tr.Streams
	}
	// Greedy invariant: only the transfer that crosses the threshold may
	// be trimmed; afterwards everyone gets 1. Total <= threshold +
	// (n-1) x min.
	if total > 10+3 {
		t.Fatalf("total = %d exceeds greedy bound", total)
	}
	snap := s.Snapshot()
	if snap.Pairs[0].Allocated != total {
		t.Fatalf("ledger %d != advised total %d", snap.Pairs[0].Allocated, total)
	}
}

func TestPriorityReduceNeverBelowMin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DefaultThreshold = 100
	cfg.DefaultStreams = 1
	cfg.Priority = DefaultPriorityWeighting()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := s.AdviseTransfers([]TransferSpec{prioSpec(1, 1), prioSpec(2, 5), prioSpec(3, 9)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range adv.Transfers {
		if tr.Streams < 1 {
			t.Fatalf("streams = %d < 1 for %s", tr.Streams, tr.RequestID)
		}
	}
}

func TestZeroWeightingDisabled(t *testing.T) {
	s := newPrioritized(t, 100, 4, PriorityWeighting{})
	adv, err := s.AdviseTransfers([]TransferSpec{prioSpec(1, 1), prioSpec(2, 100)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range adv.Transfers {
		if tr.Streams != 4 {
			t.Fatalf("weighting applied despite zero config: %+v", tr)
		}
	}
}

func TestUnprioritizedTransfersUnaffected(t *testing.T) {
	s := newPrioritized(t, 100, 4, DefaultPriorityWeighting())
	var specs []TransferSpec
	for i := 1; i <= 3; i++ {
		specs = append(specs, spec(i, "wf1")) // Priority 0
	}
	adv, err := s.AdviseTransfers(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range adv.Transfers {
		if tr.Streams != 4 {
			t.Fatalf("priority rules touched unprioritized transfer: %+v", tr)
		}
	}
}

func TestPriorityWeightingAcrossBatches(t *testing.T) {
	// The median is computed over the current batch in memory; a second
	// batch with uniform priorities is unaffected by the first (which
	// has moved to in-progress).
	s := newPrioritized(t, 100, 4, DefaultPriorityWeighting())
	if _, err := s.AdviseTransfers([]TransferSpec{prioSpec(1, 100)}); err != nil {
		t.Fatal(err)
	}
	adv, err := s.AdviseTransfers([]TransferSpec{prioSpec(10, 5), prioSpec(11, 5)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range adv.Transfers {
		if tr.Streams != 4 {
			t.Fatalf("uniform-priority batch modified: %v streams", tr.Streams)
		}
	}
}

func TestMedianSubmittedPriorityOddEven(t *testing.T) {
	// Behavioural check of the median through the service: with an even
	// batch {1,2,3,10}, the median index picks 3 (upper middle); only 10
	// is boosted.
	s := newPrioritized(t, 1000, 4, DefaultPriorityWeighting())
	var specs []TransferSpec
	for i, p := range []int{1, 2, 3, 10} {
		specs = append(specs, prioSpec(i, p))
	}
	adv, err := s.AdviseTransfers(specs)
	if err != nil {
		t.Fatal(err)
	}
	boosted := 0
	for _, tr := range adv.Transfers {
		if tr.Streams > 4 {
			boosted++
		}
	}
	if boosted != 1 {
		t.Fatalf("boosted = %d, want 1 (only the max)", boosted)
	}
}

func BenchmarkAdviseWithPriorityRules(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Priority = DefaultPriorityWeighting()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var specs []TransferSpec
		for j := 0; j < 10; j++ {
			sp := TransferSpec{
				RequestID:  fmt.Sprintf("r-%d-%d", i, j),
				WorkflowID: "bench",
				SourceURL:  fmt.Sprintf("gsiftp://s.example.org/f-%d-%d", i, j),
				DestURL:    fmt.Sprintf("file://d.example.org/f-%d-%d", i, j),
				Priority:   j,
			}
			specs = append(specs, sp)
		}
		adv, err := s.AdviseTransfers(specs)
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]string, len(adv.Transfers))
		for j, tr := range adv.Transfers {
			ids[j] = tr.ID
		}
		if _, err := s.ReportTransfers(CompletionReport{TransferIDs: ids}); err != nil {
			b.Fatal(err)
		}
	}
}
