package policy

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"policyflow/internal/bundle"
	"policyflow/internal/obs"
	"policyflow/internal/rules"
)

// Algorithm selects the stream-allocation policy applied by the service.
type Algorithm string

const (
	// AlgoNone grants every transfer its requested streams (bookkeeping
	// only) — the paper's default-Pegasus behaviour.
	AlgoNone Algorithm = "none"
	// AlgoGreedy applies the greedy allocation algorithm (Table II).
	AlgoGreedy Algorithm = "greedy"
	// AlgoBalanced applies the balanced allocation algorithm (Table III).
	AlgoBalanced Algorithm = "balanced"
)

// Config configures a policy Service. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// Algorithm selects greedy, balanced or pass-through allocation.
	Algorithm Algorithm
	// DefaultStreams is assigned to transfers that do not request a
	// stream count ("the default number of streams per transfer").
	DefaultStreams int
	// MinStreams is the floor for every allocation; at least 1.
	MinStreams int
	// DefaultThreshold is the maximum number of parallel streams allowed
	// between a host pair when no per-pair threshold is configured.
	DefaultThreshold int
	// PairThresholds overrides DefaultThreshold for specific host pairs.
	PairThresholds map[HostPair]int
	// ClusterFactor is the number of transfer clusters running in
	// parallel (balanced allocation input; the Pegasus clustering factor).
	ClusterFactor int
	// FireBudget bounds rule firings per request; 0 selects the engine
	// default.
	FireBudget int
	// Priority enables the priority stream-weighting rules (the paper's
	// Section III(c) future work): transfers above the batch's median
	// priority request more streams, those below request fewer. The zero
	// value disables weighting; ordering by priority always applies.
	Priority PriorityWeighting
	// DecisionRing bounds the in-memory decision provenance ring; 0
	// selects DefaultDecisionRing.
	DecisionRing int
	// LeaseTTL, when positive, enables the liveness subsystem: every
	// workflow that calls AdviseTransfers/AdviseCleanups (or RenewLease)
	// holds a lease for this many seconds of the service's logical clock.
	// When the clock (advanced only via AdvanceClock — the core never
	// reads wall time) passes a lease's deadline, the owner is presumed
	// crashed and its holdings are reclaimed. Zero disables leases.
	LeaseTTL float64
	// referenceMatcher selects the naive full-rejoin rule matcher instead
	// of the incremental one. Test/benchmark hook only: semantics are
	// identical, cost per firing is O(rules × facts^joins).
	referenceMatcher bool
}

// DefaultConfig returns the configuration used in the paper's experiments:
// greedy allocation, 4 default streams per transfer and a 50-stream
// threshold between each host pair.
func DefaultConfig() Config {
	return Config{
		Algorithm:        AlgoGreedy,
		DefaultStreams:   4,
		MinStreams:       1,
		DefaultThreshold: 50,
		ClusterFactor:    1,
	}
}

func (c *Config) normalize() error {
	switch c.Algorithm {
	case "":
		c.Algorithm = AlgoGreedy
	case AlgoNone, AlgoGreedy, AlgoBalanced:
	default:
		return fmt.Errorf("policy: unknown algorithm %q", c.Algorithm)
	}
	if c.DefaultStreams < 1 {
		c.DefaultStreams = 1
	}
	if c.MinStreams < 1 {
		c.MinStreams = 1
	}
	if c.DefaultThreshold < 1 {
		return fmt.Errorf("policy: DefaultThreshold must be >= 1, got %d", c.DefaultThreshold)
	}
	if c.ClusterFactor < 1 {
		c.ClusterFactor = 1
	}
	if c.LeaseTTL < 0 {
		c.LeaseTTL = 0
	}
	return nil
}

// Service is the policy engine plus its Policy Memory: one long-lived rule
// session whose facts persist across advice requests. It is safe for
// concurrent use.
type Service struct {
	mu      sync.Mutex
	cfg     Config
	session *rules.Session

	nextTransfer int
	nextGroup    int
	nextCleanup  int

	// advised counts transfers ever advised, for observability.
	advised    int
	suppressed int
	// suppressedByReason splits the suppressed count by DupReason, so a
	// late Instrument call can backfill the labeled counter series.
	suppressedByReason map[string]int

	// clock is the service's logical time. It only moves via the logged
	// AdvanceClock mutation, so lease deadlines and expiry replay
	// identically on every replica.
	clock float64
	// epoch is the fencing epoch, moved only by the logged BumpEpoch
	// mutation (see epoch.go). It rides in state dumps, so standbys and
	// resynced replicas adopt the promoter's epoch.
	epoch uint64
	// Lease lifecycle counters, kept for metric backfill.
	leaseRenewals      int
	leasesExpired      int
	reclaimedTransfers int
	// reportUnmatchedByOp counts report IDs that matched nothing in
	// Policy Memory, split by operation, for metric backfill.
	reportUnmatchedByOp map[string]int

	// observer, when set, receives performance measurements for
	// completed transfers that carried timings.
	observer TransferObserver

	// metrics and tracer are nil until Instrument attaches them.
	metrics *svcMetrics
	tracer  obs.Tracer

	// mlog, when set, receives every mutation command before it is
	// applied (write-ahead). Nil keeps the service purely in-memory.
	mlog MutationLog

	// tun is the immutable tunables snapshot of the active bundle. The
	// pointer is swapped only under s.mu; rule gates and bodies read it
	// through an accessor while FireAll runs (always under s.mu), so one
	// operation sees exactly one snapshot.
	tun *Tunables
	// activeBundle/prevBundle are the active bundle document and its
	// predecessor (the rollback target). Both are durable: they ride in
	// state dumps and are reconstructed by WAL replay of activations.
	activeBundle *bundle.Bundle
	prevBundle   *bundle.Bundle
	// installed holds v0 plus every bundle ever activated, by version.
	installed map[string]*bundle.Bundle
	// staged holds pushed-but-unactivated bundles. Deliberately
	// non-durable: excluded from dumps, lost on restart.
	staged map[string]*bundle.Bundle
	// bundleActsByResult counts activation attempts for metric backfill.
	bundleActsByResult map[string]int

	// decisions is the bounded decision-provenance ring, always present.
	decisions *DecisionLog
	// pendingFirings collects rule activations of the operation in
	// progress, appended by the session's firing observer. Guarded by
	// s.mu (every FireAll call holds it).
	pendingFirings []RuleFiring
	// curTrace is the trace ID of the operation in progress, stamped
	// onto lifecycle events emitted under the lock. Guarded by s.mu.
	curTrace string
}

// svcMetrics holds the service's registry series. All fields are created
// together by Instrument.
type svcMetrics struct {
	requests   *obs.CounterVec   // policy_requests_total{op,outcome}
	latency    *obs.HistogramVec // policy_request_seconds{op}
	firings    *obs.Counter      // policy_rule_firings_total
	advised    *obs.Counter      // policy_transfers_advised_total
	suppressed *obs.Counter      // policy_transfers_suppressed_total
	suppReason *obs.CounterVec   // policy_suppressions_total{reason}
	cleanAdv   *obs.Counter      // policy_cleanups_advised_total
	cleanSupp  *obs.CounterVec   // policy_cleanup_suppressions_total{reason}
	factsGauge *obs.Gauge        // policy_memory_facts

	leaseRenewals *obs.Counter    // policy_lease_renewals_total
	leasesExpired *obs.Counter    // policy_leases_expired_total
	reclaimed     *obs.Counter    // policy_reclaimed_transfers_total
	reportUnmatch *obs.CounterVec // policy_report_unmatched_total{op}

	bundleInfo *obs.GaugeVec   // policy_bundle_active_info{version}
	bundleActs *obs.CounterVec // policy_bundle_activations_total{result}

	epochGauge *obs.Gauge // policy_epoch
}

// Instrument attaches a metrics registry and an event tracer (either may
// be nil) to the service. Counter families are registered immediately and
// backfilled with the service's cumulative history, so instrumenting an
// already-running service does not under-report. Calling Instrument again
// replaces the previous attachment.
func (s *Service) Instrument(reg *obs.Registry, tracer obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tracer
	if reg == nil {
		s.metrics = nil
		return
	}
	m := &svcMetrics{
		requests: reg.Counter("policy_requests_total",
			"Policy service operations by outcome.", "op", "outcome"),
		latency: reg.Histogram("policy_request_seconds",
			"Policy operation latency (rule evaluation included).", nil, "op"),
		firings: reg.Counter("policy_rule_firings_total",
			"Policy rule activations fired.").With(),
		advised: reg.Counter("policy_transfers_advised_total",
			"Transfers returned for execution.").With(),
		suppressed: reg.Counter("policy_transfers_suppressed_total",
			"Transfers removed as duplicates.").With(),
		suppReason: reg.Counter("policy_suppressions_total",
			"Transfer suppressions by reason.", "reason"),
		cleanAdv: reg.Counter("policy_cleanups_advised_total",
			"Cleanups approved for execution.").With(),
		cleanSupp: reg.Counter("policy_cleanup_suppressions_total",
			"Cleanup suppressions by reason.", "reason"),
		factsGauge: reg.Gauge("policy_memory_facts",
			"Facts currently held in Policy Memory.").With(),
		leaseRenewals: reg.Counter("policy_lease_renewals_total",
			"Workflow lease registrations and renewals.").With(),
		leasesExpired: reg.Counter("policy_leases_expired_total",
			"Workflow leases expired by clock advancement.").With(),
		reclaimed: reg.Counter("policy_reclaimed_transfers_total",
			"In-progress transfers reclaimed from expired leases.").With(),
		reportUnmatch: reg.Counter("policy_report_unmatched_total",
			"Reported IDs that matched nothing in Policy Memory.", "op"),
		bundleInfo: reg.Gauge("policy_bundle_active_info",
			"Active policy bundle (1 on the active version's label).", "version"),
		bundleActs: reg.Counter("policy_bundle_activations_total",
			"Bundle activation attempts by result.", "result"),
		epochGauge: reg.Gauge("policy_epoch",
			"Fencing epoch this service believes is current.").With(),
	}
	m.epochGauge.Set(float64(s.epoch))
	m.advised.Add(float64(s.advised))
	m.suppressed.Add(float64(s.suppressed))
	m.firings.Add(float64(s.session.Firings()))
	for reason, n := range s.suppressedByReason {
		m.suppReason.With(reason).Add(float64(n))
	}
	m.leaseRenewals.Add(float64(s.leaseRenewals))
	m.leasesExpired.Add(float64(s.leasesExpired))
	m.reclaimed.Add(float64(s.reclaimedTransfers))
	for op, n := range s.reportUnmatchedByOp {
		m.reportUnmatch.With(op).Add(float64(n))
	}
	m.bundleInfo.With(s.tun.Version).Set(1)
	for result, n := range s.bundleActsByResult {
		m.bundleActs.With(result).Add(float64(n))
	}
	s.metrics = m
}

// observeOp records one service operation's latency and outcome; a no-op
// when the service is not instrumented.
func (s *Service) observeOp(op string, start time.Time, firingsBefore int64, err error) {
	m := s.metrics
	if m == nil {
		return
	}
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	m.requests.With(op, outcome).Inc()
	m.latency.With(op).Observe(time.Since(start).Seconds())
	if d := s.session.Firings() - firingsBefore; d > 0 {
		m.firings.Add(float64(d))
	}
	m.factsGauge.Set(float64(s.session.FactCount()))
}

// emit forwards a lifecycle event to the tracer, if any. Callers hold s.mu;
// the tracer serializes internally and never calls back into the service.
// Events emitted during a traced operation are stamped with its trace ID,
// linking the transfer lifecycle to the causal span tree.
func (s *Service) emit(e obs.Event) {
	if s.tracer != nil {
		if e.TraceID == "" {
			e.TraceID = s.curTrace
		}
		s.tracer.Emit(e)
	}
}

// currentTracer returns the attached tracer, for span creation before
// the service lock is taken.
func (s *Service) currentTracer() obs.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tracer
}

// beginOp marks the start of a traced, provenance-recorded operation.
// Called with s.mu held; the returned func must run before unlock.
func (s *Service) beginOp(ctx context.Context) (done func()) {
	if sc, ok := obs.SpanFromContext(ctx); ok {
		s.curTrace = sc.TraceID
	}
	s.pendingFirings = s.pendingFirings[:0]
	return func() { s.curTrace = "" }
}

// takeFirings returns the rule activations recorded since beginOp.
// Called with s.mu held.
func (s *Service) takeFirings() []RuleFiring {
	if len(s.pendingFirings) == 0 {
		return nil
	}
	out := make([]RuleFiring, len(s.pendingFirings))
	copy(out, s.pendingFirings)
	return out
}

// TransferObserver receives per-transfer performance measurements — the
// "recent data transfer performance" knowledge the paper's service bases
// its advice on, and the reward signal for threshold tuning.
type TransferObserver func(pair HostPair, streams int, sizeBytes int64, seconds float64)

// New constructs a Service with the given configuration.
func New(cfg Config) (*Service, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	session := rules.NewSession()
	if cfg.referenceMatcher {
		session = rules.NewReferenceSession()
	}
	s := &Service{cfg: cfg, session: session,
		suppressedByReason:  make(map[string]int),
		reportUnmatchedByOp: make(map[string]int),
		installed:           make(map[string]*bundle.Bundle),
		staged:              make(map[string]*bundle.Bundle),
		bundleActsByResult:  make(map[string]int),
		decisions:           NewDecisionLog(cfg.DecisionRing)}
	// The compiled-in configuration is itself a bundle: v0, active from
	// birth, never WAL-logged. Activating a real bundle later swaps the
	// snapshot; until then behavior is bit-identical to the pre-bundle
	// engine.
	v0 := bundleFromConfig(cfg)
	s.activeBundle = v0
	s.installed[v0.Version] = v0
	s.tun = tunablesFrom(v0, cfg.Priority)
	// FIFO fairness: within a batch, the first submitted transfer is
	// allocated first.
	s.session.SetOldestFirst(true)
	// Record every rule activation for decision provenance. The observer
	// runs under the session lock inside FireAll, which the service only
	// calls while holding s.mu, so pendingFirings needs no extra lock.
	s.session.SetFiringObserver(func(rule string, salience int) {
		s.pendingFirings = append(s.pendingFirings, RuleFiring{Rule: rule, Salience: salience})
	})

	registerIndexes(s.session)

	newGroupID := func() string {
		s.nextGroup++
		return fmt.Sprintf("g-%04d", s.nextGroup)
	}
	// Every rule set is installed up front; algorithm and priority rules
	// carry gates over the active tunables, so activating a bundle can
	// switch allocation policy without rebuilding the session. The accessor
	// reads s.tun without locking: the pointer is only written under s.mu
	// and FireAll only runs under s.mu.
	tun := func() *Tunables { return s.tun }
	s.session.MustAddRules(commonTransferRules(tun, newGroupID)...)
	s.session.MustAddRules(cleanupRules()...)
	s.session.MustAddRules(priorityRules(tun)...)
	s.session.MustAddRules(greedyRules(tun)...)
	s.session.MustAddRules(balancedRules(tun)...)
	s.session.MustAddRules(passthroughRules(tun)...)
	// LeaseTTL is deployment wiring, not policy: it stays outside the
	// bundle surface, so the lease rules remain conditionally installed.
	if cfg.LeaseTTL > 0 {
		s.session.MustAddRules(leaseRules()...)
	}

	// Configuration facts.
	s.session.Insert(&Defaults{DefaultStreams: cfg.DefaultStreams, MinStreams: cfg.MinStreams})
	s.session.Insert(&ClusterFactor{N: cfg.ClusterFactor})
	for _, pt := range v0.PairThresholds {
		s.session.Insert(&Threshold{Pair: HostPair{Src: pt.SourceHost, Dst: pt.DestHost}, Max: pt.Max})
	}
	return s, nil
}

// Config returns the service configuration.
func (s *Service) Config() Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// ErrEmptyRequest is returned when an advice request has no entries.
var ErrEmptyRequest = errors.New("policy: empty request")

// ErrInvalidRequest marks errors caused by the request itself (missing
// URLs, out-of-range thresholds) as opposed to infrastructure failures
// like a WAL write error. Callers — the HTTP layer in particular — must
// distinguish the two: an invalid request is rejected deterministically by
// every replica, while an infrastructure failure is local to one and means
// the replica is unhealthy. Test with errors.Is.
var ErrInvalidRequest = errors.New("policy: invalid request")

// AdviseTransfers evaluates a list of requested transfers against the
// policy rules and returns the modified list: duplicates removed, group IDs
// and stream counts assigned, ordered by priority and group. Transfers in
// the returned list are recorded as in progress until reported via
// ReportTransfers.
func (s *Service) AdviseTransfers(specs []TransferSpec) (*TransferAdvice, error) {
	return s.AdviseTransfersCtx(context.Background(), specs)
}

// AdviseTransfersCtx is AdviseTransfers with causal-trace propagation:
// the span context carried by ctx (installed from a traceparent header
// by the HTTP layer) parents the operation's spans — advise, rule
// firing, WAL append, group-commit sync — and stamps lifecycle events
// and the decision record with the trace ID.
func (s *Service) AdviseTransfersCtx(ctx context.Context, specs []TransferSpec) (*TransferAdvice, error) {
	if err := validateTransferSpecs(specs); err != nil {
		return nil, err
	}
	ctx, opSpan := obs.StartSpan(ctx, s.currentTracer(), "policy.advise_transfers")
	start := time.Now()
	s.mu.Lock()
	adv, seq, rec, err := s.adviseTransfersLocked(ctx, start, specs)
	s.mu.Unlock()
	if err := s.commitOp(ctx, opSpan, seq, rec, err); err != nil {
		return nil, err
	}
	return adv, nil
}

// validateTransferSpecs checks the whole batch before anything logs or
// touches Policy Memory: a rejected request must leave no partial state
// behind (and no WAL record, and no decision record), or lingering
// Submitted facts would suppress later valid requests for the same files
// as in-batch duplicates.
func validateTransferSpecs(specs []TransferSpec) error {
	if len(specs) == 0 {
		return ErrEmptyRequest
	}
	for i, spec := range specs {
		if spec.SourceURL == "" || spec.DestURL == "" {
			return fmt.Errorf("%w: request %d: source and destination URLs are required", ErrInvalidRequest, i)
		}
	}
	return nil
}

// adviseTransfersLocked is the locked core of AdviseTransfers: append the
// WAL record, mutate Policy Memory, fire the rules, and assemble the
// advice and decision record. The caller holds s.mu, has already
// validated specs, and afterwards runs commitOp (or a batch-wide group
// commit) with the returned sequence and record.
func (s *Service) adviseTransfersLocked(ctx context.Context, start time.Time, specs []TransferSpec) (adv *TransferAdvice, logSeq uint64, rec *DecisionRecord, err error) {
	defer s.beginOp(ctx)()
	factsBefore := s.session.FactCount()
	firingsBefore := s.session.Firings()
	defer func() { s.observeOp("advise_transfers", start, firingsBefore, err) }()
	var appendSpan *obs.Span
	if s.mlog != nil {
		_, appendSpan = obs.StartSpan(ctx, s.tracer, "wal.append")
	}
	logSeq, err = s.appendLog(OpAdviseTransfers, specs)
	if appendSpan != nil {
		appendSpan.Annot.WALSeq = logSeq
		appendSpan.End()
	}
	if err != nil {
		return nil, logSeq, nil, err
	}
	// Advising doubles as a liveness signal: the calling workflows' leases
	// are registered or extended. Deadlines derive only from the logged
	// specs and logged clock state, so replay reproduces them.
	s.renewLeasesLocked(transferOwners(specs))

	batch := make([]*Transfer, 0, len(specs))
	for _, spec := range specs {
		s.nextTransfer++
		t := &Transfer{
			ID:               fmt.Sprintf("t-%08d", s.nextTransfer),
			RequestID:        spec.RequestID,
			WorkflowID:       spec.WorkflowID,
			JobID:            spec.JobID,
			ClusterID:        spec.ClusterID,
			SourceURL:        spec.SourceURL,
			DestURL:          spec.DestURL,
			Pair:             PairOf(spec.SourceURL, spec.DestURL),
			SizeBytes:        spec.SizeBytes,
			RequestedStreams: spec.RequestedStreams,
			Priority:         spec.Priority,
			State:            TransferSubmitted,
		}
		batch = append(batch, t)
		s.session.Insert(t)
		s.emit(obs.Event{
			Type:       obs.EventSubmitted,
			TransferID: t.ID,
			RequestID:  t.RequestID,
			WorkflowID: t.WorkflowID,
			SourceHost: t.Pair.Src,
			DestHost:   t.Pair.Dst,
			SizeBytes:  t.SizeBytes,
			Priority:   t.Priority,
		})
	}
	_, fireSpan := obs.StartSpan(ctx, s.tracer, "rules.fire")
	_, fireErr := s.session.FireAll(s.cfg.FireBudget)
	fireSpan.End()
	if fireErr != nil {
		err = fmt.Errorf("policy: rule evaluation: %w", fireErr)
		return nil, logSeq, nil, err
	}

	adv = &TransferAdvice{}
	lines := make([]DecisionLine, 0, len(batch))
	for _, t := range batch {
		switch t.State {
		case TransferDuplicate:
			adv.Removed = append(adv.Removed, RemovedTransfer{
				RequestID: t.RequestID,
				SourceURL: t.SourceURL,
				DestURL:   t.DestURL,
				Reason:    t.DupReason,
			})
			lines = append(lines, DecisionLine{
				ID:         t.ID,
				RequestID:  t.RequestID,
				WorkflowID: t.WorkflowID,
				FileURL:    t.DestURL,
				Outcome:    OutcomeSuppressed,
				Reason:     t.DupReason,
			})
			s.suppressed++
			s.suppressedByReason[t.DupReason]++
			if s.metrics != nil {
				s.metrics.suppressed.Inc()
				s.metrics.suppReason.With(t.DupReason).Inc()
			}
			s.emit(obs.Event{
				Type:       obs.EventSuppressed,
				TransferID: t.ID,
				RequestID:  t.RequestID,
				WorkflowID: t.WorkflowID,
				SourceHost: t.Pair.Src,
				DestHost:   t.Pair.Dst,
				SizeBytes:  t.SizeBytes,
				Reason:     t.DupReason,
			})
			// Detailed duplicate state leaves Policy Memory; the resource
			// association (made by the rules) survives.
			s.session.Retract(t)
		case TransferAdvised:
			t.State = TransferInProgress
			s.session.Update(t)
			s.advised++
			if s.metrics != nil {
				s.metrics.advised.Inc()
			}
			s.emit(obs.Event{
				Type:       obs.EventAdvised,
				TransferID: t.ID,
				RequestID:  t.RequestID,
				WorkflowID: t.WorkflowID,
				GroupID:    t.GroupID,
				SourceHost: t.Pair.Src,
				DestHost:   t.Pair.Dst,
				SizeBytes:  t.SizeBytes,
				Streams:    t.AllocatedStreams,
				Priority:   t.Priority,
			})
			adv.Transfers = append(adv.Transfers, AdvisedTransfer{
				ID:               t.ID,
				RequestID:        t.RequestID,
				WorkflowID:       t.WorkflowID,
				JobID:            t.JobID,
				ClusterID:        t.ClusterID,
				SourceURL:        t.SourceURL,
				DestURL:          t.DestURL,
				SourceHost:       t.Pair.Src,
				DestHost:         t.Pair.Dst,
				SizeBytes:        t.SizeBytes,
				Streams:          t.AllocatedStreams,
				GroupID:          t.GroupID,
				Priority:         t.Priority,
				RequestedStreams: t.RequestedStreams,
			})
			lines = append(lines, DecisionLine{
				ID:         t.ID,
				RequestID:  t.RequestID,
				WorkflowID: t.WorkflowID,
				FileURL:    t.DestURL,
				Outcome:    OutcomeAdvised,
				GroupID:    t.GroupID,
				Streams:    t.AllocatedStreams,
			})
		default:
			err = fmt.Errorf("policy: transfer %s left in unexpected state %v", t.ID, t.State)
			return nil, logSeq, nil, err
		}
	}
	sortAdvice(adv.Transfers)
	rec = &DecisionRecord{
		Op:          OpAdviseTransfers,
		TraceID:     s.curTrace,
		WALSeq:      logSeq,
		Bundle:      s.tun.Version,
		FactsBefore: factsBefore,
		FactsAfter:  s.session.FactCount(),
		RulesFired:  s.takeFirings(),
		Lines:       lines,
	}
	return adv, logSeq, rec, nil
}

// sortAdvice orders the returned transfer list: higher priority first, then
// by group ID, then by source and destination URL (Table I: "Sort the list
// of transfers by the source and destination URLs"), then by ID.
func sortAdvice(ts []AdvisedTransfer) {
	sort.SliceStable(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		if a.GroupID != b.GroupID {
			return a.GroupID < b.GroupID
		}
		if a.SourceURL != b.SourceURL {
			return a.SourceURL < b.SourceURL
		}
		if a.DestURL != b.DestURL {
			return a.DestURL < b.DestURL
		}
		return a.ID < b.ID
	})
}

// SetTraceLogger forwards rule-engine firing traces to f (nil disables) —
// each line names the fired rule and its fact tuple, which is how the
// tests verify that the Tables I-III policies actually execute as rules.
func (s *Service) SetTraceLogger(f func(format string, args ...any)) {
	s.session.SetLogger(f)
}

// SetObserver installs the performance observer (nil disables).
func (s *Service) SetObserver(obs TransferObserver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = obs
}

// ReportTransfers records completed and failed transfers: their detailed
// state is removed from Policy Memory, their streams are released, and (on
// success) the staged file's resource is marked staged so future requests
// for the same file are suppressed. Timings, when present, are forwarded
// to the performance observer. The returned ack counts reported IDs that
// matched an in-progress transfer and those that matched nothing —
// unmatched IDs mean client and service state have drifted (a replayed
// report after reclamation, a client bug) and were previously dropped
// silently.
func (s *Service) ReportTransfers(report CompletionReport) (*ReportAck, error) {
	return s.ReportTransfersCtx(context.Background(), report)
}

// ReportTransfersCtx is ReportTransfers with causal-trace propagation;
// see AdviseTransfersCtx.
func (s *Service) ReportTransfersCtx(ctx context.Context, report CompletionReport) (*ReportAck, error) {
	ctx, opSpan := obs.StartSpan(ctx, s.currentTracer(), "policy.report_transfers")
	start := time.Now()
	s.mu.Lock()
	ack, seq, rec, pending, err := s.reportTransfersLocked(ctx, start, report)
	observer := s.observer
	s.mu.Unlock()
	if err := s.commitOp(ctx, opSpan, seq, rec, err); err != nil {
		return nil, err
	}
	if observer != nil {
		for _, o := range pending {
			observer(o.pair, o.streams, o.size, o.seconds)
		}
	}
	return ack, nil
}

// reportTransfersLocked is the locked core of ReportTransfers; see
// adviseTransfersLocked for the contract. It additionally returns the
// timing observations captured before the rules retracted the transfer
// facts — the caller delivers them to the performance observer after the
// lock is released (the observer may call back into the service).
func (s *Service) reportTransfersLocked(ctx context.Context, start time.Time, report CompletionReport) (ack *ReportAck, logSeq uint64, rec *DecisionRecord, pending []observation, err error) {
	defer s.beginOp(ctx)()
	factsBefore := s.session.FactCount()
	firingsBefore := s.session.Firings()
	defer func() { s.observeOp("report_transfers", start, firingsBefore, err) }()
	var appendSpan *obs.Span
	if s.mlog != nil {
		_, appendSpan = obs.StartSpan(ctx, s.tracer, "wal.append")
	}
	logSeq, err = s.appendLog(OpReportTransfers, report)
	if appendSpan != nil {
		appendSpan.Annot.WALSeq = logSeq
		appendSpan.End()
	}
	if err != nil {
		return nil, logSeq, nil, nil, err
	}
	// Count matches against the transfers still present, consuming each ID
	// on match so a duplicate ID within one report counts unmatched —
	// exactly the IDs the transfer-result-unknown rule will garbage-collect.
	// Point queries against the "id" alpha index keep this O(report), not
	// O(resident transfers).
	consumed := make(map[string]bool, len(report.TransferIDs)+len(report.FailedIDs))
	live := func(id string) bool {
		if consumed[id] {
			return false
		}
		t, ok := transferByID(s.session, id)
		return ok && t.State == TransferInProgress
	}
	ack = &ReportAck{}
	lines := make([]DecisionLine, 0, len(report.TransferIDs)+len(report.FailedIDs))
	line := func(id, outcome string) DecisionLine {
		dl := DecisionLine{ID: id, Outcome: outcome}
		if t, ok := transferByID(s.session, id); ok {
			dl.RequestID = t.RequestID
			dl.WorkflowID = t.WorkflowID
			dl.FileURL = t.DestURL
			dl.GroupID = t.GroupID
			dl.Streams = t.AllocatedStreams
		}
		return dl
	}
	for _, id := range report.TransferIDs {
		if live(id) {
			consumed[id] = true
			ack.Matched++
			lines = append(lines, line(id, OutcomeCompleted))
		} else {
			ack.Unmatched++
			lines = append(lines, line(id, OutcomeUnmatched))
		}
	}
	for _, id := range report.FailedIDs {
		if live(id) {
			consumed[id] = true
			ack.Matched++
			lines = append(lines, line(id, OutcomeFailed))
		} else {
			ack.Unmatched++
			lines = append(lines, line(id, OutcomeUnmatched))
		}
	}
	if ack.Unmatched > 0 {
		s.reportUnmatchedByOp["report_transfers"] += ack.Unmatched
		if s.metrics != nil {
			s.metrics.reportUnmatch.With("report_transfers").Add(float64(ack.Unmatched))
		}
	}
	if s.observer != nil {
		// Look the transfers up before the rules retract them; the
		// observer itself runs after the lock is released so it may call
		// back into the service (e.g. SetThreshold from a tuner).
		for _, tm := range report.Timings {
			if t, ok := transferByID(s.session, tm.TransferID); ok {
				pending = append(pending, observation{t.Pair, t.AllocatedStreams, t.SizeBytes, tm.Seconds})
			}
		}
	}
	if s.tracer != nil {
		// Completion and failure events also need the transfer facts
		// before retraction, to carry host pair and stream context.
		seconds := make(map[string]float64, len(report.Timings))
		for _, tm := range report.Timings {
			seconds[tm.TransferID] = tm.Seconds
		}
		s.emitResults(obs.EventCompleted, report.TransferIDs, seconds)
		s.emitResults(obs.EventFailed, report.FailedIDs, seconds)
	}
	for _, id := range report.TransferIDs {
		s.session.Insert(&TransferResult{TransferID: id})
	}
	for _, id := range report.FailedIDs {
		s.session.Insert(&TransferResult{TransferID: id, Failed: true})
	}
	_, fireSpan := obs.StartSpan(ctx, s.tracer, "rules.fire")
	_, fireErr := s.session.FireAll(s.cfg.FireBudget)
	fireSpan.End()
	if fireErr != nil {
		err = fmt.Errorf("policy: rule evaluation: %w", fireErr)
		return nil, logSeq, nil, nil, err
	}
	rec = &DecisionRecord{
		Op:          OpReportTransfers,
		TraceID:     s.curTrace,
		WALSeq:      logSeq,
		Bundle:      s.tun.Version,
		FactsBefore: factsBefore,
		FactsAfter:  s.session.FactCount(),
		RulesFired:  s.takeFirings(),
		Lines:       lines,
	}
	return ack, logSeq, rec, pending, nil
}

// emitResults emits one lifecycle event per reported transfer ID,
// enriched from the still-present Transfer fact. Callers hold s.mu.
func (s *Service) emitResults(eventType string, ids []string, seconds map[string]float64) {
	for _, id := range ids {
		e := obs.Event{Type: eventType, TransferID: id, Seconds: seconds[id]}
		if t, ok := transferByID(s.session, id); ok {
			e.RequestID = t.RequestID
			e.WorkflowID = t.WorkflowID
			e.GroupID = t.GroupID
			e.SourceHost = t.Pair.Src
			e.DestHost = t.Pair.Dst
			e.SizeBytes = t.SizeBytes
			e.Streams = t.AllocatedStreams
		}
		s.emit(e)
	}
}

// AdviseCleanups evaluates a list of file-deletion requests: duplicates and
// deletions of files still in use by other workflows are removed. Approved
// cleanups are recorded as in progress until reported via ReportCleanups.
func (s *Service) AdviseCleanups(specs []CleanupSpec) (*CleanupAdvice, error) {
	return s.AdviseCleanupsCtx(context.Background(), specs)
}

// AdviseCleanupsCtx is AdviseCleanups with causal-trace propagation;
// see AdviseTransfersCtx.
func (s *Service) AdviseCleanupsCtx(ctx context.Context, specs []CleanupSpec) (*CleanupAdvice, error) {
	if err := validateCleanupSpecs(specs); err != nil {
		return nil, err
	}
	ctx, opSpan := obs.StartSpan(ctx, s.currentTracer(), "policy.advise_cleanups")
	start := time.Now()
	s.mu.Lock()
	adv, seq, rec, err := s.adviseCleanupsLocked(ctx, start, specs)
	s.mu.Unlock()
	if err := s.commitOp(ctx, opSpan, seq, rec, err); err != nil {
		return nil, err
	}
	return adv, nil
}

// validateCleanupSpecs is whole-batch validation before logging or
// inserting facts, for the same atomicity reason as
// validateTransferSpecs.
func validateCleanupSpecs(specs []CleanupSpec) error {
	if len(specs) == 0 {
		return ErrEmptyRequest
	}
	for i, spec := range specs {
		if spec.FileURL == "" {
			return fmt.Errorf("%w: cleanup request %d: file URL is required", ErrInvalidRequest, i)
		}
	}
	return nil
}

// adviseCleanupsLocked is the locked core of AdviseCleanups; see
// adviseTransfersLocked for the contract.
func (s *Service) adviseCleanupsLocked(ctx context.Context, start time.Time, specs []CleanupSpec) (adv *CleanupAdvice, logSeq uint64, rec *DecisionRecord, err error) {
	defer s.beginOp(ctx)()
	factsBefore := s.session.FactCount()
	firingsBefore := s.session.Firings()
	defer func() { s.observeOp("advise_cleanups", start, firingsBefore, err) }()
	var appendSpan *obs.Span
	if s.mlog != nil {
		_, appendSpan = obs.StartSpan(ctx, s.tracer, "wal.append")
	}
	logSeq, err = s.appendLog(OpAdviseCleanups, specs)
	if appendSpan != nil {
		appendSpan.Annot.WALSeq = logSeq
		appendSpan.End()
	}
	if err != nil {
		return nil, logSeq, nil, err
	}
	s.renewLeasesLocked(cleanupOwners(specs))

	batch := make([]*Cleanup, 0, len(specs))
	for _, spec := range specs {
		s.nextCleanup++
		c := &Cleanup{
			ID:         fmt.Sprintf("c-%08d", s.nextCleanup),
			RequestID:  spec.RequestID,
			WorkflowID: spec.WorkflowID,
			FileURL:    spec.FileURL,
			State:      CleanupSubmitted,
		}
		batch = append(batch, c)
		s.session.Insert(c)
	}
	_, fireSpan := obs.StartSpan(ctx, s.tracer, "rules.fire")
	_, fireErr := s.session.FireAll(s.cfg.FireBudget)
	fireSpan.End()
	if fireErr != nil {
		err = fmt.Errorf("policy: rule evaluation: %w", fireErr)
		return nil, logSeq, nil, err
	}

	adv = &CleanupAdvice{}
	lines := make([]DecisionLine, 0, len(batch))
	for _, c := range batch {
		switch c.State {
		case CleanupRemoved:
			adv.Removed = append(adv.Removed, RemovedCleanup{
				RequestID: c.RequestID,
				FileURL:   c.FileURL,
				Reason:    c.Reason,
			})
			lines = append(lines, DecisionLine{
				ID:         c.ID,
				RequestID:  c.RequestID,
				WorkflowID: c.WorkflowID,
				FileURL:    c.FileURL,
				Outcome:    OutcomeSuppressed,
				Reason:     c.Reason,
			})
			if s.metrics != nil {
				s.metrics.cleanSupp.With(c.Reason).Inc()
			}
			s.emit(obs.Event{
				Type:       obs.EventCleanupSuppressed,
				TransferID: c.ID,
				RequestID:  c.RequestID,
				WorkflowID: c.WorkflowID,
				FileURL:    c.FileURL,
				Reason:     c.Reason,
			})
			s.session.Retract(c)
		case CleanupAdvised:
			c.State = CleanupInProgress
			s.session.Update(c)
			if s.metrics != nil {
				s.metrics.cleanAdv.Inc()
			}
			s.emit(obs.Event{
				Type:       obs.EventCleanupAdvised,
				TransferID: c.ID,
				RequestID:  c.RequestID,
				WorkflowID: c.WorkflowID,
				FileURL:    c.FileURL,
			})
			adv.Cleanups = append(adv.Cleanups, AdvisedCleanup{
				ID:         c.ID,
				RequestID:  c.RequestID,
				WorkflowID: c.WorkflowID,
				FileURL:    c.FileURL,
			})
			lines = append(lines, DecisionLine{
				ID:         c.ID,
				RequestID:  c.RequestID,
				WorkflowID: c.WorkflowID,
				FileURL:    c.FileURL,
				Outcome:    OutcomeAdvised,
			})
		default:
			err = fmt.Errorf("policy: cleanup %s left in unexpected state %v", c.ID, c.State)
			return nil, logSeq, nil, err
		}
	}
	rec = &DecisionRecord{
		Op:          OpAdviseCleanups,
		TraceID:     s.curTrace,
		WALSeq:      logSeq,
		Bundle:      s.tun.Version,
		FactsBefore: factsBefore,
		FactsAfter:  s.session.FactCount(),
		RulesFired:  s.takeFirings(),
		Lines:       lines,
	}
	return adv, logSeq, rec, nil
}

// ReportCleanups records completed cleanup operations; their state and the
// deleted files' resources are removed from Policy Memory. The returned
// ack counts IDs that matched an in-progress cleanup versus matched
// nothing, mirroring ReportTransfers.
func (s *Service) ReportCleanups(report CleanupReport) (*ReportAck, error) {
	return s.ReportCleanupsCtx(context.Background(), report)
}

// ReportCleanupsCtx is ReportCleanups with causal-trace propagation;
// see AdviseTransfersCtx.
func (s *Service) ReportCleanupsCtx(ctx context.Context, report CleanupReport) (*ReportAck, error) {
	ctx, opSpan := obs.StartSpan(ctx, s.currentTracer(), "policy.report_cleanups")
	start := time.Now()
	s.mu.Lock()
	ack, seq, rec, err := s.reportCleanupsLocked(ctx, start, report)
	s.mu.Unlock()
	if err := s.commitOp(ctx, opSpan, seq, rec, err); err != nil {
		return nil, err
	}
	return ack, nil
}

// reportCleanupsLocked is the locked core of ReportCleanups; see
// adviseTransfersLocked for the contract.
func (s *Service) reportCleanupsLocked(ctx context.Context, start time.Time, report CleanupReport) (ack *ReportAck, logSeq uint64, rec *DecisionRecord, err error) {
	defer s.beginOp(ctx)()
	factsBefore := s.session.FactCount()
	firingsBefore := s.session.Firings()
	defer func() { s.observeOp("report_cleanups", start, firingsBefore, err) }()
	var appendSpan *obs.Span
	if s.mlog != nil {
		_, appendSpan = obs.StartSpan(ctx, s.tracer, "wal.append")
	}
	logSeq, err = s.appendLog(OpReportCleanups, report)
	if appendSpan != nil {
		appendSpan.Annot.WALSeq = logSeq
		appendSpan.End()
	}
	if err != nil {
		return nil, logSeq, nil, err
	}
	consumed := make(map[string]bool, len(report.CleanupIDs))
	live := func(id string) bool {
		if consumed[id] {
			return false
		}
		c, ok := firstByKey[*Cleanup](s.session, "id", id)
		return ok && c.State == CleanupInProgress
	}
	ack = &ReportAck{}
	lines := make([]DecisionLine, 0, len(report.CleanupIDs))
	for _, id := range report.CleanupIDs {
		dl := DecisionLine{ID: id, Outcome: OutcomeCleaned}
		if live(id) {
			consumed[id] = true
			ack.Matched++
		} else {
			ack.Unmatched++
			dl.Outcome = OutcomeUnmatched
		}
		if c, ok := firstByKey[*Cleanup](s.session, "id", id); ok {
			dl.RequestID = c.RequestID
			dl.WorkflowID = c.WorkflowID
			dl.FileURL = c.FileURL
			if s.tracer != nil {
				s.emit(obs.Event{Type: obs.EventCleaned, TransferID: id,
					RequestID: c.RequestID, WorkflowID: c.WorkflowID, FileURL: c.FileURL})
			}
		} else if s.tracer != nil {
			s.emit(obs.Event{Type: obs.EventCleaned, TransferID: id})
		}
		lines = append(lines, dl)
		s.session.Insert(&CleanupResult{CleanupID: id})
	}
	if ack.Unmatched > 0 {
		s.reportUnmatchedByOp["report_cleanups"] += ack.Unmatched
		if s.metrics != nil {
			s.metrics.reportUnmatch.With("report_cleanups").Add(float64(ack.Unmatched))
		}
	}
	_, fireSpan := obs.StartSpan(ctx, s.tracer, "rules.fire")
	_, fireErr := s.session.FireAll(s.cfg.FireBudget)
	fireSpan.End()
	if fireErr != nil {
		err = fmt.Errorf("policy: rule evaluation: %w", fireErr)
		return nil, logSeq, nil, err
	}
	rec = &DecisionRecord{
		Op:          OpReportCleanups,
		TraceID:     s.curTrace,
		WALSeq:      logSeq,
		Bundle:      s.tun.Version,
		FactsBefore: factsBefore,
		FactsAfter:  s.session.FactCount(),
		RulesFired:  s.takeFirings(),
		Lines:       lines,
	}
	return ack, logSeq, rec, nil
}

// SetThreshold sets the maximum number of parallel streams between a host
// pair, overriding the default for that pair from now on.
func (s *Service) SetThreshold(srcHost, dstHost string, max int) (err error) {
	if max < 1 {
		return fmt.Errorf("%w: threshold must be >= 1, got %d", ErrInvalidRequest, max)
	}
	var logSeq uint64
	defer func() {
		if serr := s.syncLog(logSeq); serr != nil && err == nil {
			err = serr
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if logSeq, err = s.appendLog(OpSetThreshold, ThresholdOp{
		SourceHost: srcHost, DestHost: dstHost, Max: max,
	}); err != nil {
		return err
	}
	pair := HostPair{Src: srcHost, Dst: dstHost}
	if th, ok := firstByKey[*Threshold](s.session, "pair", pair); ok {
		th.Max = max
		s.session.Update(th)
		return nil
	}
	s.session.Insert(&Threshold{Pair: pair, Max: max})
	return nil
}

// Snapshot reports the externally visible state of the service.
func (s *Service) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Algorithm:      string(s.tun.Algorithm),
		DefaultStreams: s.tun.DefaultStreams,
		Bundle:         s.tun.Version,
	}
	inFlightByPair := make(map[HostPair]int)
	for _, t := range rules.FactsOf[*Transfer](s.session) {
		if t.State == TransferInProgress {
			snap.InFlight++
			inFlightByPair[t.Pair]++
		}
	}
	for _, r := range rules.FactsOf[*Resource](s.session) {
		snap.TrackedFiles++
		if r.Staged {
			snap.StagedResources++
		}
	}
	snap.PendingCleanups = rules.CountOf(s.session, func(c *Cleanup) bool {
		return c.State == CleanupInProgress
	})
	thresholds := make(map[HostPair]int)
	for _, th := range rules.FactsOf[*Threshold](s.session) {
		thresholds[th.Pair] = th.Max
	}
	for _, l := range rules.FactsOf[*StreamLedger](s.session) {
		snap.Pairs = append(snap.Pairs, PairState{
			SourceHost: l.Pair.Src,
			DestHost:   l.Pair.Dst,
			Threshold:  thresholds[l.Pair],
			Allocated:  l.Allocated,
			InFlight:   inFlightByPair[l.Pair],
		})
	}
	sort.Slice(snap.Pairs, func(i, j int) bool {
		if snap.Pairs[i].SourceHost != snap.Pairs[j].SourceHost {
			return snap.Pairs[i].SourceHost < snap.Pairs[j].SourceHost
		}
		return snap.Pairs[i].DestHost < snap.Pairs[j].DestHost
	})
	return snap
}

// Stats returns cumulative counters: transfers advised and suppressed.
func (s *Service) Stats() (advised, suppressed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advised, s.suppressed
}

// RuleFirings returns the lifetime rule-firing count of the underlying
// engine session (a scalability diagnostic).
func (s *Service) RuleFirings() int64 { return s.session.Firings() }

// FactCount returns the number of facts currently in Policy Memory.
func (s *Service) FactCount() int { return s.session.FactCount() }
