package policy

import (
	"fmt"
	"testing"
)

// TestHostPairIsolation: the paper's thresholds are per host pair;
// saturating one pair must not affect allocations on another.
func TestHostPairIsolation(t *testing.T) {
	s := newGreedy(t, 10, 8)
	mkSpec := func(src string, i int) TransferSpec {
		return TransferSpec{
			RequestID:  fmt.Sprintf("%s-%d", src, i),
			WorkflowID: "wf1",
			SourceURL:  fmt.Sprintf("gsiftp://%s/data/f%d", src, i),
			DestURL:    fmt.Sprintf("file://dst.example.org/%s/f%d", src, i),
		}
	}
	// Saturate pair A (threshold 10 with 8-stream requests).
	var aSpecs []TransferSpec
	for i := 0; i < 4; i++ {
		aSpecs = append(aSpecs, mkSpec("a.example.org", i))
	}
	advA, err := s.AdviseTransfers(aSpecs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tr := range advA.Transfers {
		total += tr.Streams
	}
	if total < 10 {
		t.Fatalf("pair A not saturated: %d", total)
	}
	// Pair B is untouched: full default grant.
	advB, err := s.AdviseTransfers([]TransferSpec{mkSpec("b.example.org", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if advB.Transfers[0].Streams != 8 {
		t.Fatalf("pair B grant = %d, want 8 (isolated)", advB.Transfers[0].Streams)
	}
	// Each pair has its own ledger and group.
	snap := s.Snapshot()
	if len(snap.Pairs) != 2 {
		t.Fatalf("pairs = %+v", snap.Pairs)
	}
	if advA.Transfers[0].GroupID == advB.Transfers[0].GroupID {
		t.Fatal("distinct pairs share a group ID")
	}
}

// TestManyPairsScale: the service handles dozens of pairs with correct
// independent accounting.
func TestManyPairsScale(t *testing.T) {
	s := newGreedy(t, 50, 4)
	const pairs = 30
	var ids []string
	for p := 0; p < pairs; p++ {
		adv, err := s.AdviseTransfers([]TransferSpec{{
			RequestID:  fmt.Sprintf("p%d", p),
			WorkflowID: "wf1",
			SourceURL:  fmt.Sprintf("gsiftp://src%02d.example.org/f", p),
			DestURL:    fmt.Sprintf("file://dst%02d.example.org/f", p),
		}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, adv.Transfers[0].ID)
	}
	snap := s.Snapshot()
	if len(snap.Pairs) != pairs {
		t.Fatalf("pairs = %d", len(snap.Pairs))
	}
	for _, p := range snap.Pairs {
		if p.Allocated != 4 || p.InFlight != 1 {
			t.Fatalf("pair state = %+v", p)
		}
	}
	if _, err := s.ReportTransfers(CompletionReport{TransferIDs: ids}); err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Snapshot().Pairs {
		if p.Allocated != 0 {
			t.Fatalf("pair leaked: %+v", p)
		}
	}
}
