package policy

import (
	"encoding/json"
	"encoding/xml"
	"testing"
)

// buildBusyService creates a service with in-flight transfers, staged
// resources, pending cleanups, and a custom threshold — a representative
// Policy Memory.
func buildBusyService(t *testing.T) (*Service, *TransferAdvice) {
	t.Helper()
	s := newGreedy(t, 50, 8)
	if err := s.SetThreshold("futuregrid.tacc.example.org", "obelix.isi.example.org", 30); err != nil {
		t.Fatal(err)
	}
	adv, err := s.AdviseTransfers([]TransferSpec{spec(1, "wf1"), spec(2, "wf1"), spec(3, "wf2")})
	if err != nil {
		t.Fatal(err)
	}
	// Complete one; leave two in flight.
	if _, err := s.ReportTransfers(CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}
	return s, adv
}

func TestExportImportRoundTrip(t *testing.T) {
	src, _ := buildBusyService(t)
	dump := src.ExportState()

	cfg := DefaultConfig()
	cfg.DefaultThreshold = 50
	cfg.DefaultStreams = 8
	dst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportState(dump); err != nil {
		t.Fatal(err)
	}

	a, b := src.Snapshot(), dst.Snapshot()
	if a.InFlight != b.InFlight || a.StagedResources != b.StagedResources ||
		a.TrackedFiles != b.TrackedFiles {
		t.Fatalf("snapshots differ: %+v vs %+v", a, b)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("pairs differ: %v vs %v", a.Pairs, b.Pairs)
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d: %+v vs %+v", i, a.Pairs[i], b.Pairs[i])
		}
	}
}

func TestImportedStateContinuesSemantics(t *testing.T) {
	src, _ := buildBusyService(t)
	dump := src.ExportState()
	dst, err := New(Config{Algorithm: AlgoGreedy, DefaultStreams: 8, MinStreams: 1, DefaultThreshold: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportState(dump); err != nil {
		t.Fatal(err)
	}
	// Duplicate of the staged file: suppressed on the importing service.
	adv, err := dst.AdviseTransfers([]TransferSpec{spec(1, "wf9")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Removed) != 1 || adv.Removed[0].Reason != "already-staged" {
		t.Fatalf("staged-dup advice = %+v", adv)
	}
	// Duplicate of an in-flight transfer: suppressed too.
	adv, err = dst.AdviseTransfers([]TransferSpec{spec(2, "wf9")})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Removed) != 1 || adv.Removed[0].Reason != "in-progress" {
		t.Fatalf("in-progress-dup advice = %+v", adv)
	}
	// Ledger continuity: two in-flight transfers hold 8 streams each of
	// the pair's 30-stream threshold. The next request fits in full (8);
	// the one after is trimmed to the remaining 6.
	adv, err = dst.AdviseTransfers([]TransferSpec{spec(10, "wf9")})
	if err != nil {
		t.Fatal(err)
	}
	if got := adv.Transfers[0].Streams; got != 8 {
		t.Fatalf("post-import grant = %d, want 8 (14 of 30 remaining)", got)
	}
	adv2, err := dst.AdviseTransfers([]TransferSpec{spec(11, "wf9")})
	if err != nil {
		t.Fatal(err)
	}
	if got := adv2.Transfers[0].Streams; got != 6 {
		t.Fatalf("trimmed grant = %d, want 6 (threshold 30, 24 held)", got)
	}
	// ID continuity: no collision with pre-dump IDs.
	if adv.Transfers[0].ID <= "t-00000004" {
		t.Fatalf("ID counter regressed: %s", adv.Transfers[0].ID)
	}
	// Completing an imported transfer releases its streams.
	if _, err := dst.ReportTransfers(CompletionReport{TransferIDs: []string{"t-00000002"}}); err != nil {
		t.Fatal(err)
	}
	snap := dst.Snapshot()
	for _, p := range snap.Pairs {
		if p.Allocated < 0 {
			t.Fatalf("negative ledger after imported completion: %+v", p)
		}
	}
}

func TestStateDumpSerializes(t *testing.T) {
	src, _ := buildBusyService(t)
	dump := src.ExportState()
	j, err := json.Marshal(dump)
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON StateDump
	if err := json.Unmarshal(j, &fromJSON); err != nil {
		t.Fatal(err)
	}
	if len(fromJSON.Transfers) != len(dump.Transfers) || len(fromJSON.Resources) != len(dump.Resources) {
		t.Fatalf("JSON round trip lost facts")
	}
	x, err := xml.Marshal(dump)
	if err != nil {
		t.Fatal(err)
	}
	var fromXML StateDump
	if err := xml.Unmarshal(x, &fromXML); err != nil {
		t.Fatal(err)
	}
	if len(fromXML.Transfers) != len(dump.Transfers) || fromXML.NextTransfer != dump.NextTransfer {
		t.Fatalf("XML round trip lost facts")
	}
}

func TestImportNil(t *testing.T) {
	s := newGreedy(t, 50, 4)
	if err := s.ImportState(nil); err == nil {
		t.Fatal("nil dump accepted")
	}
}

func TestImportReplacesExistingMemory(t *testing.T) {
	s := newGreedy(t, 50, 4)
	if _, err := s.AdviseTransfers([]TransferSpec{spec(42, "wfX")}); err != nil {
		t.Fatal(err)
	}
	blank, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ImportState(blank.ExportState()); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); snap.InFlight != 0 || snap.TrackedFiles != 0 {
		t.Fatalf("old memory survived import: %+v", snap)
	}
}
