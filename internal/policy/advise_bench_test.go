package policy

import (
	"fmt"
	"testing"
)

// loadResidentFacts seeds Policy Memory with n in-progress transfers (plus
// their resource, threshold, ledger, and group facts) without going
// through the advise path, so the warm-up cost is O(n) inserts for the
// naive reference engine too. Residents spread over 64 host pairs and one
// settle pass runs afterwards (in-progress facts activate no rules, so it
// only drains the agenda bookkeeping).
func loadResidentFacts(b *testing.B, svc *Service, n int) {
	b.Helper()
	const pairs = 64
	type pairState struct {
		pair      HostPair
		allocated int
	}
	ps := make([]*pairState, pairs)
	for p := 0; p < pairs; p++ {
		ps[p] = &pairState{pair: HostPair{
			Src: fmt.Sprintf("res-src-%d.example.org", p),
			Dst: fmt.Sprintf("res-dst-%d.example.org", p),
		}}
	}
	for i := 0; i < n; i++ {
		st := ps[i%pairs]
		dest := fmt.Sprintf("file://%s/scratch/res-%d", st.pair.Dst, i)
		svc.session.Insert(&Transfer{
			ID:               fmt.Sprintf("t-res-%08d", i),
			RequestID:        fmt.Sprintf("res-%d", i),
			WorkflowID:       "resident",
			SourceURL:        fmt.Sprintf("gsiftp://%s/data/res-%d", st.pair.Src, i),
			DestURL:          dest,
			Pair:             st.pair,
			RequestedStreams: 4,
			AllocatedStreams: 4,
			GroupID:          fmt.Sprintf("g-res-%04d", i%pairs),
			State:            TransferInProgress,
		})
		svc.session.Insert(&Resource{
			DestURL: dest,
			Users:   map[string]int{"resident": 1},
		})
		st.allocated += 4
	}
	for p, st := range ps {
		svc.session.Insert(&Threshold{Pair: st.pair, Max: 1 << 20})
		svc.session.Insert(&StreamLedger{Pair: st.pair, Allocated: st.allocated})
		svc.session.Insert(&Group{Pair: st.pair, ID: fmt.Sprintf("g-res-%04d", p)})
	}
	svc.nextTransfer = 10 * n // measured IDs never collide with residents
	svc.nextGroup = pairs
	if _, err := svc.session.FireAll(0); err != nil {
		b.Fatal(err)
	}
}

// benchAdviseHotPath measures one advise/report round trip against n
// resident facts. This is the series behind rules_advise_facts_10k and
// rules_advise_facts_100k in BENCH_policyflow.json.
func benchAdviseHotPath(b *testing.B, n int, reference bool) {
	cfg := DefaultConfig()
	cfg.referenceMatcher = reference
	svc, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	loadResidentFacts(b, svc, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv, err := svc.AdviseTransfers([]TransferSpec{{
			RequestID:  fmt.Sprintf("bench-%d", i),
			WorkflowID: "bench",
			SourceURL:  fmt.Sprintf("gsiftp://bench-src.example.org/data/f%d", i),
			DestURL:    fmt.Sprintf("file://bench-dst.example.org/scratch/f%d", i),
		}})
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]string, len(adv.Transfers))
		for j, tr := range adv.Transfers {
			ids[j] = tr.ID
		}
		if _, err := svc.ReportTransfers(CompletionReport{TransferIDs: ids}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdviseHotPath is the incremental engine at scale.
func BenchmarkAdviseHotPath(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("facts=%d", n), func(b *testing.B) {
			benchAdviseHotPath(b, n, false)
		})
	}
}

// BenchmarkAdviseHotPathReference is the naive full-rejoin engine on the
// same workload — the "before" curve for EXPERIMENTS.md. Not part of the
// benchjson trajectory (it would dominate CI time at 100k facts).
func BenchmarkAdviseHotPathReference(b *testing.B) {
	for _, n := range []int{10000} {
		b.Run(fmt.Sprintf("facts=%d", n), func(b *testing.B) {
			benchAdviseHotPath(b, n, true)
		})
	}
}
