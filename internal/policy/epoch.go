package policy

// The fencing epoch is the failover subsystem's single source of truth for
// "who may write": a monotonically increasing counter moved only by the
// WAL-logged bump_epoch mutation. Promotion bumps it on the new primary's
// own log before the new primary serves a single write, and the HTTP layer
// rejects mutations from any server whose epoch is behind a client's —
// so a deposed primary can never acknowledge a write after promotion.
// The epoch rides in StateDump (and hence snapshots, archives and
// replication), so standbys and resynced replicas adopt it with the rest
// of Policy Memory.

// EpochOp is the logged payload of a BumpEpoch mutation.
type EpochOp struct {
	Epoch uint64 `json:"epoch"`
}

// Epoch returns the service's current fencing epoch.
func (s *Service) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// BumpEpoch raises the fencing epoch to target through the write-ahead
// log. Like bundle activation, it is idempotent without logging: a target
// at or below the current epoch is a no-op (epochs only move forward, and
// replaying a stale bump must not re-log it). The returned value is the
// epoch in force afterwards.
func (s *Service) BumpEpoch(target uint64) (epoch uint64, err error) {
	var logSeq uint64
	defer func() {
		if serr := s.syncLog(logSeq); serr != nil && err == nil {
			err = serr
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if target <= s.epoch {
		return s.epoch, nil
	}
	if logSeq, err = s.appendLog(OpBumpEpoch, EpochOp{Epoch: target}); err != nil {
		return s.epoch, err
	}
	s.epoch = target
	if s.metrics != nil {
		s.metrics.epochGauge.Set(float64(s.epoch))
	}
	return s.epoch, nil
}
