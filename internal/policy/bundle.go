package policy

import (
	"context"
	"fmt"
	"sort"
	"time"

	"policyflow/internal/bundle"
	"policyflow/internal/obs"
	"policyflow/internal/rules"
)

// Policy as data: the service's tunable surface — allocation algorithm,
// stream defaults, thresholds, cluster factor, priority weights — is
// governed by a versioned, checksummed bundle document (internal/bundle)
// rather than only by the compiled-in Config. The compiled-in values are
// embedded as the "v0" bundle at construction, so a service that never
// sees a bundle behaves exactly as before; activating a bundle atomically
// swaps an immutable Tunables snapshot and rewrites the configuration
// facts in Policy Memory behind a WAL-logged ActivateBundle mutation, so
// durable replay and replicas converge on the same active version. Every
// decision record carries the version that produced it.

// BootstrapBundleVersion names the bundle synthesized from the compiled-in
// configuration at construction.
const BootstrapBundleVersion = "v0"

// Tunables is the immutable snapshot of the active bundle's policy values.
// The service swaps the snapshot pointer only under its lock, and every
// operation (including each rule firing inside it) reads one snapshot for
// its whole duration, so a concurrent activation never half-applies to an
// in-flight decision. A Tunables value is never mutated after creation.
type Tunables struct {
	// Version and Checksum identify the producing bundle.
	Version  string
	Checksum string

	Algorithm        Algorithm
	DefaultStreams   int
	MinStreams       int
	DefaultThreshold int
	ClusterFactor    int
	Priority         PriorityWeighting
}

// bundleFromConfig synthesizes the v0 bundle from a normalized Config: the
// compiled-in defaults expressed as data, byte-identical in effect to the
// pre-bundle engine.
func bundleFromConfig(cfg Config) *bundle.Bundle {
	b := &bundle.Bundle{
		SchemaVersion:    bundle.SchemaVersion,
		Version:          BootstrapBundleVersion,
		Description:      "compiled-in defaults",
		Algorithm:        string(cfg.Algorithm),
		DefaultStreams:   cfg.DefaultStreams,
		MinStreams:       cfg.MinStreams,
		DefaultThreshold: cfg.DefaultThreshold,
		ClusterFactor:    cfg.ClusterFactor,
	}
	for pair, max := range cfg.PairThresholds {
		b.PairThresholds = append(b.PairThresholds, bundle.PairThreshold{
			SourceHost: pair.Src, DestHost: pair.Dst, Max: max,
		})
	}
	sort.Slice(b.PairThresholds, func(i, j int) bool {
		a, c := b.PairThresholds[i], b.PairThresholds[j]
		if a.SourceHost != c.SourceHost {
			return a.SourceHost < c.SourceHost
		}
		return a.DestHost < c.DestHost
	})
	if w := cfg.Priority; w.BoostFactor > 1 || (w.ReduceFactor > 0 && w.ReduceFactor < 1) {
		p := &bundle.Priority{BoostFactor: w.BoostFactor, ReduceFactor: w.ReduceFactor}
		// Clamp into the schema's ranges; values outside them are inert in
		// the weighting rules anyway.
		if p.BoostFactor < 1 {
			p.BoostFactor = 1
		}
		if p.ReduceFactor < 0 {
			p.ReduceFactor = 0
		}
		if p.ReduceFactor > 1 {
			p.ReduceFactor = 1
		}
		b.Priority = p
	}
	return b
}

// tunablesFrom derives the immutable snapshot for an activated bundle. A
// bundle without a priority section keeps the compiled-in weighting.
func tunablesFrom(b *bundle.Bundle, fallback PriorityWeighting) *Tunables {
	t := &Tunables{
		Version:          b.Version,
		Checksum:         b.Checksum(),
		Algorithm:        Algorithm(b.Algorithm),
		DefaultStreams:   b.DefaultStreams,
		MinStreams:       b.MinStreams,
		DefaultThreshold: b.DefaultThreshold,
		ClusterFactor:    b.ClusterFactor,
		Priority:         fallback,
	}
	if b.Priority != nil {
		t.Priority = PriorityWeighting{
			BoostFactor:  b.Priority.BoostFactor,
			ReduceFactor: b.Priority.ReduceFactor,
		}
	}
	return t
}

// BundleInfo describes one bundle known to the service.
type BundleInfo struct {
	Version     string `json:"version" xml:"version"`
	Checksum    string `json:"checksum" xml:"checksum"`
	Description string `json:"description,omitempty" xml:"description,omitempty"`
	Algorithm   string `json:"algorithm" xml:"algorithm"`
	Active      bool   `json:"active,omitempty" xml:"active,omitempty"`
	Staged      bool   `json:"staged,omitempty" xml:"staged,omitempty"`
}

// BundleStatus is the service's bundle inventory: the active bundle, the
// previous one (the rollback target), and any staged-but-unactivated
// pushes. Staged bundles are held in memory only — they are excluded from
// state dumps and lost on restart; only activation is durable.
type BundleStatus struct {
	Active   BundleInfo   `json:"active" xml:"active"`
	Previous *BundleInfo  `json:"previous,omitempty" xml:"previous,omitempty"`
	Staged   []BundleInfo `json:"staged,omitempty" xml:"staged>bundle,omitempty"`
}

func bundleInfoOf(b *bundle.Bundle) BundleInfo {
	return BundleInfo{
		Version:     b.Version,
		Checksum:    b.Checksum(),
		Description: b.Description,
		Algorithm:   b.Algorithm,
	}
}

// Tunables returns a copy of the active tunables snapshot.
func (s *Service) Tunables() Tunables {
	s.mu.Lock()
	defer s.mu.Unlock()
	return *s.tun
}

// Bundles reports the service's bundle inventory.
func (s *Service) Bundles() *BundleStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &BundleStatus{Active: bundleInfoOf(s.activeBundle)}
	st.Active.Active = true
	if s.prevBundle != nil {
		i := bundleInfoOf(s.prevBundle)
		st.Previous = &i
	}
	versions := make([]string, 0, len(s.staged))
	for v := range s.staged {
		versions = append(versions, v)
	}
	sort.Strings(versions)
	for _, v := range versions {
		i := bundleInfoOf(s.staged[v])
		i.Staged = true
		st.Staged = append(st.Staged, i)
	}
	return st
}

// StageBundle validates a bundle document and stores it for later
// activation. Staging is not logged and not durable: a staged bundle
// applies no policy until activated, and is lost on restart.
func (s *Service) StageBundle(data []byte) (*BundleInfo, error) {
	b, err := bundle.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.installed[b.Version]; ok && cur.Checksum() != b.Checksum() {
		return nil, fmt.Errorf("%w: bundle version %q already activated with a different checksum",
			ErrInvalidRequest, b.Version)
	}
	s.staged[b.Version] = b
	info := bundleInfoOf(b)
	info.Staged = true
	info.Active = s.tun.Checksum == info.Checksum
	return &info, nil
}

// ActivateBundle parses a bundle document and activates it atomically.
// Activation is WAL-logged with the full document embedded, so crash
// replay and replica resync converge on the same active version without
// access to the original file. Activating the already-active checksum is
// an idempotent no-op and appends nothing.
func (s *Service) ActivateBundle(data []byte) (*BundleInfo, error) {
	return s.ActivateBundleCtx(context.Background(), data)
}

// ActivateBundleCtx is ActivateBundle with causal-trace propagation.
func (s *Service) ActivateBundleCtx(ctx context.Context, data []byte) (*BundleInfo, error) {
	b, err := bundle.Parse(data)
	if err != nil {
		s.mu.Lock()
		s.countActivation("invalid")
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	return s.activateBundle(ctx, b)
}

// ActivateBundleVersion activates a previously staged (or previously
// activated) bundle by version name.
func (s *Service) ActivateBundleVersion(version string) (*BundleInfo, error) {
	return s.ActivateBundleVersionCtx(context.Background(), version)
}

// ActivateBundleVersionCtx is ActivateBundleVersion with causal-trace
// propagation.
func (s *Service) ActivateBundleVersionCtx(ctx context.Context, version string) (*BundleInfo, error) {
	s.mu.Lock()
	b := s.staged[version]
	if b == nil {
		b = s.installed[version]
	}
	s.mu.Unlock()
	if b == nil {
		return nil, fmt.Errorf("%w: unknown bundle version %q (push it first)", ErrInvalidRequest, version)
	}
	return s.activateBundle(ctx, b)
}

// RollbackBundle re-activates the previously active bundle, restoring its
// thresholds and algorithm without a restart. The rollback is itself a
// logged activation, so a second rollback returns to where you were.
func (s *Service) RollbackBundle() (*BundleInfo, error) {
	return s.RollbackBundleCtx(context.Background())
}

// RollbackBundleCtx is RollbackBundle with causal-trace propagation.
func (s *Service) RollbackBundleCtx(ctx context.Context) (*BundleInfo, error) {
	s.mu.Lock()
	b := s.prevBundle
	s.mu.Unlock()
	if b == nil {
		return nil, fmt.Errorf("%w: no previous bundle to roll back to", ErrInvalidRequest)
	}
	return s.activateBundle(ctx, b)
}

// activateBundle is the single activation path: WAL-append the full
// document under the lock, swap the Tunables snapshot, rewrite the
// configuration facts, then group-commit the log record and commit a
// decision record after the sync — the same acknowledge-after-durable
// discipline as advise/report.
func (s *Service) activateBundle(ctx context.Context, b *bundle.Bundle) (info *BundleInfo, err error) {
	ctx, opSpan := obs.StartSpan(ctx, s.currentTracer(), "bundle.activate")
	start := time.Now()
	var logSeq uint64
	var rec *DecisionRecord
	defer func() {
		var syncSpan *obs.Span
		if logSeq != 0 {
			_, syncSpan = obs.StartSpan(ctx, s.currentTracer(), "wal.sync")
		}
		serr := s.syncLog(logSeq)
		if syncSpan != nil {
			syncSpan.Annot.WALSeq = logSeq
			syncSpan.End()
		}
		if serr != nil && err == nil {
			info, err = nil, serr
		}
		if err == nil && rec != nil {
			s.decisions.Add(*rec)
		}
		opSpan.SetWALSeq(logSeq)
		opSpan.End()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp(ctx)()
	firingsBefore := s.session.Firings()
	var opErr error
	defer func() { s.observeOp(OpActivateBundle, start, firingsBefore, opErr) }()
	sum := b.Checksum()
	if s.tun.Checksum == sum {
		// Already active: exactly-once semantics. Nothing is appended, so
		// replay never sees (and replicas never diverge on) a duplicate.
		s.countActivation("noop")
		i := bundleInfoOf(b)
		i.Active = true
		return &i, nil
	}
	if cur, ok := s.installed[b.Version]; ok && cur.Checksum() != sum {
		opErr = fmt.Errorf("%w: bundle version %q already activated with a different checksum",
			ErrInvalidRequest, b.Version)
		s.countActivation("conflict")
		return nil, opErr
	}
	factsBefore := s.session.FactCount()
	var appendSpan *obs.Span
	if s.mlog != nil {
		_, appendSpan = obs.StartSpan(ctx, s.tracer, "wal.append")
	}
	logSeq, opErr = s.appendLog(OpActivateBundle, BundleOp{Bundle: b})
	if appendSpan != nil {
		appendSpan.Annot.WALSeq = logSeq
		appendSpan.End()
	}
	if opErr != nil {
		s.countActivation("error")
		return nil, opErr
	}
	s.applyBundleLocked(b)
	s.countActivation("activated")
	rec = &DecisionRecord{
		Op:          OpActivateBundle,
		TraceID:     s.curTrace,
		WALSeq:      logSeq,
		Bundle:      s.tun.Version,
		FactsBefore: factsBefore,
		FactsAfter:  s.session.FactCount(),
		RulesFired:  s.takeFirings(),
	}
	i := bundleInfoOf(b)
	i.Active = true
	return &i, nil
}

// applyBundleLocked swaps the active bundle and rewrites the configuration
// facts in Policy Memory. Callers hold s.mu. The fact rewrites are
// deterministic (insertion-order iteration only), so every replica applying
// the same logged activation reaches byte-identical state:
//
//   - Defaults and ClusterFactor facts are updated in place;
//   - Threshold facts are replaced wholesale by the bundle's pair set —
//     pairs the bundle does not pin re-bootstrap at the new default on
//     their next advise;
//   - ClusterThreshold facts are dropped (shares re-derive from the new
//     threshold and factor);
//   - ClusterLedger facts are rebuilt from in-flight transfers under
//     balanced allocation (keeping cluster sums equal to the pair ledger)
//     and dropped otherwise.
func (s *Service) applyBundleLocked(b *bundle.Bundle) {
	old := s.tun
	s.prevBundle = s.activeBundle
	s.activeBundle = b
	s.installed[b.Version] = b
	delete(s.staged, b.Version)
	s.tun = tunablesFrom(b, s.cfg.Priority)

	if d, ok := rules.First(s.session, func(*Defaults) bool { return true }); ok {
		d.DefaultStreams = s.tun.DefaultStreams
		d.MinStreams = s.tun.MinStreams
		s.session.Update(d)
	}
	if cf, ok := rules.First(s.session, func(*ClusterFactor) bool { return true }); ok {
		cf.N = s.tun.ClusterFactor
		s.session.Update(cf)
	}
	for _, th := range rules.FactsOf[*Threshold](s.session) {
		s.session.Retract(th)
	}
	for _, pt := range b.PairThresholds {
		s.session.Insert(&Threshold{Pair: HostPair{Src: pt.SourceHost, Dst: pt.DestHost}, Max: pt.Max})
	}
	for _, ct := range rules.FactsOf[*ClusterThreshold](s.session) {
		s.session.Retract(ct)
	}
	for _, cl := range rules.FactsOf[*ClusterLedger](s.session) {
		s.session.Retract(cl)
	}
	if s.tun.Algorithm == AlgoBalanced {
		type key struct {
			pair    HostPair
			cluster string
		}
		ledgers := make(map[key]*ClusterLedger)
		var order []*ClusterLedger
		for _, t := range rules.FactsOf[*Transfer](s.session) {
			if t.State != TransferInProgress {
				continue
			}
			k := key{t.Pair, t.ClusterID}
			cl, ok := ledgers[k]
			if !ok {
				cl = &ClusterLedger{Pair: t.Pair, ClusterID: t.ClusterID}
				ledgers[k] = cl
				order = append(order, cl)
			}
			cl.Allocated += t.AllocatedStreams
		}
		for _, cl := range order {
			s.session.Insert(cl)
		}
	}
	// Rule gates and guards read the tunables snapshot directly (e.g.
	// transfer-min-one-stream reads MinStreams), so the incremental matcher
	// must re-join every rule against the new snapshot.
	s.session.Invalidate()
	if s.metrics != nil {
		s.metrics.bundleInfo.With(old.Version).Set(0)
		s.metrics.bundleInfo.With(s.tun.Version).Set(1)
	}
}

// adoptBundleLocked installs bundle state carried by an imported dump
// without touching facts (the dump's fact lists already reflect it).
// Callers hold s.mu.
func (s *Service) adoptBundleLocked(active, prev *bundle.Bundle) {
	oldVersion := s.tun.Version
	s.activeBundle, s.prevBundle = active, prev
	s.installed[active.Version] = active
	if prev != nil {
		s.installed[prev.Version] = prev
	}
	s.tun = tunablesFrom(active, s.cfg.Priority)
	// Same contract as applyBundleLocked: guards reading the snapshot must
	// be re-evaluated even though no facts changed.
	s.session.Invalidate()
	if s.metrics != nil && oldVersion != s.tun.Version {
		s.metrics.bundleInfo.With(oldVersion).Set(0)
		s.metrics.bundleInfo.With(s.tun.Version).Set(1)
	}
}

// countActivation records one activation attempt by result. Callers hold
// s.mu; the map backs metric backfill for a late Instrument call.
func (s *Service) countActivation(result string) {
	s.bundleActsByResult[result]++
	if s.metrics != nil {
		s.metrics.bundleActs.With(result).Inc()
	}
}
