package policy

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Decision provenance: the paper's core artifact is a policy decision —
// which rules fired, which facts matched, why a transfer got N streams —
// so every advise/report produces a structured DecisionRecord kept in a
// bounded in-memory ring and optionally streamed to a JSONL sink. The
// ring is observability state, not Policy Memory: it is excluded from
// state dumps and replication checks, and a recovering replica rebuilds
// it by WAL replay (replayed records carry WALSeq 0, marking them as
// reconstructed rather than freshly acknowledged).

// RuleFiring is one rule activation, in the exact order conflict
// resolution fired it (higher salience first).
type RuleFiring struct {
	Rule     string `json:"rule" xml:"rule"`
	Salience int    `json:"salience" xml:"salience"`
}

// DecisionLine is the outcome for one entry of the request batch: a
// transfer or cleanup that was advised, suppressed, or — for report
// operations — completed, failed, cleaned or unmatched.
type DecisionLine struct {
	// ID is the policy-assigned transfer (t-...) or cleanup (c-...) ID.
	ID         string `json:"id,omitempty" xml:"id,omitempty"`
	RequestID  string `json:"requestId,omitempty" xml:"requestId,omitempty"`
	WorkflowID string `json:"workflowId,omitempty" xml:"workflowId,omitempty"`
	// FileURL is the destination URL for transfers, the staged file for
	// cleanups — the name `policyctl explain` matches an LFN against.
	FileURL string `json:"fileUrl,omitempty" xml:"fileUrl,omitempty"`
	// Outcome is advised, suppressed, completed, failed, cleaned or
	// unmatched.
	Outcome string `json:"outcome" xml:"outcome"`
	// Reason explains suppressions (duplicate-in-batch, in-progress,
	// already-staged, file-in-use, ...).
	Reason  string `json:"reason,omitempty" xml:"reason,omitempty"`
	GroupID string `json:"groupId,omitempty" xml:"groupId,omitempty"`
	// Streams is the granted parallel-stream count for advised transfers.
	Streams int `json:"streams,omitempty" xml:"streams,omitempty"`
}

// Line outcomes.
const (
	OutcomeAdvised    = "advised"
	OutcomeSuppressed = "suppressed"
	OutcomeCompleted  = "completed"
	OutcomeFailed     = "failed"
	OutcomeCleaned    = "cleaned"
	OutcomeUnmatched  = "unmatched"
)

// DecisionRecord is the provenance of one acknowledged advise/report
// operation: enough to answer "why did this transfer get what it got"
// without access to the Policy Memory that produced it.
type DecisionRecord struct {
	// Seq is the ring-assigned record number, strictly increasing.
	Seq int64 `json:"seq" xml:"seq"`
	// TimeUnixNano is the wall-clock time the record was committed.
	TimeUnixNano int64 `json:"timeUnixNano,omitempty" xml:"timeUnixNano,omitempty"`
	// Op is one of the Op* mutation names (advise_transfers, ...).
	Op string `json:"op" xml:"op"`
	// TraceID links the decision to its causal trace when the request
	// carried one.
	TraceID string `json:"traceId,omitempty" xml:"traceId,omitempty"`
	// WALSeq is the mutation-log sequence the operation was logged
	// under; 0 when no log was attached (or the record was rebuilt by
	// replay).
	WALSeq uint64 `json:"walSeq,omitempty" xml:"walSeq,omitempty"`
	// Bundle is the version of the policy bundle that was active when the
	// decision was produced — the provenance link from a decision back to
	// the exact policy data that shaped it.
	Bundle string `json:"bundle,omitempty" xml:"bundle,omitempty"`
	// FactsBefore/FactsAfter are the Policy Memory fact counts around
	// rule evaluation — the facts the decision was matched against.
	FactsBefore int `json:"factsBefore" xml:"factsBefore"`
	FactsAfter  int `json:"factsAfter" xml:"factsAfter"`
	// RulesFired lists every rule activation, in firing order (salience
	// descending within the agenda at each step).
	RulesFired []RuleFiring `json:"rulesFired,omitempty" xml:"rulesFired>firing,omitempty"`
	// Lines holds the per-entry outcomes of the batch.
	Lines []DecisionLine `json:"lines,omitempty" xml:"lines>line,omitempty"`
}

// DecisionLog is a bounded ring of decision records with an optional
// JSONL sink. Safe for concurrent use; the service appends records after
// releasing its own lock.
type DecisionLog struct {
	mu   sync.Mutex
	cap  int
	buf  []DecisionRecord
	next int64 // next Seq to assign
	// countByOp tracks lifetime records per op, surviving ring eviction.
	countByOp map[string]int64
	sink      *bufio.Writer
	serr      error
	now       func() time.Time
}

// DefaultDecisionRing is the ring capacity used when Config does not
// override it.
const DefaultDecisionRing = 1024

// NewDecisionLog returns a ring keeping the most recent capacity
// records (<= 0 selects DefaultDecisionRing).
func NewDecisionLog(capacity int) *DecisionLog {
	if capacity <= 0 {
		capacity = DefaultDecisionRing
	}
	return &DecisionLog{cap: capacity, countByOp: make(map[string]int64), now: time.Now}
}

// SetSink streams every subsequent record to w as JSON Lines (nil
// detaches). Sink write errors are sticky and returned by Flush.
func (l *DecisionLog) SetSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w == nil {
		l.sink = nil
		return
	}
	l.sink = bufio.NewWriter(w)
	l.serr = nil
}

// Flush drains the sink buffer and reports the first sink error.
func (l *DecisionLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.serr != nil {
		return l.serr
	}
	if l.sink == nil {
		return nil
	}
	l.serr = l.sink.Flush()
	return l.serr
}

// Add assigns the record's sequence number and timestamp, appends it to
// the ring (evicting the oldest when full) and streams it to the sink.
func (l *DecisionLog) Add(rec DecisionRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	rec.Seq = l.next
	l.countByOp[rec.Op]++
	if rec.TimeUnixNano == 0 {
		rec.TimeUnixNano = l.now().UnixNano()
	}
	if len(l.buf) == l.cap {
		copy(l.buf, l.buf[1:])
		l.buf[len(l.buf)-1] = rec
	} else {
		l.buf = append(l.buf, rec)
	}
	if l.sink != nil && l.serr == nil {
		data, err := json.Marshal(&rec)
		if err != nil {
			l.serr = err
			return
		}
		if _, err := l.sink.Write(data); err != nil {
			l.serr = err
			return
		}
		if err := l.sink.WriteByte('\n'); err != nil {
			l.serr = err
		}
	}
}

// Recent returns up to n of the most recent records, oldest first
// (n <= 0 returns all retained records).
func (l *DecisionLog) Recent(n int) []DecisionRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.buf) {
		n = len(l.buf)
	}
	out := make([]DecisionRecord, n)
	copy(out, l.buf[len(l.buf)-n:])
	return out
}

// CountByOp returns the lifetime number of records committed for op
// (including records since evicted from the ring).
func (l *DecisionLog) CountByOp(op string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.countByOp[op]
}

// Total returns the lifetime number of records committed.
func (l *DecisionLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Decisions returns up to n recent decision records, oldest first.
func (s *Service) Decisions(n int) []DecisionRecord {
	return s.decisions.Recent(n)
}

// DecisionCount returns the lifetime number of decision records
// committed for the given logged op name.
func (s *Service) DecisionCount(op string) int64 {
	return s.decisions.CountByOp(op)
}

// SetDecisionSink streams every subsequent decision record to w as JSON
// Lines (nil detaches) — the `-decision-log` file of cmd/policyserver.
func (s *Service) SetDecisionSink(w io.Writer) {
	s.decisions.SetSink(w)
}

// FlushDecisions drains the decision sink.
func (s *Service) FlushDecisions() error {
	return s.decisions.Flush()
}
