package policy

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// recordingLog counts appends and syncs so tests can prove the batch path
// group-commits: many appended records, exactly one Sync call.
type recordingLog struct {
	seq     uint64
	appends []string
	syncs   []uint64
	syncErr error
}

func (l *recordingLog) Append(op string, payload any) (uint64, error) {
	l.seq++
	l.appends = append(l.appends, op)
	return l.seq, nil
}

func (l *recordingLog) Sync(seq uint64) error {
	l.syncs = append(l.syncs, seq)
	return l.syncErr
}

func TestExecuteBatchMixedKindsOneGroupCommit(t *testing.T) {
	s := newGreedy(t, 50, 4)
	log := &recordingLog{}
	s.SetMutationLog(log)

	advise := &BatchMutation{TransferSpecs: []TransferSpec{spec(1, "wf1"), spec(2, "wf1")}}
	cleanup := &BatchMutation{CleanupSpecs: []CleanupSpec{{
		RequestID: "c-1", WorkflowID: "wf1", FileURL: srcBase + "/f001.dat",
	}}}
	s.ExecuteBatch([]*BatchMutation{advise, cleanup})

	if advise.Err != nil || cleanup.Err != nil {
		t.Fatalf("batch errors: advise=%v cleanup=%v", advise.Err, cleanup.Err)
	}
	if advise.TransferAdvice == nil || len(advise.TransferAdvice.Transfers) != 2 {
		t.Fatalf("transfer advice = %+v", advise.TransferAdvice)
	}
	if cleanup.CleanupAdvice == nil || len(cleanup.CleanupAdvice.Cleanups) != 1 {
		t.Fatalf("cleanup advice = %+v", cleanup.CleanupAdvice)
	}
	if len(log.appends) != 2 {
		t.Fatalf("appended %d records, want 2: %v", len(log.appends), log.appends)
	}
	// The whole point of the batch: one fsync covers every record, at the
	// highest sequence the batch appended.
	if len(log.syncs) != 1 || log.syncs[0] != log.seq {
		t.Fatalf("syncs = %v, want exactly one at seq %d", log.syncs, log.seq)
	}

	// A follow-up report batch completes the lifecycle and acks matches.
	report := &BatchMutation{TransferReport: &CompletionReport{
		TransferIDs: []string{
			advise.TransferAdvice.Transfers[0].ID,
			advise.TransferAdvice.Transfers[1].ID,
		},
	}}
	creport := &BatchMutation{CleanupReport: &CleanupReport{
		CleanupIDs: []string{cleanup.CleanupAdvice.Cleanups[0].ID},
	}}
	s.ExecuteBatch([]*BatchMutation{report, creport})
	if report.Err != nil || creport.Err != nil {
		t.Fatalf("report errors: %v / %v", report.Err, creport.Err)
	}
	if report.Ack == nil || report.Ack.Matched != 2 || report.Ack.Unmatched != 0 {
		t.Fatalf("transfer ack = %+v", report.Ack)
	}
	if creport.Ack == nil || creport.Ack.Matched != 1 {
		t.Fatalf("cleanup ack = %+v", creport.Ack)
	}
	if len(log.syncs) != 2 {
		t.Fatalf("second batch synced %d times total, want 2", len(log.syncs))
	}
}

// TestExecuteBatchSkipsDeadContexts pins deadline propagation into the
// core: a mutation whose client already gave up is abandoned before any
// side effect — no WAL append, no advice, no fact changes.
func TestExecuteBatchSkipsDeadContexts(t *testing.T) {
	s := newGreedy(t, 50, 4)
	log := &recordingLog{}
	s.SetMutationLog(log)

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	gone := &BatchMutation{Ctx: dead, TransferSpecs: []TransferSpec{spec(1, "wf1")}}
	live := &BatchMutation{Ctx: context.Background(), TransferSpecs: []TransferSpec{spec(2, "wf1")}}
	s.ExecuteBatch([]*BatchMutation{gone, live})

	if !errors.Is(gone.Err, context.Canceled) {
		t.Fatalf("dead-context mutation err = %v, want context.Canceled", gone.Err)
	}
	if gone.TransferAdvice != nil {
		t.Fatal("dead-context mutation produced advice")
	}
	if live.Err != nil || live.TransferAdvice == nil {
		t.Fatalf("live mutation: err=%v advice=%v", live.Err, live.TransferAdvice)
	}
	if len(log.appends) != 1 {
		t.Fatalf("appended %d records, want 1 (abandoned mutation must not log)", len(log.appends))
	}
	// Only the live request's transfer entered Policy Memory.
	state := s.ExportState()
	if len(state.Transfers) != 1 || state.Transfers[0].RequestID != "req-2" {
		t.Fatalf("resident transfers = %+v, want only req-2", state.Transfers)
	}
}

// TestExecuteBatchSyncFailureFailsAllLogged: if the group commit cannot
// make the batch durable, no mutation in it may be acknowledged.
func TestExecuteBatchSyncFailureFailsAllLogged(t *testing.T) {
	s := newGreedy(t, 50, 4)
	log := &recordingLog{syncErr: errors.New("disk full")}
	s.SetMutationLog(log)

	a := &BatchMutation{TransferSpecs: []TransferSpec{spec(1, "wf1")}}
	b := &BatchMutation{TransferSpecs: []TransferSpec{spec(2, "wf1")}}
	invalid := &BatchMutation{TransferSpecs: []TransferSpec{{RequestID: "bad"}}}
	s.ExecuteBatch([]*BatchMutation{a, b, invalid})

	for name, m := range map[string]*BatchMutation{"a": a, "b": b} {
		if m.Err == nil || m.Err.Error() == "" || !errorContains(m.Err, "disk full") {
			t.Errorf("mutation %s err = %v, want the sync failure", name, m.Err)
		}
		if m.TransferAdvice != nil {
			t.Errorf("mutation %s kept its advice despite failed commit", name)
		}
	}
	// The validation failure keeps its own, earlier error: it never
	// appended a record, so the commit failure is not its story.
	if invalid.Err == nil || errorContains(invalid.Err, "disk full") {
		t.Errorf("invalid mutation err = %v, want its validation error", invalid.Err)
	}
}

func TestExecuteBatchEmptyAndMissingRequest(t *testing.T) {
	s := newGreedy(t, 50, 4)
	s.ExecuteBatch(nil) // must not panic

	empty := &BatchMutation{}
	s.ExecuteBatch([]*BatchMutation{empty})
	if !errors.Is(empty.Err, ErrEmptyRequest) {
		t.Fatalf("requestless mutation err = %v, want ErrEmptyRequest", empty.Err)
	}
}

// TestExecuteBatchMatchesSequentialCalls: the service is deterministic,
// so a coalesced batch must leave Policy Memory exactly as the same
// mutations applied one call at a time would.
func TestExecuteBatchMatchesSequentialCalls(t *testing.T) {
	seqSvc := newGreedy(t, 50, 4)
	batchSvc := newGreedy(t, 50, 4)

	specs1 := []TransferSpec{spec(1, "wf1"), spec(2, "wf1")}
	specs2 := []TransferSpec{spec(3, "wf2")}

	adv1, err := seqSvc.AdviseTransfers(specs1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seqSvc.AdviseTransfers(specs2); err != nil {
		t.Fatal(err)
	}
	if _, err := seqSvc.ReportTransfers(CompletionReport{TransferIDs: []string{adv1.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}

	m1 := &BatchMutation{TransferSpecs: specs1}
	m2 := &BatchMutation{TransferSpecs: specs2}
	batchSvc.ExecuteBatch([]*BatchMutation{m1, m2})
	if m1.Err != nil || m2.Err != nil {
		t.Fatalf("batch errors: %v / %v", m1.Err, m2.Err)
	}
	m3 := &BatchMutation{TransferReport: &CompletionReport{TransferIDs: []string{m1.TransferAdvice.Transfers[0].ID}}}
	batchSvc.ExecuteBatch([]*BatchMutation{m3})
	if m3.Err != nil {
		t.Fatal(m3.Err)
	}

	seqDump, batchDump := seqSvc.ExportState(), batchSvc.ExportState()
	if len(seqDump.Transfers) != len(batchDump.Transfers) {
		t.Fatalf("resident transfers: sequential %d, batched %d",
			len(seqDump.Transfers), len(batchDump.Transfers))
	}
	for i := range seqDump.Transfers {
		if seqDump.Transfers[i] != batchDump.Transfers[i] {
			t.Errorf("transfer %d diverged: seq=%+v batch=%+v",
				i, seqDump.Transfers[i], batchDump.Transfers[i])
		}
	}
}

func errorContains(err error, sub string) bool {
	return err != nil && strings.Contains(err.Error(), sub)
}
