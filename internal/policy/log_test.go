package policy

import (
	"encoding/json"
	"errors"
	"testing"
)

// fakeLog records Append/Sync calls and can inject failures.
type fakeLog struct {
	ops       []string
	payloads  [][]byte
	synced    []uint64
	appendErr error
	syncErr   error
}

func (f *fakeLog) Append(op string, payload any) (uint64, error) {
	if f.appendErr != nil {
		return 0, f.appendErr
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return 0, err
	}
	f.ops = append(f.ops, op)
	f.payloads = append(f.payloads, data)
	return uint64(len(f.ops)), nil
}

func (f *fakeLog) Sync(seq uint64) error {
	if f.syncErr != nil {
		return f.syncErr
	}
	f.synced = append(f.synced, seq)
	return nil
}

func logTestService(t *testing.T) (*Service, *fakeLog) {
	t.Helper()
	svc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fl := &fakeLog{}
	svc.SetMutationLog(fl)
	return svc, fl
}

func TestMutationsAreLoggedInOrder(t *testing.T) {
	svc, fl := logTestService(t)
	adv, err := svc.AdviseTransfers([]TransferSpec{{
		RequestID:  "r1",
		WorkflowID: "wf",
		SourceURL:  "gsiftp://src/a",
		DestURL:    "file://dst/a",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ReportTransfers(CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetThreshold("src", "dst", 9); err != nil {
		t.Fatal(err)
	}
	cadv, err := svc.AdviseCleanups([]CleanupSpec{{RequestID: "c1", WorkflowID: "wf", FileURL: "file://dst/a"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cadv.Cleanups) == 1 {
		if _, err := svc.ReportCleanups(CleanupReport{CleanupIDs: []string{cadv.Cleanups[0].ID}}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{OpAdviseTransfers, OpReportTransfers, OpSetThreshold, OpAdviseCleanups, OpReportCleanups}
	if len(fl.ops) != len(want) {
		t.Fatalf("logged ops = %v, want %v", fl.ops, want)
	}
	for i, op := range want {
		if fl.ops[i] != op {
			t.Errorf("op[%d] = %q, want %q", i, fl.ops[i], op)
		}
	}
	// Every mutation waited for its own durability point.
	if len(fl.synced) != len(want) {
		t.Fatalf("synced = %v", fl.synced)
	}
	for i, seq := range fl.synced {
		if seq != uint64(i+1) {
			t.Errorf("synced[%d] = %d, want %d", i, seq, i+1)
		}
	}
}

func TestAppendErrorRejectsMutation(t *testing.T) {
	svc, fl := logTestService(t)
	fl.appendErr = errors.New("disk full")
	if _, err := svc.AdviseTransfers([]TransferSpec{{
		RequestID: "r1", WorkflowID: "wf",
		SourceURL: "gsiftp://src/a", DestURL: "file://dst/a",
	}}); err == nil {
		t.Fatal("advise succeeded despite log append failure")
	}
	// The rejected request must not have mutated Policy Memory: once the
	// log recovers, the same request is fresh, not a duplicate.
	fl.appendErr = nil
	adv, err := svc.AdviseTransfers([]TransferSpec{{
		RequestID: "r1", WorkflowID: "wf",
		SourceURL: "gsiftp://src/a", DestURL: "file://dst/a",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Transfers) != 1 || len(adv.Removed) != 0 {
		t.Fatalf("advice after log recovery = %+v", adv)
	}
}

func TestSyncErrorSurfaces(t *testing.T) {
	svc, fl := logTestService(t)
	fl.syncErr = errors.New("io error")
	if _, err := svc.AdviseTransfers([]TransferSpec{{
		RequestID: "r1", WorkflowID: "wf",
		SourceURL: "gsiftp://src/a", DestURL: "file://dst/a",
	}}); err == nil {
		t.Fatal("advise succeeded despite sync failure")
	}
}

func TestApplyLoggedRoundTrip(t *testing.T) {
	svc, fl := logTestService(t)
	adv, err := svc.AdviseTransfers([]TransferSpec{{
		RequestID: "r1", WorkflowID: "wf",
		SourceURL: "gsiftp://src/a", DestURL: "file://dst/a",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ReportTransfers(CompletionReport{TransferIDs: []string{adv.Transfers[0].ID}}); err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(svc.ExportState())

	// Replaying the captured payloads into a fresh service reproduces the
	// state exactly, including assigned transfer IDs.
	svc2, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range fl.ops {
		if err := svc2.ApplyLogged(op, fl.payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := json.Marshal(svc2.ExportState())
	if string(want) != string(got) {
		t.Fatalf("replay diverged:\n want %s\n got  %s", want, got)
	}
}

func TestApplyLoggedRejectsBadInput(t *testing.T) {
	svc, _ := logTestService(t)
	if err := svc.ApplyLogged("no-such-op", []byte(`{}`)); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := svc.ApplyLogged(OpReportTransfers, []byte(`{broken`)); err == nil {
		t.Fatal("undecodable payload accepted")
	}
}
