package policy

import (
	"fmt"
	"math"
	"sort"
	"time"

	"policyflow/internal/obs"
	"policyflow/internal/rules"
)

// Lease is the working-memory fact recording that a workflow is alive and
// owns state in Policy Memory: in-progress transfers, staged-file
// reference counts, in-progress cleanups. AdviseTransfers and
// AdviseCleanups register (or extend) the calling workflow's lease;
// RenewLease extends it explicitly. A lease whose deadline passes the
// service's logical clock is expired by AdvanceClock, which reclaims the
// dead workflow's holdings.
type Lease struct {
	// Owner is the workflow ID holding the lease.
	Owner string
	// Deadline is the logical-clock time at which the lease expires.
	Deadline float64
}

// LeaseExpired is the event fact AdvanceClock inserts for each lease whose
// deadline passed; the reclamation rules consume it.
type LeaseExpired struct {
	Owner string
}

// Lease reclamation salience band: strictly above every completion rule
// (salClusterRelease = 210) so an expiry pass settles all of a dead
// workflow's holdings — cluster shares first, then pair ledgers, then
// reference counts and cleanups — before anything else runs.
const (
	salLeaseReleaseCluster = 236
	salLeaseFailTransfer   = 234
	salLeaseDetachOwner    = 232
	salLeaseDropCleanup    = 230
	salLeaseGC             = 220
)

// LeaseOp is the logged payload of a RenewLease call.
type LeaseOp struct {
	WorkflowID string `json:"workflowId" xml:"workflowId"`
}

// ClockOp is the logged payload of an AdvanceClock call.
type ClockOp struct {
	Now float64 `json:"now" xml:"now"`
}

// LeaseStatus reports one lease after registration or renewal.
type LeaseStatus struct {
	WorkflowID string  `json:"workflowId" xml:"workflowId"`
	Deadline   float64 `json:"deadline" xml:"deadline"`
	TTLSeconds float64 `json:"ttlSeconds" xml:"ttlSeconds"`
}

// ClockAdvance reports the effect of an AdvanceClock call: the clock value
// now in force, the owners whose leases expired (sorted), and how many
// in-progress transfers the expiry pass reclaimed.
type ClockAdvance struct {
	Now float64 `json:"now" xml:"now"`
	// Expired lists the workflow IDs whose leases expired, sorted.
	Expired []string `json:"expired,omitempty" xml:"expired>owner,omitempty"`
	// ReclaimedTransfers counts in-progress transfers marked failed and
	// released by this expiry pass.
	ReclaimedTransfers int `json:"reclaimedTransfers,omitempty" xml:"reclaimedTransfers,omitempty"`
	// ReclaimedStreams counts the parallel streams those transfers held.
	ReclaimedStreams int `json:"reclaimedStreams,omitempty" xml:"reclaimedStreams,omitempty"`
}

// LeaseInfo is the externally visible state of one active lease.
type LeaseInfo struct {
	WorkflowID string  `json:"workflowId" xml:"workflowId"`
	Deadline   float64 `json:"deadline" xml:"deadline"`
	// HeldStreams sums the allocated streams of the owner's in-progress
	// transfers.
	HeldStreams int `json:"heldStreams" xml:"heldStreams"`
	// InProgress counts the owner's in-progress transfers.
	InProgress int `json:"inProgress" xml:"inProgress"`
}

// LeaseList is the response of the lease listing endpoint.
type LeaseList struct {
	// Now is the service's logical clock.
	Now float64 `json:"now" xml:"now"`
	// TTLSeconds is the configured lease TTL (0 = leases disabled).
	TTLSeconds float64     `json:"ttlSeconds" xml:"ttlSeconds"`
	Leases     []LeaseInfo `json:"leases,omitempty" xml:"leases>lease,omitempty"`
}

// leaseRules reclaims a dead workflow's holdings when its lease expires.
// The rules consume LeaseExpired event facts inserted by AdvanceClock and
// run strictly before the completion band, mirroring the paper's
// completion processing but for an owner that will never report: the dead
// workflow's in-progress transfers are dropped and their streams released
// (cluster shares included, for the balanced allocator), its reference
// counts are removed wholesale so staged files it alone pinned become
// cleanable, and its in-progress cleanups are forgotten so surviving
// workflows may re-issue them. Dropping the Transfer facts also lifts
// in-progress duplicate suppression, so survivors re-stage orphaned files.
func leaseRules() []*rules.Rule {
	return []*rules.Rule{
		// Release the balanced allocator's per-(pair, cluster) share before
		// the transfer fact disappears (same ordering contract as
		// balanced-release-cluster vs the completion rules).
		{
			Name:     "lease-expired-release-cluster",
			Salience: salLeaseReleaseCluster,
			NoLoop:   true,
			When: []rules.Pattern{
				rules.Match[*LeaseExpired]("e", nil),
				rules.MatchOn("t", "owner", keyExpiredOwner, func(b rules.Bindings, t *Transfer) bool {
					e := b.Get("e").(*LeaseExpired)
					return t.State == TransferInProgress && t.WorkflowID == e.Owner
				}),
				rules.MatchOn("cl", "paircluster", keyTransferCluster, func(b rules.Bindings, cl *ClusterLedger) bool {
					t := b.Get("t").(*Transfer)
					return cl.Pair == t.Pair && cl.ClusterID == t.ClusterID
				}),
			},
			Then: func(ctx *rules.Context) {
				t := ctx.Get("t").(*Transfer)
				cl := ctx.Get("cl").(*ClusterLedger)
				cl.Allocated -= t.AllocatedStreams
				if cl.Allocated < 0 {
					cl.Allocated = 0
				}
				ctx.Update(cl)
			},
		},
		// Treat each of the dead workflow's in-progress transfers as failed:
		// release its streams and drop it. Unlike transfer-failed, the
		// reference count is NOT decremented here — lease-expired-detach-owner
		// removes the owner's entire usage in one step, and doing both would
		// double-count.
		{
			Name:     "lease-expired-fail-transfer",
			Salience: salLeaseFailTransfer,
			When: []rules.Pattern{
				rules.Match[*LeaseExpired]("e", nil),
				rules.MatchOn("t", "owner", keyExpiredOwner, func(b rules.Bindings, t *Transfer) bool {
					e := b.Get("e").(*LeaseExpired)
					return t.State == TransferInProgress && t.WorkflowID == e.Owner
				}),
				rules.MatchOn("l", "pair", keyTransferPair, func(b rules.Bindings, l *StreamLedger) bool {
					return l.Pair == b.Get("t").(*Transfer).Pair
				}),
			},
			Then: func(ctx *rules.Context) {
				t := ctx.Get("t").(*Transfer)
				l := ctx.Get("l").(*StreamLedger)
				l.Allocated -= t.AllocatedStreams
				if l.Allocated < 0 {
					l.Allocated = 0
				}
				ctx.Update(l)
				ctx.Retract(t)
			},
		},
		// Remove the dead workflow from every resource it was using. This is
		// the whole of its reference counting, whatever the per-workflow
		// count was, so files it alone pinned become cleanable and files it
		// shared stay protected by the survivors' counts.
		{
			Name:     "lease-expired-detach-owner",
			Salience: salLeaseDetachOwner,
			NoLoop:   true,
			When: []rules.Pattern{
				rules.Match[*LeaseExpired]("e", nil),
				rules.Match("r", func(b rules.Bindings, r *Resource) bool {
					e := b.Get("e").(*LeaseExpired)
					_, uses := r.Users[e.Owner]
					return uses
				}),
			},
			Then: func(ctx *rules.Context) {
				e := ctx.Get("e").(*LeaseExpired)
				r := ctx.Get("r").(*Resource)
				delete(r.Users, e.Owner)
				ctx.Update(r)
			},
		},
		// Forget the dead workflow's in-progress cleanups so duplicate
		// suppression lifts and a surviving workflow can re-issue the
		// deletion. The resource fact is kept: whether the dead client
		// deleted the file before crashing is unknowable, and keeping the
		// conservative record only costs a re-issued cleanup.
		{
			Name:     "lease-expired-drop-cleanup",
			Salience: salLeaseDropCleanup,
			When: []rules.Pattern{
				rules.Match[*LeaseExpired]("e", nil),
				rules.MatchOn("c", "owner", keyExpiredOwner, func(b rules.Bindings, c *Cleanup) bool {
					e := b.Get("e").(*LeaseExpired)
					return c.State == CleanupInProgress && c.WorkflowID == e.Owner
				}),
			},
			Then: func(ctx *rules.Context) {
				ctx.Retract(ctx.Get("c"))
			},
		},
		// Garbage-collect the expiry event once every reclamation rule above
		// has had its chance to fire.
		{
			Name:     "lease-expired-gc",
			Salience: salLeaseGC,
			When: []rules.Pattern{
				rules.Match[*LeaseExpired]("e", nil),
			},
			Then: func(ctx *rules.Context) { ctx.Retract(ctx.Get("e")) },
		},
	}
}

// renewLeasesLocked registers or extends a lease for each distinct
// non-empty workflow ID, at deadline = logical clock + LeaseTTL. Callers
// hold s.mu. The deadlines derive only from logged inputs (the specs) and
// logged clock state, so WAL replay reproduces them exactly.
func (s *Service) renewLeasesLocked(owners []string) {
	if s.cfg.LeaseTTL <= 0 {
		return
	}
	seen := make(map[string]bool, len(owners))
	for _, owner := range owners {
		if owner == "" || seen[owner] {
			continue
		}
		seen[owner] = true
		deadline := s.clock + s.cfg.LeaseTTL
		if l, ok := rules.First(s.session, func(l *Lease) bool { return l.Owner == owner }); ok {
			if deadline > l.Deadline {
				l.Deadline = deadline
				s.session.Update(l)
			}
		} else {
			s.session.Insert(&Lease{Owner: owner, Deadline: deadline})
		}
		s.leaseRenewals++
		if s.metrics != nil {
			s.metrics.leaseRenewals.Inc()
		}
	}
}

// transferOwners extracts the workflow IDs of a transfer batch, in batch
// order (renewLeasesLocked dedupes).
func transferOwners(specs []TransferSpec) []string {
	owners := make([]string, 0, len(specs))
	for _, spec := range specs {
		owners = append(owners, spec.WorkflowID)
	}
	return owners
}

// cleanupOwners extracts the workflow IDs of a cleanup batch.
func cleanupOwners(specs []CleanupSpec) []string {
	owners := make([]string, 0, len(specs))
	for _, spec := range specs {
		owners = append(owners, spec.WorkflowID)
	}
	return owners
}

// RenewLease extends (or creates) the workflow's lease to logical clock +
// LeaseTTL. It is a WAL-logged mutation: replicas replaying the log arrive
// at the identical deadline. Returns ErrInvalidRequest when leases are
// disabled (LeaseTTL = 0) or the workflow ID is empty.
func (s *Service) RenewLease(workflowID string) (status *LeaseStatus, err error) {
	if workflowID == "" {
		return nil, fmt.Errorf("%w: workflow ID is required", ErrInvalidRequest)
	}
	start := time.Now()
	var logSeq uint64
	defer func() {
		if serr := s.syncLog(logSeq); serr != nil && err == nil {
			status, err = nil, serr
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.LeaseTTL <= 0 {
		return nil, fmt.Errorf("%w: leases are disabled (LeaseTTL is 0)", ErrInvalidRequest)
	}
	firingsBefore := s.session.Firings()
	var opErr error
	defer func() { s.observeOp("renew_lease", start, firingsBefore, opErr) }()
	if logSeq, opErr = s.appendLog(OpRenewLease, LeaseOp{WorkflowID: workflowID}); opErr != nil {
		return nil, opErr
	}
	s.renewLeasesLocked([]string{workflowID})
	l, _ := rules.First(s.session, func(l *Lease) bool { return l.Owner == workflowID })
	return &LeaseStatus{WorkflowID: workflowID, Deadline: l.Deadline, TTLSeconds: s.cfg.LeaseTTL}, nil
}

// AdvanceClock moves the service's logical clock forward to now and runs
// the lease-expiry pass: each lease whose deadline has passed is removed, a
// LeaseExpired event is inserted for its owner, and the reclamation rules
// fire. The clock is part of Policy Memory — the service itself never
// reads wall time — so expiry is driven entirely by the caller (a ticker
// in the server binary, simulated time in tests) and replays
// deterministically from the WAL. Calls that do not move the clock
// forward are no-ops and are not logged.
func (s *Service) AdvanceClock(now float64) (adv *ClockAdvance, err error) {
	if math.IsNaN(now) || math.IsInf(now, 0) || now < 0 {
		return nil, fmt.Errorf("%w: clock value %v is not a valid time", ErrInvalidRequest, now)
	}
	start := time.Now()
	var logSeq uint64
	defer func() {
		if serr := s.syncLog(logSeq); serr != nil && err == nil {
			adv, err = nil, serr
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if now <= s.clock {
		// Monotonic clamp: late or duplicate ticks change nothing, on every
		// replica alike, so there is nothing to log.
		return &ClockAdvance{Now: s.clock}, nil
	}
	firingsBefore := s.session.Firings()
	var opErr error
	defer func() { s.observeOp("advance_clock", start, firingsBefore, opErr) }()
	if logSeq, opErr = s.appendLog(OpAdvanceClock, ClockOp{Now: now}); opErr != nil {
		return nil, opErr
	}
	s.clock = now

	adv = &ClockAdvance{Now: now}
	// O(active leases) scan, entirely off the advise hot path.
	var expired []*Lease
	for _, l := range rules.FactsOf[*Lease](s.session) {
		if l.Deadline <= now {
			expired = append(expired, l)
		}
	}
	if len(expired) == 0 {
		return adv, nil
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].Owner < expired[j].Owner })
	for _, l := range expired {
		adv.Expired = append(adv.Expired, l.Owner)
		s.leasesExpired++
		if s.metrics != nil {
			s.metrics.leasesExpired.Inc()
		}
		owner := l.Owner
		for _, t := range rules.FactsOf[*Transfer](s.session) {
			if t.State != TransferInProgress || t.WorkflowID != owner {
				continue
			}
			adv.ReclaimedTransfers++
			adv.ReclaimedStreams += t.AllocatedStreams
			s.reclaimedTransfers++
			if s.metrics != nil {
				s.metrics.reclaimed.Inc()
			}
			s.emit(obs.Event{
				Type:       obs.EventReclaimed,
				TransferID: t.ID,
				RequestID:  t.RequestID,
				WorkflowID: t.WorkflowID,
				GroupID:    t.GroupID,
				SourceHost: t.Pair.Src,
				DestHost:   t.Pair.Dst,
				SizeBytes:  t.SizeBytes,
				Streams:    t.AllocatedStreams,
				Reason:     "lease-expired",
			})
		}
		s.emit(obs.Event{Type: obs.EventLeaseExpired, WorkflowID: owner})
		s.session.Retract(l)
		s.session.Insert(&LeaseExpired{Owner: owner})
	}
	if _, ferr := s.session.FireAll(s.cfg.FireBudget); ferr != nil {
		opErr = fmt.Errorf("policy: rule evaluation: %w", ferr)
		return nil, opErr
	}
	return adv, nil
}

// ClockNow returns the service's logical clock.
func (s *Service) ClockNow() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// Leases reports the active leases with the state each owner holds: the
// streams and in-progress transfer count that would be reclaimed if the
// lease expired. Sorted by owner.
func (s *Service) Leases() *LeaseList {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &LeaseList{Now: s.clock, TTLSeconds: s.cfg.LeaseTTL}
	held := make(map[string]int)
	count := make(map[string]int)
	for _, t := range rules.FactsOf[*Transfer](s.session) {
		if t.State == TransferInProgress {
			held[t.WorkflowID] += t.AllocatedStreams
			count[t.WorkflowID]++
		}
	}
	for _, l := range rules.FactsOf[*Lease](s.session) {
		out.Leases = append(out.Leases, LeaseInfo{
			WorkflowID:  l.Owner,
			Deadline:    l.Deadline,
			HeldStreams: held[l.Owner],
			InProgress:  count[l.Owner],
		})
	}
	sort.Slice(out.Leases, func(i, j int) bool { return out.Leases[i].WorkflowID < out.Leases[j].WorkflowID })
	return out
}
