package policy

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDecisionLogRingEviction(t *testing.T) {
	l := NewDecisionLog(3)
	for i := 0; i < 5; i++ {
		l.Add(DecisionRecord{Op: OpAdviseTransfers})
	}
	recs := l.Recent(0)
	if len(recs) != 3 {
		t.Fatalf("ring holds %d records, want capacity 3", len(recs))
	}
	// Oldest first, sequence numbers survive eviction unbroken.
	for i, r := range recs {
		if want := int64(i + 3); r.Seq != want {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, want)
		}
		if r.TimeUnixNano == 0 {
			t.Fatalf("record %d has no timestamp", i)
		}
	}
	if got := l.Recent(2); len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("Recent(2) = %+v, want seqs 4,5", got)
	}
	if got := l.Recent(10); len(got) != 3 {
		t.Fatalf("Recent(10) returned %d records, want all 3", len(got))
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5 (eviction must not shrink lifetime count)", l.Total())
	}
	if l.CountByOp(OpAdviseTransfers) != 5 {
		t.Fatalf("CountByOp = %d, want 5", l.CountByOp(OpAdviseTransfers))
	}
	if l.CountByOp(OpReportTransfers) != 0 {
		t.Fatalf("CountByOp for unseen op = %d", l.CountByOp(OpReportTransfers))
	}
}

func TestDecisionLogDefaultCapacity(t *testing.T) {
	l := NewDecisionLog(0)
	for i := 0; i < DefaultDecisionRing+10; i++ {
		l.Add(DecisionRecord{Op: OpReportCleanups})
	}
	if got := len(l.Recent(0)); got != DefaultDecisionRing {
		t.Fatalf("default ring holds %d, want %d", got, DefaultDecisionRing)
	}
}

func TestDecisionLogSinkStreams(t *testing.T) {
	l := NewDecisionLog(2) // smaller than the record count: sink must not evict
	var sb strings.Builder
	l.SetSink(&sb)
	l.now = func() time.Time { return time.Unix(0, 12345) }
	for i := 0; i < 4; i++ {
		l.Add(DecisionRecord{
			Op:         OpAdviseTransfers,
			RulesFired: []RuleFiring{{Rule: "assign-streams", Salience: 10}},
			Lines:      []DecisionLine{{ID: "t-00000001", Outcome: OutcomeAdvised, Streams: 4}},
		})
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("sink received %d lines, want 4 (ring eviction must not drop sink records)", len(lines))
	}
	for i, line := range lines {
		var rec DecisionRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d does not parse: %v", i+1, err)
		}
		if rec.Seq != int64(i+1) || rec.Op != OpAdviseTransfers || rec.TimeUnixNano != 12345 {
			t.Fatalf("line %d = %+v", i+1, rec)
		}
		if len(rec.RulesFired) != 1 || rec.RulesFired[0].Rule != "assign-streams" {
			t.Fatalf("line %d lost rule firings: %+v", i+1, rec)
		}
	}

	// Detaching stops streaming without disturbing the ring.
	l.SetSink(nil)
	l.Add(DecisionRecord{Op: OpAdviseTransfers})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 4 {
		t.Fatalf("detached sink received more records: %d lines", got)
	}
}

type failingSink struct{}

func (failingSink) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestDecisionLogSinkErrorSticky(t *testing.T) {
	l := NewDecisionLog(4)
	l.SetSink(failingSink{})
	// Push enough bytes through bufio that the failing write surfaces.
	big := strings.Repeat("r", 8192)
	l.Add(DecisionRecord{Op: OpAdviseTransfers, Lines: []DecisionLine{{ID: big}}})
	if err := l.Flush(); err == nil {
		t.Fatal("sink failure not reported by Flush")
	}
	// The ring keeps working after the sink dies.
	l.Add(DecisionRecord{Op: OpAdviseTransfers})
	if got := l.Total(); got != 2 {
		t.Fatalf("Total after sink failure = %d, want 2", got)
	}
	// A fresh sink clears the sticky error.
	var sb strings.Builder
	l.SetSink(&sb)
	l.Add(DecisionRecord{Op: OpAdviseTransfers})
	if err := l.Flush(); err != nil {
		t.Fatalf("replacement sink still failing: %v", err)
	}
	if !strings.Contains(sb.String(), "advise_transfers") {
		t.Fatalf("replacement sink got %q", sb.String())
	}
}
