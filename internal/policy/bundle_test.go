package policy

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"policyflow/internal/bundle"
)

// bundleDoc marshals a bundle for activation in tests.
func bundleDoc(t *testing.T, b bundle.Bundle) []byte {
	t.Helper()
	doc, err := json.Marshal(&b)
	if err != nil {
		t.Fatalf("marshal bundle: %v", err)
	}
	return doc
}

// TestBootstrapBundleGolden pins the no-bundle behavior: a service that
// never sees a bundle document runs under the embedded v0 bundle, whose
// effect is byte-identical to the compiled defaults — same grants, same
// thresholds — and whose version stamps every decision record.
func TestBootstrapBundleGolden(t *testing.T) {
	s := newGreedy(t, 50, 4)
	tun := s.Tunables()
	if tun.Version != BootstrapBundleVersion {
		t.Fatalf("boot version %q, want %q", tun.Version, BootstrapBundleVersion)
	}
	if tun.Checksum == "" {
		t.Fatal("boot bundle has no checksum")
	}
	if tun.Algorithm != AlgoGreedy || tun.DefaultStreams != 4 || tun.DefaultThreshold != 50 {
		t.Fatalf("boot tunables %+v diverge from config", tun)
	}
	adv, err := s.AdviseTransfers([]TransferSpec{spec(1, "wf1"), spec(2, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range adv.Transfers {
		if tr.Streams != 4 {
			t.Errorf("grant %d streams under v0, want compiled default 4", tr.Streams)
		}
	}
	for _, rec := range s.Decisions(0) {
		if rec.Bundle != BootstrapBundleVersion {
			t.Errorf("decision %s stamped %q, want %q", rec.Op, rec.Bundle, BootstrapBundleVersion)
		}
	}
	st := s.Bundles()
	if !st.Active.Active || st.Active.Version != BootstrapBundleVersion || st.Previous != nil {
		t.Fatalf("boot bundle status %+v", st)
	}
}

// TestBundleEquivalentToDefaultsIsBehaviorPreserving activates a bundle
// carrying exactly the compiled default tunables (under a new version
// name) and requires the grants to stay byte-identical to an untouched
// service — policy-as-data must not perturb policy-as-code.
func TestBundleEquivalentToDefaultsIsBehaviorPreserving(t *testing.T) {
	plain := newGreedy(t, 50, 4)
	bundled := newGreedy(t, 50, 4)
	if _, err := bundled.ActivateBundle(bundleDoc(t, bundle.Bundle{
		SchemaVersion:    bundle.SchemaVersion,
		Version:          "defaults-as-data",
		Algorithm:        bundle.AlgoGreedy,
		DefaultStreams:   4,
		MinStreams:       1,
		DefaultThreshold: 50,
		ClusterFactor:    1,
	})); err != nil {
		t.Fatalf("ActivateBundle: %v", err)
	}
	specs := []TransferSpec{spec(1, "wf1"), spec(2, "wf1"), spec(1, "wf2")}
	a1, err := plain.AdviseTransfers(specs)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := bundled.AdviseTransfers(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("advice diverges under equivalent bundle:\n plain   %+v\n bundled %+v", a1, a2)
	}
	recs := bundled.Decisions(0)
	if got := recs[len(recs)-1].Bundle; got != "defaults-as-data" {
		t.Fatalf("decision stamped %q, want defaults-as-data", got)
	}
}

// TestActivateBundleSwapsThresholdFacts verifies the fact rewrite: the
// bundle's pair thresholds replace the existing Threshold facts wholesale,
// and subsequent grants obey the new bounds.
func TestActivateBundleSwapsThresholdFacts(t *testing.T) {
	s := newGreedy(t, 50, 4)
	if _, err := s.AdviseTransfers([]TransferSpec{spec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetThreshold("other.example.org", "dst.example.org", 9); err != nil {
		t.Fatal(err)
	}
	info, err := s.ActivateBundle(bundleDoc(t, bundle.Bundle{
		SchemaVersion:    bundle.SchemaVersion,
		Version:          "tight",
		Algorithm:        bundle.AlgoGreedy,
		DefaultStreams:   2,
		MinStreams:       1,
		DefaultThreshold: 3,
		ClusterFactor:    1,
		PairThresholds: []bundle.PairThreshold{
			{SourceHost: "futuregrid.tacc.example.org", DestHost: "obelix.isi.example.org", Max: 6},
		},
	}))
	if err != nil {
		t.Fatalf("ActivateBundle: %v", err)
	}
	if !info.Active || info.Version != "tight" {
		t.Fatalf("activation info %+v", info)
	}
	d := s.ExportState()
	if len(d.Thresholds) != 1 {
		t.Fatalf("threshold facts after activation: %+v, want exactly the bundle's pair", d.Thresholds)
	}
	th := d.Thresholds[0]
	if th.Src != "futuregrid.tacc.example.org" || th.Dst != "obelix.isi.example.org" || th.Max != 6 {
		t.Fatalf("threshold fact %+v", th)
	}
	tun := s.Tunables()
	if tun.Version != "tight" || tun.DefaultThreshold != 3 || tun.DefaultStreams != 2 {
		t.Fatalf("tunables after activation %+v", tun)
	}
}

// TestRollbackRestoresPriorTunablesWithoutRestart is the rollback
// acceptance check: activating a bundle and rolling it back returns the
// tunables and threshold facts to their pre-activation values in place,
// with no process restart.
func TestRollbackRestoresPriorTunablesWithoutRestart(t *testing.T) {
	s := newGreedy(t, 50, 4)
	if _, err := s.AdviseTransfers([]TransferSpec{spec(1, "wf1")}); err != nil {
		t.Fatal(err)
	}
	before := s.Tunables()
	if _, err := s.ActivateBundle(bundleDoc(t, bundle.Bundle{
		SchemaVersion:    bundle.SchemaVersion,
		Version:          "experiment",
		Algorithm:        bundle.AlgoBalanced,
		DefaultStreams:   1,
		MinStreams:       1,
		DefaultThreshold: 2,
		ClusterFactor:    2,
	})); err != nil {
		t.Fatal(err)
	}
	if s.Tunables().Version != "experiment" {
		t.Fatal("activation did not take effect")
	}
	info, err := s.RollbackBundle()
	if err != nil {
		t.Fatalf("RollbackBundle: %v", err)
	}
	if info.Version != BootstrapBundleVersion {
		t.Fatalf("rollback landed on %q, want %q", info.Version, BootstrapBundleVersion)
	}
	after := s.Tunables()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("tunables after rollback:\n before %+v\n after  %+v", before, after)
	}
	// The pair advised under v0 regains its default-threshold fact on the
	// next advise; new grants run under the restored defaults.
	adv, err := s.AdviseTransfers([]TransferSpec{spec(2, "wf1")})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Transfers[0].Streams != 4 {
		t.Fatalf("grant %d streams after rollback, want restored default 4", adv.Transfers[0].Streams)
	}
	st := s.Bundles()
	if st.Previous == nil || st.Previous.Version != "experiment" {
		t.Fatalf("rollback target after rollback: %+v, want experiment", st.Previous)
	}
}

// TestRollbackWithoutHistoryIsRejected pins the error contract: rolling
// back before any activation is a deterministic 4xx-class rejection.
func TestRollbackWithoutHistoryIsRejected(t *testing.T) {
	s := newGreedy(t, 50, 4)
	if _, err := s.RollbackBundle(); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("RollbackBundle with no history: %v, want ErrInvalidRequest", err)
	}
}

// TestActivateBundleRejectsVersionReuse pins immutability: a version name,
// once activated, cannot be reused for a different document.
func TestActivateBundleRejectsVersionReuse(t *testing.T) {
	s := newGreedy(t, 50, 4)
	mk := func(streams int) []byte {
		return bundleDoc(t, bundle.Bundle{
			SchemaVersion:    bundle.SchemaVersion,
			Version:          "pinned",
			Algorithm:        bundle.AlgoGreedy,
			DefaultStreams:   streams,
			MinStreams:       1,
			DefaultThreshold: 10,
			ClusterFactor:    1,
		})
	}
	if _, err := s.ActivateBundle(mk(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ActivateBundle(mk(3)); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("version reuse: %v, want ErrInvalidRequest", err)
	}
	// Re-activating the identical document is a no-op, not a conflict.
	info, err := s.ActivateBundle(mk(2))
	if err != nil || !info.Active {
		t.Fatalf("idempotent re-activation: info %+v err %v", info, err)
	}
}

// TestActivateBundleRejectsMalformedDocuments maps every validation
// failure to ErrInvalidRequest so the HTTP layer answers 400, never 500.
func TestActivateBundleRejectsMalformedDocuments(t *testing.T) {
	s := newGreedy(t, 50, 4)
	cases := map[string][]byte{
		"syntax":         []byte(`{"schemaVersion": 1,`),
		"unknown-field":  []byte(`{"schemaVersion": 1, "version": "x", "algorithm": "greedy", "defaultStreams": 1, "minStreams": 1, "defaultThreshold": 1, "clusterFactor": 1, "surprise": true}`),
		"unknown-schema": []byte(`{"schemaVersion": 99, "version": "x", "algorithm": "greedy", "defaultStreams": 1, "minStreams": 1, "defaultThreshold": 1, "clusterFactor": 1}`),
		"bad-algorithm":  []byte(`{"schemaVersion": 1, "version": "x", "algorithm": "psychic", "defaultStreams": 1, "minStreams": 1, "defaultThreshold": 1, "clusterFactor": 1}`),
	}
	for name, doc := range cases {
		if _, err := s.ActivateBundle(doc); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: ActivateBundle = %v, want ErrInvalidRequest", name, err)
		}
		if _, err := s.StageBundle(doc); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: StageBundle = %v, want ErrInvalidRequest", name, err)
		}
	}
	if got := s.Tunables().Version; got != BootstrapBundleVersion {
		t.Fatalf("rejected documents changed the active bundle to %q", got)
	}
}
